(* Adversarial scenario pack (bench --adversarial).

   Three checked-in scenarios (scenarios/*.scn) turn the threat models
   of lib/baselines — the request-flood tail attack (attack.ml) and
   noisy-neighbor colocation (tenancy.ml) — plus quantum gaming into
   declarative specs:

   - tail_attack:    a fat best-effort flood rides the victim's front
                     door; the BE glut queues ahead of the 2us LC
                     stream and the tail explodes.
   - quantum_gaming: a tenant sizes its requests just under the fixed
                     quantum so they never get preempted.
   - noisy_neighbor: Zipf-skewed colocated tenants, one of them fat.

   Each file checks in the DEFENDED system: adaptive quantum plus the
   guard front door where the scenario uses one.  The baseline variant
   is derived here by pinning the quantum at the adaptive init and
   dropping the guard — the attack itself (source mix, arrival, seed)
   is bit-identical across the pair, so the gated figure isolates what
   the defenses buy.

   Gated headline (CI): on every scenario the defended LC p99 beats
   the fixed-quantum/unguarded baseline. *)

let us = Engine.Units.us

let slo_ns = us 200

let scenario_dir =
  match Bench_util.getenv_nonempty "LP_SCENARIO_DIR" with
  | Some d -> d
  | None -> "scenarios"

let pack = [ "tail_attack"; "quantum_gaming"; "noisy_neighbor" ]

let load name =
  let path = Filename.concat scenario_dir (name ^ ".scn") in
  let fail detail =
    invalid_arg
      (Printf.sprintf "bench_adversarial: %s: %s (set LP_SCENARIO_DIR to the scenarios/ dir)"
         path detail)
  in
  match Scenario.of_file path with
  | Ok s -> s
  | Error e -> fail (Scenario.error_to_string e)
  | exception Sys_error msg ->
    invalid_arg
      (Printf.sprintf "bench_adversarial: %s (set LP_SCENARIO_DIR to the scenarios/ dir)" msg)

(* The undefended twin: quantum pinned at the adaptive init, guard off.
   Everything else — workload mix, arrival process, seed — untouched. *)
let strip_defenses spec =
  let quantum =
    match spec.Scenario.quantum with
    | Scenario.Adaptive { init_ns; _ } -> Scenario.Fixed init_ns
    | q -> q
  in
  { spec with Scenario.quantum; Scenario.guard = None }

type row = {
  lc_p99_us : float;
  lc_mean_us : float;
  lc_goodput_rps : float;  (** LC completions inside [slo_ns], per measured second *)
  be_p99_us : float;
  shed_frac : float;
  preemptions : int;
}

let run_case spec =
  let lc_goodput = ref 0 in
  let probes =
    {
      Preemptible.Server.no_probes with
      Preemptible.Server.on_complete =
        (fun ~now ~latency_ns ~cls ->
          match cls with
          | Workload.Request.Latency_critical ->
            let arrived = now - latency_ns in
            if
              arrived >= spec.Scenario.warmup_ns
              && arrived < spec.Scenario.duration_ns
              && latency_ns <= slo_ns
            then incr lc_goodput
          | Workload.Request.Best_effort -> ());
    }
  in
  let r = Scenario.run_server ~probes spec in
  let measured_s =
    float_of_int (spec.Scenario.duration_ns - spec.Scenario.warmup_ns) /. 1e9
  in
  let p99 = function Some (rep : Stat.Summary.report) -> rep.Stat.Summary.p99 /. 1e3 | None -> nan in
  let offered = r.Preemptible.Server.offered in
  {
    lc_p99_us = p99 r.Preemptible.Server.lc;
    lc_mean_us =
      (match r.Preemptible.Server.lc with
      | Some rep -> rep.Stat.Summary.mean /. 1e3
      | None -> nan);
    lc_goodput_rps = float_of_int !lc_goodput /. measured_s;
    be_p99_us = p99 r.Preemptible.Server.be;
    shed_frac =
      (if offered = 0 then 0.0
       else float_of_int r.Preemptible.Server.shed /. float_of_int offered);
    preemptions = r.Preemptible.Server.preemptions;
  }

let run ~jobs () =
  let specs =
    List.concat_map
      (fun name ->
        let defended = load name in
        [ (name, "fixed", strip_defenses defended); (name, "defended", defended) ])
      pack
  in
  Bench_util.header
    (Printf.sprintf
       "Adversarial pack: %s\n(defended = checked-in .scn; fixed = same attack, quantum pinned, guard off)"
       (String.concat ", " pack));
  let results =
    Bench_util.sweep ~label:"adversarial" ~jobs (fun (_, _, spec) -> run_case spec) specs
  in
  Format.printf "  %-16s %-9s %10s %10s %12s %8s %7s@." "scenario" "variant" "lc_p99us"
    "lc_avgus" "lc_good/s" "be_p99us" "shed%";
  List.iter2
    (fun (name, variant, _) row ->
      Format.printf "  %-16s %-9s %10.1f %10.2f %12.0f %8.1f %6.1f%%@." name variant
        row.lc_p99_us row.lc_mean_us row.lc_goodput_rps row.be_p99_us
        (100.0 *. row.shed_frac);
      Bench_report.point ~fig:"adversarial"
        ~labels:[ ("scenario", name); ("variant", variant) ]
        ~metrics:
          [
            ("lc_p99_us", row.lc_p99_us);
            ("lc_mean_us", row.lc_mean_us);
            ("lc_goodput_rps", row.lc_goodput_rps);
            ("be_p99_us", row.be_p99_us);
            ("shed_frac", row.shed_frac);
            ("preemptions", float_of_int row.preemptions);
          ])
    specs results;
  Bench_util.csv ~name:"adversarial"
    ~header:"scenario,variant,lc_p99_us,lc_mean_us,lc_goodput_rps,be_p99_us,shed_frac"
    ~rows:
      (List.map2
         (fun (name, variant, _) row ->
           Printf.sprintf "%s,%s,%.1f,%.2f,%.0f,%.1f,%.4f" name variant row.lc_p99_us
             row.lc_mean_us row.lc_goodput_rps row.be_p99_us row.shed_frac)
         specs results);
  Format.printf
    "@.(expected: on every scenario the defended LC p99 beats the fixed-quantum baseline\n\
    \ — the adaptive controller preempts the fat/gamed payloads and the guard sheds the\n\
    \ flood before it queues)@."
