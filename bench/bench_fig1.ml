(* Fig 1 (left): software- vs hardware-based IPC delivery.
   Fig 1 (right): normalized preemption overhead on Shinjuku for
   workloads of increasing dispersion, each at its best-tail-latency
   time quantum. *)

let us = Bench_util.us
let ms = Bench_util.ms

let left () =
  Bench_util.header "Fig 1 (left): software vs hardware IPC delivery latency";
  let signal = Ksim.Ipc.run_pingpong Ksim.Ipc.Signal_ipc ~n:100_000 in
  let uintr = Ksim.Ipc.run_pingpong Ksim.Ipc.Uintrfd ~n:100_000 in
  Format.printf "software (signal) : %6.3f us@." signal.Ksim.Ipc.avg_us;
  Format.printf "hardware (UINTR)  : %6.3f us@." uintr.Ksim.Ipc.avg_us;
  Format.printf "gap               : %6.1fx@."
    (signal.Ksim.Ipc.avg_us /. uintr.Ksim.Ipc.avg_us)

(* Dispersion ladder: squared coefficient of variation increases down
   the list. *)
let dispersion_ladder =
  [
    ("constant 5us", Workload.Service_dist.constant (us 5));
    ("exponential 5us", Workload.Service_dist.workload_b);
    ("lognormal 5us cv2", Workload.Service_dist.lognormal ~mean_ns:(us 5) ~std_ns:(us 10));
    ("bimodal A2 (5/500)", Workload.Service_dist.workload_a2);
    ("bimodal A1 (0.5/500)", Workload.Service_dist.workload_a1);
  ]

let shinjuku_run ~quantum ~dist ~rate =
  let cfg = Baselines.Shinjuku.default_config ~n_workers:5 ~quantum_ns:quantum in
  Baselines.Shinjuku.run ~warmup_ns:(ms 10) cfg
    ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
    ~source:(Bench_util.lc_source dist) ~duration_ns:(ms 80)

let right ~jobs () =
  Bench_util.header
    "Fig 1 (right): preemption overhead / lean execution on Shinjuku (best-tail quantum)";
  Format.printf "%-22s %10s %12s %16s@." "workload (by dispersion)" "quantum" "p99(us)"
    "preempt overhead";
  let cfg0 = Baselines.Shinjuku.default_config ~n_workers:5 ~quantum_ns:1 in
  let per_preempt_ns =
    Hw.Params.default.Hw.Params.ipi_send_ns + Hw.Params.default.Hw.Params.ipi_delivery_ns
    + cfg0.Baselines.Shinjuku.worker_preempt_cost_ns
    + Ksim.Costs.default.Ksim.Costs.fcontext_swap_ns
  in
  let candidates = [ us 5; us 10; us 25; us 50; us 100; max_int ] in
  (* The quantum search is a (workload x candidate) grid of independent
     runs; the argmin over p99 happens after the sweep. *)
  let specs =
    List.concat_map
      (fun (name, dist) -> List.map (fun q -> (name, dist, q)) candidates)
      dispersion_ladder
  in
  let results =
    Bench_util.sweep ~label:"fig1" ~jobs
      (fun (_, dist, q) ->
        let mean = Workload.Service_dist.mean_ns dist ~now:0 in
        let rate = 0.7 *. 5.0 *. 1e9 /. mean in
        shinjuku_run ~quantum:q ~dist ~rate)
      specs
  in
  let by_key = Hashtbl.create 64 in
  List.iter2 (fun (name, _, q) r -> Hashtbl.replace by_key (name, q) r) specs results;
  List.iter
    (fun (name, dist) ->
      let mean = Workload.Service_dist.mean_ns dist ~now:0 in
      let best_q, r =
        List.fold_left
          (fun (bq, br) q ->
            let r = Hashtbl.find by_key (name, q) in
            match br with
            | None -> (q, Some r)
            | Some prev ->
              if
                r.Preemptible.Server.all.Stat.Summary.p99
                < prev.Preemptible.Server.all.Stat.Summary.p99
              then (q, Some r)
              else (bq, Some prev))
          (0, None) candidates
        |> fun (bq, br) -> (bq, Option.get br)
      in
      let lean_ns = float_of_int r.Preemptible.Server.completed *. mean in
      let overhead =
        float_of_int (r.Preemptible.Server.preemptions * per_preempt_ns) /. lean_ns
      in
      Bench_report.point ~fig:"fig1"
        ~labels:[ ("workload", name) ]
        ~metrics:
          [
            ( "best_quantum_us",
              if best_q = max_int then 0.0 else float_of_int (best_q / 1000) );
            ("p99_us", r.Preemptible.Server.all.Stat.Summary.p99 /. 1e3);
            ("overhead_pct", 100.0 *. overhead);
          ];
      Format.printf "%-22s %9s %11.1f %15.2f%%@." name
        (if best_q = max_int then "none" else Printf.sprintf "%dus" (best_q / 1000))
        (r.Preemptible.Server.all.Stat.Summary.p99 /. 1e3)
        (100.0 *. overhead))
    dispersion_ladder;
  Format.printf
    "(expected shape: overhead grows with workload dispersion — heavy tails need\n\
    \ aggressive quanta, so more cycles go to preemption)@."

let run ~jobs () =
  left ();
  right ~jobs ()
