(* Fig 13: tail latency of colocated LC (MICA) and BE (zlib) jobs under
   scheduling policy #1 (FCFS with preemption).
   Left: fixed 30us quantum across load levels.
   Right: quantum sweep at a fixed 55 kRPS. *)

let us = Bench_util.us
let ms = Bench_util.ms

let base_spec =
  Bench_util.spec_of_string
    "workers=1; src=mix(0.98*mica,0.02*zlib); dur=300ms; warmup=20ms"

(* quantum = 0 encodes the no-preemption baseline in sweep specs. *)
let run_colocated ~quantum ~rate =
  Scenario.run_server
    {
      base_spec with
      Scenario.quantum =
        (if quantum = 0 then Scenario.No_preempt else Scenario.Fixed quantum);
      arrival = Scenario.Poisson (Scenario.Abs rate);
    }

let cls_p99 = function Some (r : Stat.Summary.report) -> r.Stat.Summary.p99 /. 1e3 | None -> nan
let cls_p50 = function Some (r : Stat.Summary.report) -> r.Stat.Summary.p50 /. 1e3 | None -> nan

let report_point ~side ~quantum ~krps r =
  Bench_report.point ~fig:"fig13"
    ~labels:
      [
        ("side", side);
        ("quantum_ns", string_of_int quantum);
        ("load_krps", Printf.sprintf "%g" krps);
      ]
    ~metrics:
      [
        ("lc_p99_us", cls_p99 r.Preemptible.Server.lc);
        ("lc_p50_us", cls_p50 r.Preemptible.Server.lc);
        ("be_p99_us", cls_p99 r.Preemptible.Server.be);
        ("be_p50_us", cls_p50 r.Preemptible.Server.be);
      ]

let left ~jobs () =
  Format.printf "@.-- fixed quantum 30us, load sweep (p99 in us) --@.";
  let krps_list = [ 35; 45; 55; 65 ] in
  let specs =
    List.concat_map (fun krps -> [ (krps, 0); (krps, us 30) ]) krps_list
  in
  let results =
    Bench_util.sweep ~label:"fig13.left" ~jobs
      (fun (krps, quantum) -> run_colocated ~quantum ~rate:(float_of_int krps *. 1e3))
      specs
  in
  let by_key = Hashtbl.create 16 in
  List.iter2 (fun spec r -> Hashtbl.replace by_key spec r) specs results;
  Format.printf "%10s %12s %12s %10s %12s %12s@." "load(kRPS)" "LC-Base" "LC-Lib"
    "LC gain" "BE-Base" "BE-Lib";
  List.iter
    (fun krps ->
      let base = Hashtbl.find by_key (krps, 0) in
      let lib = Hashtbl.find by_key (krps, us 30) in
      report_point ~side:"left" ~quantum:0 ~krps:(float_of_int krps) base;
      report_point ~side:"left" ~quantum:(us 30) ~krps:(float_of_int krps) lib;
      Format.printf "%10d %12.1f %12.1f %9.1fx %12.1f %12.1f@." krps
        (cls_p99 base.Preemptible.Server.lc) (cls_p99 lib.Preemptible.Server.lc)
        (cls_p99 base.Preemptible.Server.lc /. cls_p99 lib.Preemptible.Server.lc)
        (cls_p99 base.Preemptible.Server.be) (cls_p99 lib.Preemptible.Server.be))
    krps_list

let right ~jobs () =
  Format.printf "@.-- fixed 55 kRPS, preemption-interval sweep --@.";
  let quanta = [ us 5; us 10; us 20; us 30; us 50 ] in
  let results =
    Bench_util.sweep ~label:"fig13.right" ~jobs
      (fun quantum -> run_colocated ~quantum ~rate:55_000.0)
      (0 :: quanta)
  in
  let by_q = Hashtbl.create 16 in
  List.iter2 (fun q r -> Hashtbl.replace by_q q r) (0 :: quanta) results;
  let base = Hashtbl.find by_q 0 in
  report_point ~side:"right" ~quantum:0 ~krps:55.0 base;
  Format.printf "%10s %12s %10s %12s %10s@." "quantum" "LC p99(us)" "LC gain" "BE p50(us)"
    "BE cost";
  Format.printf "%10s %12.1f %10s %12.1f %10s@." "none"
    (cls_p99 base.Preemptible.Server.lc) "-" (cls_p50 base.Preemptible.Server.be) "-";
  List.iter
    (fun q ->
      let lib = Hashtbl.find by_q q in
      report_point ~side:"right" ~quantum:q ~krps:55.0 lib;
      Format.printf "%9dus %12.1f %9.1fx %12.1f %9.2fx@." (q / 1000)
        (cls_p99 lib.Preemptible.Server.lc)
        (cls_p99 base.Preemptible.Server.lc /. cls_p99 lib.Preemptible.Server.lc)
        (cls_p50 lib.Preemptible.Server.be)
        (cls_p50 lib.Preemptible.Server.be /. cls_p50 base.Preemptible.Server.be))
    quanta

let run ~jobs () =
  Bench_util.header "Fig 13: colocated MICA (LC) + zlib (BE), FCFS with preemption";
  left ~jobs ();
  right ~jobs ();
  Format.printf
    "@.(expected: 30us quantum cuts LC p99 ~3-4x with a modest BE penalty; 5us cuts\n\
    \ it ~18x at ~2x BE cost — the paper's latency/throughput trade-off)@."
