(* Fig 13: tail latency of colocated LC (MICA) and BE (zlib) jobs under
   scheduling policy #1 (FCFS with preemption).
   Left: fixed 30us quantum across load levels.
   Right: quantum sweep at a fixed 55 kRPS. *)

let us = Bench_util.us
let ms = Bench_util.ms

let source () =
  let mica = Workload.Mica.create () in
  let zlib = Workload.Zlib_be.create () in
  Workload.Source.mix
    [ (0.98, Workload.Mica.source mica); (0.02, Workload.Zlib_be.source zlib) ]

let run_colocated ~policy ~mechanism ~rate =
  let cfg = Preemptible.Server.default_config ~n_workers:1 ~policy ~mechanism in
  Preemptible.Server.run ~warmup_ns:(ms 20) cfg
    ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
    ~source:(source ()) ~duration_ns:(ms 300)

let cls_p99 = function Some (r : Stat.Summary.report) -> r.Stat.Summary.p99 /. 1e3 | None -> nan
let cls_p50 = function Some (r : Stat.Summary.report) -> r.Stat.Summary.p50 /. 1e3 | None -> nan

let left () =
  Format.printf "@.-- fixed quantum 30us, load sweep (p99 in us) --@.";
  Format.printf "%10s %12s %12s %10s %12s %12s@." "load(kRPS)" "LC-Base" "LC-Lib"
    "LC gain" "BE-Base" "BE-Lib";
  List.iter
    (fun krps ->
      let rate = float_of_int krps *. 1e3 in
      let base =
        run_colocated ~policy:Preemptible.Policy.no_preempt
          ~mechanism:Preemptible.Server.No_mechanism ~rate
      in
      let lib =
        run_colocated
          ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:(us 30))
          ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config)
          ~rate
      in
      Format.printf "%10d %12.1f %12.1f %9.1fx %12.1f %12.1f@." krps
        (cls_p99 base.Preemptible.Server.lc) (cls_p99 lib.Preemptible.Server.lc)
        (cls_p99 base.Preemptible.Server.lc /. cls_p99 lib.Preemptible.Server.lc)
        (cls_p99 base.Preemptible.Server.be) (cls_p99 lib.Preemptible.Server.be))
    [ 35; 45; 55; 65 ]

let right () =
  Format.printf "@.-- fixed 55 kRPS, preemption-interval sweep --@.";
  let base =
    run_colocated ~policy:Preemptible.Policy.no_preempt
      ~mechanism:Preemptible.Server.No_mechanism ~rate:55_000.0
  in
  Format.printf "%10s %12s %10s %12s %10s@." "quantum" "LC p99(us)" "LC gain" "BE p50(us)"
    "BE cost";
  Format.printf "%10s %12.1f %10s %12.1f %10s@." "none"
    (cls_p99 base.Preemptible.Server.lc) "-" (cls_p50 base.Preemptible.Server.be) "-";
  List.iter
    (fun q ->
      let lib =
        run_colocated
          ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:q)
          ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config)
          ~rate:55_000.0
      in
      Format.printf "%9dus %12.1f %9.1fx %12.1f %9.2fx@." (q / 1000)
        (cls_p99 lib.Preemptible.Server.lc)
        (cls_p99 base.Preemptible.Server.lc /. cls_p99 lib.Preemptible.Server.lc)
        (cls_p50 lib.Preemptible.Server.be)
        (cls_p50 lib.Preemptible.Server.be /. cls_p50 base.Preemptible.Server.be))
    [ us 5; us 10; us 20; us 30; us 50 ]

let run () =
  Bench_util.header "Fig 13: colocated MICA (LC) + zlib (BE), FCFS with preemption";
  left ();
  right ();
  Format.printf
    "@.(expected: 30us quantum cuts LC p99 ~3-4x with a modest BE penalty; 5us cuts\n\
    \ it ~18x at ~2x BE cost — the paper's latency/throughput trade-off)@."
