(* Tables I, II, III (documented data) and Table IV / Table V
   (measured). *)

let table1 () =
  Bench_util.header
    "Table I: datacenter thread oversubscription (source data from Google traces [58])";
  (* The paper's Intro argument, made quantitative: with fair
     round-robin sharing, a thread waits one full scheduler cycle
     (threads/core x time slice) between slices.  Kernel preemption at
     5 ms slices makes that cycle seconds; LibPreemptible's 3 us slices
     keep it sub-millisecond. *)
  Format.printf "%-12s %8s %6s %13s %18s %18s@." "app" "threads" "cores" "threads/core"
    "cycle @ 5ms slice" "cycle @ 3us slice";
  List.iter
    (fun (app, threads, cores) ->
      let per_core = threads / cores in
      Format.printf "%-12s %8d %6d %13d %17.1fs %16.1fms@." app threads cores per_core
        (float_of_int per_core *. 5e-3)
        (float_of_int per_core *. 3e-3))
    [ ("charlie", 4842, 10); ("delta", 300, 4); ("merced", 5470, 110); ("whiskey", 1352, 8) ];
  Format.printf
    "(thread/core data reproduced from the paper; the scheduler-cycle columns apply\n\
    \ its Intro argument: 5ms kernel slices put a full sharing cycle at seconds,\n\
    \ microsecond slices put it under 1.5ms even at 484 threads/core)@."

let table23 () =
  Bench_util.header "Tables II/III: integration effort (human-effort data, documented only)";
  Format.printf
    "Table II (person-weeks to integrate): Shinjuku 0.9/0.50/0.70/0.51;\n\
     Libinger 0.35/0.23/0.12/NA; LibPreemptible 1.1/0.75/0.78/0.68@.";
  Format.printf
    "Table III (additional code): LibPreemptible 3%% (MICA/Zlib) 4%% (RPC); Libinger NA/7%%@.";
  Format.printf
    "(human integration effort cannot be re-measured by a simulation; reproduced verbatim)@."

(* Table IV: overhead of IPC mechanisms — measured on the kernel/hw
   models. *)
let table4 () =
  Bench_util.header "Table IV: overhead of different IPC mechanisms (1M ping-pong messages)";
  let paper =
    [
      ("signal", (15.325, 3.584, 3.478, 63_493.));
      ("mq", (10.468, 8.960, 2.017, 95_093.));
      ("pipe", (17.761, 10.240, 4.304, 56_151.));
      ("eventFD", (29.688, 2.816, 13.612, 33_629.));
      ("uintrFd", (0.734, 0.512, 0.698, 857_009.));
      ("uintrFd (blocked)", (2.393, 2.048, 0.212, 409_734.));
    ]
  in
  Format.printf "%-18s | %21s | %21s@." "mechanism" "measured avg/min/std" "paper avg/min/std";
  List.iter
    (fun mech ->
      let r = Ksim.Ipc.run_pingpong mech ~n:200_000 in
      let pa, pm, ps, prate = List.assoc r.Ksim.Ipc.mechanism paper in
      Format.printf "%-18s | %6.3f %6.3f %6.3f | %6.3f %6.3f %6.3f   rate %8.0f vs %8.0f@."
        r.Ksim.Ipc.mechanism r.Ksim.Ipc.avg_us r.Ksim.Ipc.min_us r.Ksim.Ipc.std_us pa pm ps
        r.Ksim.Ipc.rate_msg_per_s prate)
    Ksim.Ipc.all

(* Table V: solo (un-colocated) behaviour of the two Sec V-C workloads
   on a single core at light load. *)
let table5 () =
  Bench_util.header "Table V: MICA / zlib workload configurations, run solo on one core";
  let run name source rate =
    let cfg =
      Preemptible.Server.default_config ~n_workers:1 ~policy:Preemptible.Policy.no_preempt
        ~mechanism:Preemptible.Server.No_mechanism
    in
    let r =
      Preemptible.Server.run cfg
        ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
        ~source ~duration_ns:(Bench_util.ms 300)
    in
    Format.printf "%-22s rate=%7.0f/s  p50=%8.2fus  p99=%8.2fus  (n=%d)@." name rate
      (r.Preemptible.Server.all.Stat.Summary.p50 /. 1e3)
      (r.Preemptible.Server.all.Stat.Summary.p99 /. 1e3)
      r.Preemptible.Server.completed
  in
  let mica = Workload.Mica.create () in
  let zlib = Workload.Zlib_be.create () in
  run "MICA 5/95 skew 0.99" (Workload.Mica.source mica) 100_000.0;
  run "zlib 25kB" (Workload.Zlib_be.source zlib) 2_000.0;
  Format.printf "(paper: MICA median ~1us; zlib median ~100us)@."
