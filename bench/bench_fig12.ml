(* Fig 12: precision of LibUtimer vs a kernel timer, 26 threads, 5000
   samples, with background contention injected into the timer core. *)

module Ts = Baselines.Timer_strategies

let specs =
  [
    (`Kernel_timer, Bench_util.us 100);
    (`Kernel_timer, Bench_util.us 20);
    (`Utimer, Bench_util.us 100);
    (`Utimer, Bench_util.us 20);
  ]

let run ~jobs () =
  Bench_util.header "Fig 12: timer precision, 26 threads, 5000 samples, background noise";
  let results =
    Bench_util.sweep ~label:"fig12" ~jobs
      (fun (src, target) -> Ts.precision src ~threads:26 ~target_ns:target ~samples:5000)
      specs
  in
  let rows = ref [] in
  List.iter2
    (fun (_, target) r ->
      Format.printf
        "%-13s target=%3dus  mean=%7.2fus  std=%6.2fus  p99=%7.2fus  rel.err=%5.1f%%@."
        r.Ts.source (target / 1000) r.Ts.mean_gap_us r.Ts.std_gap_us r.Ts.p99_gap_us
        (100.0 *. r.Ts.rel_error);
      Bench_report.point ~fig:"fig12"
        ~labels:[ ("source", r.Ts.source); ("target_us", string_of_int (target / 1000)) ]
        ~metrics:
          [
            ("mean_us", r.Ts.mean_gap_us);
            ("std_us", r.Ts.std_gap_us);
            ("p99_us", r.Ts.p99_gap_us);
            ("rel_err_pct", 100.0 *. r.Ts.rel_error);
          ];
      (* a small excerpt of the series, as in the paper's scatter *)
      let s = r.Ts.sample_gaps_us in
      let n = Array.length s in
      Array.iteri
        (fun i gap ->
          rows := Printf.sprintf "%s,%d,%d,%g" r.Ts.source (target / 1000) i gap :: !rows)
        s;
      if n >= 8 then begin
        Format.printf "    sample gaps (us):";
        for i = 0 to 7 do
          Format.printf " %6.1f" s.(i * n / 8)
        done;
        Format.printf "@."
      end)
    specs results;
  Bench_util.csv ~name:"fig12" ~header:"source,target_us,sample,gap_us" ~rows:(List.rev !rows);
  Format.printf
    "@.(expected: the kernel timer cannot honour 20us — it floors near 60us with\n\
    \ high variance — while LibUtimer's relative error stays ~1%%)@."
