(* Cluster suite (bench --cluster).

   The paper evaluates one server; this element asks the datacenter
   question on top of it: how much does the dispatch policy matter, and
   when does spending the complexity budget *inside* the server
   (adaptive quanta) beat spending it *between* servers (better load
   balancing)?  Three sections, all deterministic in seed and --jobs:

   - lb:        fleet size x policy under production-shaped traffic
                (diurnal arrivals, Zipf-skewed tenant mix) — the basic
                "how much tail does each policy leave on the table"
                figure, plus the dispatch-imbalance it induces.
   - crossover: JSQ over fixed-quantum servers vs p2c over
                adaptive-quantum servers, swept over fleet size and
                load on the heavy-tailed bimodal.  JSQ's
                full-information dispatch scales with fleet size and
                takes the mean at the largest fleet; the adaptive
                quantum dominates the p99 at every size and load —
                per-server preemption beats cluster-level rebalancing
                on the tail, exactly where the paper's single-server
                story predicts.
   - goodput:   guarded fleets pushed past capacity (1.0x / 1.4x).
                Under overload dispatch mistakes turn into sheds and
                blown client patience, so goodput separates the
                policies; the CI gate pins p2c >= random at 1.4x.
                A work-stealing pair on a lopsided heterogeneous fleet
                closes the section. *)

let us = Engine.Units.us
let ms = Engine.Units.ms

let seed = 17L
let workers = 2

let member_cfg ?(policy = Preemptible.Policy.fcfs_preempt ~quantum_ns:(us 5)) () =
  Preemptible.Server.default_config ~n_workers:workers ~policy
    ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config)

let fleet_capacity dist ~n ~duration_ns =
  Bench_util.capacity_rps dist ~workers:(n * workers) ~duration_ns

let cluster_cfg ?steal ~n ~lb member = { (Cluster.uniform ~n ~lb member) with Cluster.steal; seed }

let point ~section ~labels ~metrics =
  Bench_report.point ~fig:"cluster" ~labels:(("mode", section) :: labels) ~metrics

let lat_metrics (f : Cluster.fleet) =
  [
    ("mean_us", f.Cluster.mean_us);
    ("p50_us", f.Cluster.p50_us);
    ("p99_us", f.Cluster.p99_us);
    ("imbalance", f.Cluster.imbalance);
  ]

(* ------------------------------------------------------------------ *)
(* Section 1: fleet size x policy, production-shaped traffic           *)
(* ------------------------------------------------------------------ *)

(* A Zipf-skewed tenant mix: one hot exponential tenant, a warm
   mid-size one, a cold heavy-tailed one. *)
let tenant_dists =
  [ Workload.Service_dist.workload_b; Workload.Service_dist.workload_a2 ]

let tenant_theta = 0.9

let tenant_source () =
  Workload.Source.tenants ~theta:tenant_theta
    (List.map Bench_util.lc_source tenant_dists)

(* Effective mean service time of the mix, for capacity placement. *)
let tenant_mean_ns =
  let z = Workload.Zipf.create ~n:(List.length tenant_dists) ~theta:tenant_theta in
  List.fold_left ( +. ) 0.0
    (List.mapi
       (fun i dist -> Workload.Zipf.probability z i *. Workload.Service_dist.mean_ns dist ~now:0)
       tenant_dists)

let lb_section ~jobs =
  let duration_ns = ms 24 and warmup_ns = ms 6 in
  let sizes = [ 2; 4; 8 ] in
  let specs =
    List.concat_map (fun n -> List.map (fun lb -> (n, lb)) Cluster.all_lbs) sizes
  in
  let results =
    Bench_util.sweep ~label:"cluster.lb" ~jobs
      (fun (n, lb) ->
        let capacity = float_of_int (n * workers) *. 1e9 /. tenant_mean_ns in
        let arrival =
          Workload.Arrival.diurnal ~base_rate_per_sec:(0.75 *. capacity) ~amplitude:0.25
            ~period_ns:(ms 8)
        in
        let r =
          Cluster.run ~warmup_ns
            (cluster_cfg ~n ~lb (member_cfg ()))
            ~arrival ~source:(tenant_source ()) ~duration_ns
        in
        r.Cluster.fleet)
      specs
  in
  Bench_util.header
    (Printf.sprintf
       "Cluster: fleet size x balancer, diurnal arrivals (0.75x±25%%), Zipf(%.1f) tenant \
        mix, %d workers/server"
       tenant_theta workers);
  Format.printf "  %7s %8s %10s %10s %10s %11s@." "servers" "lb" "mean_us" "p99_us"
    "imbalance" "goodput/s";
  let rows = ref [] in
  List.iter2
    (fun (n, lb) (f : Cluster.fleet) ->
      Format.printf "  %7d %8s %10.1f %10.1f %10.3f %11.0f@." n (Cluster.lb_name lb)
        f.Cluster.mean_us f.Cluster.p99_us f.Cluster.imbalance f.Cluster.goodput_rps;
      rows :=
        Printf.sprintf "%d,%s,%.2f,%.2f,%.2f,%.4f,%.0f" n (Cluster.lb_name lb)
          f.Cluster.mean_us f.Cluster.p50_us f.Cluster.p99_us f.Cluster.imbalance
          f.Cluster.goodput_rps
        :: !rows;
      point ~section:"lb"
        ~labels:[ ("servers", string_of_int n); ("lb", Cluster.lb_name lb) ]
        ~metrics:(("goodput_rps", f.Cluster.goodput_rps) :: lat_metrics f))
    specs results;
  Bench_util.csv ~name:"cluster_lb"
    ~header:"servers,lb,mean_us,p50_us,p99_us,imbalance,goodput_rps"
    ~rows:(List.rev !rows)

(* ------------------------------------------------------------------ *)
(* Section 2: dispatch quality vs quantum adaptivity                   *)
(* ------------------------------------------------------------------ *)

let fixed_quantum = us 20

let adaptive_policy ~max_load_per_s =
  Preemptible.Policy.adaptive
    (Preemptible.Quantum_controller.create
       ~config:
         {
           Preemptible.Quantum_controller.default_config with
           Preemptible.Quantum_controller.k1_ns = us 2;
           k2_ns = us 10;
           k3_ns = us 8;
           l_high_fraction = 0.95;
         }
       ~max_load_per_s ~initial_quantum_ns:fixed_quantum ())

let crossover_section ~jobs =
  let dist = Workload.Service_dist.workload_a1 in
  let duration_ns = ms 30 and warmup_ns = ms 8 in
  let sizes = [ 2; 4; 8 ] and loads = [ 0.5; 0.75; 0.9 ] in
  let systems = [ "jsq+fixed"; "p2c+adaptive" ] in
  let specs =
    List.concat_map
      (fun n -> List.concat_map (fun load -> List.map (fun s -> (n, load, s)) systems) loads)
      sizes
  in
  let results =
    Bench_util.sweep ~label:"cluster.crossover" ~jobs
      (fun (n, load, sys) ->
        let capacity = fleet_capacity dist ~n ~duration_ns in
        let member_capacity = capacity /. float_of_int n in
        let lb, member =
          match sys with
          | "jsq+fixed" ->
            ( Cluster.Least_loaded,
              member_cfg ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:fixed_quantum) () )
          | _ ->
            ( Cluster.Power_of_two,
              member_cfg ~policy:(adaptive_policy ~max_load_per_s:member_capacity) () )
        in
        let member = { member with Preemptible.Server.stats_window_ns = ms 1 } in
        let r =
          Cluster.run ~warmup_ns
            (cluster_cfg ~n ~lb member)
            ~arrival:(Workload.Arrival.poisson ~rate_per_sec:(load *. capacity))
            ~source:(Bench_util.lc_source dist) ~duration_ns
        in
        r.Cluster.fleet)
      specs
  in
  Bench_util.header
    (Printf.sprintf
       "Cluster: JSQ over fixed q=%dus vs p2c over adaptive quanta (workload A1, %d \
        workers/server)"
       (fixed_quantum / 1000) workers);
  Format.printf "  %7s %6s %14s %10s %10s@." "servers" "load" "system" "mean_us" "p99_us";
  let rows = ref [] in
  List.iter2
    (fun (n, load, sys) (f : Cluster.fleet) ->
      Format.printf "  %7d %5.2fx %14s %10.1f %10.1f@." n load sys f.Cluster.mean_us
        f.Cluster.p99_us;
      rows :=
        Printf.sprintf "%d,%g,%s,%.2f,%.2f" n load sys f.Cluster.mean_us f.Cluster.p99_us
        :: !rows;
      point ~section:"crossover"
        ~labels:
          [
            ("servers", string_of_int n);
            ("load", Printf.sprintf "%.2fx" load);
            ("system", sys);
          ]
        ~metrics:[ ("mean_us", f.Cluster.mean_us); ("p99_us", f.Cluster.p99_us) ])
    specs results;
  Bench_util.csv ~name:"cluster_crossover" ~header:"servers,load,system,mean_us,p99_us"
    ~rows:(List.rev !rows);
  (* narrate the headline: per-cell winners.  JSQ's full-information
     advantage grows with fleet size and shows on the mean; the
     adaptive quantum owns the tail wherever the heavy-tail rule can
     bite — the crossover the figure exists to show. *)
  let cell n load sys =
    let i = ref None in
    List.iteri
      (fun k (n', load', sys') -> if n' = n && load' = load && sys' = sys then i := Some k)
      specs;
    match !i with Some k -> List.nth results k | None -> invalid_arg "cell"
  in
  List.iter
    (fun n ->
      let winners metric =
        List.map
          (fun load ->
            let j = metric (cell n load "jsq+fixed")
            and p = metric (cell n load "p2c+adaptive") in
            Printf.sprintf "%.2fx:%s" load (if p < j then "p2c+adaptive" else "jsq+fixed"))
          loads
      in
      Format.printf "  %d servers: mean winner %s | p99 winner %s@." n
        (String.concat " " (winners (fun f -> f.Cluster.mean_us)))
        (String.concat " " (winners (fun f -> f.Cluster.p99_us))))
    sizes

(* ------------------------------------------------------------------ *)
(* Section 3: goodput under overload + work stealing                   *)
(* ------------------------------------------------------------------ *)

let patience_ns = us 200

let guarded_member () =
  {
    (member_cfg ()) with
    Preemptible.Server.guard =
      Some
        {
          Guard.disabled with
          Guard.timeout_ns = Some patience_ns;
          drop_expired = true;
          shed =
            Some
              { Guard.max_queue = 16; codel_target_ns = us 40; codel_interval_ns = us 200 };
        };
  }

(* Bursty overload, not sustained Poisson: under a flat 1.4x Poisson
   every server saturates and dispatch quality stops mattering (random
   even edges ahead by letting a lucky few through fast).  With spikes
   to 2x the mean, informed dispatch keeps the troughs' spare capacity
   fed while random strands it behind transiently deep queues. *)
let bursty_overload ~mean_rate =
  let spike = 2.0 *. mean_rate in
  let base = (mean_rate -. (0.3 *. spike)) /. 0.7 in
  Workload.Arrival.bursty ~base_rate_per_sec:base ~spike_rate_per_sec:spike
    ~period_ns:(ms 2) ~spike_fraction:0.3

let goodput_section ~jobs =
  let dist = Workload.Service_dist.workload_b in
  let n = 4 in
  let duration_ns = ms 30 and warmup_ns = ms 8 in
  let loads = [ 1.0; 1.4 ] in
  let specs =
    List.concat_map (fun lb -> List.map (fun load -> (lb, load)) loads) Cluster.all_lbs
  in
  let results =
    Bench_util.sweep ~label:"cluster.goodput" ~jobs
      (fun (lb, load) ->
        let capacity = fleet_capacity dist ~n ~duration_ns in
        let r =
          Cluster.run ~warmup_ns
            (cluster_cfg ~n ~lb (guarded_member ()))
            ~arrival:(bursty_overload ~mean_rate:(load *. capacity))
            ~source:(Bench_util.lc_source dist) ~duration_ns
        in
        r.Cluster.fleet)
      specs
  in
  Bench_util.header
    (Printf.sprintf
       "Cluster: guarded goodput under bursty overload (%d servers, 2x spikes, patience \
        %dus, bounded queues)"
       n (patience_ns / 1000));
  Format.printf "  %8s %6s %11s %11s %8s %10s@." "lb" "load" "offered/s" "goodput/s"
    "shed%" "p99_us";
  let rows = ref [] in
  List.iter2
    (fun (lb, load) (f : Cluster.fleet) ->
      let shed_frac =
        if f.Cluster.offered = 0 then 0.0
        else float_of_int f.Cluster.shed /. float_of_int f.Cluster.offered
      in
      Format.printf "  %8s %5.1fx %11.0f %11.0f %7.1f%% %10.1f@." (Cluster.lb_name lb)
        load f.Cluster.offered_rps f.Cluster.goodput_rps (100.0 *. shed_frac)
        f.Cluster.p99_us;
      rows :=
        Printf.sprintf "%s,%g,%.0f,%.0f,%.4f,%.2f" (Cluster.lb_name lb) load
          f.Cluster.offered_rps f.Cluster.goodput_rps shed_frac f.Cluster.p99_us
        :: !rows;
      point ~section:"goodput"
        ~labels:
          [ ("lb", Cluster.lb_name lb); ("load", Printf.sprintf "%.1fx" load) ]
        ~metrics:
          [
            ("offered_rps", f.Cluster.offered_rps);
            ("goodput_rps", f.Cluster.goodput_rps);
            ("shed_frac", shed_frac);
            ("p99_us", f.Cluster.p99_us);
          ])
    specs results;
  Bench_util.csv ~name:"cluster_goodput"
    ~header:"lb,load,offered_rps,goodput_rps,shed_frac,p99_us"
    ~rows:(List.rev !rows)

let steal_section () =
  (* round-robin over a lopsided heterogeneous fleet (1/4/4 workers):
     the balancer overloads the small member, stealing mops it up *)
  let dist = Workload.Service_dist.workload_b in
  let duration_ns = ms 30 and warmup_ns = ms 8 in
  let members =
    [|
      { (member_cfg ()) with Preemptible.Server.n_workers = 1 };
      { (member_cfg ()) with Preemptible.Server.n_workers = 4 };
      { (member_cfg ()) with Preemptible.Server.n_workers = 4 };
    |]
  in
  let rate = 0.75 *. Bench_util.capacity_rps dist ~workers:9 ~duration_ns in
  let run steal =
    let cfg =
      {
        Cluster.members;
        lb = Cluster.Round_robin;
        steal;
        seed;
        max_events = 400_000_000;
        tick_ns = None;
      }
    in
    (Cluster.run ~warmup_ns cfg
       ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
       ~source:(Bench_util.lc_source dist) ~duration_ns)
      .Cluster.fleet
  in
  let off = run None and on_ = run (Some Cluster.default_steal) in
  Bench_util.header
    "Cluster: work stealing on a lopsided heterogeneous fleet (1/4/4 workers, round-robin)";
  let show name (f : Cluster.fleet) =
    Format.printf "  steal %-4s mean=%8.1fus p99=%8.1fus stolen=%d@." name
      f.Cluster.mean_us f.Cluster.p99_us f.Cluster.stolen;
    point ~section:"steal"
      ~labels:[ ("steal", name) ]
      ~metrics:
        [
          ("mean_us", f.Cluster.mean_us);
          ("p99_us", f.Cluster.p99_us);
          ("stolen", float_of_int f.Cluster.stolen);
        ]
  in
  show "off" off;
  show "on" on_

let run ~jobs () =
  lb_section ~jobs;
  crossover_section ~jobs;
  goodput_section ~jobs;
  steal_section ();
  Format.printf
    "@.(expected: jsq/p2c hold p99 well under random at every fleet size; p2c over\n\
    \ adaptive-quantum servers beats jsq over fixed-quantum ones on p99 at every size,\n\
    \ while jsq+fixed takes the mean back at the largest fleet — dispatch information\n\
    \ scales with n, quantum adaptivity owns the tail; under overload p2c goodput stays\n\
    \ at or above random; stealing moves work off the overloaded small server and cuts\n\
    \ the fleet tail)@."
