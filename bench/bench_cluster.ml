(* Cluster suite (bench --cluster).

   The paper evaluates one server; this element asks the datacenter
   question on top of it: how much does the dispatch policy matter, and
   when does spending the complexity budget *inside* the server
   (adaptive quanta) beat spending it *between* servers (better load
   balancing)?  Three sections, all deterministic in seed and --jobs:

   - lb:        fleet size x policy under production-shaped traffic
                (diurnal arrivals, Zipf-skewed tenant mix) — the basic
                "how much tail does each policy leave on the table"
                figure, plus the dispatch-imbalance it induces.
   - crossover: JSQ over fixed-quantum servers vs p2c over
                adaptive-quantum servers, swept over fleet size and
                load on the heavy-tailed bimodal.  JSQ's
                full-information dispatch scales with fleet size and
                takes the mean at the largest fleet; the adaptive
                quantum dominates the p99 at every size and load —
                per-server preemption beats cluster-level rebalancing
                on the tail, exactly where the paper's single-server
                story predicts.
   - goodput:   guarded fleets pushed past capacity (1.0x / 1.4x).
                Under overload dispatch mistakes turn into sheds and
                blown client patience, so goodput separates the
                policies; the CI gate pins p2c >= random at 1.4x.
                A work-stealing pair on a lopsided heterogeneous fleet
                closes the section. *)

let ms = Engine.Units.ms

let workers = 2

let override spec text =
  match Scenario.override spec text with
  | Ok s -> s
  | Error e -> invalid_arg ("bench_cluster: " ^ Scenario.error_to_string e)

let point ~section ~labels ~metrics =
  Bench_report.point ~fig:"cluster" ~labels:(("mode", section) :: labels) ~metrics

let lat_metrics (f : Cluster.fleet) =
  [
    ("mean_us", f.Cluster.mean_us);
    ("p50_us", f.Cluster.p50_us);
    ("p99_us", f.Cluster.p99_us);
    ("imbalance", f.Cluster.imbalance);
  ]

(* ------------------------------------------------------------------ *)
(* Section 1: fleet size x policy, production-shaped traffic           *)
(* ------------------------------------------------------------------ *)

(* A Zipf-skewed tenant mix (hot exponential tenant, cold heavy-tailed
   one) under production-shaped diurnal arrivals; the capacity-relative
   0.75x rate resolves against the fleet's total worker count. *)
let lb_base =
  Bench_util.spec_of_string
    "workers=2; quantum=5us; seed=17; src=tenants:0.9(b,a2); \
     arrival=diurnal:0.75x:0.25:8ms; dur=24ms; warmup=6ms"

let lb_section ~jobs =
  let sizes = [ 2; 4; 8 ] in
  let specs =
    List.concat_map (fun n -> List.map (fun lb -> (n, lb)) Cluster.all_lbs) sizes
  in
  let results =
    Bench_util.sweep ~label:"cluster.lb" ~jobs
      (fun (n, lb) ->
        let r =
          Scenario.run_fleet
            (override lb_base
               (Printf.sprintf "fleet={n=%d;lb=%s}" n (Cluster.lb_name lb)))
        in
        r.Cluster.fleet)
      specs
  in
  Bench_util.header
    (Printf.sprintf
       "Cluster: fleet size x balancer, diurnal arrivals (0.75x±25%%), Zipf(0.9) tenant \
        mix, %d workers/server"
       workers);
  Format.printf "  %7s %8s %10s %10s %10s %11s@." "servers" "lb" "mean_us" "p99_us"
    "imbalance" "goodput/s";
  let rows = ref [] in
  List.iter2
    (fun (n, lb) (f : Cluster.fleet) ->
      Format.printf "  %7d %8s %10.1f %10.1f %10.3f %11.0f@." n (Cluster.lb_name lb)
        f.Cluster.mean_us f.Cluster.p99_us f.Cluster.imbalance f.Cluster.goodput_rps;
      rows :=
        Printf.sprintf "%d,%s,%.2f,%.2f,%.2f,%.4f,%.0f" n (Cluster.lb_name lb)
          f.Cluster.mean_us f.Cluster.p50_us f.Cluster.p99_us f.Cluster.imbalance
          f.Cluster.goodput_rps
        :: !rows;
      point ~section:"lb"
        ~labels:[ ("servers", string_of_int n); ("lb", Cluster.lb_name lb) ]
        ~metrics:(("goodput_rps", f.Cluster.goodput_rps) :: lat_metrics f))
    specs results;
  Bench_util.csv ~name:"cluster_lb"
    ~header:"servers,lb,mean_us,p50_us,p99_us,imbalance,goodput_rps"
    ~rows:(List.rev !rows)

(* ------------------------------------------------------------------ *)
(* Section 2: dispatch quality vs quantum adaptivity                   *)
(* ------------------------------------------------------------------ *)

(* JSQ's full-information dispatch over fixed-quantum members vs p2c
   over adaptive members.  Member adaptive controllers get a 1/n share
   of the fleet-wide capacity reference (the scenario lowering's
   default). *)
let crossover_base =
  Bench_util.spec_of_string
    "workers=2; seed=17; src=a1; dur=30ms; warmup=8ms; window=1ms"

let crossover_spec ~n ~load sys =
  override crossover_base
    (Printf.sprintf "arrival=poisson:%gx; %s; fleet={n=%d;lb=%s}" load
       (match sys with
       | "jsq+fixed" -> "quantum=20us"
       | _ -> "quantum=adaptive:20us; ctl={k1=2us;k2=10us;k3=8us;lhigh=0.95}")
       n
       (match sys with "jsq+fixed" -> "jsq" | _ -> "p2c"))

let crossover_section ~jobs =
  let sizes = [ 2; 4; 8 ] and loads = [ 0.5; 0.75; 0.9 ] in
  let systems = [ "jsq+fixed"; "p2c+adaptive" ] in
  let specs =
    List.concat_map
      (fun n -> List.concat_map (fun load -> List.map (fun s -> (n, load, s)) systems) loads)
      sizes
  in
  let results =
    Bench_util.sweep ~label:"cluster.crossover" ~jobs
      (fun (n, load, sys) ->
        let spec = crossover_spec ~n ~load sys in
        (* The hand-built version of this bench shared one controller
           across all members (Cluster.uniform copies the member
           config, closures included); the scenario lowering gives
           each member its own.  Keep the shared-controller dynamics
           so the figure is unchanged. *)
        let cfg = Scenario.cluster_config spec in
        let shared = cfg.Cluster.members.(0).Preemptible.Server.policy in
        let cfg =
          {
            cfg with
            Cluster.members =
              Array.map
                (fun m -> { m with Preemptible.Server.policy = shared })
                cfg.Cluster.members;
          }
        in
        let r =
          Cluster.run ~warmup_ns:spec.Scenario.warmup_ns cfg
            ~arrival:(Scenario.arrival_process spec)
            ~source:(Scenario.source_sampler spec)
            ~duration_ns:spec.Scenario.duration_ns
        in
        r.Cluster.fleet)
      specs
  in
  Bench_util.header
    (Printf.sprintf
       "Cluster: JSQ over fixed q=20us vs p2c over adaptive quanta (workload A1, %d \
        workers/server)"
       workers);
  Format.printf "  %7s %6s %14s %10s %10s@." "servers" "load" "system" "mean_us" "p99_us";
  let rows = ref [] in
  List.iter2
    (fun (n, load, sys) (f : Cluster.fleet) ->
      Format.printf "  %7d %5.2fx %14s %10.1f %10.1f@." n load sys f.Cluster.mean_us
        f.Cluster.p99_us;
      rows :=
        Printf.sprintf "%d,%g,%s,%.2f,%.2f" n load sys f.Cluster.mean_us f.Cluster.p99_us
        :: !rows;
      point ~section:"crossover"
        ~labels:
          [
            ("servers", string_of_int n);
            ("load", Printf.sprintf "%.2fx" load);
            ("system", sys);
          ]
        ~metrics:[ ("mean_us", f.Cluster.mean_us); ("p99_us", f.Cluster.p99_us) ])
    specs results;
  Bench_util.csv ~name:"cluster_crossover" ~header:"servers,load,system,mean_us,p99_us"
    ~rows:(List.rev !rows);
  (* narrate the headline: per-cell winners.  JSQ's full-information
     advantage grows with fleet size and shows on the mean; the
     adaptive quantum owns the tail wherever the heavy-tail rule can
     bite — the crossover the figure exists to show. *)
  let cell n load sys =
    let i = ref None in
    List.iteri
      (fun k (n', load', sys') -> if n' = n && load' = load && sys' = sys then i := Some k)
      specs;
    match !i with Some k -> List.nth results k | None -> invalid_arg "cell"
  in
  List.iter
    (fun n ->
      let winners metric =
        List.map
          (fun load ->
            let j = metric (cell n load "jsq+fixed")
            and p = metric (cell n load "p2c+adaptive") in
            Printf.sprintf "%.2fx:%s" load (if p < j then "p2c+adaptive" else "jsq+fixed"))
          loads
      in
      Format.printf "  %d servers: mean winner %s | p99 winner %s@." n
        (String.concat " " (winners (fun f -> f.Cluster.mean_us)))
        (String.concat " " (winners (fun f -> f.Cluster.p99_us))))
    sizes

(* ------------------------------------------------------------------ *)
(* Section 3: goodput under overload + work stealing                   *)
(* ------------------------------------------------------------------ *)

let patience_us = 200

(* Guarded members pushed past capacity on a 4-server fleet. *)
let goodput_base =
  Bench_util.spec_of_string
    "workers=2; quantum=5us; seed=17; src=b; dur=30ms; warmup=8ms; \
     guard={timeout=200us;expire;shed={q=16;target=40us;interval=200us}}"

(* Bursty overload, not sustained Poisson: under a flat 1.4x Poisson
   every server saturates and dispatch quality stops mattering (random
   even edges ahead by letting a lucky few through fast).  With spikes
   to 2x the mean, informed dispatch keeps the troughs' spare capacity
   fed while random strands it behind transiently deep queues.  The
   spike/base split is derived from the fleet capacity, so it's
   computed here and spliced into the spec as absolute rates. *)
let bursty_overload spec ~load =
  let mean_rate = load *. Scenario.capacity_rps spec in
  let spike = 2.0 *. mean_rate in
  let base = (mean_rate -. (0.3 *. spike)) /. 0.7 in
  {
    spec with
    Scenario.arrival =
      Scenario.Bursty
        {
          base = Scenario.Abs base;
          spike = Scenario.Abs spike;
          period_ns = ms 2;
          spike_fraction = 0.3;
        };
  }

let goodput_section ~jobs =
  let n = 4 in
  let loads = [ 1.0; 1.4 ] in
  let specs =
    List.concat_map (fun lb -> List.map (fun load -> (lb, load)) loads) Cluster.all_lbs
  in
  let results =
    Bench_util.sweep ~label:"cluster.goodput" ~jobs
      (fun (lb, load) ->
        let spec =
          override goodput_base
            (Printf.sprintf "fleet={n=%d;lb=%s}" n (Cluster.lb_name lb))
        in
        (Scenario.run_fleet (bursty_overload spec ~load)).Cluster.fleet)
      specs
  in
  Bench_util.header
    (Printf.sprintf
       "Cluster: guarded goodput under bursty overload (%d servers, 2x spikes, patience \
        %dus, bounded queues)"
       n patience_us);
  Format.printf "  %8s %6s %11s %11s %8s %10s@." "lb" "load" "offered/s" "goodput/s"
    "shed%" "p99_us";
  let rows = ref [] in
  List.iter2
    (fun (lb, load) (f : Cluster.fleet) ->
      let shed_frac =
        if f.Cluster.offered = 0 then 0.0
        else float_of_int f.Cluster.shed /. float_of_int f.Cluster.offered
      in
      Format.printf "  %8s %5.1fx %11.0f %11.0f %7.1f%% %10.1f@." (Cluster.lb_name lb)
        load f.Cluster.offered_rps f.Cluster.goodput_rps (100.0 *. shed_frac)
        f.Cluster.p99_us;
      rows :=
        Printf.sprintf "%s,%g,%.0f,%.0f,%.4f,%.2f" (Cluster.lb_name lb) load
          f.Cluster.offered_rps f.Cluster.goodput_rps shed_frac f.Cluster.p99_us
        :: !rows;
      point ~section:"goodput"
        ~labels:
          [ ("lb", Cluster.lb_name lb); ("load", Printf.sprintf "%.1fx" load) ]
        ~metrics:
          [
            ("offered_rps", f.Cluster.offered_rps);
            ("goodput_rps", f.Cluster.goodput_rps);
            ("shed_frac", shed_frac);
            ("p99_us", f.Cluster.p99_us);
          ])
    specs results;
  Bench_util.csv ~name:"cluster_goodput"
    ~header:"lb,load,offered_rps,goodput_rps,shed_frac,p99_us"
    ~rows:(List.rev !rows)

let steal_section () =
  (* round-robin over a lopsided heterogeneous fleet (1/4/4 workers):
     the balancer overloads the small member, stealing mops it up *)
  let base =
    Bench_util.spec_of_string
      "workers=2; quantum=5us; seed=17; src=b; arrival=poisson:0.75x; \
       dur=30ms; warmup=8ms"
  in
  let run steal =
    (Scenario.run_fleet
       (override base
          (Printf.sprintf "fleet={n=3;lb=rr;workers=1/4/4%s}"
             (if steal then ";steal" else ""))))
      .Cluster.fleet
  in
  let off = run false and on_ = run true in
  Bench_util.header
    "Cluster: work stealing on a lopsided heterogeneous fleet (1/4/4 workers, round-robin)";
  let show name (f : Cluster.fleet) =
    Format.printf "  steal %-4s mean=%8.1fus p99=%8.1fus stolen=%d@." name
      f.Cluster.mean_us f.Cluster.p99_us f.Cluster.stolen;
    point ~section:"steal"
      ~labels:[ ("steal", name) ]
      ~metrics:
        [
          ("mean_us", f.Cluster.mean_us);
          ("p99_us", f.Cluster.p99_us);
          ("stolen", float_of_int f.Cluster.stolen);
        ]
  in
  show "off" off;
  show "on" on_

let run ~jobs () =
  lb_section ~jobs;
  crossover_section ~jobs;
  goodput_section ~jobs;
  steal_section ();
  Format.printf
    "@.(expected: jsq/p2c hold p99 well under random at every fleet size; p2c over\n\
    \ adaptive-quantum servers beats jsq over fixed-quantum ones on p99 at every size,\n\
    \ while jsq+fixed takes the mean back at the largest fleet — dispatch information\n\
    \ scales with n, quantum adaptivity owns the tail; under overload p2c goodput stays\n\
    \ at or above random; stealing moves work off the overloaded small server and cuts\n\
    \ the fleet tail)@."
