(* Ablations for the design choices called out in DESIGN.md:
   AB1 — LibUtimer linear scan vs timing wheel at large slot counts;
   AB2 — Algorithm 1 step-size (k) sensitivity on workload C;
   AB3 — timer-core poll interval. *)

let us = Bench_util.us
let ms = Bench_util.ms

(* AB1: arm N slots periodically and measure firing lateness; the
   linear scan's per-iteration cost grows with N, the wheel's does
   not. *)
let ab1_one ~scan ~slots =
  let sim = Engine.Sim.create () in
  let hw = { Hw.Params.default with Hw.Params.uitt_size = 16_384 } in
  let fabric = Hw.Uintr.create sim hw in
  let config =
    match scan with
    | `Linear -> Utimer.default_config
    | `Wheel -> { Utimer.default_config with Utimer.scan = Utimer.Wheel; wheel_tick_ns = 500 }
  in
  let ut = Utimer.create sim ~uintr:fabric ~config () in
  let interval = us 100 in
  let rounds = 50 in
  let remaining = Array.make slots rounds in
  let slot_arr = Array.make slots None in
  for i = 0 to slots - 1 do
    let receiver =
      Hw.Uintr.register_receiver fabric
        ~handler:(fun _ ~vector:_ ->
          remaining.(i) <- remaining.(i) - 1;
          if remaining.(i) > 0 then
            match slot_arr.(i) with
            | Some slot -> Utimer.arm_after slot ~ns:interval
            | None -> ())
        ()
    in
    let slot = Utimer.register ut ~receiver ~vector:0 in
    slot_arr.(i) <- Some slot;
    Utimer.arm_after slot ~ns:(interval + (i * 37 mod interval))
  done;
  Utimer.start ut;
  let rec watchdog () =
    if Array.exists (fun r -> r > 0) remaining then
      ignore (Engine.Sim.after sim interval watchdog)
    else Utimer.stop ut
  in
  watchdog ();
  Engine.Sim.run sim;
  Stat.Summary.report (Utimer.lateness ut)

let ab1 ~jobs () =
  Format.printf "@.AB1: LibUtimer scan strategy — firing lateness (us) vs armed slots@.";
  Format.printf "%8s %16s %16s@." "slots" "linear mean/p99" "wheel mean/p99";
  let slot_counts = [ 16; 64; 256; 1024; 4096 ] in
  let specs =
    List.concat_map (fun slots -> [ (`Linear, slots); (`Wheel, slots) ]) slot_counts
  in
  let results =
    Bench_util.sweep ~label:"ab1" ~jobs (fun (scan, slots) -> ab1_one ~scan ~slots) specs
  in
  let by_key = Hashtbl.create 16 in
  List.iter2 (fun spec r -> Hashtbl.replace by_key spec r) specs results;
  List.iter
    (fun slots ->
      let l = Hashtbl.find by_key (`Linear, slots) in
      let w = Hashtbl.find by_key (`Wheel, slots) in
      List.iter
        (fun (scan_name, (r : Stat.Summary.report)) ->
          Bench_report.point ~fig:"ab1"
            ~labels:[ ("scan", scan_name); ("slots", string_of_int slots) ]
            ~metrics:
              [
                ("mean_us", r.Stat.Summary.mean /. 1e3); ("p99_us", r.Stat.Summary.p99 /. 1e3);
              ])
        [ ("linear", l); ("wheel", w) ];
      Format.printf "%8d %7.2f / %6.2f %7.2f / %6.2f@." slots
        (l.Stat.Summary.mean /. 1e3) (l.Stat.Summary.p99 /. 1e3)
        (w.Stat.Summary.mean /. 1e3) (w.Stat.Summary.p99 /. 1e3))
    slot_counts;
  Format.printf
    "(the wheel's lateness stays near the poll period as slot counts grow; the\n\
    \ linear scan's grows with the scan cost — the paper's 'timing wheel' opt-in)@."

(* AB2: Algorithm 1 k-step sensitivity on workload C.  The controller
   holds mutable state, so each sweep task builds its own. *)
let ab2_one k =
  let duration = ms 200 in
  let dist = Workload.Service_dist.workload_c ~duration_ns:duration in
  let controller =
    Preemptible.Quantum_controller.create
      ~config:
        {
          Preemptible.Quantum_controller.default_config with
          Preemptible.Quantum_controller.k1_ns = k;
          k2_ns = k;
          k3_ns = k;
        }
      ~max_load_per_s:1_300_000.0 ~initial_quantum_ns:(us 40) ()
  in
  let cfg =
    Preemptible.Server.default_config ~n_workers:4
      ~policy:(Preemptible.Policy.adaptive controller)
      ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config)
  in
  let cfg = { cfg with Preemptible.Server.stats_window_ns = ms 10 } in
  Preemptible.Server.run ~warmup_ns:(ms 20) cfg
    ~arrival:(Workload.Arrival.poisson ~rate_per_sec:900_000.0)
    ~source:(Bench_util.lc_source dist) ~duration_ns:duration

let ab2 ~jobs () =
  Format.printf "@.AB2: adaptive controller step size (k1=k2=k3) on workload C@.";
  Format.printf "%10s %12s %14s@." "k (us)" "p99 (us)" "preemptions";
  let ks = [ us 2; us 8; us 20 ] in
  let results = Bench_util.sweep ~label:"ab2" ~jobs ab2_one ks in
  List.iter2
    (fun k r ->
      Bench_report.point ~fig:"ab2"
        ~labels:[ ("k_us", string_of_int (k / 1000)) ]
        ~metrics:
          [
            ("p99_us", r.Preemptible.Server.all.Stat.Summary.p99 /. 1e3);
            ("preemptions", float_of_int r.Preemptible.Server.preemptions);
          ];
      Format.printf "%10d %12.1f %14d@." (k / 1000)
        (r.Preemptible.Server.all.Stat.Summary.p99 /. 1e3)
        r.Preemptible.Server.preemptions)
    ks results

(* AB3: poll interval of the timer core. *)
let ab3_one poll =
  let cfg =
    Preemptible.Server.default_config ~n_workers:4
      ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:(us 5))
      ~mechanism:
        (Preemptible.Server.Uintr_utimer { Utimer.default_config with Utimer.poll_ns = poll })
  in
  Preemptible.Server.run ~warmup_ns:(ms 10) cfg
    ~arrival:(Workload.Arrival.poisson ~rate_per_sec:1_000_000.0)
    ~source:(Bench_util.lc_source Workload.Service_dist.workload_a1)
    ~duration_ns:(ms 80)

let ab3 ~jobs () =
  Format.printf "@.AB3: timer-core poll interval on workload A1 at 80%% load, q=5us@.";
  Format.printf "%12s %12s %14s@." "poll (ns)" "p99 (us)" "preemptions";
  let polls = [ 100; 500; 2_000; 10_000 ] in
  let results = Bench_util.sweep ~label:"ab3" ~jobs ab3_one polls in
  List.iter2
    (fun poll r ->
      Bench_report.point ~fig:"ab3"
        ~labels:[ ("poll_ns", string_of_int poll) ]
        ~metrics:
          [
            ("p99_us", r.Preemptible.Server.all.Stat.Summary.p99 /. 1e3);
            ("preemptions", float_of_int r.Preemptible.Server.preemptions);
          ];
      Format.printf "%12d %12.1f %14d@." poll
        (r.Preemptible.Server.all.Stat.Summary.p99 /. 1e3)
        r.Preemptible.Server.preemptions)
    polls results

(* AB4: queue disciplines and SLO cancellation on workload A1. *)
let ab4_one (discipline, cancel) =
  (* One worker so the local queue actually builds depth — with JSQ
     across several workers the disciplines rarely see a choice. *)
  let dist = Workload.Service_dist.workload_a1 in
  let rate = 0.8 *. (1e9 /. Workload.Service_dist.mean_ns dist ~now:0) in
  let cfg =
    Preemptible.Server.default_config ~n_workers:1
      ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:(us 5))
      ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config)
  in
  let cfg = { cfg with Preemptible.Server.discipline; cancel_after_slo = cancel } in
  Preemptible.Server.run ~warmup_ns:(ms 10) cfg
    ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
    ~source:(Bench_util.lc_source dist) ~duration_ns:(ms 80)

let ab4 ~jobs () =
  Format.printf "@.AB4: queue discipline / cancellation on A1, one worker at 80%% load, q=5us@.";
  let variants =
    [
      ("FCFS-P (paper default)", (Preemptible.Server.Fifo, None));
      ("SRPT oracle", (Preemptible.Server.Srpt_oracle, None));
      ("EDF (slo=1ms)", (Preemptible.Server.Edf (ms 1), None));
      ("FCFS-P + cancel(>2ms)", (Preemptible.Server.Fifo, Some (ms 2)));
    ]
  in
  let results =
    Bench_util.sweep ~label:"ab4" ~jobs (fun (_, spec) -> ab4_one spec) variants
  in
  List.iter2
    (fun (name, _) r ->
      Bench_report.point ~fig:"ab4"
        ~labels:[ ("variant", name) ]
        ~metrics:
          [
            ("p50_us", r.Preemptible.Server.all.Stat.Summary.p50 /. 1e3);
            ("p99_us", r.Preemptible.Server.all.Stat.Summary.p99 /. 1e3);
            ("p999_us", r.Preemptible.Server.all.Stat.Summary.p999 /. 1e3);
            ("cancelled", float_of_int r.Preemptible.Server.cancelled);
          ];
      Format.printf "%-28s p50=%8.2fus p99=%8.1fus p99.9=%9.1fus cancelled=%d@." name
        (r.Preemptible.Server.all.Stat.Summary.p50 /. 1e3)
        (r.Preemptible.Server.all.Stat.Summary.p99 /. 1e3)
        (r.Preemptible.Server.all.Stat.Summary.p999 /. 1e3)
        r.Preemptible.Server.cancelled)
    variants results;
  Format.printf
    "(FCFS-with-preemption already approximates SRPT here — exactly the paper's
    \ argument that preemption removes the need for service-time knowledge;
    \ cancellation trims the extreme tail by shedding SLO-doomed requests)@."

(* AB5: Sec VII-C hardware offload — the timer core's worth. *)
let ab5_one (n_workers, mechanism) =
  let dist = Workload.Service_dist.workload_a1 in
  let cfg =
    Preemptible.Server.default_config ~n_workers
      ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:(us 5))
      ~mechanism
  in
  (* Same total core budget: 5 cores = 4 workers + timer core, or 5
     workers with the hardware comparators; both face the same
     offered rate (~94% of the 4-worker configuration's capacity). *)
  let rate = 1.25e6 in
  Preemptible.Server.run ~warmup_ns:(ms 10) cfg
    ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
    ~source:(Bench_util.lc_source dist) ~duration_ns:(ms 80)

let ab5 ~jobs () =
  Format.printf "@.AB5: hardware timer offload (Sec VII-C) on A1, q=5us@.";
  let variants =
    [
      ( "timer core (4 workers + LibUtimer)",
        (4, Preemptible.Server.Uintr_utimer Utimer.default_config) );
      ("hw offload (5 workers, comparators)", (5, Preemptible.Server.Uintr_hw_offload));
    ]
  in
  let results =
    Bench_util.sweep ~label:"ab5" ~jobs (fun (_, spec) -> ab5_one spec) variants
  in
  List.iter2
    (fun (name, _) r ->
      Bench_report.point ~fig:"ab5"
        ~labels:[ ("variant", name) ]
        ~metrics:
          [
            ("tput_rps", r.Preemptible.Server.throughput_rps);
            ("p99_us", r.Preemptible.Server.all.Stat.Summary.p99 /. 1e3);
            ("p999_us", r.Preemptible.Server.all.Stat.Summary.p999 /. 1e3);
            ("preemptions", float_of_int r.Preemptible.Server.preemptions);
          ];
      Format.printf "%-36s tput=%8.0f/s p99=%7.1fus p99.9=%9.1fus preempt=%d@." name
        r.Preemptible.Server.throughput_rps
        (r.Preemptible.Server.all.Stat.Summary.p99 /. 1e3)
        (r.Preemptible.Server.all.Stat.Summary.p999 /. 1e3)
        r.Preemptible.Server.preemptions)
    variants results;
  (* The power side of the same trade-off. *)
  let sim = Engine.Sim.create () in
  let fabric = Hw.Uintr.create sim Hw.Params.default in
  let ut = Utimer.create sim ~uintr:fabric () in
  Format.printf
    "timer-core power: %.1f W (UMWAIT-parked poll loop; Sec V-B measures ~1.2 W);
     the hardware comparators spend silicon area instead (Sec VII-C)@."
    (Utimer.power_watts ut)

let run ~jobs () =
  Bench_util.header
    "Ablations (AB1 timing wheel, AB2 controller steps, AB3 poll interval,
     AB4 disciplines/cancellation, AB5 hardware offload)";
  ab1 ~jobs ();
  ab2 ~jobs ();
  ab3 ~jobs ();
  ab4 ~jobs ();
  ab5 ~jobs ()
