(* Reproduction harness: regenerates every table and figure of the
   LibPreemptible evaluation (plus ablations and micro-benchmarks).

     dune exec bench/main.exe                        runs everything
     dune exec bench/main.exe -- --fig8              runs one element
     dune exec bench/main.exe -- --fig8 --jobs 8     fans the sweep out over 8 domains
     dune exec bench/main.exe -- --report out.json   writes a machine-readable report
     dune exec bench/main.exe -- --list              lists elements

   Sweeps are deterministic in the number of jobs: every sweep point is
   an independent simulation with its own seed, and results are merged
   in submission order, so --jobs 8 output is identical to --jobs 1. *)

let elements =
  [
    ( "--table1",
      "Table I: thread oversubscription (source data)",
      fun ~jobs:_ () -> Bench_tables.table1 () );
    ("--fig1", "Fig 1: sw/hw IPC gap + preemption overhead vs dispersion", Bench_fig1.run);
    ("--fig2", "Fig 2: p99 vs load across quanta (16 cores)", Bench_fig2.run);
    ( "--table23",
      "Tables II/III: integration effort (documented)",
      fun ~jobs:_ () -> Bench_tables.table23 () );
    ( "--table4",
      "Table IV: IPC mechanism overheads",
      fun ~jobs:_ () -> Bench_tables.table4 () );
    ("--fig8", "Fig 8: latency vs throughput, 4 systems x 4 workloads", Bench_fig8.run);
    ("--fig9", "Fig 9: SLO violations, static vs adaptive quanta", Bench_fig9.run);
    ("--fig10", "Fig 10: deployment overhead", Bench_fig10.run);
    ("--fig11", "Fig 11: timer delivery scalability", Bench_fig11.run);
    ("--fig12", "Fig 12: timer precision", Bench_fig12.run);
    ( "--table5",
      "Table V: MICA / zlib solo latencies",
      fun ~jobs:_ () -> Bench_tables.table5 () );
    ("--fig13", "Fig 13: colocation, fixed/variable quantum", Bench_fig13.run);
    ("--fig14", "Fig 14: bursty load, dynamic interval", Bench_fig14.run);
    ( "--ablation",
      "Ablations: wheel, controller, poll, disciplines, hw offload",
      Bench_ablation.run );
    ( "--security",
      "Sec VII: interrupt-storm DoS scenarios",
      fun ~jobs:_ () -> Bench_security.run () );
    ( "--faults",
      "Resilience: fault-rate sweep, lost-UIPI retry, failover",
      fun ~jobs:_ () -> Bench_faults.run () );
    ( "--overload",
      "Overload: goodput past capacity, guard on/off, retry storms",
      Bench_overload.run );
    ( "--cluster",
      "Cluster: fleet size x load balancer sweeps, quanta crossover, stealing",
      Bench_cluster.run );
    ( "--slo",
      "SLO telemetry: burn-rate vs static alerts through a flash crowd",
      Bench_slo.run );
    ( "--adversarial",
      "Adversarial pack: scenarios/*.scn attacks, defended vs fixed-quantum",
      Bench_adversarial.run );
    ( "--crossval",
      "Cross-validation: sim vs real fiber runtime on matched specs",
      fun ~jobs:_ () -> Bench_crossval.run () );
    ( "--rt",
      "Real-core fiber runtime micro-benchmarks (meta-only)",
      fun ~jobs:_ () -> Bench_rt.run () );
    ("--micro", "Bechamel micro-benchmarks", fun ~jobs:_ () -> Bench_micro.run ());
    ( "--perf",
      "Engine hot-path throughput + allocation budget (meta-only)",
      fun ~jobs:_ () -> Bench_perf.run () );
    ( "--trace",
      "Traced run: Perfetto export + latency breakdown",
      fun ~jobs:_ () -> Bench_trace.run () );
  ]

let list_elements () =
  Format.printf "available elements:@.";
  List.iter (fun (flag, desc, _) -> Format.printf "  %-12s %s@." flag desc) elements;
  Format.printf "options:@.";
  Format.printf "  %-12s %s@." "--jobs N"
    "worker domains for sweeps (default: recommended domain count; 1 = sequential)";
  Format.printf "  %-12s %s@." "--report FILE" "write a machine-readable JSON bench report";
  Format.printf "  %-12s %s@." "--scenario FILE"
    "parse, validate and run one scenario (.scn) file"

let usage_error msg =
  Format.printf "%s@." msg;
  list_elements ();
  exit 1

let run_element ~jobs (flag, _, f) =
  Bench_report.timed (String.sub flag 2 (String.length flag - 2)) (fun () -> f ~jobs ())

(* bench --scenario FILE: parse, validate, run, report. *)
let run_scenario_file file =
  let spec =
    match Scenario.of_file file with
    | Ok s -> s
    | Error e ->
      Format.printf "%s: %s@." file (Scenario.error_to_string e);
      exit 1
    | exception Sys_error msg ->
      Format.printf "%s@." msg;
      exit 1
  in
  (match Scenario.validate spec with
  | Ok () -> ()
  | Error msg ->
    Format.printf "%s: %s@." file msg;
    exit 1);
  let name = match spec.Scenario.name with Some n -> n | None -> Filename.basename file in
  Format.printf "scenario %s (%s):@.  %s@." name file
    (String.concat "\n  " (String.split_on_char '\n' (Scenario.to_string spec)));
  let outcome = Scenario.run spec in
  Format.printf "%a@." Scenario.pp_outcome outcome;
  let metrics =
    match outcome with
    | Scenario.Server r ->
      [
        ("p99_us", r.Preemptible.Server.all.Stat.Summary.p99 /. 1e3);
        ("mean_us", r.Preemptible.Server.all.Stat.Summary.mean /. 1e3);
        ("completed", float_of_int r.Preemptible.Server.completed);
        ("offered", float_of_int r.Preemptible.Server.offered);
        ("preemptions", float_of_int r.Preemptible.Server.preemptions);
      ]
    | Scenario.Fleet r ->
      let f = r.Cluster.fleet in
      [
        ("p99_us", f.Cluster.p99_us);
        ("mean_us", f.Cluster.mean_us);
        ("completed", float_of_int f.Cluster.completed);
        ("offered", float_of_int f.Cluster.offered);
        ("goodput_rps", f.Cluster.goodput_rps);
      ]
  in
  Bench_report.point ~fig:"scenario" ~labels:[ ("scenario", name) ] ~metrics

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* Pass 1: options. --jobs N and --report FILE apply to the whole
     invocation wherever they appear; what remains selects elements. *)
  let jobs = ref (Exec.Sweep.default_jobs ()) in
  let report = ref None in
  let rec strip acc = function
    | [] -> List.rev acc
    | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
        jobs := n;
        strip acc rest
      | Some _ | None -> usage_error (Printf.sprintf "--jobs expects a positive integer, got %S" n))
    | [ "--jobs" ] -> usage_error "--jobs expects a worker count"
    | "--report" :: file :: rest when String.length file > 0 && file.[0] <> '-' ->
      report := Some file;
      strip acc rest
    | [ "--report" ] | "--report" :: _ -> usage_error "--report expects a file name"
    | arg :: rest -> strip (arg :: acc) rest
  in
  let args = strip [] args in
  let jobs = !jobs in
  Option.iter (fun _ -> Bench_report.start ~jobs) !report;
  (match args with
  | [] ->
    Format.printf "LibPreemptible reproduction harness - running all elements (jobs=%d)@."
      jobs;
    let t0 = Unix.gettimeofday () in
    List.iter (run_element ~jobs) elements;
    Format.printf "@.done in %.1fs@." (Unix.gettimeofday () -. t0)
  | [ "--list" ] -> list_elements ()
  | flags ->
    (* --trace and --scenario consume a following FILE operand; every
       other element is a bare flag. *)
    let rec go = function
      | [] -> ()
      | "--trace" :: file :: rest when String.length file > 0 && file.[0] <> '-' ->
        Bench_report.timed "trace" (fun () -> Bench_trace.run ~out:file ());
        go rest
      | "--scenario" :: file :: rest when String.length file > 0 && file.[0] <> '-' ->
        Bench_report.timed "scenario" (fun () -> run_scenario_file file);
        go rest
      | [ "--scenario" ] -> usage_error "--scenario expects a scenario file"
      | flag :: rest ->
        (match List.find_opt (fun (f, _, _) -> f = flag) elements with
        | Some el -> run_element ~jobs el
        | None -> usage_error (Printf.sprintf "unknown element %s" flag));
        go rest
    in
    go flags);
  Option.iter (fun path -> Bench_report.write ~path) !report
