(* Reproduction harness: regenerates every table and figure of the
   LibPreemptible evaluation (plus ablations and micro-benchmarks).

     dune exec bench/main.exe               runs everything
     dune exec bench/main.exe -- --fig8     runs one element
     dune exec bench/main.exe -- --list     lists elements *)

let elements =
  [
    ("--table1", "Table I: thread oversubscription (source data)", Bench_tables.table1);
    ("--fig1", "Fig 1: sw/hw IPC gap + preemption overhead vs dispersion", Bench_fig1.run);
    ("--fig2", "Fig 2: p99 vs load across quanta (16 cores)", Bench_fig2.run);
    ("--table23", "Tables II/III: integration effort (documented)", Bench_tables.table23);
    ("--table4", "Table IV: IPC mechanism overheads", Bench_tables.table4);
    ("--fig8", "Fig 8: latency vs throughput, 4 systems x 4 workloads", Bench_fig8.run);
    ("--fig9", "Fig 9: SLO violations, static vs adaptive quanta", Bench_fig9.run);
    ("--fig10", "Fig 10: deployment overhead", Bench_fig10.run);
    ("--fig11", "Fig 11: timer delivery scalability", Bench_fig11.run);
    ("--fig12", "Fig 12: timer precision", Bench_fig12.run);
    ("--table5", "Table V: MICA / zlib solo latencies", Bench_tables.table5);
    ("--fig13", "Fig 13: colocation, fixed/variable quantum", Bench_fig13.run);
    ("--fig14", "Fig 14: bursty load, dynamic interval", Bench_fig14.run);
    ("--ablation", "Ablations: wheel, controller, poll, disciplines, hw offload", Bench_ablation.run);
    ("--security", "Sec VII: interrupt-storm DoS scenarios", Bench_security.run);
    ("--faults", "Resilience: fault-rate sweep, lost-UIPI retry, failover", Bench_faults.run);
    ("--micro", "Bechamel micro-benchmarks", Bench_micro.run);
    ("--trace", "Traced run: Perfetto export + latency breakdown", fun () -> Bench_trace.run ());
  ]

let list_elements () =
  Format.printf "available elements:@.";
  List.iter (fun (flag, desc, _) -> Format.printf "  %-12s %s@." flag desc) elements

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [] ->
    Format.printf "LibPreemptible reproduction harness - running all elements@.";
    let t0 = Unix.gettimeofday () in
    List.iter (fun (_, _, f) -> f ()) elements;
    Format.printf "@.done in %.1fs@." (Unix.gettimeofday () -. t0)
  | [ "--list" ] -> list_elements ()
  | flags ->
    (* --trace optionally consumes a following FILE operand; every other
       element is a bare flag. *)
    let rec go = function
      | [] -> ()
      | "--trace" :: file :: rest when String.length file > 0 && file.[0] <> '-' ->
        Bench_trace.run ~out:file ();
        go rest
      | flag :: rest ->
        (match List.find_opt (fun (f, _, _) -> f = flag) elements with
        | Some (_, _, run) -> run ()
        | None ->
          Format.printf "unknown element %s@." flag;
          list_elements ();
          exit 1);
        go rest
    in
    go flags
