(* SLO telemetry figure (bench --slo).

   A flash crowd hits an unguarded server and the latency SLO starts
   burning.  Two detectors watch the same completion stream:

   - the multi-window burn-rate alert (Obs.Slo): fast/slow trailing
     windows both burning above threshold — the SRE-style pager rule;
   - a naive static-threshold alert: the cumulative error budget is
     exhausted (budget_consumed >= 1), i.e. the SLO is already lost.

   The gated headline is the lead time: the burn-rate alert fires
   during the flash-crowd ramp, the static alert only after the
   accumulated good history has been eaten through.  The longer the
   healthy history, the later the static alert — which is exactly why
   static thresholds page too late.

   A second case re-runs the identical scenario with telemetry
   disabled and checks the latency results are bit-identical
   (results_identical = 1.0): the telemetry tick is passive and the
   telemetry-off hot path untouched. *)

let us = Engine.Units.us
let ms = Engine.Units.ms

let flash_start_ns = ms 50
let tick_ns = us 500
let threshold_ns = us 250

(* The whole experiment as one declarative scenario: 4 adaptive-quantum
   workers on workload B, flash crowd 0.5x -> 3x capacity at 50ms.
   Telemetry (the object of the figure) sits outside the DSL and is
   record-updated onto the lowered config below. *)
let spec =
  Bench_util.spec_of_string
    "workers=4; quantum=adaptive:20us; ctl={k1=2us;k2=10us;k3=8us;lhigh=0.95}; \
     src=b; arrival=flash:0.5x:3x:50ms:5ms:5ms:5ms; dur=70ms; warmup=2ms; \
     window=2ms; seed=11"

(* "90% of requests under 250us": a loose objective so the pre-flash
   history accumulates real budget for the static alert to chew
   through. *)
let slo_spec =
  {
    Obs.Slo.name = "p90_250us";
    threshold_ns;
    objective = 0.9;
    window_ns = tick_ns;
    fast_windows = 2;
    slow_windows = 6;
    burn_threshold = 3.0;
  }

let telemetry_config =
  {
    Preemptible.Telemetry.default with
    Preemptible.Telemetry.tick_ns;
    slos = [ slo_spec ];
  }

let run_case ~telemetry =
  let cfg =
    {
      (Scenario.server_config spec) with
      Preemptible.Server.telemetry = (if telemetry then Some telemetry_config else None);
    }
  in
  Preemptible.Server.run ~warmup_ns:spec.Scenario.warmup_ns cfg
    ~arrival:(Scenario.arrival_process spec)
    ~source:(Scenario.source_sampler spec) ~duration_ns:spec.Scenario.duration_ns

let run ~jobs:_ () =
  Bench_util.header
    (Printf.sprintf
       "SLO telemetry: burn-rate vs static alerting through a flash crowd\n\
        (workload B, %d workers, flash 0.5x -> 3x capacity at %.0fms, SLO %s)"
       spec.Scenario.workers
       (float_of_int flash_start_ns /. 1e6)
       slo_spec.Obs.Slo.name);
  let r = run_case ~telemetry:true in
  let tel =
    match r.Preemptible.Server.telemetry with
    | Some t -> t
    | None -> failwith "bench_slo: telemetry report missing"
  in
  let slo =
    match tel.Preemptible.Telemetry.t_slos with
    | [ s ] -> s
    | _ -> failwith "bench_slo: expected exactly one SLO report"
  in
  let to_ms = function Some ns -> float_of_int ns /. 1e6 | None -> nan in
  let first_burn_ms = to_ms slo.Obs.Slo.first_burn_alert_ns in
  let first_static_ms = to_ms slo.Obs.Slo.first_static_alert_ns in
  let lead_ms = first_static_ms -. first_burn_ms in
  Format.printf "  flash-crowd ramp starts at %.1fms (capacity crossed mid-ramp)@."
    (float_of_int flash_start_ns /. 1e6);
  Format.printf "  burn-rate alert (fast %d / slow %d windows, burn >= %.0fx):%10.3fms@."
    slo_spec.Obs.Slo.fast_windows slo_spec.Obs.Slo.slow_windows
    slo_spec.Obs.Slo.burn_threshold first_burn_ms;
  Format.printf "  naive static alert (cumulative budget exhausted):        %10.3fms@."
    first_static_ms;
  Format.printf "  lead time: burn-rate pages %.3fms earlier@." lead_ms;
  Format.printf "  %a@." Obs.Slo.pp_report slo;
  (* Scheduler introspection recorded alongside: controller decisions
     and where the cores' time went. *)
  let audits = List.length tel.Preemptible.Telemetry.t_audit in
  let quanta =
    List.map (fun a -> a.Preemptible.Telemetry.a_quantum_after_ns)
      tel.Preemptible.Telemetry.t_audit
  in
  let qmin = List.fold_left min max_int quanta and qmax = List.fold_left max 0 quanta in
  Format.printf "  controller audit: %d decisions, quantum %d..%dns over the run@." audits
    qmin qmax;
  Array.iteri
    (fun i c ->
      Format.printf "  core %d: %a@." i Preemptible.Telemetry.pp_core_attr c)
    tel.Preemptible.Telemetry.t_cores;
  (* Passivity: the same seed with telemetry off must land on the same
     latencies, bit for bit. *)
  let r_off = run_case ~telemetry:false in
  let identical =
    r.Preemptible.Server.all = r_off.Preemptible.Server.all
    && r.Preemptible.Server.completed = r_off.Preemptible.Server.completed
    && r.Preemptible.Server.preemptions = r_off.Preemptible.Server.preemptions
  in
  Format.printf "  telemetry on vs off: results %s@."
    (if identical then "bit-identical" else "DIVERGED");
  let p99_us = r.Preemptible.Server.all.Stat.Summary.p99 /. 1e3 in
  Bench_report.point ~fig:"slo"
    ~labels:[ ("case", "flash") ]
    ~metrics:
      [
        ("first_burn_ms", first_burn_ms);
        ("first_static_ms", first_static_ms);
        ("lead_ms", lead_ms);
        ("burn_alerts", float_of_int slo.Obs.Slo.burn_alerts);
        ("budget_consumed", slo.Obs.Slo.budget_consumed);
        ("p99_us", p99_us);
        ("ticks", float_of_int tel.Preemptible.Telemetry.t_ticks);
      ];
  Bench_report.point ~fig:"slo"
    ~labels:[ ("case", "overhead") ]
    ~metrics:
      [
        ("results_identical", (if identical then 1.0 else 0.0));
        ("completed", float_of_int r.Preemptible.Server.completed);
      ];
  Bench_util.csv ~name:"slo"
    ~header:"case,first_burn_ms,first_static_ms,lead_ms,burn_alerts,budget_consumed,p99_us"
    ~rows:
      [
        Printf.sprintf "flash,%.3f,%.3f,%.3f,%d,%.3f,%.1f" first_burn_ms first_static_ms
          lead_ms slo.Obs.Slo.burn_alerts slo.Obs.Slo.budget_consumed p99_us;
      ];
  Format.printf
    "@.(expected: the burn-rate alert fires during the ramp, the static alert only after\n\
    \ the pre-flash budget is spent; lead time > 0 and telemetry on/off bit-identical)@."
