(* Bechamel micro-benchmarks: host-machine cost of the core operations
   each table/figure leans on.  One Test.make per reproduced element:

   - Table IV        -> the UINTR fabric post/delivery path
   - Fig 2 / Fig 8   -> event-heap operations and one server-sim event
   - Fig 9 / Alg 1   -> controller observation + P2 quantile updates
   - Fig 11 / Fig 12 -> LibUtimer slot arming, timing-wheel add/advance
   - Fig 13 / Tab V  -> MICA zipfian service-time sampling
   - Fig 7 API       -> real fn_launch/fn_resume on the effects runtime *)

open Bechamel
open Toolkit

let test_event_heap =
  Test.make ~name:"fig2/8: event_heap push+pop"
    (Staged.stage (fun () ->
         let h = Engine.Event_heap.create ~dummy:0 () in
         for i = 0 to 63 do
           Engine.Event_heap.add h ~time:((i * 7919) mod 1021) ~seq:i i
         done;
         let rec drain () = match Engine.Event_heap.pop h with Some _ -> drain () | None -> () in
         drain ()))

let test_uintr_path =
  let sim = Engine.Sim.create () in
  let fabric = Hw.Uintr.create sim Hw.Params.default in
  let r = Hw.Uintr.register_receiver fabric ~handler:(fun _ ~vector:_ -> ()) () in
  let s = Hw.Uintr.create_sender fabric () in
  let idx = Hw.Uintr.connect s r ~vector:1 in
  Test.make ~name:"table4: senduipi post+delivery"
    (Staged.stage (fun () ->
         Hw.Uintr.senduipi s idx;
         Engine.Sim.run sim))

let test_timing_wheel =
  Test.make ~name:"fig11: timing_wheel add+advance"
    (Staged.stage (fun () ->
         let w = Utimer.Timing_wheel.create ~tick:100 () in
         for i = 1 to 64 do
           ignore (Utimer.Timing_wheel.add w ~deadline:(i * 137) i)
         done;
         ignore (Utimer.Timing_wheel.advance w ~upto:10_000)))

let test_p2 =
  Test.make ~name:"fig9: P2 quantile update x64"
    (Staged.stage
       (let rng = Engine.Rng.create 3L in
        fun () ->
          let p2 = Stat.Quantile.P2.create 0.99 in
          for _ = 1 to 64 do
            Stat.Quantile.P2.add p2 (Engine.Rng.float rng)
          done))

let test_controller =
  let controller =
    Preemptible.Quantum_controller.create ~max_load_per_s:1e6 ~initial_quantum_ns:50_000 ()
  in
  let snapshot =
    {
      Preemptible.Stats_window.window_start_ns = 0;
      window_ns = 1_000_000;
      arrivals = 1000;
      completions = 1000;
      arrival_rate_per_s = 800_000.0;
      median_ns = 1_000.0;
      p99_ns = 80_000.0;
      service_median_ns = 900.0;
      service_p99_ns = 60_000.0;
      max_qlen = 10;
    }
  in
  Test.make ~name:"alg1: controller observe"
    (Staged.stage (fun () -> ignore (Preemptible.Quantum_controller.observe controller snapshot)))

let test_mica =
  let mica = Workload.Mica.create () in
  let rng = Engine.Rng.create 17L in
  Test.make ~name:"table5/fig13: mica sample"
    (Staged.stage (fun () -> ignore (Workload.Mica.sample_ns mica rng)))

let test_fiber =
  let clock = Fiber_rt.Deadline_clock.virtual_ () in
  let rt = Fiber_rt.Fiber.create ~quantum_ns:1_000 ~clock () in
  Test.make ~name:"fig7: fn_launch+resume (effects)"
    (Staged.stage (fun () ->
         let fn =
           Fiber_rt.Fiber.fn_launch rt (fun () ->
               Fiber_rt.Deadline_clock.advance clock 1_500;
               Fiber_rt.Fiber.checkpoint rt;
               Fiber_rt.Deadline_clock.advance clock 1_500;
               Fiber_rt.Fiber.checkpoint rt)
         in
         while not (Fiber_rt.Fiber.fn_completed fn) do
           Fiber_rt.Fiber.fn_resume fn
         done))

let all_tests =
  [
    test_event_heap;
    test_uintr_path;
    test_timing_wheel;
    test_p2;
    test_controller;
    test_mica;
    test_fiber;
  ]

let run () =
  Bench_util.header "Bechamel micro-benchmarks (host cost of core operations, ns/op)";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~kde:None () in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ])
      in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> Format.printf "%-40s %12.1f ns/op@." name est
          | Some [] | None -> Format.printf "%-40s %12s@." name "n/a")
        analyzed)
    all_tests
