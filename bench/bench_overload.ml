(* Adversarial overload suite (bench --overload).

   The paper's load sweeps stop at capacity; this element pushes past
   it and asks what the runtime does when the open-loop arrival rate
   exceeds what the workers can serve.  Four client/guard modes under
   the same seed, workload B (exponential 5us) on 4 workers:

   - naive:        no guard at all.  The queue grows without bound, the
                   p99 diverges, and goodput (completions inside the
                   client's 200us patience) collapses toward zero.
   - guard:        the full lib/guard stack — bounded queue + CoDel
                   delay shedding, server-side expiry of abandoned
                   work, brownout breaker.  Sheds the excess at the
                   front door and keeps goodput pinned near capacity
                   with a bounded admitted-tail.
   - retry-naive:  clients time out at 200us and retry up to 5 times
                   with exponential backoff but no budget, while the
                   server (no guard admission, no expiry) burns workers
                   on work the client already abandoned.  This is the
                   classic retry-storm meltdown: offered load amplifies
                   just as capacity is scarcest.
   - retry-budget: identical clients, but a token-bucket retry budget
                   (5% of capacity) caps the amplification.

   A second section drives a flash crowd (0.5x -> 3x capacity ramp)
   through naive and guard modes, with a scripted "guard.trip" fault
   episode in the guarded run; its resilience ledger lands in the
   report's meta.resilience section. *)

let us = Engine.Units.us
let ms = Engine.Units.ms

let dist = Workload.Service_dist.workload_b
let workers = 4
let timeout_ns = us 200
let duration_ns = ms 30
let warmup_ns = ms 8
let stats_window = ms 2
let seed = 11L

type mode = Naive | Guarded | Retry_naive | Retry_budget

let all_modes = [ Naive; Guarded; Retry_naive; Retry_budget ]

let mode_name = function
  | Naive -> "naive"
  | Guarded -> "guard"
  | Retry_naive -> "retry-naive"
  | Retry_budget -> "retry-budget"

let retry_clients budget =
  {
    Guard.max_attempts = 5;
    backoff_ns = us 50;
    max_backoff_ns = us 400;
    jitter = 0.5;
    budget;
  }

let guard_config mode ~capacity =
  match mode with
  | Naive -> None
  | Guarded ->
    Some
      {
        Guard.disabled with
        Guard.timeout_ns = Some timeout_ns;
        drop_expired = true;
        shed =
          Some { Guard.max_queue = 24; codel_target_ns = us 40; codel_interval_ns = us 200 };
        brownout =
          Some
            {
              Guard.default_brownout with
              Guard.p99_trip_ns = us 300;
              qlen_trip = 128;
              trip_windows = 2;
              recover_windows = 2;
            };
      }
  | Retry_naive ->
    Some
      {
        Guard.disabled with
        Guard.timeout_ns = Some timeout_ns;
        retry = Some (retry_clients None);
      }
  | Retry_budget ->
    Some
      {
        Guard.disabled with
        Guard.timeout_ns = Some timeout_ns;
        retry =
          Some
            (retry_clients
               (Some { Guard.rate_per_sec = 0.05 *. capacity; burst = 50.0 }));
      }

type row = {
  offered_rps : float;
  goodput_rps : float;
  p99_us : float;  (** p99 over measured completions, late ones included *)
  shed_frac : float;
  expired_frac : float;
  retries : int;
  trips : int;
}

(* Goodput is measured the same way in every mode — a probe counting
   completions whose per-attempt latency beat the client patience —
   so guarded and unguarded rows are directly comparable even though
   only guarded runs have a Guard ledger. *)
let run_case ~arrival ~guard ~faults () =
  let cfg =
    Preemptible.Server.default_config ~n_workers:workers
      ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:(us 5))
      ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config)
  in
  let cfg =
    { cfg with Preemptible.Server.seed; guard; faults; stats_window_ns = stats_window }
  in
  let goodput = ref 0 in
  let lat = Stat.Summary.create () in
  let probes =
    {
      Preemptible.Server.no_probes with
      Preemptible.Server.on_complete =
        (fun ~now ~latency_ns ~cls:_ ->
          let arrived = now - latency_ns in
          if arrived >= warmup_ns && arrived < duration_ns then begin
            Stat.Summary.record lat (float_of_int latency_ns);
            if latency_ns <= timeout_ns then incr goodput
          end);
    }
  in
  let r =
    Preemptible.Server.run ~probes ~warmup_ns cfg ~arrival
      ~source:(Bench_util.lc_source dist) ~duration_ns
  in
  let measured_s = float_of_int (duration_ns - warmup_ns) /. 1e9 in
  let offered = r.Preemptible.Server.offered in
  let frac n = if offered = 0 then 0.0 else float_of_int n /. float_of_int offered in
  let p99 =
    if Stat.Summary.count lat = 0 then nan
    else (Stat.Summary.report lat).Stat.Summary.p99 /. 1e3
  in
  let row =
    {
      offered_rps = float_of_int offered /. measured_s;
      goodput_rps = float_of_int !goodput /. measured_s;
      p99_us = p99;
      shed_frac = frac r.Preemptible.Server.shed;
      expired_frac = frac r.Preemptible.Server.dropped;
      retries =
        (match r.Preemptible.Server.guard with None -> 0 | Some g -> g.Guard.retries);
      trips = (match r.Preemptible.Server.guard with None -> 0 | Some g -> g.Guard.trips);
    }
  in
  (row, r)

let load_sweep ~jobs ~capacity =
  let loads = [ 0.7; 1.0; 1.4; 2.0; 2.8 ] in
  let specs =
    List.concat_map (fun mode -> List.map (fun load -> (mode, load)) loads) all_modes
  in
  let results =
    Bench_util.sweep ~label:"overload" ~jobs
      (fun (mode, load) ->
        let arrival = Workload.Arrival.poisson ~rate_per_sec:(load *. capacity) in
        fst (run_case ~arrival ~guard:(guard_config mode ~capacity) ~faults:None ()))
      specs
  in
  Format.printf "  %-13s %6s %12s %12s %10s %7s %7s %8s@." "mode" "load" "offered/s"
    "goodput/s" "p99_us" "shed%" "expd%" "retries";
  let rows = ref [] in
  List.iter2
    (fun (mode, load) row ->
      let load_label = Printf.sprintf "%.1fx" load in
      Format.printf "  %-13s %6s %12.0f %12.0f %10.1f %6.1f%% %6.1f%% %8d@."
        (mode_name mode) load_label row.offered_rps row.goodput_rps row.p99_us
        (100.0 *. row.shed_frac) (100.0 *. row.expired_frac) row.retries;
      rows :=
        Printf.sprintf "%s,%g,%.0f,%.0f,%.1f,%.4f,%.4f,%d" (mode_name mode) load
          row.offered_rps row.goodput_rps row.p99_us row.shed_frac row.expired_frac
          row.retries
        :: !rows;
      Bench_report.point ~fig:"overload"
        ~labels:[ ("mode", mode_name mode); ("load", load_label) ]
        ~metrics:
          [
            ("offered_rps", row.offered_rps);
            ("goodput_rps", row.goodput_rps);
            ("p99_us", row.p99_us);
            ("shed_frac", row.shed_frac);
            ("expired_frac", row.expired_frac);
            ("retries", float_of_int row.retries);
          ])
    specs results;
  Bench_util.csv ~name:"overload"
    ~header:"mode,load,offered_rps,goodput_rps,p99_us,shed_frac,expired_frac,retries"
    ~rows:(List.rev !rows)

(* Flash crowd: 0.5x capacity base load spiking to 3x, with a scripted
   breaker trip in the guarded run so the fault ledger exercises the
   guard point end-to-end. *)
let flash_episode ~capacity =
  Bench_util.header
    "Overload: flash crowd (0.5x -> 3x capacity, ramp 3ms / hold 7ms / decay 5ms)";
  let arrival =
    Workload.Arrival.flash_crowd ~base_rate_per_sec:(0.5 *. capacity)
      ~peak_rate_per_sec:(3.0 *. capacity) ~start_ns:(ms 10) ~ramp_ns:(ms 3)
      ~hold_ns:(ms 7) ~decay_ns:(ms 5)
  in
  let naive_row, _ = run_case ~arrival ~guard:None ~faults:None () in
  let faults = Fault.create ~seed () in
  (match Fault.parse faults "guard.trip=win:16000000-18000000:1" with
  | Ok () -> ()
  | Error msg -> invalid_arg ("bench_overload: bad fault spec: " ^ msg));
  let guard_row, guard_result =
    run_case ~arrival ~guard:(guard_config Guarded ~capacity) ~faults:(Some faults) ()
  in
  let show name (row : row) =
    Format.printf "  %-13s goodput=%10.0f/s p99=%10.1fus shed=%5.1f%% trips=%d@." name
      row.goodput_rps row.p99_us (100.0 *. row.shed_frac) row.trips
  in
  show "naive" naive_row;
  show "guard" guard_row;
  (match guard_result.Preemptible.Server.resilience with
  | Some res ->
    let fr = res.Preemptible.Server.fault_report in
    Format.printf "  scripted trip ledger: inj=%d det=%d rec=%d@." fr.Fault.injected
      fr.Fault.detected fr.Fault.recovered;
    Bench_report.resilience ~name:"overload.flash.guard" fr
  | None -> ());
  List.iter
    (fun (name, row) ->
      Bench_report.point ~fig:"overload"
        ~labels:[ ("mode", name); ("load", "flash") ]
        ~metrics:
          [
            ("offered_rps", row.offered_rps);
            ("goodput_rps", row.goodput_rps);
            ("p99_us", row.p99_us);
            ("shed_frac", row.shed_frac);
            ("expired_frac", row.expired_frac);
            ("retries", float_of_int row.retries);
          ])
    [ ("naive", naive_row); ("guard", guard_row) ]

let run ~jobs () =
  let capacity = Bench_util.capacity_rps dist ~workers ~duration_ns in
  Bench_util.header
    (Printf.sprintf
       "Overload: goodput vs load past capacity (workload B, %d workers, capacity %.0f/s, \
        patience %dus)"
       workers capacity (timeout_ns / 1000));
  load_sweep ~jobs ~capacity;
  flash_episode ~capacity;
  Format.printf
    "@.(expected: naive goodput collapses past 1x while guard holds near capacity with a\n\
    \ bounded admitted p99; unbudgeted retries amplify offered load and melt down around\n\
    \ capacity, the 5%%-budget keeps them harmless)@."
