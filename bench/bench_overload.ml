(* Adversarial overload suite (bench --overload).

   The paper's load sweeps stop at capacity; this element pushes past
   it and asks what the runtime does when the open-loop arrival rate
   exceeds what the workers can serve.  Four client/guard modes under
   the same seed, workload B (exponential 5us) on 4 workers:

   - naive:        no guard at all.  The queue grows without bound, the
                   p99 diverges, and goodput (completions inside the
                   client's 200us patience) collapses toward zero.
   - guard:        the full lib/guard stack — bounded queue + CoDel
                   delay shedding, server-side expiry of abandoned
                   work, brownout breaker.  Sheds the excess at the
                   front door and keeps goodput pinned near capacity
                   with a bounded admitted-tail.
   - retry-naive:  clients time out at 200us and retry up to 5 times
                   with exponential backoff but no budget, while the
                   server (no guard admission, no expiry) burns workers
                   on work the client already abandoned.  This is the
                   classic retry-storm meltdown: offered load amplifies
                   just as capacity is scarcest.
   - retry-budget: identical clients, but a token-bucket retry budget
                   (5% of capacity) caps the amplification.

   Every case is a declarative scenario: a mode is [base_spec] plus a
   guard override, a sweep point adds an [arrival=] override; the
   capacity-relative rates ("1.4x", "budget=0.05x:50") resolve through
   the scenario lowering.

   A second section drives a flash crowd (0.5x -> 3x capacity ramp)
   through naive and guard modes, with a scripted "guard.trip" fault
   episode in the guarded run; its resilience ledger lands in the
   report's meta.resilience section. *)

let us = Engine.Units.us
let ms = Engine.Units.ms

let timeout_ns = us 200
let duration_ns = ms 30
let warmup_ns = ms 8

let base_spec =
  Bench_util.spec_of_string
    "workers=4; quantum=5us; src=b; dur=30ms; warmup=8ms; window=2ms; seed=11"

let override spec text =
  match Scenario.override spec text with
  | Ok s -> s
  | Error e -> invalid_arg ("bench_overload: " ^ Scenario.error_to_string e)

type mode = Naive | Guarded | Retry_naive | Retry_budget

let all_modes = [ Naive; Guarded; Retry_naive; Retry_budget ]

let mode_name = function
  | Naive -> "naive"
  | Guarded -> "guard"
  | Retry_naive -> "retry-naive"
  | Retry_budget -> "retry-budget"

let mode_spec = function
  | Naive -> base_spec
  | Guarded ->
    override base_spec
      "guard={timeout=200us;expire;shed={q=24;target=40us;interval=200us};\
       brownout={p99=300us;qlen=128;trip=2;recover=2}}"
  | Retry_naive ->
    override base_spec
      "guard={timeout=200us;retry={attempts=5;backoff=50us;max=400us;jitter=0.5}}"
  | Retry_budget ->
    override base_spec
      "guard={timeout=200us;retry={attempts=5;backoff=50us;max=400us;jitter=0.5;\
       budget=0.05x:50}}"

type row = {
  offered_rps : float;
  goodput_rps : float;
  p99_us : float;  (** p99 over measured completions, late ones included *)
  shed_frac : float;
  expired_frac : float;
  retries : int;
  trips : int;
}

(* Goodput is measured the same way in every mode — a probe counting
   completions whose per-attempt latency beat the client patience —
   so guarded and unguarded rows are directly comparable even though
   only guarded runs have a Guard ledger. *)
let run_case spec =
  let goodput = ref 0 in
  let lat = Stat.Summary.create () in
  let probes =
    {
      Preemptible.Server.no_probes with
      Preemptible.Server.on_complete =
        (fun ~now ~latency_ns ~cls:_ ->
          let arrived = now - latency_ns in
          if arrived >= warmup_ns && arrived < duration_ns then begin
            Stat.Summary.record lat (float_of_int latency_ns);
            if latency_ns <= timeout_ns then incr goodput
          end);
    }
  in
  let r = Scenario.run_server ~probes spec in
  let measured_s = float_of_int (duration_ns - warmup_ns) /. 1e9 in
  let offered = r.Preemptible.Server.offered in
  let frac n = if offered = 0 then 0.0 else float_of_int n /. float_of_int offered in
  let p99 =
    if Stat.Summary.count lat = 0 then nan
    else (Stat.Summary.report lat).Stat.Summary.p99 /. 1e3
  in
  let row =
    {
      offered_rps = float_of_int offered /. measured_s;
      goodput_rps = float_of_int !goodput /. measured_s;
      p99_us = p99;
      shed_frac = frac r.Preemptible.Server.shed;
      expired_frac = frac r.Preemptible.Server.dropped;
      retries =
        (match r.Preemptible.Server.guard with None -> 0 | Some g -> g.Guard.retries);
      trips = (match r.Preemptible.Server.guard with None -> 0 | Some g -> g.Guard.trips);
    }
  in
  (row, r)

let load_sweep ~jobs =
  let loads = [ 0.7; 1.0; 1.4; 2.0; 2.8 ] in
  let specs =
    List.concat_map (fun mode -> List.map (fun load -> (mode, load)) loads) all_modes
  in
  let results =
    Bench_util.sweep ~label:"overload" ~jobs
      (fun (mode, load) ->
        fst
          (run_case
             (override (mode_spec mode) (Printf.sprintf "arrival=poisson:%gx" load))))
      specs
  in
  Format.printf "  %-13s %6s %12s %12s %10s %7s %7s %8s@." "mode" "load" "offered/s"
    "goodput/s" "p99_us" "shed%" "expd%" "retries";
  let rows = ref [] in
  List.iter2
    (fun (mode, load) row ->
      let load_label = Printf.sprintf "%.1fx" load in
      Format.printf "  %-13s %6s %12.0f %12.0f %10.1f %6.1f%% %6.1f%% %8d@."
        (mode_name mode) load_label row.offered_rps row.goodput_rps row.p99_us
        (100.0 *. row.shed_frac) (100.0 *. row.expired_frac) row.retries;
      rows :=
        Printf.sprintf "%s,%g,%.0f,%.0f,%.1f,%.4f,%.4f,%d" (mode_name mode) load
          row.offered_rps row.goodput_rps row.p99_us row.shed_frac row.expired_frac
          row.retries
        :: !rows;
      Bench_report.point ~fig:"overload"
        ~labels:[ ("mode", mode_name mode); ("load", load_label) ]
        ~metrics:
          [
            ("offered_rps", row.offered_rps);
            ("goodput_rps", row.goodput_rps);
            ("p99_us", row.p99_us);
            ("shed_frac", row.shed_frac);
            ("expired_frac", row.expired_frac);
            ("retries", float_of_int row.retries);
          ])
    specs results;
  Bench_util.csv ~name:"overload"
    ~header:"mode,load,offered_rps,goodput_rps,p99_us,shed_frac,expired_frac,retries"
    ~rows:(List.rev !rows)

(* Flash crowd: 0.5x capacity base load spiking to 3x, with a scripted
   breaker trip in the guarded run so the fault ledger exercises the
   guard point end-to-end. *)
let flash_arrival = "arrival=flash:0.5x:3x:10ms:3ms:7ms:5ms"

let flash_episode () =
  Bench_util.header
    "Overload: flash crowd (0.5x -> 3x capacity, ramp 3ms / hold 7ms / decay 5ms)";
  let naive_row, _ = run_case (override base_spec flash_arrival) in
  let guard_row, guard_result =
    run_case
      (override (mode_spec Guarded)
         (flash_arrival ^ "; faults={guard.trip=win:16000000-18000000:1}"))
  in
  let show name (row : row) =
    Format.printf "  %-13s goodput=%10.0f/s p99=%10.1fus shed=%5.1f%% trips=%d@." name
      row.goodput_rps row.p99_us (100.0 *. row.shed_frac) row.trips
  in
  show "naive" naive_row;
  show "guard" guard_row;
  (match guard_result.Preemptible.Server.resilience with
  | Some res ->
    let fr = res.Preemptible.Server.fault_report in
    Format.printf "  scripted trip ledger: inj=%d det=%d rec=%d@." fr.Fault.injected
      fr.Fault.detected fr.Fault.recovered;
    Bench_report.resilience ~name:"overload.flash.guard" fr
  | None -> ());
  List.iter
    (fun (name, row) ->
      Bench_report.point ~fig:"overload"
        ~labels:[ ("mode", name); ("load", "flash") ]
        ~metrics:
          [
            ("offered_rps", row.offered_rps);
            ("goodput_rps", row.goodput_rps);
            ("p99_us", row.p99_us);
            ("shed_frac", row.shed_frac);
            ("expired_frac", row.expired_frac);
            ("retries", float_of_int row.retries);
          ])
    [ ("naive", naive_row); ("guard", guard_row) ]

let run ~jobs () =
  let capacity = Scenario.capacity_rps base_spec in
  Bench_util.header
    (Printf.sprintf
       "Overload: goodput vs load past capacity (workload B, %d workers, capacity %.0f/s, \
        patience %dus)"
       base_spec.Scenario.workers capacity (timeout_ns / 1000));
  load_sweep ~jobs;
  flash_episode ();
  Format.printf
    "@.(expected: naive goodput collapses past 1x while guard holds near capacity with a\n\
    \ bounded admitted p99; unbudgeted retries amplify offered load and melt down around\n\
    \ capacity, the 5%%-budget keeps them harmless)@."
