(* Traced run: one LibPreemptible configuration (workload A1, 4
   workers, LibUtimer over UINTR) with the observability layer enabled.
   Exports the Perfetto trace_event JSON and prints the per-request
   latency breakdown — the software analogue of Table IV, measured on
   the running system rather than asserted. *)

let us = Engine.Units.us
let ms = Engine.Units.ms

let run ?out () =
  let out =
    match out with
    | Some f -> f
    | None -> (
      match Bench_util.getenv_nonempty "LP_TRACE_OUT" with
      | Some f -> f
      | None -> "trace.json")
  in
  Bench_util.header "Traced run: workload A1 on LibPreemptible (Perfetto export)";
  let duration_ns = ms 200 in
  let dist = Workload.Service_dist.workload_a1 in
  let rate = 0.7 *. Bench_util.capacity_rps dist ~workers:4 ~duration_ns in
  let cfg =
    Preemptible.Server.default_config ~n_workers:4
      ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:(us 5))
      ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config)
  in
  let cfg =
    {
      cfg with
      Preemptible.Server.trace = Some Obs.Trace.default_config;
      stats_window_ns = ms 10;
    }
  in
  let r =
    Preemptible.Server.run cfg
      ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
      ~source:(Bench_util.lc_source dist) ~duration_ns
  in
  Format.printf "%a@." Preemptible.Server.pp_result r;
  match r.Preemptible.Server.trace with
  | None -> failwith "bench_trace: tracing was configured but no trace came back"
  | Some trace ->
    let bd = Obs.Breakdown.of_trace trace in
    Format.printf "%a@." Obs.Breakdown.pp bd;
    Format.printf "breakdown telescopes to total (1 ns): %b@." (Obs.Breakdown.sums_ok bd);
    Obs.Export.perfetto_to_file trace ~path:out;
    Format.printf "trace: %d events recorded, %d dropped -> %s@." (Obs.Trace.recorded trace)
      (Obs.Trace.dropped trace) out;
    Format.printf "metrics:@.%a@." Obs.Metrics.pp_snapshot r.Preemptible.Server.metrics
