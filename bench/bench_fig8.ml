(* Fig 8: median and p99 latency vs throughput for LibPreemptible,
   LibPreemptible without UINTR, Shinjuku and Libinger across workloads
   A1, A2, B and C; plus the SLO-bounded maximum-throughput summary.

   Two sweep phases: the lightly-loaded SLO-reference runs, then the
   full (workload x system x load) grid.  Each point is an independent
   simulation, so both phases fan out across the pool. *)

let ms = Bench_util.ms

let duration = ms 100
let warmup = ms 20

let systems () =
  [
    Bench_util.libpreemptible ~adaptive:true ();
    Bench_util.libpreemptible_nouintr ();
    Bench_util.shinjuku ();
    Bench_util.libinger ();
  ]

(* The paper bounds p99 by 200x the average latency of a stable
   (lightly loaded) system to define max throughput.  We additionally
   require p99.9 <= 10x that bound: with A1's 0.5% long requests, a
   saturated system can starve the longs entirely — they hide beyond
   the 99th percentile while the shorts flow through, so the p99 bound
   alone would accept throughput above physical capacity. *)
let slo_for (sys : Bench_util.system) dist cap =
  let r =
    Bench_util.run_system sys ~rate:(0.1 *. cap) ~dist ~duration_ns:duration
      ~warmup_ns:warmup
  in
  200.0 *. r.Preemptible.Server.all.Stat.Summary.mean

let run ~jobs () =
  Bench_util.header "Fig 8: latency vs throughput, four systems x four workloads";
  (* Sweep past nominal capacity: the systems differ exactly in how
     much of it their preemption overhead burns. *)
  let loads = [ 0.5; 0.7; 0.8; 0.85; 0.9; 0.95; 1.0; 1.05 ] in
  let workloads = Bench_util.named_workloads in
  let sys_list = systems () in
  (* Capacity reference: 4 worker cores (LibPreemptible's budget); all
     systems sweep the same absolute rates so throughputs are
     comparable. *)
  let cap_of dist = Bench_util.capacity ~dist ~workers:4 ~duration_ns:duration in
  let slo_specs =
    List.concat_map
      (fun (wname, dist) -> List.map (fun sys -> (wname, dist, sys)) sys_list)
      workloads
  in
  let slos =
    Bench_util.sweep ~label:"fig8.slo" ~jobs
      (fun (_, dist, sys) -> slo_for sys dist (cap_of dist))
      slo_specs
  in
  let slo_tbl = Hashtbl.create 16 in
  List.iter2
    (fun (wname, _, sys) slo -> Hashtbl.replace slo_tbl (wname, sys.Bench_util.sys_name) slo)
    slo_specs slos;
  let specs =
    List.concat_map
      (fun (wname, dist) ->
        List.concat_map
          (fun sys -> List.map (fun load -> (wname, dist, sys, load)) loads)
          sys_list)
      workloads
  in
  let results =
    Bench_util.sweep ~label:"fig8" ~jobs
      (fun (_, dist, sys, load) ->
        Bench_util.run_system sys ~rate:(load *. cap_of dist) ~dist
          ~duration_ns:duration ~warmup_ns:warmup)
      specs
  in
  let res_tbl = Hashtbl.create 128 in
  List.iter2
    (fun (wname, _, sys, load) r ->
      Hashtbl.replace res_tbl (wname, sys.Bench_util.sys_name, load) r)
    specs results;
  let max_tputs = Hashtbl.create 16 in
  let p99_at_95 = Hashtbl.create 16 in
  let rows = ref [] in
  List.iter
    (fun (wname, dist) ->
      Format.printf "@.workload %s (sweep up to ~%.2f Mrps)@." wname (cap_of dist /. 1e6);
      Format.printf "%-26s %9s %11s %11s %11s@." "system" "offered" "tput(rps)" "p50(us)"
        "p99(us)";
      List.iter
        (fun sys ->
          let sname = sys.Bench_util.sys_name in
          let slo = Hashtbl.find slo_tbl (wname, sname) in
          let best = ref 0.0 in
          List.iter
            (fun load ->
              let r = Hashtbl.find res_tbl (wname, sname, load) in
              let p50 = r.Preemptible.Server.all.Stat.Summary.p50 in
              let p99 = r.Preemptible.Server.all.Stat.Summary.p99 in
              let p999 = r.Preemptible.Server.all.Stat.Summary.p999 in
              if p99 <= slo && p999 <= 10.0 *. slo
                 && r.Preemptible.Server.throughput_rps > !best
              then best := r.Preemptible.Server.throughput_rps;
              if load = 0.9 then Hashtbl.replace p99_at_95 (wname, sname) p99;
              rows :=
                Printf.sprintf "%s,%s,%g,%g,%g,%g" wname sname load
                  r.Preemptible.Server.throughput_rps (p50 /. 1e3) (p99 /. 1e3)
                :: !rows;
              Bench_report.point ~fig:"fig8"
                ~labels:
                  [
                    ("workload", wname);
                    ("system", sname);
                    ("load", Printf.sprintf "%g" load);
                  ]
                ~metrics:
                  [
                    ("tput_rps", r.Preemptible.Server.throughput_rps);
                    ("p50_us", p50 /. 1e3);
                    ("p99_us", p99 /. 1e3);
                    ("p999_us", p999 /. 1e3);
                  ];
              Format.printf "%-26s %8.0f%% %11.0f %11.1f %11.1f@." sname (100.0 *. load)
                r.Preemptible.Server.throughput_rps (p50 /. 1e3) (p99 /. 1e3))
            loads;
          Hashtbl.replace max_tputs (wname, sname) !best)
        sys_list)
    workloads;
  Bench_util.csv ~name:"fig8" ~header:"workload,system,load,tput_rps,p50_us,p99_us"
    ~rows:(List.rev !rows);
  Bench_util.header
    "Fig 8 summary: max tput with p99 <= 200x stable mean (and p99.9 <= 10x that)";
  Format.printf "%-10s" "workload";
  List.iter (fun s -> Format.printf "%26s" s.Bench_util.sys_name) sys_list;
  Format.printf "%22s@." "LP vs Shinjuku";
  List.iter
    (fun (wname, _) ->
      Format.printf "%-10s" wname;
      let get s = try Hashtbl.find max_tputs (wname, s.Bench_util.sys_name) with Not_found -> 0.0 in
      List.iter
        (fun s ->
          Bench_report.point ~fig:"fig8_summary"
            ~labels:[ ("workload", wname); ("system", s.Bench_util.sys_name) ]
            ~metrics:[ ("max_tput_rps", get s) ];
          Format.printf "%25.0fk" (get s /. 1e3))
        sys_list;
      let lp = get (List.nth sys_list 0) and sh = get (List.nth sys_list 2) in
      if sh > 0.0 then Format.printf "%21.0f%%@." (100.0 *. (lp -. sh) /. sh)
      else Format.printf "%22s@." "-")
    workloads;
  Format.printf "@.p99 at 90%% load (tail-latency headline):@.";
  Format.printf "%-10s %16s %16s %12s@." "workload" "LP p99(us)" "Shinjuku p99(us)" "ratio";
  List.iter
    (fun (wname, _) ->
      let find s =
        try Hashtbl.find p99_at_95 (wname, s.Bench_util.sys_name) with Not_found -> nan
      in
      let lp = find (List.nth sys_list 0) and sh = find (List.nth sys_list 2) in
      Format.printf "%-10s %16.1f %16.1f %11.1fx@." wname (lp /. 1e3) (sh /. 1e3) (sh /. lp))
    workloads;
  Format.printf
    "@.(expected shape: LibPreemptible holds ~10x lower p99 than Shinjuku near\n\
    \ saturation, +~22%% max throughput on A1 and +~33%% on C; disabling UINTR\n\
    \ costs >5x tail at high load; Libinger trails both)@."
