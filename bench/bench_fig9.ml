(* Fig 9: SLO violations over time on workload C — adaptive time quanta
   (Algorithm 1) against a static quantum.  The controller runs at the
   stats-window boundary, off the critical path. *)

let us = Bench_util.us
let ms = Bench_util.ms

let duration = ms 400
let slo_ns = us 50
let window = ms 40

(* The common scenario: workload C under a two-phase arrival (heavy at
   900 kRPS for the first half, light at 250 kRPS after); each variant
   only swaps the quantum fields in. *)
let base_spec =
  Bench_util.spec_of_string
    "src=c; arrival=piecewise(200ms:poisson:900000,400ms:poisson:250000); \
     dur=400ms; window=40ms"

let run_one spec =
  let violations = Stat.Timeseries.create ~window_ns:window in
  let totals = Stat.Timeseries.create ~window_ns:window in
  let quanta = ref [] in
  let probes =
    {
      Preemptible.Server.on_complete =
        (fun ~now ~latency_ns ~cls:_ ->
          Stat.Timeseries.mark totals ~time:now;
          if latency_ns > slo_ns then Stat.Timeseries.mark violations ~time:now);
      on_window =
        (fun snapshot ~quantum_ns ->
          quanta := (snapshot.Preemptible.Stats_window.window_start_ns, quantum_ns) :: !quanta);
      on_tick = ignore;
    }
  in
  let r = Scenario.run_server ~probes spec in
  (r, Stat.Timeseries.points violations, Stat.Timeseries.points totals, List.rev !quanta)

let print_run name (r, viol, totals, quanta) =
  Format.printf "@.%s: overall p99=%.1fus preemptions=%d@." name
    (r.Preemptible.Server.all.Stat.Summary.p99 /. 1e3)
    r.Preemptible.Server.preemptions;
  Format.printf "  %8s %12s %10s@." "window" "violations" "quantum";
  let total_viol = ref 0 and total_n = ref 0 in
  List.iter
    (fun (p : Stat.Timeseries.point) ->
      let t = p.Stat.Timeseries.t_start in
      let v =
        match
          List.find_opt (fun (q : Stat.Timeseries.point) -> q.Stat.Timeseries.t_start = t) viol
        with
        | Some q -> q.Stat.Timeseries.count
        | None -> 0
      in
      total_viol := !total_viol + v;
      total_n := !total_n + p.Stat.Timeseries.count;
      let q = try List.assoc t quanta with Not_found -> 0 in
      Format.printf "  %6.0fms %11.2f%% %9s@." (Engine.Units.to_ms t)
        (100.0 *. float_of_int v /. float_of_int (max p.Stat.Timeseries.count 1))
        (if q = 0 then "-" else Printf.sprintf "%dus" (q / 1000)))
    totals;
  Format.printf "  total violation rate: %.2f%%@."
    (100.0 *. float_of_int !total_viol /. float_of_int (max !total_n 1));
  100.0 *. float_of_int !total_viol /. float_of_int (max !total_n 1)
  |> fun rate -> rate

let variants =
  [
    ("static 40us", "quantum=40us");
    ( "adaptive (Algorithm 1)",
      "quantum=adaptive:40us; maxload=1300000; \
       ctl={k1=8us;k2=8us;k3=8us;tmax=60us;lhigh=0.6;llow=0.25}" );
  ]

let variant_spec overrides =
  match Scenario.override base_spec overrides with
  | Ok s -> s
  | Error e -> invalid_arg ("fig9: " ^ Scenario.error_to_string e)

let run ~jobs () =
  Bench_util.header "Fig 9: SLO (50us) violations on workload C, static vs adaptive quanta";
  (* The controller state is built inside the task (from the spec) so
     parallel variants never share a controller. *)
  let results =
    Bench_util.sweep ~label:"fig9" ~jobs
      (fun (_, overrides) -> run_one (variant_spec overrides))
      variants
  in
  let rates =
    List.map2
      (fun (name, _) ((r, _, _, _) as res) ->
        let rate = print_run name res in
        Bench_report.point ~fig:"fig9"
          ~labels:[ ("variant", name) ]
          ~metrics:
            [
              ("violation_rate_pct", rate);
              ("p99_us", r.Preemptible.Server.all.Stat.Summary.p99 /. 1e3);
              ("preemptions", float_of_int r.Preemptible.Server.preemptions);
            ];
        rate)
      variants results
  in
  let static_rate = List.nth rates 0 and adaptive_rate = List.nth rates 1 in
  Format.printf
    "@.(expected: the controller tightens the quantum in the heavy-tailed phase —\n\
    \ cutting violations vs static — and relaxes it in the light/low phase,\n\
    \ saving preemption cycles; static %.2f%% vs adaptive %.2f%% here)@."
    static_rate adaptive_rate
