(* Resilience suite: fault-rate sweep with the recovery layer on/off.

   The headline experiment injects UIPI notification loss on the
   SENDUIPI path ("uipi.drop") at increasing rates and compares three
   configurations under the same seed and load:

   - fault-free baseline (no plan, no watchdog);
   - faults with recovery OFF: a lost preemption interrupt silently
     turns the current function into run-to-completion, so long
     requests re-introduce the head-of-line blocking the whole system
     exists to prevent — the p99 grows without bound as the rate rises;
   - faults with recovery ON: the LibUtimer watchdog notices the
     missing delivery within its grace window and re-issues, bounding
     the damage to roughly (grace + one retry) per lost interrupt.

   A second demo kills the timer core outright ("utimer.crash") and
   shows spare-core failover, then — with no spare configured — the
   graceful degradation to kernel-timer preemption. *)

let us = Engine.Units.us
let ms = Engine.Units.ms

let dist = Workload.Service_dist.workload_a1
let workers = 4

let run_case ~seed ~rate ~duration_ns ~warmup_ns ~spec ~watchdog =
  let faults =
    match spec with
    | None -> None
    | Some s ->
      let f = Fault.create ~seed () in
      (match Fault.parse f s with
      | Ok () -> ()
      | Error msg -> invalid_arg ("bench_faults: bad fault spec: " ^ msg));
      Some f
  in
  let cfg =
    Preemptible.Server.default_config ~n_workers:workers
      ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:(us 5))
      ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config)
  in
  let cfg = { cfg with Preemptible.Server.faults; watchdog; seed } in
  Preemptible.Server.run ~warmup_ns cfg
    ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
    ~source:(Bench_util.lc_source dist) ~duration_ns

(* Surface the ledger in bench --report meta.resilience so CI artifacts
   carry the injected/detected/recovered accounting, not just stdout. *)
let record_ledger ~name (r : Preemptible.Server.result) =
  match r.Preemptible.Server.resilience with
  | None -> ()
  | Some res -> Bench_report.resilience ~name res.Preemptible.Server.fault_report

let ledger_line r =
  match r.Preemptible.Server.resilience with
  | None -> "-"
  | Some res ->
    let fr = res.Preemptible.Server.fault_report in
    Printf.sprintf "inj=%d det=%d rec=%d undet=%d" fr.Fault.injected fr.Fault.detected
      fr.Fault.recovered fr.Fault.undetected

let sweep ~seed ~rate ~duration_ns ~warmup_ns =
  Bench_util.header "Resilience: UIPI loss sweep (workload A1, 4 workers, q=5us)";
  let base = run_case ~seed ~rate ~duration_ns ~warmup_ns ~spec:None ~watchdog:None in
  let base_p99 = base.Preemptible.Server.all.Stat.Summary.p99 in
  Format.printf "  %-28s p99=%8.1fus  (fault-free baseline)@." "drop=0" (base_p99 /. 1e3);
  let rows = ref [] in
  List.iter
    (fun drop ->
      let spec = Some (Printf.sprintf "uipi.drop=p:%g" drop) in
      let off = run_case ~seed ~rate ~duration_ns ~warmup_ns ~spec ~watchdog:None in
      let on =
        run_case ~seed ~rate ~duration_ns ~warmup_ns ~spec
          ~watchdog:(Some Utimer.default_watchdog)
      in
      record_ledger ~name:(Printf.sprintf "faults.uipi.drop=%g/recovery=off" drop) off;
      record_ledger ~name:(Printf.sprintf "faults.uipi.drop=%g/recovery=on" drop) on;
      let p99_off = off.Preemptible.Server.all.Stat.Summary.p99 in
      let p99_on = on.Preemptible.Server.all.Stat.Summary.p99 in
      Format.printf
        "  drop=%-5g recovery=off  p99=%8.1fus (%5.1fx)   [%s]@." drop (p99_off /. 1e3)
        (p99_off /. base_p99) (ledger_line off);
      Format.printf
        "  drop=%-5g recovery=on   p99=%8.1fus (%5.1fx)   [%s]@." drop (p99_on /. 1e3)
        (p99_on /. base_p99) (ledger_line on);
      rows :=
        Printf.sprintf "%g,off,%.1f,%.3f" drop (p99_off /. 1e3) (p99_off /. base_p99)
        :: Printf.sprintf "%g,on,%.1f,%.3f" drop (p99_on /. 1e3) (p99_on /. base_p99)
        :: !rows)
    [ 0.001; 0.01; 0.05 ];
  Bench_util.csv ~name:"faults"
    ~header:"drop_rate,recovery,p99_us,ratio_vs_fault_free"
    ~rows:(List.rev !rows)

let crash_demo ~seed ~rate ~duration_ns ~warmup_ns =
  Bench_util.header "Resilience: timer-core crash";
  let spec = Some "utimer.crash=once:2000" in
  let failover =
    run_case ~seed ~rate ~duration_ns ~warmup_ns ~spec
      ~watchdog:(Some Utimer.default_watchdog)
  in
  let degraded =
    run_case ~seed ~rate ~duration_ns ~warmup_ns ~spec
      ~watchdog:(Some { Utimer.default_watchdog with Utimer.wd_spare_cores = 0 })
  in
  let show name (r : Preemptible.Server.result) =
    match r.Preemptible.Server.resilience with
    | Some res ->
      Format.printf "  %-22s p99=%8.1fus  %a@." name
        (r.Preemptible.Server.all.Stat.Summary.p99 /. 1e3)
        Preemptible.Server.pp_resilience res
    | None -> ()
  in
  record_ledger ~name:"faults.utimer.crash/failover" failover;
  record_ledger ~name:"faults.utimer.crash/degraded" degraded;
  show "crash, 1 spare core" failover;
  show "crash, no spare" degraded

let run () =
  let seed = 7L in
  let duration_ns = ms 60 and warmup_ns = ms 10 in
  let rate =
    0.6 *. Bench_util.capacity_rps dist ~workers ~duration_ns
  in
  sweep ~seed ~rate ~duration_ns ~warmup_ns;
  crash_demo ~seed ~rate ~duration_ns ~warmup_ns
