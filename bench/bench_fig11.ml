(* Fig 11: scalability of timer interrupt delivery across strategies
   (1000 interrupts per thread, 100us interval). *)

module Ts = Baselines.Timer_strategies

let run ~jobs () =
  Bench_util.header
    "Fig 11: timer delivery overhead (us, mean) vs thread count; 1000 interrupts @ 100us";
  let thread_counts = [ 1; 2; 4; 8; 16; 32 ] in
  let specs =
    List.concat_map
      (fun strategy -> List.map (fun threads -> (strategy, threads)) thread_counts)
      Ts.all
  in
  let results =
    Bench_util.sweep ~label:"fig11" ~jobs
      (fun (strategy, threads) ->
        Ts.delivery_overhead strategy ~threads ~interval_ns:(Bench_util.us 100)
          ~rounds:1000)
      specs
  in
  let by_key = Hashtbl.create 32 in
  List.iter2
    (fun (strategy, threads) r -> Hashtbl.replace by_key (Ts.name strategy, threads) r)
    specs results;
  Format.printf "%-30s" "strategy \\ threads";
  List.iter (fun n -> Format.printf "%9d" n) thread_counts;
  Format.printf "@.";
  let rows = ref [] in
  List.iter
    (fun strategy ->
      Format.printf "%-30s" (Ts.name strategy);
      List.iter
        (fun threads ->
          let r = Hashtbl.find by_key (Ts.name strategy, threads) in
          rows :=
            Printf.sprintf "%s,%d,%g,%g" (Ts.name strategy) threads r.Ts.mean_overhead_us
              r.Ts.p99_overhead_us
            :: !rows;
          Bench_report.point ~fig:"fig11"
            ~labels:[ ("strategy", Ts.name strategy); ("threads", string_of_int threads) ]
            ~metrics:
              [ ("mean_us", r.Ts.mean_overhead_us); ("p99_us", r.Ts.p99_overhead_us) ];
          Format.printf "%9.2f" r.Ts.mean_overhead_us)
        thread_counts;
      Format.printf "@.")
    Ts.all;
  Bench_util.csv ~name:"fig11" ~header:"strategy,threads,mean_us,p99_us"
    ~rows:(List.rev !rows);
  Format.printf
    "@.(expected: creation-time aligned timers superlinear — ~100us p99 at 32\n\
    \ threads; staggering flattens it; chaining is linear in the chain position;\n\
    \ LibUtimer stays in the low microseconds)@."
