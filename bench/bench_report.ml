(* Machine-readable bench report (bench --report FILE.json).

   Figures record one JSON point per sweep element: a set of string
   labels identifying the point (workload, system, load, ...) and a set
   of float metrics (p50_us, p99_us, tput_rps, ...).  Points carry only
   simulation-derived numbers, so two reports from the same seed are
   byte-identical under "figures" regardless of --jobs; host-dependent
   facts (wall-clock, jobs used) live under "meta", which CI strips
   before diffing and lpbench_check ignores.

   Collection is off until [start] is called, and [point] must be
   called from the harness's sequential reporting phase (after the
   sweep), never from inside a pool task. *)

type point = { labels : (string * string) list; metrics : (string * float) list }

type figure = { mutable points : point list; mutable wall_s : float }

let collecting = ref false
let jobs_used = ref 1
let figures : (string, figure) Hashtbl.t = Hashtbl.create 16
let order : string list ref = ref []
let t_start = ref 0.0

let active () = !collecting

let start ~jobs =
  collecting := true;
  jobs_used := jobs;
  t_start := Unix.gettimeofday ()

let figure name =
  match Hashtbl.find_opt figures name with
  | Some f -> f
  | None ->
    let f = { points = []; wall_s = 0.0 } in
    Hashtbl.add figures name f;
    order := name :: !order;
    f

let point ~fig ~labels ~metrics =
  if !collecting then begin
    let f = figure fig in
    f.points <- { labels; metrics } :: f.points
  end

(* Perf-probe metrics (bench --perf).  Host-dependent like wall-clock,
   so they land under "meta" (as meta.perf), never under "figures" —
   except that the minor-word and event-count entries are in fact
   deterministic for a fixed binary, which is what the CI perf gate
   reads. *)
let perf_metrics : (string * float) list ref = ref []

let perf name value =
  if !collecting then perf_metrics := (name, value) :: !perf_metrics

(* Fault-injection resilience ledgers (bench --faults, --overload).
   Simulation-derived and deterministic like figure points, but they
   describe a run's fault bookkeeping rather than a plotted metric, so
   they land under "meta" as meta.resilience; lpbench_check ignores
   them and CI strips meta before diffing. *)
let resilience_entries : (string * Fault.report) list ref = ref []

let resilience ~name (r : Fault.report) =
  if !collecting then resilience_entries := (name, r) :: !resilience_entries

(* Called by main around each element so per-figure wall-clock lands in
   meta even for elements that record no points. *)
let timed name f =
  if not !collecting then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () -> (figure name).wall_s <- Unix.gettimeofday () -. t0)
      f
  end

let json_of_point p =
  Obs.Json.Obj
    [
      ("labels", Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Str v)) p.labels));
      ("metrics", Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Num v)) p.metrics));
    ]

let write ~path =
  let names = List.rev !order in
  let fig_members =
    List.filter_map
      (fun name ->
        let f = Hashtbl.find figures name in
        match f.points with
        | [] -> None
        | ps -> Some (name, Obs.Json.List (List.rev_map json_of_point ps)))
      names
  in
  let wall_members =
    List.map
      (fun name -> (name, Obs.Json.Num (Hashtbl.find figures name).wall_s))
      names
  in
  let doc =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Num 1.0);
        ( "meta",
          Obs.Json.Obj
            ([
               ("jobs", Obs.Json.Num (float_of_int !jobs_used));
               ("total_wall_s", Obs.Json.Num (Unix.gettimeofday () -. !t_start));
               ("wall_s", Obs.Json.Obj wall_members);
             ]
            @ (match List.rev !perf_metrics with
              | [] -> []
              | ps ->
                [ ("perf", Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Num v)) ps)) ])
            @
            match List.rev !resilience_entries with
            | [] -> []
            | rs ->
              let num i = Obs.Json.Num (float_of_int i) in
              let json_of_ledger (r : Fault.report) =
                Obs.Json.Obj
                  [
                    ("injected", num r.Fault.injected);
                    ("detected", num r.Fault.detected);
                    ("recovered", num r.Fault.recovered);
                    ("undetected", num r.Fault.undetected);
                    ( "points",
                      Obs.Json.Obj
                        (List.map
                           (fun (p : Fault.point_report) ->
                             ( p.Fault.pname,
                               Obs.Json.Obj
                                 [
                                   ("evals", num p.Fault.pevals);
                                   ("injected", num p.Fault.pinjected);
                                   ("detected", num p.Fault.pdetected);
                                   ("recovered", num p.Fault.precovered);
                                 ] ))
                           r.Fault.points) );
                  ]
              in
              [
                ( "resilience",
                  Obs.Json.Obj (List.map (fun (n, r) -> (n, json_of_ledger r)) rs) );
              ]) );
        ("figures", Obs.Json.Obj fig_members);
      ]
  in
  Obs.Json.to_file doc ~path;
  Format.printf "@.(report: %s — %d figures, jobs=%d)@." path (List.length fig_members)
    !jobs_used
