(* bench --perf: engine hot-path throughput and allocation budget.

   Two probes, recorded under the report's [meta.perf] block — never
   under "figures":

   - engine micro: a fixed population of self-rescheduling callbacks
     pushed through one [Sim.t].  The callbacks are preallocated, so
     every word of garbage the probe observes is engine-internal
     (heap, event records, queue cells) — the alloc budget DESIGN §9
     commits to.

   - server macro: one mid-load Fig 8-style point (workload A2,
     LibPreemptible q=5us).  This exercises the full dispatch path:
     arrivals, rqueues, context pool, utimer scan, preemption.

   Events/sec numbers are host wall-clock facts; the minor-word and
   event counts depend only on the compiled program (simulated-time
   normalisation), which is what lets CI gate them next to the
   determinism job (see EXPERIMENTS.md). *)

let micro_events = 2_000_000

let micro_population = 4096
(* Live-event population during the probe.  Sized like a loaded server:
   thousands of outstanding arrivals, quanta and timer polls in flight
   at once (a mid-load Fig 8 point keeps live_events in the thousands),
   so the heap works at realistic depth. *)

let engine_micro () =
  let sim = Engine.Sim.create ~seed:7L () in
  let fired = ref 0 in
  let cbs =
    Array.init micro_population (fun i ->
        let gap = (i * 37 mod 97) + 1 in
        let rec cb () =
          incr fired;
          if !fired + micro_population <= micro_events then
            ignore (Engine.Sim.after sim gap cb)
        in
        cb)
  in
  Array.iteri (fun i cb -> ignore (Engine.Sim.after sim (i + 1) cb)) cbs;
  Gc.full_major ();
  let alloc = Obs.Alloc.start () in
  let t0 = Unix.gettimeofday () in
  Engine.Sim.run sim;
  let wall = Unix.gettimeofday () -. t0 in
  let words = Obs.Alloc.words alloc in
  (!fired, wall, words)

let server_macro () =
  let dist = Workload.Service_dist.workload_a2 in
  let duration_ns = Engine.Units.ms 100 in
  let warmup_ns = Engine.Units.ms 20 in
  let rate = 0.8 *. Bench_util.capacity_rps dist ~workers:4 ~duration_ns in
  let cfg =
    Preemptible.Server.default_config ~n_workers:4
      ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:(Engine.Units.us 5))
      ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config)
  in
  Gc.full_major ();
  let alloc = Obs.Alloc.start () in
  let t0 = Unix.gettimeofday () in
  let r =
    Preemptible.Server.run ~warmup_ns cfg
      ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
      ~source:(Bench_util.lc_source dist) ~duration_ns
  in
  let wall = Unix.gettimeofday () -. t0 in
  let words = Obs.Alloc.words alloc in
  (r, wall, words, float_of_int duration_ns /. 1e9)

let run () =
  Bench_util.header "perf: engine hot-path throughput and allocation budget";
  let fired, wall, words = engine_micro () in
  let eps = float_of_int fired /. wall in
  let wpe = words /. float_of_int fired in
  Format.printf "engine micro: %d events in %.3fs = %.2f Mev/s, %.2f minor words/event@."
    fired wall (eps /. 1e6) wpe;
  Bench_report.perf "micro_events_per_s" eps;
  Bench_report.perf "micro_minor_words_per_event" wpe;
  let r, swall, swords, sim_s = server_macro () in
  let swps = swords /. sim_s in
  let sim_events = float_of_int r.Preemptible.Server.sim_events in
  Format.printf
    "server macro: %d completed, %.0f sim events, wall %.3fs (%.3f sim s)@."
    r.Preemptible.Server.completed sim_events swall sim_s;
  Format.printf "server macro: %.2f Mev/s wall, %.3g minor words/sim s@."
    (sim_events /. swall /. 1e6) swps;
  Bench_report.perf "server_events_per_s" (sim_events /. swall);
  Bench_report.perf "server_sim_events" sim_events;
  Bench_report.perf "server_minor_words_per_sim_s" swps
