(* Fig 14: average LC / BE latency over time under a bursty load, with
   a constant 50us preemption interval, a constant 10us interval, and
   scheduling policy #2 — the dynamic interval set from a QPS monitor. *)

let us = Bench_util.us
let ms = Bench_util.ms

let duration = ms 2_000
let window = ms 100

(* QPS oscillates 40 -> 110 kRPS with periodic spikes; one worker over
   the MICA/zlib colocation mix, 50ms stats windows. *)
let spec_for quantum_us =
  Bench_util.spec_of_string
    (Printf.sprintf
       "workers=1; quantum=%dus; src=mix(0.98*mica,0.02*zlib); \
        arrival=bursty:40000:110000:500ms:0.3; dur=2s; window=50ms"
       quantum_us)

(* Policy #2: the QPS monitor interpolates the preemption interval
   between 50us at <=40 kRPS and 10us at >=110 kRPS, re-evaluated at
   each stats-window boundary. *)
let dynamic_policy () =
  let quantum = ref (us 50) in
  {
    Preemptible.Policy.name = "fcfs-preempt-dynamic(10..50us)";
    pick = (fun ~new_ready:_ ~preempted_ready:_ -> Preemptible.Policy.Run_new);
    quantum_ns = (fun ~now:_ ~cls:_ -> !quantum);
    on_window =
      (fun snapshot ->
        let qps = snapshot.Preemptible.Stats_window.arrival_rate_per_s in
        let frac = (qps -. 40_000.0) /. 70_000.0 in
        let frac = Float.max 0.0 (Float.min 1.0 frac) in
        quantum := us 50 - int_of_float (frac *. float_of_int (us 40)));
  }

type trace = {
  qps : Stat.Timeseries.t;
  lc : Stat.Timeseries.t;
  be : Stat.Timeseries.t;
}

let run_one (spec, policy_override) =
  let tr =
    {
      qps = Stat.Timeseries.create ~window_ns:window;
      lc = Stat.Timeseries.create ~window_ns:window;
      be = Stat.Timeseries.create ~window_ns:window;
    }
  in
  let probes =
    {
      Preemptible.Server.on_complete =
        (fun ~now ~latency_ns ~cls ->
          Stat.Timeseries.mark tr.qps ~time:now;
          match cls with
          | Workload.Request.Latency_critical ->
            Stat.Timeseries.record tr.lc ~time:now (float_of_int latency_ns)
          | Workload.Request.Best_effort ->
            Stat.Timeseries.record tr.be ~time:now (float_of_int latency_ns));
      on_window = (fun _ ~quantum_ns:_ -> ());
      on_tick = ignore;
    }
  in
  (* The dynamic variant's QPS-tracking policy lives outside the DSL:
     lower the spec to a config, then swap the policy in. *)
  let cfg = Scenario.server_config spec in
  let cfg =
    match policy_override with
    | None -> cfg
    | Some policy -> { cfg with Preemptible.Server.policy }
  in
  let r =
    Preemptible.Server.run ~probes cfg
      ~arrival:(Scenario.arrival_process spec)
      ~source:(Scenario.source_sampler spec) ~duration_ns:duration
  in
  (r, tr)

let mean_of series t =
  match
    List.find_opt
      (fun (p : Stat.Timeseries.point) -> p.Stat.Timeseries.t_start = t)
      (Stat.Timeseries.points series)
  with
  | Some p when p.Stat.Timeseries.count > 0 -> p.Stat.Timeseries.mean /. 1e3
  | Some _ | None -> nan

let print_trace name (r, tr) =
  Format.printf "@.%s  (LC overall mean %.1fus, BE overall p50 %.1fus)@." name
    (match r.Preemptible.Server.lc with
    | Some rep -> rep.Stat.Summary.mean /. 1e3
    | None -> nan)
    (match r.Preemptible.Server.be with
    | Some rep -> rep.Stat.Summary.p50 /. 1e3
    | None -> nan);
  Format.printf "  %8s %10s %12s %12s@." "t(ms)" "kQPS" "LC avg(us)" "BE avg(us)";
  List.iter
    (fun (p : Stat.Timeseries.point) ->
      let t = p.Stat.Timeseries.t_start in
      Format.printf "  %8.0f %10.1f %12.2f %12.1f@." (Engine.Units.to_ms t)
        (Stat.Timeseries.rate_per_sec p ~window_ns:window /. 1e3)
        (mean_of tr.lc t) (mean_of tr.be t))
    (Stat.Timeseries.points tr.qps)

(* Policies carry mutable interval state, so each task builds its own
   inside the pool worker. *)
let variants =
  [
    ("constant 50us", fun () -> (spec_for 50, None));
    ("constant 10us", fun () -> (spec_for 10, None));
    ("dynamic 10..50us (policy #2)", fun () -> (spec_for 50, Some (dynamic_policy ())));
  ]

let run ~jobs () =
  Bench_util.header
    "Fig 14: bursty load (40->110 kRPS), constant vs dynamic preemption interval";
  let results =
    Bench_util.sweep ~label:"fig14" ~jobs (fun (_, mk) -> run_one (mk ())) variants
  in
  List.iter2
    (fun (name, _) ((r, _) as res) ->
      print_trace name res;
      Bench_report.point ~fig:"fig14"
        ~labels:[ ("variant", name) ]
        ~metrics:
          [
            ( "lc_mean_us",
              match r.Preemptible.Server.lc with
              | Some rep -> rep.Stat.Summary.mean /. 1e3
              | None -> nan );
            ( "be_p50_us",
              match r.Preemptible.Server.be with
              | Some rep -> rep.Stat.Summary.p50 /. 1e3
              | None -> nan );
            ("preemptions", float_of_int r.Preemptible.Server.preemptions);
          ])
    variants results;
  Format.printf
    "@.(expected: 50us keeps BE cheap but LC average spikes with the bursts; 10us\n\
    \ holds LC low at a higher BE cost; the dynamic policy tracks the spikes —\n\
    \ near-10us LC latency during bursts, near-50us BE cost when load is low)@."
