(* bench --rt: real-core fiber runtime micro-benchmarks.

   Three job shapes pushed through a 2-domain {!Fiber_rt.Pool}:

   - fib:   CPU-bound recursion with periodic checkpoints — measures
            raw fiber throughput under preemption pressure.
   - chain: each job submits the next — measures the submit/wakeup
            dispatch path (inbox, condvar, deque) end to end.
   - hash:  MD5 over a 4 KiB payload with a checkpoint per block —
            a memory-touching service loop like a KV-store hot path.

   Everything here is wall-clock on real domains, so results land under
   [meta.perf] (host-dependent), never under "figures": the simulator's
   deterministic figures stay byte-identical.  Per-domain throughput is
   reported so a scheduling regression that starves one domain (broken
   stealing, lost wakeups) shows up even when the total survives. *)

module Pool = Fiber_rt.Pool

let workers = 2

type outcome = {
  jobs : int;
  wall_s : float;
  per_worker : int array;
  steals : int;
  preemptions : int;
}

let run_case ?quantum_ns ~jobs submit_all =
  let pool = Pool.create ?quantum_ns ~workers () in
  let t0 = Unix.gettimeofday () in
  submit_all pool;
  Pool.drain pool;
  let wall_s = Unix.gettimeofday () -. t0 in
  let st = Pool.stats pool in
  Pool.shutdown pool;
  assert (st.Pool.failed = 0);
  {
    jobs;
    wall_s;
    per_worker = st.Pool.executed;
    steals = Array.fold_left ( + ) 0 st.Pool.stolen;
    preemptions = st.Pool.preemptions;
  }

(* fib: ~22k calls per job, checkpoint every 256 calls so a 200 us
   quantum actually lands. *)
let fib_jobs = 200

let fib_job () =
  let calls = ref 0 in
  let rec fib n =
    incr calls;
    if !calls land 255 = 0 then Pool.checkpoint ();
    if n < 2 then n else fib (n - 1) + fib (n - 2)
  in
  ignore (fib 20 : int)

(* chain: sequential dependency — link i submits link i+1 from inside
   the pool, so every hop pays the full dispatch path. *)
let chain_links = 2_000

let chain_root pool =
  let rec link i () = if i < chain_links then Pool.submit pool (link (i + 1)) in
  Pool.submit pool (link 1)

(* hash: 32 MD5 blocks of 4 KiB per job, checkpoint between blocks. *)
let hash_jobs = 200
let hash_payload = String.make 4096 'x'

let hash_job () =
  for _ = 1 to 32 do
    ignore (Digest.string hash_payload : string);
    Pool.checkpoint ()
  done

let report name (o : outcome) =
  let rate = float_of_int o.jobs /. o.wall_s in
  Format.printf "  %-6s %7d jobs  %8.0f jobs/s  per-domain [%s]  steals %d  preempts %d@."
    name o.jobs rate
    (String.concat " "
       (Array.to_list
          (Array.map (fun n -> Printf.sprintf "%.0f/s" (float_of_int n /. o.wall_s)) o.per_worker)))
    o.steals o.preemptions;
  Bench_report.perf (Printf.sprintf "rt_%s_jobs_per_s" name) rate;
  Array.iteri
    (fun i n ->
      Bench_report.perf
        (Printf.sprintf "rt_%s_w%d_jobs_per_s" name i)
        (float_of_int n /. o.wall_s))
    o.per_worker;
  Bench_report.perf (Printf.sprintf "rt_%s_steals" name) (float_of_int o.steals)

let run () =
  Bench_util.header
    (Printf.sprintf "bench --rt: fiber runtime micro-benchmarks (%d real domains)" workers);
  let fib =
    run_case ~quantum_ns:200_000 ~jobs:fib_jobs (fun pool ->
        for _ = 1 to fib_jobs do
          Pool.submit pool fib_job
        done)
  in
  report "fib" fib;
  let chain = run_case ~jobs:chain_links chain_root in
  report "chain" chain;
  let hash =
    run_case ~quantum_ns:200_000 ~jobs:hash_jobs (fun pool ->
        for _ = 1 to hash_jobs do
          Pool.submit pool hash_job
        done)
  in
  report "hash" hash;
  Format.printf "  (wall-clock facts: recorded under meta.perf, not figures)@."
