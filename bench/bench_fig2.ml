(* Fig 2: p99 latency vs load for different preemption quanta, on a
   heavy-tailed bimodal workload and a light-tailed exponential
   workload, 16 cores.  The crossover the paper motivates adaptivity
   with: small quanta win under heavy tails, large (or no) quanta win
   under light tails. *)

let us = Bench_util.us
let ms = Bench_util.ms

let workers = 16

(* 16 workers at ~5 Mrps would saturate the default 250ns dispatcher
   before the workers; the dispatch path is not the object of this
   experiment, so make it cheap. *)
let base_spec = Bench_util.spec_of_string "workers=16; dispatch=50ns; dur=60ms; warmup=10ms"

let run_point ~dist ~quantum ~rate =
  Scenario.run_server
    {
      base_spec with
      Scenario.quantum =
        (if quantum = 0 then Scenario.No_preempt else Scenario.Fixed quantum);
      src = Scenario.Dist (dist, Scenario.Lc);
      arrival = Scenario.Poisson (Scenario.Abs rate);
    }

let workloads =
  [
    ("bimodal 99.5%x0.5us + 0.5%x500us (heavy)", Scenario.A1);
    ("exponential mean 5us (light)", Scenario.B);
  ]

let run ~jobs () =
  Bench_util.header
    "Fig 2: p99 latency (us) vs load for preemption quanta, 16 cores (0 = no preemption)";
  let quanta = [ 0; us 5; us 25; us 100 ] in
  let loads = [ 0.2; 0.4; 0.6; 0.7; 0.8; 0.9 ] in
  let specs =
    List.concat_map
      (fun (name, dist) ->
        let cap = Bench_util.capacity ~dist ~workers ~duration_ns:0 in
        List.concat_map
          (fun load -> List.map (fun quantum -> (name, dist, cap, load, quantum)) quanta)
          loads)
      workloads
  in
  let results =
    Bench_util.sweep ~label:"fig2" ~jobs
      (fun (_, dist, cap, load, quantum) -> run_point ~dist ~quantum ~rate:(load *. cap))
      specs
  in
  let by_key = Hashtbl.create 64 in
  List.iter2
    (fun (name, _, _, load, quantum) r -> Hashtbl.replace by_key (name, load, quantum) r)
    specs results;
  let rows = ref [] in
  List.iter
    (fun (name, dist) ->
      let cap = Bench_util.capacity ~dist ~workers ~duration_ns:0 in
      Format.printf "@.workload %s (capacity ~%.2f Mrps)@." name (cap /. 1e6);
      Format.printf "%8s" "load";
      List.iter
        (fun q ->
          Format.printf "%12s" (if q = 0 then "no-preempt" else Printf.sprintf "q=%dus" (q / 1000)))
        quanta;
      Format.printf "@.";
      List.iter
        (fun load ->
          Format.printf "%7.0f%%" (load *. 100.0);
          List.iter
            (fun quantum ->
              let r = Hashtbl.find by_key (name, load, quantum) in
              let p99 = r.Preemptible.Server.all.Stat.Summary.p99 /. 1e3 in
              rows := Printf.sprintf "%s,%g,%d,%g" name load quantum p99 :: !rows;
              Bench_report.point ~fig:"fig2"
                ~labels:
                  [
                    ("workload", name);
                    ("load", Printf.sprintf "%g" load);
                    ("quantum_ns", string_of_int quantum);
                  ]
                ~metrics:
                  [
                    ("p50_us", r.Preemptible.Server.all.Stat.Summary.p50 /. 1e3);
                    ("p99_us", p99);
                    ("p999_us", r.Preemptible.Server.all.Stat.Summary.p999 /. 1e3);
                    ("tput_rps", r.Preemptible.Server.throughput_rps);
                  ];
              Format.printf "%12.1f" p99)
            quanta;
          Format.printf "@.")
        loads)
    workloads;
  Bench_util.csv ~name:"fig2" ~header:"workload,load,quantum_ns,p99_us"
    ~rows:(List.rev !rows);
  Format.printf
    "@.(expected: on the bimodal workload lower quanta give lower p99; on the\n\
    \ exponential workload preemption only adds overhead, so larger quanta win)@."
