(* bench --crossval: cross-validate the simulator against the real
   multicore fiber runtime.

   Each case is ONE scenario spec executed by BOTH backends:

   - sim:  [Scenario.run_server] — discrete-event simulation,
           deterministic in the seed.
   - real: [Scenario.run_rt] — the same spec lowered to a pre-generated
           schedule (same samplers, same seed) and replayed open-loop
           on real domains ([Fiber_rt.Sched]) under wall time.

   The two clock domains never agree exactly — the sim charges zero
   dispatch overhead, the real side pays syscalls, GC and OS jitter —
   so agreement is gated on scale-aware statistics (DESIGN.md §14):

   - p50 band:    sim and real medians within [p50_band]x of each
                  other (multiplicative, symmetric).
   - tail shape:  p99/p50 ratios within [tail_band]x — a scale-free
                  check that the sim reproduces the *shape* of the
                  latency distribution, not just its location.  Only
                  gated where the sim's own tail is non-degenerate: a
                  deterministic spec has sim p99/p50 = 1.0 exactly,
                  which no real machine reproduces.
   - rank order:  Spearman correlation of p99 across a load sweep at
                  least [rank_min] — turning load up must move both
                  backends' tails the same way.

   Two calibration rules keep the gates meaningful on a small shared
   CI container:

   - Service times are >= 1 ms.  The real executor pays a per-request
     overhead of roughly 100-200 us (dispatcher sleep overshoot,
     condvar handoff, fiber launch); sub-ms services would let that
     overhead push a nominally stable load past real capacity, and the
     comparison would gate the host, not the scheduler.
   - The gated cases run workers=1 (the container guarantees one
     core; with more domains than cores the real side measures OS
     timeslicing).  A workers=2 case is recorded ungated for
     inspection.
   - A gated case that misses its band is retried exactly once and
     the retry's numbers are the ones reported: the sim side is
     deterministic, so only transient host interference can move the
     verdict, and a real regression fails both attempts.

   Report points carry sim_*/real_* metric names on purpose: the bare
   p50_us/p99_us/mean_us names are gated at ±10% across EVERY figure by
   lpbench_check, which only deterministic simulation output can
   honour.  What IS gated here are the agreement booleans
   (crossval:p50_agree, crossval:tail_agree, crossval:rank_corr_ok),
   each 1.0 in the baseline. *)

module Sched = Fiber_rt.Sched

let p50_band = 3.0
let tail_band = 3.0
let rank_min = 0.5

let b2f b = if b then 1.0 else 0.0

type side = { p50 : float; p99 : float; mean : float; tail : float }

let side_of (r : Stat.Summary.report) =
  {
    p50 = r.Stat.Summary.p50 /. 1e3;
    p99 = r.Stat.Summary.p99 /. 1e3;
    mean = r.Stat.Summary.mean /. 1e3;
    tail = Stat.Agreement.tail_ratio ~p50:r.Stat.Summary.p50 ~p99:r.Stat.Summary.p99;
  }

let spec_of text =
  let spec = Bench_util.spec_of_string text in
  (match Scenario.validate_rt spec with
  | Ok () -> ()
  | Error m -> invalid_arg ("--crossval: spec not rt-runnable: " ^ m));
  spec

(* Run one spec on both backends.  Real executions are sequential and
   exclusive by construction (each run owns its domains), regardless of
   --jobs. *)
let both text =
  let spec = spec_of text in
  let sim = Scenario.run_server spec in
  let rt = Scenario.run_rt spec in
  ( side_of sim.Preemptible.Server.all,
    side_of rt.Sched.all,
    rt.Sched.steals,
    rt.Sched.completed = rt.Sched.offered )

let metrics_of sim real =
  [
    ("sim_p50_us", sim.p50);
    ("sim_p99_us", sim.p99);
    ("sim_mean_us", sim.mean);
    ("real_p50_us", real.p50);
    ("real_p99_us", real.p99);
    ("real_mean_us", real.mean);
    ("sim_tail_ratio", sim.tail);
    ("real_tail_ratio", real.tail);
  ]

(* ------------------------------------------------------------------ *)
(* Gated cases: three workload shapes, workers=1                       *)
(* ------------------------------------------------------------------ *)

type case = {
  cname : string;
  ctext : string;
  gate_tail : bool;  (** tail band gated (sim tail non-degenerate) *)
}

let gated_cases =
  [
    (* Light deterministic load: little queueing on either side, so the
       medians sit near the 1 ms service time.  The sim's tail ratio is
       exactly 1.0 (no randomness at all), so only the p50 is gated. *)
    {
      cname = "const_light";
      ctext =
        "workers=1; quantum=none; src=const:1ms; arrival=uniform:0.3x; \
         dur=800ms; warmup=200ms; seed=11";
      gate_tail = false;
    };
    (* Mid-load exponential service under preemption: queueing and
       slicing shape both distributions. *)
    {
      cname = "exp_mid";
      ctext =
        "workers=1; quantum=500us; src=exp:1ms; arrival=poisson:0.5x; \
         dur=800ms; warmup=200ms; seed=12";
      gate_tail = true;
    };
    (* Bimodal with a 10% heavy mode: preemption keeps short requests
       from queueing behind long ones — on real cores too. *)
    {
      cname = "bimodal_tail";
      ctext =
        "workers=1; quantum=250us; src=bimodal:200us:5ms:0.1; arrival=poisson:0.5x; \
         dur=800ms; warmup=200ms; seed=13";
      gate_tail = true;
    };
  ]

(* One execution of a gated case, with the band verdicts. *)
let attempt c =
  let sim, real, _steals, all_done = both c.ctext in
  let p50_agree = Stat.Agreement.within_factor ~factor:p50_band sim.p50 real.p50 in
  let tail_agree = Stat.Agreement.within_factor ~factor:tail_band sim.tail real.tail in
  let ok = p50_agree && ((not c.gate_tail) || tail_agree) && all_done in
  (sim, real, all_done, p50_agree, tail_agree, ok)

let run_gated () =
  Format.printf "@.gated cases (workers=1; bands: p50 within %.0fx, tail ratio within %.0fx):@."
    p50_band tail_band;
  Format.printf "  %-12s %10s %10s %10s %10s %6s %6s %5s %5s@." "case" "sim_p50us"
    "real_p50us" "sim_p99us" "real_p99us" "stail" "rtail" "p50ok" "tailok";
  List.map
    (fun c ->
      (* Retry once on a miss: the sim side is deterministic, so only a
         transient burst of host interference (another container, a GC
         of the CI runner itself) can push the wall-clock side out of
         an otherwise-comfortable band.  A genuine runtime or model
         regression misses both attempts. *)
      let first = attempt c in
      let retried = not (let _, _, _, _, _, ok = first in ok) in
      let sim, real, all_done, p50_agree, tail_agree, ok =
        if retried then attempt c else first
      in
      Format.printf "  %-12s %10.1f %10.1f %10.1f %10.1f %6.2f %6.2f %5s %5s%s@." c.cname
        sim.p50 real.p50 sim.p99 real.p99 sim.tail real.tail
        (if p50_agree then "yes" else "NO")
        (if c.gate_tail then if tail_agree then "yes" else "NO" else "-")
        (if retried then "  (retried)" else "");
      Bench_report.point ~fig:"crossval"
        ~labels:[ ("case", c.cname); ("workers", "1") ]
        ~metrics:
          (metrics_of sim real
          @ [ ("completed_all", b2f all_done); ("p50_agree", b2f p50_agree) ]
          @ if c.gate_tail then [ ("tail_agree", b2f tail_agree) ] else []);
      (c.cname, ok))
    gated_cases

(* ------------------------------------------------------------------ *)
(* Load sweep: rank agreement                                          *)
(* ------------------------------------------------------------------ *)

let sweep_loads = [ 0.2; 0.35; 0.5; 0.65; 0.8 ]

let sweep_spec load =
  Printf.sprintf
    "workers=1; quantum=500us; src=exp:800us; arrival=poisson:%.2fx; dur=600ms; \
     warmup=150ms; seed=21"
    load

let run_sweep () =
  Format.printf
    "@.load sweep (exp:800us, q=500us): does load move both tails the same way?@.";
  Format.printf "  %-6s %10s %10s@." "load" "sim_p99us" "real_p99us";
  let points =
    List.map
      (fun load ->
        let sim, real, _, _ = both (sweep_spec load) in
        Format.printf "  %-6s %10.1f %10.1f@."
          (Printf.sprintf "%.2fx" load)
          sim.p99 real.p99;
        Bench_report.point ~fig:"crossval"
          ~labels:[ ("case", "sweep"); ("load", Printf.sprintf "%.2fx" load) ]
          ~metrics:(metrics_of sim real);
        (sim.p99, real.p99))
      sweep_loads
  in
  let sim_p99 = Array.of_list (List.map fst points) in
  let real_p99 = Array.of_list (List.map snd points) in
  let rho = Stat.Rank.spearman sim_p99 real_p99 in
  let rank_ok = rho >= rank_min in
  Format.printf "  spearman(p99) = %.3f (gate: >= %.2f) %s@." rho rank_min
    (if rank_ok then "ok" else "FAIL");
  Bench_report.point ~fig:"crossval"
    ~labels:[ ("case", "sweep"); ("load", "summary") ]
    ~metrics:[ ("spearman_p99", rho); ("rank_corr_ok", b2f rank_ok) ];
  rank_ok

(* ------------------------------------------------------------------ *)
(* Ungated: real parallelism                                           *)
(* ------------------------------------------------------------------ *)

let smp_case () =
  let sim, real, steals, _ =
    both
      "workers=2; quantum=500us; src=exp:1ms; arrival=poisson:0.5x; dur=600ms; \
       warmup=150ms; seed=31"
  in
  Format.printf
    "@.workers=2 (ungated — CI guarantees one core): sim p50 %.1f us, real p50 %.1f us, \
     steals %d@."
    sim.p50 real.p50 steals;
  Bench_report.point ~fig:"crossval"
    ~labels:[ ("case", "smp_exp_mid"); ("workers", "2") ]
    ~metrics:(metrics_of sim real @ [ ("real_steals", float_of_int steals) ])

let run () =
  Bench_util.header "bench --crossval: simulator vs real fiber runtime, matched specs";
  let gated = run_gated () in
  let rank_ok = run_sweep () in
  smp_case ();
  let failures = List.filter (fun (_, ok) -> not ok) gated in
  let all_ok = failures = [] && rank_ok in
  Format.printf "@.crossval: %d/%d gated cases agree, rank_corr_ok=%b -> %s@."
    (List.length gated - List.length failures)
    (List.length gated) rank_ok
    (if all_ok then "AGREEMENT" else "DISAGREEMENT");
  if not all_ok then
    Format.printf
      "  (bands are generous by design — a miss means the runtime or the model moved, \
       not a noisy host; see DESIGN.md §14)@."
