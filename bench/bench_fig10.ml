(* Fig 10: deployment overhead of LibPreemptible on a server that does
   not need preemption (the paper uses a gRPC thread-pool server with
   exponential service times behind wrk2).

   We measure the latency distribution of the same light-tailed
   workload with the preemption machinery armed (LibUtimer + UINTR,
   various quanta standing in for user-thread densities) against a
   no-preemption baseline, across load levels.  The paper reports
   ~1.2%% tail overhead at 89%% load. *)

let us = Bench_util.us
let ms = Bench_util.ms

let dist = Workload.Service_dist.exponential ~mean_ns:(us 20)
let workers = 8

let run_one ~policy ~mechanism ~rate =
  let cfg = Preemptible.Server.default_config ~n_workers:workers ~policy ~mechanism in
  Preemptible.Server.run ~warmup_ns:(ms 20) cfg
    ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
    ~source:(Bench_util.lc_source dist) ~duration_ns:(ms 400)

let run ~jobs () =
  Bench_util.header
    "Fig 10: deployment overhead vs no preemption (exponential service, p99 ratio)";
  let cap = Bench_util.capacity_rps dist ~workers ~duration_ns:0 in
  let loads = [ 0.3; 0.5; 0.7; 0.8; 0.89 ] in
  let quanta = [ us 100; us 50; us 25 ] in
  (* One sweep point per cell: the baseline column (quantum = 0) plus
     each armed quantum, at every load. *)
  let specs =
    List.concat_map (fun load -> List.map (fun q -> (load, q)) (0 :: quanta)) loads
  in
  let results =
    Bench_util.sweep ~label:"fig10" ~jobs
      (fun (load, q) ->
        let rate = load *. cap in
        if q = 0 then
          run_one ~policy:Preemptible.Policy.no_preempt
            ~mechanism:Preemptible.Server.No_mechanism ~rate
        else
          run_one
            ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:q)
            ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config)
            ~rate)
      specs
  in
  let by_key = Hashtbl.create 32 in
  List.iter2 (fun spec r -> Hashtbl.replace by_key spec r) specs results;
  Format.printf "%8s %14s" "load" "baseline p99";
  List.iter (fun q -> Format.printf "%14s" (Printf.sprintf "LP q=%dus" (q / 1000))) quanta;
  Format.printf "@.";
  List.iter
    (fun load ->
      let base = Hashtbl.find by_key (load, 0) in
      let bp99 = base.Preemptible.Server.all.Stat.Summary.p99 in
      Format.printf "%7.0f%% %12.1fus" (100.0 *. load) (bp99 /. 1e3);
      Bench_report.point ~fig:"fig10"
        ~labels:[ ("load", Printf.sprintf "%g" load); ("quantum_ns", "0") ]
        ~metrics:
          [
            ("p50_us", base.Preemptible.Server.all.Stat.Summary.p50 /. 1e3);
            ("p99_us", bp99 /. 1e3);
          ];
      List.iter
        (fun q ->
          let r = Hashtbl.find by_key (load, q) in
          let p99 = r.Preemptible.Server.all.Stat.Summary.p99 in
          let overhead = 100.0 *. (p99 -. bp99) /. bp99 in
          Bench_report.point ~fig:"fig10"
            ~labels:
              [ ("load", Printf.sprintf "%g" load); ("quantum_ns", string_of_int q) ]
            ~metrics:
              [
                ("p50_us", r.Preemptible.Server.all.Stat.Summary.p50 /. 1e3);
                ("p99_us", p99 /. 1e3);
                ("overhead_pct", overhead);
              ];
          Format.printf "%+13.1f%%" overhead)
        quanta;
      Format.printf "@.")
    loads;
  Format.printf
    "@.(expected: with q=100us — the deployment setting, where preemption is armed\n\
    \ but rarely fires — overhead stays within the histogram's ~2.6%% resolution\n\
    \ even at 89%% load, matching the paper's ~1.2%%; the q=50/25us columns show\n\
    \ the separate policy cost of slicing light-tailed work, cf. Fig 2)@."
