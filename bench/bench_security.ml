(* Sec VII-A/B: the attack surface of interrupt delivery, plus the
   multi-tenant scalability claim of Sec V-B.  A victim core serves
   requests while an attacker generates an interrupt storm under three
   trust models; then one timer core serves a growing tenant count. *)

module Attack = Baselines.Attack

let tenancy () =
  Bench_util.header
    "Multi-tenancy: one timer core serving N single-worker tenants (A1 at 60% each)";
  Format.printf "%9s %14s %14s %16s@." "tenants" "mean p99(us)" "worst p99(us)"
    "timer interrupts";
  List.iter
    (fun tenants ->
      let r =
        Baselines.Tenancy.libpreemptible ~tenants ~per_tenant_rate:200_000.0
          ~duration_ns:(Bench_util.ms 50) ()
      in
      Format.printf "%9d %14.1f %14.1f %16d@." tenants r.Baselines.Tenancy.mean_p99_us
        r.Baselines.Tenancy.worst_p99_us r.Baselines.Tenancy.timer_interrupts)
    [ 1; 4; 16; 64; 128 ];
  Format.printf
    "(deadline slots are just memory, so tenant count is bounded only by the timer\n\
    \ core's SENDUIPI issue bandwidth — degradation stays mild past 100 tenant\n\
    \ workers and more timer cores extend it; Shinjuku's mapped APIC caps out at\n\
    \ %d workers and cannot cross tenant trust boundaries at all)@."
    (Baselines.Tenancy.shinjuku_tenant_limit Hw.Params.default)

let run () =
  Bench_util.header
    "Sec VII: interrupt-storm DoS — victim throughput/tail under attack";
  let victim_rate = 300_000.0 in
  let duration_ns = Bench_util.ms 100 in
  Format.printf "victim: one core, exp(2us) service at %.0f kRPS@.@." (victim_rate /. 1e3);
  List.iter
    (fun scenario ->
      List.iter
        (fun storm_per_sec ->
          let r = Attack.run scenario ~storm_per_sec ~victim_rate ~duration_ns in
          Format.printf "%a@." Attack.pp_result r)
        [ 0.0; 100_000.0; 1_000_000.0; 5_000_000.0 ];
      Format.printf "@.")
    [ Attack.Native_uintr_storm; Attack.Shinjuku_apic_storm; Attack.Libpreemptible_storm ];
  Format.printf
    "(expected: the native-UINTR and mapped-APIC victims degrade with storm rate —\n\
    \ the APIC path worst, since each hit costs a kernel interrupt — while the\n\
    \ LibPreemptible victim is untouched: the attacker has no UITT entry, so\n\
    \ delivered stays 0 at any attempt rate)@.";
  tenancy ()
