(* Shared helpers for the reproduction harness. *)

let us = Engine.Units.us
let ms = Engine.Units.ms

let lc_source dist =
  Workload.Source.of_dist dist ~cls:Workload.Request.Latency_critical

(* The paper's workload set (Sec V-A), as symbolic scenario
   distributions; the run length (which places workload C's shift)
   comes from each spec's [dur] field. *)
let named_workloads =
  [ ("A1", Scenario.A1); ("A2", Scenario.A2); ("B", Scenario.B); ("C", Scenario.C) ]

(* Peak sustainable rate of [workers] cores for a distribution (ignores
   overheads; used to place load sweeps). For workload C use the
   heavier first phase. *)
let capacity_rps dist ~workers ~duration_ns =
  (* A phased distribution (workload C) is as slow as its slowest
     phase; size the sweep by the larger mean. *)
  let mean_start = Workload.Service_dist.mean_ns dist ~now:0 in
  let mean_end = Workload.Service_dist.mean_ns dist ~now:(max 0 (duration_ns - 1)) in
  let mean = Float.max mean_start mean_end in
  float_of_int workers *. 1e9 /. mean

(* Symbolic capacity: the same number {!Scenario.capacity_rps} resolves
   [x]-relative rates against. *)
let capacity ~dist ~workers ~duration_ns =
  Scenario.capacity_rps
    { Scenario.default with Scenario.src = Scenario.Dist (dist, Scenario.Lc); workers; duration_ns }

let spec_of_string text =
  match Scenario.of_string text with
  | Ok s -> s
  | Error e -> invalid_arg ("bench: bad scenario: " ^ Scenario.error_to_string e)

type system = {
  sys_name : string;
  spec :
    rate:float ->
    dist:Scenario.dist ->
    duration_ns:int ->
    warmup_ns:int ->
    Scenario.t;
}

let run_system sys ~rate ~dist ~duration_ns ~warmup_ns =
  Scenario.run_server (sys.spec ~rate ~dist ~duration_ns ~warmup_ns)

(* Fill in the per-point fields a sweep computes (absolute rate,
   workload, run length) on a system's base scenario. *)
let at_point base ~rate ~dist ~duration_ns ~warmup_ns =
  {
    base with
    Scenario.src = Scenario.Dist (dist, Scenario.Lc);
    arrival = Scenario.Poisson (Scenario.Abs rate);
    duration_ns;
    warmup_ns;
  }

(* The four systems of Fig 8, as scenario specs.  Worker budget follows
   Sec V-A: six hyperthreads total — 1 network + 5 workers for
   Shinjuku/Libinger, 1 network + 4 workers + 1 timer core for
   LibPreemptible.  The adaptive hyperparameters follow the paper's
   note (Sec III-F): the heavy-tail rule reacts fast (k2), the
   high-load rule gently (k1), so light-tailed workloads keep a lax
   quantum; maxload is left at "auto" so the controller's reference is
   the spec's own worker capacity. *)
let libpreemptible ?(quantum = us 5) ?(adaptive = false) () =
  {
    sys_name =
      (if adaptive then "LibPreemptible(adaptive)"
       else Printf.sprintf "LibPreemptible(q=%dus)" (quantum / 1000));
    spec =
      (fun ~rate ~dist ~duration_ns ~warmup_ns ->
        let base =
          if adaptive then
            spec_of_string
              "sys=lp; workers=4; window=10ms; quantum=adaptive:20us; \
               ctl={k1=2us;k2=10us;k3=8us;lhigh=0.95}"
          else
            { (spec_of_string "sys=lp; workers=4; window=10ms") with
              Scenario.quantum = Scenario.Fixed quantum
            }
        in
        at_point base ~rate ~dist ~duration_ns ~warmup_ns);
  }

let libpreemptible_nouintr ?(quantum = us 5) () =
  {
    sys_name = "LibPreemptible(no-UINTR)";
    spec =
      (fun ~rate ~dist ~duration_ns ~warmup_ns ->
        at_point
          { (spec_of_string "sys=lp-nouintr; workers=4") with
            Scenario.quantum = Scenario.Fixed quantum
          }
          ~rate ~dist ~duration_ns ~warmup_ns);
  }

let shinjuku ?(quantum = us 5) () =
  {
    sys_name = Printf.sprintf "Shinjuku(q=%dus)" (quantum / 1000);
    spec =
      (fun ~rate ~dist ~duration_ns ~warmup_ns ->
        at_point
          { (spec_of_string "sys=shinjuku; workers=5") with
            Scenario.quantum = Scenario.Fixed quantum
          }
          ~rate ~dist ~duration_ns ~warmup_ns);
  }

let libinger ?(quantum = us 20) () =
  {
    sys_name = Printf.sprintf "Libinger(q=%dus)" (quantum / 1000);
    spec =
      (fun ~rate ~dist ~duration_ns ~warmup_ns ->
        at_point
          { (spec_of_string "sys=libinger; workers=5") with
            Scenario.quantum = Scenario.Fixed quantum
          }
          ~rate ~dist ~duration_ns ~warmup_ns);
  }

let no_preempt () =
  {
    sys_name = "no-preemption";
    spec =
      (fun ~rate ~dist ~duration_ns ~warmup_ns ->
        at_point
          (spec_of_string "sys=nopreempt; workers=5; quantum=none")
          ~rate ~dist ~duration_ns ~warmup_ns);
  }

(* Environment knobs live in Exec.Env so bench and bin share one
   definition. *)
let getenv_nonempty = Exec.Env.getenv_nonempty

(* Parallel sweep for figure benches.  Tasks must be pure simulations
   (own Sim/Rng, no printing); callers print from the returned list so
   output and report points are in submission order at any job count.

   When LP_POOL_TRACE names a file, every pool in the run shares one
   wall-clock trace ring (per-worker task spans + occupancy counters,
   category "exec") exported as Perfetto JSON at exit. *)
let pool_trace =
  lazy
    (match Exec.Env.getenv_nonempty "LP_POOL_TRACE" with
    | None -> None
    | Some path ->
      let t0 = Unix.gettimeofday () in
      let trace =
        Obs.Trace.create
          ~config:{ Obs.Trace.capacity = 1 lsl 16; categories = [ Obs.Trace.Exec ] }
          ~clock:(fun () -> int_of_float ((Unix.gettimeofday () -. t0) *. 1e9))
          ()
      in
      at_exit (fun () ->
          Obs.Export.perfetto_to_file trace ~path;
          Format.printf "(pool trace: %s)@." path);
      Some trace)

let sweep ?label ~jobs f xs =
  Exec.Sweep.run ?trace:(Lazy.force pool_trace) ?label ~jobs f xs

(* CSV export: when LP_BENCH_CSV names a directory, figure benches also
   dump their series there for external plotting. *)
let csv ~name ~header ~rows =
  match getenv_nonempty "LP_BENCH_CSV" with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let oc = open_out (Filename.concat dir (name ^ ".csv")) in
    output_string oc (header ^ "\n");
    List.iter (fun row -> output_string oc (row ^ "\n")) rows;
    close_out oc;
    Format.printf "(csv: %s/%s.csv)@." dir name

let header title =
  Format.printf "@.==================================================================@.";
  Format.printf "%s@." title;
  Format.printf "==================================================================@."
