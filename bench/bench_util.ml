(* Shared helpers for the reproduction harness. *)

let us = Engine.Units.us
let ms = Engine.Units.ms

let lc_source dist =
  Workload.Source.of_dist dist ~cls:Workload.Request.Latency_critical

(* The paper's workload set (Sec V-A). Workload C needs the run length
   to place its distribution shift. *)
let named_workloads ~duration_ns =
  [
    ("A1", Workload.Service_dist.workload_a1);
    ("A2", Workload.Service_dist.workload_a2);
    ("B", Workload.Service_dist.workload_b);
    ("C", Workload.Service_dist.workload_c ~duration_ns);
  ]

(* Peak sustainable rate of [workers] cores for a distribution (ignores
   overheads; used to place load sweeps). For workload C use the
   heavier first phase. *)
let capacity_rps dist ~workers ~duration_ns =
  (* A phased distribution (workload C) is as slow as its slowest
     phase; size the sweep by the larger mean. *)
  let mean_start = Workload.Service_dist.mean_ns dist ~now:0 in
  let mean_end = Workload.Service_dist.mean_ns dist ~now:(max 0 (duration_ns - 1)) in
  let mean = Float.max mean_start mean_end in
  float_of_int workers *. 1e9 /. mean

type system = {
  sys_name : string;
  run :
    rate:float ->
    dist:Workload.Service_dist.t ->
    duration_ns:int ->
    warmup_ns:int ->
    Preemptible.Server.result;
}

(* The four systems of Fig 8.  Worker budget follows Sec V-A: six
   hyperthreads total — 1 network + 5 workers for Shinjuku/Libinger,
   1 network + 4 workers + 1 timer core for LibPreemptible. *)
let libpreemptible ?(quantum = us 5) ?(adaptive = false) () =
  {
    sys_name =
      (if adaptive then "LibPreemptible(adaptive)"
       else Printf.sprintf "LibPreemptible(q=%dus)" (quantum / 1000));
    run =
      (fun ~rate ~dist ~duration_ns ~warmup_ns ->
        let policy =
          if adaptive then begin
            let max_load = capacity_rps dist ~workers:4 ~duration_ns in
            (* Hyperparameters per the paper's note (Sec III-F): the
               heavy-tail rule reacts fast (k2), the high-load rule
               gently (k1), so light-tailed workloads keep a lax
               quantum. *)
            Preemptible.Policy.adaptive
              (Preemptible.Quantum_controller.create
                 ~config:
                   {
                     Preemptible.Quantum_controller.default_config with
                     Preemptible.Quantum_controller.k1_ns = us 2;
                     k2_ns = us 10;
                     k3_ns = us 8;
                     l_high_fraction = 0.95;
                   }
                 ~max_load_per_s:max_load ~initial_quantum_ns:(us 20) ())
          end
          else Preemptible.Policy.fcfs_preempt ~quantum_ns:quantum
        in
        let cfg =
          Preemptible.Server.default_config ~n_workers:4 ~policy
            ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config)
        in
        let cfg = { cfg with Preemptible.Server.stats_window_ns = ms 10 } in
        Preemptible.Server.run ~warmup_ns cfg
          ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
          ~source:(lc_source dist) ~duration_ns);
  }

let libpreemptible_nouintr ?(quantum = us 5) () =
  {
    sys_name = "LibPreemptible(no-UINTR)";
    run =
      (fun ~rate ~dist ~duration_ns ~warmup_ns ->
        let cfg =
          Preemptible.Server.default_config ~n_workers:4
            ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:quantum)
            ~mechanism:(Preemptible.Server.Signal_utimer { poll_ns = 500 })
        in
        Preemptible.Server.run ~warmup_ns cfg
          ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
          ~source:(lc_source dist) ~duration_ns);
  }

let shinjuku ?(quantum = us 5) () =
  {
    sys_name = Printf.sprintf "Shinjuku(q=%dus)" (quantum / 1000);
    run =
      (fun ~rate ~dist ~duration_ns ~warmup_ns ->
        let cfg = Baselines.Shinjuku.default_config ~n_workers:5 ~quantum_ns:quantum in
        Baselines.Shinjuku.run ~warmup_ns cfg
          ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
          ~source:(lc_source dist) ~duration_ns);
  }

let libinger ?(quantum = us 20) () =
  {
    sys_name = Printf.sprintf "Libinger(q=%dus)" (quantum / 1000);
    run =
      (fun ~rate ~dist ~duration_ns ~warmup_ns ->
        let cfg = Baselines.Libinger.default_config ~n_workers:5 ~quantum_ns:quantum in
        Baselines.Libinger.run ~warmup_ns cfg
          ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
          ~source:(lc_source dist) ~duration_ns);
  }

let no_preempt () =
  {
    sys_name = "no-preemption";
    run =
      (fun ~rate ~dist ~duration_ns ~warmup_ns ->
        let cfg = Baselines.Nopreempt.default_config ~n_workers:5 in
        Baselines.Nopreempt.run ~warmup_ns cfg
          ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
          ~source:(lc_source dist) ~duration_ns);
  }

(* Environment knobs live in Exec.Env so bench and bin share one
   definition. *)
let getenv_nonempty = Exec.Env.getenv_nonempty

(* Parallel sweep for figure benches.  Tasks must be pure simulations
   (own Sim/Rng, no printing); callers print from the returned list so
   output and report points are in submission order at any job count.

   When LP_POOL_TRACE names a file, every pool in the run shares one
   wall-clock trace ring (per-worker task spans + occupancy counters,
   category "exec") exported as Perfetto JSON at exit. *)
let pool_trace =
  lazy
    (match Exec.Env.getenv_nonempty "LP_POOL_TRACE" with
    | None -> None
    | Some path ->
      let t0 = Unix.gettimeofday () in
      let trace =
        Obs.Trace.create
          ~config:{ Obs.Trace.capacity = 1 lsl 16; categories = [ Obs.Trace.Exec ] }
          ~clock:(fun () -> int_of_float ((Unix.gettimeofday () -. t0) *. 1e9))
          ()
      in
      at_exit (fun () ->
          Obs.Export.perfetto_to_file trace ~path;
          Format.printf "(pool trace: %s)@." path);
      Some trace)

let sweep ?label ~jobs f xs =
  Exec.Sweep.run ?trace:(Lazy.force pool_trace) ?label ~jobs f xs

(* CSV export: when LP_BENCH_CSV names a directory, figure benches also
   dump their series there for external plotting. *)
let csv ~name ~header ~rows =
  match getenv_nonempty "LP_BENCH_CSV" with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let oc = open_out (Filename.concat dir (name ^ ".csv")) in
    output_string oc (header ^ "\n");
    List.iter (fun row -> output_string oc (row ^ "\n")) rows;
    close_out oc;
    Format.printf "(csv: %s/%s.csv)@." dir name

let header title =
  Format.printf "@.==================================================================@.";
  Format.printf "%s@." title;
  Format.printf "==================================================================@."
