(* Tests for the kernel model: locks, signals, timers, IPC. *)

open Engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let costs = Ksim.Costs.default

(* ------------------------------------------------------------------ *)
(* Klock                                                               *)
(* ------------------------------------------------------------------ *)

let test_klock_uncontended () =
  let sim = Sim.create () in
  let lock = Ksim.Klock.create sim in
  let released_at = ref (-1) in
  Ksim.Klock.acquire lock ~hold_ns:100 (fun () -> released_at := Sim.now sim);
  check_bool "held" true (Ksim.Klock.busy lock);
  Sim.run sim;
  check_int "released after hold" 100 !released_at;
  check_int "no contention" 0 (Ksim.Klock.contended_acquisitions lock)

let test_klock_fifo_serialization () =
  let sim = Sim.create () in
  let lock = Ksim.Klock.create sim in
  let order = ref [] in
  for i = 1 to 3 do
    Ksim.Klock.acquire lock ~hold_ns:100 (fun () -> order := (i, Sim.now sim) :: !order)
  done;
  Sim.run sim;
  Alcotest.(check (list (pair int int)))
    "fifo, serialized" [ (1, 100); (2, 200); (3, 300) ] (List.rev !order);
  check_int "two contended" 2 (Ksim.Klock.contended_acquisitions lock);
  check_int "wait accumulated" 300 (Ksim.Klock.total_wait_ns lock)

let test_klock_contended_wake_penalty () =
  let sim = Sim.create () in
  let lock = Ksim.Klock.create ~contended_wake_ns:50 sim in
  let last = ref (-1) in
  for _ = 1 to 3 do
    Ksim.Klock.acquire lock ~hold_ns:100 (fun () -> last := Sim.now sim)
  done;
  Sim.run sim;
  (* First: 100. Second: waits, pays wake: 100+150. Third: +150. *)
  check_int "wake penalty serialized" 400 !last

let test_klock_negative_hold () =
  let sim = Sim.create () in
  let lock = Ksim.Klock.create sim in
  Alcotest.check_raises "negative hold" (Invalid_argument "Klock.acquire: negative hold")
    (fun () -> Ksim.Klock.acquire lock ~hold_ns:(-1) (fun () -> ()))

(* ------------------------------------------------------------------ *)
(* Lognorm                                                             *)
(* ------------------------------------------------------------------ *)

let test_lognorm_moments () =
  let rng = Rng.create 5L in
  let n = 100_000 in
  let w = Stat.Welford.create () in
  for _ = 1 to n do
    Stat.Welford.add w (Ksim.Lognorm.sample rng ~mean:1000.0 ~std:300.0)
  done;
  check_bool "mean within 2%" true (abs_float (Stat.Welford.mean w -. 1000.0) < 20.0);
  check_bool "std within 10%" true (abs_float (Stat.Welford.stddev w -. 300.0) < 30.0)

let test_lognorm_zero_mean () =
  let rng = Rng.create 5L in
  Alcotest.(check (float 0.0)) "zero mean -> 0" 0.0 (Ksim.Lognorm.sample rng ~mean:0.0 ~std:10.0)

(* ------------------------------------------------------------------ *)
(* Signal                                                              *)
(* ------------------------------------------------------------------ *)

let test_signal_deterministic_floor () =
  let sim = Sim.create () in
  let signal = Ksim.Signal.create sim costs ~rng:(Sim.fork_rng sim) in
  let at = ref (-1) in
  Ksim.Signal.deliver signal ~jitter:false ~handler:(fun () -> at := Sim.now sim) ();
  Sim.run sim;
  check_int "floor = min_latency" (Ksim.Signal.min_latency_ns signal) !at;
  check_int "delivered count" 1 (Ksim.Signal.delivered signal)

let test_signal_jitter_increases_latency () =
  let sim = Sim.create () in
  let signal = Ksim.Signal.create sim costs ~rng:(Sim.fork_rng sim) in
  let at = ref (-1) in
  Ksim.Signal.deliver signal ~handler:(fun () -> at := Sim.now sim) ();
  Sim.run sim;
  check_bool "jitter adds latency" true (!at > Ksim.Signal.min_latency_ns signal)

let test_signal_concurrent_contention () =
  let sim = Sim.create () in
  let signal = Ksim.Signal.create sim costs ~rng:(Sim.fork_rng sim) in
  let times = ref [] in
  for _ = 1 to 8 do
    Ksim.Signal.deliver signal ~jitter:false ~handler:(fun () -> times := Sim.now sim :: !times) ()
  done;
  Sim.run sim;
  let times = List.sort compare !times in
  let first = List.hd times and last = List.nth times 7 in
  (* Seven waiters serialized on the sighand lock, each paying the
     contended hold. *)
  let hold = costs.Ksim.Costs.sighand_lock_hold_ns + costs.Ksim.Costs.sighand_wake_ns in
  check_int "last delayed by lock queue" (7 * hold) (last - first);
  check_int "lock saw contention" 7 (Ksim.Klock.contended_acquisitions (Ksim.Signal.lock signal))

(* ------------------------------------------------------------------ *)
(* Ktimer                                                              *)
(* ------------------------------------------------------------------ *)

let make_ktimer () =
  let sim = Sim.create () in
  let signal = Ksim.Signal.create sim costs ~rng:(Sim.fork_rng sim) in
  (sim, Ksim.Ktimer.create sim costs ~rng:(Sim.fork_rng sim) ~signal)

let test_ktimer_floor () =
  let _, kt = make_ktimer () in
  check_int "below floor clamps" costs.Ksim.Costs.ktimer_floor_ns
    (Ksim.Ktimer.effective_interval kt 20_000);
  check_int "above floor honoured" 100_000 (Ksim.Ktimer.effective_interval kt 100_000)

let test_ktimer_oneshot_fires_after_floor () =
  let sim, kt = make_ktimer () in
  let at = ref (-1) in
  ignore (Ksim.Ktimer.arm_oneshot kt ~delay_ns:20_000 ~handler:(fun () -> at := Sim.now sim));
  Sim.run sim;
  check_bool "fires no earlier than the floor" true (!at >= costs.Ksim.Costs.ktimer_floor_ns);
  check_int "one expiry" 1 (Ksim.Ktimer.expirations kt)

let test_ktimer_cancel () =
  let sim, kt = make_ktimer () in
  let fired = ref false in
  let tm = Ksim.Ktimer.arm_oneshot kt ~delay_ns:100_000 ~handler:(fun () -> fired := true) in
  Ksim.Ktimer.cancel tm;
  Sim.run sim;
  check_bool "cancelled timer silent" false !fired

let test_ktimer_periodic_counts () =
  let sim, kt = make_ktimer () in
  let fired = ref 0 in
  let tm = Ksim.Ktimer.arm_periodic kt ~interval_ns:100_000 ~handler:(fun () -> incr fired) in
  Sim.run_until sim 1_050_000;
  Ksim.Ktimer.cancel tm;
  Sim.run sim;
  (* ~10 periods of 100us each (plus jitter); expect at least a handful *)
  check_bool "several periodic expiries" true (!fired >= 5 && !fired <= 11)

let test_ktimer_invalid_args () =
  let _, kt = make_ktimer () in
  Alcotest.check_raises "negative oneshot"
    (Invalid_argument "Ktimer.arm_oneshot: negative delay") (fun () ->
      ignore (Ksim.Ktimer.arm_oneshot kt ~delay_ns:(-1) ~handler:(fun () -> ())));
  Alcotest.check_raises "zero periodic"
    (Invalid_argument "Ktimer.arm_periodic: non-positive interval") (fun () ->
      ignore (Ksim.Ktimer.arm_periodic kt ~interval_ns:0 ~handler:(fun () -> ())))

(* ------------------------------------------------------------------ *)
(* Ipc — Table IV                                                      *)
(* ------------------------------------------------------------------ *)

let run_ipc mech = Ksim.Ipc.run_pingpong mech ~n:30_000

let close ~tol expected actual = abs_float (expected -. actual) /. expected < tol

let test_table4_uintrfd () =
  let r = run_ipc Ksim.Ipc.Uintrfd in
  check_bool "avg ~0.734us" true (close ~tol:0.10 0.734 r.Ksim.Ipc.avg_us);
  check_bool "min ~0.512us" true (close ~tol:0.05 0.512 r.Ksim.Ipc.min_us);
  check_bool "rate near 1M+/s" true (r.Ksim.Ipc.rate_msg_per_s > 800_000.0)

let test_table4_uintrfd_blocked () =
  let r = run_ipc Ksim.Ipc.Uintrfd_blocked in
  check_bool "avg ~2.393us" true (close ~tol:0.10 2.393 r.Ksim.Ipc.avg_us);
  check_bool "min ~2.048us" true (close ~tol:0.05 2.048 r.Ksim.Ipc.min_us)

let test_table4_signal () =
  let r = run_ipc Ksim.Ipc.Signal_ipc in
  check_bool "avg ~15.3us" true (close ~tol:0.10 15.325 r.Ksim.Ipc.avg_us)

let test_table4_kernel_mechanisms_ranked () =
  (* The headline of Table IV: user interrupts are ~10x faster than the
     fastest kernel IPC mechanism. *)
  let u = run_ipc Ksim.Ipc.Uintrfd in
  let fastest_kernel =
    List.fold_left
      (fun acc m -> Float.min acc (run_ipc m).Ksim.Ipc.avg_us)
      infinity
      [ Ksim.Ipc.Signal_ipc; Ksim.Ipc.Mq; Ksim.Ipc.Pipe; Ksim.Ipc.Eventfd ]
  in
  check_bool "uintr ~10x faster than best kernel IPC" true
    (fastest_kernel /. u.Ksim.Ipc.avg_us > 8.0)

let test_ipc_rejects_bad_n () =
  Alcotest.check_raises "n=0" (Invalid_argument "Ipc.run_pingpong: n must be positive")
    (fun () -> ignore (Ksim.Ipc.run_pingpong Ksim.Ipc.Mq ~n:0))

let suites =
  [
    ( "ksim.klock",
      [
        Alcotest.test_case "uncontended" `Quick test_klock_uncontended;
        Alcotest.test_case "fifo serialization" `Quick test_klock_fifo_serialization;
        Alcotest.test_case "contended wake penalty" `Quick test_klock_contended_wake_penalty;
        Alcotest.test_case "negative hold" `Quick test_klock_negative_hold;
      ] );
    ( "ksim.lognorm",
      [
        Alcotest.test_case "moments" `Slow test_lognorm_moments;
        Alcotest.test_case "zero mean" `Quick test_lognorm_zero_mean;
      ] );
    ( "ksim.signal",
      [
        Alcotest.test_case "deterministic floor" `Quick test_signal_deterministic_floor;
        Alcotest.test_case "jitter adds latency" `Quick test_signal_jitter_increases_latency;
        Alcotest.test_case "lock contention" `Quick test_signal_concurrent_contention;
      ] );
    ( "ksim.ktimer",
      [
        Alcotest.test_case "granularity floor" `Quick test_ktimer_floor;
        Alcotest.test_case "oneshot honours floor" `Quick test_ktimer_oneshot_fires_after_floor;
        Alcotest.test_case "cancel" `Quick test_ktimer_cancel;
        Alcotest.test_case "periodic count" `Quick test_ktimer_periodic_counts;
        Alcotest.test_case "invalid args" `Quick test_ktimer_invalid_args;
      ] );
    ( "ksim.ipc(table4)",
      [
        Alcotest.test_case "uintrFd" `Slow test_table4_uintrfd;
        Alcotest.test_case "uintrFd blocked" `Slow test_table4_uintrfd_blocked;
        Alcotest.test_case "signal" `Slow test_table4_signal;
        Alcotest.test_case "uintr ~10x faster" `Slow test_table4_kernel_mechanisms_ranked;
        Alcotest.test_case "rejects bad n" `Quick test_ipc_rejects_bad_n;
      ] );
  ]
