(* The fault-injection substrate and the recovery layer on top of it:
   the DSL itself, the hardware-level injection points, the LibUtimer
   watchdog (lost-UIPI retry, failover, graceful degradation), and the
   server-level resilience accounting. *)

open Engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Fault DSL                                                           *)
(* ------------------------------------------------------------------ *)

let test_parse_roundtrip () =
  let f = Fault.create () in
  (match
     Fault.parse f "uipi.drop=p:0.25,utimer.crash=once:3,a=win:100-200:0.5,b=always,c=never"
   with
  | Ok () -> ()
  | Error m -> Alcotest.failf "parse failed: %s" m);
  (match Fault.trigger (Fault.point f "uipi.drop") with
  | Fault.Probability p -> check_bool "prob" true (abs_float (p -. 0.25) < 1e-9)
  | _ -> Alcotest.fail "wrong trigger for uipi.drop");
  (match Fault.trigger (Fault.point f "utimer.crash") with
  | Fault.One_shot 3 -> ()
  | _ -> Alcotest.fail "wrong trigger for utimer.crash");
  (match Fault.trigger (Fault.point f "a") with
  | Fault.Window { from_ns = 100; until_ns = 200; prob } ->
    check_bool "window prob" true (abs_float (prob -. 0.5) < 1e-9)
  | _ -> Alcotest.fail "wrong trigger for a");
  check_bool "always" true (Fault.trigger (Fault.point f "b") = Fault.Always);
  check_bool "never" true (Fault.trigger (Fault.point f "c") = Fault.Never)

let test_parse_errors () =
  let f = Fault.create () in
  check_bool "missing =" true (Result.is_error (Fault.parse f "nope"));
  check_bool "bad kind" true (Result.is_error (Fault.parse f "x=banana"));
  check_bool "bad prob" true (Result.is_error (Fault.parse f "x=p:notafloat"))

let test_one_shot_exact () =
  let f = Fault.create () in
  Fault.set f "x" (Fault.One_shot 5);
  let p = Fault.point f "x" in
  let fires = List.init 10 (fun _ -> Fault.fires p ~now:0) in
  check_int "only the 5th eval" 1 (List.length (List.filter Fun.id fires));
  check_bool "exactly the 5th" true (List.nth fires 4);
  check_int "evals counted" 10 (Fault.evals p);
  check_int "injections counted" 1 (Fault.injected p)

let test_window_bounds () =
  let f = Fault.create () in
  Fault.set f "x" (Fault.Window { from_ns = 100; until_ns = 200; prob = 1.0 });
  let p = Fault.point f "x" in
  check_bool "before" false (Fault.fires p ~now:99);
  check_bool "inside" true (Fault.fires p ~now:100);
  check_bool "inside late" true (Fault.fires p ~now:199);
  check_bool "after" false (Fault.fires p ~now:200)

let test_probability_deterministic () =
  let seq seed =
    let f = Fault.create ~seed () in
    Fault.set f "x" (Fault.Probability 0.3);
    let p = Fault.point f "x" in
    List.init 200 (fun _ -> Fault.fires p ~now:0)
  in
  check_bool "same seed, same schedule" true (seq 11L = seq 11L);
  let a = seq 11L and b = seq 12L in
  check_bool "fires sometimes" true (List.exists Fun.id a);
  check_bool "different seed, different schedule" true (a <> b)

let test_ledger_clamps () =
  let f = Fault.create () in
  Fault.set f "x" Fault.Always;
  let p = Fault.point f "x" in
  ignore (Fault.fires p ~now:0);
  ignore (Fault.fires p ~now:0);
  (* Detect three times for two injections: third is a no-op. *)
  Fault.mark_detected f ~hint:"x" ();
  Fault.mark_detected f ~hint:"x" ();
  Fault.mark_detected f ~hint:"x" ();
  (* Recover more than detected: clamped too. *)
  Fault.mark_recovered f ~hint:"x" ();
  Fault.mark_recovered f ~hint:"x" ();
  Fault.mark_recovered f ~hint:"x" ();
  let r = Fault.report f in
  check_int "injected" 2 r.Fault.injected;
  check_int "detected clamped" 2 r.Fault.detected;
  check_int "recovered clamped" 2 r.Fault.recovered;
  check_int "undetected" 0 r.Fault.undetected

(* ------------------------------------------------------------------ *)
(* Uintr injection points                                              *)
(* ------------------------------------------------------------------ *)

let fabric_with spec =
  let sim = Sim.create () in
  let f = Fault.create () in
  (match Fault.parse f spec with
  | Ok () -> ()
  | Error m -> Alcotest.failf "spec: %s" m);
  let fabric = Hw.Uintr.create ~faults:f sim Hw.Params.default in
  (sim, fabric)

let test_uipi_drop_coalesces_on_retry () =
  let sim, fabric = fabric_with "uipi.drop=once:1" in
  let hits = ref 0 in
  let r = Hw.Uintr.register_receiver fabric ~handler:(fun _ ~vector:_ -> incr hits) () in
  let s = Hw.Uintr.create_sender fabric () in
  let idx = Hw.Uintr.connect s r ~vector:0 in
  Hw.Uintr.senduipi s idx;
  Sim.run sim;
  check_int "dropped: no delivery" 0 !hits;
  check_bool "vector parked in PIR" true (Hw.Uintr.pending_vectors r = [ 0 ]);
  (* The retry posts the same vector: PIR coalesces, one delivery. *)
  Hw.Uintr.senduipi s idx;
  Sim.run sim;
  check_int "exactly one delivery" 1 !hits;
  check_int "deliveries counter" 1 (Hw.Uintr.deliveries r);
  let st = Hw.Uintr.stats fabric in
  check_int "drop counted" 1 st.Hw.Uintr.dropped_notifications;
  check_int "coalesce counted" 1 st.Hw.Uintr.coalesced

let test_stuck_sn_until_repair () =
  let sim, fabric = fabric_with "uipi.stuck_sn=once:1" in
  let hits = ref 0 in
  let r = Hw.Uintr.register_receiver fabric ~handler:(fun _ ~vector:_ -> incr hits) () in
  let s = Hw.Uintr.create_sender fabric () in
  let idx = Hw.Uintr.connect s r ~vector:3 in
  Hw.Uintr.senduipi s idx;
  Sim.run sim;
  check_int "suppressed by stuck SN" 0 !hits;
  (* An ordinary SN clear is ignored while the bit is stuck. *)
  Hw.Uintr.set_suppressed r false;
  Sim.run sim;
  check_int "still suppressed" 0 !hits;
  Hw.Uintr.repair_receiver r;
  Sim.run sim;
  check_int "repair releases the pending vector" 1 !hits

let test_uitt_corruption_until_repair () =
  let sim, fabric = fabric_with "uipi.uitt_corrupt=once:1" in
  let hits = ref 0 in
  let r = Hw.Uintr.register_receiver fabric ~handler:(fun _ ~vector:_ -> incr hits) () in
  let s = Hw.Uintr.create_sender fabric () in
  let idx = Hw.Uintr.connect s r ~vector:0 in
  Hw.Uintr.senduipi s idx;
  Hw.Uintr.senduipi s idx;
  Sim.run sim;
  check_int "all sends swallowed" 0 !hits;
  check_bool "entry marked corrupted" true (Hw.Uintr.uitt_corrupted s idx);
  check_int "corrupt drops counted" 2 (Hw.Uintr.stats fabric).Hw.Uintr.corrupt_dropped;
  Hw.Uintr.repair_uitt s idx;
  Hw.Uintr.senduipi s idx;
  Sim.run sim;
  check_int "rewritten entry works" 1 !hits

(* ------------------------------------------------------------------ *)
(* LibUtimer watchdog                                                  *)
(* ------------------------------------------------------------------ *)

let make_ut ?spec ?watchdog () =
  let sim = Sim.create () in
  let faults =
    Option.map
      (fun s ->
        let f = Fault.create () in
        (match Fault.parse f s with
        | Ok () -> ()
        | Error m -> Alcotest.failf "spec: %s" m);
        f)
      spec
  in
  let fabric = Hw.Uintr.create ?faults sim Hw.Params.default in
  let ut = Utimer.create ?faults ?watchdog sim ~uintr:fabric () in
  (sim, fabric, ut)

let hits_worker sim fabric hits =
  Hw.Uintr.register_receiver fabric
    ~handler:(fun _ ~vector:_ -> hits := Sim.now sim :: !hits)
    ()

let test_wd_retries_lost_uipi () =
  let sim, fabric, ut =
    make_ut ~spec:"uipi.drop=once:1" ~watchdog:Utimer.default_watchdog ()
  in
  let hits = ref [] in
  let slot = Utimer.register ut ~receiver:(hits_worker sim fabric hits) ~vector:0 in
  Utimer.start ut;
  Utimer.arm_after slot ~ns:10_000;
  Sim.run_until sim 100_000;
  Utimer.stop ut;
  Sim.run sim;
  (match !hits with
  | [ t ] ->
    (* deadline + grace + one watchdog poll bounds the repair time *)
    check_bool "recovered within grace+poll" true (t < 10_000 + 5_000 + 2_500)
  | l -> Alcotest.failf "expected exactly one delivery, got %d" (List.length l));
  check_int "fired counts the deadline once" 1 (Utimer.fired ut);
  let wd = Utimer.watchdog_stats ut in
  check_int "one anomaly detected" 1 wd.Utimer.wd_detected;
  check_int "one retry issued" 1 wd.Utimer.wd_retries;
  check_int "recovered" 1 wd.Utimer.wd_recovered;
  check_bool "healthy again" true (Utimer.health ut = Utimer.Healthy)

let test_wd_quiet_without_faults () =
  (* Grace boundary: a healthy timer delivering within its natural
     latency must never trip the watchdog. *)
  let sim, fabric, ut = make_ut ~watchdog:Utimer.default_watchdog () in
  let hits = ref [] in
  let slot = Utimer.register ut ~receiver:(hits_worker sim fabric hits) ~vector:0 in
  Utimer.start ut;
  let rec rearm i =
    if i < 50 then begin
      Utimer.arm_after slot ~ns:3_000;
      ignore (Sim.after sim 5_000 (fun () -> rearm (i + 1)))
    end
  in
  rearm 0;
  Sim.run_until sim 400_000;
  Utimer.stop ut;
  Sim.run sim;
  check_int "all deadlines fired" 50 (Utimer.fired ut);
  let wd = Utimer.watchdog_stats ut in
  check_int "no false detections" 0 wd.Utimer.wd_detected;
  check_int "no retries" 0 wd.Utimer.wd_retries

let test_wd_retry_exhaustion_degrades () =
  (* Every send is lost: the watchdog must burn its retry budget and
     surface Degraded — not raise, not retry forever. *)
  let sim, fabric, ut =
    make_ut ~spec:"uipi.drop=always"
      ~watchdog:{ Utimer.default_watchdog with Utimer.wd_max_retries = 2 }
      ()
  in
  let hits = ref [] in
  let slot = Utimer.register ut ~receiver:(hits_worker sim fabric hits) ~vector:0 in
  Utimer.start ut;
  Utimer.arm_after slot ~ns:5_000;
  Sim.run_until sim (Units.ms 1);
  Utimer.stop ut;
  Sim.run sim;
  check_int "nothing ever delivered" 0 (List.length !hits);
  check_bool "slot degraded" true (Utimer.slot_degraded slot);
  check_bool "timer reports Degraded" true (Utimer.health ut = Utimer.Degraded);
  let wd = Utimer.watchdog_stats ut in
  check_int "budget spent exactly" 2 wd.Utimer.wd_retries;
  check_int "degraded slot counted" 1 wd.Utimer.wd_degraded_slots

let test_wd_recovers_lost_slot_store () =
  let sim, fabric, ut =
    make_ut ~spec:"utimer.slot_lost=once:1" ~watchdog:Utimer.default_watchdog ()
  in
  let hits = ref [] in
  let slot = Utimer.register ut ~receiver:(hits_worker sim fabric hits) ~vector:0 in
  Utimer.start ut;
  Utimer.arm_after slot ~ns:10_000;
  Sim.run_until sim 100_000;
  Utimer.stop ut;
  Sim.run sim;
  (match !hits with
  | [ t ] -> check_bool "watchdog fired the lost slot" true (t > 15_000 && t < 20_000)
  | l -> Alcotest.failf "expected one delivery, got %d" (List.length l));
  check_int "counted as a (late) fire" 1 (Utimer.fired ut)

let test_wd_failover_preserves_deadline () =
  (* The scan loop dies before an armed deadline expires; the spare
     core must take over and fire it exactly once. *)
  let sim, fabric, ut =
    make_ut ~spec:"utimer.crash=once:5" ~watchdog:Utimer.default_watchdog ()
  in
  let hits = ref [] in
  let slot = Utimer.register ut ~receiver:(hits_worker sim fabric hits) ~vector:0 in
  Utimer.start ut;
  Utimer.arm_after slot ~ns:50_000;
  Sim.run_until sim 200_000;
  Utimer.stop ut;
  Sim.run sim;
  check_int "deadline survived the crash" 1 (List.length !hits);
  check_int "fired once" 1 (Utimer.fired ut);
  check_bool "running on the spare" true (Utimer.health ut = Utimer.Failed_over);
  check_int "spares spent" 0 (Utimer.spares_left ut);
  check_int "one failover" 1 (Utimer.watchdog_stats ut).Utimer.wd_failovers

let test_wd_no_spares_degrades_with_callback () =
  let sim, fabric, ut =
    make_ut ~spec:"utimer.crash=once:5"
      ~watchdog:{ Utimer.default_watchdog with Utimer.wd_spare_cores = 0 }
      ()
  in
  let hits = ref [] in
  let slot = Utimer.register ut ~receiver:(hits_worker sim fabric hits) ~vector:0 in
  let degraded_at = ref None in
  Utimer.set_on_degraded ut (fun () -> degraded_at := Some (Sim.now sim));
  Utimer.start ut;
  Utimer.arm_after slot ~ns:50_000;
  Sim.run_until sim 200_000;
  Utimer.stop ut;
  Sim.run sim;
  check_bool "degraded callback ran" true (!degraded_at <> None);
  check_bool "health Degraded" true (Utimer.health ut = Utimer.Degraded);
  check_int "no deliveries from a dead core" 0 (List.length !hits)

(* ------------------------------------------------------------------ *)
(* Utimer lifecycle (stop/start)                                       *)
(* ------------------------------------------------------------------ *)

let make_plain_ut () =
  let sim = Sim.create () in
  let fabric = Hw.Uintr.create sim Hw.Params.default in
  let ut = Utimer.create sim ~uintr:fabric () in
  (sim, fabric, ut)

let test_restart_rearms_surviving_slot () =
  let sim, fabric, ut = make_plain_ut () in
  let hits = ref [] in
  let slot = Utimer.register ut ~receiver:(hits_worker sim fabric hits) ~vector:0 in
  Utimer.start ut;
  Utimer.arm_after slot ~ns:10_000;
  ignore (Sim.at sim 5_000 (fun () -> Utimer.stop ut));
  ignore (Sim.at sim 20_000 (fun () -> Utimer.start ut));
  Sim.run_until sim 60_000;
  Utimer.stop ut;
  Sim.run sim;
  (match !hits with
  | [ t ] -> check_bool "fired on first scan after restart" true (t >= 20_000 && t < 22_000)
  | l -> Alcotest.failf "expected one delivery, got %d" (List.length l));
  check_int "not double-counted" 1 (Utimer.fired ut);
  check_bool "slot consumed" false (Utimer.is_armed slot)

let test_restart_does_not_refire () =
  let sim, fabric, ut = make_plain_ut () in
  let hits = ref [] in
  let slot = Utimer.register ut ~receiver:(hits_worker sim fabric hits) ~vector:0 in
  Utimer.start ut;
  Utimer.arm_after slot ~ns:5_000;
  ignore (Sim.at sim 8_000 (fun () -> Utimer.stop ut));
  ignore (Sim.at sim 10_000 (fun () -> Utimer.start ut));
  Sim.run_until sim 40_000;
  Utimer.stop ut;
  Sim.run sim;
  check_int "one delivery total" 1 (List.length !hits);
  check_int "one fire total across restart" 1 (Utimer.fired ut)

let test_arm_at_past_deadline () =
  let sim, fabric, ut = make_plain_ut () in
  let hits = ref [] in
  let slot = Utimer.register ut ~receiver:(hits_worker sim fabric hits) ~vector:0 in
  Utimer.start ut;
  ignore (Sim.at sim 20_000 (fun () -> Utimer.arm_at slot ~time_ns:5_000));
  Sim.run_until sim 60_000;
  Utimer.stop ut;
  Sim.run sim;
  (match !hits with
  | [ t ] -> check_bool "fires on the next scan" true (t >= 20_000 && t < 22_000)
  | l -> Alcotest.failf "expected one delivery, got %d" (List.length l));
  let lateness = Stat.Summary.report (Utimer.lateness ut) in
  (* Lateness measured from the arm instant, not the fictitious past
     deadline: bounded by a poll period + delivery, never 15us. *)
  check_bool "lateness zero-clamped" true (lateness.Stat.Summary.max < 2_000.0);
  check_bool "lateness non-negative" true (lateness.Stat.Summary.min >= 0.0)

(* ------------------------------------------------------------------ *)
(* Server-level resilience                                             *)
(* ------------------------------------------------------------------ *)

let server_run ?watchdog ~spec () =
  let faults =
    let f = Fault.create ~seed:7L () in
    (match Fault.parse f spec with
    | Ok () -> ()
    | Error m -> Alcotest.failf "spec: %s" m);
    f
  in
  let cfg =
    Preemptible.Server.default_config ~n_workers:2
      ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:(Units.us 5))
      ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config)
  in
  let cfg = { cfg with Preemptible.Server.faults = Some faults; watchdog; seed = 7L } in
  Preemptible.Server.run cfg
    ~arrival:(Workload.Arrival.poisson ~rate_per_sec:300_000.0)
    ~source:
      (Workload.Source.of_dist Workload.Service_dist.workload_a1
         ~cls:Workload.Request.Latency_critical)
    ~duration_ns:(Units.ms 20)

let ledger_invariants r =
  match r.Preemptible.Server.resilience with
  | None -> Alcotest.fail "expected a resilience report"
  | Some res ->
    let fr = res.Preemptible.Server.fault_report in
    check_bool "detected <= injected" true (fr.Fault.detected <= fr.Fault.injected);
    check_bool "recovered <= detected" true (fr.Fault.recovered <= fr.Fault.detected);
    check_int "injected = detected + undetected" fr.Fault.injected
      (fr.Fault.detected + fr.Fault.undetected);
    List.iter
      (fun p ->
        check_bool (p.Fault.pname ^ ": det<=inj") true (p.Fault.pdetected <= p.Fault.pinjected);
        check_bool (p.Fault.pname ^ ": rec<=det") true
          (p.Fault.precovered <= p.Fault.pdetected))
      fr.Fault.points;
    res

let test_server_drop_recovery_ledger () =
  let res =
    ledger_invariants
      (server_run ~spec:"uipi.drop=p:0.02" ~watchdog:Utimer.default_watchdog ())
  in
  let fr = res.Preemptible.Server.fault_report in
  check_bool "faults actually injected" true (fr.Fault.injected > 0);
  check_bool "most injections detected" true (fr.Fault.detected > 0)

let test_server_wedge_deferred_preemption () =
  let r = server_run ~spec:"server.wedge=p:0.3" () in
  let res = ledger_invariants r in
  check_bool "wedges happened" true (res.Preemptible.Server.wedged > 0);
  check_bool "requests still complete" true (r.Preemptible.Server.completed > 0)

let test_server_fallback_to_kernel_timer () =
  (* Timer core dies, no spares: preemption must keep working through
     the kernel-timer fallback and the run must complete. *)
  let r =
    server_run ~spec:"utimer.crash=once:2000"
      ~watchdog:{ Utimer.default_watchdog with Utimer.wd_spare_cores = 0 }
      ()
  in
  let res = ledger_invariants r in
  check_bool "fallback engaged" true res.Preemptible.Server.fallback_engaged;
  check_bool "timer degraded" true
    (res.Preemptible.Server.timer_health = Some Utimer.Degraded);
  check_bool "run completed" true (r.Preemptible.Server.completed > 0);
  check_bool "still preempting after fallback" true (r.Preemptible.Server.preemptions > 0)

let test_server_failover_mid_quantum () =
  let r =
    server_run ~spec:"utimer.crash=once:2000" ~watchdog:Utimer.default_watchdog ()
  in
  let res = ledger_invariants r in
  check_bool "failed over, not degraded" true
    (res.Preemptible.Server.timer_health = Some Utimer.Failed_over);
  check_bool "no fallback needed" false res.Preemptible.Server.fallback_engaged;
  (match res.Preemptible.Server.wd with
  | Some wd -> check_int "one failover" 1 wd.Utimer.wd_failovers
  | None -> Alcotest.fail "expected watchdog stats");
  check_bool "run completed" true (r.Preemptible.Server.completed > 0)

let test_server_no_faults_no_report () =
  let cfg =
    Preemptible.Server.default_config ~n_workers:2
      ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:(Units.us 5))
      ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config)
  in
  let r =
    Preemptible.Server.run cfg
      ~arrival:(Workload.Arrival.poisson ~rate_per_sec:200_000.0)
      ~source:
        (Workload.Source.of_dist Workload.Service_dist.workload_a1
           ~cls:Workload.Request.Latency_critical)
      ~duration_ns:(Units.ms 10)
  in
  check_bool "no resilience block without a plan" true
    (r.Preemptible.Server.resilience = None)

let suites =
  [
    ( "fault.dsl",
      [
        Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "one-shot exact" `Quick test_one_shot_exact;
        Alcotest.test_case "window bounds" `Quick test_window_bounds;
        Alcotest.test_case "probability deterministic" `Quick test_probability_deterministic;
        Alcotest.test_case "ledger clamps" `Quick test_ledger_clamps;
      ] );
    ( "fault.uintr",
      [
        Alcotest.test_case "drop coalesces on retry" `Quick test_uipi_drop_coalesces_on_retry;
        Alcotest.test_case "stuck SN until repair" `Quick test_stuck_sn_until_repair;
        Alcotest.test_case "UITT corruption until repair" `Quick
          test_uitt_corruption_until_repair;
      ] );
    ( "fault.watchdog",
      [
        Alcotest.test_case "retries lost UIPI" `Quick test_wd_retries_lost_uipi;
        Alcotest.test_case "quiet without faults" `Quick test_wd_quiet_without_faults;
        Alcotest.test_case "retry exhaustion degrades" `Quick
          test_wd_retry_exhaustion_degrades;
        Alcotest.test_case "recovers lost slot store" `Quick test_wd_recovers_lost_slot_store;
        Alcotest.test_case "failover preserves deadline" `Quick
          test_wd_failover_preserves_deadline;
        Alcotest.test_case "no spares: degraded + callback" `Quick
          test_wd_no_spares_degrades_with_callback;
      ] );
    ( "fault.lifecycle",
      [
        Alcotest.test_case "restart re-arms surviving slot" `Quick
          test_restart_rearms_surviving_slot;
        Alcotest.test_case "restart does not refire" `Quick test_restart_does_not_refire;
        Alcotest.test_case "arm_at past deadline" `Quick test_arm_at_past_deadline;
      ] );
    ( "fault.server",
      [
        Alcotest.test_case "drop recovery ledger" `Quick test_server_drop_recovery_ledger;
        Alcotest.test_case "wedge defers preemption" `Quick
          test_server_wedge_deferred_preemption;
        Alcotest.test_case "fallback to kernel timer" `Quick
          test_server_fallback_to_kernel_timer;
        Alcotest.test_case "failover mid-quantum" `Quick test_server_failover_mid_quantum;
        Alcotest.test_case "no faults, no report" `Quick test_server_no_faults_no_report;
      ] );
  ]
