(* Tests for the baseline systems and the timer-strategy experiments. *)

open Engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let a1_source =
  Workload.Source.of_dist Workload.Service_dist.workload_a1
    ~cls:Workload.Request.Latency_critical

let arrival rate = Workload.Arrival.poisson ~rate_per_sec:rate

(* ------------------------------------------------------------------ *)
(* Shinjuku                                                            *)
(* ------------------------------------------------------------------ *)

let run_shinjuku ?(quantum = Units.us 5) ?(rate = 400_000.0) () =
  let cfg = Baselines.Shinjuku.default_config ~n_workers:5 ~quantum_ns:quantum in
  Baselines.Shinjuku.run cfg ~arrival:(arrival rate) ~source:a1_source
    ~duration_ns:(Units.ms 50)

let test_shinjuku_conservation () =
  let r = run_shinjuku () in
  check_int "drained completely" r.Preemptible.Server.offered r.Preemptible.Server.completed

let test_shinjuku_preempts_under_load () =
  let r = run_shinjuku () in
  check_bool "preemptions happened" true (r.Preemptible.Server.preemptions > 100);
  check_bool "ipis counted" true
    (r.Preemptible.Server.timer_interrupts >= r.Preemptible.Server.preemptions)

let test_shinjuku_beats_no_preemption () =
  let preempt = run_shinjuku () in
  let nop = run_shinjuku ~quantum:max_int () in
  check_bool "preemption reduces p99" true
    (nop.Preemptible.Server.all.Stat.Summary.p99
    > 3.0 *. preempt.Preemptible.Server.all.Stat.Summary.p99)

let test_shinjuku_worse_than_libpreemptible () =
  (* Fig 8's headline: LibPreemptible's tail is well below Shinjuku's
     at the same load, because its preemption path is ~5x cheaper. *)
  let shinjuku = run_shinjuku ~rate:900_000.0 () in
  let policy = Preemptible.Policy.fcfs_preempt ~quantum_ns:(Units.us 5) in
  let cfg =
    Preemptible.Server.default_config ~n_workers:5 ~policy
      ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config)
  in
  let lp =
    Preemptible.Server.run cfg ~arrival:(arrival 900_000.0) ~source:a1_source
      ~duration_ns:(Units.ms 50)
  in
  check_bool "LP p99 below Shinjuku p99" true
    (lp.Preemptible.Server.all.Stat.Summary.p99
    < shinjuku.Preemptible.Server.all.Stat.Summary.p99)

let test_shinjuku_apic_limit () =
  let cfg = Baselines.Shinjuku.default_config ~n_workers:64 ~quantum_ns:(Units.us 5) in
  Alcotest.check_raises "over APIC limit"
    (Invalid_argument "Shinjuku.run: worker count exceeds the APIC mapping limit") (fun () ->
      ignore
        (Baselines.Shinjuku.run cfg ~arrival:(arrival 1_000.0) ~source:a1_source
           ~duration_ns:1_000_000))

(* ------------------------------------------------------------------ *)
(* Libinger / Nopreempt wrappers                                       *)
(* ------------------------------------------------------------------ *)

let test_libinger_effective_quantum () =
  let c = Baselines.Libinger.default_config ~n_workers:5 ~quantum_ns:(Units.us 20) in
  check_int "floored at kernel granularity" Ksim.Costs.default.Ksim.Costs.ktimer_floor_ns
    (Baselines.Libinger.effective_quantum_ns c);
  let c2 = Baselines.Libinger.default_config ~n_workers:5 ~quantum_ns:(Units.us 100) in
  check_int "above floor" (Units.us 100) (Baselines.Libinger.effective_quantum_ns c2)

let test_libinger_runs_and_preempts () =
  let c = Baselines.Libinger.default_config ~n_workers:5 ~quantum_ns:(Units.us 20) in
  let r =
    Baselines.Libinger.run c ~arrival:(arrival 400_000.0) ~source:a1_source
      ~duration_ns:(Units.ms 50)
  in
  check_int "drained" r.Preemptible.Server.offered r.Preemptible.Server.completed;
  check_bool "some preemptions" true (r.Preemptible.Server.preemptions > 0)

let test_nopreempt_hol () =
  let c = Baselines.Nopreempt.default_config ~n_workers:5 in
  let r =
    Baselines.Nopreempt.run c ~arrival:(arrival 400_000.0) ~source:a1_source
      ~duration_ns:(Units.ms 50)
  in
  check_int "no preemptions by construction" 0 r.Preemptible.Server.preemptions;
  (* 500us jobs block 0.5us jobs: p99 lives near the long mode. *)
  check_bool "HoL-dominated p99" true (r.Preemptible.Server.all.Stat.Summary.p99 > 100_000.0)

(* ------------------------------------------------------------------ *)
(* Timer strategies — Fig 11 / Fig 12                                  *)
(* ------------------------------------------------------------------ *)

module Ts = Baselines.Timer_strategies

let overhead strategy threads =
  (Ts.delivery_overhead strategy ~threads ~interval_ns:(Units.us 100) ~rounds:120)
    .Ts.mean_overhead_us

let test_fig11_utimer_flat_and_fast () =
  let o1 = overhead Ts.Userspace_timer 1 in
  let o32 = overhead Ts.Userspace_timer 32 in
  check_bool "sub-3us at 32 threads" true (o32 < 3.0);
  check_bool "grows slowly" true (o32 < 10.0 *. o1)

let test_fig11_creation_time_superlinear () =
  let o1 = overhead Ts.Creation_time 1 in
  let o8 = overhead Ts.Creation_time 8 in
  let o32 = overhead Ts.Creation_time 32 in
  check_bool "monotone growth" true (o32 > o8 && o8 > o1);
  (* Superlinear: going 8->32 threads (4x) more than doubles overhead. *)
  check_bool "superlinear vs thread count" true (o32 /. o8 > 2.0);
  check_bool "reaches tens of us at 32" true (o32 > 40.0)

let test_fig11_staggered_beats_creation_time () =
  let aligned = overhead Ts.Creation_time 32 in
  let staggered = overhead Ts.Staggered 32 in
  check_bool "staggering avoids lock contention" true (staggered *. 3.0 < aligned)

let test_fig11_ordering_at_32 () =
  let u = overhead Ts.Userspace_timer 32 in
  let s = overhead Ts.Staggered 32 in
  let ch = overhead Ts.Chained 32 in
  let cr = overhead Ts.Creation_time 32 in
  check_bool "utimer < staggered" true (u < s);
  check_bool "staggered < chained" true (s < ch);
  check_bool "chained < creation-time" true (ch < cr)

let test_fig12_kernel_timer_floor () =
  let r = Ts.precision `Kernel_timer ~threads:26 ~target_ns:(Units.us 20) ~samples:800 in
  (* The paper: "kernel timer's granularity cannot go down to 20us
     (which is why we see a line around 60us)". *)
  check_bool "floors near 60us" true (r.Ts.mean_gap_us > 55.0);
  check_bool "large relative error" true (r.Ts.rel_error > 1.5)

let test_fig12_utimer_precise () =
  let r = Ts.precision `Utimer ~threads:26 ~target_ns:(Units.us 20) ~samples:800 in
  check_bool "~1% relative error" true (r.Ts.rel_error < 0.02);
  let r100 = Ts.precision `Utimer ~threads:26 ~target_ns:(Units.us 100) ~samples:800 in
  check_bool "100us also precise" true (r100.Ts.rel_error < 0.02);
  check_bool "sample series exported" true (Array.length r100.Ts.sample_gaps_us > 100)

let test_strategy_validation () =
  Alcotest.check_raises "bad threads"
    (Invalid_argument "Timer_strategies.delivery_overhead: non-positive parameter") (fun () ->
      ignore (Ts.delivery_overhead Ts.Chained ~threads:0 ~interval_ns:1 ~rounds:1))

(* ------------------------------------------------------------------ *)
(* Attack scenarios (Sec VII)                                          *)
(* ------------------------------------------------------------------ *)

module Atk = Baselines.Attack

let attack scenario storm =
  Atk.run scenario ~storm_per_sec:storm ~victim_rate:300_000.0 ~duration_ns:(Units.ms 50)

let test_attack_libpreemptible_immune () =
  let r = attack Atk.Libpreemptible_storm 5_000_000.0 in
  check_bool "storm attempted" true (r.Atk.attempted > 100_000);
  check_int "nothing delivered (no UITT entry)" 0 r.Atk.delivered;
  let baseline = attack Atk.Libpreemptible_storm 0.0 in
  Alcotest.(check (float 0.001)) "p99 unchanged under storm" baseline.Atk.victim_p99_us
    r.Atk.victim_p99_us

let test_attack_native_uintr_degrades () =
  let calm = attack Atk.Native_uintr_storm 0.0 in
  let stormed = attack Atk.Native_uintr_storm 5_000_000.0 in
  check_bool "interrupts delivered" true (stormed.Atk.delivered > 100_000);
  check_bool "victim tail degrades" true
    (stormed.Atk.victim_p99_us > 1.5 *. calm.Atk.victim_p99_us)

let test_attack_apic_worst () =
  let uintr = attack Atk.Native_uintr_storm 1_000_000.0 in
  let apic = attack Atk.Shinjuku_apic_storm 1_000_000.0 in
  check_bool "APIC storm (kernel interrupt path) hits harder" true
    (apic.Atk.victim_p99_us > 3.0 *. uintr.Atk.victim_p99_us)

let test_attack_validation () =
  Alcotest.check_raises "negative storm" (Invalid_argument "Attack.run: negative storm rate")
    (fun () ->
      ignore
        (Atk.run Atk.Native_uintr_storm ~storm_per_sec:(-1.0) ~victim_rate:1.0
           ~duration_ns:1_000))

(* ------------------------------------------------------------------ *)
(* Hardware offload mechanism / power                                  *)
(* ------------------------------------------------------------------ *)

let test_hw_offload_mechanism () =
  let cfg =
    Preemptible.Server.default_config ~n_workers:4
      ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:(Units.us 5))
      ~mechanism:Preemptible.Server.Uintr_hw_offload
  in
  let r =
    Preemptible.Server.run cfg ~arrival:(arrival 600_000.0) ~source:a1_source
      ~duration_ns:(Units.ms 40)
  in
  check_int "drained" r.Preemptible.Server.offered r.Preemptible.Server.completed;
  check_bool "preempted without a timer core" true (r.Preemptible.Server.preemptions > 1_000);
  (* Comparators don't quantize to a poll period, so the tail should be
     no worse than the timer-core version. *)
  let cfg_tc =
    { cfg with
      Preemptible.Server.mechanism = Preemptible.Server.Uintr_utimer Utimer.default_config }
  in
  let tc =
    Preemptible.Server.run cfg_tc ~arrival:(arrival 600_000.0) ~source:a1_source
      ~duration_ns:(Units.ms 40)
  in
  check_bool "offload tail <= timer-core tail (+5% slack)" true
    (r.Preemptible.Server.all.Stat.Summary.p99
    <= 1.05 *. tc.Preemptible.Server.all.Stat.Summary.p99)

let test_utimer_power_model () =
  let sim = Engine.Sim.create () in
  let fabric = Hw.Uintr.create sim Hw.Params.default in
  let parked = Utimer.create sim ~uintr:fabric () in
  Alcotest.(check (float 1e-9)) "UMWAIT-parked ~1.2W" 1.2 (Utimer.power_watts parked);
  let hot =
    Utimer.create sim ~uintr:fabric
      ~config:{ Utimer.default_config with Utimer.poll_ns = 50 }
      ()
  in
  check_bool "hot polling costs more" true (Utimer.power_watts hot > 2.0);
  Alcotest.(check (float 1e-9)) "energy integrates power" 1.2
    (Utimer.energy_joules parked ~duration_ns:(Units.sec 1))

(* ------------------------------------------------------------------ *)
(* Request flood (tail attack through the front door)                  *)
(* ------------------------------------------------------------------ *)

let flood_guard =
  {
    Guard.disabled with
    Guard.timeout_ns = Some (Units.us 300);
    drop_expired = true;
    shed =
      Some
        { Guard.max_queue = 32; codel_target_ns = Units.us 50; codel_interval_ns = Units.us 250 };
    be_bucket = Some { Guard.rate_per_sec = 10_000.0; burst = 8.0 };
    brownout = Some Guard.default_brownout;
  }

let run_flood ?guard ~flood_rate () =
  Baselines.Attack.request_flood ?guard ~victim_rate:200_000.0 ~flood_rate
    ~slo_ns:(Units.us 300) ~duration_ns:(Units.ms 30) ()

let test_flood_conservation () =
  (* Drained run: every offered request either completed, was shed at
     admission, or was dropped after the client abandoned it. *)
  List.iter
    (fun (guard, flood_rate) ->
      let r = run_flood ?guard ~flood_rate () in
      check_int "offered = completed + shed + expired"
        r.Baselines.Attack.offered
        (r.Baselines.Attack.completed + r.Baselines.Attack.shed + r.Baselines.Attack.expired))
    [ (None, 0.0); (None, 45_000.0); (Some flood_guard, 0.0); (Some flood_guard, 45_000.0) ]

let test_flood_guard_protects_lc () =
  let naive = run_flood ~flood_rate:100_000.0 () in
  let guarded = run_flood ~guard:flood_guard ~flood_rate:100_000.0 () in
  let control = run_flood ~flood_rate:0.0 () in
  (* Preemption already shields LC requests shorter than the quantum,
     so the flood's damage lands on the LC tail: requests longer than
     the quantum are demoted behind the BE glut and their p99 explodes
     past the SLO.  The guard's BE bucket sheds the flood and restores
     both the tail and the lost goodput. *)
  let slo_us = 300.0 in
  check_bool "flood explodes the naive LC tail" true
    (naive.Baselines.Attack.lc_p99_us > 10.0 *. slo_us);
  check_bool "flood costs the naive victim goodput" true
    (naive.Baselines.Attack.lc_goodput_rps < 0.98 *. control.Baselines.Attack.lc_goodput_rps);
  check_bool "guard restores the LC tail" true
    (guarded.Baselines.Attack.lc_p99_us < slo_us);
  check_bool "guard restores goodput" true
    (guarded.Baselines.Attack.lc_goodput_rps > naive.Baselines.Attack.lc_goodput_rps);
  check_bool "guard actually shed" true (guarded.Baselines.Attack.shed > 0);
  check_bool "shed work never executes" true
    (guarded.Baselines.Attack.completed + guarded.Baselines.Attack.expired
    <= guarded.Baselines.Attack.offered - guarded.Baselines.Attack.shed);
  match guarded.Baselines.Attack.guard_report with
  | None -> Alcotest.fail "guarded run carries a ledger"
  | Some g ->
    check_int "ledger agrees with result" g.Guard.shed_total guarded.Baselines.Attack.shed

let test_flood_validation () =
  Alcotest.check_raises "negative flood"
    (Invalid_argument "Attack.request_flood: negative flood rate") (fun () ->
      ignore
        (Baselines.Attack.request_flood ~victim_rate:1.0 ~flood_rate:(-1.0) ~slo_ns:1
           ~duration_ns:1 ()))

(* ------------------------------------------------------------------ *)
(* Tenancy                                                             *)
(* ------------------------------------------------------------------ *)

let test_tenancy_scales () =
  let one =
    Baselines.Tenancy.libpreemptible ~tenants:1 ~per_tenant_rate:150_000.0
      ~duration_ns:(Units.ms 30) ()
  in
  let many =
    Baselines.Tenancy.libpreemptible ~tenants:32 ~per_tenant_rate:150_000.0
      ~duration_ns:(Units.ms 30) ()
  in
  check_bool "32 tenants served" true (many.Baselines.Tenancy.completed > 30 * one.Baselines.Tenancy.completed / 2);
  (* shared timer core: degradation bounded (well under 4x) *)
  check_bool "tail degrades mildly" true
    (many.Baselines.Tenancy.mean_p99_us < 4.0 *. one.Baselines.Tenancy.mean_p99_us);
  check_bool "far beyond the APIC limit is possible" true
    (Baselines.Tenancy.shinjuku_tenant_limit Hw.Params.default < 64);
  let wheel =
    Baselines.Tenancy.libpreemptible ~tenants:32 ~per_tenant_rate:150_000.0 ~wheel:true
      ~duration_ns:(Units.ms 30) ()
  in
  check_bool "wheel variant also works" true (wheel.Baselines.Tenancy.completed > 0)

let test_tenancy_conservation () =
  (* Every arrival is accounted for: completed, or still pending when
     the run stopped — nothing lost, nothing invented. *)
  List.iter
    (fun tenants ->
      let r =
        Baselines.Tenancy.libpreemptible ~tenants ~per_tenant_rate:150_000.0
          ~duration_ns:(Units.ms 20) ()
      in
      check_int
        (Printf.sprintf "offered = completed + pending (%d tenants)" tenants)
        r.Baselines.Tenancy.offered
        (r.Baselines.Tenancy.completed + r.Baselines.Tenancy.pending);
      check_bool "tenants actually served" true (r.Baselines.Tenancy.completed > 0))
    [ 1; 8 ]

let test_tenancy_validation () =
  Alcotest.check_raises "zero tenants"
    (Invalid_argument "Tenancy.libpreemptible: need at least one tenant") (fun () ->
      ignore
        (Baselines.Tenancy.libpreemptible ~tenants:0 ~per_tenant_rate:1.0 ~duration_ns:1_000 ()))

let suites =
  [
    ( "baselines.shinjuku",
      [
        Alcotest.test_case "conservation" `Slow test_shinjuku_conservation;
        Alcotest.test_case "preempts under load" `Slow test_shinjuku_preempts_under_load;
        Alcotest.test_case "beats no-preemption" `Slow test_shinjuku_beats_no_preemption;
        Alcotest.test_case "LP beats shinjuku" `Slow test_shinjuku_worse_than_libpreemptible;
        Alcotest.test_case "apic limit" `Quick test_shinjuku_apic_limit;
      ] );
    ( "baselines.libinger",
      [
        Alcotest.test_case "effective quantum" `Quick test_libinger_effective_quantum;
        Alcotest.test_case "runs and preempts" `Slow test_libinger_runs_and_preempts;
      ] );
    ( "baselines.nopreempt",
      [ Alcotest.test_case "HoL blocking" `Slow test_nopreempt_hol ] );
    ( "baselines.attack",
      [
        Alcotest.test_case "libpreemptible immune" `Slow test_attack_libpreemptible_immune;
        Alcotest.test_case "native uintr degrades" `Slow test_attack_native_uintr_degrades;
        Alcotest.test_case "apic worst" `Slow test_attack_apic_worst;
        Alcotest.test_case "validation" `Quick test_attack_validation;
        Alcotest.test_case "flood conservation" `Slow test_flood_conservation;
        Alcotest.test_case "flood: guard protects LC" `Slow test_flood_guard_protects_lc;
        Alcotest.test_case "flood validation" `Quick test_flood_validation;
      ] );
    ( "baselines.hw_offload",
      [
        Alcotest.test_case "mechanism works" `Slow test_hw_offload_mechanism;
        Alcotest.test_case "power model" `Quick test_utimer_power_model;
      ] );
    ( "baselines.tenancy",
      [
        Alcotest.test_case "scales past APIC limit" `Slow test_tenancy_scales;
        Alcotest.test_case "conservation" `Slow test_tenancy_conservation;
        Alcotest.test_case "validation" `Quick test_tenancy_validation;
      ] );
    ( "baselines.timer_strategies",
      [
        Alcotest.test_case "fig11 utimer flat" `Slow test_fig11_utimer_flat_and_fast;
        Alcotest.test_case "fig11 creation-time superlinear" `Slow
          test_fig11_creation_time_superlinear;
        Alcotest.test_case "fig11 staggered wins" `Slow test_fig11_staggered_beats_creation_time;
        Alcotest.test_case "fig11 ordering" `Slow test_fig11_ordering_at_32;
        Alcotest.test_case "fig12 kernel floor" `Slow test_fig12_kernel_timer_floor;
        Alcotest.test_case "fig12 utimer precise" `Slow test_fig12_utimer_precise;
        Alcotest.test_case "validation" `Quick test_strategy_validation;
      ] );
  ]
