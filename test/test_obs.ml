(* The observability layer: trace ring semantics, category filtering,
   metrics registry, exporters, the per-request latency breakdown, and
   the no-perturbation guarantee (traced = untraced, bit for bit). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let manual_trace ?(capacity = 64) ?(cats = Obs.Trace.all_cats) () =
  let now = ref 0 in
  let t =
    Obs.Trace.create ~config:{ Obs.Trace.capacity; categories = cats }
      ~clock:(fun () -> !now)
      ()
  in
  (t, now)

(* ------------------------------------------------------------------ *)
(* Ring semantics                                                      *)
(* ------------------------------------------------------------------ *)

let test_ring_wraparound () =
  let t, now = manual_trace ~capacity:4 () in
  for i = 1 to 6 do
    now := i;
    Obs.Trace.instant t Obs.Trace.Uipi ~name:"e" ~track:i ~arg:(10 * i)
  done;
  check_int "recorded" 6 (Obs.Trace.recorded t);
  check_int "dropped" 2 (Obs.Trace.dropped t);
  check_int "length" 4 (Obs.Trace.length t);
  check_int "capacity" 4 (Obs.Trace.capacity t);
  let ts = List.map (fun e -> e.Obs.Trace.ts) (Obs.Trace.to_list t) in
  Alcotest.(check (list int)) "oldest evicted, order kept" [ 3; 4; 5; 6 ] ts;
  Obs.Trace.clear t;
  check_int "clear empties" 0 (Obs.Trace.length t);
  check_int "clear zeroes recorded" 0 (Obs.Trace.recorded t);
  check_int "clear zeroes dropped" 0 (Obs.Trace.dropped t)

let test_category_filter () =
  let t, now = manual_trace ~cats:[ Obs.Trace.Uipi ] () in
  now := 5;
  Obs.Trace.instant t Obs.Trace.Uipi ~name:"in" ~track:0 ~arg:0;
  Obs.Trace.instant t Obs.Trace.Sched ~name:"out" ~track:0 ~arg:0;
  check_int "disabled cat not recorded" 1 (Obs.Trace.recorded t);
  check_bool "uipi enabled" true (Obs.Trace.enabled t Obs.Trace.Uipi);
  check_bool "sched disabled" false (Obs.Trace.enabled t Obs.Trace.Sched);
  Obs.Trace.set_categories t [ Obs.Trace.Sched ];
  Obs.Trace.instant t Obs.Trace.Uipi ~name:"out2" ~track:0 ~arg:0;
  Obs.Trace.instant t Obs.Trace.Sched ~name:"in2" ~track:0 ~arg:0;
  check_int "switchable at runtime" 2 (Obs.Trace.recorded t);
  let names = List.map (fun e -> e.Obs.Trace.name) (Obs.Trace.to_list t) in
  Alcotest.(check (list string)) "only enabled survive" [ "in"; "in2" ] names

let test_cat_of_string () =
  check_bool "case-insensitive" true (Obs.Trace.cat_of_string "UIPI" = Ok Obs.Trace.Uipi);
  check_bool "exact" true (Obs.Trace.cat_of_string "request" = Ok Obs.Trace.Request);
  (match Obs.Trace.cat_of_string "bogus" with
  | Ok _ -> Alcotest.fail "bogus category parsed"
  | Error m ->
    check_bool "error names the valid set" true (Astring_contains.contains m "uipi"));
  check_bool "bad capacity rejected" true
    (try
       ignore
         (Obs.Trace.create
            ~config:{ Obs.Trace.capacity = 0; categories = [] }
            ~clock:(fun () -> 0)
            ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_metrics_registry () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "reqs" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  check_int "counter accumulates" 5 (Obs.Metrics.value c);
  check_int "counter handle shared by name" 5 (Obs.Metrics.value (Obs.Metrics.counter m "reqs"));
  Obs.Metrics.gauge m "depth" (fun () -> 42);
  ignore (Obs.Metrics.histogram m "empty");
  Obs.Metrics.observe (Obs.Metrics.histogram m "lat") 1.0;
  Obs.Metrics.observe (Obs.Metrics.histogram m "lat") 2.0;
  let snap = Obs.Metrics.snapshot m in
  check_bool "sorted by name" true
    (List.map fst snap = List.sort compare (List.map fst snap));
  (match Obs.Metrics.find snap "reqs" with
  | Some (Obs.Metrics.Counter 5) -> ()
  | _ -> Alcotest.fail "counter missing from snapshot");
  (match Obs.Metrics.find snap "depth" with
  | Some (Obs.Metrics.Gauge 42) -> ()
  | _ -> Alcotest.fail "gauge missing from snapshot");
  check_bool "empty histogram omitted" true (Obs.Metrics.find snap "empty" = None);
  match Obs.Metrics.find snap "lat" with
  | Some (Obs.Metrics.Histogram r) -> check_int "histogram count" 2 r.Stat.Summary.count
  | _ -> Alcotest.fail "histogram missing from snapshot"

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let golden_events t now =
  now := 1000;
  Obs.Trace.span_begin t Obs.Trace.Sched ~name:"quantum" ~track:1 ~arg:5000;
  now := 1500;
  Obs.Trace.instant t Obs.Trace.Uipi ~name:"uipi.send" ~track:2 ~arg:3;
  now := 2000;
  Obs.Trace.counter t Obs.Trace.Server ~name:"qlen" ~value:7;
  now := 2500;
  Obs.Trace.span_end t Obs.Trace.Sched ~name:"quantum" ~track:1

let test_perfetto_golden () =
  let t, now = manual_trace () in
  golden_events t now;
  let expected =
    String.concat ""
      [
        "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
        "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":4,\"args\":{\"name\":\"sched\"}},";
        "\n{\"name\":\"quantum\",\"cat\":\"sched\",\"ph\":\"B\",\"ts\":1.000,\"pid\":4,\"tid\":1,\"args\":{\"arg\":5000}},";
        "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"uipi\"}},";
        "\n{\"name\":\"uipi.send\",\"cat\":\"uipi\",\"ph\":\"i\",\"s\":\"t\",\"ts\":1.500,\"pid\":1,\"tid\":2,\"args\":{\"arg\":3}},";
        "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":5,\"args\":{\"name\":\"server\"}},";
        "\n{\"name\":\"qlen\",\"cat\":\"server\",\"ph\":\"C\",\"ts\":2.000,\"pid\":5,\"tid\":0,\"args\":{\"qlen\":7}},";
        "\n{\"name\":\"quantum\",\"cat\":\"sched\",\"ph\":\"E\",\"ts\":2.500,\"pid\":4,\"tid\":1}";
        "\n]}\n";
      ]
  in
  check_string "perfetto golden" expected (Obs.Export.perfetto t)

let test_csv_export () =
  let t, now = manual_trace () in
  golden_events t now;
  let csv = Obs.Export.csv t in
  let lines = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
  check_string "header" "ts_ns,kind,cat,name,track,arg" (List.hd lines);
  check_int "one row per event" 5 (List.length lines);
  check_bool "instant row" true
    (List.mem "1500,I,uipi,uipi.send,2,3" lines);
  check_bool "counter row" true (List.mem "2000,C,server,qlen,0,7" lines)

(* ------------------------------------------------------------------ *)
(* Traced server runs                                                  *)
(* ------------------------------------------------------------------ *)

let traced_cfg ?(capacity = 1 lsl 20) ?(cats = Obs.Trace.all_cats) ~seed ~quantum_ns () =
  let cfg =
    Preemptible.Server.default_config ~n_workers:4
      ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns)
      ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config)
  in
  { cfg with Preemptible.Server.seed; trace = Some { Obs.Trace.capacity; categories = cats } }

let run_traced ?capacity ?cats ?(seed = 42L) ?(quantum_ns = 5_000) ?(rate = 300_000.0)
    ?(duration_ms = 20) () =
  Preemptible.Server.run
    (traced_cfg ?capacity ?cats ~seed ~quantum_ns ())
    ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
    ~source:
      (Workload.Source.of_dist Workload.Service_dist.workload_a1
         ~cls:Workload.Request.Latency_critical)
    ~duration_ns:(duration_ms * 1_000_000)

let the_trace (r : Preemptible.Server.result) =
  match r.Preemptible.Server.trace with
  | Some t -> t
  | None -> Alcotest.fail "traced run returned no trace"

(* Every Sched "quantum" span on every worker track must strictly
   alternate B/E — under preemption interleavings the segments of
   different requests on one core may never overlap. *)
let test_span_pairing_under_preemption () =
  let r = run_traced ~quantum_ns:2_000 () in
  check_bool "run preempts" true (r.Preemptible.Server.preemptions > 0);
  let depth = Hashtbl.create 8 in
  let begins = ref 0 and ends = ref 0 in
  Obs.Trace.iter (the_trace r) (fun e ->
      if e.Obs.Trace.cat = Obs.Trace.Sched && e.Obs.Trace.name = "quantum" then begin
        let d = Option.value ~default:0 (Hashtbl.find_opt depth e.Obs.Trace.track) in
        match e.Obs.Trace.kind with
        | Obs.Trace.Span_begin ->
          incr begins;
          if d <> 0 then Alcotest.failf "nested quantum span on worker %d" e.Obs.Trace.track;
          Hashtbl.replace depth e.Obs.Trace.track 1
        | Obs.Trace.Span_end ->
          incr ends;
          if d <> 1 then Alcotest.failf "unmatched span end on worker %d" e.Obs.Trace.track;
          Hashtbl.replace depth e.Obs.Trace.track 0
        | _ -> ()
      end);
  check_bool "spans exist" true (!begins > 0);
  check_int "begin/end balanced" !begins !ends;
  Hashtbl.iter (fun w d -> if d <> 0 then Alcotest.failf "open span on worker %d" w) depth;
  (* Each completed request ran [preemptions + completions] segments. *)
  check_int "segments = completions + preemptions"
    (r.Preemptible.Server.completed + r.Preemptible.Server.preemptions)
    !begins

let test_breakdown_complete_run () =
  let r = run_traced () in
  let bd = Obs.Breakdown.of_trace (the_trace r) in
  check_int "every completion broken down" r.Preemptible.Server.completed bd.Obs.Breakdown.complete;
  check_int "nothing incomplete" 0 bd.Obs.Breakdown.incomplete;
  check_bool "components telescope" true (Obs.Breakdown.sums_ok bd)

let test_breakdown_survives_wraparound () =
  let r = run_traced ~capacity:2048 () in
  let t = the_trace r in
  check_bool "ring wrapped" true (Obs.Trace.dropped t > 0);
  let bd = Obs.Breakdown.of_trace t in
  check_bool "some lifecycles evicted" true
    (bd.Obs.Breakdown.complete < r.Preemptible.Server.completed);
  check_bool "survivors exist" true (bd.Obs.Breakdown.complete > 0);
  check_bool "survivors still telescope" true (Obs.Breakdown.sums_ok bd)

(* The tentpole determinism guarantee: switching tracing on changes no
   simulation outcome whatsoever. *)
let test_tracing_is_passive () =
  let untraced_cfg =
    let cfg = traced_cfg ~seed:42L ~quantum_ns:5_000 () in
    { cfg with Preemptible.Server.trace = None }
  in
  let run cfg =
    Preemptible.Server.run cfg
      ~arrival:(Workload.Arrival.poisson ~rate_per_sec:300_000.0)
      ~source:
        (Workload.Source.of_dist Workload.Service_dist.workload_a1
           ~cls:Workload.Request.Latency_critical)
      ~duration_ns:20_000_000
  in
  let a = run (traced_cfg ~seed:42L ~quantum_ns:5_000 ()) in
  let b = run untraced_cfg in
  check_int "completed" b.Preemptible.Server.completed a.Preemptible.Server.completed;
  check_int "preemptions" b.Preemptible.Server.preemptions a.Preemptible.Server.preemptions;
  check_int "timer interrupts" b.Preemptible.Server.timer_interrupts
    a.Preemptible.Server.timer_interrupts;
  Alcotest.(check (float 0.0))
    "mean latency" b.Preemptible.Server.all.Stat.Summary.mean
    a.Preemptible.Server.all.Stat.Summary.mean;
  Alcotest.(check (float 0.0))
    "p99 latency" b.Preemptible.Server.all.Stat.Summary.p99
    a.Preemptible.Server.all.Stat.Summary.p99

let test_result_metrics () =
  let r = run_traced () in
  let snap = r.Preemptible.Server.metrics in
  (match Obs.Metrics.find snap "requests.completed" with
  | Some (Obs.Metrics.Counter n) -> check_int "completed counter" r.Preemptible.Server.completed n
  | _ -> Alcotest.fail "requests.completed missing");
  (match Obs.Metrics.find snap "preemptions" with
  | Some (Obs.Metrics.Counter n) -> check_int "preemption counter" r.Preemptible.Server.preemptions n
  | _ -> Alcotest.fail "preemptions missing");
  (match Obs.Metrics.find snap "sim.live_events" with
  | Some (Obs.Metrics.Gauge n) -> check_int "drained sim has no live events" 0 n
  | _ -> Alcotest.fail "sim.live_events missing");
  match Obs.Metrics.find snap "latency.all_ns" with
  | Some (Obs.Metrics.Histogram h) ->
    check_int "latency histogram counts completions" r.Preemptible.Server.completed
      h.Stat.Summary.count
  | _ -> Alcotest.fail "latency.all_ns missing"

(* ------------------------------------------------------------------ *)
(* Sim.live_events                                                     *)
(* ------------------------------------------------------------------ *)

let test_sim_live_events () =
  let sim = Engine.Sim.create () in
  let e1 = Engine.Sim.at sim 10 (fun () -> ()) in
  let _e2 = Engine.Sim.at sim 20 (fun () -> ()) in
  let _e3 = Engine.Sim.at sim 30 (fun () -> ()) in
  check_int "three scheduled" 3 (Engine.Sim.live_events sim);
  Engine.Sim.cancel e1;
  check_int "cancel drops live count" 2 (Engine.Sim.live_events sim);
  check_int "pending still counts the corpse" 3 (Engine.Sim.pending sim);
  Engine.Sim.cancel e1;
  check_int "double cancel is idempotent" 2 (Engine.Sim.live_events sim);
  Engine.Sim.run sim;
  check_int "drained" 0 (Engine.Sim.live_events sim);
  check_int "heap empty" 0 (Engine.Sim.pending sim)

(* ------------------------------------------------------------------ *)
(* Fault ledger mirroring                                              *)
(* ------------------------------------------------------------------ *)

let test_fault_trace_mirror () =
  let t, now = manual_trace () in
  let f = Fault.create () in
  Fault.set_trace f t;
  Fault.set f "x" Fault.Always;
  let p = Fault.point f "x" in
  now := 77;
  check_bool "fires" true (Fault.fires p ~now:77);
  Fault.mark_detected f ~hint:"x" ();
  Fault.mark_recovered f ~hint:"x" ();
  let names =
    Obs.Trace.to_list t
    |> List.filter (fun e -> e.Obs.Trace.cat = Obs.Trace.Fault)
    |> List.map (fun e -> e.Obs.Trace.name)
  in
  Alcotest.(check (list string))
    "inject/detect/recover mirrored"
    [ "fault.inject"; "fault.detected"; "fault.recovered" ]
    names

(* ------------------------------------------------------------------ *)
(* qcheck: the telescoping invariant                                   *)
(* ------------------------------------------------------------------ *)

let breakdown_telescopes =
  QCheck.Test.make ~name:"obs: breakdown components sum to end-to-end latency" ~count:12
    QCheck.(
      triple (int_range 1 1_000) (int_range 2 10) (int_range 150 450))
    (fun (seed, quantum_us, rate_krps) ->
      let r =
        run_traced ~seed:(Int64.of_int seed) ~quantum_ns:(quantum_us * 1_000)
          ~rate:(float_of_int rate_krps *. 1_000.0) ~duration_ms:10 ()
      in
      let bd = Obs.Breakdown.of_trace (the_trace r) in
      Obs.Breakdown.sums_ok bd
      && bd.Obs.Breakdown.complete = r.Preemptible.Server.completed
      && bd.Obs.Breakdown.incomplete = 0)

let suites =
  [
    ( "obs.trace",
      [
        Alcotest.test_case "ring wraparound + drop counting" `Quick test_ring_wraparound;
        Alcotest.test_case "category filtering" `Quick test_category_filter;
        Alcotest.test_case "cat_of_string" `Quick test_cat_of_string;
        Alcotest.test_case "sim live_events" `Quick test_sim_live_events;
        Alcotest.test_case "fault ledger mirrored" `Quick test_fault_trace_mirror;
      ] );
    ( "obs.metrics",
      [ Alcotest.test_case "registry + snapshot" `Quick test_metrics_registry ] );
    ( "obs.export",
      [
        Alcotest.test_case "perfetto golden" `Quick test_perfetto_golden;
        Alcotest.test_case "csv export" `Quick test_csv_export;
      ] );
    ( "obs.server",
      [
        Alcotest.test_case "span pairing under preemption" `Quick
          test_span_pairing_under_preemption;
        Alcotest.test_case "breakdown covers every completion" `Quick
          test_breakdown_complete_run;
        Alcotest.test_case "breakdown survives wraparound" `Quick
          test_breakdown_survives_wraparound;
        Alcotest.test_case "tracing is passive" `Quick test_tracing_is_passive;
        Alcotest.test_case "result metrics snapshot" `Quick test_result_metrics;
        QCheck_alcotest.to_alcotest breakdown_telescopes;
      ] );
  ]
