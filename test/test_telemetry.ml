(* SLO telemetry: sketch accuracy and merge properties, burn-rate
   budget telescoping against a reference model, empty-safe summaries,
   the Prometheus exporter, and the passivity of the telemetry tick
   (telemetry on = telemetry off, bit for bit). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Obs.Sketch properties                                               *)
(* ------------------------------------------------------------------ *)

let quantile_grid = [ 0.0; 0.25; 0.5; 0.9; 0.99; 0.999; 1.0 ]

(* The same nearest-rank convention the sketch uses, over the exact
   sorted samples. *)
let oracle sorted q =
  let n = Array.length sorted in
  let r = int_of_float (Float.ceil (q *. float_of_int (n - 1))) in
  sorted.(max 0 (min (n - 1) r))

(* Latencies are ns integers >= 1; the sketch's relative-error
   guarantee covers values >= 1 (everything below collapses into
   bucket 0). *)
let samples_gen =
  QCheck.(list_of_size (Gen.int_range 1 400) (int_range 1 1_000_000_000))

let sketch_accuracy =
  QCheck.Test.make ~name:"sketch: quantiles within alpha of the sorted oracle" ~count:300
    samples_gen (fun samples ->
      let alpha = 0.01 in
      let s = Obs.Sketch.create ~alpha () in
      List.iter (fun v -> Obs.Sketch.add s (float_of_int v)) samples;
      let sorted = Array.of_list (List.map float_of_int samples) in
      Array.sort compare sorted;
      List.for_all
        (fun q ->
          let exact = oracle sorted q in
          let est = Obs.Sketch.quantile s q in
          Float.abs (est -. exact) <= (alpha +. 1e-9) *. exact)
        quantile_grid)

let sketch_merge =
  QCheck.Test.make ~name:"sketch: merge equals the concatenated stream" ~count:300
    QCheck.(pair samples_gen samples_gen)
    (fun (xs, ys) ->
      let a = Obs.Sketch.create () and b = Obs.Sketch.create () in
      let whole = Obs.Sketch.create () in
      List.iter (fun v -> Obs.Sketch.add a (float_of_int v)) xs;
      List.iter (fun v -> Obs.Sketch.add b (float_of_int v)) ys;
      List.iter (fun v -> Obs.Sketch.add whole (float_of_int v)) (xs @ ys);
      Obs.Sketch.merge_into ~dst:a ~src:b;
      Obs.Sketch.count a = Obs.Sketch.count whole
      && Obs.Sketch.sum a = Obs.Sketch.sum whole
      && Obs.Sketch.min_value a = Obs.Sketch.min_value whole
      && Obs.Sketch.max_value a = Obs.Sketch.max_value whole
      && List.for_all
           (fun q -> Obs.Sketch.quantile a q = Obs.Sketch.quantile whole q)
           quantile_grid)

let test_sketch_edges () =
  let s = Obs.Sketch.create () in
  check_bool "empty quantile_opt" true (Obs.Sketch.quantile_opt s 0.5 = None);
  check_int "empty count" 0 (Obs.Sketch.count s);
  check_bool "empty min is nan" true (Float.is_nan (Obs.Sketch.min_value s));
  (* Non-positive observations land in the zero bucket and surface at
     the low quantiles without breaking the positive tail. *)
  Obs.Sketch.add s (-5.0);
  Obs.Sketch.add s 0.0;
  Obs.Sketch.add s 1000.0;
  check_bool "low quantile covers the zero bucket" true (Obs.Sketch.quantile s 0.0 <= 0.0);
  check_bool "high quantile stays positive" true (Obs.Sketch.quantile s 1.0 = 1000.0);
  Obs.Sketch.clear s;
  check_int "clear empties" 0 (Obs.Sketch.count s);
  (* Geometry mismatches must fail loudly, not merge garbage. *)
  check_bool "alpha mismatch rejected" true
    (try
       Obs.Sketch.merge_into ~dst:(Obs.Sketch.create ~alpha:0.01 ())
         ~src:(Obs.Sketch.create ~alpha:0.02 ());
       false
     with Invalid_argument _ -> true);
  check_bool "bin-count mismatch rejected" true
    (try
       Obs.Sketch.merge_into ~dst:(Obs.Sketch.create ~max_bins:64 ())
         ~src:(Obs.Sketch.create ~max_bins:128 ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Obs.Slo against a reference model                                   *)
(* ------------------------------------------------------------------ *)

(* Windows of (good, bad) counts; fast/slow window sizes. *)
let slo_case_gen =
  QCheck.(
    pair
      (list_of_size (Gen.int_range 1 50) (pair (int_range 0 20) (int_range 0 20)))
      (pair (int_range 1 4) (int_range 0 6)))

(* Reference burn over the trailing [w] closed windows ending at
   index [i] (inclusive), computed from scratch. *)
let ref_burn windows ~budget ~upto ~w =
  let lo = max 0 (upto - w + 1) in
  let good = ref 0 and bad = ref 0 in
  for j = lo to upto do
    let g, b = List.nth windows j in
    good := !good + g;
    bad := !bad + b
  done;
  let n = !good + !bad in
  if n = 0 then 0.0 else float_of_int !bad /. float_of_int n /. budget

let slo_telescopes =
  QCheck.Test.make
    ~name:"slo: burns match a from-scratch model; budget telescopes across windows"
    ~count:300 slo_case_gen
    (fun (windows, (fast, extra)) ->
      let spec =
        {
          Obs.Slo.default_spec with
          Obs.Slo.threshold_ns = 1000;
          objective = 0.9;
          window_ns = 100;
          fast_windows = fast;
          slow_windows = fast + extra;
          burn_threshold = 2.0;
        }
      in
      let t = Obs.Slo.create spec in
      let budget = 1.0 -. spec.Obs.Slo.objective in
      let ok = ref true in
      List.iteri
        (fun i (g, b) ->
          for _ = 1 to g do
            Obs.Slo.observe t ~latency_ns:500
          done;
          for _ = 1 to b do
            Obs.Slo.observe t ~latency_ns:5000
          done;
          let st = Obs.Slo.roll t ~now:((i + 1) * 100) in
          let close a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs b) in
          if st.Obs.Slo.window_good <> g || st.Obs.Slo.window_bad <> b then ok := false;
          if
            not
              (close st.Obs.Slo.fast_burn
                 (ref_burn windows ~budget ~upto:i ~w:spec.Obs.Slo.fast_windows))
          then ok := false;
          if
            not
              (close st.Obs.Slo.slow_burn
                 (ref_burn windows ~budget ~upto:i ~w:spec.Obs.Slo.slow_windows))
          then ok := false;
          (* telescoping: cumulative budget equals the sum over all
             closed windows, never just the trailing rings *)
          if not (close st.Obs.Slo.budget_consumed (ref_burn windows ~budget ~upto:i ~w:(i + 1)))
          then ok := false)
        windows;
      let r = Obs.Slo.report t in
      let total = List.fold_left (fun acc (g, b) -> acc + g + b) 0 windows in
      let bad = List.fold_left (fun acc (_, b) -> acc + b) 0 windows in
      !ok && r.Obs.Slo.total = total && r.Obs.Slo.bad = bad
      && r.Obs.Slo.windows = List.length windows)

let test_slo_validate () =
  let bad_spec f = try f (); false with Invalid_argument _ -> true in
  check_bool "objective 1.0 rejected" true
    (bad_spec (fun () ->
         ignore (Obs.Slo.create { Obs.Slo.default_spec with Obs.Slo.objective = 1.0 })));
  check_bool "slow < fast rejected" true
    (bad_spec (fun () ->
         ignore
           (Obs.Slo.create
              { Obs.Slo.default_spec with Obs.Slo.fast_windows = 5; slow_windows = 4 })));
  check_bool "zero window rejected" true
    (bad_spec (fun () ->
         ignore (Obs.Slo.create { Obs.Slo.default_spec with Obs.Slo.window_ns = 0 })))

(* ------------------------------------------------------------------ *)
(* Empty-safe summaries                                                *)
(* ------------------------------------------------------------------ *)

let test_report_opt () =
  let s = Stat.Summary.create () in
  check_bool "empty -> None" true (Stat.Summary.report_opt s = None);
  check_string "empty renders, does not raise" "n=0 (no data)"
    (Format.asprintf "%a" Stat.Summary.pp_report_opt_us None);
  Stat.Summary.record s 1500.0;
  (match Stat.Summary.report_opt s with
  | Some r -> check_int "non-empty -> Some" 1 r.Stat.Summary.count
  | None -> Alcotest.fail "report_opt lost the data");
  (* The metrics snapshot rides the same path: an idle histogram is
     omitted rather than raising at snapshot time. *)
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "lat" in
  check_bool "idle histogram omitted from snapshot" true
    (Obs.Metrics.find (Obs.Metrics.snapshot m) "lat" = None);
  Obs.Metrics.observe h 10.0;
  check_bool "histogram appears once fed" true
    (Obs.Metrics.find (Obs.Metrics.snapshot m) "lat" <> None)

(* ------------------------------------------------------------------ *)
(* Prometheus exporter                                                 *)
(* ------------------------------------------------------------------ *)

let test_prometheus () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "requests.completed" in
  Obs.Metrics.add c 5;
  Obs.Metrics.gauge m "guard.state" (fun () -> 2);
  let h = Obs.Metrics.histogram m "latency.all_ns" in
  List.iter (fun v -> Obs.Metrics.observe h v) [ 100.0; 200.0; 300.0 ];
  let text = Obs.Export.prometheus (Obs.Metrics.snapshot m) in
  let lines = String.split_on_char '\n' text in
  let has l = List.mem l lines in
  check_bool "counter TYPE line" true (has "# TYPE lp_requests_completed counter");
  check_bool "counter sample" true (has "lp_requests_completed 5");
  check_bool "gauge TYPE line" true (has "# TYPE lp_guard_state gauge");
  check_bool "gauge sample" true (has "lp_guard_state 2");
  check_bool "histogram as summary" true (has "# TYPE lp_latency_all_ns summary");
  check_bool "quantile sample" true
    (List.exists
       (fun l -> Astring_contains.contains l "lp_latency_all_ns{quantile=\"0.99\"}")
       lines);
  check_bool "count sample" true (has "lp_latency_all_ns_count 3");
  (* every non-comment line must use mangled names: [a-zA-Z0-9_] only
     up to the first space or brace *)
  check_bool "names mangled" true
    (List.for_all
       (fun l ->
         l = "" || l.[0] = '#'
         ||
         let stop = try String.index l '{' with Not_found -> String.index l ' ' in
         let name = String.sub l 0 stop in
         String.for_all
           (fun ch ->
             (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z')
             || (ch >= '0' && ch <= '9')
             || ch = '_')
           name)
       lines)

(* ------------------------------------------------------------------ *)
(* Telemetry tick: passivity and attribution                           *)
(* ------------------------------------------------------------------ *)

let telemetry_config =
  {
    Preemptible.Telemetry.default with
    Preemptible.Telemetry.tick_ns = 1_000_000;
    slos = [ Obs.Slo.default_spec ];
  }

let run_server ?(telemetry = false) ?(guard = None) ?(adaptive = false)
    ?(duration_ms = 20) () =
  let quantum_ns = 5_000 in
  let policy =
    if adaptive then
      Preemptible.Policy.adaptive
        (Preemptible.Quantum_controller.create ~max_load_per_s:1e6
           ~initial_quantum_ns:quantum_ns ())
    else Preemptible.Policy.fcfs_preempt ~quantum_ns
  in
  let cfg =
    Preemptible.Server.default_config ~n_workers:2 ~policy
      ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config)
  in
  let cfg =
    {
      cfg with
      Preemptible.Server.seed = 7L;
      stats_window_ns = 2_000_000;
      guard;
      telemetry = (if telemetry then Some telemetry_config else None);
    }
  in
  Preemptible.Server.run cfg
    ~arrival:(Workload.Arrival.poisson ~rate_per_sec:150_000.0)
    ~source:
      (Workload.Source.of_dist Workload.Service_dist.workload_a1
         ~cls:Workload.Request.Latency_critical)
    ~duration_ns:(duration_ms * 1_000_000)

let test_telemetry_passive () =
  let on = run_server ~telemetry:true () in
  let off = run_server ~telemetry:false () in
  check_bool "latency summary identical" true
    (on.Preemptible.Server.all = off.Preemptible.Server.all);
  check_int "completions identical" off.Preemptible.Server.completed
    on.Preemptible.Server.completed;
  check_int "preemptions identical" off.Preemptible.Server.preemptions
    on.Preemptible.Server.preemptions;
  check_bool "off-run carries no report" true (off.Preemptible.Server.telemetry = None);
  match on.Preemptible.Server.telemetry with
  | None -> Alcotest.fail "telemetry-enabled run returned no report"
  | Some tel ->
    check_bool "ticks cover the run" true (tel.Preemptible.Telemetry.t_ticks >= 20)

let test_attribution_sane () =
  let r = run_server ~telemetry:true () in
  let tel = Option.get r.Preemptible.Server.telemetry in
  check_int "one attribution per core" 2
    (Array.length tel.Preemptible.Telemetry.t_cores);
  Array.iter
    (fun (c : Preemptible.Telemetry.core_attr) ->
      check_bool "components non-negative" true
        (c.service_ns >= 0 && c.sched_ns >= 0 && c.preempt_ns >= 0 && c.idle_ns >= 0);
      check_bool "wasted within service" true
        (c.wasted_ns >= 0 && c.wasted_ns <= c.service_ns);
      check_bool "core did something" true (c.service_ns + c.idle_ns > 0))
    tel.Preemptible.Telemetry.t_cores;
  (* The SLO tracker saw every measured completion. *)
  (match tel.Preemptible.Telemetry.t_slos with
  | [ s ] -> check_int "slo total = completions" r.Preemptible.Server.completed s.Obs.Slo.total
  | _ -> Alcotest.fail "expected one SLO report");
  check_int "no audit entries dropped" 0 tel.Preemptible.Telemetry.t_audit_dropped

let test_audit_trail () =
  let r = run_server ~telemetry:true ~adaptive:true () in
  let tel = Option.get r.Preemptible.Server.telemetry in
  let audit = tel.Preemptible.Telemetry.t_audit in
  check_bool "controller decisions recorded" true (List.length audit >= 5);
  let sorted = ref true and prev = ref min_int in
  List.iter
    (fun (a : Preemptible.Telemetry.audit_entry) ->
      if a.a_at_ns < !prev then sorted := false;
      prev := a.a_at_ns;
      if a.a_quantum_after_ns <= 0 then sorted := false)
    audit;
  check_bool "audit in decision order with positive quanta" true !sorted

let test_guard_gauge () =
  let guard =
    Some { Guard.disabled with Guard.brownout = Some Guard.default_brownout }
  in
  let r = run_server ~guard () in
  match Obs.Metrics.find r.Preemptible.Server.metrics "guard.state" with
  | Some (Obs.Metrics.Gauge v) ->
    check_bool "gauge uses the state_index encoding" true (v >= 0 && v <= 2)
  | _ -> Alcotest.fail "guard.state gauge missing from the snapshot"

let suites =
  [
    ( "telemetry.sketch",
      [
        QCheck_alcotest.to_alcotest sketch_accuracy;
        QCheck_alcotest.to_alcotest sketch_merge;
        Alcotest.test_case "edge cases" `Quick test_sketch_edges;
      ] );
    ( "telemetry.slo",
      [
        QCheck_alcotest.to_alcotest slo_telescopes;
        Alcotest.test_case "spec validation" `Quick test_slo_validate;
      ] );
    ( "telemetry.export",
      [
        Alcotest.test_case "report_opt / empty-safe paths" `Quick test_report_opt;
        Alcotest.test_case "prometheus exposition" `Quick test_prometheus;
      ] );
    ( "telemetry.server",
      [
        Alcotest.test_case "tick is passive" `Quick test_telemetry_passive;
        Alcotest.test_case "core attribution sane" `Quick test_attribution_sane;
        Alcotest.test_case "controller audit trail" `Quick test_audit_trail;
        Alcotest.test_case "guard.state gauge" `Quick test_guard_gauge;
      ] );
  ]
