(* Tests for the multicore pool (work stealing, preemption across
   domains, blocking-aware parking) and the schedule-driven real-time
   executor, plus the scenario -> rt lowering. *)

module Pool = Fiber_rt.Pool
module Sched = Fiber_rt.Sched

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_pool_executes_all () =
  let pool = Pool.create ~workers:2 () in
  let hits = Atomic.make 0 in
  for _ = 1 to 100 do
    Pool.submit pool (fun () -> Atomic.incr hits)
  done;
  Pool.drain pool;
  let st = Pool.stats pool in
  Pool.shutdown pool;
  check_int "all bodies ran" 100 (Atomic.get hits);
  check_int "all counted executed" 100 (Array.fold_left ( + ) 0 st.Pool.executed);
  check_int "none failed" 0 st.Pool.failed

let test_pool_shutdown_idempotent () =
  let pool = Pool.create ~workers:2 () in
  Pool.submit pool (fun () -> ());
  Pool.drain pool;
  Pool.shutdown pool;
  Pool.shutdown pool;
  check_bool "submit after shutdown rejected" true
    (match Pool.submit pool (fun () -> ()) with
    | () -> false
    | exception Invalid_argument _ -> true)

(* A preemption-heavy job computes the right answer even though its
   slices bounce between domains (fn_resume_on correctness): the sum is
   carried in the fiber's own stack across preemptions. *)
let test_preempted_job_correct_across_domains () =
  let pool = Pool.create ~quantum_ns:50_000 ~workers:2 () in
  let results = Array.make 4 0 in
  let busy_sum n =
    (* Checkpointed spinning, ~2 us a step; jobs are ms-long so the
       shared timer domain provably sweeps their slots even when the
       host schedules it lazily. *)
    let acc = ref 0 in
    for i = 1 to n do
      let t0 = Unix.gettimeofday () in
      while Unix.gettimeofday () -. t0 < 2e-6 do
        ()
      done;
      acc := !acc + i;
      Pool.checkpoint ()
    done;
    !acc
  in
  for j = 0 to 3 do
    Pool.submit pool (fun () -> results.(j) <- busy_sum 1000)
  done;
  Pool.drain pool;
  let st = Pool.stats pool in
  Pool.shutdown pool;
  Array.iteri
    (fun j r -> check_int (Printf.sprintf "job %d sum" j) 500500 r)
    results;
  check_bool "preemption actually happened" true (st.Pool.preemptions > 0)

let test_failed_job_counted () =
  let pool = Pool.create ~workers:2 () in
  Pool.submit pool (fun () -> failwith "boom");
  Pool.submit pool (fun () -> ());
  Pool.drain pool;
  let st = Pool.stats pool in
  Pool.shutdown pool;
  check_int "one failure" 1 st.Pool.failed;
  check_int "one success" 1 (Array.fold_left ( + ) 0 st.Pool.executed)

(* Blocking-awareness: on ONE worker, three fibers that each sleep
   20 ms must overlap their sleeps (a sleeping fiber parks and frees
   the domain), so the whole batch takes far less than the 60 ms a
   blocking pool would need. *)
let test_sleep_parks_fiber () =
  let pool = Pool.create ~workers:1 () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to 3 do
    Pool.submit pool (fun () -> Pool.sleep_ns 20_000_000)
  done;
  Pool.drain pool;
  let elapsed = Unix.gettimeofday () -. t0 in
  Pool.shutdown pool;
  check_bool
    (Printf.sprintf "sleeps overlapped (%.0f ms < 50 ms)" (elapsed *. 1e3))
    true (elapsed < 0.050)

let test_sleep_off_pool_rejected () =
  check_bool "sleep_ns off-pool raises" true
    (match Pool.sleep_ns 1 with
    | () -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Sched: schedule replay                                              *)
(* ------------------------------------------------------------------ *)

let mk_items n ~gap_ns ~service_ns =
  Array.init n (fun i -> { Sched.at_ns = i * gap_ns; service_ns; lc = i mod 2 = 0 })

let test_sched_runs_schedule () =
  let r = Sched.run ~workers:1 (mk_items 40 ~gap_ns:200_000 ~service_ns:50_000) in
  check_int "offered" 40 r.Sched.offered;
  check_int "completed" 40 r.Sched.completed;
  check_int "failed" 0 r.Sched.failed;
  check_int "all samples" 40 r.Sched.all.Stat.Summary.count;
  check_int "lc samples" 20
    (match r.Sched.lc with Some rep -> rep.Stat.Summary.count | None -> 0);
  (* Latency is at least the service time. *)
  check_bool "p50 >= service" true (r.Sched.all.Stat.Summary.p50 >= 50_000.0)

let test_sched_warmup_excluded () =
  let items = mk_items 20 ~gap_ns:100_000 ~service_ns:10_000 in
  let r = Sched.run ~workers:1 ~warmup_ns:1_000_000 items in
  (* at_ns 0..1.9ms; warmup 1ms excludes at_ns in [0, 1ms) = 10 items. *)
  check_int "completed includes warmup" 20 r.Sched.completed;
  check_int "samples exclude warmup" 10 r.Sched.all.Stat.Summary.count

let test_sched_rejects_negative () =
  check_bool "negative service rejected" true
    (match Sched.run ~workers:1 [| { Sched.at_ns = 0; service_ns = -1; lc = true } |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Scenario -> rt lowering                                             *)
(* ------------------------------------------------------------------ *)

let spec_of_string s =
  match Scenario.of_string s with
  | Ok spec -> spec
  | Error e -> Alcotest.failf "parse failed: %s" (Scenario.error_to_string e)

let test_rt_schedule_deterministic () =
  let spec =
    spec_of_string "workers=1;quantum=50us;src=exp:20us;arrival=poisson:30000;dur=20ms"
  in
  let a = Scenario.rt_schedule spec in
  let b = Scenario.rt_schedule spec in
  check_bool "non-empty" true (Array.length a > 0);
  check_bool "same seed, same schedule" true (a = b);
  Array.iter
    (fun it ->
      check_bool "arrival inside dur" true
        (it.Sched.at_ns >= 0 && it.Sched.at_ns < 20_000_000))
    a

let test_rt_schedule_seed_sensitivity () =
  let base = "workers=1;src=exp:20us;arrival=poisson:30000;dur=20ms" in
  let a = Scenario.rt_schedule (spec_of_string (base ^ ";seed=1")) in
  let b = Scenario.rt_schedule (spec_of_string (base ^ ";seed=2")) in
  check_bool "different seed, different schedule" true (a <> b)

let test_rt_rejects_unsupported () =
  let rejected txt =
    match Scenario.validate_rt (spec_of_string txt) with
    | Ok () -> false
    | Error _ -> true
  in
  check_bool "adaptive quantum" true (rejected "quantum=adaptive;dur=1ms");
  check_bool "guard" true (rejected "guard={timeout=1ms};dur=1ms");
  check_bool "fleet" true (rejected "fleet={n=2};dur=1ms");
  check_bool "baseline system" true (rejected "sys=go;dur=1ms");
  check_bool "faults" true (rejected "faults={uipi.drop=p:0.01};dur=1ms");
  check_bool "plain spec accepted" true
    (not (rejected "workers=1;quantum=20us;src=a1;arrival=poisson:0.3x;dur=5ms"))

let test_run_rt_end_to_end () =
  let spec =
    spec_of_string
      "workers=1;quantum=100us;src=const:20us;arrival=uniform:10000;dur=30ms;warmup=5ms"
  in
  let plan = Scenario.rt_schedule spec in
  let r = Scenario.run_rt spec in
  check_int "offered = schedule" (Array.length plan) r.Sched.offered;
  check_int "all completed" r.Sched.offered r.Sched.completed;
  check_bool "recorded post-warmup samples" true (r.Sched.all.Stat.Summary.count > 0);
  check_bool "median at least the service time" true
    (r.Sched.all.Stat.Summary.p50 >= 20_000.0)

let suites =
  [
    ( "fiber_pool",
      [
        Alcotest.test_case "executes every submitted job" `Quick test_pool_executes_all;
        Alcotest.test_case "shutdown is idempotent; submit after rejected" `Quick
          test_pool_shutdown_idempotent;
        Alcotest.test_case "preempted jobs stay correct across domains" `Quick
          test_preempted_job_correct_across_domains;
        Alcotest.test_case "failing job counted, pool survives" `Quick
          test_failed_job_counted;
        Alcotest.test_case "sleeping fibers park and overlap" `Quick
          test_sleep_parks_fiber;
        Alcotest.test_case "sleep_ns off the pool raises" `Quick
          test_sleep_off_pool_rejected;
      ] );
    ( "rt_sched",
      [
        Alcotest.test_case "replays a schedule and measures latency" `Quick
          test_sched_runs_schedule;
        Alcotest.test_case "warmup samples excluded from reports" `Quick
          test_sched_warmup_excluded;
        Alcotest.test_case "negative times rejected" `Quick test_sched_rejects_negative;
        Alcotest.test_case "rt_schedule is deterministic in the seed" `Quick
          test_rt_schedule_deterministic;
        Alcotest.test_case "rt_schedule varies with the seed" `Quick
          test_rt_schedule_seed_sensitivity;
        Alcotest.test_case "unsupported specs rejected with pointed errors" `Quick
          test_rt_rejects_unsupported;
        Alcotest.test_case "run_rt end to end on a tiny spec" `Quick
          test_run_rt_end_to_end;
      ] );
  ]
