(* Cross-validation plumbing: the agreement predicates and rank
   statistics the sim-vs-real gate is built from (deterministic), plus
   one small end-to-end sim-vs-rt run checked against a deliberately
   loose band — the tight documented bands live in bench --crossval
   where the environment is controlled; here the point is that the two
   backends execute the same spec and land in the same ballpark even on
   a noisy test host. *)

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Agreement predicates (deterministic)                                *)
(* ------------------------------------------------------------------ *)

let test_within_factor () =
  check_bool "equal" true (Stat.Agreement.within_factor ~factor:1.0 5.0 5.0);
  check_bool "2x inside 3x" true (Stat.Agreement.within_factor ~factor:3.0 10.0 20.0);
  check_bool "symmetric" true (Stat.Agreement.within_factor ~factor:3.0 20.0 10.0);
  check_bool "exactly 3x counts" true (Stat.Agreement.within_factor ~factor:3.0 1.0 3.0);
  check_bool "4x outside 3x" false (Stat.Agreement.within_factor ~factor:3.0 10.0 40.0);
  check_bool "zero never agrees" false (Stat.Agreement.within_factor ~factor:3.0 0.0 1.0);
  check_bool "factor < 1 rejected" true
    (match Stat.Agreement.within_factor ~factor:0.5 1.0 1.0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_tail_ratio () =
  check_float "ratio" 3.0 (Stat.Agreement.tail_ratio ~p50:10.0 ~p99:30.0);
  check_bool "tails agree" true
    (Stat.Agreement.tails_within_factor ~factor:2.0 ~a_p50:10.0 ~a_p99:30.0
       ~b_p50:1000.0 ~b_p99:5000.0);
  (* 3.0 vs 12.0 tail ratio is 4x apart: outside a 2x band. *)
  check_bool "tails disagree" false
    (Stat.Agreement.tails_within_factor ~factor:2.0 ~a_p50:10.0 ~a_p99:30.0
       ~b_p50:1000.0 ~b_p99:12_000.0)

let test_spearman () =
  check_float "perfect monotone" 1.0
    (Stat.Rank.spearman [| 1.0; 2.0; 3.0; 4.0 |] [| 10.0; 20.0; 40.0; 80.0 |]);
  check_float "perfect inverse" (-1.0)
    (Stat.Rank.spearman [| 1.0; 2.0; 3.0; 4.0 |] [| 8.0; 6.0; 4.0; 2.0 |]);
  check_float "scale invariant" 1.0
    (Stat.Rank.spearman [| 1.0; 2.0; 3.0 |] [| 1e9; 2e9; 3e9 |]);
  check_bool "one swap still positive" true
    (Stat.Rank.spearman [| 1.0; 2.0; 3.0; 4.0; 5.0 |] [| 1.0; 3.0; 2.0; 4.0; 5.0 |]
    > 0.5);
  check_float "constant side is 0" 0.0
    (Stat.Rank.spearman [| 1.0; 2.0; 3.0 |] [| 7.0; 7.0; 7.0 |])

let test_ranks_ties () =
  let r = Stat.Rank.ranks [| 5.0; 1.0; 5.0; 2.0 |] in
  check_float "tie low" 3.5 r.(0);
  check_float "min" 1.0 r.(1);
  check_float "tie high" 3.5 r.(2);
  check_float "middle" 2.0 r.(3)

(* ------------------------------------------------------------------ *)
(* End to end: one spec, both backends, very loose band               *)
(* ------------------------------------------------------------------ *)

let test_sim_vs_rt_ballpark () =
  let spec =
    match
      Scenario.of_string
        "workers=1;quantum=none;src=const:50us;arrival=uniform:4000;dur=60ms;warmup=10ms"
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "parse: %s" (Scenario.error_to_string e)
  in
  let sim = Scenario.run_server spec in
  let rt = Scenario.run_rt spec in
  let sim_p50 = sim.Preemptible.Server.all.Stat.Summary.p50 in
  let rt_p50 = rt.Fiber_rt.Sched.all.Stat.Summary.p50 in
  check_bool "sim produced samples" true (sim.Preemptible.Server.completed > 0);
  check_bool "rt completed everything" true
    (rt.Fiber_rt.Sched.completed = rt.Fiber_rt.Sched.offered);
  (* At 0.2x load the sim's p50 is ~the 50 us service time; the rt side
     adds dispatch and scheduling overhead but must stay in the same
     ballpark even on a noisy CI host — 20x is a smoke band, the real
     documented bands are gated in bench --crossval. *)
  check_bool
    (Printf.sprintf "p50 within 20x (sim %.1f us, rt %.1f us)" (sim_p50 /. 1e3)
       (rt_p50 /. 1e3))
    true
    (Stat.Agreement.within_factor ~factor:20.0 sim_p50 rt_p50)

let suites =
  [
    ( "crossval",
      [
        Alcotest.test_case "within_factor band semantics" `Quick test_within_factor;
        Alcotest.test_case "tail-ratio agreement" `Quick test_tail_ratio;
        Alcotest.test_case "spearman rank correlation" `Quick test_spearman;
        Alcotest.test_case "ranks average ties" `Quick test_ranks_ties;
        Alcotest.test_case "sim vs rt ballpark on one spec" `Quick
          test_sim_vs_rt_ballpark;
      ] );
  ]
