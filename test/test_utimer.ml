(* Tests for the timing wheel and LibUtimer. *)

open Engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Timing_wheel                                                        *)
(* ------------------------------------------------------------------ *)

module Tw = Utimer.Timing_wheel

let test_wheel_basic_expiry () =
  let w = Tw.create ~tick:10 () in
  ignore (Tw.add w ~deadline:25 "a");
  ignore (Tw.add w ~deadline:15 "b");
  ignore (Tw.add w ~deadline:45 "c");
  Alcotest.(check (list string)) "nothing before" [] (Tw.advance w ~upto:5);
  Alcotest.(check (list string)) "b then a" [ "b"; "a" ] (Tw.advance w ~upto:30);
  Alcotest.(check (list string)) "c" [ "c" ] (Tw.advance w ~upto:100);
  check_int "empty" 0 (Tw.size w)

let test_wheel_cancel () =
  let w = Tw.create ~tick:10 () in
  let h = Tw.add w ~deadline:20 "x" in
  ignore (Tw.add w ~deadline:20 "y");
  Tw.cancel w h;
  Tw.cancel w h;
  (* idempotent *)
  check_int "one live" 1 (Tw.size w);
  Alcotest.(check (list string)) "only y" [ "y" ] (Tw.advance w ~upto:50)

let test_wheel_cascade_timeliness () =
  (* An entry far beyond level 0's span must still expire within one
     tick of its deadline (cascade must not be late). *)
  let w = Tw.create ~tick:500 ~slots_per_level:64 ~levels:4 () in
  (* level 0 span = 32_000; place at 100_100 (level 1) *)
  ignore (Tw.add w ~deadline:100_100 "x");
  Alcotest.(check (list string)) "not expired just before" []
    (Tw.advance w ~upto:100_000);
  Alcotest.(check (list string)) "expired within one tick" [ "x" ]
    (Tw.advance w ~upto:100_500)

let test_wheel_cascade_levels () =
  (* Deadlines far beyond level 0's span must cascade down correctly. *)
  let w = Tw.create ~tick:10 ~slots_per_level:4 ~levels:3 () in
  (* level 0 span: 40; level 1: 160; level 2: 640 *)
  ignore (Tw.add w ~deadline:35 "near");
  ignore (Tw.add w ~deadline:150 "mid");
  ignore (Tw.add w ~deadline:600 "far");
  let all = Tw.advance w ~upto:640 in
  Alcotest.(check (list string)) "deadline order across levels" [ "near"; "mid"; "far" ] all

let test_wheel_overdue_insert () =
  let w = Tw.create ~tick:10 () in
  ignore (Tw.advance w ~upto:100);
  ignore (Tw.add w ~deadline:50 "late");
  Alcotest.(check (list string)) "expires on next advance" [ "late" ] (Tw.advance w ~upto:101)

let test_wheel_horizon () =
  let w = Tw.create ~tick:10 ~slots_per_level:4 ~levels:2 () in
  check_bool "horizon" true (Tw.horizon w = 159);
  Alcotest.check_raises "beyond horizon"
    (Invalid_argument "Timing_wheel.add: deadline beyond horizon") (fun () ->
      ignore (Tw.add w ~deadline:1_000 "too far"))

let test_wheel_backwards () =
  let w = Tw.create ~tick:10 () in
  ignore (Tw.advance w ~upto:100);
  Alcotest.check_raises "backwards" (Invalid_argument "Timing_wheel.advance: time moved backwards")
    (fun () -> ignore (Tw.advance w ~upto:50))

let test_wheel_fifo_at_same_deadline () =
  let w = Tw.create ~tick:10 () in
  for i = 1 to 10 do
    ignore (Tw.add w ~deadline:20 i)
  done;
  Alcotest.(check (list int)) "ties in insertion order" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (Tw.advance w ~upto:30)

let wheel_matches_reference =
  QCheck.Test.make ~name:"wheel expiry order matches sorted reference" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 60) (int_range 1 2_000))
    (fun deadlines ->
      let w = Tw.create ~tick:7 ~slots_per_level:8 ~levels:4 () in
      List.iteri (fun i d -> ignore (Tw.add w ~deadline:d (d, i))) deadlines;
      let out = Tw.advance w ~upto:3_000 in
      let expected = List.sort compare (List.mapi (fun i d -> (d, i)) deadlines) in
      out = expected)

let wheel_partial_advance_sound =
  QCheck.Test.make ~name:"advance never expires future deadlines" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 40) (int_range 1 2_000)) (int_range 1 2_000))
    (fun (deadlines, upto) ->
      let w = Tw.create ~tick:7 ~slots_per_level:8 ~levels:4 () in
      List.iter (fun d -> ignore (Tw.add w ~deadline:d d)) deadlines;
      let expired = Tw.advance w ~upto in
      List.for_all (fun d -> d <= upto) expired)

(* ------------------------------------------------------------------ *)
(* Utimer                                                              *)
(* ------------------------------------------------------------------ *)

let make_utimer ?config () =
  let sim = Sim.create () in
  let fabric = Hw.Uintr.create sim Hw.Params.default in
  let ut = Utimer.create sim ~uintr:fabric ?config () in
  (sim, fabric, ut)

let worker sim fabric hits =
  Hw.Uintr.register_receiver fabric
    ~handler:(fun _ ~vector:_ -> hits := Sim.now sim :: !hits)
    ()

let test_utimer_fires_near_deadline () =
  let sim, fabric, ut = make_utimer () in
  let hits = ref [] in
  let slot = Utimer.register ut ~receiver:(worker sim fabric hits) ~vector:0 in
  Utimer.start ut;
  Utimer.arm_after slot ~ns:10_000;
  Sim.run_until sim 50_000;
  Utimer.stop ut;
  Sim.run sim;
  (match !hits with
  | [ t ] ->
    check_bool "after deadline" true (t >= 10_000);
    (* within one poll period + delivery *)
    check_bool "timely" true (t < 10_000 + 1_500)
  | l -> Alcotest.failf "expected one interrupt, got %d" (List.length l));
  check_int "fired count" 1 (Utimer.fired ut)

let test_utimer_disarm_prevents_fire () =
  let sim, fabric, ut = make_utimer () in
  let hits = ref [] in
  let slot = Utimer.register ut ~receiver:(worker sim fabric hits) ~vector:0 in
  Utimer.start ut;
  Utimer.arm_after slot ~ns:10_000;
  ignore (Sim.at sim 5_000 (fun () -> Utimer.disarm slot));
  Sim.run_until sim 50_000;
  Utimer.stop ut;
  Sim.run sim;
  Alcotest.(check (list int)) "no fire" [] !hits;
  check_bool "slot disarmed" false (Utimer.is_armed slot)

let test_utimer_rearm () =
  let sim, fabric, ut = make_utimer () in
  let hits = ref [] in
  let slot = Utimer.register ut ~receiver:(worker sim fabric hits) ~vector:0 in
  Utimer.start ut;
  Utimer.arm_after slot ~ns:5_000;
  ignore (Sim.at sim 2_000 (fun () -> Utimer.arm_after slot ~ns:20_000));
  Sim.run_until sim 60_000;
  Utimer.stop ut;
  Sim.run sim;
  (match !hits with
  | [ t ] -> check_bool "re-armed deadline honoured" true (t >= 22_000)
  | l -> Alcotest.failf "expected one interrupt, got %d" (List.length l))

let test_utimer_multiple_slots () =
  let sim, fabric, ut = make_utimer () in
  let fired = Array.make 8 (-1) in
  let slots =
    Array.init 8 (fun i ->
        let r =
          Hw.Uintr.register_receiver fabric
            ~handler:(fun _ ~vector:_ -> fired.(i) <- Sim.now sim)
            ()
        in
        Utimer.register ut ~receiver:r ~vector:0)
  in
  Utimer.start ut;
  Array.iteri (fun i slot -> Utimer.arm_after slot ~ns:((i + 1) * 3_000)) slots;
  Sim.run_until sim 100_000;
  Utimer.stop ut;
  Sim.run sim;
  Array.iteri
    (fun i t ->
      check_bool (Printf.sprintf "slot %d fired after deadline" i) true
        (t >= (i + 1) * 3_000 && t < ((i + 1) * 3_000) + 3_000))
    fired;
  check_int "slot count" 8 (Utimer.slot_count ut)

let test_utimer_wheel_equivalent_to_linear () =
  let run config =
    let sim, fabric, ut = make_utimer ?config () in
    let hits = ref [] in
    let slots =
      Array.init 16 (fun i ->
          let r =
            Hw.Uintr.register_receiver fabric
              ~handler:(fun _ ~vector:_ -> hits := (i, Sim.now sim) :: !hits)
              ()
          in
          Utimer.register ut ~receiver:r ~vector:0)
    in
    Utimer.start ut;
    Array.iteri (fun i slot -> Utimer.arm_after slot ~ns:(1_000 + (i * 4_000))) slots;
    Sim.run_until sim 200_000;
    Utimer.stop ut;
    Sim.run sim;
    List.rev_map fst !hits
  in
  let linear = run None in
  let wheel =
    run (Some { Utimer.default_config with scan = Utimer.Wheel; wheel_tick_ns = 500 })
  in
  Alcotest.(check (list int)) "same firing order" linear wheel

let test_utimer_lateness_bounded () =
  let sim, fabric, ut = make_utimer () in
  let slot = Utimer.register ut ~receiver:(worker sim fabric (ref [])) ~vector:0 in
  Utimer.start ut;
  let rec rearm i =
    if i < 200 then begin
      Utimer.arm_after slot ~ns:3_000;
      ignore (Sim.after sim 5_000 (fun () -> rearm (i + 1)))
    end
  in
  rearm 0;
  Sim.run_until sim (Units.ms 2);
  Utimer.stop ut;
  Sim.run sim;
  let lateness = Stat.Summary.report (Utimer.lateness ut) in
  check_bool "mean lateness under one poll period" true
    (lateness.Stat.Summary.mean < 600.0);
  check_bool "max lateness bounded" true (lateness.Stat.Summary.max < 2_000.0)

let test_utimer_min_quantum_claim () =
  let _, _, ut = make_utimer () in
  (* The paper claims a 3us minimum usable time slice. *)
  check_bool "min quantum under 3us" true (Utimer.min_quantum_ns ut <= 3_000)

let test_utimer_validation () =
  let sim = Sim.create () in
  let fabric = Hw.Uintr.create sim Hw.Params.default in
  Alcotest.check_raises "bad poll" (Invalid_argument "Utimer.create: poll_ns must be positive")
    (fun () ->
      ignore (Utimer.create sim ~uintr:fabric ~config:{ Utimer.default_config with poll_ns = 0 } ()));
  let ut = Utimer.create sim ~uintr:fabric () in
  let r = Hw.Uintr.register_receiver fabric ~handler:(fun _ ~vector:_ -> ()) () in
  let slot = Utimer.register ut ~receiver:r ~vector:0 in
  Alcotest.check_raises "negative arm" (Invalid_argument "Utimer.arm_after: negative delay")
    (fun () -> Utimer.arm_after slot ~ns:(-5))

let suites =
  [
    ( "utimer.timing_wheel",
      [
        Alcotest.test_case "basic expiry" `Quick test_wheel_basic_expiry;
        Alcotest.test_case "cancel" `Quick test_wheel_cancel;
        Alcotest.test_case "cascade levels" `Quick test_wheel_cascade_levels;
        Alcotest.test_case "cascade timeliness" `Quick test_wheel_cascade_timeliness;
        Alcotest.test_case "overdue insert" `Quick test_wheel_overdue_insert;
        Alcotest.test_case "horizon" `Quick test_wheel_horizon;
        Alcotest.test_case "backwards" `Quick test_wheel_backwards;
        Alcotest.test_case "fifo ties" `Quick test_wheel_fifo_at_same_deadline;
        QCheck_alcotest.to_alcotest wheel_matches_reference;
        QCheck_alcotest.to_alcotest wheel_partial_advance_sound;
      ] );
    ( "utimer.utimer",
      [
        Alcotest.test_case "fires near deadline" `Quick test_utimer_fires_near_deadline;
        Alcotest.test_case "disarm prevents fire" `Quick test_utimer_disarm_prevents_fire;
        Alcotest.test_case "re-arm" `Quick test_utimer_rearm;
        Alcotest.test_case "multiple slots" `Quick test_utimer_multiple_slots;
        Alcotest.test_case "wheel == linear" `Quick test_utimer_wheel_equivalent_to_linear;
        Alcotest.test_case "lateness bounded" `Quick test_utimer_lateness_bounded;
        Alcotest.test_case "3us min quantum" `Quick test_utimer_min_quantum_claim;
        Alcotest.test_case "validation" `Quick test_utimer_validation;
      ] );
  ]
