(* Tests for the LibPreemptible core library. *)

open Engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Context                                                             *)
(* ------------------------------------------------------------------ *)

module Ctx = Preemptible.Context

let test_context_alloc_release () =
  let pool = Ctx.create_pool ~capacity:2 ~stack_kb:16 in
  let a = Ctx.alloc pool in
  let b = Ctx.alloc pool in
  check_int "in use" 2 (Ctx.in_use pool);
  check_int "none free" 0 (Ctx.free_count pool);
  check_bool "exhausted raises" true
    (try
       ignore (Ctx.alloc pool);
       false
     with Ctx.Pool_exhausted -> true);
  Ctx.release pool a;
  check_int "one free" 1 (Ctx.free_count pool);
  let c = Ctx.alloc pool in
  check_bool "contexts are reused" true (Ctx.ctx_id c = Ctx.ctx_id a);
  Ctx.release pool b;
  Ctx.release pool c;
  check_int "high water" 2 (Ctx.high_water pool)

let test_context_state_machine () =
  let pool = Ctx.create_pool ~capacity:1 ~stack_kb:16 in
  let c = Ctx.alloc pool in
  check_bool "active" true (Ctx.state c = Ctx.Active);
  Ctx.mark_preempted c;
  check_bool "preempted" true (Ctx.state c = Ctx.Preempted);
  Alcotest.check_raises "cannot preempt twice"
    (Invalid_argument "Context.mark_preempted: context not active") (fun () ->
      Ctx.mark_preempted c);
  Ctx.mark_active c;
  Ctx.release pool c;
  Alcotest.check_raises "double release" (Invalid_argument "Context.release: context already free")
    (fun () -> Ctx.release pool c)

let test_context_pool_validation () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Context.create_pool: capacity must be positive") (fun () ->
      ignore (Ctx.create_pool ~capacity:0 ~stack_kb:16))

(* ------------------------------------------------------------------ *)
(* Fn                                                                  *)
(* ------------------------------------------------------------------ *)

let make_fn service =
  let pool = Ctx.create_pool ~capacity:4 ~stack_kb:16 in
  let req =
    Workload.Request.make ~id:0 ~arrival_ns:100 ~service_ns:service
      ~cls:Workload.Request.Latency_critical
  in
  Preemptible.Fn.create req ~ctx:(Ctx.alloc pool)

let test_fn_lifecycle () =
  let fn = make_fn 10_000 in
  check_bool "created" true (Preemptible.Fn.status fn = Preemptible.Fn.Created);
  Preemptible.Fn.launch fn ~now:200 ~quantum_ns:4_000;
  check_int "deadline set" 4_200 (Preemptible.Fn.deadline_ns fn);
  Preemptible.Fn.note_progress fn ~executed_ns:4_000;
  Preemptible.Fn.preempt fn;
  check_bool "preempted" true (Preemptible.Fn.status fn = Preemptible.Fn.Preempted);
  check_int "remaining" 6_000 (Preemptible.Fn.remaining_ns fn);
  check_int "preempt count" 1 (Preemptible.Fn.preempt_count fn);
  Preemptible.Fn.resume fn ~now:9_000 ~quantum_ns:10_000;
  Preemptible.Fn.note_progress fn ~executed_ns:6_000;
  Preemptible.Fn.complete fn;
  check_bool "fn_completed" true (Preemptible.Fn.completed fn);
  check_int "sojourn" 19_900 (Preemptible.Fn.sojourn_ns fn ~now:20_000)

let test_fn_infinite_quantum () =
  let fn = make_fn 100 in
  Preemptible.Fn.launch fn ~now:0 ~quantum_ns:max_int;
  check_int "no deadline" max_int (Preemptible.Fn.deadline_ns fn)

let test_fn_invalid_transitions () =
  let fn = make_fn 1_000 in
  Alcotest.check_raises "resume before launch"
    (Invalid_argument "Fn.resume: function not preempted") (fun () ->
      Preemptible.Fn.resume fn ~now:0 ~quantum_ns:10);
  Preemptible.Fn.launch fn ~now:0 ~quantum_ns:10;
  Alcotest.check_raises "double launch" (Invalid_argument "Fn.launch: function already launched")
    (fun () -> Preemptible.Fn.launch fn ~now:0 ~quantum_ns:10);
  Alcotest.check_raises "complete with remaining work"
    (Invalid_argument "Fn.complete: work remains") (fun () -> Preemptible.Fn.complete fn);
  Alcotest.check_raises "overshoot progress"
    (Invalid_argument "Fn.note_progress: progress exceeds remaining work") (fun () ->
      Preemptible.Fn.note_progress fn ~executed_ns:2_000)

(* ------------------------------------------------------------------ *)
(* Rqueue                                                              *)
(* ------------------------------------------------------------------ *)

let test_rqueue_fifo_and_stats () =
  let q = Preemptible.Rqueue.create ~name:"test" in
  Preemptible.Rqueue.push q ~now:0 "a";
  Preemptible.Rqueue.push q ~now:10 "b";
  check_int "len" 2 (Preemptible.Rqueue.length q);
  Alcotest.(check (option string)) "peek" (Some "a") (Preemptible.Rqueue.peek q);
  Alcotest.(check (option string)) "pop a" (Some "a") (Preemptible.Rqueue.pop q ~now:100);
  Alcotest.(check (option string)) "pop b" (Some "b") (Preemptible.Rqueue.pop q ~now:100);
  Alcotest.(check (option string)) "empty" None (Preemptible.Rqueue.pop q ~now:100);
  check_int "hwm" 2 (Preemptible.Rqueue.max_length q);
  check_int "pushed" 2 (Preemptible.Rqueue.total_pushed q);
  Alcotest.(check (float 1e-9)) "mean wait" 95.0 (Preemptible.Rqueue.mean_wait_ns q)

(* Drive the ring past its initial capacity and around the wrap
   boundary: a model list must agree at every step. *)
let test_rqueue_ring_wraparound () =
  let q = Preemptible.Rqueue.create ~name:"ring" in
  let model = Queue.create () in
  let next = ref 0 in
  for round = 1 to 50 do
    (* Net growth early, net drain late — exercises grow + wrap. *)
    let pushes = if round <= 25 then 5 else 2 in
    let pops = if round <= 25 then 2 else 5 in
    for _ = 1 to pushes do
      incr next;
      Preemptible.Rqueue.push q ~now:0 !next;
      Queue.push !next model
    done;
    for _ = 1 to pops do
      let expect = if Queue.is_empty model then None else Some (Queue.pop model) in
      Alcotest.(check (option int)) "fifo across wrap" expect
        (Preemptible.Rqueue.pop q ~now:0)
    done;
    check_int "length agrees" (Queue.length model) (Preemptible.Rqueue.length q)
  done

(* pop_by removal from the middle must preserve FIFO order of the
   remaining elements even when the ring has wrapped. *)
let test_rqueue_pop_by_after_wrap () =
  let q = Preemptible.Rqueue.create ~name:"ring2" in
  (* Fill past the initial capacity of 16 and wrap the head. *)
  for i = 1 to 20 do
    Preemptible.Rqueue.push q ~now:0 i
  done;
  for _ = 1 to 10 do
    ignore (Preemptible.Rqueue.pop q ~now:0)
  done;
  for i = 21 to 30 do
    Preemptible.Rqueue.push q ~now:0 i
  done;
  (* Queue now holds 11..30 with head wrapped. Remove 25 from the middle. *)
  Alcotest.(check (option int)) "pop_by mid" (Some 25)
    (Preemptible.Rqueue.pop_by q ~now:0 ~key:(fun v -> if v = 25 then 0 else 1));
  let rest = ref [] in
  let rec drain () =
    match Preemptible.Rqueue.pop q ~now:0 with
    | Some v ->
      rest := v :: !rest;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "fifo preserved"
    (List.filter (fun v -> v <> 25) (List.init 20 (fun i -> i + 11)))
    (List.rev !rest)

let test_rqueue_pop_by () =
  let q = Preemptible.Rqueue.create ~name:"prio" in
  Preemptible.Rqueue.push q ~now:0 (3, "c");
  Preemptible.Rqueue.push q ~now:0 (1, "a");
  Preemptible.Rqueue.push q ~now:0 (2, "b");
  Preemptible.Rqueue.push q ~now:0 (1, "a2");
  let key (k, _) = k in
  Alcotest.(check (option (pair int string))) "min first" (Some (1, "a"))
    (Preemptible.Rqueue.pop_by q ~now:5 ~key);
  Alcotest.(check (option (pair int string))) "fifo among ties" (Some (1, "a2"))
    (Preemptible.Rqueue.pop_by q ~now:5 ~key);
  Alcotest.(check (option (pair int string))) "then next" (Some (2, "b"))
    (Preemptible.Rqueue.pop_by q ~now:5 ~key);
  check_int "one left" 1 (Preemptible.Rqueue.length q);
  Alcotest.(check (option (pair int string))) "empty eventually" None
    (let _ = Preemptible.Rqueue.pop_by q ~now:5 ~key in
     Preemptible.Rqueue.pop_by q ~now:5 ~key)

(* ------------------------------------------------------------------ *)
(* Stats_window                                                        *)
(* ------------------------------------------------------------------ *)

let test_stats_window_roll () =
  let w = Preemptible.Stats_window.create ~window_ns:1_000_000 in
  for i = 1 to 100 do
    Preemptible.Stats_window.note_arrival w ~now:(i * 1_000);
    Preemptible.Stats_window.note_completion w ~now:(i * 1_000) ~latency_ns:(i * 100)
      ~service_ns:(i * 50)
  done;
  Preemptible.Stats_window.note_qlen w 17;
  check_bool "not ready early" false (Preemptible.Stats_window.ready w ~now:500_000);
  check_bool "ready at window" true (Preemptible.Stats_window.ready w ~now:1_000_000);
  let s = Preemptible.Stats_window.roll w ~now:1_000_000 in
  check_int "arrivals" 100 s.Preemptible.Stats_window.arrivals;
  check_int "completions" 100 s.Preemptible.Stats_window.completions;
  Alcotest.(check (float 1.0)) "rate 100k/s" 100_000.0 s.Preemptible.Stats_window.arrival_rate_per_s;
  check_int "qlen" 17 s.Preemptible.Stats_window.max_qlen;
  check_bool "median near 5050" true (abs_float (s.Preemptible.Stats_window.median_ns -. 5_050.0) < 600.0);
  check_bool "service median near 2525" true
    (abs_float (s.Preemptible.Stats_window.service_median_ns -. 2_525.0) < 300.0);
  (* next window is fresh *)
  let s2 = Preemptible.Stats_window.roll w ~now:2_000_000 in
  check_int "fresh arrivals" 0 s2.Preemptible.Stats_window.arrivals

(* ------------------------------------------------------------------ *)
(* Quantum_controller                                                  *)
(* ------------------------------------------------------------------ *)

module Qc = Preemptible.Quantum_controller

(* The [median]/[p99] arguments stand for the window's service-time
   statistics — the inputs Algorithm 1's tail fit consumes. *)
let snapshot ?(rate = 0.0) ?(median = 0.0) ?(p99 = 0.0) ?(qlen = 0) ?(completions = 1) () =
  {
    Preemptible.Stats_window.window_start_ns = 0;
    window_ns = 1_000_000;
    arrivals = 0;
    completions;
    arrival_rate_per_s = rate;
    median_ns = median;
    p99_ns = p99;
    service_median_ns = median;
    service_p99_ns = p99;
    max_qlen = qlen;
  }

let test_controller_decreases_under_high_load () =
  let c = Qc.create ~max_load_per_s:1_000_000.0 ~initial_quantum_ns:50_000 () in
  let tq = Qc.observe c (snapshot ~rate:950_000.0 ~median:1_000.0 ~p99:2_000.0 ()) in
  check_int "dropped by k1" 40_000 tq

let test_controller_decreases_on_heavy_tail () =
  let c = Qc.create ~max_load_per_s:1_000_000.0 ~initial_quantum_ns:50_000 () in
  (* p99/median = 500 => alpha = ln 50 / ln 500 ~ 0.63 < 2: heavy *)
  let tq = Qc.observe c (snapshot ~rate:500_000.0 ~median:1_000.0 ~p99:500_000.0 ()) in
  check_int "dropped by k2" 40_000 tq

let test_controller_increases_under_low_load () =
  let c = Qc.create ~max_load_per_s:1_000_000.0 ~initial_quantum_ns:50_000 () in
  let tq = Qc.observe c (snapshot ~rate:50_000.0 ~median:1_000.0 ~p99:1_500.0 ()) in
  check_int "raised by k3" 60_000 tq

let test_controller_respects_bounds () =
  let c = Qc.create ~max_load_per_s:1_000_000.0 ~initial_quantum_ns:5_000 () in
  (* Both high-load and heavy-tail triggers: would go negative without
     the T_min floor (the paper's min/max typo, fixed). *)
  let tq = Qc.observe c (snapshot ~rate:990_000.0 ~median:1_000.0 ~p99:500_000.0 ~qlen:100 ()) in
  check_int "clamped at t_min" (Qc.default_config.Qc.t_min_ns) tq;
  let c2 = Qc.create ~max_load_per_s:1_000_000.0 ~initial_quantum_ns:95_000 () in
  let tq2 = Qc.observe c2 (snapshot ~rate:10.0 ~median:1_000.0 ~p99:1_200.0 ()) in
  check_int "clamped at t_max" (Qc.default_config.Qc.t_max_ns) tq2

let test_controller_queue_trigger () =
  let c = Qc.create ~max_load_per_s:1_000_000.0 ~initial_quantum_ns:50_000 () in
  let tq =
    Qc.observe c (snapshot ~rate:500_000.0 ~median:1_000.0 ~p99:1_200.0 ~qlen:1_000 ())
  in
  check_int "queue threshold trigger" 40_000 tq

let test_controller_tail_index () =
  (match Qc.tail_index_of (snapshot ~median:1_000.0 ~p99:500_000.0 ()) with
  | Some alpha -> check_bool "heavy" true (Stat.Tail_index.is_heavy alpha)
  | None -> Alcotest.fail "expected an index");
  check_bool "no data -> none" true (Qc.tail_index_of (snapshot ~completions:0 ()) = None)

let test_controller_validation () =
  Alcotest.check_raises "bad initial"
    (Invalid_argument "Quantum_controller.create: initial quantum outside [t_min, t_max]")
    (fun () -> ignore (Qc.create ~max_load_per_s:1e6 ~initial_quantum_ns:1 ()))

(* ------------------------------------------------------------------ *)
(* Policy                                                              *)
(* ------------------------------------------------------------------ *)

let test_policy_quanta () =
  let p = Preemptible.Policy.fcfs_preempt ~quantum_ns:30_000 in
  check_int "static quantum" 30_000
    (p.Preemptible.Policy.quantum_ns ~now:0 ~cls:Workload.Request.Latency_critical);
  check_int "no-preempt quantum" max_int
    (Preemptible.Policy.no_preempt.Preemptible.Policy.quantum_ns ~now:0
       ~cls:Workload.Request.Latency_critical)

let test_policy_be_quantum () =
  let p =
    Preemptible.Policy.with_be_quantum
      (Preemptible.Policy.fcfs_preempt ~quantum_ns:5_000)
      ~be_quantum_ns:50_000
  in
  check_int "lc" 5_000 (p.Preemptible.Policy.quantum_ns ~now:0 ~cls:Workload.Request.Latency_critical);
  check_int "be" 50_000 (p.Preemptible.Policy.quantum_ns ~now:0 ~cls:Workload.Request.Best_effort)

let test_policy_adaptive_follows_controller () =
  let c = Qc.create ~max_load_per_s:1_000_000.0 ~initial_quantum_ns:50_000 () in
  let p = Preemptible.Policy.adaptive c in
  check_int "initial" 50_000
    (p.Preemptible.Policy.quantum_ns ~now:0 ~cls:Workload.Request.Latency_critical);
  p.Preemptible.Policy.on_window (snapshot ~rate:950_000.0 ~median:1_000.0 ~p99:1_500.0 ());
  check_int "after window" 40_000
    (p.Preemptible.Policy.quantum_ns ~now:0 ~cls:Workload.Request.Latency_critical)

let test_policy_ps_alternates () =
  let p = Preemptible.Policy.processor_sharing ~quantum_ns:1_000 in
  let a = p.Preemptible.Policy.pick ~new_ready:1 ~preempted_ready:1 in
  let b = p.Preemptible.Policy.pick ~new_ready:1 ~preempted_ready:1 in
  check_bool "alternates" true (a <> b)

(* ------------------------------------------------------------------ *)
(* Server end-to-end                                                   *)
(* ------------------------------------------------------------------ *)

module Server = Preemptible.Server

let a1_source =
  Workload.Source.of_dist Workload.Service_dist.workload_a1
    ~cls:Workload.Request.Latency_critical

let run_server ?(policy = Preemptible.Policy.fcfs_preempt ~quantum_ns:5_000)
    ?(mechanism = Server.Uintr_utimer Utimer.default_config) ?(rate = 400_000.0)
    ?(duration = Units.ms 50) ?(source = a1_source) ?seed () =
  let cfg = Server.default_config ~n_workers:4 ~policy ~mechanism in
  let cfg = match seed with Some s -> { cfg with Server.seed = s } | None -> cfg in
  Server.run cfg ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate) ~source
    ~duration_ns:duration

let test_server_conservation () =
  let r = run_server () in
  check_int "all offered requests complete (drained)" r.Server.offered r.Server.completed;
  check_int "nothing dropped" 0 r.Server.dropped;
  check_bool "contexts bounded" true (r.Server.ctx_high_water <= 8192)

let test_server_preemption_beats_hol_blocking () =
  let no_preempt =
    run_server ~policy:Preemptible.Policy.no_preempt ~mechanism:Server.No_mechanism ()
  in
  let preempt = run_server () in
  let p99 r = r.Server.all.Stat.Summary.p99 in
  check_bool "preemption removes HoL blocking (>=5x p99)" true
    (p99 no_preempt > 5.0 *. p99 preempt);
  check_bool "preemptions happened" true (preempt.Server.preemptions > 100)

let test_server_deterministic () =
  let a = run_server ~seed:7L () in
  let b = run_server ~seed:7L () in
  check_int "same completions" a.Server.completed b.Server.completed;
  Alcotest.(check (float 0.0)) "same p99" a.Server.all.Stat.Summary.p99 b.Server.all.Stat.Summary.p99;
  check_int "same preemptions" a.Server.preemptions b.Server.preemptions

let test_server_seed_changes_run () =
  let a = run_server ~seed:7L () in
  let b = run_server ~seed:8L () in
  check_bool "different seed, different trace" true
    (a.Server.all.Stat.Summary.mean <> b.Server.all.Stat.Summary.mean)

let test_server_kernel_mech_worse_than_uintr () =
  let uintr = run_server () in
  let ksig = run_server ~mechanism:(Server.Signal_utimer { poll_ns = 500 }) () in
  check_bool "signal-based preemption has worse p99" true
    (ksig.Server.all.Stat.Summary.p99 > uintr.Server.all.Stat.Summary.p99)

let test_server_adaptive_policy_runs () =
  let controller =
    Qc.create ~max_load_per_s:1_300_000.0 ~initial_quantum_ns:50_000 ()
  in
  let windows = ref 0 in
  let probes =
    {
      Server.on_complete = (fun ~now:_ ~latency_ns:_ ~cls:_ -> ());
      on_window = (fun _ ~quantum_ns:_ -> incr windows);
      on_tick = ignore;
    }
  in
  let policy = Preemptible.Policy.adaptive controller in
  let cfg =
    Server.default_config ~n_workers:4 ~policy
      ~mechanism:(Server.Uintr_utimer Utimer.default_config)
  in
  let cfg = { cfg with Server.stats_window_ns = Units.ms 5 } in
  let r =
    Server.run ~probes cfg
      ~arrival:(Workload.Arrival.poisson ~rate_per_sec:1_200_000.0)
      ~source:a1_source ~duration_ns:(Units.ms 50)
  in
  check_bool "controller engaged" true (Qc.steps controller > 0);
  check_bool "windows observed" true (!windows > 0);
  check_bool "quantum adapted downward under high load" true
    (Qc.quantum_ns controller < 50_000);
  check_bool "completed everything" true (r.Server.completed = r.Server.offered)

let test_server_warmup_excludes_early () =
  let cfg =
    Server.default_config ~n_workers:4
      ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:5_000)
      ~mechanism:(Server.Uintr_utimer Utimer.default_config)
  in
  let arrival = Workload.Arrival.poisson ~rate_per_sec:200_000.0 in
  let all = Server.run cfg ~arrival ~source:a1_source ~duration_ns:(Units.ms 20) in
  let warm =
    Server.run ~warmup_ns:(Units.ms 10) cfg ~arrival ~source:a1_source
      ~duration_ns:(Units.ms 20)
  in
  check_bool "warmup reduces measured count" true (warm.Server.offered < all.Server.offered);
  check_bool "measured window halved" true (warm.Server.measured_ns = Units.ms 10)

let test_server_be_lc_split () =
  let mica = Workload.Mica.create () in
  let zlib = Workload.Zlib_be.create () in
  let source =
    Workload.Source.mix [ (0.98, Workload.Mica.source mica); (0.02, Workload.Zlib_be.source zlib) ]
  in
  let r = run_server ~rate:100_000.0 ~source () in
  check_bool "lc summary present" true (r.Server.lc <> None);
  check_bool "be summary present" true (r.Server.be <> None);
  match (r.Server.lc, r.Server.be) with
  | Some lc, Some be ->
    check_bool "BE requests are much longer" true (be.Stat.Summary.p50 > 10.0 *. lc.Stat.Summary.p50)
  | _ -> Alcotest.fail "missing class summaries"

let test_server_validation () =
  let cfg =
    Server.default_config ~n_workers:0 ~policy:Preemptible.Policy.no_preempt
      ~mechanism:Server.No_mechanism
  in
  Alcotest.check_raises "no workers" (Invalid_argument "Server.run: need at least one worker")
    (fun () ->
      ignore
        (Server.run cfg
           ~arrival:(Workload.Arrival.poisson ~rate_per_sec:1_000.0)
           ~source:a1_source ~duration_ns:1_000))

let test_server_srpt_oracle_beats_fcfs () =
  (* With oracle service times, SRPT ordering of fresh requests improves
     the tail on the heavy-tailed workload at high load. *)
  let run discipline =
    let cfg =
      Server.default_config ~n_workers:4
        ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:5_000)
        ~mechanism:(Server.Uintr_utimer Utimer.default_config)
    in
    let cfg = { cfg with Server.discipline } in
    Server.run cfg
      ~arrival:(Workload.Arrival.poisson ~rate_per_sec:1_200_000.0)
      ~source:a1_source ~duration_ns:(Units.ms 40)
  in
  let fcfs = run Server.Fifo in
  let srpt = run Server.Srpt_oracle in
  check_bool "srpt p50 no worse" true
    (srpt.Server.all.Stat.Summary.p50 <= 1.05 *. fcfs.Server.all.Stat.Summary.p50);
  check_int "same offered" fcfs.Server.offered srpt.Server.offered

let test_server_edf_orders_by_deadline () =
  let cfg =
    Server.default_config ~n_workers:1
      ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:5_000)
      ~mechanism:(Server.Uintr_utimer Utimer.default_config)
  in
  let cfg = { cfg with Server.discipline = Server.Edf (Units.us 100) } in
  let r =
    Server.run cfg
      ~arrival:(Workload.Arrival.poisson ~rate_per_sec:300_000.0)
      ~source:a1_source ~duration_ns:(Units.ms 30)
  in
  check_int "conserves" r.Server.offered r.Server.completed

let test_server_cancellation () =
  (* Long requests that blow a tight SLO get cancelled at their first
     preemption, freeing resources. *)
  let run cancel =
    let cfg =
      Server.default_config ~n_workers:2
        ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:5_000)
        ~mechanism:(Server.Uintr_utimer Utimer.default_config)
    in
    let cfg = { cfg with Server.cancel_after_slo = cancel } in
    Server.run cfg
      ~arrival:(Workload.Arrival.poisson ~rate_per_sec:500_000.0)
      ~source:a1_source ~duration_ns:(Units.ms 30)
  in
  let plain = run None in
  check_int "no cancellations by default" 0 plain.Server.cancelled;
  check_int "plain conserves" plain.Server.offered plain.Server.completed;
  let slo = run (Some (Units.us 50)) in
  check_bool "doomed longs cancelled" true (slo.Server.cancelled > 0);
  check_int "completed + cancelled = offered" slo.Server.offered
    (slo.Server.completed + slo.Server.cancelled);
  check_bool "cancellation frees capacity (throughput of survivors ok)" true
    (slo.Server.completed > 0)

(* ------------------------------------------------------------------ *)
(* Pacer                                                               *)
(* ------------------------------------------------------------------ *)

let test_pacer_utimer_exact () =
  let sim = Sim.create () in
  let fabric = Hw.Uintr.create sim Hw.Params.default in
  let ut = Utimer.create sim ~uintr:fabric () in
  Utimer.start ut;
  let sends = ref [] in
  let pacer =
    Preemptible.Pacer.create sim ~rate_per_sec:100_000.0
      ~source:(Preemptible.Pacer.utimer_source ut ~uintr:fabric)
      ~send:(fun ~now -> sends := now :: !sends)
  in
  Preemptible.Pacer.start pacer;
  Sim.run_until sim (Units.ms 10);
  Preemptible.Pacer.stop pacer;
  Utimer.stop ut;
  Sim.run sim;
  let s = Preemptible.Pacer.stats pacer in
  check_bool "sent ~1000" true (abs (s.Preemptible.Pacer.sends - 1000) <= 2);
  check_bool "rate error under 1%" true (s.Preemptible.Pacer.rate_error < 0.01);
  (* absolute schedule: gaps do not drift *)
  check_bool "low jitter" true (s.Preemptible.Pacer.std_gap_us < 1.0)

let test_pacer_ktimer_floored () =
  let sim = Sim.create () in
  let costs = Ksim.Costs.default in
  let signal = Ksim.Signal.create sim costs ~rng:(Sim.fork_rng sim) in
  let kt = Ksim.Ktimer.create sim costs ~rng:(Sim.fork_rng sim) ~signal in
  let pacer =
    Preemptible.Pacer.create sim ~rate_per_sec:100_000.0
      ~source:(Preemptible.Pacer.ktimer_source sim kt)
      ~send:(fun ~now:_ -> ())
  in
  Preemptible.Pacer.start pacer;
  Sim.run_until sim (Units.ms 10);
  Preemptible.Pacer.stop pacer;
  Sim.run sim;
  let s = Preemptible.Pacer.stats pacer in
  (* 10us target spacing against a ~60us kernel floor *)
  check_bool "cannot reach the target rate" true
    (s.Preemptible.Pacer.achieved_rate_per_s < 25_000.0)

let test_pacer_stop_halts () =
  let sim = Sim.create () in
  let fabric = Hw.Uintr.create sim Hw.Params.default in
  let hwt = Hw.Hwtimer.create sim fabric in
  let count = ref 0 in
  let pacer =
    Preemptible.Pacer.create sim ~rate_per_sec:1_000_000.0
      ~source:(Preemptible.Pacer.hwtimer_source hwt ~uintr:fabric)
      ~send:(fun ~now:_ -> incr count)
  in
  Preemptible.Pacer.start pacer;
  Sim.run_until sim 10_500;
  Preemptible.Pacer.stop pacer;
  Sim.run sim;
  check_bool "sends stop after stop ()" true (!count <= 11)

let test_pacer_validation () =
  let sim = Sim.create () in
  let fabric = Hw.Uintr.create sim Hw.Params.default in
  let hwt = Hw.Hwtimer.create sim fabric in
  Alcotest.check_raises "zero rate" (Invalid_argument "Pacer.create: rate must be positive")
    (fun () ->
      ignore
        (Preemptible.Pacer.create sim ~rate_per_sec:0.0
           ~source:(Preemptible.Pacer.hwtimer_source hwt ~uintr:fabric)
           ~send:(fun ~now:_ -> ())))

(* ------------------------------------------------------------------ *)
(* Trace replay: exact accounting                                      *)
(* ------------------------------------------------------------------ *)

let trace_cfg ?(mechanism = Server.No_mechanism) ?(policy = Preemptible.Policy.no_preempt) () =
  Server.default_config ~n_workers:1 ~policy ~mechanism

let mk ~id ~at ~svc ?(cls = Workload.Request.Latency_critical) () =
  Workload.Request.make ~id ~arrival_ns:at ~service_ns:svc ~cls

let test_trace_single_request_exact () =
  (* dispatch (250) + launch (80) + service (10_000) = 10_330 exactly. *)
  let r =
    Server.run_trace (trace_cfg ())
      ~requests:[ mk ~id:0 ~at:0 ~svc:10_000 () ]
      ~duration_ns:(Units.ms 1)
  in
  check_int "one completion" 1 r.Server.completed;
  Alcotest.(check (float 1e-9)) "exact latency" 10_330.0 r.Server.all.Stat.Summary.mean

let test_trace_fifo_ordering_exact () =
  (* Two simultaneous arrivals on one worker, run to completion:
     r0 finishes at 10_330; worker pays complete(40), relaunch(80);
     r1 (popped by the dispatcher at 500) starts at 10_450 and finishes
     at 11_450: latency 11_450. *)
  let r =
    Server.run_trace (trace_cfg ())
      ~requests:[ mk ~id:0 ~at:0 ~svc:10_000 (); mk ~id:1 ~at:0 ~svc:1_000 () ]
      ~duration_ns:(Units.ms 1)
  in
  check_int "two completions" 2 r.Server.completed;
  Alcotest.(check (float 1e-9)) "exact max (r1 queued behind r0)" 11_450.0
    r.Server.all.Stat.Summary.max;
  Alcotest.(check (float 1e-9)) "exact mean" ((10_330.0 +. 11_450.0) /. 2.0)
    r.Server.all.Stat.Summary.mean

let test_trace_preemption_reorders () =
  (* With a 5us quantum the short second request overtakes the long
     first one instead of waiting 10us behind it. *)
  let completions = ref [] in
  let probes =
    {
      Server.on_complete =
        (fun ~now ~latency_ns:_ ~cls:_ -> completions := now :: !completions);
      on_window = (fun _ ~quantum_ns:_ -> ());
      on_tick = ignore;
    }
  in
  let r =
    Server.run_trace ~probes
      (trace_cfg
         ~mechanism:(Server.Uintr_utimer Utimer.default_config)
         ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:5_000)
         ())
      ~requests:[ mk ~id:0 ~at:0 ~svc:50_000 (); mk ~id:1 ~at:0 ~svc:1_000 () ]
      ~duration_ns:(Units.ms 1)
  in
  check_int "two completions" 2 r.Server.completed;
  check_bool "long request was preempted" true (r.Server.preemptions >= 1);
  (match List.rev !completions with
  | [ first; second ] ->
    check_bool "short escaped HoL (finished well before the long)" true
      (first < 15_000 && second > 50_000)
  | l -> Alcotest.failf "expected 2 completions, got %d" (List.length l));
  (* the preempted request still received all its service *)
  check_bool "long sojourn >= its service" true
    (r.Server.all.Stat.Summary.max >= 51_000.0)

let test_trace_class_split () =
  let r =
    Server.run_trace (trace_cfg ())
      ~requests:
        [
          mk ~id:0 ~at:0 ~svc:1_000 ();
          mk ~id:1 ~at:5_000 ~svc:2_000 ~cls:Workload.Request.Best_effort ();
        ]
      ~duration_ns:(Units.ms 1)
  in
  (match (r.Server.lc, r.Server.be) with
  | Some lc, Some be ->
    check_int "one LC" 1 lc.Stat.Summary.count;
    check_int "one BE" 1 be.Stat.Summary.count
  | _ -> Alcotest.fail "expected both class summaries");
  check_int "offered" 2 r.Server.offered

let test_trace_validation () =
  check_bool "arrival beyond duration rejected" true
    (try
       ignore
         (Server.run_trace (trace_cfg ())
            ~requests:[ mk ~id:0 ~at:2_000 ~svc:10 () ]
            ~duration_ns:1_000);
       false
     with Invalid_argument _ -> true)

let test_trace_from_tracegen () =
  (* Tracegen output replays through the server without loss. *)
  let requests =
    Workload.Tracegen.generate
      ~arrival:(Workload.Arrival.poisson ~rate_per_sec:200_000.0)
      ~source:a1_source ~duration_ns:(Units.ms 10) ()
  in
  let cfg =
    Server.default_config ~n_workers:4
      ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:5_000)
      ~mechanism:(Server.Uintr_utimer Utimer.default_config)
  in
  let r = Server.run_trace cfg ~requests ~duration_ns:(Units.ms 10) in
  check_int "all requests completed" (List.length requests) r.Server.completed

let server_conservation_property =
  QCheck.Test.make ~name:"server conserves requests across random loads/quanta" ~count:8
    QCheck.(pair (int_range 50 800) (int_range 3 100))
    (fun (rate_krps, quantum_us) ->
      let r =
        run_server
          ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:(quantum_us * 1_000))
          ~rate:(float_of_int rate_krps *. 1_000.0)
          ~duration:(Units.ms 20) ()
      in
      r.Server.offered = r.Server.completed)

let suites =
  [
    ( "preemptible.context",
      [
        Alcotest.test_case "alloc/release" `Quick test_context_alloc_release;
        Alcotest.test_case "state machine" `Quick test_context_state_machine;
        Alcotest.test_case "validation" `Quick test_context_pool_validation;
      ] );
    ( "preemptible.fn",
      [
        Alcotest.test_case "lifecycle" `Quick test_fn_lifecycle;
        Alcotest.test_case "infinite quantum" `Quick test_fn_infinite_quantum;
        Alcotest.test_case "invalid transitions" `Quick test_fn_invalid_transitions;
      ] );
    ( "preemptible.rqueue",
      [
        Alcotest.test_case "fifo + stats" `Quick test_rqueue_fifo_and_stats;
        Alcotest.test_case "pop_by" `Quick test_rqueue_pop_by;
        Alcotest.test_case "ring wraparound" `Quick test_rqueue_ring_wraparound;
        Alcotest.test_case "pop_by after wrap" `Quick test_rqueue_pop_by_after_wrap;
      ] );
    ( "preemptible.stats_window",
      [ Alcotest.test_case "roll" `Quick test_stats_window_roll ] );
    ( "preemptible.quantum_controller",
      [
        Alcotest.test_case "high load decreases" `Quick test_controller_decreases_under_high_load;
        Alcotest.test_case "heavy tail decreases" `Quick test_controller_decreases_on_heavy_tail;
        Alcotest.test_case "low load increases" `Quick test_controller_increases_under_low_load;
        Alcotest.test_case "bounds" `Quick test_controller_respects_bounds;
        Alcotest.test_case "queue trigger" `Quick test_controller_queue_trigger;
        Alcotest.test_case "tail index" `Quick test_controller_tail_index;
        Alcotest.test_case "validation" `Quick test_controller_validation;
      ] );
    ( "preemptible.policy",
      [
        Alcotest.test_case "quanta" `Quick test_policy_quanta;
        Alcotest.test_case "per-class quantum" `Quick test_policy_be_quantum;
        Alcotest.test_case "adaptive follows controller" `Quick
          test_policy_adaptive_follows_controller;
        Alcotest.test_case "ps alternates" `Quick test_policy_ps_alternates;
      ] );
    ( "preemptible.server",
      [
        Alcotest.test_case "conservation" `Slow test_server_conservation;
        Alcotest.test_case "preemption beats HoL" `Slow test_server_preemption_beats_hol_blocking;
        Alcotest.test_case "deterministic" `Slow test_server_deterministic;
        Alcotest.test_case "seed sensitivity" `Slow test_server_seed_changes_run;
        Alcotest.test_case "uintr beats signals" `Slow test_server_kernel_mech_worse_than_uintr;
        Alcotest.test_case "adaptive policy" `Slow test_server_adaptive_policy_runs;
        Alcotest.test_case "warmup" `Slow test_server_warmup_excludes_early;
        Alcotest.test_case "lc/be split" `Slow test_server_be_lc_split;
        Alcotest.test_case "srpt oracle" `Slow test_server_srpt_oracle_beats_fcfs;
        Alcotest.test_case "edf discipline" `Slow test_server_edf_orders_by_deadline;
        Alcotest.test_case "slo cancellation" `Slow test_server_cancellation;
        Alcotest.test_case "trace: single exact" `Quick test_trace_single_request_exact;
        Alcotest.test_case "trace: fifo exact" `Quick test_trace_fifo_ordering_exact;
        Alcotest.test_case "trace: preemption reorders" `Quick test_trace_preemption_reorders;
        Alcotest.test_case "trace: class split" `Quick test_trace_class_split;
        Alcotest.test_case "trace: validation" `Quick test_trace_validation;
        Alcotest.test_case "trace: tracegen replay" `Slow test_trace_from_tracegen;
      ] );
    ( "preemptible.pacer",
      [
        Alcotest.test_case "utimer exact" `Quick test_pacer_utimer_exact;
        Alcotest.test_case "ktimer floored" `Quick test_pacer_ktimer_floored;
        Alcotest.test_case "stop halts" `Quick test_pacer_stop_halts;
        Alcotest.test_case "validation" `Quick test_pacer_validation;
        Alcotest.test_case "validation" `Quick test_server_validation;
        QCheck_alcotest.to_alcotest server_conservation_property;
      ] );
  ]
