(* Tests for the discrete-event simulation engine. *)

open Engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Units                                                               *)
(* ------------------------------------------------------------------ *)

let test_units_roundtrip () =
  check_int "1us" 1_000 (Units.us 1);
  check_int "1ms" 1_000_000 (Units.ms 1);
  check_int "1s" 1_000_000_000 (Units.sec 1);
  check_int "1.5us" 1_500 (Units.us_f 1.5);
  check_int "0.25ms" 250_000 (Units.ms_f 0.25);
  Alcotest.(check (float 1e-9)) "to_us" 2.5 (Units.to_us 2_500);
  Alcotest.(check (float 1e-9)) "to_ms" 0.5 (Units.to_ms 500_000);
  Alcotest.(check (float 1e-12)) "to_sec" 1e-9 (Units.to_sec 1)

let test_units_pp () =
  let s v = Format.asprintf "%a" Units.pp_duration v in
  Alcotest.(check string) "ns range" "700ns" (s 700);
  Alcotest.(check string) "us range" "3.0us" (s 3_000);
  Alcotest.(check string) "ms range" "1.50ms" (s 1_500_000);
  Alcotest.(check string) "s range" "2.00s" (s (Units.sec 2))

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 7L and b = Rng.create 7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_copy_independent () =
  let a = Rng.create 3L in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues stream" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_split_differs () =
  let a = Rng.create 3L in
  let b = Rng.split a in
  let xa = Rng.bits64 a and xb = Rng.bits64 b in
  check_bool "split streams differ" true (xa <> xb)

let test_rng_float_range () =
  let r = Rng.create 11L in
  for _ = 1 to 10_000 do
    let x = Rng.float r in
    check_bool "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_rng_int_range () =
  let r = Rng.create 13L in
  for _ = 1 to 10_000 do
    let x = Rng.int r 7 in
    check_bool "in [0,7)" true (x >= 0 && x < 7)
  done

let test_rng_int_rejects_nonpositive () =
  let r = Rng.create 1L in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_exponential_mean () =
  let r = Rng.create 17L in
  let n = 200_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential r ~mean:5.0
  done;
  let mean = !acc /. float_of_int n in
  check_bool "mean close to 5"
    true
    (abs_float (mean -. 5.0) < 0.1)

let test_rng_normal_moments () =
  let r = Rng.create 19L in
  let n = 200_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.normal r ~mu:10.0 ~sigma:2.0 in
    sum := !sum +. x;
    sq := !sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  check_bool "mean ~ 10" true (abs_float (mean -. 10.0) < 0.05);
  check_bool "var ~ 4" true (abs_float (var -. 4.0) < 0.2)

let test_rng_pareto_bounds () =
  let r = Rng.create 23L in
  for _ = 1 to 10_000 do
    let x = Rng.pareto r ~scale:2.0 ~shape:1.5 in
    check_bool "pareto >= scale" true (x >= 2.0)
  done

(* ------------------------------------------------------------------ *)
(* Event_heap                                                          *)
(* ------------------------------------------------------------------ *)

let test_heap_orders_by_time () =
  let h = Event_heap.create ~dummy:"?" () in
  Event_heap.add h ~time:30 ~seq:1 "c";
  Event_heap.add h ~time:10 ~seq:2 "a";
  Event_heap.add h ~time:20 ~seq:3 "b";
  let pop () =
    match Event_heap.pop h with Some (_, _, v) -> v | None -> "?"
  in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] [ first; second; third ]

let test_heap_fifo_at_equal_time () =
  let h = Event_heap.create ~dummy:0 () in
  for i = 1 to 50 do
    Event_heap.add h ~time:5 ~seq:i i
  done;
  let out = ref [] in
  let rec drain () =
    match Event_heap.pop h with
    | Some (_, _, v) ->
      out := v :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "insertion order" (List.init 50 (fun i -> i + 1)) (List.rev !out)

let test_heap_grow () =
  let h = Event_heap.create ~dummy:0 () in
  for i = 1000 downto 1 do
    Event_heap.add h ~time:i ~seq:(1001 - i) i
  done;
  check_int "size" 1000 (Event_heap.size h);
  let prev = ref 0 in
  let rec drain () =
    match Event_heap.pop h with
    | Some (time, _, _) ->
      check_bool "non-decreasing" true (time >= !prev);
      prev := time;
      drain ()
    | None -> ()
  in
  drain ();
  check_bool "empty" true (Event_heap.is_empty h)

let test_heap_clear () =
  let h = Event_heap.create ~dummy:() () in
  Event_heap.add h ~time:1 ~seq:1 ();
  Event_heap.clear h;
  check_bool "empty after clear" true (Event_heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Event_heap.pop h = None)

let heap_property =
  QCheck.Test.make ~name:"heap pops sorted by (time,seq)" ~count:200
    QCheck.(list (pair (int_bound 1000) (int_bound 1000)))
    (fun entries ->
      let h = Event_heap.create ~dummy:0 () in
      List.iteri (fun i (time, _) -> Event_heap.add h ~time ~seq:i time) entries;
      let rec drain acc =
        match Event_heap.pop h with
        | Some (time, seq, _) -> drain ((time, seq) :: acc)
        | None -> List.rev acc
      in
      let out = drain [] in
      let sorted = List.sort compare out in
      out = sorted)

(* Model test: interleaved add/pop against a sorted-list oracle.  The
   oracle keeps (time, seq, value) sorted by (time, seq) with a stable
   insert, so it also pins FIFO tie-breaking on equal deadlines — the
   generator draws times from a narrow range to force collisions. *)
let heap_model =
  QCheck.Test.make ~name:"heap matches sorted-list oracle (interleaved ops)"
    ~count:300
    QCheck.(list (option (int_bound 20)))
    (fun ops ->
      let h = Event_heap.create ~dummy:(-1) () in
      let oracle = ref [] in
      let seq = ref 0 in
      let insert time v =
        (* Stable insert: equal keys keep arrival order. *)
        let rec go = function
          | [] -> [ (time, v, v) ]
          | (t', s', v') :: rest when (t', s') <= (time, v) ->
            (t', s', v') :: go rest
          | rest -> (time, v, v) :: rest
        in
        oracle := go !oracle
      in
      List.for_all
        (fun op ->
          match op with
          | Some time ->
            incr seq;
            Event_heap.add h ~time ~seq:!seq !seq;
            insert time !seq;
            Event_heap.size h = List.length !oracle
          | None -> (
            match (Event_heap.pop h, !oracle) with
            | None, [] -> true
            | Some (t, s, v), (t', s', v') :: rest ->
              oracle := rest;
              t = t' && s = s' && v = v'
            | Some _, [] | None, _ :: _ -> false))
        ops)

(* ------------------------------------------------------------------ *)
(* Sim                                                                 *)
(* ------------------------------------------------------------------ *)

let test_sim_runs_in_time_order () =
  let sim = Sim.create () in
  let log = ref [] in
  let note tag () = log := (tag, Sim.now sim) :: !log in
  ignore (Sim.at sim 300 (note "c"));
  ignore (Sim.at sim 100 (note "a"));
  ignore (Sim.at sim 200 (note "b"));
  Sim.run sim;
  Alcotest.(check (list (pair string int)))
    "order and clock" [ ("a", 100); ("b", 200); ("c", 300) ] (List.rev !log)

let test_sim_after_relative () =
  let sim = Sim.create () in
  let hits = ref [] in
  ignore
    (Sim.after sim 50 (fun () ->
         hits := Sim.now sim :: !hits;
         ignore (Sim.after sim 25 (fun () -> hits := Sim.now sim :: !hits))));
  Sim.run sim;
  Alcotest.(check (list int)) "nested after" [ 50; 75 ] (List.rev !hits)

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let ev = Sim.at sim 10 (fun () -> fired := true) in
  check_bool "pending" true (Sim.is_pending ev);
  Sim.cancel ev;
  check_bool "not pending" false (Sim.is_pending ev);
  Sim.run sim;
  check_bool "cancelled event did not fire" false !fired

let test_sim_cancel_is_idempotent () =
  let sim = Sim.create () in
  let ev = Sim.at sim 10 (fun () -> ()) in
  Sim.cancel ev;
  Sim.cancel ev;
  Sim.run sim

let test_sim_rejects_past () =
  let sim = Sim.create () in
  ignore (Sim.at sim 100 (fun () -> ()));
  Sim.run sim;
  check_int "clock at 100" 100 (Sim.now sim);
  Alcotest.check_raises "past scheduling"
    (Invalid_argument "Sim.at: time 50 is in the past (now 100)") (fun () ->
      ignore (Sim.at sim 50 (fun () -> ())))

let test_sim_rejects_negative_delay () =
  let sim = Sim.create () in
  Alcotest.check_raises "negative delay" (Invalid_argument "Sim.after: negative delay")
    (fun () -> ignore (Sim.after sim (-1) (fun () -> ())))

let test_sim_run_until () =
  let sim = Sim.create () in
  let fired = ref [] in
  List.iter
    (fun t -> ignore (Sim.at sim t (fun () -> fired := t :: !fired)))
    [ 10; 20; 30; 40 ];
  Sim.run_until sim 25;
  Alcotest.(check (list int)) "only <= 25" [ 10; 20 ] (List.rev !fired);
  check_int "clock advanced to limit" 25 (Sim.now sim);
  Sim.run sim;
  Alcotest.(check (list int)) "rest run" [ 10; 20; 30; 40 ] (List.rev !fired)

let test_sim_run_until_skips_cancelled_head () =
  let sim = Sim.create () in
  let fired = ref [] in
  let ev = Sim.at sim 10 (fun () -> fired := 10 :: !fired) in
  ignore (Sim.at sim 50 (fun () -> fired := 50 :: !fired));
  Sim.cancel ev;
  Sim.run_until sim 20;
  Alcotest.(check (list int)) "nothing fired" [] !fired;
  check_int "clock at 20" 20 (Sim.now sim)

let test_sim_equal_times_fifo () =
  let sim = Sim.create () in
  let order = ref [] in
  for i = 1 to 20 do
    ignore (Sim.at sim 5 (fun () -> order := i :: !order))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "fifo at same tick" (List.init 20 (fun i -> i + 1))
    (List.rev !order)

let test_sim_max_events () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    ignore (Sim.after sim 1 tick)
  in
  ignore (Sim.after sim 1 tick);
  Sim.run ~max_events:100 sim;
  check_int "bounded" 100 !count

let test_sim_null_event () =
  let sim = Sim.create () in
  check_bool "null never pending" false (Sim.is_pending Sim.null);
  Sim.cancel Sim.null;
  Sim.cancel Sim.null;
  check_bool "still not pending" false (Sim.is_pending Sim.null);
  (* A component parked on [null] must not disturb a live simulation. *)
  let fired = ref 0 in
  ignore (Sim.at sim 5 (fun () -> incr fired));
  Sim.run sim;
  check_int "live event unaffected" 1 !fired

(* The free list recycles event records across firings; a burst of
   schedule/cancel/fire cycles must behave exactly like a fresh sim
   (records carry no state across reuse). *)
let test_sim_recycling_determinism () =
  let run_once () =
    let sim = Sim.create ~seed:77L () in
    let r = Sim.fork_rng sim in
    let log = ref [] in
    let rec burst n =
      if n > 0 then begin
        let d = 1 + Rng.int r 20 in
        let keep = Sim.after sim d (fun () -> log := Sim.now sim :: !log) in
        let doomed = Sim.after sim (d + 3) (fun () -> log := -1 :: !log) in
        Sim.cancel doomed;
        ignore keep;
        ignore (Sim.after sim (d + 1) (fun () -> burst (n - 1)))
      end
    in
    burst 500;
    Sim.run sim;
    !log
  in
  let a = run_once () in
  Alcotest.(check (list int)) "replay equal across recycling" a (run_once ());
  check_bool "cancelled callbacks never ran" true (not (List.mem (-1) a))

let test_sim_events_fired_counts_only_live () =
  let sim = Sim.create () in
  ignore (Sim.at sim 1 (fun () -> ()));
  let doomed = Sim.at sim 2 (fun () -> ()) in
  Sim.cancel doomed;
  ignore (Sim.at sim 3 (fun () -> ()));
  Sim.run sim;
  check_int "two fired" 2 (Sim.events_fired sim)

let test_sim_fork_rng_independent () =
  let sim = Sim.create ~seed:9L () in
  let a = Sim.fork_rng sim and b = Sim.fork_rng sim in
  check_bool "distinct streams" true (Rng.bits64 a <> Rng.bits64 b)

let test_sim_deterministic_replay () =
  let run_once () =
    let sim = Sim.create ~seed:123L () in
    let r = Sim.fork_rng sim in
    let trace = ref [] in
    let rec arrival n =
      if n > 0 then begin
        let d = 1 + Rng.int r 100 in
        ignore
          (Sim.after sim d (fun () ->
               trace := Sim.now sim :: !trace;
               arrival (n - 1)))
      end
    in
    arrival 200;
    Sim.run sim;
    !trace
  in
  Alcotest.(check (list int)) "replay equal" (run_once ()) (run_once ())

let suites =
  [
    ( "engine.units",
      [
        Alcotest.test_case "roundtrip" `Quick test_units_roundtrip;
        Alcotest.test_case "pp_duration" `Quick test_units_pp;
      ] );
    ( "engine.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "copy" `Quick test_rng_copy_independent;
        Alcotest.test_case "split" `Quick test_rng_split_differs;
        Alcotest.test_case "float range" `Quick test_rng_float_range;
        Alcotest.test_case "int range" `Quick test_rng_int_range;
        Alcotest.test_case "int bound check" `Quick test_rng_int_rejects_nonpositive;
        Alcotest.test_case "exponential mean" `Slow test_rng_exponential_mean;
        Alcotest.test_case "normal moments" `Slow test_rng_normal_moments;
        Alcotest.test_case "pareto bounds" `Quick test_rng_pareto_bounds;
      ] );
    ( "engine.event_heap",
      [
        Alcotest.test_case "orders by time" `Quick test_heap_orders_by_time;
        Alcotest.test_case "fifo at equal time" `Quick test_heap_fifo_at_equal_time;
        Alcotest.test_case "grow" `Quick test_heap_grow;
        Alcotest.test_case "clear" `Quick test_heap_clear;
        QCheck_alcotest.to_alcotest heap_property;
        QCheck_alcotest.to_alcotest heap_model;
      ] );
    ( "engine.sim",
      [
        Alcotest.test_case "time order" `Quick test_sim_runs_in_time_order;
        Alcotest.test_case "after nested" `Quick test_sim_after_relative;
        Alcotest.test_case "cancel" `Quick test_sim_cancel;
        Alcotest.test_case "cancel idempotent" `Quick test_sim_cancel_is_idempotent;
        Alcotest.test_case "rejects past" `Quick test_sim_rejects_past;
        Alcotest.test_case "rejects negative delay" `Quick test_sim_rejects_negative_delay;
        Alcotest.test_case "run_until" `Quick test_sim_run_until;
        Alcotest.test_case "run_until skips cancelled" `Quick
          test_sim_run_until_skips_cancelled_head;
        Alcotest.test_case "fifo same tick" `Quick test_sim_equal_times_fifo;
        Alcotest.test_case "max_events" `Quick test_sim_max_events;
        Alcotest.test_case "null event" `Quick test_sim_null_event;
        Alcotest.test_case "recycling determinism" `Quick test_sim_recycling_determinism;
        Alcotest.test_case "events_fired" `Quick test_sim_events_fired_counts_only_live;
        Alcotest.test_case "fork_rng" `Quick test_sim_fork_rng_independent;
        Alcotest.test_case "deterministic replay" `Quick test_sim_deterministic_replay;
      ] );
  ]
