(* Tiny substring helper for test assertions (no external deps). *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0
