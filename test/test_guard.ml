(* Tests for lib/guard: admission layers in isolation, breaker
   hysteresis, the client retry model, the guard-off no-op, and the
   conservation / retry-bound properties on full server runs. *)

open Engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let lc = Workload.Request.Latency_critical
let be = Workload.Request.Best_effort

(* ------------------------------------------------------------------ *)
(* Admission layers in isolation                                       *)
(* ------------------------------------------------------------------ *)

let test_validate () =
  Guard.validate Guard.disabled;
  let raises name cfg =
    check_bool name true
      (try
         Guard.validate cfg;
         false
       with Invalid_argument _ -> true)
  in
  raises "retry without timeout"
    { Guard.disabled with Guard.retry = Some Guard.default_retry };
  raises "drop_expired without timeout" { Guard.disabled with Guard.drop_expired = true };
  raises "bad bucket rate"
    { Guard.disabled with Guard.global_bucket = Some { Guard.rate_per_sec = 0.0; burst = 4.0 } };
  raises "bad jitter"
    {
      Guard.disabled with
      Guard.timeout_ns = Some 1_000;
      retry = Some { Guard.default_retry with Guard.jitter = 1.5 };
    };
  raises "bad shed bound"
    { Guard.disabled with Guard.shed = Some { Guard.default_shed with Guard.max_queue = 0 } };
  raises "bad brownout shrink"
    {
      Guard.disabled with
      Guard.brownout = Some { Guard.default_brownout with Guard.timeout_shrink = 0.0 };
    }

let test_queue_bound () =
  let g =
    Guard.create
      { Guard.disabled with Guard.shed = Some { Guard.default_shed with Guard.max_queue = 4 } }
  in
  check_bool "below bound admits" true
    (Guard.admission g ~now:0 ~cls:lc ~qlen:3 ~head_wait_ns:0 = Guard.Admit);
  check_bool "at bound sheds" true
    (Guard.admission g ~now:0 ~cls:lc ~qlen:4 ~head_wait_ns:0 = Guard.Shed_queue);
  let rep = Guard.report g in
  check_int "shed counted" 1 rep.Guard.shed_queue;
  check_int "admit counted" 1 rep.Guard.admitted

let test_token_bucket () =
  (* burst 2, refill 1000/s = one token per ms *)
  let g =
    Guard.create
      {
        Guard.disabled with
        Guard.global_bucket = Some { Guard.rate_per_sec = 1000.0; burst = 2.0 };
      }
  in
  let admit now = Guard.admission g ~now ~cls:lc ~qlen:0 ~head_wait_ns:0 in
  check_bool "burst token 1" true (admit 0 = Guard.Admit);
  check_bool "burst token 2" true (admit 0 = Guard.Admit);
  check_bool "bucket empty" true (admit 0 = Guard.Shed_rate);
  check_bool "still empty at half refill" true (admit 500_000 = Guard.Shed_rate);
  check_bool "one token after 1.6ms" true (admit 1_600_000 = Guard.Admit);
  check_bool "and it is spent" true (admit 1_600_000 = Guard.Shed_rate)

let test_per_class_bucket () =
  let g =
    Guard.create
      {
        Guard.disabled with
        Guard.be_bucket = Some { Guard.rate_per_sec = 1000.0; burst = 1.0 };
      }
  in
  check_bool "BE first admit" true
    (Guard.admission g ~now:0 ~cls:be ~qlen:0 ~head_wait_ns:0 = Guard.Admit);
  check_bool "BE rate-shed" true
    (Guard.admission g ~now:0 ~cls:be ~qlen:0 ~head_wait_ns:0 = Guard.Shed_rate);
  check_bool "LC unaffected" true
    (Guard.admission g ~now:0 ~cls:lc ~qlen:0 ~head_wait_ns:0 = Guard.Admit)

let test_codel_persistence () =
  (* target 10us, interval 100us: shedding starts only once the head
     age has stayed above target for a full interval. *)
  let shed =
    Some
      { Guard.max_queue = 1_000_000; codel_target_ns = 10_000; codel_interval_ns = 100_000 }
  in
  let g = Guard.create { Guard.disabled with Guard.shed } in
  let admit now head = Guard.admission g ~now ~cls:lc ~qlen:1 ~head_wait_ns:head in
  check_bool "above target, clock starts" true (admit 0 50_000 = Guard.Admit);
  check_bool "above target, within interval" true (admit 50_000 50_000 = Guard.Admit);
  check_bool "interval elapsed: shed" true (admit 100_000 50_000 = Guard.Shed_delay);
  check_bool "dip below target resets" true (admit 150_000 0 = Guard.Admit);
  check_bool "above again, clock restarted" true (admit 200_000 50_000 = Guard.Admit);
  check_bool "persists again: shed" true (admit 300_000 50_000 = Guard.Shed_delay)

(* ------------------------------------------------------------------ *)
(* Breaker hysteresis                                                  *)
(* ------------------------------------------------------------------ *)

let breaker_guard () =
  Guard.create
    {
      Guard.disabled with
      Guard.brownout =
        Some
          {
            Guard.p99_trip_ns = 1_000_000;
            qlen_trip = 100;
            trip_windows = 2;
            recover_windows = 2;
            timeout_shrink = 0.5;
            probe_every = 4;
          };
    }

let test_breaker_transitions () =
  let g = breaker_guard () in
  let bad now = Guard.on_window g ~now ~p99_ns:5e6 ~max_qlen:10 in
  let good now = Guard.on_window g ~now ~p99_ns:1e3 ~max_qlen:0 in
  check_bool "starts normal" true (Guard.breaker_state g = Guard.Normal);
  bad 1;
  check_bool "one bad window is not enough" true (Guard.breaker_state g = Guard.Normal);
  bad 2;
  check_bool "two bad windows: brownout" true (Guard.breaker_state g = Guard.Brownout);
  check_bool "brownout forces fifo" true (Guard.force_fifo g);
  check_bool "brownout sheds BE" true
    (Guard.admission g ~now:3 ~cls:be ~qlen:0 ~head_wait_ns:0 = Guard.Shed_brownout);
  check_bool "brownout keeps LC" true
    (Guard.admission g ~now:3 ~cls:lc ~qlen:0 ~head_wait_ns:0 = Guard.Admit);
  bad 3;
  bad 4;
  check_bool "two more: open" true (Guard.breaker_state g = Guard.Open);
  (* Open: one probe in [probe_every], the rest shed — regardless of class. *)
  let admitted = ref 0 in
  for i = 0 to 7 do
    if Guard.admission g ~now:(5 + i) ~cls:lc ~qlen:0 ~head_wait_ns:0 = Guard.Admit then
      incr admitted
  done;
  check_int "open admits 2 of 8 probes" 2 !admitted;
  good 10;
  check_bool "one good window is not enough" true (Guard.breaker_state g = Guard.Open);
  good 11;
  check_bool "recovers one step" true (Guard.breaker_state g = Guard.Brownout);
  bad 12;
  good 13;
  check_bool "hysteresis: streak broken" true (Guard.breaker_state g = Guard.Brownout);
  good 14;
  good 15;
  check_bool "full recovery" true (Guard.breaker_state g = Guard.Normal);
  let rep = Guard.report g in
  check_int "trips" 2 rep.Guard.trips;
  check_int "recoveries" 2 rep.Guard.recoveries;
  check_bool "degraded windows counted" true (rep.Guard.degraded_windows >= 4)

let test_timeout_shrink () =
  let g = breaker_guard () in
  (* No timeout configured: shrink has nothing to act on. *)
  check_bool "no timeout" true (Guard.effective_timeout_ns g = None);
  let g =
    Guard.create
      {
        (Guard.config (breaker_guard ())) with
        Guard.timeout_ns = Some 100_000;
        drop_expired = true;
      }
  in
  check_bool "normal: full patience" true (Guard.effective_timeout_ns g = Some 100_000);
  check_bool "expiry armed" true (Guard.expiry_ns g = Some 100_000);
  Guard.on_window g ~now:1 ~p99_ns:5e6 ~max_qlen:0;
  Guard.on_window g ~now:2 ~p99_ns:5e6 ~max_qlen:0;
  check_bool "degraded: shrunk expiry" true (Guard.effective_timeout_ns g = Some 50_000);
  check_bool "client patience unchanged" true (Guard.client_timeout_ns g = Some 100_000)

(* ------------------------------------------------------------------ *)
(* Client retry model                                                  *)
(* ------------------------------------------------------------------ *)

let retry_guard ?budget ?(jitter = 0.5) () =
  Guard.create
    {
      Guard.disabled with
      Guard.timeout_ns = Some 100_000;
      retry =
        Some
          {
            Guard.max_attempts = 4;
            backoff_ns = 50_000;
            max_backoff_ns = 400_000;
            jitter;
            budget;
          };
    }

let test_retry_backoff_bounds () =
  let g = retry_guard () in
  let rng = Rng.create 5L in
  (* attempt k's backoff doubles from 50us, capped at 400us, with
     +/-25% jitter; never below 1ns. *)
  List.iter
    (fun (attempt, base) ->
      for _ = 1 to 50 do
        match Guard.retry_gap g rng ~now:0 ~attempt with
        | None -> Alcotest.fail "retry denied below the attempt cap"
        | Some gap ->
          let lo = int_of_float (0.74 *. float_of_int base)
          and hi = int_of_float (1.26 *. float_of_int base) in
          check_bool
            (Printf.sprintf "gap %d within [%d,%d] for attempt %d" gap lo hi attempt)
            true
            (gap >= lo && gap <= hi)
      done)
    [ (1, 50_000); (2, 100_000); (3, 200_000) ];
  check_bool "cap reached: give up" true (Guard.retry_gap g rng ~now:0 ~attempt:4 = None);
  let rep = Guard.report g in
  check_int "exhaustion counted" 1 rep.Guard.retry_exhausted

let test_retry_budget () =
  let g =
    retry_guard ~budget:{ Guard.rate_per_sec = 1000.0; burst = 2.0 } ()
  in
  let rng = Rng.create 6L in
  check_bool "budget token 1" true (Guard.retry_gap g rng ~now:0 ~attempt:1 <> None);
  check_bool "budget token 2" true (Guard.retry_gap g rng ~now:0 ~attempt:1 <> None);
  check_bool "budget empty: denied" true (Guard.retry_gap g rng ~now:0 ~attempt:1 = None);
  check_bool "refills with time" true
    (Guard.retry_gap g rng ~now:2_000_000 ~attempt:1 <> None);
  let rep = Guard.report g in
  check_int "denial counted" 1 rep.Guard.budget_denied

(* ------------------------------------------------------------------ *)
(* Server integration                                                  *)
(* ------------------------------------------------------------------ *)

let dist = Workload.Service_dist.exponential ~mean_ns:2_000
let source = Workload.Source.of_dist dist ~cls:lc

let server_cfg ?guard () =
  let cfg =
    Preemptible.Server.default_config ~n_workers:2
      ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:(Units.us 5))
      ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config)
  in
  { cfg with Preemptible.Server.guard; stats_window_ns = Units.ms 2 }

let run_server ?guard ~rate ~duration_ns () =
  Preemptible.Server.run (server_cfg ?guard ())
    ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
    ~source ~duration_ns

let test_guard_off_noop () =
  (* A disabled guard record must behave exactly like no guard at all:
     same completions, same latencies, same preemption counts. *)
  let a = run_server ~rate:600_000.0 ~duration_ns:(Units.ms 20) () in
  let b =
    run_server ~guard:Guard.disabled ~rate:600_000.0 ~duration_ns:(Units.ms 20) ()
  in
  check_int "offered" a.Preemptible.Server.offered b.Preemptible.Server.offered;
  check_int "completed" a.Preemptible.Server.completed b.Preemptible.Server.completed;
  check_int "preemptions" a.Preemptible.Server.preemptions b.Preemptible.Server.preemptions;
  Alcotest.(check (float 0.0))
    "p99" a.Preemptible.Server.all.Stat.Summary.p99
    b.Preemptible.Server.all.Stat.Summary.p99;
  check_bool "guard ledger present only when configured" true
    (a.Preemptible.Server.guard = None && b.Preemptible.Server.guard <> None)

let full_guard =
  {
    Guard.disabled with
    Guard.timeout_ns = Some (Units.us 200);
    drop_expired = true;
    shed = Some { Guard.max_queue = 24; codel_target_ns = Units.us 40; codel_interval_ns = Units.us 200 };
    brownout = Some { Guard.default_brownout with Guard.p99_trip_ns = Units.us 300 };
  }

let test_overload_smoke () =
  (* The CI gate: at 2x capacity the guarded server must keep at least
     as much goodput (completions inside the client patience) as the
     naive one — in practice several times more. *)
  let workers = 4 in
  let dist = Workload.Service_dist.workload_b in
  let cap = float_of_int workers *. 1e9 /. Workload.Service_dist.mean_ns dist ~now:0 in
  let rate = 2.0 *. cap in
  let duration_ns = Units.ms 15 in
  let patience = Units.us 200 in
  let goodput guard =
    let cfg =
      Preemptible.Server.default_config ~n_workers:workers
        ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:(Units.us 5))
        ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config)
    in
    let cfg = { cfg with Preemptible.Server.guard; stats_window_ns = Units.ms 2 } in
    let good = ref 0 in
    let probes =
      {
        Preemptible.Server.no_probes with
        Preemptible.Server.on_complete =
          (fun ~now:_ ~latency_ns ~cls:_ -> if latency_ns <= patience then incr good);
      }
    in
    ignore
      (Preemptible.Server.run ~probes cfg
         ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
         ~source:(Workload.Source.of_dist dist ~cls:lc)
         ~duration_ns);
    !good
  in
  let naive = goodput None in
  let guarded = goodput (Some full_guard) in
  check_bool
    (Printf.sprintf "guard goodput (%d) >= naive goodput (%d) at 2x capacity" guarded naive)
    true (guarded >= naive)

let test_shed_grows_with_load () =
  let shed_at rate =
    let r = run_server ~guard:full_guard ~rate ~duration_ns:(Units.ms 10) () in
    (match r.Preemptible.Server.guard with
    | Some g ->
      check_int "result.shed mirrors ledger causes" g.Guard.shed_total
        (g.Guard.shed_queue + g.Guard.shed_delay + g.Guard.shed_rate + g.Guard.shed_brownout)
    | None -> Alcotest.fail "guard report missing");
    r.Preemptible.Server.shed
  in
  let low = shed_at 300_000.0 in
  let high = shed_at 2_000_000.0 in
  check_int "no shedding well under capacity" 0 low;
  check_bool "heavy shedding past capacity" true (high > 1000)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* offered = completed + cancelled + dropped + shed after a drained
   run (warmup 0 so measured counters cover every request), under any
   guard configuration; and shed requests never execute. *)
let conservation_prop =
  QCheck.Test.make ~name:"guard: offered = completed + cancelled + dropped + shed"
    ~count:8
    QCheck.(pair (int_range 3 30) (int_bound 3))
    (fun (rate_dhz, variant) ->
      let rate = float_of_int rate_dhz *. 100_000.0 in
      let guard =
        match variant with
        | 0 -> None
        | 1 -> Some full_guard
        | 2 ->
          Some
            {
              Guard.disabled with
              Guard.timeout_ns = Some (Units.us 150);
              retry = Some { Guard.default_retry with Guard.max_attempts = 3 };
            }
        | _ ->
          Some
            {
              Guard.disabled with
              Guard.global_bucket = Some { Guard.rate_per_sec = 500_000.0; burst = 32.0 };
            }
      in
      let r =
        Preemptible.Server.run ~warmup_ns:0 (server_cfg ?guard ())
          ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
          ~source ~duration_ns:(Units.ms 8)
      in
      let open Preemptible.Server in
      r.offered = r.completed + r.cancelled + r.dropped + r.shed
      && r.goodput <= r.completed
      &&
      match r.guard with
      | None -> r.shed = 0 && r.dropped = 0
      | Some g ->
        (* the ledger's execution-side counts agree: everything admitted
           either completed or was dropped unexecuted *)
        g.Guard.admitted = r.completed + r.cancelled + r.dropped)

(* The retry budget bounds total attempts: offered <= arrivals *
   max_attempts without a budget, and retries <= burst + rate * T with
   one. *)
let retry_bound_prop =
  QCheck.Test.make ~name:"guard: retry budget bounds total attempts" ~count:6
    QCheck.(pair (int_range 8 20) bool)
    (fun (rate_dhz, budgeted) ->
      let rate = float_of_int rate_dhz *. 100_000.0 in
      let duration_ns = Units.ms 8 in
      let budget =
        if budgeted then Some { Guard.rate_per_sec = 10_000.0; burst = 16.0 } else None
      in
      let guard =
        {
          Guard.disabled with
          Guard.timeout_ns = Some (Units.us 100);
          retry =
            Some
              {
                Guard.max_attempts = 4;
                backoff_ns = Units.us 20;
                max_backoff_ns = Units.us 100;
                jitter = 0.5;
                budget;
              };
        }
      in
      let r =
        Preemptible.Server.run ~warmup_ns:0 (server_cfg ~guard ())
          ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
          ~source ~duration_ns
      in
      let open Preemptible.Server in
      match r.guard with
      | None -> false
      | Some g ->
        let originals = r.offered - g.Guard.retries in
        let attempt_cap_ok = r.offered <= 4 * originals in
        let budget_ok =
          match budget with
          | None -> true
          | Some b ->
            float_of_int g.Guard.retries
            <= b.Guard.burst +. (b.Guard.rate_per_sec *. float_of_int duration_ns /. 1e9) +. 1.0
        in
        originals > 0 && attempt_cap_ok && budget_ok)

let suites =
  [
    ( "guard.admission",
      [
        Alcotest.test_case "validate rejects bad configs" `Quick test_validate;
        Alcotest.test_case "queue bound" `Quick test_queue_bound;
        Alcotest.test_case "token bucket refill" `Quick test_token_bucket;
        Alcotest.test_case "per-class bucket" `Quick test_per_class_bucket;
        Alcotest.test_case "codel persistence" `Quick test_codel_persistence;
      ] );
    ( "guard.breaker",
      [
        Alcotest.test_case "transitions + hysteresis" `Quick test_breaker_transitions;
        Alcotest.test_case "timeout shrink" `Quick test_timeout_shrink;
      ] );
    ( "guard.retry",
      [
        Alcotest.test_case "backoff bounds + exhaustion" `Quick test_retry_backoff_bounds;
        Alcotest.test_case "budget denies and refills" `Quick test_retry_budget;
      ] );
    ( "guard.server",
      [
        Alcotest.test_case "guard off is a no-op" `Slow test_guard_off_noop;
        Alcotest.test_case "overload smoke: guard >= naive at 2x" `Slow test_overload_smoke;
        Alcotest.test_case "shed grows with load" `Slow test_shed_grows_with_load;
      ] );
    ( "guard.properties",
      [
        QCheck_alcotest.to_alcotest conservation_prop;
        QCheck_alcotest.to_alcotest retry_bound_prop;
      ] );
  ]
