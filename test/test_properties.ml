(* Model-based and property tests across modules: random operation
   sequences checked against reference models. *)

open Engine

(* ------------------------------------------------------------------ *)
(* Hw.Core against a reference work model                              *)
(* ------------------------------------------------------------------ *)

(* Drive a core with a random schedule of stalls and a possible abort,
   and check the completion time / consumed-work arithmetic against a
   simple reference computation. *)
let core_model_test =
  QCheck.Test.make ~name:"core: stalls shift completion; abort returns progress" ~count:300
    QCheck.(
      triple (int_range 100 10_000)
        (list_of_size (Gen.int_range 0 4) (pair (int_range 1 9_999) (int_range 1 2_000)))
        (option (int_range 1 9_999)))
    (fun (duration, stalls, abort_at) ->
      let sim = Sim.create () in
      let core = Hw.Core.create sim ~id:0 in
      let done_at = ref None in
      Hw.Core.begin_work core ~duration ~on_done:(fun () -> done_at := Some (Sim.now sim));
      (* Apply stalls at distinct times before the (unstalled) end. *)
      let stalls = List.sort_uniq compare stalls in
      List.iter
        (fun (at, d) ->
          ignore
            (Sim.at sim at (fun () -> if Hw.Core.busy core then Hw.Core.stall core d)))
        stalls;
      let aborted = ref None in
      (match abort_at with
      | Some at ->
        ignore
          (Sim.at sim at (fun () ->
               if Hw.Core.busy core then aborted := Some (Hw.Core.abort core)))
      | None -> ());
      Sim.run sim;
      match (!done_at, !aborted) with
      | Some t, None ->
        (* Completion: duration plus every stall that was applied while
           busy. Stalls extend the timeline, so just check bounds. *)
        let total_stall = Hw.Core.stall_ns core in
        t = duration + total_stall
      | None, Some work -> work >= 0 && work <= duration
      | Some _, Some _ -> false (* cannot both complete and abort *)
      | None, None -> false)

(* ------------------------------------------------------------------ *)
(* Uintr invariants                                                    *)
(* ------------------------------------------------------------------ *)

let uintr_pending_sorted =
  QCheck.Test.make ~name:"uintr: pending vectors descending + coalesced" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 20) (int_range 0 63))
    (fun vectors ->
      let sim = Sim.create () in
      let fabric = Hw.Uintr.create sim Hw.Params.default in
      let r = Hw.Uintr.register_receiver fabric ~handler:(fun _ ~vector:_ -> ()) () in
      Hw.Uintr.set_suppressed r true;
      let s = Hw.Uintr.create_sender fabric () in
      List.iter
        (fun v ->
          let idx = Hw.Uintr.connect s r ~vector:v in
          Hw.Uintr.senduipi s idx)
        vectors;
      let pending = Hw.Uintr.pending_vectors r in
      let expected = List.sort_uniq compare vectors |> List.rev in
      pending = expected)

let uintr_delivery_count =
  QCheck.Test.make ~name:"uintr: every distinct posted vector delivered once" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 20) (int_range 0 63))
    (fun vectors ->
      let sim = Sim.create () in
      let fabric = Hw.Uintr.create sim Hw.Params.default in
      let got = ref [] in
      let r =
        Hw.Uintr.register_receiver fabric ~handler:(fun _ ~vector -> got := vector :: !got) ()
      in
      Hw.Uintr.set_suppressed r true;
      let s = Hw.Uintr.create_sender fabric () in
      List.iter
        (fun v ->
          let idx = Hw.Uintr.connect s r ~vector:v in
          Hw.Uintr.senduipi s idx)
        vectors;
      Hw.Uintr.set_suppressed r false;
      Sim.run sim;
      List.sort compare !got = List.sort_uniq compare vectors)

(* ------------------------------------------------------------------ *)
(* Utimer: linear and wheel scans agree under random arm schedules     *)
(* ------------------------------------------------------------------ *)

let utimer_scan_equivalence =
  QCheck.Test.make ~name:"utimer: wheel and linear scans fire the same slots" ~count:60
    QCheck.(list_of_size (Gen.int_range 1 12) (int_range 1_000 200_000))
    (fun deadlines ->
      let run config =
        let sim = Sim.create () in
        let fabric = Hw.Uintr.create sim Hw.Params.default in
        let ut = Utimer.create sim ~uintr:fabric ?config () in
        let fired = ref [] in
        List.iteri
          (fun i d ->
            let r =
              Hw.Uintr.register_receiver fabric
                ~handler:(fun _ ~vector:_ -> fired := i :: !fired)
                ()
            in
            let slot = Utimer.register ut ~receiver:r ~vector:0 in
            Utimer.arm_after slot ~ns:d)
          deadlines;
        Utimer.start ut;
        Sim.run_until sim 500_000;
        Utimer.stop ut;
        Sim.run sim;
        List.sort compare !fired
      in
      let linear = run None in
      let wheel =
        run (Some { Utimer.default_config with scan = Utimer.Wheel; wheel_tick_ns = 500 })
      in
      linear = wheel && List.length linear = List.length deadlines)

(* ------------------------------------------------------------------ *)
(* Pacer: absolute schedule bounds drift                               *)
(* ------------------------------------------------------------------ *)

let pacer_schedule_property =
  QCheck.Test.make ~name:"pacer: k-th send lands within delivery slack of k/rate" ~count:50
    QCheck.(int_range 20 400)
    (fun rate_krps ->
      let sim = Sim.create () in
      let fabric = Hw.Uintr.create sim Hw.Params.default in
      let hwt = Hw.Hwtimer.create sim fabric in
      let sends = ref [] in
      let pacer =
        Preemptible.Pacer.create sim
          ~rate_per_sec:(float_of_int rate_krps *. 1e3)
          ~source:(Preemptible.Pacer.hwtimer_source hwt ~uintr:fabric)
          ~send:(fun ~now -> sends := now :: !sends)
      in
      Preemptible.Pacer.start pacer;
      Sim.run_until sim (Units.ms 5);
      Preemptible.Pacer.stop pacer;
      Sim.run sim;
      let interval = 1e9 /. (float_of_int rate_krps *. 1e3) in
      let slack = Hw.Params.default.Hw.Params.uintr_delivery_ns + 2 in
      List.for_all2
        (fun send k ->
          let ideal = int_of_float (float_of_int k *. interval) in
          send >= ideal && send <= ideal + slack)
        (List.rev !sends)
        (List.init (List.length !sends) (fun i -> i + 1)))

(* ------------------------------------------------------------------ *)
(* Service distributions: empirical vs analytic means                  *)
(* ------------------------------------------------------------------ *)

let dist_mean_property =
  QCheck.Test.make ~name:"service dists: empirical mean tracks analytic mean" ~count:20
    QCheck.(pair (int_range 500 100_000) (float_range 0.001 0.02))
    (fun (short_ns, long_fraction) ->
      let rng = Rng.create 77L in
      let dist =
        Workload.Service_dist.bimodal ~short_ns ~long_ns:(short_ns * 100) ~long_fraction
      in
      let n = 60_000 in
      let acc = ref 0.0 in
      for _ = 1 to n do
        acc := !acc +. float_of_int (Workload.Service_dist.sample dist rng ~now:0)
      done;
      let empirical = !acc /. float_of_int n in
      let analytic = Workload.Service_dist.mean_ns dist ~now:0 in
      abs_float (empirical -. analytic) /. analytic < 0.08)

(* ------------------------------------------------------------------ *)
(* Fault injection + recovery                                          *)
(* ------------------------------------------------------------------ *)

(* Under a random schedule of delivery faults (loss, delay, stuck SN,
   lost slot store) and with the watchdog on, every armed deadline that
   is never disarmed fires EXACTLY once — the retry path must neither
   lose the interrupt nor double-deliver it (PIR coalescing absorbs a
   retry racing a delayed original).  The only allowed exception is a
   slot that exhausted its (generous) retry budget, which must then be
   reported Degraded rather than silently dropped. *)
let fault_recovery_exactly_once =
  QCheck.Test.make ~name:"fault: armed deadline fires exactly once under recovery"
    ~count:150
    QCheck.(
      quad (int_range 0 40 (* drop% *)) (int_range 0 40 (* delay% *))
        (int_range 0 20 (* slot-lost% *)) (int_bound 1000 (* fault seed *)))
    (fun (drop, delay, lost, seed) ->
      let sim = Sim.create () in
      let f = Fault.create ~seed:(Int64.of_int seed) () in
      Fault.set f "uipi.drop" (Fault.Probability (float_of_int drop /. 100.0));
      Fault.set f "uipi.delay" (Fault.Probability (float_of_int delay /. 100.0));
      Fault.set f "utimer.slot_lost" (Fault.Probability (float_of_int lost /. 100.0));
      let fabric = Hw.Uintr.create ~faults:f sim Hw.Params.default in
      let ut =
        Utimer.create ~faults:f
          ~watchdog:{ Utimer.default_watchdog with Utimer.wd_max_retries = 12 }
          sim ~uintr:fabric ()
      in
      let hits = ref 0 in
      let r =
        Hw.Uintr.register_receiver fabric ~handler:(fun _ ~vector:_ -> incr hits) ()
      in
      let slot = Utimer.register ut ~receiver:r ~vector:0 in
      Utimer.start ut;
      Utimer.arm_after slot ~ns:(1_000 + (seed mod 9_000));
      Sim.run_until sim (Units.ms 2);
      Utimer.stop ut;
      Sim.run sim;
      if Utimer.slot_degraded slot then !hits = 0 && Utimer.health ut = Utimer.Degraded
      else !hits = 1 && Utimer.fired ut = 1)

(* UPID invariants: whatever interleaving of posts (some with the
   notification faulted away), suppression windows and blocked phases a
   receiver lives through, once SN is repaired, the receiver runs, and a
   notification is re-issued, no posted vector stays parked in the PIR —
   and coalescing only ever reduces the delivery count. *)
let fault_pir_never_leaks =
  QCheck.Test.make ~name:"fault: repaired receiver leaks no posted vector" ~count:200
    QCheck.(
      list_of_size (Gen.int_range 1 30)
        (triple (int_bound 7 (* vector *)) bool (* lose notification *)
           (int_bound 2 (* 0 nothing, 1 toggle SN, 2 toggle state *))))
    (fun ops ->
      let sim = Sim.create () in
      let delivered = ref 0 in
      let fabric = Hw.Uintr.create sim Hw.Params.default in
      let r =
        Hw.Uintr.register_receiver fabric ~handler:(fun _ ~vector:_ -> incr delivered) ()
      in
      List.iteri
        (fun i (vector, lose, knob) ->
          ignore
            (Sim.at sim ((i + 1) * 500) (fun () ->
                 (match knob with
                 | 1 -> Hw.Uintr.set_suppressed r (not (Hw.Uintr.suppressed r))
                 | 2 ->
                   Hw.Uintr.set_state r
                     (match Hw.Uintr.state r with
                     | Hw.Uintr.Running -> Hw.Uintr.Blocked
                     | Hw.Uintr.Blocked -> Hw.Uintr.Running)
                 | _ -> ());
                 Hw.Uintr.post ~lose_notify:lose r ~vector)))
        ops;
      Sim.run sim;
      (* Recovery actions: unblock, clear SN, re-notify pending bits. *)
      Hw.Uintr.set_state r Hw.Uintr.Running;
      Hw.Uintr.repair_receiver r;
      (match Hw.Uintr.pending_vectors r with
      | [] -> ()
      | _ -> Hw.Uintr.notify r);
      Sim.run sim;
      Hw.Uintr.pending_vectors r = []
      && !delivered <= List.length ops
      && !delivered = Hw.Uintr.deliveries r)

(* ------------------------------------------------------------------ *)
(* Goruntime baseline sanity                                           *)
(* ------------------------------------------------------------------ *)

let test_goruntime_ms_granularity_useless () =
  let arrival = Workload.Arrival.poisson ~rate_per_sec:600_000.0 in
  let source =
    Workload.Source.of_dist Workload.Service_dist.workload_a1
      ~cls:Workload.Request.Latency_critical
  in
  let go =
    Baselines.Goruntime.run
      (Baselines.Goruntime.default_config ~n_workers:5)
      ~arrival ~source ~duration_ns:(Units.ms 50)
  in
  let nop =
    Baselines.Nopreempt.run
      (Baselines.Nopreempt.default_config ~n_workers:5)
      ~arrival ~source ~duration_ns:(Units.ms 50)
  in
  (* A 10ms slice never fires on <=500us requests: behaves like
     run-to-completion (within noise), far from LP territory. *)
  Alcotest.(check int) "no preemptions at 10ms slices" 0
    go.Preemptible.Server.preemptions;
  Alcotest.(check bool) "HoL tail like run-to-completion" true
    (go.Preemptible.Server.all.Stat.Summary.p99
    > 0.5 *. nop.Preemptible.Server.all.Stat.Summary.p99)

let suites =
  [
    ( "properties",
      [
        QCheck_alcotest.to_alcotest core_model_test;
        QCheck_alcotest.to_alcotest uintr_pending_sorted;
        QCheck_alcotest.to_alcotest uintr_delivery_count;
        QCheck_alcotest.to_alcotest utimer_scan_equivalence;
        QCheck_alcotest.to_alcotest pacer_schedule_property;
        QCheck_alcotest.to_alcotest dist_mean_property;
        QCheck_alcotest.to_alcotest fault_recovery_exactly_once;
        QCheck_alcotest.to_alcotest fault_pir_never_leaks;
        Alcotest.test_case "goruntime 10ms useless at us-scale" `Slow
          test_goruntime_ms_granularity_useless;
      ] );
  ]
