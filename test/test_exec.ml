(* The parallel sweep engine: pool semantics (ordering, failure
   propagation, stats), the determinism contract (sweep at any worker
   count = List.map), merge associativity of the statistics the sweeps
   fold, and the seeding helper. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Pool semantics                                                      *)
(* ------------------------------------------------------------------ *)

let test_run_all_order () =
  (* Adversarial durations: early tasks are the slowest, so with >1
     worker they complete out of submission order — results must come
     back in submission order regardless. *)
  List.iter
    (fun jobs ->
      let pool = Exec.Pool.create ~jobs () in
      let n = 20 in
      let tasks =
        List.init n (fun i () ->
            let spin = (n - i) * 2000 in
            let acc = ref 0 in
            for k = 1 to spin do
              acc := (!acc + k) land 0xffff
            done;
            ignore !acc;
            i * i)
      in
      let results = Exec.Pool.run_all pool tasks in
      Exec.Pool.shutdown pool;
      Alcotest.(check (list int))
        (Printf.sprintf "submission order at jobs=%d" jobs)
        (List.init n (fun i -> i * i))
        results)
    [ 1; 2; 4 ]

exception Boom of int

let test_failure_propagates () =
  List.iter
    (fun jobs ->
      let pool = Exec.Pool.create ~jobs () in
      let p_ok = Exec.Pool.submit pool (fun () -> 1) in
      let p_bad = Exec.Pool.submit pool (fun () -> raise (Boom 7)) in
      let p_ok2 = Exec.Pool.submit pool (fun () -> 2) in
      check_int "before failure" 1 (Exec.Pool.await p_ok);
      (match Exec.Pool.await p_bad with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 7 -> ());
      (* One task failing must not poison the rest of the batch. *)
      check_int "after failure" 2 (Exec.Pool.await p_ok2);
      let s = Exec.Pool.stats pool in
      Exec.Pool.shutdown pool;
      check_int "failed count" 1 s.Exec.Pool.failed;
      check_int "completed count" 2 s.Exec.Pool.completed)
    [ 1; 2 ]

let test_submit_after_shutdown () =
  let pool = Exec.Pool.create ~jobs:2 () in
  Exec.Pool.shutdown pool;
  match Exec.Pool.submit pool (fun () -> 0) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_stats_accounting () =
  let pool = Exec.Pool.create ~jobs:3 () in
  let n = 30 in
  let _ = Exec.Pool.run_all pool (List.init n (fun i () -> i)) in
  let s = Exec.Pool.stats pool in
  Exec.Pool.shutdown pool;
  check_int "jobs" 3 s.Exec.Pool.jobs;
  check_int "submitted" n s.Exec.Pool.submitted;
  check_int "completed" n s.Exec.Pool.completed;
  check_int "failed" 0 s.Exec.Pool.failed;
  check_int "per-worker totals"
    n
    (Array.fold_left ( + ) 0 s.Exec.Pool.tasks_per_worker);
  check_bool "occupancy within worker count" true
    (s.Exec.Pool.max_occupancy >= 1 && s.Exec.Pool.max_occupancy <= 3)

let test_sequential_occupancy () =
  (* jobs=1 runs inline: never more than one task in flight. *)
  let pool = Exec.Pool.create ~jobs:1 () in
  let _ = Exec.Pool.run_all pool (List.init 10 (fun i () -> i)) in
  let s = Exec.Pool.stats pool in
  Exec.Pool.shutdown pool;
  check_int "peak occupancy" 1 s.Exec.Pool.max_occupancy

(* ------------------------------------------------------------------ *)
(* Trace probes                                                        *)
(* ------------------------------------------------------------------ *)

let test_trace_spans_balance () =
  let now = ref 0 in
  let trace =
    Obs.Trace.create
      ~config:{ Obs.Trace.capacity = 1024; categories = [ Obs.Trace.Exec ] }
      ~clock:(fun () -> incr now; !now)
      ()
  in
  let pool = Exec.Pool.create ~trace ~label:"unit" ~jobs:2 () in
  let n = 8 in
  let _ = Exec.Pool.run_all pool (List.init n (fun i () -> i)) in
  Exec.Pool.shutdown pool;
  let begins = ref 0 and ends = ref 0 and counters = ref 0 in
  Obs.Trace.iter trace (fun ev ->
      match ev.Obs.Trace.kind with
      | Obs.Trace.Span_begin -> incr begins
      | Obs.Trace.Span_end -> incr ends
      | Obs.Trace.Counter -> incr counters
      | _ -> ());
  check_int "span begins" n !begins;
  check_int "span ends" n !ends;
  (* occupancy counter on both edges of every task *)
  check_int "occupancy counters" (2 * n) !counters

(* ------------------------------------------------------------------ *)
(* Sweep determinism                                                   *)
(* ------------------------------------------------------------------ *)

(* A miniature simulation: deterministic function of the input alone,
   but with enough RNG churn to notice shared state. *)
let mini_sim seed =
  let rng = Engine.Rng.create seed in
  let acc = ref 0L in
  for _ = 1 to 1000 do
    acc := Int64.add !acc (Engine.Rng.bits64 rng)
  done;
  !acc

let test_sweep_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Exec.Sweep.run ~jobs:4 (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 9 ] (Exec.Sweep.run ~jobs:4 (fun x -> x * x) [ 3 ])

let qcheck_sweep_is_map =
  QCheck.Test.make ~count:30 ~name:"Sweep.run ~jobs:n f xs = List.map f xs"
    QCheck.(pair (int_range 1 8) (small_list int64))
    (fun (jobs, seeds) ->
      let f = mini_sim in
      Exec.Sweep.run ~jobs f seeds = List.map f seeds)

let test_sweep_real_sim_parallel_eq_sequential () =
  (* The actual acceptance property on a real (small) server run: the
     full simulation pipeline, not just a toy RNG loop. *)
  let run_point rate =
    let cfg =
      Preemptible.Server.default_config ~n_workers:2
        ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:5_000)
        ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config)
    in
    let r =
      Preemptible.Server.run cfg
        ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
        ~source:
          (Workload.Source.of_dist Workload.Service_dist.workload_b
             ~cls:Workload.Request.Latency_critical)
        ~duration_ns:2_000_000
    in
    (r.Preemptible.Server.completed, r.Preemptible.Server.all.Stat.Summary.p99)
  in
  let rates = [ 100_000.0; 200_000.0; 300_000.0; 400_000.0 ] in
  let seq = Exec.Sweep.run ~jobs:1 run_point rates in
  let par = Exec.Sweep.run ~jobs:4 run_point rates in
  check_bool "parallel = sequential (bit-identical)" true (seq = par)

(* ------------------------------------------------------------------ *)
(* Merge combinators                                                   *)
(* ------------------------------------------------------------------ *)

let summary_of values =
  let s = Stat.Summary.create () in
  List.iter (Stat.Summary.record s) values;
  s

let qcheck_summary_merge_assoc =
  QCheck.Test.make ~count:50 ~name:"Summary.merge_into is associative"
    QCheck.(
      triple
        (small_list (float_range 1.0 1e6))
        (small_list (float_range 1.0 1e6))
        (small_list (float_range 1.0 1e6)))
    (fun (a, b, c) ->
      QCheck.assume (a <> [] || b <> [] || c <> []);
      (* (a <- b) <- c versus a' <- (b' <- c') *)
      let left =
        let sa = summary_of a and sb = summary_of b and sc = summary_of c in
        Stat.Summary.merge_into ~dst:sa ~src:sb;
        Stat.Summary.merge_into ~dst:sa ~src:sc;
        Stat.Summary.report sa
      in
      let right =
        let sa = summary_of a and sb = summary_of b and sc = summary_of c in
        Stat.Summary.merge_into ~dst:sb ~src:sc;
        Stat.Summary.merge_into ~dst:sa ~src:sb;
        Stat.Summary.report sa
      in
      left.Stat.Summary.count = right.Stat.Summary.count
      && left.Stat.Summary.p50 = right.Stat.Summary.p50
      && left.Stat.Summary.p99 = right.Stat.Summary.p99
      && Float.abs (left.Stat.Summary.mean -. right.Stat.Summary.mean)
         <= 1e-9 *. Float.abs left.Stat.Summary.mean)

let test_sweep_summaries () =
  let chunks = [ [ 1.0; 2.0 ]; [ 3.0 ]; [ 4.0; 5.0; 6.0 ] ] in
  let merged = Exec.Sweep.summaries ~jobs:2 summary_of chunks in
  let direct = summary_of [ 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 ] in
  check_int "count" (Stat.Summary.count direct) (Stat.Summary.count merged);
  check_bool "same p50" true
    ((Stat.Summary.report merged).Stat.Summary.p50
    = (Stat.Summary.report direct).Stat.Summary.p50)

let test_timeseries_merge () =
  let mk values =
    let ts = Stat.Timeseries.create ~window_ns:100 in
    List.iter (fun (t, v) -> Stat.Timeseries.record ts ~time:t v) values;
    ts
  in
  let merged =
    Exec.Sweep.timeseries ~jobs:2 mk
      [ [ (10, 1.0); (250, 3.0) ]; [ (20, 5.0); (110, 7.0) ] ]
  in
  let direct = mk [ (10, 1.0); (250, 3.0); (20, 5.0); (110, 7.0) ] in
  check_bool "same points" true
    (Stat.Timeseries.points merged = Stat.Timeseries.points direct);
  (* window mismatch must be rejected, not silently misaligned *)
  let a = Stat.Timeseries.create ~window_ns:100 in
  let b = Stat.Timeseries.create ~window_ns:200 in
  match Stat.Timeseries.merge_into ~dst:a ~src:b with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Seeding / env helpers                                               *)
(* ------------------------------------------------------------------ *)

let test_task_seed_deterministic () =
  let s1 = Exec.Sweep.seeds ~seed:42L 16 in
  let s2 = Exec.Sweep.seeds ~seed:42L 16 in
  check_bool "same seed, same streams" true (s1 = s2);
  let distinct = List.sort_uniq compare s1 in
  check_int "all distinct" 16 (List.length distinct);
  let other = Exec.Sweep.seeds ~seed:43L 16 in
  check_bool "different base seed diverges" true (s1 <> other)

let test_getenv_nonempty () =
  Unix.putenv "LP_TEST_ENV_X" "";
  check_bool "empty is unset" true (Exec.Env.getenv_nonempty "LP_TEST_ENV_X" = None);
  Unix.putenv "LP_TEST_ENV_X" "v";
  check_bool "set" true (Exec.Env.getenv_nonempty "LP_TEST_ENV_X" = Some "v")

let suites =
  [
    ( "exec.pool",
      [
        Alcotest.test_case "results in submission order" `Quick test_run_all_order;
        Alcotest.test_case "failure propagates to awaiter" `Quick test_failure_propagates;
        Alcotest.test_case "submit after shutdown rejected" `Quick test_submit_after_shutdown;
        Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
        Alcotest.test_case "sequential peak occupancy = 1" `Quick test_sequential_occupancy;
        Alcotest.test_case "trace spans balance" `Quick test_trace_spans_balance;
      ] );
    ( "exec.sweep",
      [
        Alcotest.test_case "empty and singleton" `Quick test_sweep_empty_and_singleton;
        QCheck_alcotest.to_alcotest qcheck_sweep_is_map;
        Alcotest.test_case "server sweep: parallel = sequential" `Quick
          test_sweep_real_sim_parallel_eq_sequential;
        Alcotest.test_case "summaries fold" `Quick test_sweep_summaries;
        Alcotest.test_case "timeseries merge" `Quick test_timeseries_merge;
      ] );
    ( "exec.env",
      [
        QCheck_alcotest.to_alcotest qcheck_summary_merge_assoc;
        Alcotest.test_case "task seeds deterministic" `Quick test_task_seed_deterministic;
        Alcotest.test_case "getenv_nonempty" `Quick test_getenv_nonempty;
      ] );
  ]
