(* Tests for lib/cluster: fleet conservation, load-balancer quality
   ordering against the pooled oracle, work stealing, heterogeneous
   fleets, validation, and sweep determinism. *)

open Engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let lc_source dist = Workload.Source.of_dist dist ~cls:Workload.Request.Latency_critical

let member ~workers =
  Preemptible.Server.default_config ~n_workers:workers
    ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:(Units.us 5))
    ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config)

(* Offered rate as a fraction of total fleet capacity. *)
let fleet_rate ~n ~workers ~load dist =
  load *. float_of_int (n * workers) *. 1e9 /. Workload.Service_dist.mean_ns dist ~now:0

let run_fleet ?steal ?tick_ns ?(lb = Cluster.Random) ?(n = 4) ?(workers = 2)
    ?(seed = 1L) ?(load = 0.6) ?(duration = Units.ms 20) ?(warmup = 0) () =
  let dist = Workload.Service_dist.workload_b in
  let cfg =
    { (Cluster.uniform ~n ~lb (member ~workers)) with Cluster.steal; seed; tick_ns }
  in
  Cluster.run ~warmup_ns:warmup cfg
    ~arrival:(Workload.Arrival.poisson ~rate_per_sec:(fleet_rate ~n ~workers ~load dist))
    ~source:(lc_source dist) ~duration_ns:duration

let conserved (f : Cluster.fleet) =
  f.Cluster.offered
  = f.Cluster.completed + f.Cluster.cancelled + f.Cluster.dropped + f.Cluster.shed

(* ------------------------------------------------------------------ *)
(* Fleet basics                                                        *)
(* ------------------------------------------------------------------ *)

let test_fleet_basics () =
  let r = run_fleet ~lb:Cluster.Random () in
  let f = r.Cluster.fleet in
  check_int "per-server results" 4 (Array.length r.Cluster.per_server);
  check_bool "work arrived" true (f.Cluster.offered > 1_000);
  check_bool "conservation" true (conserved f);
  check_int "no guard, everything completes" f.Cluster.offered f.Cluster.completed;
  check_int "goodput = completed without timeouts" f.Cluster.completed f.Cluster.goodput;
  check_int "dispatch decisions = offered (warmup 0, no retries)"
    f.Cluster.offered
    (Array.fold_left ( + ) 0 f.Cluster.dispatched);
  check_bool "imbalance at least 1" true (f.Cluster.imbalance >= 1.0);
  check_bool "quantiles ordered" true
    (f.Cluster.p50_us <= f.Cluster.p90_us && f.Cluster.p90_us <= f.Cluster.p99_us);
  (* fleet counters are the per-server sums *)
  let sum field = Array.fold_left (fun a r -> a + field r) 0 r.Cluster.per_server in
  check_int "completed is the per-server sum"
    (sum (fun r -> r.Preemptible.Server.completed))
    f.Cluster.completed

let test_round_robin_even () =
  let r = run_fleet ~lb:Cluster.Round_robin () in
  let d = r.Cluster.fleet.Cluster.dispatched in
  let lo = Array.fold_left min max_int d and hi = Array.fold_left max 0 d in
  check_bool "rr spread within 1" true (hi - lo <= 1);
  check_bool "rr imbalance ~1" true (r.Cluster.fleet.Cluster.imbalance < 1.01)

(* The merged fleet sketch must be exactly the concatenation of the
   member streams: counts add up, and the fleet mean matches the
   completion-weighted member mean. *)
let test_sketch_merge_exact () =
  let r = run_fleet ~lb:Cluster.Least_loaded () in
  let f = r.Cluster.fleet in
  check_int "sketch count = fleet completed" f.Cluster.completed
    (Obs.Sketch.count r.Cluster.sketch);
  let member_sum =
    Array.fold_left
      (fun acc (s : Preemptible.Server.result) ->
        acc +. (s.Preemptible.Server.all.Stat.Summary.mean *. float_of_int s.Preemptible.Server.completed))
      0.0 r.Cluster.per_server
  in
  let fleet_mean_ns = f.Cluster.mean_us *. 1e3 in
  let expect = member_sum /. float_of_int f.Cluster.completed in
  check_bool "fleet mean = weighted member mean" true
    (Float.abs (fleet_mean_ns -. expect) /. expect < 0.01)

let test_telemetry_ticks () =
  let ticks = ref 0 and last_completed = ref 0 and monotone = ref true in
  let probes =
    {
      Cluster.no_probes with
      Cluster.on_tick =
        (fun tk ->
          incr ticks;
          if tk.Cluster.ck_completed < !last_completed then monotone := false;
          last_completed := tk.Cluster.ck_completed;
          if Array.length tk.Cluster.ck_inflight <> 4 then monotone := false);
    }
  in
  let dist = Workload.Service_dist.workload_b in
  let cfg =
    {
      (Cluster.uniform ~n:4 ~lb:Cluster.Power_of_two (member ~workers:2)) with
      Cluster.tick_ns = Some (Units.ms 1);
      seed = 7L;
    }
  in
  let _ =
    Cluster.run ~probes cfg
      ~arrival:
        (Workload.Arrival.poisson
           ~rate_per_sec:(fleet_rate ~n:4 ~workers:2 ~load:0.5 dist))
      ~source:(lc_source dist) ~duration_ns:(Units.ms 20)
  in
  check_bool "ticks fired" true (!ticks >= 15);
  check_bool "tick frames consistent" true !monotone

(* ------------------------------------------------------------------ *)
(* Model: pooled oracle <= JSQ <= Random                               *)
(* ------------------------------------------------------------------ *)

let test_jsq_vs_oracle () =
  let dist = Workload.Service_dist.workload_b in
  let n = 3 and workers = 2 and load = 0.75 in
  let rate = fleet_rate ~n ~workers ~load dist in
  let duration = Units.ms 40 in
  (* the pooled oracle: one server with all n*workers cores sharing a
     queue — a lower bound no dispatch policy over partitions can beat *)
  let pooled =
    Preemptible.Server.run
      { (member ~workers:(n * workers)) with Preemptible.Server.seed = 5L }
      ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
      ~source:(lc_source dist) ~duration_ns:duration
  in
  let fleet lb = (run_fleet ~lb ~n ~workers ~seed:5L ~load ~duration ()).Cluster.fleet in
  let jsq = fleet Cluster.Least_loaded and random = fleet Cluster.Random in
  let pooled_mean_us = pooled.Preemptible.Server.all.Stat.Summary.mean /. 1e3 in
  check_bool "pooled oracle <= jsq (mean)" true
    (pooled_mean_us <= jsq.Cluster.mean_us *. 1.05);
  check_bool "jsq <= random (mean)" true (jsq.Cluster.mean_us < random.Cluster.mean_us);
  check_bool "jsq <= random (p99)" true (jsq.Cluster.p99_us < random.Cluster.p99_us)

let test_p2c_between () =
  (* p2c captures most of JSQ's benefit over random *)
  let fleet lb = (run_fleet ~lb ~n:8 ~seed:11L ~load:0.8 ~duration:(Units.ms 30) ()).Cluster.fleet in
  let jsq = fleet Cluster.Least_loaded
  and p2c = fleet Cluster.Power_of_two
  and random = fleet Cluster.Random in
  check_bool "p2c beats random (p99)" true (p2c.Cluster.p99_us < random.Cluster.p99_us);
  check_bool "jsq no worse than p2c x1.2 (mean)" true
    (jsq.Cluster.mean_us <= p2c.Cluster.mean_us *. 1.2)

(* ------------------------------------------------------------------ *)
(* Work stealing and heterogeneous fleets                              *)
(* ------------------------------------------------------------------ *)

(* A deliberately bad balancer over a heterogeneous fleet: round-robin
   sends the 1-worker member as much traffic as the 4-worker ones, so
   its queue grows and stealing has something to move. *)
let hetero_cfg ~steal ~seed =
  let members = [| member ~workers:1; member ~workers:4; member ~workers:4 |] in
  {
    Cluster.members;
    lb = Cluster.Round_robin;
    steal;
    seed;
    max_events = 400_000_000;
    tick_ns = None;
  }

let run_hetero ~steal =
  let dist = Workload.Service_dist.workload_b in
  let rate = 0.75 *. 9.0 *. 1e9 /. Workload.Service_dist.mean_ns dist ~now:0 in
  Cluster.run (hetero_cfg ~steal ~seed:3L)
    ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
    ~source:(lc_source dist) ~duration_ns:(Units.ms 30)

let test_stealing_rebalances () =
  let without = run_hetero ~steal:None in
  let with_ = run_hetero ~steal:(Some Cluster.default_steal) in
  check_bool "no stealing when disabled" true (without.Cluster.fleet.Cluster.stolen = 0);
  check_bool "stealing happened" true (with_.Cluster.fleet.Cluster.stolen > 0);
  check_bool "conservation with stealing" true (conserved with_.Cluster.fleet);
  check_bool "stealing improves fleet p99" true
    (with_.Cluster.fleet.Cluster.p99_us < without.Cluster.fleet.Cluster.p99_us)

let test_hetero_jsq_skews () =
  (* JSQ over the same lopsided fleet routes with capacity: the big
     members take more work than the 1-worker one *)
  let dist = Workload.Service_dist.workload_b in
  let rate = 0.7 *. 9.0 *. 1e9 /. Workload.Service_dist.mean_ns dist ~now:0 in
  let cfg = { (hetero_cfg ~steal:None ~seed:9L) with Cluster.lb = Cluster.Least_loaded } in
  let r =
    Cluster.run cfg
      ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
      ~source:(lc_source dist) ~duration_ns:(Units.ms 30)
  in
  let d = r.Cluster.fleet.Cluster.dispatched in
  check_bool "jsq respects capacity" true (d.(1) > d.(0) && d.(2) > d.(0));
  check_bool "conservation (hetero)" true (conserved r.Cluster.fleet)

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let test_validation () =
  let raises name f =
    check_bool name true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  raises "uniform n=0" (fun () -> Cluster.uniform ~n:0 ~lb:Cluster.Random (member ~workers:1));
  let dist = Workload.Service_dist.workload_b in
  let go cfg =
    Cluster.run cfg
      ~arrival:(Workload.Arrival.poisson ~rate_per_sec:1000.0)
      ~source:(lc_source dist) ~duration_ns:(Units.ms 1)
  in
  let base = Cluster.uniform ~n:2 ~lb:Cluster.Random (member ~workers:1) in
  raises "empty fleet" (fun () -> go { base with Cluster.members = [||] });
  raises "bad steal interval" (fun () ->
      go { base with Cluster.steal = Some { Cluster.default_steal with Cluster.interval_ns = 0 } });
  raises "bad steal batch" (fun () ->
      go { base with Cluster.steal = Some { Cluster.default_steal with Cluster.batch = 0 } });
  raises "bad tick" (fun () -> go { base with Cluster.tick_ns = Some 0 });
  let retry_member =
    {
      (member ~workers:1) with
      Preemptible.Server.guard =
        Some
          {
            Guard.disabled with
            Guard.timeout_ns = Some (Units.ms 1);
            retry = Some Guard.default_retry;
          };
    }
  in
  raises "stealing + retry guard" (fun () ->
      go
        {
          base with
          Cluster.members = [| retry_member; retry_member |];
          steal = Some Cluster.default_steal;
        });
  check_bool "lb_of_string roundtrip" true
    (List.for_all
       (fun lb -> Cluster.lb_of_string (Cluster.lb_name lb) = Ok lb)
       Cluster.all_lbs);
  check_bool "lb_of_string rejects junk" true
    (match Cluster.lb_of_string "bogus" with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_conservation =
  QCheck.Test.make ~count:12 ~name:"fleet conservation: offered = sum of outcomes"
    QCheck.(triple (int_range 1 5) (int_range 0 3) small_int)
    (fun (n, lb_i, seed) ->
      let lb = List.nth Cluster.all_lbs lb_i in
      let steal = if seed mod 2 = 0 then Some Cluster.default_steal else None in
      let r =
        run_fleet ~lb ?steal ~n ~workers:2 ~seed:(Int64.of_int (seed + 1)) ~load:0.7
          ~duration:(Units.ms 10) ()
      in
      conserved r.Cluster.fleet
      && r.Cluster.fleet.Cluster.offered
         = Array.fold_left
             (fun a (s : Preemptible.Server.result) -> a + s.Preemptible.Server.offered)
             0 r.Cluster.per_server)

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)
(* ------------------------------------------------------------------ *)

let fingerprint (r : Cluster.result) =
  let f = r.Cluster.fleet in
  Printf.sprintf "%d/%d/%d/%d/%d/%d/%.3f/%.3f/%d"
    f.Cluster.offered f.Cluster.completed f.Cluster.cancelled f.Cluster.dropped
    f.Cluster.shed f.Cluster.stolen f.Cluster.p50_us f.Cluster.p99_us f.Cluster.sim_events

let test_sweep_determinism () =
  let point (seed, lb_i) =
    let lb = List.nth Cluster.all_lbs lb_i in
    fingerprint
      (run_fleet ~lb ~steal:Cluster.default_steal ~n:3 ~seed ~load:0.8
         ~duration:(Units.ms 10) ())
  in
  let points = [ (1L, 0); (2L, 1); (3L, 2); (4L, 3); (5L, 2); (6L, 3) ] in
  let seq = Exec.Sweep.run ~jobs:1 point points in
  let par = Exec.Sweep.run ~jobs:8 point points in
  Alcotest.(check (list string)) "jobs 1 = jobs 8" seq par;
  (* and re-running the same seed is bit-identical *)
  check_bool "repeatable" true (point (1L, 0) = point (1L, 0))

let suites =
  [
    ( "cluster.fleet",
      [
        Alcotest.test_case "basics and conservation" `Quick test_fleet_basics;
        Alcotest.test_case "round-robin spreads evenly" `Quick test_round_robin_even;
        Alcotest.test_case "sketch merge is exact" `Quick test_sketch_merge_exact;
        Alcotest.test_case "telemetry ticks" `Quick test_telemetry_ticks;
      ] );
    ( "cluster.model",
      [
        Alcotest.test_case "pooled oracle <= jsq <= random" `Quick test_jsq_vs_oracle;
        Alcotest.test_case "p2c close to jsq, beats random" `Quick test_p2c_between;
      ] );
    ( "cluster.steal",
      [
        Alcotest.test_case "stealing rebalances a lopsided fleet" `Quick
          test_stealing_rebalances;
        Alcotest.test_case "jsq respects heterogeneous capacity" `Quick test_hetero_jsq_skews;
      ] );
    ("cluster.validation", [ Alcotest.test_case "rejects bad configs" `Quick test_validation ]);
    ("cluster.properties", [ QCheck_alcotest.to_alcotest prop_conservation ]);
    ( "cluster.determinism",
      [ Alcotest.test_case "sweep jobs 1 = jobs 8" `Quick test_sweep_determinism ] );
  ]
