(* Tests for the Chase-Lev SPMC work-stealing deque: sequential
   LIFO/FIFO oracles, the grow path, and qcheck model tests that run
   real concurrent interleavings over 2-4 domains and check the union
   of everything popped/stolen against the pushed multiset (no element
   lost, none duplicated). *)

module D = Fiber_rt.Spmc_deque

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Sequential oracles                                                  *)
(* ------------------------------------------------------------------ *)

let test_owner_lifo () =
  let q = D.create () in
  for i = 1 to 5 do
    D.push q i
  done;
  for i = 5 downto 1 do
    check_int "lifo pop" i (Option.get (D.pop q))
  done;
  check_bool "empty" true (D.pop q = None)

let test_steal_fifo () =
  let q = D.create () in
  for i = 1 to 5 do
    D.push q i
  done;
  for i = 1 to 5 do
    check_int "fifo steal" i (Option.get (D.steal q))
  done;
  check_bool "empty" true (D.steal q = None)

let test_grow () =
  let q = D.create () in
  let n = 1000 in
  check_int "initial capacity" 16 (D.capacity q);
  for i = 1 to n do
    D.push q i
  done;
  check_bool "grew" true (D.capacity q >= n);
  check_int "size" n (D.size q);
  (* Pop half (LIFO), steal the rest (FIFO): both ends stay coherent
     across the grow. *)
  for i = n downto (n / 2) + 1 do
    check_int "pop after grow" i (Option.get (D.pop q))
  done;
  for i = 1 to n / 2 do
    check_int "steal after grow" i (Option.get (D.steal q))
  done;
  check_bool "empty" true (D.is_empty q)

(* Interleaved push/pop against a list model (single domain). *)
let test_sequential_model =
  QCheck.Test.make ~name:"spmc: sequential push/pop matches list model" ~count:200
    QCheck.(list (option small_nat))
    (fun ops ->
      let q = D.create () in
      let model = ref [] in
      List.iter
        (function
          | Some x ->
            D.push q x;
            model := x :: !model
          | None -> (
            let got = D.pop q in
            match !model with
            | [] -> if got <> None then QCheck.Test.fail_report "pop on empty returned"
            | x :: rest ->
              model := rest;
              if got <> Some x then QCheck.Test.fail_report "pop broke LIFO order"))
        ops;
      List.length !model = D.size q)

(* ------------------------------------------------------------------ *)
(* Concurrent multiset oracle                                          *)
(* ------------------------------------------------------------------ *)

let sorted l = List.sort compare l

(* Owner pushes [n] items interleaved with [pops] pops; [thieves]
   domains steal until the owner signals done and the deque drains.
   Every element must surface exactly once across pops + steals +
   leftovers. *)
let concurrent_run ~n ~pops ~thieves =
  let q = D.create () in
  let done_ = Atomic.make false in
  let thief () =
    let got = ref [] in
    let rec loop misses =
      match D.steal q with
      | Some x ->
        got := x :: !got;
        loop 0
      | None ->
        if Atomic.get done_ && D.is_empty q && misses > 100 then !got
        else begin
          Domain.cpu_relax ();
          loop (misses + 1)
        end
    in
    loop 0
  in
  let doms = List.init thieves (fun _ -> Domain.spawn thief) in
  let popped = ref [] in
  for i = 0 to n - 1 do
    D.push q i;
    if i mod 3 = 2 && !popped |> List.length < pops then
      match D.pop q with Some x -> popped := x :: !popped | None -> ()
  done;
  Atomic.set done_ true;
  let stolen = List.concat_map Domain.join doms in
  (* Drain what neither side took. *)
  let rec drain acc = match D.pop q with Some x -> drain (x :: acc) | None -> acc in
  let leftover = drain [] in
  sorted (!popped @ stolen @ leftover)

let test_concurrent_multiset =
  QCheck.Test.make ~name:"spmc: concurrent push/pop/steal loses and duplicates nothing"
    ~count:30
    QCheck.(pair (int_range 50 400) (int_range 1 3))
    (fun (n, thieves) ->
      let all = concurrent_run ~n ~pops:(n / 4) ~thieves in
      all = List.init n Fun.id)

let test_concurrent_last_element_race () =
  (* Hammer the pop-vs-steal race on the last element: 1 item, 3
     thieves, repeated.  Exactly one side must win each round. *)
  for _ = 1 to 200 do
    let q = D.create () in
    D.push q 42;
    let doms = List.init 3 (fun _ -> Domain.spawn (fun () -> D.steal q)) in
    let mine = D.pop q in
    let theirs = List.filter_map Fun.id (List.map Domain.join doms) in
    let total = (if mine = None then 0 else 1) + List.length theirs in
    check_int "exactly one winner" 1 total
  done

let suites =
  [
    ( "spmc_deque",
      [
        Alcotest.test_case "owner pop is LIFO" `Quick test_owner_lifo;
        Alcotest.test_case "steal is FIFO" `Quick test_steal_fifo;
        Alcotest.test_case "grow preserves both ends" `Quick test_grow;
        QCheck_alcotest.to_alcotest test_sequential_model;
        QCheck_alcotest.to_alcotest test_concurrent_multiset;
        Alcotest.test_case "last-element pop/steal race" `Quick
          test_concurrent_last_element_race;
      ] );
  ]
