(* Tests for workload generation. *)

open Engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Service_dist                                                        *)
(* ------------------------------------------------------------------ *)

let sample_many dist rng n =
  Array.init n (fun _ -> float_of_int (Workload.Service_dist.sample dist rng ~now:0))

let test_constant () =
  let rng = Rng.create 1L in
  let d = Workload.Service_dist.constant 5_000 in
  for _ = 1 to 100 do
    check_int "constant" 5_000 (Workload.Service_dist.sample d rng ~now:0)
  done

let test_bimodal_fractions () =
  let rng = Rng.create 2L in
  let d = Workload.Service_dist.workload_a1 in
  let xs = sample_many d rng 100_000 in
  let long = Array.fold_left (fun acc x -> if x > 1_000.0 then acc + 1 else acc) 0 xs in
  let frac = float_of_int long /. 100_000.0 in
  check_bool "~0.5% long requests" true (abs_float (frac -. 0.005) < 0.001)

let test_exponential_mean () =
  let rng = Rng.create 3L in
  let d = Workload.Service_dist.workload_b in
  let xs = sample_many d rng 100_000 in
  let mean = Array.fold_left ( +. ) 0.0 xs /. 100_000.0 in
  check_bool "mean ~5us" true (abs_float (mean -. 5_000.0) < 150.0)

let test_analytic_means () =
  let close a b = abs_float (a -. b) /. b < 1e-9 in
  check_bool "a1 mean" true
    (close (Workload.Service_dist.mean_ns Workload.Service_dist.workload_a1 ~now:0) 2997.5);
  check_bool "b mean" true
    (close (Workload.Service_dist.mean_ns Workload.Service_dist.workload_b ~now:0) 5000.0)

let test_phased_switch () =
  let rng = Rng.create 4L in
  let d =
    Workload.Service_dist.phased ~switch_after:1_000
      ~first:(Workload.Service_dist.constant 10)
      ~second:(Workload.Service_dist.constant 99)
  in
  check_int "before switch" 10 (Workload.Service_dist.sample d rng ~now:500);
  check_int "after switch" 99 (Workload.Service_dist.sample d rng ~now:1_500);
  check_bool "mean follows phase" true
    (Workload.Service_dist.mean_ns d ~now:2_000 = 99.0)

let test_dist_validation () =
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Service_dist.bimodal: fraction out of [0,1]") (fun () ->
      ignore (Workload.Service_dist.bimodal ~short_ns:1 ~long_ns:2 ~long_fraction:1.5));
  Alcotest.check_raises "bad constant" (Invalid_argument "Service_dist.constant: non-positive")
    (fun () -> ignore (Workload.Service_dist.constant 0))

let test_samples_positive =
  QCheck.Test.make ~name:"service samples are always positive" ~count:200
    QCheck.(pair (int_range 1 1_000_000) (int_range 1 1_000_000))
    (fun (mean_ns, seed) ->
      let rng = Rng.create (Int64.of_int seed) in
      let d = Workload.Service_dist.exponential ~mean_ns in
      Workload.Service_dist.sample d rng ~now:0 >= 1)

(* ------------------------------------------------------------------ *)
(* Arrival                                                             *)
(* ------------------------------------------------------------------ *)

let test_poisson_rate () =
  let rng = Rng.create 6L in
  let a = Workload.Arrival.poisson ~rate_per_sec:100_000.0 in
  let n = 100_000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Workload.Arrival.next_gap a rng ~now:!total
  done;
  let measured = float_of_int n *. 1e9 /. float_of_int !total in
  check_bool "empirical rate within 2%" true (abs_float (measured -. 100_000.0) < 2_000.0)

let test_uniform_gap () =
  let rng = Rng.create 7L in
  let a = Workload.Arrival.uniform ~rate_per_sec:1_000_000.0 in
  check_int "1M/s = 1us gaps" 1_000 (Workload.Arrival.next_gap a rng ~now:0)

let test_bursty_rate_profile () =
  let a =
    Workload.Arrival.bursty ~base_rate_per_sec:40_000.0 ~spike_rate_per_sec:110_000.0
      ~period_ns:(Units.sec 1) ~spike_fraction:0.2
  in
  Alcotest.(check (float 1e-9)) "in spike" 110_000.0 (Workload.Arrival.rate_at a ~now:(Units.ms 100));
  Alcotest.(check (float 1e-9)) "after spike" 40_000.0 (Workload.Arrival.rate_at a ~now:(Units.ms 500))

let test_flash_crowd_envelope () =
  let a =
    Workload.Arrival.flash_crowd ~base_rate_per_sec:100_000.0 ~peak_rate_per_sec:300_000.0
      ~start_ns:(Units.ms 10) ~ramp_ns:(Units.ms 2) ~hold_ns:(Units.ms 5)
      ~decay_ns:(Units.ms 4)
  in
  let rate now = Workload.Arrival.rate_at a ~now in
  Alcotest.(check (float 1e-6)) "base before start" 100_000.0 (rate (Units.ms 5));
  Alcotest.(check (float 1e-6)) "halfway up the ramp" 200_000.0 (rate (Units.ms 11));
  Alcotest.(check (float 1e-6)) "peak holds" 300_000.0 (rate (Units.ms 14));
  Alcotest.(check (float 1e-6)) "halfway down the decay" 200_000.0 (rate (Units.ms 19));
  Alcotest.(check (float 1e-6)) "back to base" 100_000.0 (rate (Units.ms 25));
  (* Sampled gaps track the envelope: the peak phase arrives ~3x as
     fast as the base phase. *)
  let rng = Engine.Rng.create 9L in
  let mean_gap at n =
    let total = ref 0 in
    for _ = 1 to n do
      total := !total + Workload.Arrival.next_gap a rng ~now:at
    done;
    float_of_int !total /. float_of_int n
  in
  let base_gap = mean_gap (Units.ms 5) 3_000 in
  let peak_gap = mean_gap (Units.ms 14) 3_000 in
  check_bool "peak gaps ~3x shorter" true
    (base_gap /. peak_gap > 2.5 && base_gap /. peak_gap < 3.5)

let test_flash_crowd_validation () =
  Alcotest.check_raises "peak below base"
    (Invalid_argument "Arrival.flash_crowd: peak below base") (fun () ->
      ignore
        (Workload.Arrival.flash_crowd ~base_rate_per_sec:2.0 ~peak_rate_per_sec:1.0
           ~start_ns:0 ~ramp_ns:1 ~hold_ns:1 ~decay_ns:1));
  Alcotest.check_raises "negative phase"
    (Invalid_argument "Arrival.flash_crowd: negative phase length") (fun () ->
      ignore
        (Workload.Arrival.flash_crowd ~base_rate_per_sec:1.0 ~peak_rate_per_sec:2.0
           ~start_ns:0 ~ramp_ns:(-1) ~hold_ns:1 ~decay_ns:1))

let test_piecewise () =
  let p1 = Workload.Arrival.uniform ~rate_per_sec:10.0 in
  let p2 = Workload.Arrival.uniform ~rate_per_sec:20.0 in
  let a = Workload.Arrival.piecewise [ (100, p1); (200, p2) ] in
  Alcotest.(check (float 1e-9)) "first" 10.0 (Workload.Arrival.rate_at a ~now:50);
  Alcotest.(check (float 1e-9)) "second" 20.0 (Workload.Arrival.rate_at a ~now:150);
  Alcotest.(check (float 1e-9)) "last extends" 20.0 (Workload.Arrival.rate_at a ~now:900)

let test_arrival_validation () =
  Alcotest.check_raises "zero rate" (Invalid_argument "Arrival.poisson: rate must be positive")
    (fun () -> ignore (Workload.Arrival.poisson ~rate_per_sec:0.0));
  Alcotest.check_raises "empty piecewise" (Invalid_argument "Arrival.piecewise: empty")
    (fun () -> ignore (Workload.Arrival.piecewise []));
  Alcotest.check_raises "diurnal amplitude" (Invalid_argument "Arrival.diurnal: amplitude out of [0,1)")
    (fun () ->
      ignore (Workload.Arrival.diurnal ~base_rate_per_sec:1.0 ~amplitude:1.0 ~period_ns:10));
  Alcotest.check_raises "mmpp single state" (Invalid_argument "Arrival.mmpp: need at least 2 states")
    (fun () ->
      ignore (Workload.Arrival.mmpp ~rates_per_sec:[| 5.0 |] ~mean_hold_ns:100 ~seed:1L))

let test_diurnal_cycle () =
  let base = 100_000.0 in
  let a =
    Workload.Arrival.diurnal ~base_rate_per_sec:base ~amplitude:0.5 ~period_ns:(Units.ms 8)
  in
  let rate now = Workload.Arrival.rate_at a ~now in
  Alcotest.(check (float 1.0)) "cycle start at base" base (rate 0);
  Alcotest.(check (float 1.0)) "peak at quarter period" (1.5 *. base) (rate (Units.ms 2));
  Alcotest.(check (float 1.0)) "trough at three quarters" (0.5 *. base) (rate (Units.ms 6));
  Alcotest.(check (float 1.0)) "periodic" (rate (Units.ms 2)) (rate (Units.ms 10));
  (* the rate never leaves [base*(1-amp), base*(1+amp)] *)
  let ok = ref true in
  for i = 0 to 200 do
    let r = rate (i * 100_000) in
    if r < 0.5 *. base -. 1.0 || r > 1.5 *. base +. 1.0 then ok := false
  done;
  check_bool "bounded by amplitude" true !ok

let test_mmpp_deterministic () =
  let mk () =
    Workload.Arrival.mmpp
      ~rates_per_sec:[| 50_000.0; 200_000.0; 100_000.0 |]
      ~mean_hold_ns:(Units.ms 1) ~seed:21L
  in
  let a = mk () and b = mk () in
  (* the modulating trajectory is a pure function of the seed: two
     instances agree at every sample, regardless of query order *)
  let same = ref true and seen_states = ref 0 in
  let seen = Array.make 3 false in
  for i = 0 to 400 do
    let now = i * 50_000 in
    let ra = Workload.Arrival.rate_at a ~now in
    if ra <> Workload.Arrival.rate_at b ~now then same := false;
    Array.iteri (fun j r -> if ra = r then seen.(j) <- true) [| 50_000.0; 200_000.0; 100_000.0 |]
  done;
  Array.iter (fun s -> if s then incr seen_states) seen;
  check_bool "two instances agree" true !same;
  check_int "walks through all states" 3 !seen_states;
  (* querying backwards matches a fresh forward walk *)
  let c = mk () in
  let fwd = Workload.Arrival.rate_at a ~now:(Units.ms 2) in
  ignore (Workload.Arrival.rate_at c ~now:(Units.ms 7));
  Alcotest.(check (float 1e-9)) "memo rewinds" fwd (Workload.Arrival.rate_at c ~now:(Units.ms 2));
  (* a different seed gives a different trajectory somewhere *)
  let d =
    Workload.Arrival.mmpp
      ~rates_per_sec:[| 50_000.0; 200_000.0; 100_000.0 |]
      ~mean_hold_ns:(Units.ms 1) ~seed:22L
  in
  let differs = ref false in
  for i = 0 to 400 do
    let now = i * 50_000 in
    if Workload.Arrival.rate_at a ~now <> Workload.Arrival.rate_at d ~now then differs := true
  done;
  check_bool "seed changes the walk" true !differs

let test_tenants_skew () =
  let rng = Rng.create 31L in
  let hot = Workload.Source.of_fn ~name:"hot" (fun _ ~now:_ -> (1_000, Workload.Request.Latency_critical)) in
  let cold = Workload.Source.of_fn ~name:"cold" (fun _ ~now:_ -> (9_000, Workload.Request.Best_effort)) in
  let src = Workload.Source.tenants ~theta:0.9 [ hot; cold ] in
  let hot_n = ref 0 and n = 5_000 in
  for _ = 1 to n do
    let service, _ = Workload.Source.draw src rng ~now:0 in
    if service = 1_000 then incr hot_n
  done;
  check_bool "hot tenant dominates" true (float_of_int !hot_n /. float_of_int n > 0.6);
  check_bool "cold tenant still sampled" true (!hot_n < n);
  Alcotest.check_raises "empty tenants" (Invalid_argument "Source.tenants: empty") (fun () ->
      ignore (Workload.Source.tenants ~theta:0.5 []))

(* ------------------------------------------------------------------ *)
(* Zipf                                                                *)
(* ------------------------------------------------------------------ *)

let test_zipf_bounds () =
  let rng = Rng.create 8L in
  let z = Workload.Zipf.create ~n:1000 ~theta:0.99 in
  for _ = 1 to 10_000 do
    let k = Workload.Zipf.sample z rng in
    check_bool "in range" true (k >= 0 && k < 1000)
  done

let test_zipf_skew () =
  let rng = Rng.create 9L in
  let z = Workload.Zipf.create ~n:10_000 ~theta:0.99 in
  let hits = Array.make 10_000 0 in
  for _ = 1 to 200_000 do
    let k = Workload.Zipf.sample z rng in
    hits.(k) <- hits.(k) + 1
  done;
  let top10 = ref 0 in
  for i = 0 to 9 do
    top10 := !top10 + hits.(i)
  done;
  (* With theta 0.99 the top-10 of 10k keys draw a large share. *)
  check_bool "skewed head" true (float_of_int !top10 /. 200_000.0 > 0.25);
  check_bool "rank0 most popular" true (hits.(0) >= hits.(100))

let test_zipf_probability () =
  let z = Workload.Zipf.create ~n:100 ~theta:0.5 in
  let total = ref 0.0 in
  for i = 0 to 99 do
    total := !total +. Workload.Zipf.probability z i
  done;
  check_bool "probabilities sum to 1" true (abs_float (!total -. 1.0) < 1e-9);
  check_bool "monotone" true
    (Workload.Zipf.probability z 0 > Workload.Zipf.probability z 50)

let test_zipf_validation () =
  Alcotest.check_raises "theta 1" (Invalid_argument "Zipf.create: theta out of [0,1)")
    (fun () -> ignore (Workload.Zipf.create ~n:10 ~theta:1.0))

(* ------------------------------------------------------------------ *)
(* Mica / Zlib                                                          *)
(* ------------------------------------------------------------------ *)

let test_mica_median_1us () =
  let rng = Rng.create 10L in
  let m = Workload.Mica.create () in
  let xs = Array.init 100_000 (fun _ -> float_of_int (Workload.Mica.sample_ns m rng)) in
  let p50 = Stat.Quantile.median xs in
  check_bool "median ~1us (Table V)" true (p50 > 600.0 && p50 < 1_500.0);
  let p99 = Stat.Quantile.percentile xs 99.0 in
  check_bool "right-skewed" true (p99 > 2.0 *. p50)

let test_mica_source_class () =
  let rng = Rng.create 11L in
  let m = Workload.Mica.create () in
  let _, cls = Workload.Source.draw (Workload.Mica.source m) rng ~now:0 in
  check_bool "LC class" true (cls = Workload.Request.Latency_critical)

let test_zlib_median_100us () =
  let rng = Rng.create 12L in
  let z = Workload.Zlib_be.create () in
  let xs = Array.init 50_000 (fun _ -> float_of_int (Workload.Zlib_be.sample_ns z rng)) in
  let p50 = Stat.Quantile.median xs /. 1e3 in
  check_bool "median ~100us (Table V)" true (p50 > 90.0 && p50 < 110.0)

let test_zlib_scales_with_size () =
  let rng = Rng.create 13L in
  let small =
    Workload.Zlib_be.create
      ~config:{ Workload.Zlib_be.default_config with size_kb = 5.0 } ()
  in
  let big = Workload.Zlib_be.create () in
  let mean z =
    let acc = ref 0 in
    for _ = 1 to 5_000 do
      acc := !acc + Workload.Zlib_be.sample_ns z rng
    done;
    !acc / 5_000
  in
  check_bool "5kB faster than 25kB" true (mean small * 3 < mean big)

(* ------------------------------------------------------------------ *)
(* Source / Tracegen                                                   *)
(* ------------------------------------------------------------------ *)

let test_source_mix_weights () =
  let rng = Rng.create 14L in
  let lc = Workload.Source.of_dist (Workload.Service_dist.constant 10) ~cls:Workload.Request.Latency_critical in
  let be = Workload.Source.of_dist (Workload.Service_dist.constant 20) ~cls:Workload.Request.Best_effort in
  let mixed = Workload.Source.mix [ (0.98, lc); (0.02, be) ] in
  let n = 100_000 in
  let be_count = ref 0 in
  for _ = 1 to n do
    let _, cls = Workload.Source.draw mixed rng ~now:0 in
    if cls = Workload.Request.Best_effort then incr be_count
  done;
  let frac = float_of_int !be_count /. float_of_int n in
  check_bool "~2% BE" true (abs_float (frac -. 0.02) < 0.004)

let test_source_mix_validation () =
  Alcotest.check_raises "empty mix" (Invalid_argument "Source.mix: empty") (fun () ->
      ignore (Workload.Source.mix []))

let test_tracegen_orderly () =
  let arrival = Workload.Arrival.poisson ~rate_per_sec:100_000.0 in
  let source =
    Workload.Source.of_dist Workload.Service_dist.workload_b
      ~cls:Workload.Request.Latency_critical
  in
  let trace = Workload.Tracegen.generate ~arrival ~source ~duration_ns:(Units.ms 10) () in
  check_bool "non-empty" true (List.length trace > 500);
  let rec check_sorted prev_t prev_id = function
    | [] -> true
    | r :: rest ->
      r.Workload.Request.arrival_ns >= prev_t
      && r.Workload.Request.id = prev_id + 1
      && r.Workload.Request.arrival_ns < Units.ms 10
      && check_sorted r.Workload.Request.arrival_ns r.Workload.Request.id rest
  in
  check_bool "sorted with sequential ids" true (check_sorted 0 (-1) trace)

let test_offered_load () =
  let arrival = Workload.Arrival.uniform ~rate_per_sec:100_000.0 in
  let source =
    Workload.Source.of_dist (Workload.Service_dist.constant 10_000)
      ~cls:Workload.Request.Latency_critical
  in
  (* 100k/s x 10us per request = 1 core fully loaded; on 2 cores: 0.5 *)
  let load =
    Workload.Tracegen.offered_load ~arrival ~source ~duration_ns:(Units.ms 100) ~cores:2 ()
  in
  check_bool "~50% load" true (abs_float (load -. 0.5) < 0.02)

let test_request_pool_reuse () =
  let p = Workload.Request.Pool.create () in
  let r1 =
    Workload.Request.Pool.acquire p ~id:1 ~arrival_ns:10 ~service_ns:100
      ~cls:Workload.Request.Latency_critical
  in
  check_bool "pooled" true r1.Workload.Request.pooled;
  Workload.Request.Pool.release p r1;
  check_int "one free" 1 (Workload.Request.Pool.free_count p);
  let r2 =
    Workload.Request.Pool.acquire p ~id:2 ~arrival_ns:20 ~service_ns:200
      ~cls:Workload.Request.Best_effort
  in
  check_bool "record recycled" true (r1 == r2);
  check_int "fields reset: id" 2 r2.Workload.Request.id;
  check_int "fields reset: arrival" 20 r2.Workload.Request.arrival_ns;
  check_int "fields reset: service" 200 r2.Workload.Request.service_ns;
  check_bool "fields reset: cls" true
    (r2.Workload.Request.cls = Workload.Request.Best_effort);
  check_int "free list drained" 0 (Workload.Request.Pool.free_count p)

let test_request_pool_release_is_idempotent () =
  let p = Workload.Request.Pool.create () in
  let r =
    Workload.Request.Pool.acquire p ~id:1 ~arrival_ns:0 ~service_ns:1
      ~cls:Workload.Request.Latency_critical
  in
  Workload.Request.Pool.release p r;
  Workload.Request.Pool.release p r;
  check_int "double release is a no-op" 1 (Workload.Request.Pool.free_count p)

let test_request_pool_ignores_caller_owned () =
  let p = Workload.Request.Pool.create () in
  let r =
    Workload.Request.make ~id:7 ~arrival_ns:0 ~service_ns:5
      ~cls:Workload.Request.Latency_critical
  in
  check_bool "make is unpooled" false r.Workload.Request.pooled;
  Workload.Request.Pool.release p r;
  check_int "caller-owned never enters the pool" 0
    (Workload.Request.Pool.free_count p)

let test_request_pool_validates () =
  let p = Workload.Request.Pool.create () in
  Alcotest.check_raises "negative arrival"
    (Invalid_argument "Request.make: negative arrival") (fun () ->
      ignore
        (Workload.Request.Pool.acquire p ~id:0 ~arrival_ns:(-1) ~service_ns:1
           ~cls:Workload.Request.Latency_critical))

let test_request_validation () =
  Alcotest.check_raises "bad service" (Invalid_argument "Request.make: non-positive service")
    (fun () ->
      ignore
        (Workload.Request.make ~id:0 ~arrival_ns:0 ~service_ns:0
           ~cls:Workload.Request.Latency_critical))

let suites =
  [
    ( "workload.service_dist",
      [
        Alcotest.test_case "constant" `Quick test_constant;
        Alcotest.test_case "bimodal fractions" `Slow test_bimodal_fractions;
        Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
        Alcotest.test_case "analytic means" `Quick test_analytic_means;
        Alcotest.test_case "phased switch" `Quick test_phased_switch;
        Alcotest.test_case "validation" `Quick test_dist_validation;
        QCheck_alcotest.to_alcotest test_samples_positive;
      ] );
    ( "workload.arrival",
      [
        Alcotest.test_case "poisson rate" `Slow test_poisson_rate;
        Alcotest.test_case "uniform gap" `Quick test_uniform_gap;
        Alcotest.test_case "bursty profile" `Quick test_bursty_rate_profile;
        Alcotest.test_case "flash crowd envelope" `Slow test_flash_crowd_envelope;
        Alcotest.test_case "flash crowd validation" `Quick test_flash_crowd_validation;
        Alcotest.test_case "piecewise" `Quick test_piecewise;
        Alcotest.test_case "diurnal cycle" `Quick test_diurnal_cycle;
        Alcotest.test_case "mmpp deterministic walk" `Quick test_mmpp_deterministic;
        Alcotest.test_case "validation" `Quick test_arrival_validation;
      ] );
    ( "workload.zipf",
      [
        Alcotest.test_case "bounds" `Quick test_zipf_bounds;
        Alcotest.test_case "skew" `Slow test_zipf_skew;
        Alcotest.test_case "probability" `Quick test_zipf_probability;
        Alcotest.test_case "validation" `Quick test_zipf_validation;
      ] );
    ( "workload.apps",
      [
        Alcotest.test_case "mica median" `Slow test_mica_median_1us;
        Alcotest.test_case "mica class" `Quick test_mica_source_class;
        Alcotest.test_case "zlib median" `Slow test_zlib_median_100us;
        Alcotest.test_case "zlib size scaling" `Quick test_zlib_scales_with_size;
      ] );
    ( "workload.source",
      [
        Alcotest.test_case "mix weights" `Slow test_source_mix_weights;
        Alcotest.test_case "mix validation" `Quick test_source_mix_validation;
        Alcotest.test_case "zipf tenant skew" `Quick test_tenants_skew;
      ] );
    ( "workload.tracegen",
      [
        Alcotest.test_case "orderly traces" `Quick test_tracegen_orderly;
        Alcotest.test_case "offered load" `Quick test_offered_load;
        Alcotest.test_case "request validation" `Quick test_request_validation;
      ] );
    ( "workload.request_pool",
      [
        Alcotest.test_case "reuse" `Quick test_request_pool_reuse;
        Alcotest.test_case "idempotent release" `Quick
          test_request_pool_release_is_idempotent;
        Alcotest.test_case "caller-owned" `Quick test_request_pool_ignores_caller_owned;
        Alcotest.test_case "validates" `Quick test_request_pool_validates;
      ] );
  ]
