(* Tests for the statistics library. *)

let check_bool = Alcotest.(check bool)
let checkf msg ~eps expected actual = Alcotest.(check (float eps)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Quantile                                                            *)
(* ------------------------------------------------------------------ *)

let test_quantile_exact_basics () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  checkf "median" ~eps:1e-9 3.0 (Stat.Quantile.median xs);
  checkf "min" ~eps:1e-9 1.0 (Stat.Quantile.exact xs 0.0);
  checkf "max" ~eps:1e-9 5.0 (Stat.Quantile.exact xs 1.0);
  checkf "interpolated p25" ~eps:1e-9 2.0 (Stat.Quantile.exact xs 0.25);
  checkf "percentile alias" ~eps:1e-9
    (Stat.Quantile.exact xs 0.99)
    (Stat.Quantile.percentile xs 99.0)

let test_quantile_exact_singleton () =
  checkf "single value" ~eps:1e-9 7.0 (Stat.Quantile.exact [| 7.0 |] 0.99)

let test_quantile_exact_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Quantile.exact: empty sample set")
    (fun () -> ignore (Stat.Quantile.exact [||] 0.5));
  Alcotest.check_raises "q range" (Invalid_argument "Quantile.exact: q out of [0,1]")
    (fun () -> ignore (Stat.Quantile.exact [| 1.0 |] 1.5))

let test_p2_matches_exact_on_uniform () =
  let r = Engine.Rng.create 5L in
  let p2 = Stat.Quantile.P2.create 0.9 in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Engine.Rng.float r) in
  Array.iter (Stat.Quantile.P2.add p2) xs;
  let exact = Stat.Quantile.exact xs 0.9 in
  let est = Stat.Quantile.P2.get p2 in
  check_bool "p2 within 2% of exact" true (abs_float (est -. exact) < 0.02)

let test_p2_small_counts () =
  let p2 = Stat.Quantile.P2.create 0.5 in
  Stat.Quantile.P2.add p2 3.0;
  Stat.Quantile.P2.add p2 1.0;
  checkf "exact fallback" ~eps:1e-9 2.0 (Stat.Quantile.P2.get p2);
  Alcotest.(check int) "count" 2 (Stat.Quantile.P2.count p2)

let test_p2_rejects_bad_q () =
  Alcotest.check_raises "q=0" (Invalid_argument "Quantile.P2.create: q out of (0,1)")
    (fun () -> ignore (Stat.Quantile.P2.create 0.0))

(* ------------------------------------------------------------------ *)
(* Welford                                                             *)
(* ------------------------------------------------------------------ *)

let test_welford_moments () =
  let w = Stat.Welford.create () in
  List.iter (Stat.Welford.add w) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  checkf "mean" ~eps:1e-9 5.0 (Stat.Welford.mean w);
  checkf "sample variance" ~eps:1e-9 (32.0 /. 7.0) (Stat.Welford.variance w);
  checkf "min" ~eps:1e-9 2.0 (Stat.Welford.min_value w);
  checkf "max" ~eps:1e-9 9.0 (Stat.Welford.max_value w)

let test_welford_empty () =
  let w = Stat.Welford.create () in
  checkf "mean empty" ~eps:1e-9 0.0 (Stat.Welford.mean w);
  checkf "variance empty" ~eps:1e-9 0.0 (Stat.Welford.variance w)

let test_welford_merge_equals_sequential () =
  let r = Engine.Rng.create 31L in
  let a = Stat.Welford.create ()
  and b = Stat.Welford.create ()
  and all = Stat.Welford.create () in
  for i = 1 to 1000 do
    let x = Engine.Rng.normal r ~mu:3.0 ~sigma:1.0 in
    Stat.Welford.add all x;
    Stat.Welford.add (if i mod 2 = 0 then a else b) x
  done;
  let m = Stat.Welford.merge a b in
  checkf "merged mean" ~eps:1e-9 (Stat.Welford.mean all) (Stat.Welford.mean m);
  checkf "merged var" ~eps:1e-6 (Stat.Welford.variance all) (Stat.Welford.variance m);
  Stat.Welford.merge_into ~dst:a ~src:b;
  checkf "merge_into mean" ~eps:1e-9 (Stat.Welford.mean all) (Stat.Welford.mean a)

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let test_histogram_quantile_accuracy () =
  let h = Stat.Histogram.create () in
  let r = Engine.Rng.create 77L in
  let xs = Array.init 100_000 (fun _ -> Engine.Rng.exponential r ~mean:10_000.0) in
  Array.iter (Stat.Histogram.record h) xs;
  let p99_exact = Stat.Quantile.exact xs 0.99 in
  let p99_hist = Stat.Histogram.quantile h 0.99 in
  let rel = abs_float (p99_hist -. p99_exact) /. p99_exact in
  check_bool "p99 within 5%" true (rel < 0.05);
  checkf "mean exactly tracked" ~eps:1e-6
    (Array.fold_left ( +. ) 0.0 xs /. 100_000.0)
    (Stat.Histogram.mean h)

let test_histogram_bounds () =
  let h = Stat.Histogram.create () in
  Stat.Histogram.record h 0.5;
  Stat.Histogram.record h 1e12;
  Alcotest.(check int) "count" 2 (Stat.Histogram.count h);
  checkf "max raw" ~eps:1.0 1e12 (Stat.Histogram.max_recorded h);
  checkf "min raw" ~eps:1e-9 0.5 (Stat.Histogram.min_recorded h)

let test_histogram_quantile_never_exceeds_max () =
  let h = Stat.Histogram.create () in
  List.iter (Stat.Histogram.record h) [ 100.0; 200.0; 300.0 ];
  check_bool "p100 <= max" true (Stat.Histogram.quantile h 1.0 <= 300.0)

let test_histogram_merge () =
  let a = Stat.Histogram.create () and b = Stat.Histogram.create () in
  Stat.Histogram.record a 10.0;
  Stat.Histogram.record b 1000.0;
  Stat.Histogram.merge_into ~dst:a ~src:b;
  Alcotest.(check int) "merged count" 2 (Stat.Histogram.count a);
  checkf "merged max" ~eps:1e-9 1000.0 (Stat.Histogram.max_recorded a)

let test_histogram_reset () =
  let h = Stat.Histogram.create () in
  Stat.Histogram.record h 5.0;
  Stat.Histogram.reset h;
  Alcotest.(check int) "count reset" 0 (Stat.Histogram.count h)

let histogram_quantile_monotone =
  QCheck.Test.make ~name:"histogram quantiles are monotone" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 200) (float_range 1.0 1e7))
    (fun xs ->
      let h = Stat.Histogram.create () in
      List.iter (Stat.Histogram.record h) xs;
      let qs = [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ] in
      let vals = List.map (Stat.Histogram.quantile h) qs in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono vals)

(* ------------------------------------------------------------------ *)
(* Tail index                                                          *)
(* ------------------------------------------------------------------ *)

let test_hill_recovers_pareto_index () =
  let r = Engine.Rng.create 41L in
  let shape = 1.2 in
  let xs = Array.init 50_000 (fun _ -> Engine.Rng.pareto r ~scale:1.0 ~shape) in
  let est = Stat.Tail_index.hill xs ~k:2_000 in
  check_bool "hill near true index" true (abs_float (est -. shape) < 0.15)

let test_hill_auto_light_tail_is_large () =
  let r = Engine.Rng.create 43L in
  let xs = Array.init 20_000 (fun _ -> 1.0 +. Engine.Rng.exponential r ~mean:1.0) in
  let est = Stat.Tail_index.hill_auto xs in
  check_bool "light tail => alpha above heavy threshold" true (est >= 2.0)

let test_ratio_proxy () =
  (* For a Pareto(alpha) distribution, p99/median = 50^(1/alpha). *)
  let alpha = 1.5 in
  let median = 2.0 in
  let tail = median *. (50.0 ** (1.0 /. alpha)) in
  checkf "proxy inverts ratio" ~eps:1e-9 alpha (Stat.Tail_index.ratio_proxy ~median ~tail)

let test_ratio_proxy_errors () =
  Alcotest.check_raises "tail <= median"
    (Invalid_argument "Tail_index.ratio_proxy: requires tail > median > 0") (fun () ->
      ignore (Stat.Tail_index.ratio_proxy ~median:2.0 ~tail:1.0))

let test_is_heavy () =
  check_bool "1.0 heavy" true (Stat.Tail_index.is_heavy 1.0);
  check_bool "2.5 light" false (Stat.Tail_index.is_heavy 2.5);
  check_bool "negative invalid" false (Stat.Tail_index.is_heavy (-0.5))

(* ------------------------------------------------------------------ *)
(* Summary                                                             *)
(* ------------------------------------------------------------------ *)

let test_summary_report () =
  let s = Stat.Summary.create () in
  for i = 1 to 1000 do
    Stat.Summary.record s (float_of_int i)
  done;
  let r = Stat.Summary.report s in
  Alcotest.(check int) "count" 1000 r.Stat.Summary.count;
  checkf "mean" ~eps:1e-6 500.5 r.Stat.Summary.mean;
  check_bool "p50 near 500" true (abs_float (r.Stat.Summary.p50 -. 500.0) < 25.0);
  check_bool "p99 near 990" true (abs_float (r.Stat.Summary.p99 -. 990.0) < 40.0);
  checkf "max" ~eps:1e-9 1000.0 r.Stat.Summary.max

let test_summary_empty_raises () =
  let s = Stat.Summary.create () in
  Alcotest.check_raises "empty" (Invalid_argument "Summary.report: no data") (fun () ->
      ignore (Stat.Summary.report s))

let test_summary_merge () =
  let a = Stat.Summary.create () and b = Stat.Summary.create () in
  Stat.Summary.record a 10.0;
  Stat.Summary.record b 30.0;
  Stat.Summary.merge_into ~dst:a ~src:b;
  let r = Stat.Summary.report a in
  Alcotest.(check int) "count" 2 r.Stat.Summary.count;
  checkf "mean" ~eps:1e-9 20.0 r.Stat.Summary.mean

(* ------------------------------------------------------------------ *)
(* Timeseries                                                          *)
(* ------------------------------------------------------------------ *)

let test_timeseries_bucketing () =
  let ts = Stat.Timeseries.create ~window_ns:100 in
  Stat.Timeseries.record ts ~time:10 1.0;
  Stat.Timeseries.record ts ~time:90 3.0;
  Stat.Timeseries.record ts ~time:150 10.0;
  let pts = Stat.Timeseries.points ts in
  Alcotest.(check int) "two windows" 2 (List.length pts);
  let first = List.hd pts in
  Alcotest.(check int) "window start" 0 first.Stat.Timeseries.t_start;
  Alcotest.(check int) "count" 2 first.Stat.Timeseries.count;
  checkf "mean" ~eps:1e-9 2.0 first.Stat.Timeseries.mean;
  checkf "max" ~eps:1e-9 3.0 first.Stat.Timeseries.max

let test_timeseries_rate () =
  let window_ns = 1_000_000 in
  let ts = Stat.Timeseries.create ~window_ns in
  for i = 0 to 99 do
    Stat.Timeseries.mark ts ~time:(i * 10_000)
  done;
  match Stat.Timeseries.points ts with
  | [ p ] ->
    checkf "100 marks in 1ms = 100k/s" ~eps:1e-6 100_000.0
      (Stat.Timeseries.rate_per_sec p ~window_ns)
  | pts -> Alcotest.failf "expected one window, got %d" (List.length pts)

let test_timeseries_rejects_negative_time () =
  let ts = Stat.Timeseries.create ~window_ns:10 in
  Alcotest.check_raises "negative" (Invalid_argument "Timeseries.record: negative time")
    (fun () -> Stat.Timeseries.record ts ~time:(-1) 0.0)

let suites =
  [
    ( "stat.quantile",
      [
        Alcotest.test_case "exact basics" `Quick test_quantile_exact_basics;
        Alcotest.test_case "singleton" `Quick test_quantile_exact_singleton;
        Alcotest.test_case "errors" `Quick test_quantile_exact_errors;
        Alcotest.test_case "p2 accuracy" `Slow test_p2_matches_exact_on_uniform;
        Alcotest.test_case "p2 small counts" `Quick test_p2_small_counts;
        Alcotest.test_case "p2 bad q" `Quick test_p2_rejects_bad_q;
      ] );
    ( "stat.welford",
      [
        Alcotest.test_case "moments" `Quick test_welford_moments;
        Alcotest.test_case "empty" `Quick test_welford_empty;
        Alcotest.test_case "merge" `Quick test_welford_merge_equals_sequential;
      ] );
    ( "stat.histogram",
      [
        Alcotest.test_case "quantile accuracy" `Slow test_histogram_quantile_accuracy;
        Alcotest.test_case "bounds" `Quick test_histogram_bounds;
        Alcotest.test_case "quantile <= max" `Quick test_histogram_quantile_never_exceeds_max;
        Alcotest.test_case "merge" `Quick test_histogram_merge;
        Alcotest.test_case "reset" `Quick test_histogram_reset;
        QCheck_alcotest.to_alcotest histogram_quantile_monotone;
      ] );
    ( "stat.tail_index",
      [
        Alcotest.test_case "hill pareto" `Slow test_hill_recovers_pareto_index;
        Alcotest.test_case "hill light tail" `Slow test_hill_auto_light_tail_is_large;
        Alcotest.test_case "ratio proxy" `Quick test_ratio_proxy;
        Alcotest.test_case "ratio proxy errors" `Quick test_ratio_proxy_errors;
        Alcotest.test_case "is_heavy" `Quick test_is_heavy;
      ] );
    ( "stat.summary",
      [
        Alcotest.test_case "report" `Quick test_summary_report;
        Alcotest.test_case "empty raises" `Quick test_summary_empty_raises;
        Alcotest.test_case "merge" `Quick test_summary_merge;
      ] );
    ( "stat.timeseries",
      [
        Alcotest.test_case "bucketing" `Quick test_timeseries_bucketing;
        Alcotest.test_case "rate" `Quick test_timeseries_rate;
        Alcotest.test_case "negative time" `Quick test_timeseries_rejects_negative_time;
      ] );
  ]
