(* Tests for the real-execution fiber runtime (OCaml 5 effects). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

module F = Fiber_rt.Fiber
module Clock = Fiber_rt.Deadline_clock

let make ?(quantum = 1_000) () =
  let clock = Clock.virtual_ () in
  let rt = F.create ~quantum_ns:quantum ~clock () in
  (clock, rt)

(* A fiber that "works" for [units] steps of [step] virtual ns each,
   checkpointing between steps. *)
let worker clock rt ~units ~step () =
  for _ = 1 to units do
    Clock.advance clock step;
    F.checkpoint rt
  done;
  units * step

let worker_unit clock rt ~units ~step () = ignore (worker clock rt ~units ~step () : int)

let test_completes_within_quantum () =
  let clock, rt = make () in
  let fn = F.fn_launch rt (worker clock rt ~units:2 ~step:100) in
  check_bool "completed in one slice" true (F.fn_completed fn);
  Alcotest.(check (option int)) "result" (Some 200) (F.result fn);
  check_int "no preemptions" 0 (F.preempt_count fn)

let test_preempted_at_quantum () =
  let clock, rt = make ~quantum:1_000 () in
  let fn = F.fn_launch rt (worker clock rt ~units:10 ~step:300) in
  check_bool "not completed yet" false (F.fn_completed fn);
  check_int "one preemption so far" 1 (F.preempt_count fn);
  (* 4 steps of 300 cross the 1000ns deadline; 6 remain. *)
  let rec drain n = if not (F.fn_completed fn) then (F.fn_resume fn; drain (n + 1)) else n in
  let resumes = drain 0 in
  check_bool "took multiple slices" true (resumes >= 1);
  Alcotest.(check (option int)) "full result" (Some 3_000) (F.result fn);
  check_bool "runtime counter matches" true (F.preemptions rt >= F.preempt_count fn)

let test_deterministic_slicing () =
  let run () =
    let clock, rt = make ~quantum:1_000 () in
    let order = ref [] in
    let task name units () =
      ignore (worker clock rt ~units ~step:400 ());
      order := name :: !order
    in
    let stats = Fiber_rt.Round_robin.run rt [ task "a" 10; task "b" 3; task "c" 5 ] in
    (List.rev !order, stats.Fiber_rt.Round_robin.preemptions)
  in
  let o1, p1 = run () and o2, p2 = run () in
  Alcotest.(check (list string)) "same interleaving" o1 o2;
  check_int "same preemption count" p1 p2;
  Alcotest.(check (list string)) "short tasks finish first" [ "b"; "c"; "a" ] o1

let test_fn_resume_errors () =
  let clock, rt = make () in
  let fn = F.fn_launch rt (worker clock rt ~units:1 ~step:10) in
  Alcotest.check_raises "resume completed"
    (Invalid_argument "Fiber.fn_resume: function already completed") (fun () -> F.fn_resume fn)

let test_nested_launch_rejected () =
  let clock, rt = make () in
  ignore clock;
  let fn =
    F.fn_launch rt (fun () ->
        try
          ignore (F.fn_launch rt (fun () -> ()));
          false
        with Invalid_argument _ -> true)
  in
  Alcotest.(check (option bool)) "nested launch rejected" (Some true) (F.result fn)

let test_exception_marks_failed () =
  let _, rt = make () in
  check_bool "exception propagates" true
    (try
       ignore (F.fn_launch rt (fun () -> failwith "boom"));
       false
     with Failure _ -> true);
  (* runtime is reusable after a failed fiber *)
  let fn = F.fn_launch rt (fun () -> 41 + 1) in
  Alcotest.(check (option int)) "recovered" (Some 42) (F.result fn)

let test_voluntary_yield () =
  let _, rt = make () in
  let fn = F.fn_launch rt (fun () -> F.yield rt; 7) in
  check_bool "suspended, not completed" false (F.fn_completed fn);
  check_int "voluntary: no preemption counted" 0 (F.preempt_count fn);
  F.fn_resume fn;
  Alcotest.(check (option int)) "completes after resume" (Some 7) (F.result fn)

let test_checkpoint_outside_fn_noop () =
  let _, rt = make () in
  F.checkpoint rt (* must not raise or preempt *)

let test_yield_outside_fn_rejected () =
  let _, rt = make () in
  Alcotest.check_raises "yield outside" (Invalid_argument "Fiber.yield: no function is running")
    (fun () -> F.yield rt)

let test_set_quantum () =
  let clock, rt = make ~quantum:10_000 () in
  F.set_quantum_ns rt 500;
  check_int "updated" 500 (F.quantum_ns rt);
  let fn = F.fn_launch rt (worker clock rt ~units:3 ~step:400) in
  check_bool "preempted under new quantum" false (F.fn_completed fn);
  let rec drain () = if not (F.fn_completed fn) then (F.fn_resume fn; drain ()) in
  drain ();
  Alcotest.check_raises "non-positive quantum"
    (Invalid_argument "Fiber.set_quantum_ns: quantum must be positive") (fun () ->
      F.set_quantum_ns rt 0)

let test_per_fn_quantum () =
  let clock, rt = make ~quantum:1_000_000 () in
  let fn = F.fn_launch rt ~quantum_ns:500 (worker clock rt ~units:3 ~step:400) in
  check_bool "tight per-fn quantum preempts" false (F.fn_completed fn);
  let rec drain () = if not (F.fn_completed fn) then (F.fn_resume fn; drain ()) in
  drain ()

let test_virtual_clock_rules () =
  let wall = Clock.wall () in
  check_bool "wall ticks" true (Clock.now_ns wall > 0);
  Alcotest.check_raises "cannot advance wall"
    (Invalid_argument "Deadline_clock.advance: cannot advance the wall clock") (fun () ->
      Clock.advance wall 1);
  Alcotest.check_raises "timer domain needs wall clock"
    (Invalid_argument "Fiber.create: a timer domain cannot watch a virtual clock") (fun () ->
      ignore (F.create ~timer:F.Timer_domain ~clock:(Clock.virtual_ ()) ()))

let test_timer_domain_preempts_wall_clock () =
  (* Real time, real domain. On a single-CPU host the timer domain only
     runs when the kernel schedules it, so just require that preemption
     happens at all (the paper dedicates a core to the timer for exactly
     this reason). *)
  let rt = F.create ~quantum_ns:1_000_000 ~timer:F.Timer_domain ~clock:(Clock.wall ()) () in
  let spin () =
    let stop = Unix.gettimeofday () +. 0.08 in
    while Unix.gettimeofday () < stop do
      F.checkpoint rt
    done
  in
  let stats = Fiber_rt.Round_robin.run rt [ spin ] in
  F.shutdown rt;
  F.shutdown rt;
  (* idempotent *)
  check_int "completed" 1 stats.Fiber_rt.Round_robin.completed;
  check_bool "was preempted by the timer domain" true
    (stats.Fiber_rt.Round_robin.preemptions > 0)

(* ------------------------------------------------------------------ *)
(* Request_sched: the FCFS-with-preemption policy over real fibers     *)
(* ------------------------------------------------------------------ *)

let test_request_sched_hol_removal () =
  let clock, rt = make ~quantum:1_000 () in
  let sched = Fiber_rt.Request_sched.create rt in
  let order = ref [] in
  let request name units () =
    ignore (worker clock rt ~units ~step:300 ());
    order := name :: !order
  in
  let long = Fiber_rt.Request_sched.submit sched (request "long" 50) in
  let short = Fiber_rt.Request_sched.submit sched (request "short" 2) in
  let stats = Fiber_rt.Request_sched.run_until_idle sched in
  check_int "both completed" 2 stats.Fiber_rt.Request_sched.completed;
  Alcotest.(check (list string)) "short escaped HoL" [ "short"; "long" ] (List.rev !order);
  check_bool "long was preempted" true (Fiber_rt.Request_sched.preempt_count long >= 1);
  check_int "short never preempted" 0 (Fiber_rt.Request_sched.preempt_count short);
  check_bool "both report completed" true
    (Fiber_rt.Request_sched.completed long && Fiber_rt.Request_sched.completed short)

let test_request_sched_nested_submit () =
  let clock, rt = make ~quantum:10_000 () in
  let sched = Fiber_rt.Request_sched.create rt in
  let child_ran = ref false in
  ignore
    (Fiber_rt.Request_sched.submit sched (fun () ->
         Clock.advance clock 100;
         ignore
           (Fiber_rt.Request_sched.submit sched (fun () -> child_ran := true))));
  let stats = Fiber_rt.Request_sched.run_until_idle sched in
  check_int "parent and child completed" 2 stats.Fiber_rt.Request_sched.completed;
  check_bool "child ran" true !child_ran

let test_request_sched_per_request_quantum () =
  let clock, rt = make ~quantum:1_000_000 () in
  let sched = Fiber_rt.Request_sched.create rt in
  let tight =
    Fiber_rt.Request_sched.submit sched ~quantum_ns:500 (worker_unit clock rt ~units:10 ~step:300)
  in
  let stats = Fiber_rt.Request_sched.run_until_idle sched in
  check_int "completed" 1 stats.Fiber_rt.Request_sched.completed;
  check_bool "tight quantum preempted it" true (Fiber_rt.Request_sched.preempt_count tight >= 1)

let round_robin_property =
  QCheck.Test.make ~name:"round robin completes every fiber exactly once" ~count:30
    QCheck.(list_of_size (Gen.int_range 1 12) (int_range 1 20))
    (fun sizes ->
      let clock, rt = make ~quantum:700 () in
      let done_count = ref 0 in
      let tasks =
        List.map
          (fun units () ->
            ignore (worker clock rt ~units ~step:250 ());
            incr done_count)
          sizes
      in
      let stats = Fiber_rt.Round_robin.run rt tasks in
      stats.Fiber_rt.Round_robin.completed = List.length sizes
      && !done_count = List.length sizes)

let suites =
  [
    ( "fiber_rt.fiber",
      [
        Alcotest.test_case "completes within quantum" `Quick test_completes_within_quantum;
        Alcotest.test_case "preempted at quantum" `Quick test_preempted_at_quantum;
        Alcotest.test_case "deterministic slicing" `Quick test_deterministic_slicing;
        Alcotest.test_case "resume errors" `Quick test_fn_resume_errors;
        Alcotest.test_case "nested launch rejected" `Quick test_nested_launch_rejected;
        Alcotest.test_case "exception handling" `Quick test_exception_marks_failed;
        Alcotest.test_case "voluntary yield" `Quick test_voluntary_yield;
        Alcotest.test_case "checkpoint outside fn" `Quick test_checkpoint_outside_fn_noop;
        Alcotest.test_case "yield outside fn" `Quick test_yield_outside_fn_rejected;
        Alcotest.test_case "set_quantum" `Quick test_set_quantum;
        Alcotest.test_case "per-fn quantum" `Quick test_per_fn_quantum;
        Alcotest.test_case "clock rules" `Quick test_virtual_clock_rules;
        Alcotest.test_case "timer domain (wall)" `Slow test_timer_domain_preempts_wall_clock;
        Alcotest.test_case "request_sched HoL removal" `Quick test_request_sched_hol_removal;
        Alcotest.test_case "request_sched nested submit" `Quick test_request_sched_nested_submit;
        Alcotest.test_case "request_sched per-request quantum" `Quick
          test_request_sched_per_request_quantum;
        QCheck_alcotest.to_alcotest round_robin_property;
      ] );
  ]
