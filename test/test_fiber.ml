(* Tests for the real-execution fiber runtime (OCaml 5 effects). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

module F = Fiber_rt.Fiber
module Clock = Fiber_rt.Deadline_clock

let make ?(quantum = 1_000) () =
  let clock = Clock.virtual_ () in
  let rt = F.create ~quantum_ns:quantum ~clock () in
  (clock, rt)

(* A fiber that "works" for [units] steps of [step] virtual ns each,
   checkpointing between steps. *)
let worker clock rt ~units ~step () =
  for _ = 1 to units do
    Clock.advance clock step;
    F.checkpoint rt
  done;
  units * step

let worker_unit clock rt ~units ~step () = ignore (worker clock rt ~units ~step () : int)

let test_completes_within_quantum () =
  let clock, rt = make () in
  let fn = F.fn_launch rt (worker clock rt ~units:2 ~step:100) in
  check_bool "completed in one slice" true (F.fn_completed fn);
  Alcotest.(check (option int)) "result" (Some 200) (F.result fn);
  check_int "no preemptions" 0 (F.preempt_count fn)

let test_preempted_at_quantum () =
  let clock, rt = make ~quantum:1_000 () in
  let fn = F.fn_launch rt (worker clock rt ~units:10 ~step:300) in
  check_bool "not completed yet" false (F.fn_completed fn);
  check_int "one preemption so far" 1 (F.preempt_count fn);
  (* 4 steps of 300 cross the 1000ns deadline; 6 remain. *)
  let rec drain n = if not (F.fn_completed fn) then (F.fn_resume fn; drain (n + 1)) else n in
  let resumes = drain 0 in
  check_bool "took multiple slices" true (resumes >= 1);
  Alcotest.(check (option int)) "full result" (Some 3_000) (F.result fn);
  check_bool "runtime counter matches" true (F.preemptions rt >= F.preempt_count fn)

let test_deterministic_slicing () =
  let run () =
    let clock, rt = make ~quantum:1_000 () in
    let order = ref [] in
    let task name units () =
      ignore (worker clock rt ~units ~step:400 ());
      order := name :: !order
    in
    let stats = Fiber_rt.Round_robin.run rt [ task "a" 10; task "b" 3; task "c" 5 ] in
    (List.rev !order, stats.Fiber_rt.Round_robin.preemptions)
  in
  let o1, p1 = run () and o2, p2 = run () in
  Alcotest.(check (list string)) "same interleaving" o1 o2;
  check_int "same preemption count" p1 p2;
  Alcotest.(check (list string)) "short tasks finish first" [ "b"; "c"; "a" ] o1

let test_fn_resume_errors () =
  let clock, rt = make () in
  let fn = F.fn_launch rt (worker clock rt ~units:1 ~step:10) in
  Alcotest.check_raises "resume completed"
    (Invalid_argument "Fiber.fn_resume: function already completed") (fun () -> F.fn_resume fn)

let test_nested_launch_rejected () =
  let clock, rt = make () in
  ignore clock;
  let fn =
    F.fn_launch rt (fun () ->
        try
          ignore (F.fn_launch rt (fun () -> ()));
          false
        with Invalid_argument _ -> true)
  in
  Alcotest.(check (option bool)) "nested launch rejected" (Some true) (F.result fn)

let test_exception_marks_failed () =
  let _, rt = make () in
  check_bool "exception propagates" true
    (try
       ignore (F.fn_launch rt (fun () -> failwith "boom"));
       false
     with Failure _ -> true);
  (* runtime is reusable after a failed fiber *)
  let fn = F.fn_launch rt (fun () -> 41 + 1) in
  Alcotest.(check (option int)) "recovered" (Some 42) (F.result fn)

let test_voluntary_yield () =
  let _, rt = make () in
  let fn = F.fn_launch rt (fun () -> F.yield rt; 7) in
  check_bool "suspended, not completed" false (F.fn_completed fn);
  check_int "voluntary: no preemption counted" 0 (F.preempt_count fn);
  F.fn_resume fn;
  Alcotest.(check (option int)) "completes after resume" (Some 7) (F.result fn)

let test_checkpoint_outside_fn_noop () =
  let _, rt = make () in
  F.checkpoint rt (* must not raise or preempt *)

let test_yield_outside_fn_rejected () =
  let _, rt = make () in
  Alcotest.check_raises "yield outside" (Invalid_argument "Fiber.yield: no function is running")
    (fun () -> F.yield rt)

let test_set_quantum () =
  let clock, rt = make ~quantum:10_000 () in
  F.set_quantum_ns rt 500;
  check_int "updated" 500 (F.quantum_ns rt);
  let fn = F.fn_launch rt (worker clock rt ~units:3 ~step:400) in
  check_bool "preempted under new quantum" false (F.fn_completed fn);
  let rec drain () = if not (F.fn_completed fn) then (F.fn_resume fn; drain ()) in
  drain ();
  Alcotest.check_raises "non-positive quantum"
    (Invalid_argument "Fiber.set_quantum_ns: quantum must be positive") (fun () ->
      F.set_quantum_ns rt 0)

let test_per_fn_quantum () =
  let clock, rt = make ~quantum:1_000_000 () in
  let fn = F.fn_launch rt ~quantum_ns:500 (worker clock rt ~units:3 ~step:400) in
  check_bool "tight per-fn quantum preempts" false (F.fn_completed fn);
  let rec drain () = if not (F.fn_completed fn) then (F.fn_resume fn; drain ()) in
  drain ()

let test_virtual_clock_rules () =
  let wall = Clock.wall () in
  check_bool "wall ticks" true (Clock.now_ns wall > 0);
  Alcotest.check_raises "cannot advance wall"
    (Invalid_argument "Deadline_clock.advance: cannot advance the wall clock") (fun () ->
      Clock.advance wall 1);
  Alcotest.check_raises "timer domain needs wall clock"
    (Invalid_argument "Fiber.create: a timer domain cannot watch a virtual clock") (fun () ->
      ignore (F.create ~timer:F.Timer_domain ~clock:(Clock.virtual_ ()) ()))

let test_timer_domain_preempts_wall_clock () =
  (* Real time, real domain. On a single-CPU host the timer domain only
     runs when the kernel schedules it, so just require that preemption
     happens at all (the paper dedicates a core to the timer for exactly
     this reason). *)
  let rt = F.create ~quantum_ns:1_000_000 ~timer:F.Timer_domain ~clock:(Clock.wall ()) () in
  let spin () =
    let stop = Unix.gettimeofday () +. 0.08 in
    while Unix.gettimeofday () < stop do
      F.checkpoint rt
    done
  in
  let stats = Fiber_rt.Round_robin.run rt [ spin ] in
  F.shutdown rt;
  F.shutdown rt;
  (* idempotent *)
  check_int "completed" 1 stats.Fiber_rt.Round_robin.completed;
  check_bool "was preempted by the timer domain" true
    (stats.Fiber_rt.Round_robin.preemptions > 0)

(* ------------------------------------------------------------------ *)
(* Edge cases: sub-checkpoint quanta, teardown mid-preempt, cross-     *)
(* domain flag visibility, lifecycle stress                            *)
(* ------------------------------------------------------------------ *)

let test_resume_while_running_rejected () =
  (* A fiber that (on its second slice) tries to resume itself while
     running: fn_resume must reject a Running_state fn. *)
  let _, rt = make () in
  let self = ref None in
  let caught = ref false in
  let g =
    F.fn_launch rt (fun () ->
        F.yield rt;
        match !self with
        | Some s -> ( try F.fn_resume s with Invalid_argument _ -> caught := true)
        | None -> ())
  in
  self := Some g;
  F.fn_resume g;
  check_bool "completed" true (F.fn_completed g);
  check_bool "resuming a running fn raises" true !caught

let test_quantum_smaller_than_checkpoint_interval () =
  (* Quantum 50 ns but every checkpoint interval advances 300 ns: the
     slice expires before the first safepoint, so every checkpoint
     preempts and progress is exactly one step per slice. *)
  let clock, rt = make ~quantum:50 () in
  let units = 5 in
  let fn = F.fn_launch rt (worker clock rt ~units ~step:300) in
  let resumes = ref 0 in
  while not (F.fn_completed fn) do
    incr resumes;
    F.fn_resume fn
  done;
  Alcotest.(check (option int)) "correct result" (Some 1500) (F.result fn);
  check_bool "one preemption per step" true (F.preempt_count fn >= units);
  check_int "one resume per step" units !resumes

let test_timer_domain_teardown_mid_preempt () =
  (* Shut the timer domain down while a preempted fiber is suspended
     mid-flight; the continuation must still be resumable and, with no
     timer left, runs to completion unpreempted. *)
  let rt = F.create ~quantum_ns:200_000 ~timer:F.Timer_domain ~clock:(Clock.wall ()) () in
  let fn =
    F.fn_launch rt (fun () ->
        (* Spin (checkpointing) until the timer preempts this slice, or
           a 2 s safety deadline expires on a pathologically loaded
           host. *)
        let deadline = Unix.gettimeofday () +. 2.0 in
        let preempts0 = F.preemptions rt in
        while F.preemptions rt = preempts0 && Unix.gettimeofday () < deadline do
          F.checkpoint rt
        done)
  in
  if not (F.fn_completed fn) then begin
    (* Suspended mid-preempt: tear the timer down NOW. *)
    F.shutdown rt;
    F.shutdown rt;
    check_bool "dead after shutdown" false (F.alive rt);
    F.fn_resume fn;
    check_bool "completed after teardown" true (F.fn_completed fn)
  end
  else
    (* The 2 s safety deadline expired without a preemption (massively
       loaded host) — still exercise double shutdown. *)
    F.shutdown rt;
  F.shutdown rt

let test_external_flag_visible_across_domains () =
  (* Atomic fence correctness: domain B raises the preempt flag via
     poll_slot; the fiber spinning on domain A must observe it at a
     checkpoint and suspend. *)
  let rt = F.create ~quantum_ns:1_000_000_000 ~timer:F.External ~clock:(Clock.wall ()) () in
  let progress = Atomic.make 0 in
  let d =
    Domain.spawn (fun () ->
        let fn =
          F.fn_launch rt (fun () ->
              while true do
                Atomic.incr progress;
                F.checkpoint rt
              done)
        in
        (* fn_launch returns when the fiber suspends. *)
        (F.fn_completed fn, F.preempt_count fn))
  in
  while Atomic.get progress = 0 do
    Domain.cpu_relax ()
  done;
  (* Fire the slot from this domain (now >= any armed deadline). *)
  while not (F.poll_slot rt ~now_ns:max_int) do
    Domain.cpu_relax ()
  done;
  let completed, preempts = Domain.join d in
  F.shutdown rt;
  check_bool "fiber suspended, not completed" false completed;
  check_int "exactly one preemption observed" 1 preempts

let test_external_poll_slot_disarmed () =
  let _, rt = make () in
  check_bool "disarmed slot does not fire" false (F.poll_slot rt ~now_ns:max_int)

let test_sleep_until_blocked_until () =
  let clock, rt = make ~quantum:1_000_000 () in
  ignore clock;
  let fn = F.fn_launch rt (fun () -> F.sleep_until rt ~wake_ns:12_345) in
  check_bool "suspended" false (F.fn_completed fn);
  Alcotest.(check (option int)) "wake time recorded" (Some 12_345) (F.blocked_until fn);
  F.fn_resume fn;
  check_bool "completed" true (F.fn_completed fn);
  Alcotest.(check (option int)) "cleared on resume" None (F.blocked_until fn);
  Alcotest.check_raises "sleep outside fn"
    (Invalid_argument "Fiber.sleep_until: no function is running") (fun () ->
      F.sleep_until rt ~wake_ns:1)

let test_lifecycle_stress_100_runtimes () =
  (* create/shutdown must be leak-free and idempotent under repetition:
     100 timer-domain runtimes, each runs one fiber, double-shutdown. *)
  for i = 1 to 100 do
    let rt = F.create ~quantum_ns:1_000_000 ~timer:F.Timer_domain ~clock:(Clock.wall ()) () in
    let fn = F.fn_launch rt (fun () -> i * 2) in
    Alcotest.(check (option int)) "fiber ran" (Some (i * 2)) (F.result fn);
    F.shutdown rt;
    F.shutdown rt;
    check_bool "dead" false (F.alive rt)
  done

(* ------------------------------------------------------------------ *)
(* Request_sched: the FCFS-with-preemption policy over real fibers     *)
(* ------------------------------------------------------------------ *)

let test_request_sched_hol_removal () =
  let clock, rt = make ~quantum:1_000 () in
  let sched = Fiber_rt.Request_sched.create rt in
  let order = ref [] in
  let request name units () =
    ignore (worker clock rt ~units ~step:300 ());
    order := name :: !order
  in
  let long = Fiber_rt.Request_sched.submit sched (request "long" 50) in
  let short = Fiber_rt.Request_sched.submit sched (request "short" 2) in
  let stats = Fiber_rt.Request_sched.run_until_idle sched in
  check_int "both completed" 2 stats.Fiber_rt.Request_sched.completed;
  Alcotest.(check (list string)) "short escaped HoL" [ "short"; "long" ] (List.rev !order);
  check_bool "long was preempted" true (Fiber_rt.Request_sched.preempt_count long >= 1);
  check_int "short never preempted" 0 (Fiber_rt.Request_sched.preempt_count short);
  check_bool "both report completed" true
    (Fiber_rt.Request_sched.completed long && Fiber_rt.Request_sched.completed short)

let test_request_sched_nested_submit () =
  let clock, rt = make ~quantum:10_000 () in
  let sched = Fiber_rt.Request_sched.create rt in
  let child_ran = ref false in
  ignore
    (Fiber_rt.Request_sched.submit sched (fun () ->
         Clock.advance clock 100;
         ignore
           (Fiber_rt.Request_sched.submit sched (fun () -> child_ran := true))));
  let stats = Fiber_rt.Request_sched.run_until_idle sched in
  check_int "parent and child completed" 2 stats.Fiber_rt.Request_sched.completed;
  check_bool "child ran" true !child_ran

let test_request_sched_per_request_quantum () =
  let clock, rt = make ~quantum:1_000_000 () in
  let sched = Fiber_rt.Request_sched.create rt in
  let tight =
    Fiber_rt.Request_sched.submit sched ~quantum_ns:500 (worker_unit clock rt ~units:10 ~step:300)
  in
  let stats = Fiber_rt.Request_sched.run_until_idle sched in
  check_int "completed" 1 stats.Fiber_rt.Request_sched.completed;
  check_bool "tight quantum preempted it" true (Fiber_rt.Request_sched.preempt_count tight >= 1)

let round_robin_property =
  QCheck.Test.make ~name:"round robin completes every fiber exactly once" ~count:30
    QCheck.(list_of_size (Gen.int_range 1 12) (int_range 1 20))
    (fun sizes ->
      let clock, rt = make ~quantum:700 () in
      let done_count = ref 0 in
      let tasks =
        List.map
          (fun units () ->
            ignore (worker clock rt ~units ~step:250 ());
            incr done_count)
          sizes
      in
      let stats = Fiber_rt.Round_robin.run rt tasks in
      stats.Fiber_rt.Round_robin.completed = List.length sizes
      && !done_count = List.length sizes)

let suites =
  [
    ( "fiber_rt.fiber",
      [
        Alcotest.test_case "completes within quantum" `Quick test_completes_within_quantum;
        Alcotest.test_case "preempted at quantum" `Quick test_preempted_at_quantum;
        Alcotest.test_case "deterministic slicing" `Quick test_deterministic_slicing;
        Alcotest.test_case "resume errors" `Quick test_fn_resume_errors;
        Alcotest.test_case "nested launch rejected" `Quick test_nested_launch_rejected;
        Alcotest.test_case "exception handling" `Quick test_exception_marks_failed;
        Alcotest.test_case "voluntary yield" `Quick test_voluntary_yield;
        Alcotest.test_case "checkpoint outside fn" `Quick test_checkpoint_outside_fn_noop;
        Alcotest.test_case "yield outside fn" `Quick test_yield_outside_fn_rejected;
        Alcotest.test_case "set_quantum" `Quick test_set_quantum;
        Alcotest.test_case "per-fn quantum" `Quick test_per_fn_quantum;
        Alcotest.test_case "clock rules" `Quick test_virtual_clock_rules;
        Alcotest.test_case "timer domain (wall)" `Slow test_timer_domain_preempts_wall_clock;
        Alcotest.test_case "resume while running rejected" `Quick
          test_resume_while_running_rejected;
        Alcotest.test_case "quantum below checkpoint interval" `Quick
          test_quantum_smaller_than_checkpoint_interval;
        Alcotest.test_case "timer teardown mid-preempt" `Slow
          test_timer_domain_teardown_mid_preempt;
        Alcotest.test_case "preempt flag visible across domains" `Slow
          test_external_flag_visible_across_domains;
        Alcotest.test_case "poll_slot on a disarmed slot" `Quick
          test_external_poll_slot_disarmed;
        Alcotest.test_case "sleep_until records wake time" `Quick
          test_sleep_until_blocked_until;
        Alcotest.test_case "100-runtime create/shutdown stress" `Slow
          test_lifecycle_stress_100_runtimes;
        Alcotest.test_case "request_sched HoL removal" `Quick test_request_sched_hol_removal;
        Alcotest.test_case "request_sched nested submit" `Quick test_request_sched_nested_submit;
        Alcotest.test_case "request_sched per-request quantum" `Quick
          test_request_sched_per_request_quantum;
        QCheck_alcotest.to_alcotest round_robin_property;
      ] );
  ]
