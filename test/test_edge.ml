(* Edge-case coverage for paths the main suites don't reach. *)

open Engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Engine *)

let test_rng_uniform_bounds () =
  let r = Rng.create 2L in
  for _ = 1 to 5_000 do
    let x = Rng.uniform r ~lo:(-3.0) ~hi:7.0 in
    check_bool "in range" true (x >= -3.0 && x < 7.0)
  done;
  Alcotest.check_raises "lo > hi" (Invalid_argument "Rng.uniform: lo > hi") (fun () ->
      ignore (Rng.uniform r ~lo:1.0 ~hi:0.0))

let test_rng_bool_balanced () =
  let r = Rng.create 3L in
  let heads = ref 0 in
  for _ = 1 to 20_000 do
    if Rng.bool r then incr heads
  done;
  check_bool "roughly balanced" true (abs (!heads - 10_000) < 500)

let test_sim_event_introspection () =
  let sim = Sim.create () in
  let ev = Sim.at sim 500 (fun () -> ()) in
  check_int "time_of" 500 (Sim.time_of ev);
  check_bool "pending" true (Sim.is_pending ev);
  check_int "queue count" 1 (Sim.pending sim);
  Sim.run sim;
  check_bool "fired" false (Sim.is_pending ev);
  check_int "clock" 500 (Sim.now sim)

let test_sim_run_until_advances_clock_when_idle () =
  let sim = Sim.create () in
  Sim.run_until sim 12_345;
  check_int "clock moved with no events" 12_345 (Sim.now sim)

(* Stat *)

let test_histogram_merge_mismatch () =
  let a = Stat.Histogram.create ~buckets_per_decade:90 () in
  let b = Stat.Histogram.create ~buckets_per_decade:45 () in
  Alcotest.check_raises "mismatch" (Invalid_argument "Histogram.merge_into: parameter mismatch")
    (fun () -> Stat.Histogram.merge_into ~dst:a ~src:b)

let test_summary_pp_format () =
  let s = Stat.Summary.create () in
  Stat.Summary.record s 1_000.0;
  Stat.Summary.record s 3_000.0;
  let out = Format.asprintf "%a" Stat.Summary.pp_report_us (Stat.Summary.report s) in
  check_bool "mentions count" true (Astring_contains.contains out "n=2");
  check_bool "prints microseconds" true (Astring_contains.contains out "us")

let test_timeseries_sum () =
  let ts = Stat.Timeseries.create ~window_ns:100 in
  Stat.Timeseries.record ts ~time:10 2.5;
  Stat.Timeseries.record ts ~time:20 1.5;
  match Stat.Timeseries.points ts with
  | [ p ] -> Alcotest.(check (float 1e-9)) "sum" 4.0 p.Stat.Timeseries.sum
  | _ -> Alcotest.fail "one window expected"

(* Workload *)

let test_pareto_dist_sampling () =
  let rng = Rng.create 4L in
  let d = Workload.Service_dist.pareto ~scale_ns:1_000 ~shape:1.5 in
  for _ = 1 to 2_000 do
    check_bool "above scale" true (Workload.Service_dist.sample d rng ~now:0 >= 1_000)
  done;
  check_bool "finite analytic mean for shape>1" true
    (Float.is_finite (Workload.Service_dist.mean_ns d ~now:0));
  let heavy = Workload.Service_dist.pareto ~scale_ns:1_000 ~shape:0.9 in
  check_bool "infinite mean for shape<=1" true
    (Workload.Service_dist.mean_ns heavy ~now:0 = infinity)

let test_source_of_fn_guard () =
  let bad = Workload.Source.of_fn ~name:"bad" (fun _ ~now:_ -> (0, Workload.Request.Latency_critical)) in
  Alcotest.check_raises "non-positive service"
    (Invalid_argument "Source.draw: sampler returned non-positive service time") (fun () ->
      ignore (Workload.Source.draw bad (Rng.create 1L) ~now:0))

let test_bursty_gap_follows_phase () =
  let rng = Rng.create 5L in
  let a =
    Workload.Arrival.bursty ~base_rate_per_sec:10_000.0 ~spike_rate_per_sec:1_000_000.0
      ~period_ns:(Units.ms 10) ~spike_fraction:0.5
  in
  (* average gaps in each phase differ by ~the rate ratio *)
  let mean_gap now =
    let acc = ref 0 in
    for _ = 1 to 3_000 do
      acc := !acc + Workload.Arrival.next_gap a rng ~now
    done;
    float_of_int !acc /. 3_000.0
  in
  let spike = mean_gap 100 in
  let base = mean_gap (Units.ms 9) in
  check_bool "spike gaps much shorter" true (base > 20.0 *. spike)

(* Policy / server odds and ends *)

let test_policy_names () =
  check_bool "fcfs name has quantum" true
    (Astring_contains.contains (Preemptible.Policy.fcfs_preempt ~quantum_ns:30_000).Preemptible.Policy.name "30");
  check_bool "be quantum name" true
    (Astring_contains.contains
       (Preemptible.Policy.with_be_quantum
          (Preemptible.Policy.fcfs_preempt ~quantum_ns:5_000)
          ~be_quantum_ns:50_000)
         .Preemptible.Policy.name "be")

let test_server_ps_policy_runs () =
  let cfg =
    Preemptible.Server.default_config ~n_workers:2
      ~policy:(Preemptible.Policy.processor_sharing ~quantum_ns:5_000)
      ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config)
  in
  let r =
    Preemptible.Server.run cfg
      ~arrival:(Workload.Arrival.poisson ~rate_per_sec:300_000.0)
      ~source:
        (Workload.Source.of_dist Workload.Service_dist.workload_a1
           ~cls:Workload.Request.Latency_critical)
      ~duration_ns:(Units.ms 20)
  in
  check_int "conserves" r.Preemptible.Server.offered r.Preemptible.Server.completed

let test_server_signal_utimer_validation () =
  let cfg =
    Preemptible.Server.default_config ~n_workers:1 ~policy:Preemptible.Policy.no_preempt
      ~mechanism:(Preemptible.Server.Signal_utimer { poll_ns = 0 })
  in
  Alcotest.check_raises "poll must be positive"
    (Invalid_argument "Server: Signal_utimer poll must be positive") (fun () ->
      ignore
        (Preemptible.Server.run cfg
           ~arrival:(Workload.Arrival.poisson ~rate_per_sec:1_000.0)
           ~source:
             (Workload.Source.of_dist (Workload.Service_dist.constant 100)
                ~cls:Workload.Request.Latency_critical)
           ~duration_ns:1_000_000))

let test_cancel_needs_preemption () =
  (* Without a preemption mechanism nothing can be cancelled: the hook
     only runs at preemption time. *)
  let cfg =
    Preemptible.Server.default_config ~n_workers:1 ~policy:Preemptible.Policy.no_preempt
      ~mechanism:Preemptible.Server.No_mechanism
  in
  let cfg = { cfg with Preemptible.Server.cancel_after_slo = Some 1_000 } in
  let r =
    Preemptible.Server.run cfg
      ~arrival:(Workload.Arrival.poisson ~rate_per_sec:100_000.0)
      ~source:
        (Workload.Source.of_dist Workload.Service_dist.workload_a1
           ~cls:Workload.Request.Latency_critical)
      ~duration_ns:(Units.ms 10)
  in
  check_int "no cancellations possible" 0 r.Preemptible.Server.cancelled

(* Fiber *)

let test_fiber_result_none_while_suspended () =
  let clock = Fiber_rt.Deadline_clock.virtual_ () in
  let rt = Fiber_rt.Fiber.create ~quantum_ns:100 ~clock () in
  let fn =
    Fiber_rt.Fiber.fn_launch rt (fun () ->
        Fiber_rt.Deadline_clock.advance clock 200;
        Fiber_rt.Fiber.checkpoint rt;
        42)
  in
  Alcotest.(check (option int)) "no result yet" None (Fiber_rt.Fiber.result fn);
  Fiber_rt.Fiber.fn_resume fn;
  Alcotest.(check (option int)) "result after resume" (Some 42) (Fiber_rt.Fiber.result fn)

let test_fiber_launch_quantum_validation () =
  let clock = Fiber_rt.Deadline_clock.virtual_ () in
  let rt = Fiber_rt.Fiber.create ~clock () in
  Alcotest.check_raises "bad per-fn quantum"
    (Invalid_argument "Fiber.fn_launch: quantum must be positive") (fun () ->
      ignore (Fiber_rt.Fiber.fn_launch rt ~quantum_ns:0 (fun () -> ())))

(* Additional cross-checks *)

let test_context_free_list_is_lifo () =
  let pool = Preemptible.Context.create_pool ~capacity:3 ~stack_kb:16 in
  let a = Preemptible.Context.alloc pool in
  let b = Preemptible.Context.alloc pool in
  Preemptible.Context.release pool b;
  Preemptible.Context.release pool a;
  (* cache-friendly reuse: most recently released comes back first *)
  let c = Preemptible.Context.alloc pool in
  check_int "lifo reuse" (Preemptible.Context.ctx_id a) (Preemptible.Context.ctx_id c)

let test_fn_deadline_tracks_resume () =
  let pool = Preemptible.Context.create_pool ~capacity:1 ~stack_kb:16 in
  let req =
    Workload.Request.make ~id:0 ~arrival_ns:0 ~service_ns:10_000
      ~cls:Workload.Request.Latency_critical
  in
  let fn = Preemptible.Fn.create req ~ctx:(Preemptible.Context.alloc pool) in
  Preemptible.Fn.launch fn ~now:100 ~quantum_ns:1_000;
  Preemptible.Fn.note_progress fn ~executed_ns:1_000;
  Preemptible.Fn.preempt fn;
  check_int "deadline cleared on preempt" max_int (Preemptible.Fn.deadline_ns fn);
  Preemptible.Fn.resume fn ~now:5_000 ~quantum_ns:2_000;
  check_int "deadline re-set on resume" 7_000 (Preemptible.Fn.deadline_ns fn)

let test_stats_window_accessor () =
  let w = Preemptible.Stats_window.create ~window_ns:123 in
  check_int "window_ns" 123 (Preemptible.Stats_window.window_ns w)

let test_ipc_pp_result () =
  let r = Ksim.Ipc.run_pingpong Ksim.Ipc.Mq ~n:100 in
  let out = Format.asprintf "%a" Ksim.Ipc.pp_result r in
  check_bool "names mechanism" true (Astring_contains.contains out "mq");
  check_bool "prints rate" true (Astring_contains.contains out "msg/s")

let test_quantile_p2_extremes () =
  (* All-equal observations must not divide by zero. *)
  let p2 = Stat.Quantile.P2.create 0.9 in
  for _ = 1 to 100 do
    Stat.Quantile.P2.add p2 5.0
  done;
  Alcotest.(check (float 1e-9)) "degenerate stream" 5.0 (Stat.Quantile.P2.get p2)

let test_units_negative_pp () =
  let out = Format.asprintf "%a" Units.pp_duration (-500) in
  check_bool "negative printable" true (Astring_contains.contains out "-500")

let test_tsc_roundtrip_property () =
  let p = Hw.Params.default in
  for ns = 0 to 1_000 do
    let c = Hw.Params.tsc_of_ns p (ns * 997) in
    let back = Hw.Params.ns_of_tsc p c in
    check_bool "roundtrip within 1ns" true (abs (back - (ns * 997)) <= 1)
  done

let test_libinger_matches_server_kernel_mech () =
  (* The Libinger wrapper is exactly Server + Kernel_timer; same seed,
     same answer. *)
  let arrival = Workload.Arrival.poisson ~rate_per_sec:200_000.0 in
  let source =
    Workload.Source.of_dist Workload.Service_dist.workload_a1
      ~cls:Workload.Request.Latency_critical
  in
  let via_wrapper =
    Baselines.Libinger.run
      (Baselines.Libinger.default_config ~n_workers:3 ~quantum_ns:(Units.us 20))
      ~arrival ~source ~duration_ns:(Units.ms 20)
  in
  let via_server =
    let cfg =
      Preemptible.Server.default_config ~n_workers:3
        ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:(Units.us 20))
        ~mechanism:Preemptible.Server.Kernel_timer
    in
    Preemptible.Server.run cfg ~arrival ~source ~duration_ns:(Units.ms 20)
  in
  Alcotest.(check (float 0.0)) "identical p99"
    via_server.Preemptible.Server.all.Stat.Summary.p99
    via_wrapper.Preemptible.Server.all.Stat.Summary.p99

let test_hill_rejects_bad_k () =
  Alcotest.check_raises "k out of range" (Invalid_argument "Tail_index.hill: k out of range")
    (fun () -> ignore (Stat.Tail_index.hill [| 1.0; 2.0 |] ~k:5))

let suites =
  [
    ( "edge",
      [
        Alcotest.test_case "rng uniform" `Quick test_rng_uniform_bounds;
        Alcotest.test_case "rng bool" `Quick test_rng_bool_balanced;
        Alcotest.test_case "sim event introspection" `Quick test_sim_event_introspection;
        Alcotest.test_case "run_until idle clock" `Quick test_sim_run_until_advances_clock_when_idle;
        Alcotest.test_case "histogram merge mismatch" `Quick test_histogram_merge_mismatch;
        Alcotest.test_case "summary pp" `Quick test_summary_pp_format;
        Alcotest.test_case "timeseries sum" `Quick test_timeseries_sum;
        Alcotest.test_case "pareto dist" `Quick test_pareto_dist_sampling;
        Alcotest.test_case "source guard" `Quick test_source_of_fn_guard;
        Alcotest.test_case "bursty phases" `Quick test_bursty_gap_follows_phase;
        Alcotest.test_case "policy names" `Quick test_policy_names;
        Alcotest.test_case "ps policy server" `Slow test_server_ps_policy_runs;
        Alcotest.test_case "signal_utimer validation" `Quick test_server_signal_utimer_validation;
        Alcotest.test_case "cancel needs preemption" `Quick test_cancel_needs_preemption;
        Alcotest.test_case "fiber result states" `Quick test_fiber_result_none_while_suspended;
        Alcotest.test_case "fiber quantum validation" `Quick test_fiber_launch_quantum_validation;
        Alcotest.test_case "context lifo reuse" `Quick test_context_free_list_is_lifo;
        Alcotest.test_case "fn deadline on resume" `Quick test_fn_deadline_tracks_resume;
        Alcotest.test_case "stats window accessor" `Quick test_stats_window_accessor;
        Alcotest.test_case "ipc pp" `Quick test_ipc_pp_result;
        Alcotest.test_case "p2 degenerate stream" `Quick test_quantile_p2_extremes;
        Alcotest.test_case "units negative pp" `Quick test_units_negative_pp;
        Alcotest.test_case "tsc roundtrip" `Quick test_tsc_roundtrip_property;
        Alcotest.test_case "libinger = server+kernel_timer" `Slow
          test_libinger_matches_server_kernel_mech;
        Alcotest.test_case "hill bad k" `Quick test_hill_rejects_bad_k;
      ] );
  ]
