(* Integration tests: pin the evaluation *shapes* the reproduction
   stands on, end-to-end across modules. These are the regression
   guards for EXPERIMENTS.md. *)

open Engine

let check_bool = Alcotest.(check bool)

let lc_source dist = Workload.Source.of_dist dist ~cls:Workload.Request.Latency_critical

let run_lp ?(workers = 4) ?(quantum = Units.us 5) ?(stealing = true) ~dist ~rate () =
  let cfg =
    Preemptible.Server.default_config ~n_workers:workers
      ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:quantum)
      ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config)
  in
  let cfg = { cfg with Preemptible.Server.work_stealing = stealing } in
  Preemptible.Server.run ~warmup_ns:(Units.ms 10) cfg
    ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
    ~source:(lc_source dist) ~duration_ns:(Units.ms 60)

let p99 (r : Preemptible.Server.result) = r.Preemptible.Server.all.Stat.Summary.p99

(* Fig 2 shape: on the heavy-tailed bimodal, smaller quanta strictly
   improve p99 at high load; on the light-tailed exponential, the
   aggressive quantum is no better (and typically worse). *)
let test_fig2_crossover () =
  let heavy = Workload.Service_dist.workload_a1 in
  let rate_h = 0.8 *. (4.0 *. 1e9 /. Workload.Service_dist.mean_ns heavy ~now:0) in
  let h5 = run_lp ~dist:heavy ~rate:rate_h ~quantum:(Units.us 5) () in
  let h100 = run_lp ~dist:heavy ~rate:rate_h ~quantum:(Units.us 100) () in
  let hnop =
    let cfg =
      Preemptible.Server.default_config ~n_workers:4 ~policy:Preemptible.Policy.no_preempt
        ~mechanism:Preemptible.Server.No_mechanism
    in
    Preemptible.Server.run ~warmup_ns:(Units.ms 10) cfg
      ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate_h)
      ~source:(lc_source heavy) ~duration_ns:(Units.ms 60)
  in
  check_bool "heavy: q5 beats q100" true (p99 h5 < p99 h100);
  check_bool "heavy: q100 beats no-preempt" true (p99 h100 < p99 hnop);
  let light = Workload.Service_dist.workload_b in
  let rate_l = 0.85 *. (4.0 *. 1e9 /. Workload.Service_dist.mean_ns light ~now:0) in
  let l5 = run_lp ~dist:light ~rate:rate_l ~quantum:(Units.us 5) () in
  let l100 = run_lp ~dist:light ~rate:rate_l ~quantum:(Units.us 100) () in
  check_bool "light: aggressive quantum does not help" true (p99 l5 >= 0.9 *. p99 l100)

(* Fig 8 headline: at 90% load on A1, LibPreemptible's p99 is an order
   of magnitude below Shinjuku's. *)
let test_fig8_headline () =
  let dist = Workload.Service_dist.workload_a1 in
  let rate = 0.9 *. (4.0 *. 1e9 /. Workload.Service_dist.mean_ns dist ~now:0) in
  let lp = run_lp ~dist ~rate () in
  let shinjuku =
    let cfg = Baselines.Shinjuku.default_config ~n_workers:5 ~quantum_ns:(Units.us 5) in
    Baselines.Shinjuku.run ~warmup_ns:(Units.ms 10) cfg
      ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
      ~source:(lc_source dist) ~duration_ns:(Units.ms 60)
  in
  check_bool "LP ~10x better tail than Shinjuku on A1@90%" true
    (p99 shinjuku > 8.0 *. p99 lp)

(* The UINTR ablation (Fig 8 orange): signal-based delivery costs >2x
   tail at high load. *)
let test_nouintr_ablation () =
  let dist = Workload.Service_dist.workload_a1 in
  let rate = 0.9 *. (4.0 *. 1e9 /. Workload.Service_dist.mean_ns dist ~now:0) in
  let lp = run_lp ~dist ~rate () in
  let nouintr =
    let cfg =
      Preemptible.Server.default_config ~n_workers:4
        ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:(Units.us 5))
        ~mechanism:(Preemptible.Server.Signal_utimer { poll_ns = 500 })
    in
    Preemptible.Server.run ~warmup_ns:(Units.ms 10) cfg
      ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
      ~source:(lc_source dist) ~duration_ns:(Units.ms 60)
  in
  check_bool "disabling UINTR degrades the tail >2x" true (p99 nouintr > 2.0 *. p99 lp)

(* Work stealing: at high load, stealing reduces tail latency (the
   centralized-lists load balancing the paper credits). *)
let test_work_stealing_helps () =
  let dist = Workload.Service_dist.workload_a1 in
  let rate = 0.9 *. (4.0 *. 1e9 /. Workload.Service_dist.mean_ns dist ~now:0) in
  let with_steal = run_lp ~dist ~rate ~stealing:true () in
  let without = run_lp ~dist ~rate ~stealing:false () in
  check_bool "stealing does not hurt the tail" true (p99 with_steal <= 1.1 *. p99 without)

(* Fig 13 shape: colocated MICA+zlib, 30us quantum cuts LC p99 by >2.5x
   while BE median rises by <50%. *)
let test_colocation_tradeoff () =
  let mica = Workload.Mica.create () in
  let zlib = Workload.Zlib_be.create () in
  let source =
    Workload.Source.mix
      [ (0.98, Workload.Mica.source mica); (0.02, Workload.Zlib_be.source zlib) ]
  in
  let run policy mechanism =
    let cfg = Preemptible.Server.default_config ~n_workers:1 ~policy ~mechanism in
    Preemptible.Server.run ~warmup_ns:(Units.ms 10) cfg
      ~arrival:(Workload.Arrival.poisson ~rate_per_sec:55_000.0)
      ~source ~duration_ns:(Units.ms 150)
  in
  let base = run Preemptible.Policy.no_preempt Preemptible.Server.No_mechanism in
  let lib =
    run
      (Preemptible.Policy.fcfs_preempt ~quantum_ns:(Units.us 30))
      (Preemptible.Server.Uintr_utimer Utimer.default_config)
  in
  let lc (r : Preemptible.Server.result) =
    (Option.get r.Preemptible.Server.lc).Stat.Summary.p99
  in
  let be_p50 (r : Preemptible.Server.result) =
    (Option.get r.Preemptible.Server.be).Stat.Summary.p50
  in
  check_bool "LC p99 gain > 2.5x" true (lc base > 2.5 *. lc lib);
  check_bool "BE median cost < 1.5x" true (be_p50 lib < 1.5 *. be_p50 base)

(* Fig 9 / Algorithm 1 end-to-end: on workload C the controller
   tightens during the heavy phase and relaxes during the light
   low-load phase. *)
let test_adaptive_trajectory () =
  let duration = Units.ms 240 in
  let dist = Workload.Service_dist.workload_c ~duration_ns:duration in
  let arrival =
    Workload.Arrival.piecewise
      [
        (duration / 2, Workload.Arrival.poisson ~rate_per_sec:900_000.0);
        (duration, Workload.Arrival.poisson ~rate_per_sec:150_000.0);
      ]
  in
  let controller =
    Preemptible.Quantum_controller.create
      ~config:
        {
          Preemptible.Quantum_controller.default_config with
          Preemptible.Quantum_controller.k1_ns = Units.us 8;
          k2_ns = Units.us 8;
          k3_ns = Units.us 8;
          l_high_fraction = 0.6;
          l_low_fraction = 0.2;
        }
      ~max_load_per_s:1_300_000.0 ~initial_quantum_ns:(Units.us 40) ()
  in
  let quanta = ref [] in
  let probes =
    {
      Preemptible.Server.on_complete = (fun ~now:_ ~latency_ns:_ ~cls:_ -> ());
      on_window = (fun _ ~quantum_ns -> quanta := quantum_ns :: !quanta);
      on_tick = ignore;
    }
  in
  let cfg =
    Preemptible.Server.default_config ~n_workers:4
      ~policy:(Preemptible.Policy.adaptive controller)
      ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config)
  in
  let cfg = { cfg with Preemptible.Server.stats_window_ns = Units.ms 20 } in
  let r =
    Preemptible.Server.run ~probes cfg ~arrival
      ~source:(lc_source dist) ~duration_ns:duration
  in
  ignore r;
  let qs = List.rev !quanta in
  let n = List.length qs in
  check_bool "several windows" true (n >= 8);
  let mid = List.nth qs ((n / 2) - 1) in
  let last = List.nth qs (n - 1) in
  check_bool "tightened during heavy phase" true (mid < Units.us 40);
  check_bool "relaxed in light low-load phase" true (last > mid)

(* Table IV cross-check at the system level: the uintr mechanism fires
   orders of magnitude more cheaply than the signal path, visible as
   preemption counts at equal quanta. *)
let test_mechanism_efficiency () =
  let dist = Workload.Service_dist.workload_a1 in
  let rate = 0.7 *. (4.0 *. 1e9 /. Workload.Service_dist.mean_ns dist ~now:0) in
  let lp = run_lp ~dist ~rate () in
  check_bool "uintr preempts promptly (many preemptions)" true
    (lp.Preemptible.Server.preemptions > 1_000);
  check_bool "few spurious interrupts" true
    (lp.Preemptible.Server.spurious_interrupts * 20 < lp.Preemptible.Server.preemptions)

let suites =
  [
    ( "integration",
      [
        Alcotest.test_case "fig2 crossover" `Slow test_fig2_crossover;
        Alcotest.test_case "fig8 headline" `Slow test_fig8_headline;
        Alcotest.test_case "no-uintr ablation" `Slow test_nouintr_ablation;
        Alcotest.test_case "work stealing" `Slow test_work_stealing_helps;
        Alcotest.test_case "fig13 colocation tradeoff" `Slow test_colocation_tradeoff;
        Alcotest.test_case "fig9 adaptive trajectory" `Slow test_adaptive_trajectory;
        Alcotest.test_case "mechanism efficiency" `Slow test_mechanism_efficiency;
      ] );
  ]
