(* Tests for the hardware model: UINTR fabric, posted IPIs, cores. *)

open Engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let params = Hw.Params.default

(* ------------------------------------------------------------------ *)
(* Params / Tsc                                                        *)
(* ------------------------------------------------------------------ *)

let test_tsc_conversion () =
  (* 1.7 GHz: 1000 ns = 1700 cycles *)
  check_int "ns->tsc" 1700 (Hw.Params.tsc_of_ns params 1000);
  check_int "tsc->ns" 1000 (Hw.Params.ns_of_tsc params 1700);
  let sim = Sim.create () in
  let tsc = Hw.Tsc.create sim params in
  check_int "tsc at 0" 0 (Hw.Tsc.rdtsc tsc);
  ignore (Sim.at sim 2000 (fun () -> ()));
  Sim.run sim;
  check_int "tsc tracks clock" 3400 (Hw.Tsc.rdtsc tsc);
  check_int "deadline_after" (3400 + 1700) (Hw.Tsc.deadline_after tsc 1000)

(* ------------------------------------------------------------------ *)
(* Uintr                                                               *)
(* ------------------------------------------------------------------ *)

let make_fabric () =
  let sim = Sim.create () in
  (sim, Hw.Uintr.create sim params)

let test_uintr_delivery_running () =
  let sim, fabric = make_fabric () in
  let delivered = ref [] in
  let r =
    Hw.Uintr.register_receiver fabric
      ~handler:(fun _ ~vector -> delivered := (vector, Sim.now sim) :: !delivered)
      ()
  in
  let s = Hw.Uintr.create_sender fabric () in
  let idx = Hw.Uintr.connect s r ~vector:3 in
  Hw.Uintr.senduipi s idx;
  Sim.run sim;
  (match !delivered with
  | [ (v, t) ] ->
    check_int "vector" 3 v;
    check_int "delivery latency" params.Hw.Params.uintr_delivery_ns t
  | l -> Alcotest.failf "expected one delivery, got %d" (List.length l));
  let st = Hw.Uintr.stats fabric in
  check_int "sends" 1 st.Hw.Uintr.sends;
  check_int "running deliveries" 1 st.Hw.Uintr.deliveries_running;
  check_int "blocked deliveries" 0 st.Hw.Uintr.deliveries_blocked

let test_uintr_delivery_blocked () =
  let sim, fabric = make_fabric () in
  let delivered_at = ref (-1) in
  let r =
    Hw.Uintr.register_receiver fabric
      ~handler:(fun _ ~vector:_ -> delivered_at := Sim.now sim)
      ()
  in
  Hw.Uintr.set_state r Hw.Uintr.Blocked;
  let s = Hw.Uintr.create_sender fabric () in
  let idx = Hw.Uintr.connect s r ~vector:0 in
  Hw.Uintr.senduipi s idx;
  Sim.run sim;
  check_int "kernel-assisted latency"
    (params.Hw.Params.uintr_delivery_ns + params.Hw.Params.uintr_blocked_extra_ns)
    !delivered_at;
  check_bool "receiver woken" true (Hw.Uintr.state r = Hw.Uintr.Running);
  let st = Hw.Uintr.stats fabric in
  check_int "blocked deliveries" 1 st.Hw.Uintr.deliveries_blocked

let test_uintr_suppression () =
  let sim, fabric = make_fabric () in
  let delivered = ref 0 in
  let r = Hw.Uintr.register_receiver fabric ~handler:(fun _ ~vector:_ -> incr delivered) () in
  Hw.Uintr.set_suppressed r true;
  let s = Hw.Uintr.create_sender fabric () in
  let idx = Hw.Uintr.connect s r ~vector:1 in
  Hw.Uintr.senduipi s idx;
  Sim.run sim;
  check_int "suppressed: nothing delivered" 0 !delivered;
  Alcotest.(check (list int)) "vector pending" [ 1 ] (Hw.Uintr.pending_vectors r);
  (* Clearing SN triggers the delivery of pending vectors. *)
  Hw.Uintr.set_suppressed r false;
  Sim.run sim;
  check_int "delivered after unsuppress" 1 !delivered;
  let st = Hw.Uintr.stats fabric in
  check_int "suppressed posts counted" 1 st.Hw.Uintr.suppressed_posts

let test_uintr_coalescing_and_vector_order () =
  let sim, fabric = make_fabric () in
  let order = ref [] in
  let r =
    Hw.Uintr.register_receiver fabric ~handler:(fun _ ~vector -> order := vector :: !order) ()
  in
  Hw.Uintr.set_suppressed r true;
  let s = Hw.Uintr.create_sender fabric () in
  let i2 = Hw.Uintr.connect s r ~vector:2 in
  let i7 = Hw.Uintr.connect s r ~vector:7 in
  let i5 = Hw.Uintr.connect s r ~vector:5 in
  Hw.Uintr.senduipi s i2;
  Hw.Uintr.senduipi s i7;
  Hw.Uintr.senduipi s i5;
  Hw.Uintr.senduipi s i7;
  (* duplicate: coalesces *)
  Hw.Uintr.set_suppressed r false;
  Sim.run sim;
  Alcotest.(check (list int)) "highest vector first" [ 7; 5; 2 ] (List.rev !order);
  let st = Hw.Uintr.stats fabric in
  check_int "coalesced" 1 st.Hw.Uintr.coalesced

let test_uintr_unblock_delivers_pending () =
  let sim, fabric = make_fabric () in
  let delivered = ref 0 in
  let r = Hw.Uintr.register_receiver fabric ~handler:(fun _ ~vector:_ -> incr delivered) () in
  Hw.Uintr.set_suppressed r true;
  let s = Hw.Uintr.create_sender fabric () in
  let idx = Hw.Uintr.connect s r ~vector:0 in
  Hw.Uintr.senduipi s idx;
  Sim.run sim;
  check_int "still pending" 0 !delivered;
  (* Going blocked then runnable with SN cleared re-evaluates PIR. *)
  Hw.Uintr.set_suppressed r false;
  Sim.run sim;
  check_int "delivered" 1 !delivered

let test_uintr_connect_errors () =
  let _sim, fabric = make_fabric () in
  let r = Hw.Uintr.register_receiver fabric ~handler:(fun _ ~vector:_ -> ()) () in
  let s = Hw.Uintr.create_sender fabric () in
  Alcotest.check_raises "vector range" (Invalid_argument "Uintr.connect: vector out of range")
    (fun () -> ignore (Hw.Uintr.connect s r ~vector:64));
  Alcotest.check_raises "bad index" (Invalid_argument "Uintr.senduipi: invalid UITT index 0")
    (fun () -> Hw.Uintr.senduipi s 0)

let test_uintr_uitt_capacity () =
  let _sim, fabric = make_fabric () in
  let r = Hw.Uintr.register_receiver fabric ~handler:(fun _ ~vector:_ -> ()) () in
  let s = Hw.Uintr.create_sender fabric ~name:"full" () in
  for _ = 1 to params.Hw.Params.uitt_size do
    ignore (Hw.Uintr.connect s r ~vector:0)
  done;
  check_bool "next connect raises" true
    (try
       ignore (Hw.Uintr.connect s r ~vector:0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Ipi                                                                 *)
(* ------------------------------------------------------------------ *)

let test_ipi_delivery () =
  let sim = Sim.create () in
  let ipi = Hw.Ipi.create sim params in
  let at = ref (-1) in
  let tgt = Hw.Ipi.register ipi ~handler:(fun () -> at := Sim.now sim) in
  Hw.Ipi.send ipi tgt;
  Sim.run sim;
  check_int "delivery latency" params.Hw.Params.ipi_delivery_ns !at;
  check_int "sends counted" 1 (Hw.Ipi.sends ipi)

let test_ipi_core_limit () =
  let sim = Sim.create () in
  let ipi = Hw.Ipi.create sim params in
  for _ = 1 to params.Hw.Params.apic_max_cores do
    ignore (Hw.Ipi.register ipi ~handler:(fun () -> ()))
  done;
  check_bool "registration beyond APIC limit raises" true
    (try
       ignore (Hw.Ipi.register ipi ~handler:(fun () -> ()));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Hwtimer                                                             *)
(* ------------------------------------------------------------------ *)

let make_hwtimer () =
  let sim = Sim.create () in
  let fabric = Hw.Uintr.create sim params in
  (sim, fabric, Hw.Hwtimer.create sim fabric)

let test_hwtimer_fires_exactly () =
  let sim, fabric, hwt = make_hwtimer () in
  let hits = ref [] in
  let r =
    Hw.Uintr.register_receiver fabric ~handler:(fun _ ~vector:_ -> hits := Sim.now sim :: !hits) ()
  in
  let slot = Hw.Hwtimer.register hwt ~receiver:r ~vector:0 in
  Hw.Hwtimer.arm_after slot ~ns:10_000;
  Sim.run sim;
  (match !hits with
  | [ t ] ->
    (* no polling: only the delivery pipeline separates deadline and
       handler *)
    check_int "fires at deadline + delivery" (10_000 + params.Hw.Params.uintr_delivery_ns) t
  | l -> Alcotest.failf "expected one interrupt, got %d" (List.length l));
  check_int "fired" 1 (Hw.Hwtimer.fired hwt);
  Alcotest.(check (float 1e-9)) "zero lateness" 0.0
    (Stat.Summary.report (Hw.Hwtimer.lateness hwt)).Stat.Summary.mean

let test_hwtimer_disarm_and_rearm () =
  let sim, fabric, hwt = make_hwtimer () in
  let hits = ref 0 in
  let r = Hw.Uintr.register_receiver fabric ~handler:(fun _ ~vector:_ -> incr hits) () in
  let slot = Hw.Hwtimer.register hwt ~receiver:r ~vector:0 in
  Hw.Hwtimer.arm_after slot ~ns:5_000;
  check_bool "armed" true (Hw.Hwtimer.is_armed slot);
  Hw.Hwtimer.disarm slot;
  check_bool "disarmed" false (Hw.Hwtimer.is_armed slot);
  Sim.run sim;
  check_int "no fire after disarm" 0 !hits;
  (* re-arm overwrites *)
  Hw.Hwtimer.arm_after slot ~ns:3_000;
  Hw.Hwtimer.arm_after slot ~ns:9_000;
  Sim.run sim;
  check_int "single fire after re-arm" 1 !hits

let test_hwtimer_past_deadline_fires_now () =
  let sim, fabric, hwt = make_hwtimer () in
  let hits = ref 0 in
  let r = Hw.Uintr.register_receiver fabric ~handler:(fun _ ~vector:_ -> incr hits) () in
  let slot = Hw.Hwtimer.register hwt ~receiver:r ~vector:0 in
  ignore (Sim.at sim 1_000 (fun () -> Hw.Hwtimer.arm_at slot ~time_ns:500));
  Sim.run sim;
  check_int "overdue deadline fires immediately" 1 !hits

(* ------------------------------------------------------------------ *)
(* Core                                                                *)
(* ------------------------------------------------------------------ *)

let test_core_completes_work () =
  let sim = Sim.create () in
  let core = Hw.Core.create sim ~id:0 in
  let done_at = ref (-1) in
  Hw.Core.begin_work core ~duration:1000 ~on_done:(fun () -> done_at := Sim.now sim);
  check_bool "busy" true (Hw.Core.busy core);
  Sim.run sim;
  check_int "completed on time" 1000 !done_at;
  check_bool "idle after" false (Hw.Core.busy core);
  check_int "busy accounting" 1000 (Hw.Core.busy_ns core)

let test_core_abort_returns_progress () =
  let sim = Sim.create () in
  let core = Hw.Core.create sim ~id:0 in
  let completed = ref false in
  Hw.Core.begin_work core ~duration:1000 ~on_done:(fun () -> completed := true);
  ignore
    (Sim.at sim 400 (fun () ->
         check_int "consumed" 400 (Hw.Core.consumed core);
         check_int "remaining" 600 (Hw.Core.remaining core);
         check_int "abort returns progress" 400 (Hw.Core.abort core)));
  Sim.run sim;
  check_bool "on_done suppressed" false !completed;
  check_int "busy total counts partial work" 400 (Hw.Core.busy_ns core)

let test_core_stall_delays_completion () =
  let sim = Sim.create () in
  let core = Hw.Core.create sim ~id:0 in
  let done_at = ref (-1) in
  Hw.Core.begin_work core ~duration:1000 ~on_done:(fun () -> done_at := Sim.now sim);
  ignore (Sim.at sim 300 (fun () -> Hw.Core.stall core 200));
  Sim.run sim;
  check_int "completion pushed by stall" 1200 !done_at;
  check_int "stall accounted" 200 (Hw.Core.stall_ns core)

let test_core_nested_stalls () =
  let sim = Sim.create () in
  let core = Hw.Core.create sim ~id:0 in
  let done_at = ref (-1) in
  Hw.Core.begin_work core ~duration:1000 ~on_done:(fun () -> done_at := Sim.now sim);
  ignore
    (Sim.at sim 300 (fun () ->
         Hw.Core.stall core 200;
         (* still stalled at 400: extends the stall *)
         ignore (Sim.at sim 400 (fun () -> Hw.Core.stall core 300))));
  Sim.run sim;
  (* 300ns of work, then stalled 300..800 (the second stall extends the
     first), then the remaining 700ns: completes at 1500. *)
  check_int "stalls accumulate" 1500 !done_at

let test_core_consumed_frozen_during_stall () =
  let sim = Sim.create () in
  let core = Hw.Core.create sim ~id:0 in
  Hw.Core.begin_work core ~duration:1000 ~on_done:(fun () -> ());
  ignore (Sim.at sim 300 (fun () -> Hw.Core.stall core 500));
  ignore (Sim.at sim 600 (fun () -> check_int "no progress while stalled" 300 (Hw.Core.consumed core)));
  Sim.run sim

let test_core_errors () =
  let sim = Sim.create () in
  let core = Hw.Core.create sim ~id:7 in
  Alcotest.check_raises "stall idle" (Invalid_argument "Core.stall: core is idle") (fun () ->
      Hw.Core.stall core 10);
  Alcotest.check_raises "abort idle" (Invalid_argument "Core.abort: core is idle") (fun () ->
      ignore (Hw.Core.abort core));
  Hw.Core.begin_work core ~duration:10 ~on_done:(fun () -> ());
  Alcotest.check_raises "double begin" (Invalid_argument "Core.begin_work: core 7 is busy")
    (fun () -> Hw.Core.begin_work core ~duration:10 ~on_done:(fun () -> ()))

let suites =
  [
    ( "hw.tsc",
      [ Alcotest.test_case "conversion" `Quick test_tsc_conversion ] );
    ( "hw.uintr",
      [
        Alcotest.test_case "delivery running" `Quick test_uintr_delivery_running;
        Alcotest.test_case "delivery blocked" `Quick test_uintr_delivery_blocked;
        Alcotest.test_case "suppression" `Quick test_uintr_suppression;
        Alcotest.test_case "coalescing + vector order" `Quick
          test_uintr_coalescing_and_vector_order;
        Alcotest.test_case "unsuppress delivers pending" `Quick
          test_uintr_unblock_delivers_pending;
        Alcotest.test_case "connect errors" `Quick test_uintr_connect_errors;
        Alcotest.test_case "uitt capacity" `Quick test_uintr_uitt_capacity;
      ] );
    ( "hw.ipi",
      [
        Alcotest.test_case "delivery" `Quick test_ipi_delivery;
        Alcotest.test_case "apic core limit" `Quick test_ipi_core_limit;
      ] );
    ( "hw.hwtimer",
      [
        Alcotest.test_case "fires exactly" `Quick test_hwtimer_fires_exactly;
        Alcotest.test_case "disarm/re-arm" `Quick test_hwtimer_disarm_and_rearm;
        Alcotest.test_case "overdue fires now" `Quick test_hwtimer_past_deadline_fires_now;
      ] );
    ( "hw.core",
      [
        Alcotest.test_case "completes work" `Quick test_core_completes_work;
        Alcotest.test_case "abort returns progress" `Quick test_core_abort_returns_progress;
        Alcotest.test_case "stall delays completion" `Quick test_core_stall_delays_completion;
        Alcotest.test_case "nested stalls" `Quick test_core_nested_stalls;
        Alcotest.test_case "no progress while stalled" `Quick
          test_core_consumed_frozen_during_stall;
        Alcotest.test_case "errors" `Quick test_core_errors;
      ] );
  ]
