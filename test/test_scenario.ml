(* Tests for lib/scenario: the parse/print round-trip (qcheck over
   generated specs), positioned rejection of malformed input, default
   handling, lowering semantics, and the fig8 spec-equivalence pin
   (a DSL-built configuration reproduces the hand-built one). *)

open Engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let spec_of_string s =
  match Scenario.of_string s with
  | Ok spec -> spec
  | Error e -> Alcotest.failf "parse failed: %s" (Scenario.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Generators: floats are drawn from short-decimal sets so every value
   survives printing (the printer is exact for any float, but readable
   specs are the interesting test surface).                            *)
(* ------------------------------------------------------------------ *)

module Gen = struct
  open QCheck.Gen

  let nice_float = map (fun k -> float_of_int k /. 100.) (int_range 1 400)
  let fraction = map (fun k -> float_of_int k /. 100.) (int_range 1 99)
  let time = oneofl [ 500; 3_000; 5_000; 40_000; 200_000; 2_000_000; 50_000_000 ]
  let small_time = oneofl [ 1_000; 5_000; 20_000; 100_000 ]

  let rate =
    oneof
      [
        map (fun f -> Scenario.Abs (float_of_int f)) (int_range 1_000 2_000_000);
        map (fun f -> Scenario.Load f) nice_float;
      ]

  let dist =
    oneof
      [
        oneofl [ Scenario.A1; A2; B; C ];
        map (fun t -> Scenario.Const t) small_time;
        map (fun t -> Scenario.Exp t) small_time;
        map3
          (fun s l f -> Scenario.Bimodal { short_ns = s; long_ns = l; long_fraction = f })
          small_time time fraction;
        map2 (fun m sd -> Scenario.Lognormal { mean_ns = m; std_ns = sd }) small_time small_time;
        map2 (fun s sh -> Scenario.Pareto { scale_ns = s; shape = sh +. 1.1 }) small_time fraction;
      ]

  let cls = oneofl [ Scenario.Lc; Scenario.Be ]

  let source =
    let base = oneof [ map2 (fun d c -> Scenario.Dist (d, c)) dist cls; oneofl [ Scenario.Mica; Scenario.Zlib ] ] in
    oneof
      [
        base;
        map (fun items -> Scenario.Mix items) (list_size (int_range 1 3) (pair nice_float base));
        map2
          (fun theta tenants -> Scenario.Tenants { theta; tenants })
          fraction
          (list_size (int_range 1 4) base);
      ]

  let arrival =
    let leaf =
      oneof
        [
          map (fun r -> Scenario.Poisson r) rate;
          map (fun r -> Scenario.Uniform r) rate;
          map3
            (fun b s (p, f) ->
              Scenario.Bursty { base = b; spike = s; period_ns = p; spike_fraction = f })
            rate rate (pair time fraction);
          map3
            (fun b p (st, (rm, (h, d))) ->
              Scenario.Flash
                { base = b; peak = p; start_ns = st; ramp_ns = rm; hold_ns = h; decay_ns = d })
            rate rate
            (pair time (pair time (pair time time)));
          map3
            (fun b a p -> Scenario.Diurnal { base = b; amplitude = a; period_ns = p })
            rate fraction time;
          map3
            (fun rs h sd ->
              Scenario.Mmpp { rates = rs; mean_hold_ns = h; seed = Int64.of_int sd })
            (list_size (int_range 2 4) rate)
            time (int_range 0 1000);
        ]
    in
    oneof
      [
        leaf;
        map
          (fun segs ->
            let segs =
              List.mapi (fun i (t, a) -> (((i + 1) * 10_000_000) + t, a)) segs
            in
            Scenario.Piecewise segs)
          (list_size (int_range 1 3) (pair time leaf));
      ]

  let ctl =
    let d = Preemptible.Quantum_controller.default_config in
    map3
      (fun k1 (k2, k3) (lh, ll) ->
        { d with Preemptible.Quantum_controller.k1_ns = k1; k2_ns = k2; k3_ns = k3; l_high_fraction = lh; l_low_fraction = ll /. 10. })
      small_time (pair small_time small_time) (pair fraction fraction)

  let quantum =
    oneof
      [
        return Scenario.No_preempt;
        map (fun t -> Scenario.Fixed t) small_time;
        map2
          (fun init ctl -> Scenario.Adaptive { init_ns = init; ctl })
          small_time ctl;
        return
          (Scenario.Adaptive
             {
               init_ns = Scenario.default_adaptive_init_ns;
               ctl = Preemptible.Quantum_controller.default_config;
             });
      ]

  let bucket = map2 (fun r b -> { Scenario.b_rate = r; b_burst = float_of_int b }) rate (int_range 1 100)

  let guard =
    let shed =
      map3
        (fun q t i ->
          { Guard.max_queue = q; codel_target_ns = t; codel_interval_ns = i })
        (int_range 4 512) time time
    in
    let retry =
      map3
        (fun a (b, m) budget ->
          {
            Scenario.r_attempts = a;
            r_backoff_ns = b;
            r_max_backoff_ns = b + m;
            r_jitter = 0.5;
            r_budget = budget;
          })
        (int_range 1 6)
        (pair small_time small_time)
        (option bucket)
    in
    let brownout =
      map3
        (fun p99 q (t, r) ->
          {
            Guard.default_brownout with
            Guard.p99_trip_ns = p99;
            qlen_trip = q;
            trip_windows = t;
            recover_windows = r;
          })
        time (int_range 16 1024)
        (pair (int_range 1 5) (int_range 1 5))
    in
    map3
      (fun timeout (expire, shed) (retry, brownout) ->
        {
          Scenario.g_timeout_ns = timeout;
          g_drop_expired = (expire : bool) && timeout <> None;
          g_shed = shed;
          g_bucket = None;
          g_lc_bucket = None;
          g_be_bucket = None;
          g_retry = (if timeout = None then None else retry);
          g_brownout = brownout;
        })
      (option time)
      (pair bool (option (oneof [ return Guard.default_shed; shed ])))
      (pair (option retry) (option (oneof [ return Guard.default_brownout; brownout ])))

  let fleet =
    map3
      (fun n lb (steal, hetero) ->
        {
          Scenario.f_n = n;
          f_lb = lb;
          f_steal = steal;
          f_workers = (if hetero then Some (List.init n (fun i -> 1 + (i mod 3))) else None);
        })
      (int_range 1 6)
      (oneofl [ Cluster.Random; Cluster.Round_robin; Cluster.Least_loaded; Cluster.Power_of_two ])
      (pair
         (option
            (oneof
               [
                 return Cluster.default_steal;
                 map (fun i -> { Cluster.interval_ns = i; threshold = 4; batch = 2 }) time;
               ]))
         bool)

  let spec =
    let open Scenario in
    map3
      (fun (system, workers, quantum) (src, arrival, (dur, warmup)) (extras : t -> t) ->
        extras
          {
            default with
            system;
            workers;
            quantum;
            src;
            arrival;
            duration_ns = dur;
            warmup_ns = warmup;
          })
      (triple
         (oneofl [ Lp; Lp_nouintr; Shinjuku; Libinger; Nopreempt; Go ])
         (int_range 1 8) quantum)
      (triple source arrival (pair (oneofl [ 10_000_000; 50_000_000; 100_000_000 ]) (oneofl [ 0; 2_000_000 ])))
      (map3
         (fun (name, seed) (window, dispatch) (g, (f, (disc, fl))) spec ->
           {
             spec with
             name;
             seed = Int64.of_int seed;
             window_ns = window;
             dispatch_ns = dispatch;
             guard = g;
             faults = f;
             discipline = disc;
             fleet = fl;
           })
         (pair (option (oneofl [ "fig8"; "tail-attack"; "x1.v2" ])) (int_range 0 100))
         (pair (option small_time) (option (oneofl [ 50; 250 ])))
         (pair (option guard)
            (pair
               (option (oneofl [ "uipi.drop=p:0.01"; "guard.trip=win:1000000-2000000:1" ]))
               (pair (option (oneofl [ Fifo; Srpt; Edf 200_000 ])) (option fleet)))))

  (* Keep only specs the pretty-printer/parser contract covers; the
     printer itself accepts anything. *)
  let spec = spec
end

let arb_spec = QCheck.make ~print:Scenario.to_string Gen.spec

(* ------------------------------------------------------------------ *)
(* Round-trip and printing                                             *)
(* ------------------------------------------------------------------ *)

let roundtrip_test =
  QCheck.Test.make ~name:"scenario: parse (print s) = s" ~count:500 arb_spec
    (fun spec ->
      match Scenario.of_string (Scenario.to_string spec) with
      | Ok spec' ->
        if spec' = spec then true
        else
          QCheck.Test.fail_reportf "printed %S@.reparsed %S"
            (Scenario.to_string spec) (Scenario.to_string spec')
      | Error e ->
        QCheck.Test.fail_reportf "printed %S@.parse error: %s"
          (Scenario.to_string spec) (Scenario.error_to_string e))

let override_roundtrip_test =
  QCheck.Test.make ~name:"scenario: override with own print is identity" ~count:200
    arb_spec (fun spec ->
      match Scenario.override spec (Scenario.to_string spec) with
      | Ok spec' -> spec' = spec
      | Error e -> QCheck.Test.fail_report (Scenario.error_to_string e))

let test_default_prints_empty () =
  check_string "default is all-defaults" "" (Scenario.to_string Scenario.default);
  let spec = spec_of_string "" in
  check_bool "empty parses to default" true (spec = Scenario.default)

let test_canonical_examples () =
  (* A couple of pinned surface forms so the canonical syntax cannot
     silently drift. *)
  let s = spec_of_string "sys=shinjuku;workers=5;quantum=10us" in
  check_string "canon" "sys=shinjuku;workers=5;quantum=10us" (Scenario.to_string s);
  let s = spec_of_string "quantum=adaptive;ctl={k1=2us;lhigh=0.95}" in
  (match s.Scenario.quantum with
  | Scenario.Adaptive { ctl; _ } ->
    check_int "k1" 2_000 ctl.Preemptible.Quantum_controller.k1_ns;
    Alcotest.(check (float 0.)) "lhigh" 0.95 ctl.Preemptible.Quantum_controller.l_high_fraction
  | _ -> Alcotest.fail "expected adaptive");
  let s =
    spec_of_string
      "src=mix(0.98*mica,0.02*zlib);arrival=poisson:55k;dur=300ms;warmup=20ms"
  in
  check_string "mix canon"
    "src=mix(0.98*mica,0.02*zlib);arrival=poisson:55000;dur=300ms;warmup=20ms"
    (Scenario.to_string s)

let test_comments_and_newlines () =
  let s =
    spec_of_string
      "# adaptive under flash crowd\nsys=lp; workers=4 # trailing\nquantum=adaptive\n\ndur=10ms"
  in
  check_int "workers" 4 s.Scenario.workers;
  check_int "dur" 10_000_000 s.Scenario.duration_ns;
  check_bool "adaptive" true
    (match s.Scenario.quantum with Scenario.Adaptive _ -> true | _ -> false)

let test_multiline_blocks () =
  let s =
    spec_of_string
      "guard={\n  timeout=200us\n  expire\n  shed={q=24;target=40us;interval=200us}\n}"
  in
  match s.Scenario.guard with
  | Some g ->
    check_bool "timeout" true (g.Scenario.g_timeout_ns = Some 200_000);
    check_bool "expire" true g.Scenario.g_drop_expired;
    (match g.Scenario.g_shed with
    | Some sh -> check_int "q" 24 sh.Guard.max_queue
    | None -> Alcotest.fail "expected shed")
  | None -> Alcotest.fail "expected guard"

(* ------------------------------------------------------------------ *)
(* Rejection: errors carry the offending field and a sane position     *)
(* ------------------------------------------------------------------ *)

let expect_error field text =
  match Scenario.of_string text with
  | Ok _ -> Alcotest.failf "expected %S to be rejected" text
  | Error e ->
    check_string (Printf.sprintf "field for %S" text) field e.Scenario.field;
    check_bool
      (Printf.sprintf "pos %d in range for %S" e.Scenario.pos text)
      true
      (e.Scenario.pos >= 0 && e.Scenario.pos <= String.length text);
    e

let test_errors_name_field () =
  ignore (expect_error "bogus" "bogus=1");
  ignore (expect_error "src" "src=a3");
  ignore (expect_error "arrival" "arrival=poison:1k");
  ignore (expect_error "quantum" "quantum=fast");
  ignore (expect_error "workers" "workers=many");
  ignore (expect_error "seed" "sys=lp;seed=abc");
  ignore (expect_error "dur" "dur=10");
  ignore (expect_error "ctl" "ctl={k1=2us}");
  ignore (expect_error "ctl" "quantum=adaptive;ctl={k9=2us}");
  ignore (expect_error "guard" "guard={timeout=200us;frobnicate=1}");
  ignore (expect_error "faults" "faults={uipi.drop=sometimes}");
  ignore (expect_error "fleet" "fleet={lb=p2c}");
  ignore (expect_error "fleet" "fleet={n=2;lb=magic}");
  ignore (expect_error "scenario" "guard={timeout=1us")

let test_error_positions_point_at_token () =
  let e = expect_error "src" "sys=lp;src=a3;dur=10ms" in
  check_int "src value offset" (String.index "sys=lp;src=a3;dur=10ms" 'a') e.Scenario.pos;
  let e = expect_error "workers" "workers=many" in
  check_int "workers value offset" 8 e.Scenario.pos

(* ------------------------------------------------------------------ *)
(* Semantics                                                           *)
(* ------------------------------------------------------------------ *)

let test_capacity_and_rates () =
  (* workload B: mean 5us, 4 workers -> 800k rps capacity. *)
  let s = spec_of_string "src=b;workers=4" in
  Alcotest.(check (float 1.0)) "capacity" 800_000.0 (Scenario.capacity_rps s);
  Alcotest.(check (float 1.0)) "relative rate" 400_000.0
    (Scenario.rate_rps s (Scenario.Load 0.5));
  Alcotest.(check (float 0.)) "absolute rate" 123.0
    (Scenario.rate_rps s (Scenario.Abs 123.0));
  (* capref overrides the worker count the x-rates refer to. *)
  let s = spec_of_string "src=b;workers=4;capref=8" in
  Alcotest.(check (float 1.0)) "capref capacity" 1_600_000.0 (Scenario.capacity_rps s);
  (* fleet capacity spans all members. *)
  let s = spec_of_string "src=b;workers=2;fleet={n=4}" in
  Alcotest.(check (float 1.0)) "fleet capacity" 1_600_000.0 (Scenario.capacity_rps s)

let test_validate () =
  let ok s = check_bool s true (Scenario.validate (spec_of_string s) = Ok ()) in
  let bad s =
    check_bool s true
      (match Scenario.validate (spec_of_string s) with Error _ -> true | Ok () -> false)
  in
  ok "sys=lp;quantum=adaptive";
  ok "sys=shinjuku;workers=5;quantum=10us";
  ok "sys=lp;fleet={n=2;lb=p2c}";
  bad "sys=shinjuku;quantum=adaptive";
  bad "sys=shinjuku;guard={timeout=1ms}";
  bad "sys=go;fleet={n=2}";
  bad "sys=lp;fleet={n=3;workers=1/2}";
  bad "src=mica;arrival=poisson:0.5x";
  ok "src=mica;arrival=poisson:100k"

let test_run_server_smoke () =
  let s = spec_of_string "src=b;workers=2;arrival=poisson:0.4x;dur=5ms;seed=3" in
  let r = Scenario.run_server s in
  check_bool "completed" true (r.Preemptible.Server.completed > 0);
  (* Same spec, same results: lowering is deterministic. *)
  let r' = Scenario.run_server (spec_of_string (Scenario.to_string s)) in
  check_int "deterministic" r.Preemptible.Server.completed r'.Preemptible.Server.completed

let test_run_fleet_smoke () =
  let s =
    spec_of_string "src=b;workers=2;fleet={n=2;lb=p2c};arrival=poisson:0.5x;dur=5ms"
  in
  match Scenario.run s with
  | Scenario.Fleet r ->
    check_int "servers" 2 r.Cluster.fleet.Cluster.servers;
    check_bool "completed" true (r.Cluster.fleet.Cluster.completed > 0)
  | Scenario.Server _ -> Alcotest.fail "expected a fleet outcome"

(* The satellite pin: a DSL-built fig8 point equals the hand-built
   configuration (Bench_util's construction, inlined here) on every
   observable of a short run. *)
let test_fig8_spec_equivalence () =
  let dist = Workload.Service_dist.workload_a1 in
  let duration_ns = Units.ms 20 in
  let warmup_ns = Units.ms 4 in
  let rate = 0.5 *. (4.0 *. 1e9 /. Workload.Service_dist.mean_ns dist ~now:0) in
  (* Hand-built: Bench_util.libpreemptible ~adaptive:true. *)
  let hand =
    let max_load =
      let mean = Workload.Service_dist.mean_ns dist ~now:0 in
      4.0 *. 1e9 /. mean
    in
    let policy =
      Preemptible.Policy.adaptive
        (Preemptible.Quantum_controller.create
           ~config:
             {
               Preemptible.Quantum_controller.default_config with
               Preemptible.Quantum_controller.k1_ns = Units.us 2;
               k2_ns = Units.us 10;
               k3_ns = Units.us 8;
               l_high_fraction = 0.95;
             }
           ~max_load_per_s:max_load ~initial_quantum_ns:(Units.us 20) ())
    in
    let cfg =
      Preemptible.Server.default_config ~n_workers:4 ~policy
        ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config)
    in
    let cfg = { cfg with Preemptible.Server.stats_window_ns = Units.ms 10 } in
    Preemptible.Server.run ~warmup_ns cfg
      ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
      ~source:(Workload.Source.of_dist dist ~cls:Workload.Request.Latency_critical)
      ~duration_ns
  in
  (* DSL-built: the same point through the scenario layer.  The rate is
     an arbitrary float, so it rides in as a symbolic Abs rate exactly
     as the benches pass their sweep points. *)
  let spec =
    {
      (spec_of_string
         "sys=lp;workers=4;quantum=adaptive;ctl={k1=2us;k2=10us;k3=8us;lhigh=0.95};src=a1;dur=20ms;warmup=4ms;window=10ms")
      with
      Scenario.arrival = Scenario.Poisson (Scenario.Abs rate);
    }
  in
  let dsl = Scenario.run_server spec in
  check_int "completed" hand.Preemptible.Server.completed dsl.Preemptible.Server.completed;
  check_int "preemptions" hand.Preemptible.Server.preemptions dsl.Preemptible.Server.preemptions;
  check_int "sim_events" hand.Preemptible.Server.sim_events dsl.Preemptible.Server.sim_events;
  Alcotest.(check (float 0.)) "p99" hand.Preemptible.Server.all.Stat.Summary.p99
    dsl.Preemptible.Server.all.Stat.Summary.p99

let suites =
  [
    ( "scenario",
      [
        QCheck_alcotest.to_alcotest roundtrip_test;
        QCheck_alcotest.to_alcotest override_roundtrip_test;
        Alcotest.test_case "default prints empty" `Quick test_default_prints_empty;
        Alcotest.test_case "canonical examples" `Quick test_canonical_examples;
        Alcotest.test_case "comments and newlines" `Quick test_comments_and_newlines;
        Alcotest.test_case "multiline blocks" `Quick test_multiline_blocks;
        Alcotest.test_case "errors name the field" `Quick test_errors_name_field;
        Alcotest.test_case "error positions" `Quick test_error_positions_point_at_token;
        Alcotest.test_case "capacity and rates" `Quick test_capacity_and_rates;
        Alcotest.test_case "validate" `Quick test_validate;
        Alcotest.test_case "run server smoke" `Quick test_run_server_smoke;
        Alcotest.test_case "run fleet smoke" `Quick test_run_fleet_smoke;
        Alcotest.test_case "fig8 spec equivalence" `Quick test_fig8_spec_equivalence;
      ] );
  ]
