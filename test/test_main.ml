let () =
  Alcotest.run "libpreemptible"
    (Test_engine.suites @ Test_stat.suites @ Test_hw.suites @ Test_ksim.suites
   @ Test_workload.suites @ Test_utimer.suites @ Test_fault.suites
   @ Test_preemptible.suites @ Test_guard.suites @ Test_baselines.suites @ Test_fiber.suites
   @ Test_integration.suites @ Test_properties.suites @ Test_edge.suites
   @ Test_cluster.suites @ Test_obs.suites @ Test_telemetry.suites @ Test_exec.suites
   @ Test_scenario.suites @ Test_spmc.suites @ Test_rt_sched.suites
   @ Test_crossval.suites)
