(* lpctl: run LibPreemptible server simulations with custom parameters
   from the command line.

     lpctl serve --system lp --workload a1 --rate 800000 --quantum 5
     lpctl run scenarios/tail_attack.scn -s seed=7
     lpctl ipc --n 100000
     lpctl timer --strategy utimer --threads 32 *)

open Cmdliner

let us = Engine.Units.us
let ms = Engine.Units.ms

(* Environment knobs are parsed with Exec.Env.getenv_nonempty so an
   empty value behaves like an unset one; declared here so every
   subcommand's --help lists the variables it honours. *)
let env_pool_trace =
  Cmd.Env.info "LP_POOL_TRACE"
    ~doc:
      "When set to a file path, multi-point sweeps export a Perfetto JSON trace of \
       pool occupancy (per-worker task spans, wall clock) there at exit."

let env_trace_out =
  Cmd.Env.info "LP_TRACE_OUT"
    ~doc:"Default output path for the Perfetto trace when $(b,--out) is not given."

let env_bench_csv =
  Cmd.Env.info "LP_BENCH_CSV"
    ~doc:"When set to a directory, also dump the result series there as CSV."

(* Shared wall-clock pool trace, mirroring the bench harness: every
   sweep in the process writes into one ring, exported at exit. *)
let pool_trace =
  lazy
    (match Exec.Env.getenv_nonempty "LP_POOL_TRACE" with
    | None -> None
    | Some path ->
      let t0 = Unix.gettimeofday () in
      let trace =
        Obs.Trace.create
          ~config:{ Obs.Trace.capacity = 1 lsl 16; categories = [ Obs.Trace.Exec ] }
          ~clock:(fun () -> int_of_float ((Unix.gettimeofday () -. t0) *. 1e9))
          ()
      in
      at_exit (fun () ->
          Obs.Export.perfetto_to_file trace ~path;
          Format.printf "(pool trace: %s)@." path);
      Some trace)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let workload_of_string duration_ns = function
  | "a1" -> Ok Workload.Service_dist.workload_a1
  | "a2" -> Ok Workload.Service_dist.workload_a2
  | "b" -> Ok Workload.Service_dist.workload_b
  | "c" -> Ok (Workload.Service_dist.workload_c ~duration_ns)
  | s -> Error (`Msg (Printf.sprintf "unknown workload %S (a1|a2|b|c)" s))

let pp_result r =
  Format.printf "%a@." Preemptible.Server.pp_result r;
  (match r.Preemptible.Server.lc with
  | Some lc -> Format.printf "LC: %a@." Stat.Summary.pp_report_us lc
  | None -> ());
  (match r.Preemptible.Server.be with
  | Some be -> Format.printf "BE: %a@." Stat.Summary.pp_report_us be
  | None -> ());
  match r.Preemptible.Server.guard with
  | Some g -> Format.printf "guard: %a@." Guard.pp_report g
  | None -> ()

(* Build the overload-control config from the serve flags.  All four
   knobs are off by default, which leaves [guard = None] — the exact
   no-op path.  [--retry-budget 0] means budgetless (naive) retries. *)
let guard_of_flags ~timeout_us ~shed_depth ~retry_budget ~brownout =
  if timeout_us = 0 && shed_depth = 0 && retry_budget = None && not brownout then None
  else begin
    let timeout_ns = if timeout_us > 0 then Some (us timeout_us) else None in
    let shed =
      if shed_depth > 0 then Some { Guard.default_shed with Guard.max_queue = shed_depth }
      else None
    in
    let retry =
      match retry_budget with
      | None -> None
      | Some r when r < 0.0 ->
        prerr_endline "--retry-budget expects a non-negative rate (tokens/s; 0 = unbudgeted)";
        exit 1
      | Some r when r > 0.0 ->
        Some
          {
            Guard.default_retry with
            Guard.budget = Some { Guard.rate_per_sec = r; burst = Float.max 1.0 (r /. 10.0) };
          }
      | Some _ -> Some Guard.default_retry
    in
    let cfg =
      {
        Guard.disabled with
        Guard.timeout_ns;
        drop_expired = timeout_us > 0;
        shed;
        retry;
        brownout = (if brownout then Some Guard.default_brownout else None);
      }
    in
    (* Surface a bad combination (e.g. retries without a timeout) as a
       usage error here, before the sweep fans out. *)
    (try Guard.validate cfg
     with Invalid_argument m ->
       prerr_endline m;
       exit 1);
    Some cfg
  end

(* One complete simulation at one offered rate; pure in [rate] so a
   multi-rate sweep can fan out across pool domains. *)
let serve_one ~system ~dist ~quantum ~workers ~duration_ns ~adaptive ~seed ~guard rate =
  let arrival = Workload.Arrival.poisson ~rate_per_sec:rate in
  let source = Workload.Source.of_dist dist ~cls:Workload.Request.Latency_critical in
  match system with
  | "lp" ->
    let policy =
      if adaptive then
        Preemptible.Policy.adaptive
          (Preemptible.Quantum_controller.create
             ~max_load_per_s:
               (float_of_int workers *. 1e9
               /. Workload.Service_dist.mean_ns dist ~now:0)
             ~initial_quantum_ns:quantum ())
      else Preemptible.Policy.fcfs_preempt ~quantum_ns:quantum
    in
    let cfg =
      Preemptible.Server.default_config ~n_workers:workers ~policy
        ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config)
    in
    Preemptible.Server.run { cfg with Preemptible.Server.seed; guard } ~arrival ~source
      ~duration_ns
  | "lp-nouintr" ->
    let cfg =
      Preemptible.Server.default_config ~n_workers:workers
        ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:quantum)
        ~mechanism:(Preemptible.Server.Signal_utimer { poll_ns = 500 })
    in
    Preemptible.Server.run { cfg with Preemptible.Server.seed; guard } ~arrival ~source
      ~duration_ns
  | "shinjuku" ->
    let cfg = Baselines.Shinjuku.default_config ~n_workers:workers ~quantum_ns:quantum in
    Baselines.Shinjuku.run { cfg with Baselines.Shinjuku.seed } ~arrival ~source
      ~duration_ns
  | "libinger" ->
    let cfg = Baselines.Libinger.default_config ~n_workers:workers ~quantum_ns:quantum in
    Baselines.Libinger.run { cfg with Baselines.Libinger.seed } ~arrival ~source
      ~duration_ns
  | "nopreempt" ->
    let cfg = Baselines.Nopreempt.default_config ~n_workers:workers in
    Baselines.Nopreempt.run { cfg with Baselines.Nopreempt.seed } ~arrival ~source
      ~duration_ns
  | "go" ->
    let cfg = Baselines.Goruntime.default_config ~n_workers:workers in
    Baselines.Goruntime.run { cfg with Baselines.Goruntime.seed } ~arrival ~source
      ~duration_ns
  | s ->
    prerr_endline
      (Printf.sprintf "unknown system %S (lp|lp-nouintr|shinjuku|libinger|nopreempt|go)" s);
    exit 1

(* One fleet simulation at one offered rate (serve --servers N).  The
   member config mirrors the single-server lp/lp-nouintr paths. *)
let serve_fleet ~system ~dist ~quantum ~workers ~duration_ns ~adaptive ~seed ~guard
    ~servers ~lb ~steal rate =
  let arrival = Workload.Arrival.poisson ~rate_per_sec:rate in
  let source = Workload.Source.of_dist dist ~cls:Workload.Request.Latency_critical in
  let policy =
    if adaptive then
      Preemptible.Policy.adaptive
        (Preemptible.Quantum_controller.create
           ~max_load_per_s:
             (float_of_int workers *. 1e9 /. Workload.Service_dist.mean_ns dist ~now:0)
           ~initial_quantum_ns:quantum ())
    else Preemptible.Policy.fcfs_preempt ~quantum_ns:quantum
  in
  let mechanism =
    match system with
    | "lp" -> Preemptible.Server.Uintr_utimer Utimer.default_config
    | _ -> Preemptible.Server.Signal_utimer { poll_ns = 500 }
  in
  let member =
    {
      (Preemptible.Server.default_config ~n_workers:workers ~policy ~mechanism) with
      Preemptible.Server.guard;
    }
  in
  let cfg =
    {
      (Cluster.uniform ~n:servers ~lb member) with
      Cluster.seed;
      steal = (if steal then Some Cluster.default_steal else None);
    }
  in
  Cluster.run cfg ~arrival ~source ~duration_ns

let pp_fleet_result (r : Cluster.result) =
  Format.printf "%a@." Cluster.pp_fleet r.Cluster.fleet;
  Array.iteri
    (fun i (s : Preemptible.Server.result) ->
      Format.printf
        "  server %d: completed=%d shed=%d p50=%.1fus p99=%.1fus busy=%.2f preempts=%d@." i
        s.Preemptible.Server.completed s.Preemptible.Server.shed
        (s.Preemptible.Server.all.Stat.Summary.p50 /. 1e3)
        (s.Preemptible.Server.all.Stat.Summary.p99 /. 1e3)
        s.Preemptible.Server.worker_busy_frac s.Preemptible.Server.preemptions)
    r.Cluster.per_server

let parse_rates s =
  let parts = String.split_on_char ',' s |> List.map String.trim in
  let rates = List.filter_map float_of_string_opt parts in
  if List.length rates <> List.length parts || rates = [] || List.exists (fun r -> r <= 0.0) rates
  then begin
    prerr_endline
      (Printf.sprintf "--rate expects positive requests/s, comma-separated for a sweep; got %S" s);
    exit 1
  end;
  rates

let serve system workload rate_s jobs quantum_us workers duration_ms adaptive seed
    timeout_us shed_depth retry_budget brownout metrics_out servers lb_s steal =
  let duration_ns = ms duration_ms in
  let rates = parse_rates rate_s in
  (* Cluster flags validate before any simulation runs. *)
  if servers < 1 then begin
    prerr_endline "--servers expects a positive fleet size";
    exit 1
  end;
  let lb =
    match Cluster.lb_of_string lb_s with
    | Ok lb -> lb
    | Error m ->
      prerr_endline ("--lb: " ^ m);
      exit 1
  in
  if servers = 1 && steal then begin
    prerr_endline "--steal needs a fleet (--servers > 1)";
    exit 1
  end;
  if servers > 1 && not (List.mem system [ "lp"; "lp-nouintr" ]) then begin
    prerr_endline
      (Printf.sprintf "--servers applies to lp|lp-nouintr fleets, not %S" system);
    exit 1
  end;
  if steal && retry_budget <> None then begin
    prerr_endline
      "--steal cannot be combined with --retry-budget (a stolen request's patience clock \
       cannot follow it across servers)";
    exit 1
  end;
  match workload_of_string duration_ns workload with
  | Error (`Msg m) ->
    prerr_endline m;
    exit 1
  | Ok dist ->
    let quantum = us quantum_us in
    (* Reject an unknown system before the sweep fans out, so the error
       surfaces once and on the main domain. *)
    if
      not
        (List.mem system [ "lp"; "lp-nouintr"; "shinjuku"; "libinger"; "nopreempt"; "go" ])
    then begin
      prerr_endline
        (Printf.sprintf "unknown system %S (lp|lp-nouintr|shinjuku|libinger|nopreempt|go)"
           system);
      exit 1
    end;
    (* Guard flags validate here too — bad knobs die once, before any
       simulation runs. *)
    let guard = guard_of_flags ~timeout_us ~shed_depth ~retry_budget ~brownout in
    if guard <> None && not (List.mem system [ "lp"; "lp-nouintr" ]) then begin
      prerr_endline
        (Printf.sprintf "guard flags (--timeout/--shed/--retry-budget/--brownout) only \
                         apply to lp|lp-nouintr, not %S" system);
      exit 1
    end;
    if servers > 1 then begin
      if metrics_out <> None then begin
        prerr_endline "--metrics-out applies to single-server runs";
        exit 1
      end;
      let run_one =
        serve_fleet ~system ~dist ~quantum ~workers ~duration_ns ~adaptive ~seed ~guard
          ~servers ~lb ~steal
      in
      (match rates with
      | [ rate ] -> pp_fleet_result (run_one rate)
      | rates ->
        let results =
          Exec.Sweep.run ?trace:(Lazy.force pool_trace) ~label:"serve" ~jobs run_one rates
        in
        List.iter2
          (fun rate r ->
            Format.printf "@.-- rate %.0f/s (fleet) --@." rate;
            pp_fleet_result r)
          rates results);
      exit 0
    end;
    let run_one =
      serve_one ~system ~dist ~quantum ~workers ~duration_ns ~adaptive ~seed ~guard
    in
    (* Prometheus text exposition of the run's metrics snapshot; for a
       multi-rate sweep the last rate's snapshot wins (one scrape file,
       valid exposition needs unique metric names). *)
    let export_metrics (r : Preemptible.Server.result) =
      match metrics_out with
      | None -> ()
      | Some path ->
        Obs.Export.prometheus_to_file r.Preemptible.Server.metrics ~path;
        Format.printf "(metrics: %s)@." path
    in
    (match rates with
    | [ rate ] ->
      let r = run_one rate in
      pp_result r;
      export_metrics r
    | rates ->
      let results =
        Exec.Sweep.run ?trace:(Lazy.force pool_trace) ~label:"serve" ~jobs run_one rates
      in
      List.iter2
        (fun rate r ->
          Format.printf "@.-- rate %.0f/s --@." rate;
          pp_result r)
        rates results;
      (match List.rev results with r :: _ -> export_metrics r | [] -> ()))

let jobs_arg =
  Arg.(
    value
    & opt int (Exec.Sweep.default_jobs ())
    & info [ "jobs" ] ~doc:"worker domains for multi-point sweeps (1 = sequential)")

let serve_cmd =
  let system =
    Arg.(value & opt string "lp" & info [ "system" ] ~doc:"lp|lp-nouintr|shinjuku|libinger|nopreempt|go")
  in
  let workload = Arg.(value & opt string "a1" & info [ "workload" ] ~doc:"a1|a2|b|c") in
  let rate =
    Arg.(
      value & opt string "500000"
      & info [ "rate" ] ~doc:"offered load, requests/s; comma-separated list sweeps in parallel")
  in
  let quantum = Arg.(value & opt int 5 & info [ "quantum" ] ~doc:"time quantum, us") in
  let workers = Arg.(value & opt int 4 & info [ "workers" ] ~doc:"worker threads") in
  let duration = Arg.(value & opt int 100 & info [ "duration" ] ~doc:"run length, ms") in
  let adaptive = Arg.(value & flag & info [ "adaptive" ] ~doc:"use the Algorithm-1 controller") in
  let seed = Arg.(value & opt int64 42L & info [ "seed" ] ~doc:"simulation seed") in
  let timeout =
    Arg.(
      value & opt int 0
      & info [ "timeout" ]
          ~doc:"client patience, us (0 = none); also arms server-side expiry of abandoned work")
  in
  let shed =
    Arg.(
      value & opt int 0
      & info [ "shed" ]
          ~doc:"bound total queue occupancy and shed on standing delay (0 = no shedding)")
  in
  let retry_budget =
    Arg.(
      value & opt (some float) None
      & info [ "retry-budget" ]
          ~doc:
            "enable client retries (4 attempts, exponential backoff) with a token budget \
             of this many retries/s; 0 = unbudgeted naive retries; requires --timeout")
  in
  let brownout =
    Arg.(
      value & flag
      & info [ "brownout" ] ~doc:"enable the hysteretic brownout/circuit-breaker controller")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ]
          ~doc:
            "write the run's metrics snapshot in Prometheus text exposition format to \
             this file (multi-rate sweeps export the last rate)")
  in
  let servers =
    Arg.(
      value & opt int 1
      & info [ "servers" ]
          ~doc:"fleet size; above 1 simulates N servers behind a load balancer (lp|lp-nouintr)")
  in
  let lb =
    Arg.(
      value & opt string "p2c"
      & info [ "lb" ] ~doc:"fleet dispatch policy: random|rr|jsq|p2c (with --servers)")
  in
  let steal =
    Arg.(
      value & flag
      & info [ "steal" ]
          ~doc:"enable cross-server work stealing (with --servers; incompatible with \
                --retry-budget)")
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"simulate a request-serving system under load"
       ~envs:[ env_pool_trace ])
    Term.(
      const serve $ system $ workload $ rate $ jobs_arg $ quantum $ workers $ duration
      $ adaptive $ seed $ timeout $ shed $ retry_budget $ brownout $ metrics_out $ servers
      $ lb $ steal)

(* ------------------------------------------------------------------ *)
(* top                                                                 *)
(* ------------------------------------------------------------------ *)

(* Periodically refreshed dashboard over the telemetry tick.  The
   simulation runs at full speed; rendering is throttled on wall clock
   (--refresh-ms) so a fast run does not flood the terminal.  --once
   suppresses live repaints and prints the final frame exactly once —
   the CI smoke mode. *)

let occupancy_bar frac width =
  let frac = if Float.is_nan frac then 0.0 else Float.min 1.0 (Float.max 0.0 frac) in
  let n = int_of_float ((frac *. float_of_int width) +. 0.5) in
  String.make n '#' ^ String.make (width - n) '.'

let render_frame ~clear (f : Preemptible.Telemetry.frame) =
  if clear then print_string "\027[2J\027[H";
  let quantum =
    if f.Preemptible.Telemetry.f_quantum_ns = max_int then "uncapped"
    else Printf.sprintf "%.1fus" (float_of_int f.Preemptible.Telemetry.f_quantum_ns /. 1e3)
  in
  let guard =
    match f.Preemptible.Telemetry.f_guard with
    | None -> "-"
    | Some s -> Guard.state_name s
  in
  let pct_ns ns elapsed = 100.0 *. float_of_int ns /. float_of_int (max 1 elapsed) in
  let us_or_dash v = if Float.is_nan v then "-" else Printf.sprintf "%.1fus" (v /. 1e3) in
  Format.printf "lpctl top  t=%7.2fms  quantum=%s  guard=%s  qlen=%d@."
    (float_of_int f.Preemptible.Telemetry.f_at_ns /. 1e6)
    quantum guard f.Preemptible.Telemetry.f_qlen;
  Format.printf "  tick: %d arrivals, %d completions, p50=%s p99=%s@."
    f.Preemptible.Telemetry.f_arrivals f.Preemptible.Telemetry.f_completions
    (us_or_dash f.Preemptible.Telemetry.f_p50_ns)
    (us_or_dash f.Preemptible.Telemetry.f_p99_ns);
  Array.iteri
    (fun i (c : Preemptible.Telemetry.core_attr) ->
      let el = f.Preemptible.Telemetry.f_elapsed_ns in
      let busy = float_of_int c.service_ns /. float_of_int (max 1 el) in
      Format.printf
        "  core %d [%s] %5.1f%% busy  (sched %4.1f%% preempt %4.1f%% idle %4.1f%%)@." i
        (occupancy_bar busy 20) (100.0 *. busy) (pct_ns c.sched_ns el)
        (pct_ns c.preempt_ns el) (pct_ns c.idle_ns el))
    f.Preemptible.Telemetry.f_cores;
  List.iter
    (fun (name, (s : Obs.Slo.status)) ->
      Format.printf "  slo %-12s burn fast %5.2fx slow %5.2fx  budget %5.1f%%%s@." name
        s.Obs.Slo.fast_burn s.Obs.Slo.slow_burn
        (100.0 *. s.Obs.Slo.budget_consumed)
        (if s.Obs.Slo.burn_firing then "  [BURN ALERT]"
         else if s.Obs.Slo.static_firing then "  [budget exhausted]"
         else ""))
    f.Preemptible.Telemetry.f_slos;
  Format.print_flush ()

let top workload rate workers quantum_us adaptive duration_ms tick_us slo_us refresh_ms
    once seed timeout_us shed_depth brownout =
  let duration_ns = ms duration_ms in
  if rate <= 0.0 then begin
    prerr_endline "--rate must be positive";
    exit 1
  end;
  if tick_us <= 0 then begin
    prerr_endline "--tick must be positive (us)";
    exit 1
  end;
  if slo_us <= 0 then begin
    prerr_endline "--slo must be positive (us)";
    exit 1
  end;
  if refresh_ms < 0 then begin
    prerr_endline "--refresh-ms must be non-negative";
    exit 1
  end;
  match workload_of_string duration_ns workload with
  | Error (`Msg m) ->
    prerr_endline m;
    exit 1
  | Ok dist ->
    let guard = guard_of_flags ~timeout_us ~shed_depth ~retry_budget:None ~brownout in
    let tick_ns = us tick_us in
    let slo_spec =
      {
        Obs.Slo.default_spec with
        Obs.Slo.name = Printf.sprintf "p99_%dus" slo_us;
        threshold_ns = us slo_us;
        window_ns = tick_ns;
        fast_windows = 2;
        slow_windows = 6;
        burn_threshold = 3.0;
      }
    in
    let policy =
      if adaptive then
        Preemptible.Policy.adaptive
          (Preemptible.Quantum_controller.create
             ~max_load_per_s:
               (float_of_int workers *. 1e9
               /. Workload.Service_dist.mean_ns dist ~now:0)
             ~initial_quantum_ns:(us quantum_us) ())
      else Preemptible.Policy.fcfs_preempt ~quantum_ns:(us quantum_us)
    in
    let cfg =
      Preemptible.Server.default_config ~n_workers:workers ~policy
        ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config)
    in
    let cfg =
      {
        cfg with
        Preemptible.Server.seed;
        guard;
        (* A dashboard wants the controller acting at dashboard
           timescales; the 100 ms default stats window would leave the
           quantum frozen for short runs. *)
        stats_window_ns = ms 2;
        telemetry =
          Some
            {
              Preemptible.Telemetry.default with
              Preemptible.Telemetry.tick_ns;
              slos = [ slo_spec ];
            };
      }
    in
    let last_frame = ref None in
    let last_render = ref neg_infinity in
    let refresh_s = float_of_int refresh_ms /. 1e3 in
    let probes =
      {
        Preemptible.Server.no_probes with
        Preemptible.Server.on_tick =
          (fun frame ->
            last_frame := Some frame;
            if not once then begin
              let now = Unix.gettimeofday () in
              if now -. !last_render >= refresh_s then begin
                last_render := now;
                render_frame ~clear:true frame
              end
            end);
      }
    in
    let r =
      Preemptible.Server.run ~probes cfg
        ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
        ~source:(Workload.Source.of_dist dist ~cls:Workload.Request.Latency_critical)
        ~duration_ns
    in
    (* Final frame: the only render in --once mode; live mode repaints
       it so the terminal ends on the last state, not mid-run. *)
    (match !last_frame with
    | Some frame -> render_frame ~clear:(not once) frame
    | None ->
      Format.printf "lpctl top: no telemetry frame recorded (duration below one tick?)@.");
    (match r.Preemptible.Server.telemetry with
    | None -> ()
    | Some tel ->
      Format.printf "@.run summary: %d ticks, %d completed, p99=%.1fus@."
        tel.Preemptible.Telemetry.t_ticks r.Preemptible.Server.completed
        (r.Preemptible.Server.all.Stat.Summary.p99 /. 1e3);
      Format.printf "  LC: %a@." Stat.Summary.pp_report_opt_us r.Preemptible.Server.lc;
      Array.iteri
        (fun i c ->
          Format.printf "  core %d: %a@." i Preemptible.Telemetry.pp_core_attr c)
        tel.Preemptible.Telemetry.t_cores;
      List.iter
        (fun rep -> Format.printf "  %a@." Obs.Slo.pp_report rep)
        tel.Preemptible.Telemetry.t_slos;
      Format.printf "  controller audit: %d decisions (%d dropped)@."
        (List.length tel.Preemptible.Telemetry.t_audit)
        tel.Preemptible.Telemetry.t_audit_dropped);
    match r.Preemptible.Server.guard with
    | Some g -> Format.printf "  guard: %a@." Guard.pp_report g
    | None -> ()

let top_cmd =
  let workload = Arg.(value & opt string "a1" & info [ "workload" ] ~doc:"a1|a2|b|c") in
  let rate =
    Arg.(value & opt float 500_000.0 & info [ "rate" ] ~doc:"offered load, requests/s")
  in
  let workers = Arg.(value & opt int 4 & info [ "workers" ] ~doc:"worker threads") in
  let quantum = Arg.(value & opt int 5 & info [ "quantum" ] ~doc:"time quantum, us") in
  let adaptive =
    Arg.(value & flag & info [ "adaptive" ] ~doc:"use the Algorithm-1 controller")
  in
  let duration = Arg.(value & opt int 200 & info [ "duration" ] ~doc:"run length, ms") in
  let tick =
    Arg.(value & opt int 1000 & info [ "tick" ] ~doc:"telemetry tick / SLO window, us")
  in
  let slo =
    Arg.(
      value & opt int 250
      & info [ "slo" ] ~doc:"latency SLO threshold, us (objective 99% under threshold)")
  in
  let refresh =
    Arg.(
      value & opt int 50
      & info [ "refresh-ms" ] ~doc:"minimum wall-clock delay between repaints")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ] ~doc:"no live repaints; print the final frame once and exit")
  in
  let seed = Arg.(value & opt int64 42L & info [ "seed" ] ~doc:"simulation seed") in
  let timeout =
    Arg.(value & opt int 0 & info [ "timeout" ] ~doc:"client patience, us (0 = none)")
  in
  let shed =
    Arg.(value & opt int 0 & info [ "shed" ] ~doc:"queue bound for shedding (0 = off)")
  in
  let brownout =
    Arg.(value & flag & info [ "brownout" ] ~doc:"enable the brownout controller")
  in
  Cmd.v
    (Cmd.info "top" ~doc:"live telemetry dashboard for a simulated server")
    Term.(
      const top $ workload $ rate $ workers $ quantum $ adaptive $ duration $ tick $ slo
      $ refresh $ once $ seed $ timeout $ shed $ brownout)

(* ------------------------------------------------------------------ *)
(* ipc                                                                 *)
(* ------------------------------------------------------------------ *)

let ipc n =
  List.iter
    (fun mech -> Format.printf "%a@." Ksim.Ipc.pp_result (Ksim.Ipc.run_pingpong mech ~n))
    Ksim.Ipc.all

let ipc_cmd =
  let n = Arg.(value & opt int 100_000 & info [ "n" ] ~doc:"ping-pong round trips") in
  Cmd.v (Cmd.info "ipc" ~doc:"Table IV: IPC mechanism ping-pong") Term.(const ipc $ n)

(* ------------------------------------------------------------------ *)
(* timer                                                               *)
(* ------------------------------------------------------------------ *)

let timer strategy threads interval_us rounds =
  let strat =
    match strategy with
    | "creation" -> Ok Baselines.Timer_strategies.Creation_time
    | "staggered" -> Ok Baselines.Timer_strategies.Staggered
    | "chained" -> Ok Baselines.Timer_strategies.Chained
    | "utimer" -> Ok Baselines.Timer_strategies.Userspace_timer
    | s -> Error s
  in
  match strat with
  | Error s ->
    prerr_endline (Printf.sprintf "unknown strategy %S (creation|staggered|chained|utimer)" s);
    exit 1
  | Ok strat ->
    let r =
      Baselines.Timer_strategies.delivery_overhead strat ~threads ~interval_ns:(us interval_us)
        ~rounds
    in
    Format.printf "%s threads=%d mean=%.2fus p99=%.2fus max=%.2fus@."
      r.Baselines.Timer_strategies.strategy threads r.Baselines.Timer_strategies.mean_overhead_us
      r.Baselines.Timer_strategies.p99_overhead_us r.Baselines.Timer_strategies.max_overhead_us

let timer_cmd =
  let strategy =
    Arg.(value & opt string "utimer" & info [ "strategy" ] ~doc:"creation|staggered|chained|utimer")
  in
  let threads = Arg.(value & opt int 16 & info [ "threads" ] ~doc:"timer-armed threads") in
  let interval = Arg.(value & opt int 100 & info [ "interval" ] ~doc:"timer interval, us") in
  let rounds = Arg.(value & opt int 1000 & info [ "rounds" ] ~doc:"measured firings per thread") in
  Cmd.v
    (Cmd.info "timer" ~doc:"Fig 11: timer delivery overhead for one strategy")
    Term.(const timer $ strategy $ threads $ interval $ rounds)

(* ------------------------------------------------------------------ *)
(* colocate                                                            *)
(* ------------------------------------------------------------------ *)

let colocate rate quantum_us be_fraction duration_ms =
  let mica = Workload.Mica.create () in
  let zlib = Workload.Zlib_be.create () in
  let source =
    Workload.Source.mix
      [ (1.0 -. be_fraction, Workload.Mica.source mica); (be_fraction, Workload.Zlib_be.source zlib) ]
  in
  let policy =
    if quantum_us = 0 then Preemptible.Policy.no_preempt
    else Preemptible.Policy.fcfs_preempt ~quantum_ns:(us quantum_us)
  in
  let mechanism =
    if quantum_us = 0 then Preemptible.Server.No_mechanism
    else Preemptible.Server.Uintr_utimer Utimer.default_config
  in
  let cfg = Preemptible.Server.default_config ~n_workers:1 ~policy ~mechanism in
  let r =
    Preemptible.Server.run cfg
      ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
      ~source ~duration_ns:(ms duration_ms)
  in
  pp_result r

let colocate_cmd =
  let rate = Arg.(value & opt float 55_000.0 & info [ "rate" ] ~doc:"requests/s") in
  let quantum = Arg.(value & opt int 30 & info [ "quantum" ] ~doc:"us; 0 = no preemption") in
  let be = Arg.(value & opt float 0.02 & info [ "be-fraction" ] ~doc:"best-effort share") in
  let duration = Arg.(value & opt int 300 & info [ "duration" ] ~doc:"ms") in
  Cmd.v
    (Cmd.info "colocate" ~doc:"Sec V-C: MICA (LC) + zlib (BE) on one worker")
    Term.(const colocate $ rate $ quantum $ be $ duration)

(* ------------------------------------------------------------------ *)
(* precision                                                           *)
(* ------------------------------------------------------------------ *)

let precision source_s threads target_us samples =
  let source =
    match source_s with
    | "kernel" -> `Kernel_timer
    | "utimer" -> `Utimer
    | s ->
      prerr_endline (Printf.sprintf "unknown source %S (kernel|utimer)" s);
      exit 1
  in
  let r =
    Baselines.Timer_strategies.precision source ~threads ~target_ns:(us target_us) ~samples
  in
  Format.printf "%s target=%dus mean=%.2fus std=%.2fus p99=%.2fus rel.err=%.1f%%@."
    r.Baselines.Timer_strategies.source target_us r.Baselines.Timer_strategies.mean_gap_us
    r.Baselines.Timer_strategies.std_gap_us r.Baselines.Timer_strategies.p99_gap_us
    (100.0 *. r.Baselines.Timer_strategies.rel_error)

let precision_cmd =
  let source = Arg.(value & opt string "utimer" & info [ "source" ] ~doc:"kernel|utimer") in
  let threads = Arg.(value & opt int 26 & info [ "threads" ] ~doc:"concurrent timer users") in
  let target = Arg.(value & opt int 20 & info [ "target" ] ~doc:"target interval, us") in
  let samples = Arg.(value & opt int 5000 & info [ "samples" ] ~doc:"measured gaps") in
  Cmd.v
    (Cmd.info "precision" ~doc:"Fig 12: timer precision")
    Term.(const precision $ source $ threads $ target $ samples)

(* ------------------------------------------------------------------ *)
(* faults                                                              *)
(* ------------------------------------------------------------------ *)

let faults_csv rows =
  match Exec.Env.getenv_nonempty "LP_BENCH_CSV" with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir "lpctl_faults.csv" in
    let oc = open_out path in
    output_string oc "case,p99_us,ratio_vs_fault_free,injected,detected,recovered,undetected\n";
    List.iter (fun row -> output_string oc (row ^ "\n")) rows;
    close_out oc;
    Format.printf "(csv: %s)@." path

let faults rate spec recovery seed workers quantum_us load duration_ms =
  let duration_ns = ms duration_ms in
  let dist = Workload.Service_dist.workload_a1 in
  let capacity =
    float_of_int workers *. 1e9 /. Workload.Service_dist.mean_ns dist ~now:0
  in
  let arrival = Workload.Arrival.poisson ~rate_per_sec:(load *. capacity) in
  let source = Workload.Source.of_dist dist ~cls:Workload.Request.Latency_critical in
  let spec = if spec = "" then Printf.sprintf "uipi.drop=p:%g" rate else spec in
  (match recovery with
  | "on" | "off" | "both" -> ()
  | s ->
    prerr_endline (Printf.sprintf "unknown --recovery %S (on|off|both)" s);
    exit 1);
  (match Fault.parse (Fault.create ~seed ()) spec with
  | Ok () -> ()
  | Error m ->
    prerr_endline ("bad --spec: " ^ m);
    exit 1);
  let run_one ~plan ~watchdog =
    let cfg =
      Preemptible.Server.default_config ~n_workers:workers
        ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:(us quantum_us))
        ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config)
    in
    Preemptible.Server.run
      { cfg with Preemptible.Server.faults = plan; watchdog; seed }
      ~arrival ~source ~duration_ns
  in
  let plan () =
    let f = Fault.create ~seed () in
    (match Fault.parse f spec with
    | Ok () -> ()
    | Error m ->
      prerr_endline ("bad --spec: " ^ m);
      exit 1);
    Some f
  in
  let base = run_one ~plan:None ~watchdog:None in
  let base_p99 = base.Preemptible.Server.all.Stat.Summary.p99 in
  Format.printf "fault-free      p99=%8.1fus@." (base_p99 /. 1e3);
  let rows = ref [] in
  let show name r =
    let p99 = r.Preemptible.Server.all.Stat.Summary.p99 in
    (match r.Preemptible.Server.resilience with
    | Some res ->
      Format.printf "%-15s p99=%8.1fus (%5.1fx)@.  %a@." name (p99 /. 1e3)
        (p99 /. base_p99) Preemptible.Server.pp_resilience res;
      let fr = res.Preemptible.Server.fault_report in
      rows :=
        Printf.sprintf "%s,%.1f,%.3f,%d,%d,%d,%d" name (p99 /. 1e3) (p99 /. base_p99)
          fr.Fault.injected fr.Fault.detected fr.Fault.recovered fr.Fault.undetected
        :: !rows
    | None -> ())
  in
  (match recovery with
  | "off" -> show "recovery-off" (run_one ~plan:(plan ()) ~watchdog:None)
  | "on" ->
    show "recovery-on"
      (run_one ~plan:(plan ()) ~watchdog:(Some Utimer.default_watchdog))
  | "both" ->
    show "recovery-off" (run_one ~plan:(plan ()) ~watchdog:None);
    show "recovery-on"
      (run_one ~plan:(plan ()) ~watchdog:(Some Utimer.default_watchdog))
  | s ->
    prerr_endline (Printf.sprintf "unknown --recovery %S (on|off|both)" s);
    exit 1);
  faults_csv (List.rev !rows)

let faults_cmd =
  let rate =
    Arg.(value & opt float 0.01 & info [ "rate" ] ~doc:"UIPI loss probability (ignored with --spec)")
  in
  let spec =
    Arg.(
      value & opt string ""
      & info [ "spec" ]
          ~doc:"fault schedule, e.g. uipi.drop=p:0.01,utimer.crash=once:2000")
  in
  let recovery = Arg.(value & opt string "both" & info [ "recovery" ] ~doc:"on|off|both") in
  let seed = Arg.(value & opt int64 7L & info [ "seed" ] ~doc:"simulation + fault seed") in
  let workers = Arg.(value & opt int 4 & info [ "workers" ]) in
  let quantum = Arg.(value & opt int 5 & info [ "quantum" ] ~doc:"us") in
  let load = Arg.(value & opt float 0.6 & info [ "load" ] ~doc:"fraction of capacity") in
  let duration = Arg.(value & opt int 60 & info [ "duration" ] ~doc:"ms") in
  Cmd.v
    (Cmd.info "faults" ~doc:"resilience: fault injection with recovery on/off"
       ~envs:[ env_bench_csv ])
    Term.(
      const faults $ rate $ spec $ recovery $ seed $ workers $ quantum $ load $ duration)

(* ------------------------------------------------------------------ *)
(* trace                                                               *)
(* ------------------------------------------------------------------ *)

let parse_categories s =
  if String.trim s = "" then Obs.Trace.all_cats
  else
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun c -> c <> "")
    |> List.map (fun c ->
           match Obs.Trace.cat_of_string c with
           | Ok cat -> cat
           | Error m ->
             prerr_endline ("bad --categories: " ^ m);
             exit 1)

let trace out categories buffer_events breakdown workload rate quantum_us workers
    duration_ms seed =
  let duration_ns = ms duration_ms in
  (* Validate every knob before the simulation spends any time. *)
  if buffer_events <= 0 then begin
    prerr_endline "--buffer-events must be positive";
    exit 1
  end;
  if workers <= 0 then begin
    prerr_endline "--workers must be positive";
    exit 1
  end;
  if quantum_us <= 0 then begin
    prerr_endline "--quantum must be positive";
    exit 1
  end;
  if rate <= 0.0 then begin
    prerr_endline "--rate must be positive";
    exit 1
  end;
  if duration_ms <= 0 then begin
    prerr_endline "--duration must be positive";
    exit 1
  end;
  let categories = parse_categories categories in
  let out =
    match out with
    | "" -> (
      (* An empty LP_TRACE_OUT counts as unset, matching the bench
         harness convention. *)
      match Exec.Env.getenv_nonempty "LP_TRACE_OUT" with
      | Some f -> f
      | None -> "trace.json")
    | f -> f
  in
  match workload_of_string duration_ns workload with
  | Error (`Msg m) ->
    prerr_endline m;
    exit 1
  | Ok dist ->
    let cfg =
      Preemptible.Server.default_config ~n_workers:workers
        ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:(us quantum_us))
        ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config)
    in
    let cfg =
      {
        cfg with
        Preemptible.Server.seed;
        trace = Some { Obs.Trace.capacity = buffer_events; categories };
      }
    in
    let r =
      Preemptible.Server.run cfg
        ~arrival:(Workload.Arrival.poisson ~rate_per_sec:rate)
        ~source:(Workload.Source.of_dist dist ~cls:Workload.Request.Latency_critical)
        ~duration_ns
    in
    pp_result r;
    (match r.Preemptible.Server.trace with
    | None -> ()
    | Some tr ->
      Obs.Export.perfetto_to_file tr ~path:out;
      Format.printf "trace: %d events recorded, %d dropped -> %s@." (Obs.Trace.recorded tr)
        (Obs.Trace.dropped tr) out;
      if breakdown then begin
        let bd = Obs.Breakdown.of_trace tr in
        Format.printf "%a@." Obs.Breakdown.pp bd;
        if not (Obs.Breakdown.sums_ok bd) then begin
          prerr_endline "breakdown components do not telescope to total latency";
          exit 1
        end
      end);
    Format.printf "metrics:@.%a@." Obs.Metrics.pp_snapshot r.Preemptible.Server.metrics

let trace_cmd =
  let out =
    Arg.(
      value & opt string ""
      & info [ "out" ] ~doc:"Perfetto JSON output path (default $(b,LP_TRACE_OUT) or trace.json)")
  in
  let categories =
    Arg.(
      value & opt string ""
      & info [ "categories" ]
          ~doc:"comma-separated category filter (uipi,klock,utimer,sched,server,request,fault,fiber,exec); empty = all")
  in
  let buffer_events =
    Arg.(
      value
      & opt int Obs.Trace.default_config.Obs.Trace.capacity
      & info [ "buffer-events" ] ~doc:"trace ring capacity in events")
  in
  let breakdown =
    Arg.(value & flag & info [ "breakdown" ] ~doc:"print the per-request latency breakdown")
  in
  let workload = Arg.(value & opt string "a1" & info [ "workload" ] ~doc:"a1|a2|b|c") in
  let rate = Arg.(value & opt float 500_000.0 & info [ "rate" ] ~doc:"offered load, requests/s") in
  let quantum = Arg.(value & opt int 5 & info [ "quantum" ] ~doc:"time quantum, us") in
  let workers = Arg.(value & opt int 4 & info [ "workers" ] ~doc:"worker threads") in
  let duration = Arg.(value & opt int 100 & info [ "duration" ] ~doc:"run length, ms") in
  let seed = Arg.(value & opt int64 42L & info [ "seed" ] ~doc:"simulation seed") in
  Cmd.v
    (Cmd.info "trace" ~doc:"traced LibPreemptible run: Perfetto export + latency breakdown"
       ~envs:[ env_trace_out ])
    Term.(
      const trace $ out $ categories $ buffer_events $ breakdown $ workload $ rate $ quantum
      $ workers $ duration $ seed)

(* ------------------------------------------------------------------ *)
(* run (declarative scenarios)                                         *)
(* ------------------------------------------------------------------ *)

(* lpctl run SCENARIO: SCENARIO is a .scn file when one exists at that
   path, otherwise it is parsed as an inline spec string, so both

     lpctl run scenarios/tail_attack.scn
     lpctl run "workers=4; src=b; arrival=poisson:0.8x; dur=30ms"

   work.  -s KEY=VALUE overrides apply on top in order.  --rt executes
   the spec on real domains (Fiber_rt) instead of the simulator. *)
let run_scenario scenario sets print_only rt =
  let parsed =
    if Sys.file_exists scenario then Scenario.of_file scenario
    else Scenario.of_string scenario
  in
  let spec =
    match parsed with
    | Ok spec -> spec
    | Error e ->
      prerr_endline (Scenario.error_to_string e);
      exit 1
  in
  let spec =
    List.fold_left
      (fun spec text ->
        match Scenario.override spec text with
        | Ok spec -> spec
        | Error e ->
          prerr_endline ("-s " ^ text ^ ": " ^ Scenario.error_to_string e);
          exit 1)
      spec sets
  in
  (match Scenario.validate spec with
  | Ok () -> ()
  | Error m ->
    prerr_endline m;
    exit 1);
  if print_only then print_string (Scenario.to_string spec)
  else if rt then begin
    (match Scenario.validate_rt spec with
    | Ok () -> ()
    | Error m ->
      prerr_endline ("--rt: " ^ m);
      exit 1);
    Format.printf "# %s@." (Scenario.to_string spec);
    Format.printf "# executing on %d real domain(s) + 1 timer domain (wall clock)@."
      spec.Scenario.workers;
    Format.printf "%a@." Fiber_rt.Sched.pp_result (Scenario.run_rt spec)
  end
  else begin
    Format.printf "# %s@." (Scenario.to_string spec);
    match Scenario.run spec with
    | Scenario.Server r -> pp_result r
    | Scenario.Fleet r -> pp_fleet_result r
  end

let run_cmd =
  let scenario =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SCENARIO"
          ~doc:"a scenario (.scn) file path, or an inline spec string when no such file exists")
  in
  let sets =
    Arg.(
      value & opt_all string []
      & info [ "s"; "set" ] ~docv:"KEY=VALUE"
          ~doc:"override a scenario field (repeatable, applied in order), e.g. -s seed=7 -s \
                \"arrival=poisson:1.2x\"")
  in
  let print_only =
    Arg.(
      value & flag
      & info [ "print" ] ~doc:"print the normalized spec instead of running it")
  in
  let rt =
    Arg.(
      value & flag
      & info [ "rt" ]
          ~doc:
            "execute on real domains (work-stealing fiber runtime) instead of the \
             simulator; supports the single-server lp subset of the language (no fleet, \
             guard, faults, watchdog or adaptive quantum)")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"parse, validate and run a declarative scenario")
    Term.(const run_scenario $ scenario $ sets $ print_only $ rt)

(* ------------------------------------------------------------------ *)
(* attack                                                              *)
(* ------------------------------------------------------------------ *)

let attack scenario_s storm victim_rate duration_ms =
  let scenario =
    match scenario_s with
    | "native" -> Baselines.Attack.Native_uintr_storm
    | "libpreemptible" | "lp" -> Baselines.Attack.Libpreemptible_storm
    | "apic" -> Baselines.Attack.Shinjuku_apic_storm
    | s ->
      prerr_endline (Printf.sprintf "unknown scenario %S (native|lp|apic)" s);
      exit 1
  in
  let r =
    Baselines.Attack.run scenario ~storm_per_sec:storm ~victim_rate
      ~duration_ns:(ms duration_ms)
  in
  Format.printf "%a@." Baselines.Attack.pp_result r

let attack_cmd =
  let scenario = Arg.(value & opt string "native" & info [ "scenario" ] ~doc:"native|lp|apic") in
  let storm = Arg.(value & opt float 1_000_000.0 & info [ "storm" ] ~doc:"interrupts/s") in
  let victim = Arg.(value & opt float 300_000.0 & info [ "victim-rate" ] ~doc:"requests/s") in
  let duration = Arg.(value & opt int 100 & info [ "duration" ] ~doc:"ms") in
  Cmd.v
    (Cmd.info "attack" ~doc:"Sec VII: interrupt-storm DoS against a victim core")
    Term.(const attack $ scenario $ storm $ victim $ duration)

let () =
  let doc = "LibPreemptible reproduction: custom simulation runs" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "lpctl" ~doc)
          [
            serve_cmd;
            run_cmd;
            top_cmd;
            ipc_cmd;
            timer_cmd;
            colocate_cmd;
            precision_cmd;
            attack_cmd;
            faults_cmd;
            trace_cmd;
          ]))
