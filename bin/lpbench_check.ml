(* lpbench_check: gate bench reports against a committed baseline.

     lpbench_check --report bench_report.json --baseline BENCH_BASELINE.json

   Points are matched by figure name plus the exact label set; a gated
   metric whose relative difference exceeds the tolerance fails the
   check.  Exit codes: 0 ok, 1 regression/missing data, 2 usage or
   unreadable input. *)

open Cmdliner

module J = Obs.Json

type point = { labels : (string * string) list; metrics : (string * float) list }

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

let load path =
  match J.of_file path with
  | Error m -> die "%s: %s" path m
  | Ok j -> j

(* figures section -> fig name -> points *)
let points_of j path =
  match J.member "figures" j with
  | None -> die "%s: no \"figures\" section" path
  | Some figs -> (
    match J.to_obj figs with
    | None -> die "%s: \"figures\" is not an object" path
    | Some members ->
      List.map
        (fun (fig, pts) ->
          let pts =
            match J.to_list pts with None -> die "%s: figure %S is not a list" path fig | Some l -> l
          in
          let parse_point p =
            let section name to_v =
              match J.member name p with
              | None -> []
              | Some o -> (
                match J.to_obj o with
                | None -> []
                | Some ms -> List.filter_map (fun (k, v) -> Option.map (fun v -> (k, v)) (to_v v)) ms)
            in
            {
              labels = section "labels" J.to_str;
              metrics = section "metrics" J.to_num;
            }
          in
          (fig, List.map parse_point pts))
        members)

let label_key labels =
  List.sort compare labels
  |> List.map (fun (k, v) -> k ^ "=" ^ v)
  |> String.concat ","

let find_point points labels =
  List.find_opt (fun p -> label_key p.labels = label_key labels) points

let check ~report ~baseline ~metrics ~tolerance ~figures =
  let rep = points_of (load report) report in
  let base = points_of (load baseline) baseline in
  (* An explicit --figures subset gates only those figures (a partial
     report, e.g. the tutorial's fig8-only run, checks cleanly); the
     default gates every figure the baseline has. *)
  let base =
    match figures with
    | [] -> base
    | wanted ->
      List.iter
        (fun f ->
          if not (List.mem_assoc f base) then die "--figures: %S not in baseline %s" f baseline)
        wanted;
      List.filter (fun (fig, _) -> List.mem fig wanted) base
  in
  (* A metric entry is either bare ("p99_us": gated in every figure) or
     figure-scoped ("overload:goodput_rps": gated only there). *)
  let gated fig m =
    List.exists
      (fun (scope, mm) ->
        mm = m && match scope with None -> true | Some f -> f = fig)
      metrics
  in
  let failures = ref 0 in
  let compared = ref 0 in
  let fail fmt =
    incr failures;
    Printf.ksprintf (fun m -> Printf.printf "FAIL  %s\n" m) fmt
  in
  List.iter
    (fun (fig, bpoints) ->
      match List.assoc_opt fig rep with
      | None -> fail "%-14s figure missing from report" fig
      | Some rpoints ->
        List.iter
          (fun bp ->
            match find_point rpoints bp.labels with
            | None -> fail "%-14s point {%s} missing from report" fig (label_key bp.labels)
            | Some rp ->
              List.iter
                (fun (m, bv) ->
                  if gated fig m then
                    match List.assoc_opt m rp.metrics with
                    | None -> fail "%-14s {%s} metric %s missing" fig (label_key bp.labels) m
                    | Some rv ->
                      incr compared;
                      let diff = (rv -. bv) /. Float.max (Float.abs bv) 1e-9 in
                      if Float.abs diff > tolerance then
                        fail "%-14s {%s} %s: %.4g -> %.4g (%+.1f%%, tol ±%.0f%%)" fig
                          (label_key bp.labels) m bv rv (100.0 *. diff)
                          (100.0 *. tolerance))
                bp.metrics)
          bpoints)
    base;
  let metric_names =
    List.map (function None, m -> m | Some f, m -> f ^ ":" ^ m) metrics
  in
  Printf.printf "%d gated metrics compared, %d failures (tolerance ±%.0f%%, gated: %s)\n"
    !compared !failures (100.0 *. tolerance) (String.concat "," metric_names);
  if !compared = 0 then begin
    prerr_endline "no gated metrics compared — baseline/report mismatch?";
    exit 1
  end;
  if !failures > 0 then exit 1

let run report baseline metrics tolerance figures =
  let split s =
    String.split_on_char ',' s |> List.map String.trim |> List.filter (fun m -> m <> "")
  in
  let metrics =
    List.map
      (fun entry ->
        match String.index_opt entry ':' with
        | None -> (None, entry)
        | Some i ->
          let fig = String.sub entry 0 i in
          let m = String.sub entry (i + 1) (String.length entry - i - 1) in
          if fig = "" || m = "" then die "--metrics: malformed entry %S" entry;
          (Some fig, m))
      (split metrics)
  in
  if metrics = [] then die "--metrics expects a comma-separated list";
  if tolerance <= 0.0 then die "--tolerance must be positive";
  check ~report ~baseline ~metrics ~tolerance ~figures:(split figures)

let cmd =
  let report =
    Arg.(required & opt (some string) None & info [ "report" ] ~doc:"bench --report output")
  in
  let baseline =
    Arg.(
      required & opt (some string) None & info [ "baseline" ] ~doc:"committed baseline report")
  in
  let metrics =
    Arg.(
      value & opt string "p50_us,p99_us,mean_us"
      & info [ "metrics" ]
          ~doc:
            "comma-separated metric names to gate; a bare name gates every figure, \
             $(b,FIG:NAME) (e.g. overload:goodput_rps) gates only that figure")
  in
  let tolerance =
    Arg.(value & opt float 0.10 & info [ "tolerance" ] ~doc:"allowed relative drift, e.g. 0.10")
  in
  let figures =
    Arg.(
      value & opt string ""
      & info [ "figures" ]
          ~doc:
            "comma-separated subset of baseline figures to gate (default: all); use for \
             partial reports, e.g. $(b,--figures fig8)")
  in
  Cmd.v
    (Cmd.info "lpbench_check" ~doc:"compare a bench report against a baseline")
    Term.(const run $ report $ baseline $ metrics $ tolerance $ figures)

let () = exit (Cmd.eval cmd)
