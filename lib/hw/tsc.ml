type t = { sim : Engine.Sim.t; params : Params.t }

let create sim params = { sim; params }
let rdtsc t = Params.tsc_of_ns t.params (Engine.Sim.now t.sim)
let of_ns t ns = Params.tsc_of_ns t.params ns
let to_ns t c = Params.ns_of_tsc t.params c
let deadline_after t d_ns = rdtsc t + of_ns t d_ns
