type receiver_state = Running | Blocked

type stats = {
  sends : int;
  deliveries_running : int;
  deliveries_blocked : int;
  suppressed_posts : int;
  coalesced : int;
}

type t = {
  sim : Engine.Sim.t;
  p : Params.t;
  mutable sends : int;
  mutable deliveries_running : int;
  mutable deliveries_blocked : int;
  mutable suppressed_posts : int;
  mutable coalesced : int;
}

type receiver = {
  fabric : t;
  rname : string;
  mutable rstate : receiver_state;
  mutable pir : int64; (* posted interrupt requests, bit per vector *)
  mutable on : bool; (* outstanding notification *)
  mutable sn : bool; (* suppress notification *)
  handler : receiver -> vector:int -> unit;
}

type uitt_entry = { target : receiver; vector : int }

type sender = { sfabric : t; sname : string; mutable uitt : uitt_entry array; mutable uitt_len : int }

let create sim p =
  {
    sim;
    p;
    sends = 0;
    deliveries_running = 0;
    deliveries_blocked = 0;
    suppressed_posts = 0;
    coalesced = 0;
  }

let params t = t.p

let register_receiver t ?(name = "receiver") ~handler () =
  {
    fabric = t;
    rname = name;
    rstate = Running;
    pir = 0L;
    on = false;
    sn = false;
    handler;
  }

let receiver_name r = r.rname
let state r = r.rstate
let suppressed r = r.sn

let pending_vectors r =
  let rec collect v acc =
    if v < 0 then List.rev acc
    else if Int64.logand r.pir (Int64.shift_left 1L v) <> 0L then collect (v - 1) (v :: acc)
    else collect (v - 1) acc
  in
  collect 63 []

(* Delivery: recognize all posted vectors, highest first, and run the
   handler once per vector — the model of the CPU moving PIR into the
   user-interrupt request register and taking each interrupt. *)
let deliver r =
  r.on <- false;
  let vectors = pending_vectors r in
  r.pir <- 0L;
  List.iter (fun vector -> r.handler r ~vector) vectors

(* Send a notification for pending posted interrupts.  The path depends
   on the receiver state *at delivery decision time*; a blocked receiver
   is woken through the kernel (ordinary interrupt + inject), which both
   costs more and leaves the receiver running. *)
let notify r =
  let t = r.fabric in
  r.on <- true;
  match r.rstate with
  | Running ->
    ignore
      (Engine.Sim.after t.sim t.p.Params.uintr_delivery_ns (fun () ->
           if r.on then begin
             (* The receiver may have blocked between notification and
                delivery; the kernel assist path then applies. *)
             match r.rstate with
             | Running ->
               t.deliveries_running <- t.deliveries_running + 1;
               deliver r
             | Blocked ->
               ignore
                 (Engine.Sim.after t.sim t.p.Params.uintr_blocked_extra_ns (fun () ->
                      if r.on then begin
                        t.deliveries_blocked <- t.deliveries_blocked + 1;
                        r.rstate <- Running;
                        deliver r
                      end))
           end))
  | Blocked ->
    ignore
      (Engine.Sim.after t.sim
         (t.p.Params.uintr_delivery_ns + t.p.Params.uintr_blocked_extra_ns)
         (fun () ->
           if r.on then begin
             t.deliveries_blocked <- t.deliveries_blocked + 1;
             r.rstate <- Running;
             deliver r
           end))

let post r ~vector =
  let t = r.fabric in
  let bit = Int64.shift_left 1L vector in
  if Int64.logand r.pir bit <> 0L then t.coalesced <- t.coalesced + 1;
  r.pir <- Int64.logor r.pir bit;
  if r.sn then t.suppressed_posts <- t.suppressed_posts + 1
  else if not r.on then notify r

let set_state r s =
  let was = r.rstate in
  r.rstate <- s;
  if was = Blocked && s = Running && r.pir <> 0L && (not r.on) && not r.sn then
    notify r

let set_suppressed r b =
  let was = r.sn in
  r.sn <- b;
  if was && (not b) && r.pir <> 0L && not r.on then notify r

let create_sender t ?(name = "sender") () =
  { sfabric = t; sname = name; uitt = [||]; uitt_len = 0 }

let connect s r ~vector =
  if vector < 0 || vector > 63 then invalid_arg "Uintr.connect: vector out of range";
  if s.uitt_len >= s.sfabric.p.Params.uitt_size then
    invalid_arg
      (Printf.sprintf "Uintr.connect: UITT of sender %s is full (%d entries)" s.sname
         s.sfabric.p.Params.uitt_size);
  if s.uitt_len = Array.length s.uitt then begin
    let arr = Array.make (max 8 (2 * Array.length s.uitt)) { target = r; vector } in
    Array.blit s.uitt 0 arr 0 s.uitt_len;
    s.uitt <- arr
  end;
  s.uitt.(s.uitt_len) <- { target = r; vector };
  s.uitt_len <- s.uitt_len + 1;
  s.uitt_len - 1

let senduipi s idx =
  if idx < 0 || idx >= s.uitt_len then
    invalid_arg (Printf.sprintf "Uintr.senduipi: invalid UITT index %d" idx);
  let t = s.sfabric in
  t.sends <- t.sends + 1;
  let { target; vector } = s.uitt.(idx) in
  post target ~vector

let send_cost_ns t = t.p.Params.senduipi_ns

let stats t =
  {
    sends = t.sends;
    deliveries_running = t.deliveries_running;
    deliveries_blocked = t.deliveries_blocked;
    suppressed_posts = t.suppressed_posts;
    coalesced = t.coalesced;
  }
