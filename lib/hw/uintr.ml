type receiver_state = Running | Blocked

type stats = {
  sends : int;
  deliveries_running : int;
  deliveries_blocked : int;
  suppressed_posts : int;
  coalesced : int;
  dropped_notifications : int;
  delayed_notifications : int;
  corrupt_dropped : int;
  stuck_sn_faults : int;
}

(* Fault-injection points consulted on the SENDUIPI path (see lib/fault). *)
type fault_points = {
  f_drop : Fault.point;
  f_delay : Fault.point;
  f_stuck_sn : Fault.point;
  f_corrupt : Fault.point;
  delay_ns : int;
}

type t = {
  sim : Engine.Sim.t;
  p : Params.t;
  faults : fault_points option;
  trace : Obs.Trace.t option;
  mutable n_receivers : int;
  mutable sends : int;
  mutable deliveries_running : int;
  mutable deliveries_blocked : int;
  mutable suppressed_posts : int;
  mutable coalesced : int;
  mutable dropped_notifications : int;
  mutable delayed_notifications : int;
  mutable corrupt_dropped : int;
  mutable stuck_sn_faults : int;
}

type receiver = {
  fabric : t;
  rname : string;
  rid : int; (* trace track id *)
  mutable rstate : receiver_state;
  mutable pir : int64; (* posted interrupt requests, bit per vector *)
  mutable on : bool; (* outstanding notification *)
  mutable sn : bool; (* suppress notification *)
  mutable sn_stuck : bool; (* fault: SN bit stuck set until repaired *)
  mutable deliveries : int; (* vectors delivered, for loss detection *)
  handler : receiver -> vector:int -> unit;
}

type uitt_entry = { target : receiver; vector : int; mutable corrupted : bool }

type sender = { sfabric : t; sname : string; mutable uitt : uitt_entry array; mutable uitt_len : int }

let create ?faults ?trace ?(fault_delay_ns = 2_000) sim p =
  let faults =
    match faults with
    | None -> None
    | Some f ->
      Some
        {
          f_drop = Fault.point f "uipi.drop";
          f_delay = Fault.point f "uipi.delay";
          f_stuck_sn = Fault.point f "uipi.stuck_sn";
          f_corrupt = Fault.point f "uipi.uitt_corrupt";
          delay_ns = fault_delay_ns;
        }
  in
  {
    sim;
    p;
    faults;
    trace;
    n_receivers = 0;
    sends = 0;
    deliveries_running = 0;
    deliveries_blocked = 0;
    suppressed_posts = 0;
    coalesced = 0;
    dropped_notifications = 0;
    delayed_notifications = 0;
    corrupt_dropped = 0;
    stuck_sn_faults = 0;
  }

let params t = t.p

(* Probe helper: one instant event on the receiver's track. *)
let tr t ~name ~track ~arg =
  match t.trace with
  | Some trace -> Obs.Trace.instant trace Obs.Trace.Uipi ~name ~track ~arg
  | None -> ()

let register_receiver t ?(name = "receiver") ~handler () =
  t.n_receivers <- t.n_receivers + 1;
  {
    fabric = t;
    rname = name;
    rid = t.n_receivers - 1;
    rstate = Running;
    pir = 0L;
    on = false;
    sn = false;
    sn_stuck = false;
    deliveries = 0;
    handler;
  }

let receiver_name r = r.rname
let receiver_track r = r.rid
let state r = r.rstate
let suppressed r = r.sn
let deliveries r = r.deliveries

let pending_vectors r =
  let rec collect v acc =
    if v < 0 then List.rev acc
    else if Int64.logand r.pir (Int64.shift_left 1L v) <> 0L then collect (v - 1) (v :: acc)
    else collect (v - 1) acc
  in
  collect 63 []

(* Delivery: recognize all posted vectors, highest first, and run the
   handler once per vector — the model of the CPU moving PIR into the
   user-interrupt request register and taking each interrupt. *)
let deliver r =
  r.on <- false;
  let vectors = pending_vectors r in
  r.pir <- 0L;
  r.deliveries <- r.deliveries + List.length vectors;
  List.iter
    (fun vector ->
      tr r.fabric ~name:"uipi.deliver" ~track:r.rid ~arg:vector;
      r.handler r ~vector)
    vectors

(* Send a notification for pending posted interrupts.  The path depends
   on the receiver state *at delivery decision time*; a blocked receiver
   is woken through the kernel (ordinary interrupt + inject), which both
   costs more and leaves the receiver running.  [extra] models
   fault-injected fabric delay on top of the architectural latency. *)
let notify ?(extra = 0) r =
  let t = r.fabric in
  r.on <- true;
  match r.rstate with
  | Running ->
    ignore
      (Engine.Sim.after t.sim (t.p.Params.uintr_delivery_ns + extra) (fun () ->
           if r.on then begin
             (* The receiver may have blocked between notification and
                delivery; the kernel assist path then applies. *)
             match r.rstate with
             | Running ->
               t.deliveries_running <- t.deliveries_running + 1;
               deliver r
             | Blocked ->
               ignore
                 (Engine.Sim.after t.sim t.p.Params.uintr_blocked_extra_ns (fun () ->
                      if r.on then begin
                        t.deliveries_blocked <- t.deliveries_blocked + 1;
                        tr t ~name:"uipi.kassist" ~track:r.rid ~arg:0;
                        r.rstate <- Running;
                        deliver r
                      end))
           end))
  | Blocked ->
    ignore
      (Engine.Sim.after t.sim
         (t.p.Params.uintr_delivery_ns + t.p.Params.uintr_blocked_extra_ns + extra)
         (fun () ->
           if r.on then begin
             t.deliveries_blocked <- t.deliveries_blocked + 1;
             tr t ~name:"uipi.kassist" ~track:r.rid ~arg:0;
             r.rstate <- Running;
             deliver r
           end))

let post ?(extra = 0) ?(lose_notify = false) r ~vector =
  let t = r.fabric in
  let bit = Int64.shift_left 1L vector in
  if Int64.logand r.pir bit <> 0L then begin
    t.coalesced <- t.coalesced + 1;
    tr t ~name:"uipi.coalesce" ~track:r.rid ~arg:vector
  end;
  r.pir <- Int64.logor r.pir bit;
  if r.sn then begin
    t.suppressed_posts <- t.suppressed_posts + 1;
    tr t ~name:"uipi.suppress" ~track:r.rid ~arg:vector
  end
  else if lose_notify then begin
    t.dropped_notifications <- t.dropped_notifications + 1;
    tr t ~name:"uipi.lost" ~track:r.rid ~arg:vector
  end
  else if not r.on then notify ~extra r

let set_state r s =
  let was = r.rstate in
  r.rstate <- s;
  if was <> s then
    tr r.fabric ~name:"upid.state" ~track:r.rid ~arg:(match s with Running -> 1 | Blocked -> 0);
  if was = Blocked && s = Running && r.pir <> 0L && (not r.on) && not r.sn then
    notify r

let set_suppressed r b =
  let was = r.sn in
  (* A stuck SN bit ignores attempts to clear it until repaired. *)
  if (not b) && r.sn_stuck then ()
  else begin
    r.sn <- b;
    if was <> b then tr r.fabric ~name:"upid.sn" ~track:r.rid ~arg:(if b then 1 else 0);
    if was && (not b) && r.pir <> 0L && not r.on then notify r
  end

let repair_receiver r =
  r.sn_stuck <- false;
  set_suppressed r false

let create_sender t ?(name = "sender") () =
  { sfabric = t; sname = name; uitt = [||]; uitt_len = 0 }

let connect s r ~vector =
  if vector < 0 || vector > 63 then invalid_arg "Uintr.connect: vector out of range";
  if s.uitt_len >= s.sfabric.p.Params.uitt_size then
    invalid_arg
      (Printf.sprintf "Uintr.connect: UITT of sender %s is full (%d entries)" s.sname
         s.sfabric.p.Params.uitt_size);
  if s.uitt_len = Array.length s.uitt then begin
    let arr =
      Array.make (max 8 (2 * Array.length s.uitt)) { target = r; vector; corrupted = false }
    in
    Array.blit s.uitt 0 arr 0 s.uitt_len;
    s.uitt <- arr
  end;
  s.uitt.(s.uitt_len) <- { target = r; vector; corrupted = false };
  s.uitt_len <- s.uitt_len + 1;
  s.uitt_len - 1

let check_idx s idx ctx =
  if idx < 0 || idx >= s.uitt_len then
    invalid_arg (Printf.sprintf "Uintr.%s: invalid UITT index %d" ctx idx)

let uitt_corrupted s idx =
  check_idx s idx "uitt_corrupted";
  s.uitt.(idx).corrupted

let repair_uitt s idx =
  check_idx s idx "repair_uitt";
  s.uitt.(idx).corrupted <- false

let senduipi s idx =
  check_idx s idx "senduipi";
  let t = s.sfabric in
  t.sends <- t.sends + 1;
  let entry = s.uitt.(idx) in
  let { target; vector; _ } = entry in
  tr t ~name:"uipi.send" ~track:target.rid ~arg:vector;
  let now = Engine.Sim.now t.sim in
  match t.faults with
  | None -> post target ~vector
  | Some f ->
    (* Corruption is sticky: once an entry is hit, every send through it
       is silently lost until the entry is rewritten (repair_uitt). *)
    if Fault.fires f.f_corrupt ~now then entry.corrupted <- true;
    if entry.corrupted then begin
      t.corrupt_dropped <- t.corrupt_dropped + 1;
      tr t ~name:"uipi.uitt_drop" ~track:target.rid ~arg:vector
    end
    else begin
      if Fault.fires f.f_stuck_sn ~now then begin
        target.sn_stuck <- true;
        target.sn <- true;
        t.stuck_sn_faults <- t.stuck_sn_faults + 1
      end;
      let lose_notify = Fault.fires f.f_drop ~now in
      let extra =
        if Fault.fires f.f_delay ~now then begin
          t.delayed_notifications <- t.delayed_notifications + 1;
          f.delay_ns
        end
        else 0
      in
      post ~extra ~lose_notify target ~vector
    end

let send_cost_ns t = t.p.Params.senduipi_ns

let stats t =
  {
    sends = t.sends;
    deliveries_running = t.deliveries_running;
    deliveries_blocked = t.deliveries_blocked;
    suppressed_posts = t.suppressed_posts;
    coalesced = t.coalesced;
    dropped_notifications = t.dropped_notifications;
    delayed_notifications = t.delayed_notifications;
    corrupt_dropped = t.corrupt_dropped;
    stuck_sn_faults = t.stuck_sn_faults;
  }
