(** Posted inter-processor interrupts via a directly-mapped APIC.

    This is Shinjuku's preemption mechanism (Sec II, VII-B): the
    dispatcher maps the local APIC of each worker core into its address
    space and writes to it to trigger an IPI.  It is fast, but (a) the
    APIC grants the sender the power to interrupt {e any} core — the DoS
    surface the paper discusses — and (b) the approach supports only a
    bounded number of logical cores. *)

type t

val create : Engine.Sim.t -> Params.t -> t

type target

val register : t -> handler:(unit -> unit) -> target
(** Map one worker core's APIC. Raises [Invalid_argument] once
    {!Params.t.apic_max_cores} targets exist — the scalability wall. *)

val send : t -> target -> unit
(** Post an IPI; the handler fires after the delivery latency. The
    sender-side cost is returned by {!send_cost_ns} for the caller to
    account. *)

val send_cost_ns : t -> int

val sends : t -> int
(** Total IPIs posted. *)

val target_count : t -> int
