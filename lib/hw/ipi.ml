type t = {
  sim : Engine.Sim.t;
  p : Params.t;
  mutable n_targets : int;
  mutable n_sends : int;
}

type target = { handler : unit -> unit }

let create sim p = { sim; p; n_targets = 0; n_sends = 0 }

let register t ~handler =
  if t.n_targets >= t.p.Params.apic_max_cores then
    invalid_arg
      (Printf.sprintf "Ipi.register: APIC mapping supports at most %d logical cores"
         t.p.Params.apic_max_cores);
  t.n_targets <- t.n_targets + 1;
  { handler }

let send t target =
  t.n_sends <- t.n_sends + 1;
  ignore (Engine.Sim.after t.sim t.p.Params.ipi_delivery_ns target.handler)

let send_cost_ns t = t.p.Params.ipi_send_ns
let sends t = t.n_sends
let target_count t = t.n_targets
