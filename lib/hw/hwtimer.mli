(** Hardware-offloaded deadline timers (Sec VII-C).

    The paper's evaluation dedicates a core to LibUtimer, and notes that
    "hardware vendors are exploring supporting this type of capability
    using a dedicated hardware timer that can deliver an interrupt
    directly to the application".  This models that future device: a
    per-slot comparator watching the TSC; when a deadline passes the
    hardware posts the user interrupt itself — no poll loop, no
    SENDUIPI issue cost, no timer core at all.

    The lateness of a hardware slot is just the delivery latency, and
    the core the software timer would have burned is free to serve
    requests (ablation AB5 quantifies both effects). *)

type t

val create : Engine.Sim.t -> Uintr.t -> t

type slot

val register : t -> receiver:Uintr.receiver -> vector:int -> slot
(** Allocate a comparator wired to [receiver]. *)

val arm_at : slot -> time_ns:int -> unit
(** Program the comparator with an absolute deadline; re-arming
    overwrites. A deadline in the past fires immediately. *)

val arm_after : slot -> ns:int -> unit

val disarm : slot -> unit

val is_armed : slot -> bool

val fired : t -> int

val lateness : t -> Stat.Summary.t
(** Firing time minus programmed deadline (≈ 0: comparators do not
    poll). *)

val slot_count : t -> int
