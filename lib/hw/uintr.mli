(** Behavioural model of Intel user interrupts (UINTR).

    Follows the architecture described in Sec III-A / Fig 3 of the paper:

    - every {e receiver} owns a User Posted Interrupt Descriptor (UPID)
      holding a 64-bit Posted Interrupt Requests bitmap (PIR), an
      outstanding-notification bit (ON) and a suppress-notification bit
      (SN);
    - every {e sender} owns a User Interrupt Target Table (UITT) of at
      most {!Params.t.uitt_size} entries, each naming a target UPID and a
      vector;
    - [SENDUIPI idx] posts the vector into the target PIR and, unless
      suppressed or already notified, sends a notification that results
      in user-interrupt delivery — directly if the receiver is running,
      or through a kernel-assisted unblock if it is blocked.

    Latencies come from {!Params.t}; the sender-side instruction cost is
    returned to the caller so components that model their own CPU time
    (e.g. the LibUtimer poll loop) can account for it. *)

type t

val create :
  ?faults:Fault.t -> ?trace:Obs.Trace.t -> ?fault_delay_ns:int -> Engine.Sim.t -> Params.t -> t
(** [create ?faults sim params] builds the interrupt fabric.  When a
    fault plan is supplied, the SENDUIPI path consults four injection
    points:

    - ["uipi.drop"] — the vector is posted into the PIR but the
      notification is lost (classic lost-interrupt: the bit sits in the
      descriptor until something re-notifies);
    - ["uipi.delay"] — delivery is delayed by [fault_delay_ns]
      (default 2000) beyond the architectural latency;
    - ["uipi.stuck_sn"] — the target's SN bit latches set and ignores
      clears until {!repair_receiver};
    - ["uipi.uitt_corrupt"] — the UITT entry is corrupted; every send
      through it is silently lost until {!repair_uitt}. *)

val params : t -> Params.t

type receiver

type receiver_state = Running | Blocked

val register_receiver :
  t -> ?name:string -> handler:(receiver -> vector:int -> unit) -> unit -> receiver
(** Register a receiver (the kernel-mediated setup phase; it returns the
    object standing for the task's UPID + handler). The handler runs at
    delivery time, once per pending vector, highest vector first. *)

val receiver_name : receiver -> string

val receiver_track : receiver -> int
(** Registration-order index; the trace track carrying this receiver's
    UIPI and UPID events (category {!Obs.Trace.cat.Uipi}). *)

val state : receiver -> receiver_state

val set_state : receiver -> receiver_state -> unit
(** Transition the receiver between running and blocked. Unblocking with
    pending vectors triggers delivery, as the hardware re-evaluates
    posted interrupts when the thread is scheduled back in. *)

val set_suppressed : receiver -> bool -> unit
(** Set/clear the SN bit. Clearing it with pending vectors triggers a
    notification. *)

val suppressed : receiver -> bool

val deliveries : receiver -> int
(** Vectors delivered to this receiver so far.  Watchdogs snapshot this
    around a send to confirm (or detect the loss of) a delivery. *)

val repair_receiver : receiver -> unit
(** Clear a stuck SN bit (and SN itself), re-notifying if vectors are
    pending — the recovery action for the ["uipi.stuck_sn"] fault. *)

val pending_vectors : receiver -> int list
(** Vectors currently posted in the PIR, descending. *)

val post : ?extra:int -> ?lose_notify:bool -> receiver -> vector:int -> unit
(** Post a vector directly into the PIR, bypassing any UITT — the
    primitive under {!senduipi}, exposed for harnesses that drive the
    descriptor state machine directly.  [lose_notify] posts the bit but
    drops the notification (the ["uipi.drop"] fault's effect); [extra]
    adds fabric delay to the delivery. *)

val notify : ?extra:int -> receiver -> unit
(** Issue a notification for whatever is pending in the PIR — what a
    recovery layer does after repairing a receiver whose notification
    was lost. *)

type sender

val create_sender : t -> ?name:string -> unit -> sender

val connect : sender -> receiver -> vector:int -> int
(** Allocate a UITT entry targeting [receiver] with [vector]
    (0–63); returns the UIPI index to pass to {!senduipi}.
    Raises [Invalid_argument] if the vector is out of range or the UITT
    is full. *)

val senduipi : sender -> int -> unit
(** Execute SENDUIPI on a UITT index. Raises [Invalid_argument] on an
    unallocated index. The sender-side cost is NOT advanced here: the
    caller models its own CPU time using {!send_cost_ns}. *)

val uitt_corrupted : sender -> int -> bool

val repair_uitt : sender -> int -> unit
(** Rewrite a (possibly corrupted) UITT entry — the recovery action for
    the ["uipi.uitt_corrupt"] fault. Raises [Invalid_argument] on an
    unallocated index. *)

val send_cost_ns : t -> int

type stats = {
  sends : int;  (** SENDUIPI executions *)
  deliveries_running : int;  (** direct user-interrupt deliveries *)
  deliveries_blocked : int;  (** kernel-assisted deliveries *)
  suppressed_posts : int;  (** posts absorbed by SN *)
  coalesced : int;  (** posts whose vector bit was already set *)
  dropped_notifications : int;  (** fault: posted but notification lost *)
  delayed_notifications : int;  (** fault: delivery delayed *)
  corrupt_dropped : int;  (** sends swallowed by a corrupted UITT entry *)
  stuck_sn_faults : int;  (** fault: SN latched set *)
}

val stats : t -> stats
