(** Behavioural model of Intel user interrupts (UINTR).

    Follows the architecture described in Sec III-A / Fig 3 of the paper:

    - every {e receiver} owns a User Posted Interrupt Descriptor (UPID)
      holding a 64-bit Posted Interrupt Requests bitmap (PIR), an
      outstanding-notification bit (ON) and a suppress-notification bit
      (SN);
    - every {e sender} owns a User Interrupt Target Table (UITT) of at
      most {!Params.t.uitt_size} entries, each naming a target UPID and a
      vector;
    - [SENDUIPI idx] posts the vector into the target PIR and, unless
      suppressed or already notified, sends a notification that results
      in user-interrupt delivery — directly if the receiver is running,
      or through a kernel-assisted unblock if it is blocked.

    Latencies come from {!Params.t}; the sender-side instruction cost is
    returned to the caller so components that model their own CPU time
    (e.g. the LibUtimer poll loop) can account for it. *)

type t

val create : Engine.Sim.t -> Params.t -> t

val params : t -> Params.t

type receiver

type receiver_state = Running | Blocked

val register_receiver :
  t -> ?name:string -> handler:(receiver -> vector:int -> unit) -> unit -> receiver
(** Register a receiver (the kernel-mediated setup phase; it returns the
    object standing for the task's UPID + handler). The handler runs at
    delivery time, once per pending vector, highest vector first. *)

val receiver_name : receiver -> string

val state : receiver -> receiver_state

val set_state : receiver -> receiver_state -> unit
(** Transition the receiver between running and blocked. Unblocking with
    pending vectors triggers delivery, as the hardware re-evaluates
    posted interrupts when the thread is scheduled back in. *)

val set_suppressed : receiver -> bool -> unit
(** Set/clear the SN bit. Clearing it with pending vectors triggers a
    notification. *)

val suppressed : receiver -> bool

val pending_vectors : receiver -> int list
(** Vectors currently posted in the PIR, descending. *)

type sender

val create_sender : t -> ?name:string -> unit -> sender

val connect : sender -> receiver -> vector:int -> int
(** Allocate a UITT entry targeting [receiver] with [vector]
    (0–63); returns the UIPI index to pass to {!senduipi}.
    Raises [Invalid_argument] if the vector is out of range or the UITT
    is full. *)

val senduipi : sender -> int -> unit
(** Execute SENDUIPI on a UITT index. Raises [Invalid_argument] on an
    unallocated index. The sender-side cost is NOT advanced here: the
    caller models its own CPU time using {!send_cost_ns}. *)

val send_cost_ns : t -> int

type stats = {
  sends : int;  (** SENDUIPI executions *)
  deliveries_running : int;  (** direct user-interrupt deliveries *)
  deliveries_blocked : int;  (** kernel-assisted deliveries *)
  suppressed_posts : int;  (** posts absorbed by SN *)
  coalesced : int;  (** posts whose vector bit was already set *)
}

val stats : t -> stats
