(** An interruptible CPU core.

    Workers execute requests as {e work segments}.  A segment runs to
    completion unless the worker is interrupted: an interrupt handler
    {!stall}s the core (the request makes no progress while handler code
    runs) and may then {!abort} the segment, learning how much service
    time the request actually received — exactly the accounting a
    preemptive scheduler needs. *)

type t

val create : Engine.Sim.t -> id:int -> t

val id : t -> int

val busy : t -> bool

val begin_work : t -> duration:int -> on_done:(unit -> unit) -> unit
(** Start a segment of [duration >= 0] ns. [on_done] fires when it
    completes (not if aborted). Raises [Invalid_argument] if the core is
    already busy. *)

val consumed : t -> int
(** Work-nanoseconds of the current segment executed so far (stall time
    excluded). 0 when idle. *)

val remaining : t -> int
(** Work-nanoseconds left in the current segment. 0 when idle. *)

val stall : t -> int -> unit
(** [stall t d] suspends progress for [d >= 0] ns (interrupt handler,
    context-switch cost, ...). Stalls nest by accumulating. Raises
    [Invalid_argument] when idle. *)

val abort : t -> int
(** Cancel the current segment, returning the work completed. The core
    becomes idle; [on_done] will not fire. Raises when idle. *)

val busy_ns : t -> int
(** Total work-nanoseconds this core has executed (completed or aborted
    segments plus progress of the current one) — used for utilization
    accounting. *)

val stall_ns : t -> int
(** Total nanoseconds spent stalled (overheads charged to this core). *)
