type t = {
  tsc_ghz : float;
  senduipi_ns : int;
  uintr_delivery_ns : int;
  uintr_handler_entry_ns : int;
  uintr_uiret_ns : int;
  uintr_blocked_extra_ns : int;
  uitt_size : int;
  ipi_send_ns : int;
  ipi_delivery_ns : int;
  apic_max_cores : int;
  cacheline_ns : int;
}

(* Decomposition of Table IV's uintrFd ping-pong latencies:
   running receiver: 0.512us min round trip => 256ns one way
     = senduipi (80) + delivery (120) + handler entry (40) + uiret (16);
   blocked receiver: 2.048us min round trip => 1024ns one way
     = running one-way cost + 768ns kernel assist
       (ordinary interrupt + unblock + injection). *)
let default =
  {
    tsc_ghz = 1.7;
    senduipi_ns = 80;
    uintr_delivery_ns = 120;
    uintr_handler_entry_ns = 40;
    uintr_uiret_ns = 16;
    uintr_blocked_extra_ns = 768;
    uitt_size = 256;
    ipi_send_ns = 300;
    ipi_delivery_ns = 1_200;
    apic_max_cores = 32;
    cacheline_ns = 60;
  }

let tsc_of_ns t ns = int_of_float (Float.round (float_of_int ns *. t.tsc_ghz))
let ns_of_tsc t c = int_of_float (Float.round (float_of_int c /. t.tsc_ghz))
