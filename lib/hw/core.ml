(* One work segment at a time, stored inline in the core record and
   reused across segments (DESIGN §9): beginning, stalling, and
   completing work allocate nothing.  The two sim callbacks the core
   ever needs are preallocated in [create]; the pending-event field
   rests at [Engine.Sim.null] so arming stores no [Some] block. *)

let noop () = ()

type t = {
  sim : Engine.Sim.t;
  cid : int;
  mutable active : bool;
  mutable duration : int;
  mutable on_done : unit -> unit;
  mutable done_before : int; (* work finished before the current run/stall *)
  mutable run_start : int; (* valid while progressing *)
  mutable progressing : bool;
  mutable resume_at : int; (* valid while stalled *)
  mutable ev : Engine.Sim.event; (* completion (progressing) or resume (stalled) *)
  mutable k_complete : unit -> unit; (* preallocated sim callbacks *)
  mutable k_resume : unit -> unit;
  mutable busy_total : int;
  mutable stall_total : int;
}

(* Handles are cleared to [null] as the first action of the callbacks
   below, so [cancel_ev] never cancels a fired handle. *)
let cancel_ev t =
  Engine.Sim.cancel t.ev;
  t.ev <- Engine.Sim.null

let complete t =
  t.ev <- Engine.Sim.null;
  t.active <- false;
  t.busy_total <- t.busy_total + t.duration;
  let k = t.on_done in
  (* Drop the closure before running it: [k] may begin the core's next
     segment, and an idle core should not retain a callback. *)
  t.on_done <- noop;
  k ()

let resume t =
  t.ev <- Engine.Sim.null;
  t.progressing <- true;
  t.run_start <- Engine.Sim.now t.sim;
  let left = t.duration - t.done_before in
  t.ev <- Engine.Sim.after t.sim left t.k_complete

let create sim ~id =
  let t =
    {
      sim;
      cid = id;
      active = false;
      duration = 0;
      on_done = noop;
      done_before = 0;
      run_start = 0;
      progressing = false;
      resume_at = 0;
      ev = Engine.Sim.null;
      k_complete = noop;
      k_resume = noop;
      busy_total = 0;
      stall_total = 0;
    }
  in
  t.k_complete <- (fun () -> complete t);
  t.k_resume <- (fun () -> resume t);
  t

let id t = t.cid
let busy t = t.active

let begin_work t ~duration ~on_done =
  if duration < 0 then invalid_arg "Core.begin_work: negative duration";
  if t.active then
    invalid_arg (Printf.sprintf "Core.begin_work: core %d is busy" t.cid);
  t.active <- true;
  t.duration <- duration;
  t.on_done <- on_done;
  t.done_before <- 0;
  t.run_start <- Engine.Sim.now t.sim;
  t.progressing <- true;
  t.ev <- Engine.Sim.after t.sim duration t.k_complete

let consumed t =
  if not t.active then 0
  else if t.progressing then t.done_before + (Engine.Sim.now t.sim - t.run_start)
  else t.done_before

let remaining t = if t.active then t.duration - consumed t else 0

let stall t d =
  if d < 0 then invalid_arg "Core.stall: negative duration";
  if not t.active then invalid_arg "Core.stall: core is idle";
  t.stall_total <- t.stall_total + d;
  let now = Engine.Sim.now t.sim in
  if t.progressing then begin
    t.done_before <- t.done_before + (now - t.run_start);
    t.progressing <- false;
    cancel_ev t;
    t.resume_at <- now + d
  end
  else begin
    cancel_ev t;
    t.resume_at <- t.resume_at + d
  end;
  t.ev <- Engine.Sim.at t.sim t.resume_at t.k_resume

let abort t =
  if not t.active then invalid_arg "Core.abort: core is idle";
  let work = consumed t in
  cancel_ev t;
  t.active <- false;
  t.on_done <- noop;
  t.busy_total <- t.busy_total + work;
  work

let busy_ns t = t.busy_total + consumed t
let stall_ns t = t.stall_total
