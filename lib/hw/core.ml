type seg = {
  duration : int;
  on_done : unit -> unit;
  mutable done_before : int; (* work finished before the current run/stall *)
  mutable run_start : int; (* valid while progressing *)
  mutable progressing : bool;
  mutable resume_at : int; (* valid while stalled *)
  mutable ev : Engine.Sim.event option; (* completion (progressing) or resume (stalled) *)
}

type t = {
  sim : Engine.Sim.t;
  cid : int;
  mutable seg : seg option;
  mutable busy_total : int;
  mutable stall_total : int;
}

let create sim ~id = { sim; cid = id; seg = None; busy_total = 0; stall_total = 0 }

let id t = t.cid
let busy t = t.seg <> None

let cancel_ev seg =
  match seg.ev with
  | Some ev ->
    Engine.Sim.cancel ev;
    seg.ev <- None
  | None -> ()

let complete t seg () =
  seg.ev <- None;
  t.seg <- None;
  t.busy_total <- t.busy_total + seg.duration;
  seg.on_done ()

let begin_work t ~duration ~on_done =
  if duration < 0 then invalid_arg "Core.begin_work: negative duration";
  if busy t then
    invalid_arg (Printf.sprintf "Core.begin_work: core %d is busy" t.cid);
  let seg =
    {
      duration;
      on_done;
      done_before = 0;
      run_start = Engine.Sim.now t.sim;
      progressing = true;
      resume_at = 0;
      ev = None;
    }
  in
  t.seg <- Some seg;
  seg.ev <- Some (Engine.Sim.after t.sim duration (fun () -> complete t seg ()))

let consumed t =
  match t.seg with
  | None -> 0
  | Some seg ->
    if seg.progressing then seg.done_before + (Engine.Sim.now t.sim - seg.run_start)
    else seg.done_before

let remaining t =
  match t.seg with None -> 0 | Some seg -> seg.duration - consumed t

let resume t seg () =
  seg.ev <- None;
  seg.progressing <- true;
  seg.run_start <- Engine.Sim.now t.sim;
  let left = seg.duration - seg.done_before in
  seg.ev <- Some (Engine.Sim.after t.sim left (fun () -> complete t seg ()))

let stall t d =
  if d < 0 then invalid_arg "Core.stall: negative duration";
  match t.seg with
  | None -> invalid_arg "Core.stall: core is idle"
  | Some seg ->
    t.stall_total <- t.stall_total + d;
    let now = Engine.Sim.now t.sim in
    if seg.progressing then begin
      seg.done_before <- seg.done_before + (now - seg.run_start);
      seg.progressing <- false;
      cancel_ev seg;
      seg.resume_at <- now + d;
      seg.ev <- Some (Engine.Sim.at t.sim seg.resume_at (fun () -> resume t seg ()))
    end
    else begin
      cancel_ev seg;
      seg.resume_at <- seg.resume_at + d;
      seg.ev <- Some (Engine.Sim.at t.sim seg.resume_at (fun () -> resume t seg ()))
    end

let abort t =
  match t.seg with
  | None -> invalid_arg "Core.abort: core is idle"
  | Some seg ->
    let work = consumed t in
    cancel_ev seg;
    t.seg <- None;
    t.busy_total <- t.busy_total + work;
    work

let busy_ns t = t.busy_total + consumed t
let stall_ns t = t.stall_total
