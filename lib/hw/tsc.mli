(** Timestamp counter.

    LibUtimer's deadline slots hold TSC values; the timer core compares
    RDTSC against them (Sec IV-A).  This module maps simulation time to
    TSC cycles at the configured frequency. *)

type t

val create : Engine.Sim.t -> Params.t -> t

val rdtsc : t -> int
(** Current TSC value. *)

val of_ns : t -> int -> int
(** Convert a duration in nanoseconds to cycles. *)

val to_ns : t -> int -> int
(** Convert cycles to nanoseconds. *)

val deadline_after : t -> int -> int
(** [deadline_after t d_ns] is the TSC value [d_ns] nanoseconds from
    now — what a worker writes into its deadline slot. *)
