let noop () = ()

type slot = {
  owner : t;
  uitt_index : int;
  mutable deadline_ns : int; (* max_int = disarmed *)
  mutable ev : Engine.Sim.event; (* Sim.null when disarmed *)
  mutable k_fire : unit -> unit; (* preallocated fire callback (DESIGN §9) *)
}

and t = {
  sim : Engine.Sim.t;
  uintr : Uintr.t;
  sender : Uintr.sender;
  mutable n_slots : int;
  mutable n_fired : int;
  lateness_stat : Stat.Summary.t;
}

let create sim uintr =
  {
    sim;
    uintr;
    sender = Uintr.create_sender uintr ~name:"hwtimer" ();
    n_slots = 0;
    n_fired = 0;
    lateness_stat = Stat.Summary.create ();
  }

let disarm slot =
  slot.deadline_ns <- max_int;
  Engine.Sim.cancel slot.ev;
  slot.ev <- Engine.Sim.null

(* Clears its own handle first, so [disarm]'s cancel never touches a
   fired event. *)
let fire slot =
  let t = slot.owner in
  slot.ev <- Engine.Sim.null;
  if slot.deadline_ns <> max_int then begin
    t.n_fired <- t.n_fired + 1;
    Stat.Summary.record t.lateness_stat
      (float_of_int (Engine.Sim.now t.sim - slot.deadline_ns));
    slot.deadline_ns <- max_int;
    Uintr.senduipi t.sender slot.uitt_index
  end

let register t ~receiver ~vector =
  let uitt_index = Uintr.connect t.sender receiver ~vector in
  t.n_slots <- t.n_slots + 1;
  let slot =
    { owner = t; uitt_index; deadline_ns = max_int; ev = Engine.Sim.null; k_fire = noop }
  in
  slot.k_fire <- (fun () -> fire slot);
  slot

let arm_at slot ~time_ns =
  disarm slot;
  let t = slot.owner in
  slot.deadline_ns <- time_ns;
  let at = max time_ns (Engine.Sim.now t.sim) in
  slot.ev <- Engine.Sim.at t.sim at slot.k_fire

let arm_after slot ~ns =
  if ns < 0 then invalid_arg "Hwtimer.arm_after: negative delay";
  arm_at slot ~time_ns:(Engine.Sim.now slot.owner.sim + ns)

let is_armed slot = slot.deadline_ns <> max_int
let fired t = t.n_fired
let lateness t = t.lateness_stat
let slot_count t = t.n_slots
