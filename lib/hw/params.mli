(** Hardware latency parameters.

    These constants are the *calibration inputs* of the model.  Each is
    annotated with its provenance: either a measurement reported in the
    LibPreemptible paper (mostly Table IV) or a widely reported
    microarchitectural cost.  Everything else in the reproduction is
    emergent from the simulation; only these numbers are taken from the
    paper. *)

type t = {
  tsc_ghz : float;
      (** TSC frequency. The paper pins cores at 1.7 GHz. *)
  senduipi_ns : int;
      (** Sender-side cost of one SENDUIPI instruction (microcoded store
          to the UPID + notification). Decomposed from Table IV's 0.73 µs
          user-IPC round trip. *)
  uintr_delivery_ns : int;
      (** Notification-to-handler latency for a *running* receiver. *)
  uintr_handler_entry_ns : int;
      (** Cost of the hardware stack switch + handler prologue. *)
  uintr_uiret_ns : int;
      (** Cost of UIRET returning to the interrupted context. *)
  uintr_blocked_extra_ns : int;
      (** Extra kernel-assisted cost when the receiver is blocked:
          ordinary interrupt + unblock + inject (Table IV: 2.39 µs vs
          0.73 µs when running). *)
  uitt_size : int;
      (** Maximum UITT entries per sender task (the kernel sizes the
          table; vectors per receiver are limited to 64 separately). *)
  ipi_send_ns : int;
      (** Sender cost of a posted IPI via directly-mapped APIC
          (Shinjuku's mechanism). *)
  ipi_delivery_ns : int;
      (** Posted-IPI delivery-to-handler latency, including the
          receiver-side trampoline Shinjuku uses. *)
  apic_max_cores : int;
      (** Scalability limit of the directly-assigned APIC approach the
          paper criticizes (logical-core bound). *)
  cacheline_ns : int;
      (** Cross-core cacheline transfer; cost of the timer core reading a
          deadline slot written by a worker. *)
}

val default : t

val tsc_of_ns : t -> int -> int
(** Convert simulation nanoseconds to TSC cycles. *)

val ns_of_tsc : t -> int -> int
(** Convert TSC cycles to simulation nanoseconds (rounded). *)
