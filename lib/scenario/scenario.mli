(** Declarative scenario specifications.

    A {e scenario} is everything that defines one experiment: the
    system under test, worker/topology budget, quantum policy, workload
    mix, arrival process, guard configuration, fault schedule, and run
    length — the tuple every `bench_fig*.ml` file used to assemble by
    hand.  This module gives that tuple a symbolic AST, a compact
    textual syntax (following the {!Fault.parse} DSL precedent), a
    canonical printer with [parse (print s) = Ok s], and a lowering
    into {!Preemptible.Server} / {!Cluster} runs.

    Syntax: [;]-separated (or newline-separated) [key=value] fields;
    [#] starts a comment; braces group sub-blocks.  For example:

    {v
      # 4-worker adaptive server under a heavy-tailed flash crowd
      sys=lp; workers=4; quantum=adaptive
      src=a1; arrival=flash:0.5x:3x:50ms:10ms:40ms:10ms
      dur=200ms; warmup=20ms
      guard={timeout=200us;expire;shed={q=24;target=40us;interval=200us}}
    v}

    See SCENARIOS.md for the full language reference.  Unset fields
    take defaults (below); the printer omits fields equal to their
    default, so [to_string default = ""]. *)

(** {1 The AST}

    Fully symbolic — no closures — so specs compare structurally,
    print canonically, and round-trip through {!of_string}. *)

type cls = Lc | Be

(** Service-time distributions: the paper's named workloads (Sec V-A)
    plus the generic constructors of {!Workload.Service_dist}.  Times
    are integer nanoseconds. *)
type dist =
  | A1  (** bimodal 99.5% x 0.5us + 0.5% x 500us (heavy-tailed) *)
  | A2  (** bimodal 99.5% x 5us + 0.5% x 500us *)
  | B  (** exponential, mean 5us (light-tailed) *)
  | C  (** A1 for the first half of the run, then B (shift) *)
  | Const of int
  | Exp of int  (** mean *)
  | Bimodal of { short_ns : int; long_ns : int; long_fraction : float }
  | Lognormal of { mean_ns : int; std_ns : int }
  | Pareto of { scale_ns : int; shape : float }

(** What kind of work arrives: a distribution with a request class, an
    application model, or a weighted / Zipf-skewed mixture. *)
type source =
  | Dist of dist * cls
  | Mica  (** the MICA KV-store model ({!Workload.Mica}) *)
  | Zlib  (** the zlib best-effort compression model *)
  | Mix of (float * source) list  (** weighted mixture *)
  | Tenants of { theta : float; tenants : source list }
      (** Zipf-skewed multi-tenant mix; tenant 0 is hottest *)

(** A rate, absolute ([250000] rps) or relative to {!capacity_rps}
    ([0.8x]). *)
type rate = Abs of float | Load of float

type arrival =
  | Poisson of rate
  | Uniform of rate
  | Bursty of { base : rate; spike : rate; period_ns : int; spike_fraction : float }
  | Flash of {
      base : rate;
      peak : rate;
      start_ns : int;
      ramp_ns : int;
      hold_ns : int;
      decay_ns : int;
    }
  | Diurnal of { base : rate; amplitude : float; period_ns : int }
  | Mmpp of { rates : rate list; mean_hold_ns : int; seed : int64 }
  | Piecewise of (int * arrival) list  (** [(until_ns, process)] segments *)

type quantum =
  | No_preempt  (** run to completion, no preemption mechanism *)
  | Fixed of int  (** fixed quantum, ns *)
  | Adaptive of { init_ns : int; ctl : Preemptible.Quantum_controller.config }
      (** Algorithm 1; [ctl] defaults to
          {!Preemptible.Quantum_controller.default_config} *)

type system =
  | Lp  (** LibPreemptible: LibUtimer + UINTR *)
  | Lp_nouintr  (** timer core delivering kernel signals (ablation) *)
  | Shinjuku
  | Libinger
  | Nopreempt
  | Go

(** Token bucket whose rate may be capacity-relative. *)
type bucket = { b_rate : rate; b_burst : float }

type retry = {
  r_attempts : int;
  r_backoff_ns : int;
  r_max_backoff_ns : int;
  r_jitter : float;
  r_budget : bucket option;  (** [None] = naive unbudgeted retries *)
}

(** Symbolic {!Guard.config}: buckets carry {!rate}s so a scenario can
    say "retry budget = 5% of capacity". *)
type guard = {
  g_timeout_ns : int option;
  g_drop_expired : bool;
  g_shed : Guard.shed_config option;
  g_bucket : bucket option;  (** global token bucket *)
  g_lc_bucket : bucket option;
  g_be_bucket : bucket option;
  g_retry : retry option;
  g_brownout : Guard.brownout_config option;
}

type discipline = Fifo | Srpt | Edf of int  (** [Edf slo_ns] *)

type fleet = {
  f_n : int;
  f_lb : Cluster.lb;
  f_steal : Cluster.steal option;
  f_workers : int list option;
      (** per-member worker counts (heterogeneous fleet); length must
          equal [f_n]; [None] = every member gets [workers] *)
}

type t = {
  name : string option;
  system : system;
  workers : int;  (** per server (per fleet member) *)
  quantum : quantum;
  max_load : rate option;
      (** adaptive controller's max-load reference; [None] = capacity *)
  capref : int option;
      (** worker count capacity-relative rates refer to; [None] = the
          scenario's total worker count *)
  src : source;
  arrival : arrival;
  duration_ns : int;
  warmup_ns : int;
  seed : int64;
  window_ns : int option;  (** stats window; [None] = server default *)
  dispatch_ns : int option;  (** dispatcher cost override *)
  discipline : discipline option;
  cancel_ns : int option;  (** cancel-after-SLO bound *)
  guard : guard option;
  faults : string option;  (** a {!Fault.parse} spec string, verbatim *)
  watchdog : bool;
  fleet : fleet option;
}

val default : t
(** [sys=lp; workers=4; quantum=5us; src=a1; arrival=poisson:0.7x;
    dur=100ms; warmup=0ns; seed=42] and everything else off. *)

val default_adaptive_init_ns : int
(** Initial quantum for [quantum=adaptive] without an explicit init
    (20 us, the Fig 8 configuration). *)

(** {1 Parsing and printing} *)

type error = { pos : int; field : string; msg : string }
(** [pos] is a byte offset into the parsed text; [field] names the
    offending field (or ["scenario"] for structural errors). *)

val pp_error : Format.formatter -> error -> unit

val error_to_string : error -> string

val of_string : string -> (t, error) result
(** Parse a spec over {!default}.  [;] and newlines both separate
    fields; [#] comments run to end of line; whitespace around fields
    is ignored. *)

val override : t -> string -> (t, error) result
(** Parse additional fields onto an existing spec (last write wins) —
    the mechanism behind variant sweeps and [lpctl run -s KEY=V]. *)

val of_file : string -> (t, error) result
(** {!of_string} on a file's contents.  Raises [Sys_error] if the file
    cannot be read. *)

val to_string : t -> string
(** Canonical form: fixed field order, defaults omitted, times printed
    in the largest exactly-dividing unit.  [of_string (to_string s) =
    Ok s] for any well-formed [s] (the qcheck-pinned round-trip). *)

(** {1 Semantics} *)

val total_workers : t -> int
(** Worker cores across the whole scenario (fleet members summed). *)

val capacity_rps : t -> float
(** Peak sustainable rate of the reference worker count ({!t.capref},
    defaulting to {!total_workers}) for the scenario's source — the
    denominator of every [x]-relative rate.  For a phased source the
    slower phase is used.  Raises [Invalid_argument] for sources
    without an analytic mean ({!Mica}/{!Zlib}). *)

val rate_rps : t -> rate -> float
(** Resolve a rate to absolute requests/second. *)

val service_dist : t -> dist -> Workload.Service_dist.t

val source_sampler : t -> Workload.Source.t

val arrival_process : t -> Workload.Arrival.t

val guard_config : t -> Guard.config option
(** The lowered guard (bucket rates resolved against capacity). *)

val server_config : t -> Preemptible.Server.config
(** The full single-server lowering ({!Lp}/{!Lp_nouintr} only; raises
    [Invalid_argument] for baseline systems, which own their configs).
    Benches needing knobs outside the DSL (custom policies, telemetry)
    take this and record-update. *)

val cluster_config : t -> Cluster.config
(** The fleet lowering; raises [Invalid_argument] without {!t.fleet}.
    Member adaptive controllers get a per-member share of the max-load
    reference. *)

val validate : t -> (unit, string) result
(** Cross-field checks without running: baseline systems reject
    lp-only knobs (guard, faults, fleets, adaptive quanta), fault
    specs must parse, fleet worker lists must match [n], relative
    rates need an analytic service mean, etc. *)

(** {1 Running} *)

type outcome =
  | Server of Preemptible.Server.result
  | Fleet of Cluster.result

val run_server : ?probes:Preemptible.Server.probes -> t -> Preemptible.Server.result
(** Run a single-server scenario (raises [Invalid_argument] when
    {!t.fleet} is set).  Dispatches on {!t.system}: the lp family runs
    {!Preemptible.Server.run}; baselines run their own modules with
    the scenario's workers/quantum/seed. *)

val run_fleet : ?probes:Cluster.probes -> t -> Cluster.result
(** Run a fleet scenario (requires {!t.fleet}). *)

val run : t -> outcome
(** {!run_fleet} when {!t.fleet} is set, else {!run_server}. *)

val pp_outcome : Format.formatter -> outcome -> unit

val system_name : system -> string

(** {1 Real-time (fiber_rt) lowering}

    The same spec replayed on actual domains under wall time: the
    request schedule is pre-generated from the identical arrival/source
    samplers the simulator lowers to, then executed by
    {!Fiber_rt.Sched} on a work-stealing pool of [workers] domains.
    Only a subset of the language is executable for real: [sys=lp],
    no fleet, no guard, no faults/watchdog, no discipline/cancel, and a
    concrete quantum ([quantum=T] or [none] — the rt backend has no
    adaptive controller).  Unsupported specs raise [Invalid_argument]
    with a pointed message; {!validate_rt} returns it as [Error]. *)

val rt_schedule : t -> Fiber_rt.Sched.item array
(** Pre-generate the open-loop request schedule (arrival offset,
    service ns, class) for the spec, deterministically from its seed.
    Raises [Invalid_argument] for specs the rt backend cannot run, or
    if the schedule would exceed 2e6 requests. *)

val run_rt : t -> Fiber_rt.Sched.result
(** Generate the schedule and replay it on a fresh pool ([workers]
    domains, the spec's quantum and warmup).  This runs for the spec's
    [dur] in {e wall-clock} time. *)

val validate_rt : t -> (unit, string) result
(** Like {!validate} but for the rt backend's supported subset. *)
