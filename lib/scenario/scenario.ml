(* Declarative scenario specs: symbolic AST, compact textual syntax
   (the Fault.parse DSL precedent scaled up), canonical printer with
   parse (print s) = Ok s, and the lowering into Server/Cluster runs.

   The AST is deliberately closure-free so specs compare structurally;
   every closure-bearing object (policies, sources, arrivals, plans)
   is built only at lowering time. *)

type cls = Lc | Be

type dist =
  | A1
  | A2
  | B
  | C
  | Const of int
  | Exp of int
  | Bimodal of { short_ns : int; long_ns : int; long_fraction : float }
  | Lognormal of { mean_ns : int; std_ns : int }
  | Pareto of { scale_ns : int; shape : float }

type source =
  | Dist of dist * cls
  | Mica
  | Zlib
  | Mix of (float * source) list
  | Tenants of { theta : float; tenants : source list }

type rate = Abs of float | Load of float

type arrival =
  | Poisson of rate
  | Uniform of rate
  | Bursty of { base : rate; spike : rate; period_ns : int; spike_fraction : float }
  | Flash of {
      base : rate;
      peak : rate;
      start_ns : int;
      ramp_ns : int;
      hold_ns : int;
      decay_ns : int;
    }
  | Diurnal of { base : rate; amplitude : float; period_ns : int }
  | Mmpp of { rates : rate list; mean_hold_ns : int; seed : int64 }
  | Piecewise of (int * arrival) list

type quantum =
  | No_preempt
  | Fixed of int
  | Adaptive of { init_ns : int; ctl : Preemptible.Quantum_controller.config }

type system = Lp | Lp_nouintr | Shinjuku | Libinger | Nopreempt | Go

type bucket = { b_rate : rate; b_burst : float }

type retry = {
  r_attempts : int;
  r_backoff_ns : int;
  r_max_backoff_ns : int;
  r_jitter : float;
  r_budget : bucket option;
}

type guard = {
  g_timeout_ns : int option;
  g_drop_expired : bool;
  g_shed : Guard.shed_config option;
  g_bucket : bucket option;
  g_lc_bucket : bucket option;
  g_be_bucket : bucket option;
  g_retry : retry option;
  g_brownout : Guard.brownout_config option;
}

type discipline = Fifo | Srpt | Edf of int

type fleet = {
  f_n : int;
  f_lb : Cluster.lb;
  f_steal : Cluster.steal option;
  f_workers : int list option;
}

type t = {
  name : string option;
  system : system;
  workers : int;
  quantum : quantum;
  max_load : rate option;
  capref : int option;
  src : source;
  arrival : arrival;
  duration_ns : int;
  warmup_ns : int;
  seed : int64;
  window_ns : int option;
  dispatch_ns : int option;
  discipline : discipline option;
  cancel_ns : int option;
  guard : guard option;
  faults : string option;
  watchdog : bool;
  fleet : fleet option;
}

let default_adaptive_init_ns = 20_000

let default =
  {
    name = None;
    system = Lp;
    workers = 4;
    quantum = Fixed 5_000;
    max_load = None;
    capref = None;
    src = Dist (A1, Lc);
    arrival = Poisson (Load 0.7);
    duration_ns = 100_000_000;
    warmup_ns = 0;
    seed = 42L;
    window_ns = None;
    dispatch_ns = None;
    discipline = None;
    cancel_ns = None;
    guard = None;
    faults = None;
    watchdog = false;
    fleet = None;
  }

let empty_guard =
  {
    g_timeout_ns = None;
    g_drop_expired = false;
    g_shed = None;
    g_bucket = None;
    g_lc_bucket = None;
    g_be_bucket = None;
    g_retry = None;
    g_brownout = None;
  }

(* The symbolic twin of Guard.default_retry. *)
let default_retry =
  {
    r_attempts = Guard.default_retry.Guard.max_attempts;
    r_backoff_ns = Guard.default_retry.Guard.backoff_ns;
    r_max_backoff_ns = Guard.default_retry.Guard.max_backoff_ns;
    r_jitter = Guard.default_retry.Guard.jitter;
    r_budget = None;
  }

let system_name = function
  | Lp -> "lp"
  | Lp_nouintr -> "lp-nouintr"
  | Shinjuku -> "shinjuku"
  | Libinger -> "libinger"
  | Nopreempt -> "nopreempt"
  | Go -> "go"

(* ------------------------------------------------------------------ *)
(* Errors                                                              *)
(* ------------------------------------------------------------------ *)

type error = { pos : int; field : string; msg : string }

exception Err of error

let err pos field msg = raise (Err { pos; field; msg })

let pp_error fmt e =
  Format.fprintf fmt "scenario: field '%s' at offset %d: %s" e.field e.pos e.msg

let error_to_string e = Format.asprintf "%a" pp_error e

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

(* Shortest decimal form that parses back to the same float, so the
   round-trip property holds for arbitrary values. *)
let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    let exact fmt =
      let s = Printf.sprintf fmt f in
      if float_of_string s = f then Some s else None
    in
    match exact "%g" with
    | Some s -> s
    | None -> (
      match exact "%.12g" with Some s -> s | None -> Printf.sprintf "%.17g" f)

let time_str t =
  if t <> 0 && t mod 1_000_000_000 = 0 then
    Printf.sprintf "%ds" (t / 1_000_000_000)
  else if t <> 0 && t mod 1_000_000 = 0 then
    Printf.sprintf "%dms" (t / 1_000_000)
  else if t <> 0 && t mod 1_000 = 0 then Printf.sprintf "%dus" (t / 1_000)
  else Printf.sprintf "%dns" t

let rate_str = function Abs f -> float_str f | Load l -> float_str l ^ "x"

let dist_str = function
  | A1 -> "a1"
  | A2 -> "a2"
  | B -> "b"
  | C -> "c"
  | Const t -> "const:" ^ time_str t
  | Exp t -> "exp:" ^ time_str t
  | Bimodal { short_ns; long_ns; long_fraction } ->
    Printf.sprintf "bimodal:%s:%s:%s" (time_str short_ns) (time_str long_ns)
      (float_str long_fraction)
  | Lognormal { mean_ns; std_ns } ->
    Printf.sprintf "lognormal:%s:%s" (time_str mean_ns) (time_str std_ns)
  | Pareto { scale_ns; shape } ->
    Printf.sprintf "pareto:%s:%s" (time_str scale_ns) (float_str shape)

let rec source_str = function
  | Dist (d, Lc) -> dist_str d
  | Dist (d, Be) -> dist_str d ^ "@be"
  | Mica -> "mica"
  | Zlib -> "zlib"
  | Mix items ->
    "mix("
    ^ String.concat ","
        (List.map (fun (w, s) -> float_str w ^ "*" ^ source_str s) items)
    ^ ")"
  | Tenants { theta; tenants } ->
    "tenants:" ^ float_str theta ^ "("
    ^ String.concat "," (List.map source_str tenants)
    ^ ")"

let rec arrival_str = function
  | Poisson r -> "poisson:" ^ rate_str r
  | Uniform r -> "uniform:" ^ rate_str r
  | Bursty { base; spike; period_ns; spike_fraction } ->
    Printf.sprintf "bursty:%s:%s:%s:%s" (rate_str base) (rate_str spike)
      (time_str period_ns) (float_str spike_fraction)
  | Flash { base; peak; start_ns; ramp_ns; hold_ns; decay_ns } ->
    Printf.sprintf "flash:%s:%s:%s:%s:%s:%s" (rate_str base) (rate_str peak)
      (time_str start_ns) (time_str ramp_ns) (time_str hold_ns)
      (time_str decay_ns)
  | Diurnal { base; amplitude; period_ns } ->
    Printf.sprintf "diurnal:%s:%s:%s" (rate_str base) (float_str amplitude)
      (time_str period_ns)
  | Mmpp { rates; mean_hold_ns; seed } ->
    Printf.sprintf "mmpp:%s:%s:%Ld"
      (String.concat "/" (List.map rate_str rates))
      (time_str mean_hold_ns) seed
  | Piecewise segs ->
    "piecewise("
    ^ String.concat ","
        (List.map
           (fun (until, a) -> time_str until ^ ":" ^ arrival_str a)
           segs)
    ^ ")"

let bucket_str b = rate_str b.b_rate ^ ":" ^ float_str b.b_burst

let sub_block fields = "{" ^ String.concat ";" fields ^ "}"

let ctl_str (c : Preemptible.Quantum_controller.config) =
  let d = Preemptible.Quantum_controller.default_config in
  let fs = ref [] in
  let add k v = fs := (k ^ "=" ^ v) :: !fs in
  if c.t_max_ns <> d.t_max_ns then add "tmax" (time_str c.t_max_ns);
  if c.t_min_ns <> d.t_min_ns then add "tmin" (time_str c.t_min_ns);
  if c.q_threshold <> d.q_threshold then
    add "qthresh" (string_of_int c.q_threshold);
  if c.l_low_fraction <> d.l_low_fraction then
    add "llow" (float_str c.l_low_fraction);
  if c.l_high_fraction <> d.l_high_fraction then
    add "lhigh" (float_str c.l_high_fraction);
  if c.k3_ns <> d.k3_ns then add "k3" (time_str c.k3_ns);
  if c.k2_ns <> d.k2_ns then add "k2" (time_str c.k2_ns);
  if c.k1_ns <> d.k1_ns then add "k1" (time_str c.k1_ns);
  sub_block !fs

let shed_str (s : Guard.shed_config) =
  let d = Guard.default_shed in
  if s = d then "shed"
  else begin
    let fs = ref [] in
    let add k v = fs := (k ^ "=" ^ v) :: !fs in
    if s.codel_interval_ns <> d.codel_interval_ns then
      add "interval" (time_str s.codel_interval_ns);
    if s.codel_target_ns <> d.codel_target_ns then
      add "target" (time_str s.codel_target_ns);
    if s.max_queue <> d.max_queue then add "q" (string_of_int s.max_queue);
    "shed=" ^ sub_block !fs
  end

let retry_str (r : retry) =
  if r = default_retry then "retry"
  else begin
    let d = default_retry in
    let fs = ref [] in
    let add k v = fs := (k ^ "=" ^ v) :: !fs in
    (match r.r_budget with
    | Some b -> add "budget" (bucket_str b)
    | None -> ());
    if r.r_jitter <> d.r_jitter then add "jitter" (float_str r.r_jitter);
    if r.r_max_backoff_ns <> d.r_max_backoff_ns then
      add "max" (time_str r.r_max_backoff_ns);
    if r.r_backoff_ns <> d.r_backoff_ns then
      add "backoff" (time_str r.r_backoff_ns);
    if r.r_attempts <> d.r_attempts then
      add "attempts" (string_of_int r.r_attempts);
    "retry=" ^ sub_block !fs
  end

let brownout_str (b : Guard.brownout_config) =
  let d = Guard.default_brownout in
  if b = d then "brownout"
  else begin
    let fs = ref [] in
    let add k v = fs := (k ^ "=" ^ v) :: !fs in
    if b.probe_every <> d.probe_every then
      add "probe" (string_of_int b.probe_every);
    if b.timeout_shrink <> d.timeout_shrink then
      add "shrink" (float_str b.timeout_shrink);
    if b.recover_windows <> d.recover_windows then
      add "recover" (string_of_int b.recover_windows);
    if b.trip_windows <> d.trip_windows then
      add "trip" (string_of_int b.trip_windows);
    if b.qlen_trip <> d.qlen_trip then add "qlen" (string_of_int b.qlen_trip);
    if b.p99_trip_ns <> d.p99_trip_ns then add "p99" (time_str b.p99_trip_ns);
    "brownout=" ^ sub_block !fs
  end

let guard_str g =
  let fs = ref [] in
  let add s = fs := s :: !fs in
  (match g.g_brownout with Some b -> add (brownout_str b) | None -> ());
  (match g.g_retry with Some r -> add (retry_str r) | None -> ());
  (match g.g_be_bucket with
  | Some b -> add ("be-bucket=" ^ bucket_str b)
  | None -> ());
  (match g.g_lc_bucket with
  | Some b -> add ("lc-bucket=" ^ bucket_str b)
  | None -> ());
  (match g.g_bucket with Some b -> add ("bucket=" ^ bucket_str b) | None -> ());
  (match g.g_shed with Some s -> add (shed_str s) | None -> ());
  if g.g_drop_expired then add "expire";
  (match g.g_timeout_ns with
  | Some t -> add ("timeout=" ^ time_str t)
  | None -> ());
  sub_block !fs

let steal_str (s : Cluster.steal) =
  Printf.sprintf "%s:%d:%d" (time_str s.interval_ns) s.threshold s.batch

let fleet_str f =
  let fs = ref [] in
  let add s = fs := s :: !fs in
  (match f.f_workers with
  | Some l -> add ("workers=" ^ String.concat "/" (List.map string_of_int l))
  | None -> ());
  (match f.f_steal with
  | Some s -> add (if s = Cluster.default_steal then "steal" else "steal=" ^ steal_str s)
  | None -> ());
  if f.f_lb <> Cluster.Random then add ("lb=" ^ Cluster.lb_name f.f_lb);
  add ("n=" ^ string_of_int f.f_n);
  sub_block !fs

let discipline_str = function
  | Fifo -> "fifo"
  | Srpt -> "srpt"
  | Edf slo -> "edf:" ^ time_str slo

let quantum_str = function
  | No_preempt -> "none"
  | Fixed t -> time_str t
  | Adaptive { init_ns; _ } ->
    if init_ns = default_adaptive_init_ns then "adaptive"
    else "adaptive:" ^ time_str init_ns

let to_string s =
  let d = default in
  let fs = ref [] in
  let add k v = fs := (k ^ "=" ^ v) :: !fs in
  let flag k = fs := k :: !fs in
  (match s.fleet with Some f -> add "fleet" (fleet_str f) | None -> ());
  if s.watchdog then flag "watchdog";
  (match s.faults with Some f -> add "faults" ("{" ^ f ^ "}") | None -> ());
  (match s.guard with Some g -> add "guard" (guard_str g) | None -> ());
  (match s.cancel_ns with Some t -> add "cancel" (time_str t) | None -> ());
  (match s.discipline with
  | Some x -> add "discipline" (discipline_str x)
  | None -> ());
  (match s.dispatch_ns with Some t -> add "dispatch" (time_str t) | None -> ());
  (match s.window_ns with Some t -> add "window" (time_str t) | None -> ());
  if s.seed <> d.seed then add "seed" (Int64.to_string s.seed);
  if s.warmup_ns <> d.warmup_ns then add "warmup" (time_str s.warmup_ns);
  if s.duration_ns <> d.duration_ns then add "dur" (time_str s.duration_ns);
  if s.arrival <> d.arrival then add "arrival" (arrival_str s.arrival);
  if s.src <> d.src then add "src" (source_str s.src);
  (match s.capref with Some w -> add "capref" (string_of_int w) | None -> ());
  (match s.max_load with Some r -> add "maxload" (rate_str r) | None -> ());
  (match s.quantum with
  | Adaptive { ctl; _ }
    when ctl <> Preemptible.Quantum_controller.default_config ->
    add "ctl" (ctl_str ctl)
  | _ -> ());
  if s.quantum <> d.quantum then add "quantum" (quantum_str s.quantum);
  if s.workers <> d.workers then add "workers" (string_of_int s.workers);
  if s.system <> d.system then add "sys" (system_name s.system);
  (match s.name with Some n -> add "name" n | None -> ());
  String.concat ";" !fs

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

(* Blank out #-comments in place so byte offsets in errors keep
   pointing into the original text. *)
let strip_comments s =
  let b = Bytes.of_string s in
  let in_comment = ref false in
  String.iteri
    (fun i c ->
      if c = '\n' then in_comment := false
      else if c = '#' then in_comment := true;
      if !in_comment then Bytes.set b i ' ')
    s;
  Bytes.to_string b

let is_space c = c = ' ' || c = '\t' || c = '\r' || c = '\n'

let trim_off (off, s) =
  let n = String.length s in
  let i = ref 0 in
  while !i < n && is_space s.[!i] do incr i done;
  let j = ref (n - 1) in
  while !j >= !i && is_space s.[!j] do decr j done;
  (off + !i, String.sub s !i (!j - !i + 1))

(* Split [s] (whose first byte sits at absolute offset [pos0]) on
   top-level separator characters, respecting {} and () nesting.
   Returns trimmed non-empty parts with their absolute offsets. *)
let split_top ~pos0 ~seps s =
  let n = String.length s in
  let parts = ref [] in
  let depth = ref 0 in
  let start = ref 0 in
  let push i =
    if i > !start then parts := (pos0 + !start, String.sub s !start (i - !start)) :: !parts
  in
  String.iteri
    (fun i c ->
      if c = '{' || c = '(' then incr depth
      else if c = '}' || c = ')' then begin
        decr depth;
        if !depth < 0 then err (pos0 + i) "scenario" "unbalanced '}' or ')'"
      end
      else if !depth = 0 && List.mem c seps then begin
        push i;
        start := i + 1
      end)
    s;
  if !depth > 0 then err (pos0 + n) "scenario" "unbalanced '{' or '('";
  push n;
  List.rev !parts
  |> List.map trim_off
  |> List.filter (fun (_, p) -> p <> "")

(* Split one field into key / optional value at the first top-level '='. *)
let split_kv (off, s) =
  let n = String.length s in
  let depth = ref 0 in
  let eq = ref (-1) in
  (try
     String.iteri
       (fun i c ->
         if c = '{' || c = '(' then incr depth
         else if c = '}' || c = ')' then decr depth
         else if c = '=' && !depth = 0 then begin
           eq := i;
           raise Exit
         end)
       s
   with Exit -> ());
  if !eq < 0 then ((off, s), None)
  else
    let key = trim_off (off, String.sub s 0 !eq) in
    let v = trim_off (off + !eq + 1, String.sub s (!eq + 1) (n - !eq - 1)) in
    (key, Some v)

let parse_int ~field (pos, s) =
  match int_of_string_opt s with
  | Some v -> v
  | None -> err pos field (Printf.sprintf "expected an integer, got %S" s)

let parse_int64 ~field (pos, s) =
  match Int64.of_string_opt s with
  | Some v -> v
  | None -> err pos field (Printf.sprintf "expected an integer seed, got %S" s)

let parse_float ~field (pos, s) =
  match float_of_string_opt s with
  | Some v -> v
  | None -> err pos field (Printf.sprintf "expected a number, got %S" s)

let parse_time ~field (pos, s) =
  let n = String.length s in
  let i = ref 0 in
  while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do incr i done;
  if !i = 0 then
    err pos field (Printf.sprintf "expected a duration like 5us, got %S" s)
  else
    let v = int_of_string (String.sub s 0 !i) in
    let unit = String.sub s !i (n - !i) in
    let scale =
      match unit with
      | "ns" -> 1
      | "us" -> 1_000
      | "ms" -> 1_000_000
      | "s" -> 1_000_000_000
      | _ ->
        err (pos + !i) field
          (Printf.sprintf "unknown time unit %S (ns|us|ms|s)" unit)
    in
    v * scale

let parse_rate ~field (pos, s) =
  let n = String.length s in
  if n = 0 then err pos field "empty rate" else
  let last = s.[n - 1] in
  let num suffix = (pos, String.sub s 0 (n - String.length suffix)) in
  match last with
  | 'x' -> Load (parse_float ~field (num "x"))
  | 'k' -> Abs (parse_float ~field (num "k") *. 1e3)
  | 'M' -> Abs (parse_float ~field (num "M") *. 1e6)
  | _ -> Abs (parse_float ~field (pos, s))

(* "prefix:a:b:c" -> parts after the leading keyword, as (pos, part). *)
let colon_parts ~pos0 s = split_top ~pos0 ~seps:[ ':' ] s

let parse_dist ~field (pos, s) =
  match String.lowercase_ascii s with
  | "a1" -> A1
  | "a2" -> A2
  | "b" -> B
  | "c" -> C
  | _ -> (
    match colon_parts ~pos0:pos s with
    | [ (_, "const"); t ] -> Const (parse_time ~field t)
    | [ (_, "exp"); t ] -> Exp (parse_time ~field t)
    | [ (_, "bimodal"); s1; s2; f ] ->
      Bimodal
        {
          short_ns = parse_time ~field s1;
          long_ns = parse_time ~field s2;
          long_fraction = parse_float ~field f;
        }
    | [ (_, "lognormal"); m; sd ] ->
      Lognormal { mean_ns = parse_time ~field m; std_ns = parse_time ~field sd }
    | [ (_, "pareto"); sc; sh ] ->
      Pareto { scale_ns = parse_time ~field sc; shape = parse_float ~field sh }
    | _ ->
      err pos field
        (Printf.sprintf
           "unknown workload %S (a1|a2|b|c|const:T|exp:T|bimodal:T:T:F|lognormal:T:T|pareto:T:F)"
           s))

(* The inner payload of a "kw(...)" form, or None. *)
let paren_payload ~kw (pos, s) =
  let pre = kw ^ "(" in
  let np = String.length pre in
  if
    String.length s > np
    && String.lowercase_ascii (String.sub s 0 np) = pre
    && s.[String.length s - 1] = ')'
  then Some (pos + np, String.sub s np (String.length s - np - 1))
  else None

let rec parse_source ~field (pos, s) =
  match paren_payload ~kw:"mix" (pos, s) with
  | Some (ipos, inner) ->
    let items =
      split_top ~pos0:ipos ~seps:[ ',' ] inner
      |> List.map (fun (ioff, item) ->
             match String.index_opt item '*' with
             | Some st ->
               let w = parse_float ~field (trim_off (ioff, String.sub item 0 st)) in
               let sub =
                 trim_off
                   (ioff + st + 1, String.sub item (st + 1) (String.length item - st - 1))
               in
               (w, parse_source ~field sub)
             | None -> err ioff field "mix items are WEIGHT*SOURCE")
    in
    if items = [] then err pos field "mix(...) needs at least one item";
    Mix items
  | None -> (
    let low = String.lowercase_ascii s in
    if low = "mica" then Mica
    else if low = "zlib" then Zlib
    else if String.length low >= 8 && String.sub low 0 8 = "tenants:" then begin
      match String.index_opt s '(' with
      | Some op when s.[String.length s - 1] = ')' ->
        let theta = parse_float ~field (trim_off (pos + 8, String.sub s 8 (op - 8))) in
        let inner = String.sub s (op + 1) (String.length s - op - 2) in
        let tenants =
          split_top ~pos0:(pos + op + 1) ~seps:[ ',' ] inner
          |> List.map (parse_source ~field)
        in
        if tenants = [] then err pos field "tenants needs at least one source";
        Tenants { theta; tenants }
      | _ -> err pos field "tenants syntax is tenants:THETA(SRC,...)"
    end
    else
      (* optional @lc / @be class suffix on a plain distribution *)
      match String.rindex_opt s '@' with
      | Some at ->
        let d = parse_dist ~field (trim_off (pos, String.sub s 0 at)) in
        let c =
          match String.lowercase_ascii (String.sub s (at + 1) (String.length s - at - 1)) with
          | "lc" -> Lc
          | "be" -> Be
          | other ->
            err (pos + at + 1) field
              (Printf.sprintf "unknown request class %S (lc|be)" other)
        in
        Dist (d, c)
      | None -> Dist (parse_dist ~field (pos, s), Lc))

let rec parse_arrival ~field (pos, s) =
  match paren_payload ~kw:"piecewise" (pos, s) with
  | Some (ipos, inner) ->
    let segs =
      split_top ~pos0:ipos ~seps:[ ',' ] inner
      |> List.map (fun (ioff, item) ->
             match String.index_opt item ':' with
             | Some c ->
               let until = parse_time ~field (trim_off (ioff, String.sub item 0 c)) in
               let a =
                 parse_arrival ~field
                   (trim_off
                      (ioff + c + 1, String.sub item (c + 1) (String.length item - c - 1)))
               in
               (until, a)
             | None -> err ioff field "piecewise segments are UNTIL:ARRIVAL")
    in
    if segs = [] then err pos field "piecewise(...) needs at least one segment";
    Piecewise segs
  | None -> (
    match colon_parts ~pos0:pos s with
    | [ (_, "poisson"); r ] -> Poisson (parse_rate ~field r)
    | [ (_, "uniform"); r ] -> Uniform (parse_rate ~field r)
    | [ (_, "bursty"); b; sp; p; f ] ->
      Bursty
        {
          base = parse_rate ~field b;
          spike = parse_rate ~field sp;
          period_ns = parse_time ~field p;
          spike_fraction = parse_float ~field f;
        }
    | [ (_, "flash"); b; pk; st; rm; h; dc ] ->
      Flash
        {
          base = parse_rate ~field b;
          peak = parse_rate ~field pk;
          start_ns = parse_time ~field st;
          ramp_ns = parse_time ~field rm;
          hold_ns = parse_time ~field h;
          decay_ns = parse_time ~field dc;
        }
    | [ (_, "diurnal"); b; a; p ] ->
      Diurnal
        {
          base = parse_rate ~field b;
          amplitude = parse_float ~field a;
          period_ns = parse_time ~field p;
        }
    | [ (_, "mmpp"); (rpos, rs); h; sd ] ->
      let rates =
        split_top ~pos0:rpos ~seps:[ '/' ] rs |> List.map (parse_rate ~field)
      in
      Mmpp
        {
          rates;
          mean_hold_ns = parse_time ~field h;
          seed = parse_int64 ~field sd;
        }
    | _ ->
      err pos field
        (Printf.sprintf
           "unknown arrival %S (poisson:R|uniform:R|bursty:R:R:T:F|flash:R:R:T:T:T:T|diurnal:R:F:T|mmpp:R/R:T:SEED|piecewise(T:A,...))"
           s))

let parse_bucket ~field (pos, s) =
  match colon_parts ~pos0:pos s with
  | [ r; b ] -> { b_rate = parse_rate ~field r; b_burst = parse_float ~field b }
  | _ -> err pos field (Printf.sprintf "expected RATE:BURST, got %S" s)

(* A value that must be a {...} block; returns the raw inner payload
   with its offset. *)
let brace_payload ~field (pos, s) =
  let n = String.length s in
  if n >= 2 && s.[0] = '{' && s.[n - 1] = '}' then
    (pos + 1, String.sub s 1 (n - 2))
  else err pos field "expected a {...} block"

let block_fields ~field v =
  let pos0, inner = brace_payload ~field v in
  split_top ~pos0 ~seps:[ ';'; '\n' ] inner |> List.map split_kv

let require ~field (kpos : int) = function
  | Some v -> v
  | None -> err kpos field "expected key=value"

let no_value ~field key = function
  | None -> ()
  | Some (vpos, _) ->
    err vpos field (Printf.sprintf "'%s' takes no value" key)

let parse_ctl ~field v base =
  List.fold_left
    (fun (c : Preemptible.Quantum_controller.config) ((kpos, key), value) ->
      let value () = require ~field kpos value in
      match String.lowercase_ascii key with
      | "k1" -> { c with k1_ns = parse_time ~field (value ()) }
      | "k2" -> { c with k2_ns = parse_time ~field (value ()) }
      | "k3" -> { c with k3_ns = parse_time ~field (value ()) }
      | "lhigh" -> { c with l_high_fraction = parse_float ~field (value ()) }
      | "llow" -> { c with l_low_fraction = parse_float ~field (value ()) }
      | "qthresh" -> { c with q_threshold = parse_int ~field (value ()) }
      | "tmin" -> { c with t_min_ns = parse_time ~field (value ()) }
      | "tmax" -> { c with t_max_ns = parse_time ~field (value ()) }
      | _ ->
        err kpos field
          (Printf.sprintf
             "unknown ctl knob %S (k1|k2|k3|lhigh|llow|qthresh|tmin|tmax)" key))
    base (block_fields ~field v)

let parse_shed ~field v =
  List.fold_left
    (fun (c : Guard.shed_config) ((kpos, key), value) ->
      let value () = require ~field kpos value in
      match String.lowercase_ascii key with
      | "q" -> { c with max_queue = parse_int ~field (value ()) }
      | "target" -> { c with codel_target_ns = parse_time ~field (value ()) }
      | "interval" -> { c with codel_interval_ns = parse_time ~field (value ()) }
      | _ ->
        err kpos field
          (Printf.sprintf "unknown shed knob %S (q|target|interval)" key))
    Guard.default_shed (block_fields ~field v)

let parse_retry ~field v =
  List.fold_left
    (fun (c : retry) ((kpos, key), value) ->
      let value () = require ~field kpos value in
      match String.lowercase_ascii key with
      | "attempts" -> { c with r_attempts = parse_int ~field (value ()) }
      | "backoff" -> { c with r_backoff_ns = parse_time ~field (value ()) }
      | "max" -> { c with r_max_backoff_ns = parse_time ~field (value ()) }
      | "jitter" -> { c with r_jitter = parse_float ~field (value ()) }
      | "budget" -> { c with r_budget = Some (parse_bucket ~field (value ())) }
      | _ ->
        err kpos field
          (Printf.sprintf
             "unknown retry knob %S (attempts|backoff|max|jitter|budget)" key))
    default_retry (block_fields ~field v)

let parse_brownout ~field v =
  List.fold_left
    (fun (c : Guard.brownout_config) ((kpos, key), value) ->
      let value () = require ~field kpos value in
      match String.lowercase_ascii key with
      | "p99" -> { c with p99_trip_ns = parse_time ~field (value ()) }
      | "qlen" -> { c with qlen_trip = parse_int ~field (value ()) }
      | "trip" -> { c with trip_windows = parse_int ~field (value ()) }
      | "recover" -> { c with recover_windows = parse_int ~field (value ()) }
      | "shrink" -> { c with timeout_shrink = parse_float ~field (value ()) }
      | "probe" -> { c with probe_every = parse_int ~field (value ()) }
      | _ ->
        err kpos field
          (Printf.sprintf
             "unknown brownout knob %S (p99|qlen|trip|recover|shrink|probe)"
             key))
    Guard.default_brownout (block_fields ~field v)

let parse_guard ~field v =
  List.fold_left
    (fun g ((kpos, key), vopt) ->
      let value () = require ~field kpos vopt in
      match String.lowercase_ascii key with
      | "timeout" -> { g with g_timeout_ns = Some (parse_time ~field (value ())) }
      | "expire" ->
        no_value ~field key vopt;
        { g with g_drop_expired = true }
      | "shed" -> (
        match vopt with
        | None -> { g with g_shed = Some Guard.default_shed }
        | Some v -> { g with g_shed = Some (parse_shed ~field v) })
      | "bucket" -> { g with g_bucket = Some (parse_bucket ~field (value ())) }
      | "lc-bucket" ->
        { g with g_lc_bucket = Some (parse_bucket ~field (value ())) }
      | "be-bucket" ->
        { g with g_be_bucket = Some (parse_bucket ~field (value ())) }
      | "retry" -> (
        match vopt with
        | None -> { g with g_retry = Some default_retry }
        | Some v -> { g with g_retry = Some (parse_retry ~field v) })
      | "brownout" -> (
        match vopt with
        | None -> { g with g_brownout = Some Guard.default_brownout }
        | Some v -> { g with g_brownout = Some (parse_brownout ~field v) })
      | _ ->
        err kpos field
          (Printf.sprintf
             "unknown guard knob %S \
              (timeout|expire|shed|bucket|lc-bucket|be-bucket|retry|brownout)"
             key))
    empty_guard (block_fields ~field v)

let parse_steal ~field (pos, s) =
  match colon_parts ~pos0:pos s with
  | [ i; t; b ] ->
    {
      Cluster.interval_ns = parse_time ~field i;
      threshold = parse_int ~field t;
      batch = parse_int ~field b;
    }
  | _ -> err pos field (Printf.sprintf "expected INTERVAL:THRESHOLD:BATCH, got %S" s)

let parse_fleet ~field v =
  let f =
    List.fold_left
      (fun f ((kpos, key), vopt) ->
        let value () = require ~field kpos vopt in
        match String.lowercase_ascii key with
        | "n" -> { f with f_n = parse_int ~field (value ()) }
        | "lb" -> (
          let vpos, vs = value () in
          match Cluster.lb_of_string (String.lowercase_ascii vs) with
          | Ok lb -> { f with f_lb = lb }
          | Error m -> err vpos field m)
        | "steal" -> (
          match vopt with
          | None -> { f with f_steal = Some Cluster.default_steal }
          | Some v -> { f with f_steal = Some (parse_steal ~field v) })
        | "workers" ->
          let vpos, vs = value () in
          let l =
            split_top ~pos0:vpos ~seps:[ '/' ] vs
            |> List.map (parse_int ~field)
          in
          { f with f_workers = Some l }
        | _ ->
          err kpos field
            (Printf.sprintf "unknown fleet knob %S (n|lb|steal|workers)" key))
      { f_n = 0; f_lb = Cluster.Random; f_steal = None; f_workers = None }
      (block_fields ~field v)
  in
  if f.f_n <= 0 then err (fst (brace_payload ~field v)) field "fleet needs n=N (>= 1)";
  f

let parse_quantum ~field current (pos, s) =
  let low = String.lowercase_ascii s in
  if low = "none" then No_preempt
  else if low = "adaptive" then
    match current with
    | Adaptive _ -> current
    | _ ->
      Adaptive
        {
          init_ns = default_adaptive_init_ns;
          ctl = Preemptible.Quantum_controller.default_config;
        }
  else if String.length low > 9 && String.sub low 0 9 = "adaptive:" then
    let init = parse_time ~field (pos + 9, String.sub s 9 (String.length s - 9)) in
    let ctl =
      match current with
      | Adaptive { ctl; _ } -> ctl
      | _ -> Preemptible.Quantum_controller.default_config
    in
    Adaptive { init_ns = init; ctl }
  else Fixed (parse_time ~field (pos, s))

let parse_system ~field (pos, s) =
  match String.lowercase_ascii s with
  | "lp" | "libpreemptible" -> Lp
  | "lp-nouintr" | "lp-signal" -> Lp_nouintr
  | "shinjuku" -> Shinjuku
  | "libinger" -> Libinger
  | "nopreempt" | "no-preempt" -> Nopreempt
  | "go" -> Go
  | other ->
    err pos field
      (Printf.sprintf
         "unknown system %S (lp|lp-nouintr|shinjuku|libinger|nopreempt|go)"
         other)

let parse_name ~field (pos, s) =
  String.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '_' || c = '-' || c = '.'
      in
      if not ok then
        err (pos + i) field
          (Printf.sprintf "invalid character %C in name (use [A-Za-z0-9_.-])" c))
    s;
  if s = "" then err pos field "empty name";
  s

let parse_faults ~field v =
  let pos, raw = brace_payload ~field v in
  let raw = snd (trim_off (pos, raw)) in
  let scratch = Fault.create () in
  (match Fault.parse scratch raw with
  | Ok () -> ()
  | Error m -> err pos field m);
  raw

let parse_onto base text =
  let text = strip_comments text in
  let fields = split_top ~pos0:0 ~seps:[ ';'; '\n' ] text in
  let ctl_pending = ref None in
  let spec =
    List.fold_left
      (fun spec ((kpos, key), vopt) ->
        let field = key in
        let value () = require ~field kpos vopt in
        match String.lowercase_ascii key with
        | "name" -> { spec with name = Some (parse_name ~field (value ())) }
        | "sys" | "system" ->
          { spec with system = parse_system ~field (value ()) }
        | "workers" -> { spec with workers = parse_int ~field (value ()) }
        | "quantum" ->
          { spec with quantum = parse_quantum ~field spec.quantum (value ()) }
        | "ctl" ->
          ctl_pending := Some (kpos, value ());
          spec
        | "watchdog" -> (
          match vopt with
          | None -> { spec with watchdog = true }
          | Some (vpos, vs) -> (
            match String.lowercase_ascii vs with
            | "on" -> { spec with watchdog = true }
            | "off" -> { spec with watchdog = false }
            | other ->
              err vpos field (Printf.sprintf "expected on|off, got %S" other)))
        | "maxload" -> (
          let vpos, vs = value () in
          if String.lowercase_ascii vs = "auto" then
            { spec with max_load = None }
          else { spec with max_load = Some (parse_rate ~field (vpos, vs)) })
        | "capref" -> { spec with capref = Some (parse_int ~field (value ())) }
        | "src" | "workload" ->
          { spec with src = parse_source ~field (value ()) }
        | "arrival" -> { spec with arrival = parse_arrival ~field (value ()) }
        | "dur" | "duration" ->
          { spec with duration_ns = parse_time ~field (value ()) }
        | "warmup" -> { spec with warmup_ns = parse_time ~field (value ()) }
        | "seed" -> { spec with seed = parse_int64 ~field (value ()) }
        | "window" -> { spec with window_ns = Some (parse_time ~field (value ())) }
        | "dispatch" ->
          { spec with dispatch_ns = Some (parse_time ~field (value ())) }
        | "discipline" -> (
          let vpos, vs = value () in
          match String.lowercase_ascii vs with
          | "fifo" -> { spec with discipline = Some Fifo }
          | "srpt" -> { spec with discipline = Some Srpt }
          | other ->
            if String.length other > 4 && String.sub other 0 4 = "edf:" then
              { spec with
                discipline =
                  Some (Edf (parse_time ~field (vpos + 4, String.sub vs 4 (String.length vs - 4))));
              }
            else
              err vpos field
                (Printf.sprintf "unknown discipline %S (fifo|srpt|edf:SLO)" other))
        | "cancel" -> { spec with cancel_ns = Some (parse_time ~field (value ())) }
        | "guard" -> (
          let vpos, vs = value () in
          if String.lowercase_ascii vs = "off" then { spec with guard = None }
          else { spec with guard = Some (parse_guard ~field (vpos, vs)) })
        | "faults" -> (
          let vpos, vs = value () in
          if String.lowercase_ascii vs = "off" then { spec with faults = None }
          else { spec with faults = Some (parse_faults ~field (vpos, vs)) })
        | "fleet" -> (
          let vpos, vs = value () in
          if String.lowercase_ascii vs = "off" then { spec with fleet = None }
          else { spec with fleet = Some (parse_fleet ~field (vpos, vs)) })
        | _ ->
          err kpos key
            (Printf.sprintf "unknown field %S (see SCENARIOS.md)" key))
      base (List.map split_kv fields)
  in
  match !ctl_pending with
  | None -> spec
  | Some (kpos, v) -> (
    match spec.quantum with
    | Adaptive a ->
      { spec with quantum = Adaptive { a with ctl = parse_ctl ~field:"ctl" v a.ctl } }
    | _ -> err kpos "ctl" "ctl requires quantum=adaptive")

let override base text =
  match parse_onto base text with
  | spec -> Ok spec
  | exception Err e -> Error e

let of_string text = override default text

let of_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string text

(* ------------------------------------------------------------------ *)
(* Semantics / lowering                                                *)
(* ------------------------------------------------------------------ *)

let total_workers s =
  match s.fleet with
  | None -> s.workers
  | Some f -> (
    match f.f_workers with
    | Some l -> List.fold_left ( + ) 0 l
    | None -> f.f_n * s.workers)

let capref_workers s = match s.capref with Some c -> c | None -> total_workers s

let service_dist s = function
  | A1 -> Workload.Service_dist.workload_a1
  | A2 -> Workload.Service_dist.workload_a2
  | B -> Workload.Service_dist.workload_b
  | C -> Workload.Service_dist.workload_c ~duration_ns:s.duration_ns
  | Const t -> Workload.Service_dist.constant t
  | Exp t -> Workload.Service_dist.exponential ~mean_ns:t
  | Bimodal { short_ns; long_ns; long_fraction } ->
    Workload.Service_dist.bimodal ~short_ns ~long_ns ~long_fraction
  | Lognormal { mean_ns; std_ns } ->
    Workload.Service_dist.lognormal ~mean_ns ~std_ns
  | Pareto { scale_ns; shape } -> Workload.Service_dist.pareto ~scale_ns ~shape

let rec source_mean_ns s src ~now =
  match src with
  | Dist (d, _) -> Workload.Service_dist.mean_ns (service_dist s d) ~now
  | Mica | Zlib ->
    invalid_arg
      "scenario: mica/zlib sources have no analytic mean; use absolute rates \
       (and an explicit maxload for adaptive quanta)"
  | Mix items ->
    let tot = List.fold_left (fun a (w, _) -> a +. w) 0. items in
    List.fold_left
      (fun a (w, sub) -> a +. (w /. tot *. source_mean_ns s sub ~now))
      0. items
  | Tenants { theta; tenants } ->
    let n = List.length tenants in
    let z = Workload.Zipf.create ~n ~theta in
    List.fold_left
      (fun (a, i) sub ->
        (a +. (Workload.Zipf.probability z i *. source_mean_ns s sub ~now), i + 1))
      (0., 0) tenants
    |> fst

(* Mirrors Bench_util.capacity_rps: a phased source is as slow as its
   slowest phase, so size by the larger of start/end means. *)
let capacity_rps s =
  let mean_start = source_mean_ns s s.src ~now:0 in
  let mean_end = source_mean_ns s s.src ~now:(max 0 (s.duration_ns - 1)) in
  let mean = Float.max mean_start mean_end in
  float_of_int (capref_workers s) *. 1e9 /. mean

let rate_rps s = function Abs f -> f | Load l -> l *. capacity_rps s

let rec lower_source s = function
  | Dist (d, c) ->
    Workload.Source.of_dist (service_dist s d)
      ~cls:
        (match c with
        | Lc -> Workload.Request.Latency_critical
        | Be -> Workload.Request.Best_effort)
  | Mica -> Workload.Mica.source (Workload.Mica.create ())
  | Zlib -> Workload.Zlib_be.source (Workload.Zlib_be.create ())
  | Mix items -> Workload.Source.mix (List.map (fun (w, x) -> (w, lower_source s x)) items)
  | Tenants { theta; tenants } ->
    Workload.Source.tenants ~theta (List.map (lower_source s) tenants)

let source_sampler s = lower_source s s.src

let rec lower_arrival s = function
  | Poisson r -> Workload.Arrival.poisson ~rate_per_sec:(rate_rps s r)
  | Uniform r -> Workload.Arrival.uniform ~rate_per_sec:(rate_rps s r)
  | Bursty { base; spike; period_ns; spike_fraction } ->
    Workload.Arrival.bursty ~base_rate_per_sec:(rate_rps s base)
      ~spike_rate_per_sec:(rate_rps s spike) ~period_ns ~spike_fraction
  | Flash { base; peak; start_ns; ramp_ns; hold_ns; decay_ns } ->
    Workload.Arrival.flash_crowd ~base_rate_per_sec:(rate_rps s base)
      ~peak_rate_per_sec:(rate_rps s peak) ~start_ns ~ramp_ns ~hold_ns ~decay_ns
  | Diurnal { base; amplitude; period_ns } ->
    Workload.Arrival.diurnal ~base_rate_per_sec:(rate_rps s base) ~amplitude
      ~period_ns
  | Mmpp { rates; mean_hold_ns; seed } ->
    Workload.Arrival.mmpp
      ~rates_per_sec:(Array.of_list (List.map (rate_rps s) rates))
      ~mean_hold_ns ~seed
  | Piecewise segs ->
    Workload.Arrival.piecewise
      (List.map (fun (until, a) -> (until, lower_arrival s a)) segs)

let arrival_process s = lower_arrival s s.arrival

let lower_bucket s b =
  { Guard.rate_per_sec = rate_rps s b.b_rate; burst = b.b_burst }

let guard_config s =
  Option.map
    (fun g ->
      {
        Guard.timeout_ns = g.g_timeout_ns;
        drop_expired = g.g_drop_expired;
        shed = g.g_shed;
        global_bucket = Option.map (lower_bucket s) g.g_bucket;
        lc_bucket = Option.map (lower_bucket s) g.g_lc_bucket;
        be_bucket = Option.map (lower_bucket s) g.g_be_bucket;
        retry =
          Option.map
            (fun r ->
              {
                Guard.max_attempts = r.r_attempts;
                backoff_ns = r.r_backoff_ns;
                max_backoff_ns = r.r_max_backoff_ns;
                jitter = r.r_jitter;
                budget = Option.map (lower_bucket s) r.r_budget;
              })
            g.g_retry;
        brownout = g.g_brownout;
      })
    s.guard

let fault_plan s =
  Option.map
    (fun spec ->
      let plan = Fault.create ~seed:s.seed () in
      (match Fault.parse plan spec with
      | Ok () -> ()
      | Error m -> invalid_arg ("scenario: faults: " ^ m));
      plan)
    s.faults

(* [max_load] is a thunk so non-adaptive scenarios over app-model
   sources (no analytic mean) never compute a capacity. *)
let policy_of s ~max_load =
  match s.quantum with
  | No_preempt -> Preemptible.Policy.no_preempt
  | Fixed q -> Preemptible.Policy.fcfs_preempt ~quantum_ns:q
  | Adaptive { init_ns; ctl } ->
    Preemptible.Policy.adaptive
      (Preemptible.Quantum_controller.create ~config:ctl
         ~max_load_per_s:(max_load ()) ~initial_quantum_ns:init_ns ())

let mechanism s =
  match s.quantum with
  | No_preempt -> Preemptible.Server.No_mechanism
  | _ -> (
    match s.system with
    | Lp -> Preemptible.Server.Uintr_utimer Utimer.default_config
    | Lp_nouintr -> Preemptible.Server.Signal_utimer { poll_ns = 500 }
    | _ -> assert false)

let single_max_load s () =
  match s.max_load with Some r -> rate_rps s r | None -> capacity_rps s

let server_config_w s ~n_workers ~max_load =
  (match s.system with
  | Lp | Lp_nouintr -> ()
  | sys ->
    invalid_arg
      (Printf.sprintf
         "scenario: sys=%s builds its own config; server_config applies to \
          lp|lp-nouintr"
         (system_name sys)));
  let policy = policy_of s ~max_load in
  let cfg =
    Preemptible.Server.default_config ~n_workers ~policy ~mechanism:(mechanism s)
  in
  let cfg = { cfg with Preemptible.Server.seed = s.seed } in
  let cfg =
    match s.window_ns with
    | Some w -> { cfg with Preemptible.Server.stats_window_ns = w }
    | None -> cfg
  in
  let cfg =
    match s.dispatch_ns with
    | Some d -> { cfg with Preemptible.Server.dispatch_cost_ns = d }
    | None -> cfg
  in
  let cfg =
    match s.discipline with
    | Some Fifo -> { cfg with Preemptible.Server.discipline = Preemptible.Server.Fifo }
    | Some Srpt ->
      { cfg with Preemptible.Server.discipline = Preemptible.Server.Srpt_oracle }
    | Some (Edf slo) ->
      { cfg with Preemptible.Server.discipline = Preemptible.Server.Edf slo }
    | None -> cfg
  in
  let cfg = { cfg with Preemptible.Server.cancel_after_slo = s.cancel_ns } in
  let cfg = { cfg with Preemptible.Server.guard = guard_config s } in
  let cfg = { cfg with Preemptible.Server.faults = fault_plan s } in
  if s.watchdog then
    { cfg with Preemptible.Server.watchdog = Some Utimer.default_watchdog }
  else cfg

let server_config s =
  server_config_w s ~n_workers:s.workers ~max_load:(single_max_load s)

let cluster_config s =
  let f =
    match s.fleet with
    | Some f -> f
    | None -> invalid_arg "scenario: cluster_config requires a fleet={...} field"
  in
  let worker_counts =
    match f.f_workers with
    | Some l ->
      if List.length l <> f.f_n then
        invalid_arg
          (Printf.sprintf
             "scenario: fleet workers list has %d entries but n=%d"
             (List.length l) f.f_n);
      Array.of_list l
    | None -> Array.make f.f_n s.workers
  in
  (* Each member's adaptive controller gets an equal share of the
     fleet-wide max-load reference (the balancer spreads the stream). *)
  let member_max_load () = single_max_load s () /. float_of_int f.f_n in
  let members =
    Array.map
      (fun nw -> server_config_w s ~n_workers:nw ~max_load:member_max_load)
      worker_counts
  in
  {
    Cluster.members;
    lb = f.f_lb;
    steal = f.f_steal;
    seed = s.seed;
    max_events = 400_000_000;
    tick_ns = None;
  }

(* ------------------------------------------------------------------ *)
(* Running                                                             *)
(* ------------------------------------------------------------------ *)

type outcome = Server of Preemptible.Server.result | Fleet of Cluster.result

let baseline_reject s name =
  let reject what =
    invalid_arg (Printf.sprintf "scenario: sys=%s does not support %s" name what)
  in
  if s.guard <> None then reject "guard";
  if s.faults <> None then reject "faults";
  if s.watchdog then reject "watchdog";
  if s.window_ns <> None then reject "window";
  if s.dispatch_ns <> None then reject "dispatch";
  if s.discipline <> None then reject "discipline";
  if s.cancel_ns <> None then reject "cancel";
  if s.fleet <> None then reject "fleet (fleets need sys=lp|lp-nouintr)"

let baseline_quantum s name =
  match s.quantum with
  | Fixed q -> q
  | No_preempt -> max_int
  | Adaptive _ ->
    invalid_arg
      (Printf.sprintf
         "scenario: sys=%s has a static quantum; quantum=adaptive needs \
          sys=lp|lp-nouintr"
         name)

let run_server ?probes s =
  if s.fleet <> None then
    invalid_arg "scenario: fleet scenario; use run_fleet";
  let arrival = arrival_process s in
  let source = source_sampler s in
  let duration_ns = s.duration_ns in
  let warmup_ns = s.warmup_ns in
  match s.system with
  | Lp | Lp_nouintr ->
    Preemptible.Server.run ?probes ~warmup_ns (server_config s) ~arrival ~source
      ~duration_ns
  | Shinjuku ->
    baseline_reject s "shinjuku";
    let quantum_ns = baseline_quantum s "shinjuku" in
    let cfg = Baselines.Shinjuku.default_config ~n_workers:s.workers ~quantum_ns in
    Baselines.Shinjuku.run ?probes ~warmup_ns
      { cfg with Baselines.Shinjuku.seed = s.seed }
      ~arrival ~source ~duration_ns
  | Libinger ->
    baseline_reject s "libinger";
    let quantum_ns = baseline_quantum s "libinger" in
    let cfg = Baselines.Libinger.default_config ~n_workers:s.workers ~quantum_ns in
    Baselines.Libinger.run ?probes ~warmup_ns
      { cfg with Baselines.Libinger.seed = s.seed }
      ~arrival ~source ~duration_ns
  | Nopreempt ->
    baseline_reject s "nopreempt";
    (match s.quantum with
    | No_preempt | Fixed _ -> ()
    | Adaptive _ -> ignore (baseline_quantum s "nopreempt"));
    let cfg = Baselines.Nopreempt.default_config ~n_workers:s.workers in
    Baselines.Nopreempt.run ?probes ~warmup_ns
      { cfg with Baselines.Nopreempt.seed = s.seed }
      ~arrival ~source ~duration_ns
  | Go ->
    baseline_reject s "go";
    let cfg = Baselines.Goruntime.default_config ~n_workers:s.workers in
    (* Go keeps its native 10 ms slice unless the scenario names a
       quantum explicitly (the generic 5 us default would mislead). *)
    let cfg =
      if s.quantum = default.quantum then cfg
      else
        { cfg with Baselines.Goruntime.quantum_ns = baseline_quantum s "go" }
    in
    Baselines.Goruntime.run ?probes ~warmup_ns
      { cfg with Baselines.Goruntime.seed = s.seed }
      ~arrival ~source ~duration_ns

let run_fleet ?probes s =
  (match s.system with
  | Lp | Lp_nouintr -> ()
  | sys ->
    invalid_arg
      (Printf.sprintf "scenario: fleets need sys=lp|lp-nouintr (got %s)"
         (system_name sys)));
  Cluster.run ?probes ~warmup_ns:s.warmup_ns (cluster_config s)
    ~arrival:(arrival_process s) ~source:(source_sampler s)
    ~duration_ns:s.duration_ns

let run s =
  if s.fleet <> None then Fleet (run_fleet s) else Server (run_server s)

let validate s =
  match
    (match s.system with
    | Lp | Lp_nouintr ->
      if s.fleet <> None then ignore (cluster_config s)
      else ignore (server_config s)
    | sys ->
      baseline_reject s (system_name sys);
      (match sys with
      | Nopreempt -> ()
      | Go -> if s.quantum <> default.quantum then ignore (baseline_quantum s "go")
      | _ -> ignore (baseline_quantum s (system_name sys))));
    ignore (arrival_process s);
    ignore (source_sampler s)
  with
  | () -> Ok ()
  | exception Invalid_argument m -> Error m

let pp_outcome fmt = function
  | Server r -> Preemptible.Server.pp_result fmt r
  | Fleet r -> Cluster.pp_fleet fmt r.Cluster.fleet

(* ------------------------------------------------------------------ *)
(* Real-time (fiber_rt) lowering: the same spec, replayed on actual
   domains under wall time.  The schedule is pre-generated from the
   very samplers the simulator lowers to, so both backends draw from
   identical workload definitions; only the execution substrate (and
   hence the clock domain) differs.                                    *)
(* ------------------------------------------------------------------ *)

let rt_quantum s =
  match s.quantum with
  | No_preempt -> None
  | Fixed q -> Some q
  | Adaptive _ ->
    invalid_arg
      "scenario: the rt backend has no adaptive quantum controller; set \
       quantum=T or quantum=none (e.g. -s quantum=20us)"

let rt_reject s =
  let no what cond =
    if cond then
      invalid_arg (Printf.sprintf "scenario: the rt backend does not support %s" what)
  in
  (match s.system with
  | Lp -> ()
  | sys ->
    invalid_arg
      (Printf.sprintf "scenario: the rt backend only runs sys=lp (got %s)"
         (system_name sys)));
  no "fleets (fleet={...})" (s.fleet <> None);
  no "the guard front door (guard={...})" (s.guard <> None);
  no "fault injection (faults=...)" (s.faults <> None);
  no "the watchdog" s.watchdog;
  no "disciplines (discipline=...)" (s.discipline <> None);
  no "cancellation (cancel=...)" (s.cancel_ns <> None);
  ignore (rt_quantum s)

let rt_max_requests = 2_000_000

let rt_schedule s =
  rt_reject s;
  let arrival = arrival_process s in
  let source = source_sampler s in
  let rng = Engine.Rng.create s.seed in
  let items = ref [] in
  let n = ref 0 in
  let now = ref 0 in
  (try
     while true do
       let gap = Workload.Arrival.next_gap arrival rng ~now:!now in
       now := !now + gap;
       if !now >= s.duration_ns then raise Exit;
       let service_ns, cls = Workload.Source.draw source rng ~now:!now in
       incr n;
       if !n > rt_max_requests then
         invalid_arg
           (Printf.sprintf
              "scenario: rt schedule exceeds %d requests; shorten dur or lower \
               the arrival rate"
              rt_max_requests);
       items :=
         {
           Fiber_rt.Sched.at_ns = !now;
           service_ns;
           lc = cls = Workload.Request.Latency_critical;
         }
         :: !items
     done
   with Exit -> ());
  Array.of_list (List.rev !items)

let run_rt s =
  let schedule = rt_schedule s in
  Fiber_rt.Sched.run ~workers:s.workers ?quantum_ns:(rt_quantum s)
    ~warmup_ns:s.warmup_ns schedule

let validate_rt s =
  match
    rt_reject s;
    ignore (arrival_process s);
    ignore (source_sampler s)
  with
  | () -> Ok ()
  | exception Invalid_argument m -> Error m
