(** Ping-pong IPC micro-benchmark (Table IV).

    Reproduces the paper's comparison of event-notification mechanisms:
    two tasks bounce a 1-byte notification back and forth; we report the
    per-message latency statistics and the sustained message rate.

    The [Uintrfd] variants run on the real {!Hw.Uintr} fabric model (so
    the UPID/UITT semantics are exercised); the kernel mechanisms are
    cost models calibrated from Table IV (see {!Costs}). *)

type mechanism =
  | Signal_ipc  (** POSIX signal between processes *)
  | Mq  (** POSIX message queue *)
  | Pipe
  | Eventfd
  | Uintrfd  (** user interrupt, receiver running *)
  | Uintrfd_blocked  (** user interrupt, receiver blocked in the kernel *)

val all : mechanism list
(** In Table IV's row order. *)

val name : mechanism -> string

type result = {
  mechanism : string;
  avg_us : float;
  min_us : float;
  std_us : float;
  rate_msg_per_s : float;
}

val run_pingpong :
  ?seed:int64 -> ?costs:Costs.t -> ?hw:Hw.Params.t -> mechanism -> n:int -> result
(** Run [n] round trips and summarize. *)

val pp_result : Format.formatter -> result -> unit
