(** Kernel signal delivery.

    The software preemption path the paper compares against: the sender
    enters the kernel, the kernel generates the signal while holding the
    target process's sighand lock (a shared {!Klock.t}, so concurrent
    deliveries serialize), and the receiver pays frame setup + handler
    dispatch, plus heavy-tailed kernel jitter. *)

type t

val create : ?trace:Obs.Trace.t -> ?lock_track:int -> Engine.Sim.t -> Costs.t -> rng:Engine.Rng.t -> t
(** [trace]/[lock_track] are forwarded to the sighand {!Klock.t}, so
    lock queueing on the signal path lands on the shared timeline. *)

val deliver : t -> ?jitter:bool -> handler:(unit -> unit) -> unit -> unit
(** Deliver one signal; [handler] runs when the receiver's signal
    handler is entered. [jitter] (default true) adds the lognormal
    kernel-noise term; disable it to measure the deterministic floor. *)

val lock : t -> Klock.t
(** The sighand lock (shared by all deliveries through this instance:
    one instance models one process). *)

val min_latency_ns : t -> int
(** The deterministic part of a delivery: syscall + signal generation +
    lock hold + dispatch — Table IV's "min" row. *)

val delivered : t -> int
