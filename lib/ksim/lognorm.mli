(** Lognormal noise terms parameterized by target mean / standard
    deviation — the shape used for kernel-path jitter throughout the
    kernel model (heavy-ish right tail, strictly positive). *)

val sample : Engine.Rng.t -> mean:float -> std:float -> float
(** A lognormal sample whose distribution has the given mean and
    standard deviation. Returns 0.0 when [mean <= 0]. *)

val sample_ns : Engine.Rng.t -> mean_ns:int -> std_ns:int -> int
(** Integer-nanosecond convenience wrapper. *)
