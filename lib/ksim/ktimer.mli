(** Kernel (POSIX) timers.

    The baseline preemption clock: expiries are quantized to the
    kernel's effective granularity floor, jittered, and delivered to the
    application through the signal path (therefore subject to sighand
    lock contention).  Fig 12's behaviour — a requested 20 µs period
    flooring at ~60 µs with high variance — is reproduced by these two
    effects. *)

type t

val create :
  ?faults:Fault.t -> ?fault_overrun_ns:int -> Engine.Sim.t -> Costs.t ->
  rng:Engine.Rng.t -> signal:Signal.t -> t
(** When [faults] is supplied, the injection point ["ktimer.overrun"]
    is consulted on every expiry scheduling: a firing adds
    [fault_overrun_ns] (default 100000) to that expiry — the kernel
    timer wheel overrunning under interrupt pressure. *)

type timer

val arm_oneshot : t -> delay_ns:int -> handler:(unit -> unit) -> timer
(** One expiry after [max delay floor] plus jitter. *)

val arm_periodic : t -> interval_ns:int -> handler:(unit -> unit) -> timer
(** Fires repeatedly with effective period
    [max interval_ns (effective_floor t)], each expiry jittered and
    delivered as a signal. *)

val cancel : timer -> unit

val effective_interval : t -> int -> int
(** What period the kernel will actually honour for a request. *)

val arm_cost_ns : t -> int
(** Syscall cost of (re)arming, charged to the caller. *)

val expirations : t -> int

val overruns : t -> int
(** Expiries delayed through the ["ktimer.overrun"] fault point. *)
