(** A contended kernel lock, modeled as a FIFO queueing resource.

    Linux takes the per-process [sighand] lock on every signal delivery;
    when many timer signals expire at the same instant the deliveries
    serialize on this lock.  That queueing — not any scripted curve — is
    what produces the superlinear per-thread timer overhead of Fig 11 in
    this reproduction. *)

type t

val create :
  ?contended_wake_ns:int ->
  ?faults:Fault.t ->
  ?fault_stall_ns:int ->
  ?trace:Obs.Trace.t ->
  ?track:int ->
  Engine.Sim.t ->
  t
(** [contended_wake_ns] (default 0): extra serialized cost paid by an
    acquirer that had to sleep on the lock (futex wake + scheduler
    hop) — this is what makes aligned timer signals superlinear.

    When [faults] is supplied, the injection point
    ["klock.holder_stall"] is consulted on every grant: a firing stalls
    the holder for [fault_stall_ns] (default 50000) while the lock is
    held, queueing every later acquirer behind it.

    When [trace] is supplied, the lock emits {!Obs.Trace.cat.Klock}
    events on [track] (default 0): ["klock.enqueue"] (arg = queue
    depth) when an acquirer must wait, ["klock.wait"] (arg = waited ns)
    when a waiter is granted, and ["klock.hold"] spans covering each
    hold. *)

val acquire : t -> hold_ns:int -> (unit -> unit) -> unit
(** Request the lock; once granted, hold it for [hold_ns] and run the
    continuation at release time. Requests are served FIFO. *)

val busy : t -> bool

val queue_length : t -> int
(** Waiters not yet granted (excludes the current holder). *)

val acquisitions : t -> int

val contended_acquisitions : t -> int
(** Acquisitions that had to wait. *)

val total_wait_ns : t -> int
(** Cumulative time spent waiting for the lock. *)

val fault_stalls : t -> int
(** Holder stalls injected through ["klock.holder_stall"]. *)
