type t = {
  syscall_ns : int;
  signal_base_ns : int;
  sighand_lock_hold_ns : int;
  sighand_wake_ns : int;
  signal_dispatch_ns : int;
  signal_noise_mean_ns : int;
  ktimer_floor_ns : int;
  ktimer_jitter_mean_ns : int;
  kernel_cs_ns : int;
  fcontext_swap_ns : int;
  mq_min_ns : int;
  mq_extra_mean_ns : int;
  mq_extra_std_ns : int;
  pipe_min_ns : int;
  pipe_extra_mean_ns : int;
  pipe_extra_std_ns : int;
  eventfd_min_ns : int;
  eventfd_extra_mean_ns : int;
  eventfd_extra_std_ns : int;
}

(* Signal decomposition targets Table IV: min 3.584us, avg 15.325us,
   std 3.478us. min = syscall + base + lock + dispatch; the lognormal
   noise term carries the remaining mean/std. *)
let default =
  {
    syscall_ns = 500;
    signal_base_ns = 1_500;
    sighand_lock_hold_ns = 600;
    sighand_wake_ns = 2_000;
    signal_dispatch_ns = 1_000;
    signal_noise_mean_ns = 11_700;
    ktimer_floor_ns = 60_000;
    ktimer_jitter_mean_ns = 6_000;
    kernel_cs_ns = 1_200;
    fcontext_swap_ns = 40;
    mq_min_ns = 8_960;
    mq_extra_mean_ns = 1_508;
    mq_extra_std_ns = 2_017;
    pipe_min_ns = 10_240;
    pipe_extra_mean_ns = 7_521;
    pipe_extra_std_ns = 4_304;
    eventfd_min_ns = 2_816;
    eventfd_extra_mean_ns = 26_872;
    eventfd_extra_std_ns = 13_612;
  }
