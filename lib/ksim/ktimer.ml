type t = {
  sim : Engine.Sim.t;
  c : Costs.t;
  rng : Engine.Rng.t;
  signal : Signal.t;
  fault_overrun : Fault.point option;
  fault_overrun_ns : int;
  mutable n_expirations : int;
  mutable n_overruns : int;
}

type timer = { mutable live : bool }

let create ?faults ?(fault_overrun_ns = 100_000) sim c ~rng ~signal =
  {
    sim;
    c;
    rng;
    signal;
    fault_overrun = Option.map (fun f -> Fault.point f "ktimer.overrun") faults;
    fault_overrun_ns;
    n_expirations = 0;
    n_overruns = 0;
  }

let effective_interval t interval = max interval t.c.Costs.ktimer_floor_ns

let jitter t =
  let overrun =
    match t.fault_overrun with
    | Some p when Fault.fires p ~now:(Engine.Sim.now t.sim) ->
      t.n_overruns <- t.n_overruns + 1;
      t.fault_overrun_ns
    | Some _ | None -> 0
  in
  overrun
  + int_of_float
      (Engine.Rng.exponential t.rng ~mean:(float_of_int t.c.Costs.ktimer_jitter_mean_ns))

let expire t tm handler =
  if tm.live then begin
    t.n_expirations <- t.n_expirations + 1;
    Signal.deliver t.signal ~handler ()
  end

let arm_oneshot t ~delay_ns ~handler =
  if delay_ns < 0 then invalid_arg "Ktimer.arm_oneshot: negative delay";
  let tm = { live = true } in
  let d = effective_interval t delay_ns + jitter t in
  ignore (Engine.Sim.after t.sim d (fun () -> expire t tm handler));
  tm

let arm_periodic t ~interval_ns ~handler =
  if interval_ns <= 0 then invalid_arg "Ktimer.arm_periodic: non-positive interval";
  let tm = { live = true } in
  let period = effective_interval t interval_ns in
  (* Concurrent arm_periodic calls do not land on the same nanosecond in
     practice; a random phase keeps unrelated timers from aliasing. *)
  let phase = Engine.Rng.int t.rng period in
  let rec schedule first =
    let d = (if first then phase else period) + jitter t in
    ignore
      (Engine.Sim.after t.sim d (fun () ->
           if tm.live then begin
             expire t tm handler;
             schedule false
           end))
  in
  schedule true;
  tm

let cancel tm = tm.live <- false
let overruns t = t.n_overruns
let arm_cost_ns t = t.c.Costs.syscall_ns
let expirations t = t.n_expirations
