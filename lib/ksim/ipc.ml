type mechanism = Signal_ipc | Mq | Pipe | Eventfd | Uintrfd | Uintrfd_blocked

let all = [ Signal_ipc; Mq; Pipe; Eventfd; Uintrfd; Uintrfd_blocked ]

let name = function
  | Signal_ipc -> "signal"
  | Mq -> "mq"
  | Pipe -> "pipe"
  | Eventfd -> "eventFD"
  | Uintrfd -> "uintrFd"
  | Uintrfd_blocked -> "uintrFd (blocked)"

type result = {
  mechanism : string;
  avg_us : float;
  min_us : float;
  std_us : float;
  rate_msg_per_s : float;
}

(* Application-side turnaround between receiving a message and sending
   the next one (loop + store). *)
let app_gap_ns = 50

let summarize mech w total_ns n =
  {
    mechanism = name mech;
    avg_us = Stat.Welford.mean w /. 1e3;
    min_us = Stat.Welford.min_value w /. 1e3;
    std_us = Stat.Welford.stddev w /. 1e3;
    rate_msg_per_s = float_of_int n /. (float_of_int total_ns /. 1e9);
  }

(* Closed-form mechanisms: each round trip costs the calibrated
   [min + lognormal extra]; no event machinery needed. *)
let run_distribution mech rng ~min_ns ~extra_mean_ns ~extra_std_ns ~n =
  let w = Stat.Welford.create () in
  let clock = ref 0 in
  for _ = 1 to n do
    let lat =
      float_of_int min_ns
      +. Lognorm.sample rng ~mean:(float_of_int extra_mean_ns)
           ~std:(float_of_int extra_std_ns)
    in
    Stat.Welford.add w lat;
    clock := !clock + int_of_float lat + app_gap_ns
  done;
  summarize mech w !clock n

let run_signal costs rng ~n =
  let sim = Engine.Sim.create () in
  let signal = Signal.create sim costs ~rng in
  let w = Stat.Welford.create () in
  let remaining = ref n in
  let rec iteration () =
    if !remaining > 0 then begin
      decr remaining;
      let t0 = Engine.Sim.now sim in
      Signal.deliver signal
        ~handler:(fun () ->
          Stat.Welford.add w (float_of_int (Engine.Sim.now sim - t0));
          ignore (Engine.Sim.after sim app_gap_ns iteration))
        ()
    end
  in
  iteration ();
  Engine.Sim.run sim;
  summarize Signal_ipc w (Engine.Sim.now sim) n

(* User-interrupt ping-pong on the real fabric.  Each leg:
   SENDUIPI (sender cost) -> fabric delivery -> handler entry; the
   receiver replies after uiret.  For the blocked variant the responder
   blocks in the kernel between messages, exercising the kernel-assist
   path. *)
let run_uintr hw costs rng ~blocked ~n =
  ignore costs;
  let sim = Engine.Sim.create () in
  let fabric = Hw.Uintr.create sim hw in
  let w = Stat.Welford.create () in
  let remaining = ref n in
  let t0 = ref 0 in
  (* Noise beyond the deterministic pipeline: cache effects, pipeline
     drain. Calibrated so Table IV's avg/std are matched. *)
  let noise_mean, noise_std = if blocked then (345, 212) else (222, 698) in
  let leg_noise () = Lognorm.sample_ns rng ~mean_ns:(noise_mean / 2) ~std_ns:(noise_std * 7 / 10) in
  let entry_exit_ns =
    hw.Hw.Params.uintr_handler_entry_ns + hw.Hw.Params.uintr_uiret_ns
  in
  (* Forward references for the two endpoints. *)
  let send_to_b = ref (fun () -> ()) in
  let send_to_a = ref (fun () -> ()) in
  let block_a = ref (fun () -> ()) in
  let start_iteration () =
    if !remaining > 0 then begin
      decr remaining;
      t0 := Engine.Sim.now sim;
      !send_to_b ();
      (* In the blocked variant each side waits for the reply blocked in
         the kernel, so both legs take the kernel-assist path. *)
      if blocked then !block_a ()
    end
  in
  let a =
    Hw.Uintr.register_receiver fabric ~name:"ping"
      ~handler:(fun _ ~vector:_ ->
        (* Reply received: handler entry + uiret complete the RTT. *)
        ignore
          (Engine.Sim.after sim (entry_exit_ns + leg_noise ()) (fun () ->
               Stat.Welford.add w (float_of_int (Engine.Sim.now sim - !t0));
               ignore (Engine.Sim.after sim app_gap_ns start_iteration))))
      ()
  in
  let b =
    Hw.Uintr.register_receiver fabric ~name:"pong"
      ~handler:(fun r ~vector:_ ->
        ignore
          (Engine.Sim.after sim (entry_exit_ns + leg_noise ()) (fun () ->
               !send_to_a ();
               if blocked then Hw.Uintr.set_state r Hw.Uintr.Blocked)))
      ()
  in
  if blocked then Hw.Uintr.set_state b Hw.Uintr.Blocked;
  (block_a := fun () -> Hw.Uintr.set_state a Hw.Uintr.Blocked);
  let sender_a = Hw.Uintr.create_sender fabric ~name:"ping-tx" () in
  let sender_b = Hw.Uintr.create_sender fabric ~name:"pong-tx" () in
  let idx_ab = Hw.Uintr.connect sender_a b ~vector:1 in
  let idx_ba = Hw.Uintr.connect sender_b a ~vector:1 in
  (send_to_b :=
     fun () ->
       ignore
         (Engine.Sim.after sim
            (Hw.Uintr.send_cost_ns fabric)
            (fun () -> Hw.Uintr.senduipi sender_a idx_ab)));
  (send_to_a :=
     fun () ->
       ignore
         (Engine.Sim.after sim
            (Hw.Uintr.send_cost_ns fabric)
            (fun () -> Hw.Uintr.senduipi sender_b idx_ba)));
  start_iteration ();
  Engine.Sim.run sim;
  summarize (if blocked then Uintrfd_blocked else Uintrfd) w (Engine.Sim.now sim) n

let run_pingpong ?(seed = 1L) ?(costs = Costs.default) ?(hw = Hw.Params.default) mech ~n =
  if n <= 0 then invalid_arg "Ipc.run_pingpong: n must be positive";
  let rng = Engine.Rng.create seed in
  match mech with
  | Signal_ipc -> run_signal costs rng ~n
  | Mq ->
    run_distribution Mq rng ~min_ns:costs.Costs.mq_min_ns
      ~extra_mean_ns:costs.Costs.mq_extra_mean_ns ~extra_std_ns:costs.Costs.mq_extra_std_ns
      ~n
  | Pipe ->
    run_distribution Pipe rng ~min_ns:costs.Costs.pipe_min_ns
      ~extra_mean_ns:costs.Costs.pipe_extra_mean_ns
      ~extra_std_ns:costs.Costs.pipe_extra_std_ns ~n
  | Eventfd ->
    run_distribution Eventfd rng ~min_ns:costs.Costs.eventfd_min_ns
      ~extra_mean_ns:costs.Costs.eventfd_extra_mean_ns
      ~extra_std_ns:costs.Costs.eventfd_extra_std_ns ~n
  | Uintrfd -> run_uintr hw costs rng ~blocked:false ~n
  | Uintrfd_blocked -> run_uintr hw costs rng ~blocked:true ~n

let pp_result fmt r =
  Format.fprintf fmt "%-18s avg=%6.3fus min=%6.3fus std=%6.3fus rate=%.0f msg/s" r.mechanism
    r.avg_us r.min_us r.std_us r.rate_msg_per_s
