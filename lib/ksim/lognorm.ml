let sample rng ~mean ~std =
  if mean <= 0.0 then 0.0
  else begin
    let sigma2 = log (1.0 +. (std *. std /. (mean *. mean))) in
    let mu = log mean -. (sigma2 /. 2.0) in
    Engine.Rng.lognormal rng ~mu ~sigma:(sqrt sigma2)
  end

let sample_ns rng ~mean_ns ~std_ns =
  int_of_float (sample rng ~mean:(float_of_int mean_ns) ~std:(float_of_int std_ns))
