type waiter = { hold_ns : int; k : unit -> unit; enq_at : int }

type t = {
  sim : Engine.Sim.t;
  contended_wake_ns : int;
  fault_stall : Fault.point option;
  fault_stall_ns : int;
  waiting : waiter Queue.t;
  mutable held : bool;
  mutable n_acquisitions : int;
  mutable n_contended : int;
  mutable n_fault_stalls : int;
  mutable wait_ns : int;
}

let create ?(contended_wake_ns = 0) ?faults ?(fault_stall_ns = 50_000) sim =
  {
    sim;
    contended_wake_ns;
    fault_stall = Option.map (fun f -> Fault.point f "klock.holder_stall") faults;
    fault_stall_ns;
    waiting = Queue.create ();
    held = false;
    n_acquisitions = 0;
    n_contended = 0;
    n_fault_stalls = 0;
    wait_ns = 0;
  }

let rec grant t w =
  t.held <- true;
  t.n_acquisitions <- t.n_acquisitions + 1;
  let waited = Engine.Sim.now t.sim - w.enq_at in
  if waited > 0 then t.n_contended <- t.n_contended + 1;
  t.wait_ns <- t.wait_ns + waited;
  (* Fault: the holder is preempted/stalled while holding the lock,
     serializing every queued waiter behind the stall. *)
  let stall =
    match t.fault_stall with
    | Some p when Fault.fires p ~now:(Engine.Sim.now t.sim) ->
      t.n_fault_stalls <- t.n_fault_stalls + 1;
      t.fault_stall_ns
    | Some _ | None -> 0
  in
  let hold = w.hold_ns + stall + (if waited > 0 then t.contended_wake_ns else 0) in
  ignore
    (Engine.Sim.after t.sim hold (fun () ->
         t.held <- false;
         w.k ();
         if (not t.held) && not (Queue.is_empty t.waiting) then
           grant t (Queue.pop t.waiting)))

let acquire t ~hold_ns k =
  if hold_ns < 0 then invalid_arg "Klock.acquire: negative hold";
  let w = { hold_ns; k; enq_at = Engine.Sim.now t.sim } in
  if t.held then Queue.push w t.waiting else grant t w

let busy t = t.held
let fault_stalls t = t.n_fault_stalls
let queue_length t = Queue.length t.waiting
let acquisitions t = t.n_acquisitions
let contended_acquisitions t = t.n_contended
let total_wait_ns t = t.wait_ns
