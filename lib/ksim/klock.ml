type waiter = { hold_ns : int; k : unit -> unit; enq_at : int }

type t = {
  sim : Engine.Sim.t;
  contended_wake_ns : int;
  fault_stall : Fault.point option;
  fault_stall_ns : int;
  trace : Obs.Trace.t option;
  track : int;
  waiting : waiter Queue.t;
  mutable held : bool;
  mutable n_acquisitions : int;
  mutable n_contended : int;
  mutable n_fault_stalls : int;
  mutable wait_ns : int;
}

let create ?(contended_wake_ns = 0) ?faults ?(fault_stall_ns = 50_000) ?trace ?(track = 0)
    sim =
  {
    sim;
    contended_wake_ns;
    fault_stall = Option.map (fun f -> Fault.point f "klock.holder_stall") faults;
    fault_stall_ns;
    trace;
    track;
    waiting = Queue.create ();
    held = false;
    n_acquisitions = 0;
    n_contended = 0;
    n_fault_stalls = 0;
    wait_ns = 0;
  }

let tr_i t ~name ~arg =
  match t.trace with
  | Some trace -> Obs.Trace.instant trace Obs.Trace.Klock ~name ~track:t.track ~arg
  | None -> ()

let rec grant t w =
  t.held <- true;
  t.n_acquisitions <- t.n_acquisitions + 1;
  let waited = Engine.Sim.now t.sim - w.enq_at in
  if waited > 0 then begin
    t.n_contended <- t.n_contended + 1;
    tr_i t ~name:"klock.wait" ~arg:waited
  end;
  t.wait_ns <- t.wait_ns + waited;
  (match t.trace with
  | Some trace ->
    Obs.Trace.span_begin trace Obs.Trace.Klock ~name:"klock.hold" ~track:t.track
      ~arg:w.hold_ns
  | None -> ());
  (* Fault: the holder is preempted/stalled while holding the lock,
     serializing every queued waiter behind the stall. *)
  let stall =
    match t.fault_stall with
    | Some p when Fault.fires p ~now:(Engine.Sim.now t.sim) ->
      t.n_fault_stalls <- t.n_fault_stalls + 1;
      t.fault_stall_ns
    | Some _ | None -> 0
  in
  let hold = w.hold_ns + stall + (if waited > 0 then t.contended_wake_ns else 0) in
  ignore
    (Engine.Sim.after t.sim hold (fun () ->
         t.held <- false;
         (match t.trace with
         | Some trace ->
           Obs.Trace.span_end trace Obs.Trace.Klock ~name:"klock.hold" ~track:t.track
         | None -> ());
         w.k ();
         if (not t.held) && not (Queue.is_empty t.waiting) then
           grant t (Queue.pop t.waiting)))

let acquire t ~hold_ns k =
  if hold_ns < 0 then invalid_arg "Klock.acquire: negative hold";
  let w = { hold_ns; k; enq_at = Engine.Sim.now t.sim } in
  if t.held then begin
    Queue.push w t.waiting;
    tr_i t ~name:"klock.enqueue" ~arg:(Queue.length t.waiting)
  end
  else grant t w

let busy t = t.held
let fault_stalls t = t.n_fault_stalls
let queue_length t = Queue.length t.waiting
let acquisitions t = t.n_acquisitions
let contended_acquisitions t = t.n_contended
let total_wait_ns t = t.wait_ns
