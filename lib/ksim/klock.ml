let noop () = ()

type waiter = { hold_ns : int; k : unit -> unit; enq_at : int }

type t = {
  sim : Engine.Sim.t;
  contended_wake_ns : int;
  fault_stall : Fault.point option;
  fault_stall_ns : int;
  trace : Obs.Trace.t option;
  track : int;
  waiting : waiter Queue.t;
  mutable held : bool;
  mutable cur_k : unit -> unit; (* current holder's continuation *)
  mutable k_release : unit -> unit; (* preallocated release callback *)
  mutable n_acquisitions : int;
  mutable n_contended : int;
  mutable n_fault_stalls : int;
  mutable wait_ns : int;
}

let tr_i t ~name ~arg =
  match t.trace with
  | Some trace -> Obs.Trace.instant trace Obs.Trace.Klock ~name ~track:t.track ~arg
  | None -> ()

(* Grant the lock for [hold_ns] to continuation [k] that enqueued at
   [enq_at].  The uncontended path builds no waiter record and the
   release event reuses the preallocated [k_release] closure, so an
   uncontended acquire/release cycle allocates nothing (DESIGN §9). *)
let rec grant t ~hold_ns ~enq_at k =
  t.held <- true;
  t.n_acquisitions <- t.n_acquisitions + 1;
  let waited = Engine.Sim.now t.sim - enq_at in
  if waited > 0 then begin
    t.n_contended <- t.n_contended + 1;
    tr_i t ~name:"klock.wait" ~arg:waited
  end;
  t.wait_ns <- t.wait_ns + waited;
  (match t.trace with
  | Some trace ->
    Obs.Trace.span_begin trace Obs.Trace.Klock ~name:"klock.hold" ~track:t.track
      ~arg:hold_ns
  | None -> ());
  (* Fault: the holder is preempted/stalled while holding the lock,
     serializing every queued waiter behind the stall. *)
  let stall =
    match t.fault_stall with
    | Some p when Fault.fires p ~now:(Engine.Sim.now t.sim) ->
      t.n_fault_stalls <- t.n_fault_stalls + 1;
      t.fault_stall_ns
    | Some _ | None -> 0
  in
  let hold = hold_ns + stall + (if waited > 0 then t.contended_wake_ns else 0) in
  t.cur_k <- k;
  ignore (Engine.Sim.after t.sim hold t.k_release)

and release t =
  t.held <- false;
  (match t.trace with
  | Some trace ->
    Obs.Trace.span_end trace Obs.Trace.Klock ~name:"klock.hold" ~track:t.track
  | None -> ());
  let k = t.cur_k in
  (* Drop the continuation before running it: [k] may re-acquire. *)
  t.cur_k <- noop;
  k ();
  if (not t.held) && not (Queue.is_empty t.waiting) then begin
    let w = Queue.pop t.waiting in
    grant t ~hold_ns:w.hold_ns ~enq_at:w.enq_at w.k
  end

let create ?(contended_wake_ns = 0) ?faults ?(fault_stall_ns = 50_000) ?trace ?(track = 0)
    sim =
  let t =
    {
      sim;
      contended_wake_ns;
      fault_stall = Option.map (fun f -> Fault.point f "klock.holder_stall") faults;
      fault_stall_ns;
      trace;
      track;
      waiting = Queue.create ();
      held = false;
      cur_k = noop;
      k_release = noop;
      n_acquisitions = 0;
      n_contended = 0;
      n_fault_stalls = 0;
      wait_ns = 0;
    }
  in
  t.k_release <- (fun () -> release t);
  t

let acquire t ~hold_ns k =
  if hold_ns < 0 then invalid_arg "Klock.acquire: negative hold";
  if t.held then begin
    Queue.push { hold_ns; k; enq_at = Engine.Sim.now t.sim } t.waiting;
    tr_i t ~name:"klock.enqueue" ~arg:(Queue.length t.waiting)
  end
  else grant t ~hold_ns ~enq_at:(Engine.Sim.now t.sim) k

let busy t = t.held
let fault_stalls t = t.n_fault_stalls
let queue_length t = Queue.length t.waiting
let acquisitions t = t.n_acquisitions
let contended_acquisitions t = t.n_contended
let total_wait_ns t = t.wait_ns
