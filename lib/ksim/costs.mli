(** Kernel-path cost parameters.

    Like {!Hw.Params}, these are calibration inputs with provenance:
    the signal / IPC costs derive from Table IV of the paper, the
    kernel-timer behaviour from Fig 12, and the context-switch costs
    from the systems literature the paper builds on (fcontext swaps are
    tens of ns; kernel thread switches are ~1–2 µs). *)

type t = {
  syscall_ns : int;  (** bare syscall entry/exit *)
  signal_base_ns : int;
      (** fixed kernel work to generate + dequeue a signal, excluding
          the sighand lock (Table IV: signal min 3.58 µs total) *)
  sighand_lock_hold_ns : int;
      (** time the kernel holds the per-process sighand lock per
          delivery — the contention point behind Fig 11's superlinear
          per-thread timer scaling *)
  sighand_wake_ns : int;
      (** extra serialized cost when the lock was contended (futex
          sleep/wake + scheduler hop) *)
  signal_dispatch_ns : int;
      (** frame setup + handler entry + sigreturn on the receiver *)
  signal_noise_mean_ns : int;
      (** mean of the heavy-tailed kernel jitter added per delivery
          (scheduling, softirq interference); brings the signal average
          to Table IV's 15.3 µs *)
  ktimer_floor_ns : int;
      (** smallest effective period a kernel timer honours (Fig 12
          shows a ~60 µs line when 20 µs was requested) *)
  ktimer_jitter_mean_ns : int;
      (** mean absolute jitter of kernel timer expiries *)
  kernel_cs_ns : int;  (** kernel thread context switch *)
  fcontext_swap_ns : int;  (** user-level fcontext swap (Sec IV-B) *)
  (* One-way latency models for the remaining Table IV mechanisms:
     [`min` + lognormal] with the given mean/std of the extra part. *)
  mq_min_ns : int;
  mq_extra_mean_ns : int;
  mq_extra_std_ns : int;
  pipe_min_ns : int;
  pipe_extra_mean_ns : int;
  pipe_extra_std_ns : int;
  eventfd_min_ns : int;
  eventfd_extra_mean_ns : int;
  eventfd_extra_std_ns : int;
}

val default : t
