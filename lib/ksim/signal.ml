type t = {
  sim : Engine.Sim.t;
  c : Costs.t;
  rng : Engine.Rng.t;
  klock : Klock.t;
  mutable n_delivered : int;
}

let create ?trace ?(lock_track = 0) sim c ~rng =
  {
    sim;
    c;
    rng;
    klock = Klock.create ~contended_wake_ns:c.Costs.sighand_wake_ns ?trace ~track:lock_track sim;
    n_delivered = 0;
  }

let deliver t ?(jitter = true) ~handler () =
  let c = t.c in
  (* Sender: kernel entry + signal generation. *)
  ignore
    (Engine.Sim.after t.sim
       (c.Costs.syscall_ns + c.Costs.signal_base_ns)
       (fun () ->
         (* Kernel: serialize on the sighand lock. *)
         Klock.acquire t.klock ~hold_ns:c.Costs.sighand_lock_hold_ns (fun () ->
             (* Receiver: dispatch + optional kernel jitter. *)
             let noise =
               if jitter then
                 Lognorm.sample_ns t.rng ~mean_ns:c.Costs.signal_noise_mean_ns
                   ~std_ns:(c.Costs.signal_noise_mean_ns * 3 / 10)
               else 0
             in
             ignore
               (Engine.Sim.after t.sim
                  (c.Costs.signal_dispatch_ns + noise)
                  (fun () ->
                    t.n_delivered <- t.n_delivered + 1;
                    handler ())))))

let lock t = t.klock

let min_latency_ns t =
  t.c.Costs.syscall_ns + t.c.Costs.signal_base_ns + t.c.Costs.sighand_lock_hold_ns
  + t.c.Costs.signal_dispatch_ns

let delivered t = t.n_delivered
