type config = {
  n_workers : int;
  quantum_ns : int;
  costs : Ksim.Costs.t;
  hw : Hw.Params.t;
  seed : int64;
}

let default_config ~n_workers ~quantum_ns =
  { n_workers; quantum_ns; costs = Ksim.Costs.default; hw = Hw.Params.default; seed = 42L }

let to_server_config c =
  let base =
    Preemptible.Server.default_config ~n_workers:c.n_workers
      ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:c.quantum_ns)
      ~mechanism:Preemptible.Server.Kernel_timer
  in
  { base with Preemptible.Server.costs = c.costs; hw = c.hw; seed = c.seed }

let run ?probes ?warmup_ns c ~arrival ~source ~duration_ns =
  Preemptible.Server.run ?probes ?warmup_ns (to_server_config c) ~arrival ~source
    ~duration_ns

let effective_quantum_ns c = max c.quantum_ns c.costs.Ksim.Costs.ktimer_floor_ns
