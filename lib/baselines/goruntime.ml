type config = {
  n_workers : int;
  quantum_ns : int;
  costs : Ksim.Costs.t;
  hw : Hw.Params.t;
  seed : int64;
}

let default_config ~n_workers =
  {
    n_workers;
    quantum_ns = Engine.Units.ms 10;
    costs = Ksim.Costs.default;
    hw = Hw.Params.default;
    seed = 42L;
  }

let run ?probes ?warmup_ns c ~arrival ~source ~duration_ns =
  let base =
    Preemptible.Server.default_config ~n_workers:c.n_workers
      ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:c.quantum_ns)
      ~mechanism:Preemptible.Server.Kernel_timer
  in
  let cfg = { base with Preemptible.Server.costs = c.costs; hw = c.hw; seed = c.seed } in
  Preemptible.Server.run ?probes ?warmup_ns cfg ~arrival ~source ~duration_ns
