(** Shinjuku baseline (Kaffes et al., NSDI'19) — the paper's main
    comparison system.

    Shinjuku runs a {e centralized} scheduler on a dedicated dispatcher
    core: one global FIFO queue, workers receive work only from the
    dispatcher, and preemption is triggered by the dispatcher posting an
    IPI through a directly-mapped APIC when it observes a worker
    exceeding the time quantum.  Consequences modeled here:

    - scheduling/preemption granularity is bounded by the dispatcher's
      scan loop (base cost + per-worker check each iteration);
    - every preemption costs an IPI send (dispatcher), IPI delivery and
      a receiver-side trampoline + context switch (worker) — several
      times LibPreemptible's UINTR path;
    - preempted requests return to the tail of the central queue;
    - the number of workers is limited by the APIC mapping
      ({!Hw.Params.t.apic_max_cores});
    - the quantum is static and must be profiled per workload. *)

type config = {
  n_workers : int;
  quantum_ns : int;  (** [max_int] disables preemption *)
  loop_base_ns : int;  (** dispatcher loop fixed cost per iteration *)
  per_worker_check_ns : int;  (** dispatcher cost to inspect one worker *)
  assign_cost_ns : int;  (** dispatcher cost to hand a request to a worker *)
  worker_preempt_cost_ns : int;
      (** receiver-side trampoline + context save + rescheduling work on
          preemption; calibrated against the preemption overheads the
          LibPreemptible paper reports for Shinjuku (Fig 1 right, and
          the implied per-preemption cost behind its Fig 8 workload-C
          throughput) *)
  net_cost_ns : int;  (** network-thread cost per arriving request *)
  costs : Ksim.Costs.t;
  hw : Hw.Params.t;
  seed : int64;
  max_events : int;
}

val default_config : n_workers:int -> quantum_ns:int -> config

val run :
  ?probes:Preemptible.Server.probes ->
  ?warmup_ns:int ->
  config ->
  arrival:Workload.Arrival.t ->
  source:Workload.Source.t ->
  duration_ns:int ->
  Preemptible.Server.result
(** Same contract as {!Preemptible.Server.run}. *)
