type strategy = Creation_time | Staggered | Chained | Userspace_timer

let all = [ Creation_time; Staggered; Chained; Userspace_timer ]

let name = function
  | Creation_time -> "per-thread (creation-time)"
  | Staggered -> "per-thread (staggered)"
  | Chained -> "per-process (chained)"
  | Userspace_timer -> "per-thread (LibUtimer)"

type overhead_result = {
  strategy : string;
  threads : int;
  mean_overhead_us : float;
  p99_overhead_us : float;
  max_overhead_us : float;
}

type precision_result = {
  source : string;
  target_ns : int;
  mean_gap_us : float;
  std_gap_us : float;
  p99_gap_us : float;
  rel_error : float;
  sample_gaps_us : float array;
}

let summarize_overhead strategy threads (s : Stat.Summary.t) =
  let r = Stat.Summary.report s in
  {
    strategy = name strategy;
    threads;
    mean_overhead_us = r.Stat.Summary.mean /. 1e3;
    p99_overhead_us = r.Stat.Summary.p99 /. 1e3;
    max_overhead_us = r.Stat.Summary.max /. 1e3;
  }

(* Signal-based strategies: expiries land in the kernel at their
   intended times; delivery then flows through the shared signal path
   (sighand lock + dispatch + jitter). *)
let signal_overhead strategy costs seed ~threads ~interval_ns ~rounds =
  let sim = Engine.Sim.create ~seed () in
  let signal = Ksim.Signal.create sim costs ~rng:(Engine.Sim.fork_rng sim) in
  let stat = Stat.Summary.create () in
  let record ~intended () =
    Stat.Summary.record stat (float_of_int (Engine.Sim.now sim - intended))
  in
  (match strategy with
  | Creation_time | Staggered ->
    let phase i =
      match strategy with
      | Staggered -> i * interval_ns / threads
      | Creation_time | Chained | Userspace_timer -> 0
    in
    for i = 0 to threads - 1 do
      for k = 1 to rounds do
        let intended = (k * interval_ns) + phase i in
        ignore
          (Engine.Sim.at sim intended (fun () ->
               Ksim.Signal.deliver signal ~handler:(record ~intended) ()))
      done
    done
  | Chained ->
    (* One kernel timer; thread 0 receives the signal and forwards it
       thread-to-thread.  Each hop is a tgkill to a thread known to be
       running: the fast, contention-free signal path (the chain is
       sequential, so the sighand lock is never contended) — about 2 µs
       per hop. *)
    let hop_ns =
      costs.Ksim.Costs.syscall_ns + costs.Ksim.Costs.sighand_lock_hold_ns + 900
    in
    for k = 1 to rounds do
      let intended = k * interval_ns in
      let rec hop i () =
        record ~intended ();
        if i + 1 < threads then
          ignore (Engine.Sim.after sim hop_ns (hop (i + 1)))
      in
      ignore
        (Engine.Sim.at sim intended (fun () ->
             Ksim.Signal.deliver signal ~handler:(hop 0) ()))
    done
  | Userspace_timer -> assert false);
  Engine.Sim.run sim;
  summarize_overhead strategy threads stat

let utimer_overhead hw seed ~threads ~interval_ns ~rounds =
  let sim = Engine.Sim.create ~seed () in
  let fabric = Hw.Uintr.create sim hw in
  let ut = Utimer.create sim ~uintr:fabric () in
  let stat = Stat.Summary.create () in
  let remaining = Array.make threads rounds in
  let intended = Array.make threads 0 in
  let slots = Array.make threads None in
  for i = 0 to threads - 1 do
    let receiver =
      Hw.Uintr.register_receiver fabric
        ~name:(Printf.sprintf "t%d" i)
        ~handler:(fun _ ~vector:_ ->
          Stat.Summary.record stat (float_of_int (Engine.Sim.now sim - intended.(i)));
          remaining.(i) <- remaining.(i) - 1;
          if remaining.(i) > 0 then begin
            intended.(i) <- intended.(i) + interval_ns;
            match slots.(i) with
            | Some slot -> Utimer.arm_at slot ~time_ns:intended.(i)
            | None -> ()
          end)
        ()
    in
    let slot = Utimer.register ut ~receiver ~vector:0 in
    slots.(i) <- Some slot;
    intended.(i) <- interval_ns;
    Utimer.arm_at slot ~time_ns:interval_ns
  done;
  Utimer.start ut;
  (* Stop the poll loop once every thread finished its rounds. *)
  let rec watchdog () =
    if Array.exists (fun r -> r > 0) remaining then
      ignore (Engine.Sim.after sim interval_ns watchdog)
    else Utimer.stop ut
  in
  watchdog ();
  Engine.Sim.run sim;
  summarize_overhead Userspace_timer threads stat

let delivery_overhead ?(seed = 11L) ?(costs = Ksim.Costs.default) ?(hw = Hw.Params.default)
    strategy ~threads ~interval_ns ~rounds =
  if threads <= 0 || rounds <= 0 || interval_ns <= 0 then
    invalid_arg "Timer_strategies.delivery_overhead: non-positive parameter";
  match strategy with
  | Userspace_timer -> utimer_overhead hw seed ~threads ~interval_ns ~rounds
  | Creation_time | Staggered | Chained ->
    signal_overhead strategy costs seed ~threads ~interval_ns ~rounds

(* ------------------------------------------------------------------ *)
(* Precision (Fig 12)                                                  *)
(* ------------------------------------------------------------------ *)

let subsample arr n =
  let len = Array.length arr in
  if len <= n then Array.copy arr
  else Array.init n (fun i -> arr.(i * len / n))

let finish_precision ~source ~target_ns gaps =
  let stat = Stat.Summary.create () in
  Array.iter (Stat.Summary.record stat) gaps;
  let r = Stat.Summary.report stat in
  {
    source;
    target_ns;
    mean_gap_us = r.Stat.Summary.mean /. 1e3;
    std_gap_us = r.Stat.Summary.stddev /. 1e3;
    p99_gap_us = r.Stat.Summary.p99 /. 1e3;
    rel_error = abs_float (r.Stat.Summary.mean -. float_of_int target_ns) /. float_of_int target_ns;
    sample_gaps_us = Array.map (fun g -> g /. 1e3) (subsample gaps 500);
  }

let precision ?(seed = 13L) ?(costs = Ksim.Costs.default) ?(hw = Hw.Params.default) source
    ~threads ~target_ns ~samples =
  if threads <= 0 || target_ns <= 0 || samples <= 0 then
    invalid_arg "Timer_strategies.precision: non-positive parameter";
  match source with
  | `Kernel_timer ->
    let sim = Engine.Sim.create ~seed () in
    let signal = Ksim.Signal.create sim costs ~rng:(Engine.Sim.fork_rng sim) in
    let ktimer = Ksim.Ktimer.create sim costs ~rng:(Engine.Sim.fork_rng sim) ~signal in
    let gaps = ref [] and count = ref 0 and last = ref 0 in
    let timers =
      Array.init threads (fun i ->
          Ksim.Ktimer.arm_periodic ktimer ~interval_ns:target_ns ~handler:(fun () ->
              if i = 0 then begin
                let t = Engine.Sim.now sim in
                if !last > 0 && !count < samples then begin
                  gaps := float_of_int (t - !last) :: !gaps;
                  incr count
                end;
                last := t
              end))
    in
    (* Run until thread 0 has collected its samples, then cancel all. *)
    let rec watchdog () =
      if !count < samples then ignore (Engine.Sim.after sim target_ns watchdog)
      else Array.iter Ksim.Ktimer.cancel timers
    in
    watchdog ();
    Engine.Sim.run sim;
    finish_precision ~source:"kernel-timer" ~target_ns
      (Array.of_list (List.rev !gaps))
  | `Utimer ->
    let sim = Engine.Sim.create ~seed () in
    let fabric = Hw.Uintr.create sim hw in
    let config =
      (* Background activity injected into the timer core (stress-ng). *)
      { Utimer.default_config with contention_mean_ns = 2_000; contention_prob = 0.05 }
    in
    let ut = Utimer.create sim ~uintr:fabric ~config () in
    let gaps = ref [] and count = ref 0 and last = ref 0 in
    let slots = Array.make threads None in
    let intended = Array.make threads target_ns in
    for i = 0 to threads - 1 do
      let receiver =
        Hw.Uintr.register_receiver fabric
          ~name:(Printf.sprintf "t%d" i)
          ~handler:(fun _ ~vector:_ ->
            let t = Engine.Sim.now sim in
            if i = 0 then begin
              if !last > 0 && !count < samples then begin
                gaps := float_of_int (t - !last) :: !gaps;
                incr count
              end;
              last := t
            end;
            if !count < samples then begin
              (* Periodic semantics: the next deadline advances from the
                 intended schedule, so delivery latency does not
                 accumulate into the period. *)
              intended.(i) <- intended.(i) + target_ns;
              match slots.(i) with
              | Some slot -> Utimer.arm_at slot ~time_ns:intended.(i)
              | None -> ()
            end)
          ()
      in
      let slot = Utimer.register ut ~receiver ~vector:0 in
      slots.(i) <- Some slot;
      Utimer.arm_at slot ~time_ns:intended.(i)
    done;
    Utimer.start ut;
    let rec watchdog () =
      if !count < samples then ignore (Engine.Sim.after sim target_ns watchdog)
      else Utimer.stop ut
    in
    watchdog ();
    Engine.Sim.run sim;
    finish_precision ~source:"LibUtimer" ~target_ns (Array.of_list (List.rev !gaps))
