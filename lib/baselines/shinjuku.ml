type config = {
  n_workers : int;
  quantum_ns : int;
  loop_base_ns : int;
  per_worker_check_ns : int;
  assign_cost_ns : int;
  worker_preempt_cost_ns : int;
  net_cost_ns : int;
  costs : Ksim.Costs.t;
  hw : Hw.Params.t;
  seed : int64;
  max_events : int;
}

let default_config ~n_workers ~quantum_ns =
  {
    n_workers;
    quantum_ns;
    loop_base_ns = 110;
    per_worker_check_ns = 60;
    assign_cost_ns = 150;
    worker_preempt_cost_ns = 2_300;
    net_cost_ns = 250;
    costs = Ksim.Costs.default;
    hw = Hw.Params.default;
    seed = 42L;
    max_events = 400_000_000;
  }

type item = New of Workload.Request.t | Requeued of Preemptible.Fn.t

type worker = {
  wid : int;
  core : Hw.Core.t;
  ipi : Hw.Ipi.target;
  mutable current : Preemptible.Fn.t option;
  mutable deadline : int;
  mutable ipi_pending : bool;
  mutable starting : bool; (* assignment in flight *)
}

type st = {
  sim : Engine.Sim.t;
  cfg : config;
  arrival_rng : Engine.Rng.t;
  service_rng : Engine.Rng.t;
  ipi_fabric : Hw.Ipi.t;
  mutable workers : worker array;
  central_q : item Preemptible.Rqueue.t;
  pool : Preemptible.Context.t;
  sum_all : Stat.Summary.t;
  sum_lc : Stat.Summary.t;
  sum_be : Stat.Summary.t;
  window : Preemptible.Stats_window.t;
  probes : Preemptible.Server.probes;
  warmup_ns : int;
  duration_ns : int;
  mutable outstanding : int;
  mutable arrivals_done : bool;
  mutable loop_running : bool;
  mutable measured_offered : int;
  mutable measured_completed : int;
  mutable completed_in_window : int;
  mutable preemptions : int;
  mutable spurious : int;
  mutable ipis_sent : int;
  mutable next_id : int;
  mutable window_ev : Engine.Sim.event option;
}

let now st = Engine.Sim.now st.sim

let measured st (req : Workload.Request.t) = req.Workload.Request.arrival_ns >= st.warmup_ns

let record_completion st (fn : Preemptible.Fn.t) =
  let t = now st in
  let req = Preemptible.Fn.request fn in
  let latency = t - req.Workload.Request.arrival_ns in
  Preemptible.Stats_window.note_completion st.window ~now:t ~latency_ns:latency
    ~service_ns:req.Workload.Request.service_ns;
  if measured st req then begin
    st.measured_completed <- st.measured_completed + 1;
    if t <= st.duration_ns then st.completed_in_window <- st.completed_in_window + 1;
    Stat.Summary.record st.sum_all (float_of_int latency);
    (match req.Workload.Request.cls with
    | Workload.Request.Latency_critical -> Stat.Summary.record st.sum_lc (float_of_int latency)
    | Workload.Request.Best_effort -> Stat.Summary.record st.sum_be (float_of_int latency));
    st.probes.Preemptible.Server.on_complete ~now:t ~latency_ns:latency
      ~cls:req.Workload.Request.cls
  end

(* ------------------------------------------------------------------ *)
(* Worker side                                                         *)
(* ------------------------------------------------------------------ *)

let complete st w fn =
  record_completion st fn;
  Preemptible.Fn.note_progress fn ~executed_ns:(Preemptible.Fn.remaining_ns fn);
  Preemptible.Fn.complete fn;
  Preemptible.Context.release st.pool (Preemptible.Fn.context fn);
  st.outstanding <- st.outstanding - 1;
  w.current <- None;
  w.deadline <- max_int

(* IPI handler: runs on the worker when the dispatcher's posted
   interrupt is delivered. *)
let on_ipi st w () =
  w.ipi_pending <- false;
  match w.current with
  | Some fn when Hw.Core.busy w.core && now st >= w.deadline ->
    st.preemptions <- st.preemptions + 1;
    let executed = Hw.Core.abort w.core in
    Preemptible.Fn.note_progress fn ~executed_ns:executed;
    Preemptible.Fn.preempt fn;
    w.current <- None;
    w.deadline <- max_int;
    (* Trampoline + context save happen on the worker before it is
       ready for the next assignment; the dispatcher's next scan will
       see it idle only after that. *)
    w.starting <- true;
    ignore
      (Engine.Sim.after st.sim st.cfg.worker_preempt_cost_ns (fun () ->
           w.starting <- false;
           Preemptible.Rqueue.push st.central_q ~now:(now st) (Requeued fn)))
  | Some _ when Hw.Core.busy w.core ->
    (* Stale IPI (quantum raced with completion/assignment). *)
    st.spurious <- st.spurious + 1;
    Hw.Core.stall w.core st.cfg.worker_preempt_cost_ns
  | Some _ | None -> st.spurious <- st.spurious + 1

let start_on_worker st w fn =
  let t = now st in
  let quantum = st.cfg.quantum_ns in
  w.deadline <- (if quantum = max_int then max_int else t + quantum);
  Hw.Core.begin_work w.core
    ~duration:(Preemptible.Fn.remaining_ns fn)
    ~on_done:(fun () -> complete st w fn)

(* ------------------------------------------------------------------ *)
(* Dispatcher loop                                                     *)
(* ------------------------------------------------------------------ *)

let rec dispatcher_iteration st =
  if st.outstanding = 0 then st.loop_running <- false
  else begin
    let t = now st in
    let cost = ref st.cfg.loop_base_ns in
    (* Scan workers for quantum overruns. *)
    Array.iter
      (fun w ->
        cost := !cost + st.cfg.per_worker_check_ns;
        match w.current with
        | Some _
          when Hw.Core.busy w.core && (not w.ipi_pending) && t >= w.deadline
               && w.deadline <> max_int ->
          w.ipi_pending <- true;
          st.ipis_sent <- st.ipis_sent + 1;
          cost := !cost + Hw.Ipi.send_cost_ns st.ipi_fabric;
          let send_at = t + !cost in
          let target = w.ipi in
          ignore (Engine.Sim.at st.sim send_at (fun () -> Hw.Ipi.send st.ipi_fabric target))
        | Some _ | None -> ())
      st.workers;
    (* Hand queued work to idle workers. *)
    Array.iter
      (fun w ->
        if
          w.current = None && (not w.starting)
          && not (Preemptible.Rqueue.is_empty st.central_q)
        then begin
          match Preemptible.Rqueue.pop st.central_q ~now:t with
          | None -> ()
          | Some item ->
            cost := !cost + st.cfg.assign_cost_ns;
            let start_at = t + !cost in
            w.starting <- true;
            (match item with
            | New req ->
              let ctx = Preemptible.Context.alloc st.pool in
              let fn = Preemptible.Fn.create req ~ctx in
              w.current <- Some fn;
              ignore
                (Engine.Sim.at st.sim start_at (fun () ->
                     w.starting <- false;
                     Preemptible.Fn.launch fn ~now:(now st) ~quantum_ns:st.cfg.quantum_ns;
                     start_on_worker st w fn))
            | Requeued fn ->
              w.current <- Some fn;
              let resume_at = start_at + st.cfg.costs.Ksim.Costs.fcontext_swap_ns in
              ignore
                (Engine.Sim.at st.sim resume_at (fun () ->
                     w.starting <- false;
                     Preemptible.Fn.resume fn ~now:(now st) ~quantum_ns:st.cfg.quantum_ns;
                     start_on_worker st w fn)))
          end)
      st.workers;
    ignore (Engine.Sim.after st.sim !cost (fun () -> dispatcher_iteration st))
  end

let kick_dispatcher st =
  if not st.loop_running then begin
    st.loop_running <- true;
    dispatcher_iteration st
  end

(* ------------------------------------------------------------------ *)
(* Arrivals                                                            *)
(* ------------------------------------------------------------------ *)

let arrivals st ~arrival ~source =
  let rec next_arrival () =
    let t = now st in
    let gap = Workload.Arrival.next_gap arrival st.arrival_rng ~now:t in
    let at = t + gap in
    if at >= st.duration_ns then
      ignore (Engine.Sim.at st.sim st.duration_ns (fun () -> st.arrivals_done <- true))
    else
      ignore
        (Engine.Sim.at st.sim at (fun () ->
             let service_ns, cls = Workload.Source.draw source st.service_rng ~now:at in
             let req = Workload.Request.make ~id:st.next_id ~arrival_ns:at ~service_ns ~cls in
             st.next_id <- st.next_id + 1;
             st.outstanding <- st.outstanding + 1;
             if measured st req then st.measured_offered <- st.measured_offered + 1;
             Preemptible.Stats_window.note_arrival st.window ~now:at;
             Preemptible.Stats_window.note_qlen st.window
               (Preemptible.Rqueue.length st.central_q);
             ignore
               (Engine.Sim.after st.sim st.cfg.net_cost_ns (fun () ->
                    Preemptible.Rqueue.push st.central_q ~now:(now st) (New req);
                    kick_dispatcher st));
             next_arrival ()))
  in
  next_arrival ()

let window_loop st window_ns =
  let rec tick () =
    st.window_ev <-
      Some
        (Engine.Sim.after st.sim window_ns (fun () ->
             if not (st.arrivals_done && st.outstanding = 0) then begin
               let t = now st in
               let snapshot = Preemptible.Stats_window.roll st.window ~now:t in
               st.probes.Preemptible.Server.on_window snapshot ~quantum_ns:st.cfg.quantum_ns;
               tick ()
             end))
  in
  tick ()

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let run ?(probes = Preemptible.Server.no_probes) ?(warmup_ns = 0) cfg ~arrival ~source
    ~duration_ns =
  if cfg.n_workers <= 0 then invalid_arg "Shinjuku.run: need at least one worker";
  if cfg.n_workers > cfg.hw.Hw.Params.apic_max_cores then
    invalid_arg "Shinjuku.run: worker count exceeds the APIC mapping limit";
  if duration_ns <= 0 then invalid_arg "Shinjuku.run: non-positive duration";
  if warmup_ns < 0 || warmup_ns >= duration_ns then
    invalid_arg "Shinjuku.run: warmup must lie within the run";
  let sim = Engine.Sim.create ~seed:cfg.seed () in
  let ipi_fabric = Hw.Ipi.create sim cfg.hw in
  let st =
    {
      sim;
      cfg;
      arrival_rng = Engine.Sim.fork_rng sim;
      service_rng = Engine.Sim.fork_rng sim;
      ipi_fabric;
      workers = [||];
      central_q = Preemptible.Rqueue.create ~name:"central";
      pool = Preemptible.Context.create_pool ~capacity:8192 ~stack_kb:16;
      sum_all = Stat.Summary.create ();
      sum_lc = Stat.Summary.create ();
      sum_be = Stat.Summary.create ();
      window = Preemptible.Stats_window.create ~window_ns:(Engine.Units.ms 100);
      probes;
      warmup_ns;
      duration_ns;
      outstanding = 0;
      arrivals_done = false;
      loop_running = false;
      measured_offered = 0;
      measured_completed = 0;
      completed_in_window = 0;
      preemptions = 0;
      spurious = 0;
      ipis_sent = 0;
      next_id = 0;
      window_ev = None;
    }
  in
  st.workers <-
    Array.init cfg.n_workers (fun wid ->
        let wref = ref None in
        let handler () = match !wref with Some w -> on_ipi st w () | None -> () in
        let w =
          {
            wid;
            core = Hw.Core.create sim ~id:wid;
            ipi = Hw.Ipi.register ipi_fabric ~handler;
            current = None;
            deadline = max_int;
            ipi_pending = false;
            starting = false;
          }
        in
        wref := Some w;
        w);
  arrivals st ~arrival ~source;
  window_loop st (Engine.Units.ms 100);
  Engine.Sim.run ~max_events:cfg.max_events sim;
  (match st.window_ev with Some ev -> Engine.Sim.cancel ev | None -> ());
  if st.outstanding > 0 then
    failwith
      (Printf.sprintf "Shinjuku.run: event cap (%d) hit with %d requests outstanding"
         cfg.max_events st.outstanding);
  if st.measured_completed = 0 then failwith "Shinjuku.run: no measured completions";
  let measured_ns = duration_ns - warmup_ns in
  let final = Engine.Sim.now sim in
  let busy = Array.fold_left (fun acc w -> acc + Hw.Core.busy_ns w.core) 0 st.workers in
  {
    Preemptible.Server.duration_ns;
    measured_ns;
    offered = st.measured_offered;
    completed = st.measured_completed;
    cancelled = 0;
    dropped = 0;
    shed = 0;
    goodput = st.measured_completed;
    goodput_rps = float_of_int st.completed_in_window *. 1e9 /. float_of_int measured_ns;
    all = Stat.Summary.report st.sum_all;
    lc =
      (if Stat.Summary.count st.sum_lc = 0 then None else Some (Stat.Summary.report st.sum_lc));
    be =
      (if Stat.Summary.count st.sum_be = 0 then None else Some (Stat.Summary.report st.sum_be));
    throughput_rps = float_of_int st.completed_in_window *. 1e9 /. float_of_int measured_ns;
    offered_rps = float_of_int st.measured_offered *. 1e9 /. float_of_int measured_ns;
    preemptions = st.preemptions;
    timer_interrupts = st.ipis_sent;
    spurious_interrupts = st.spurious;
    ctx_high_water = Preemptible.Context.high_water st.pool;
    worker_busy_frac =
      (if final = 0 then 0.0
       else float_of_int busy /. (float_of_int cfg.n_workers *. float_of_int final));
    long_queue_hwm = Preemptible.Rqueue.max_length st.central_q;
    dispatch_queue_hwm = 0;
    sim_events = Engine.Sim.events_fired st.sim;
    resilience = None;
    guard = None;
    trace = None;
    metrics = [];
    telemetry = None;
  }
