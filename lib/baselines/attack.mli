(** Interrupt-storm denial-of-service scenarios (Sec VII-A/B).

    The paper argues LibPreemptible shrinks the attack surface of user
    interrupts: native UINTR's eventfd-like trust model lets any holder
    of a [uintr_fd] flood the receiver, and Shinjuku's directly-mapped
    APIC lets a buggy runtime IPI-flood {e any} core, while
    LibPreemptible configures UITT entries only between the timer core
    and its workers, so an attacker's SENDUIPI has no entry to use.

    These experiments measure a victim core's throughput and tail
    latency under an interrupt storm in each trust model. *)

type scenario =
  | Native_uintr_storm
      (** attacker holds the victim's uintr_fd and posts freely *)
  | Libpreemptible_storm
      (** attacker runs in another trust domain; its UITT has no entry
          for the victim, so the storm never lands *)
  | Shinjuku_apic_storm
      (** attacker has the mapped APIC and IPI-floods the victim core;
          each hit costs a full kernel interrupt path *)

val scenario_name : scenario -> string

type result = {
  scenario : string;
  storm_per_sec : float;
  attempted : int;  (** interrupts the attacker tried to send *)
  delivered : int;  (** interrupts that actually hit the victim *)
  victim_throughput_rps : float;
  victim_p99_us : float;
  victim_busy_frac : float;
}

val run :
  ?seed:int64 ->
  ?hw:Hw.Params.t ->
  scenario ->
  storm_per_sec:float ->
  victim_rate:float ->
  duration_ns:int ->
  result
(** Simulate a victim core serving exponential(2 µs) requests at
    [victim_rate] while the attacker generates [storm_per_sec]
    interrupts. [storm_per_sec = 0] gives the unattacked baseline. *)

val pp_result : Format.formatter -> result -> unit

(** {2 Request-level tail attack}

    The interrupt storms above need a foothold in the interrupt fabric;
    a tail attack needs only the front door: flood the server with fat
    best-effort requests and let queueing do the damage to the victim's
    latency-critical tail.  This is the adversarial workload the
    {!Guard} admission layer (BE token bucket, brownout) exists for. *)

type flood_result = {
  flood_rate : float;
  guarded : bool;
  offered : int;
  completed : int;
  shed : int;  (** admission rejections (never executed) *)
  expired : int;  (** queued work dropped after the client gave up *)
  lc_completed : int;
  lc_goodput : int;
      (** LC completions within [slo_ns] that landed inside the
          measurement window *)
  lc_goodput_rps : float;
  lc_p99_us : float;
  guard_report : Guard.report option;
}

val request_flood :
  ?seed:int64 ->
  ?workers:int ->
  ?guard:Guard.config ->
  victim_rate:float ->
  flood_rate:float ->
  slo_ns:int ->
  duration_ns:int ->
  unit ->
  flood_result
(** A [workers]-core server (default 2) serving exponential(2 µs) LC
    requests at [victim_rate] while an attacker injects constant-50 µs
    BE requests at [flood_rate] through the same dispatcher.  [guard]
    arms the overload-control layer; omitting it gives the undefended
    baseline.  [flood_rate = 0.] is the unattacked control. *)

val pp_flood_result : Format.formatter -> flood_result -> unit
