type scenario = Native_uintr_storm | Libpreemptible_storm | Shinjuku_apic_storm

let scenario_name = function
  | Native_uintr_storm -> "native UINTR (shared uintr_fd)"
  | Libpreemptible_storm -> "LibPreemptible (UITT restricted to timer)"
  | Shinjuku_apic_storm -> "Shinjuku (mapped APIC)"

type result = {
  scenario : string;
  storm_per_sec : float;
  attempted : int;
  delivered : int;
  victim_throughput_rps : float;
  victim_p99_us : float;
  victim_busy_frac : float;
}

(* The victim: one worker core serving exponential(2us) requests from an
   open-loop queue. Interrupt-handler time steals core cycles via
   stalls; everything else is standard queueing. *)
let run ?(seed = 29L) ?(hw = Hw.Params.default) scenario ~storm_per_sec ~victim_rate
    ~duration_ns =
  if storm_per_sec < 0.0 then invalid_arg "Attack.run: negative storm rate";
  if duration_ns <= 0 then invalid_arg "Attack.run: non-positive duration";
  let sim = Engine.Sim.create ~seed () in
  let rng = Engine.Sim.fork_rng sim in
  let core = Hw.Core.create sim ~id:0 in
  let fabric = Hw.Uintr.create sim hw in
  let queue = Queue.create () in
  let latencies = Stat.Summary.create () in
  let completed = ref 0 in
  let attempted = ref 0 in
  let delivered = ref 0 in
  (* Victim work loop. *)
  let rec maybe_start () =
    if (not (Hw.Core.busy core)) && not (Queue.is_empty queue) then begin
      let arrival, service = Queue.pop queue in
      Hw.Core.begin_work core ~duration:service ~on_done:(fun () ->
          incr completed;
          Stat.Summary.record latencies (float_of_int (Engine.Sim.now sim - arrival));
          maybe_start ())
    end
  in
  let rec arrivals () =
    let gap = max 1 (int_of_float (Engine.Rng.exponential rng ~mean:(1e9 /. victim_rate))) in
    ignore
      (Engine.Sim.after sim gap (fun () ->
           if Engine.Sim.now sim < duration_ns then begin
             let service =
               max 1 (int_of_float (Engine.Rng.exponential rng ~mean:2_000.0))
             in
             Queue.push (Engine.Sim.now sim, service) queue;
             maybe_start ();
             arrivals ()
           end))
  in
  arrivals ();
  (* The victim's receiver: every delivered interrupt runs its handler,
     stealing handler-entry + uiret cycles from the current request. *)
  let handler_steal_ns =
    hw.Hw.Params.uintr_handler_entry_ns + hw.Hw.Params.uintr_uiret_ns
  in
  let victim_receiver =
    Hw.Uintr.register_receiver fabric ~name:"victim"
      ~handler:(fun _ ~vector:_ ->
        incr delivered;
        if Hw.Core.busy core then Hw.Core.stall core handler_steal_ns)
      ()
  in
  (* The attacker. *)
  (match scenario with
  | Native_uintr_storm ->
    (* The eventfd trust model: anyone holding the uintr_fd may post the
       vector; the attacker connects and floods. *)
    let attacker = Hw.Uintr.create_sender fabric ~name:"attacker" () in
    let idx = Hw.Uintr.connect attacker victim_receiver ~vector:5 in
    if storm_per_sec > 0.0 then begin
      let gap = max 1 (int_of_float (1e9 /. storm_per_sec)) in
      let rec storm () =
        ignore
          (Engine.Sim.after sim gap (fun () ->
               if Engine.Sim.now sim < duration_ns then begin
                 incr attempted;
                 Hw.Uintr.senduipi attacker idx;
                 storm ()
               end))
      in
      storm ()
    end
  | Libpreemptible_storm ->
    (* LibPreemptible configures UITT entries only between the timer
       core and its workers (Sec VII-B); an attacker in another trust
       domain has no entry targeting the victim, so every SENDUIPI it
       executes faults instead of posting. *)
    let attacker = Hw.Uintr.create_sender fabric ~name:"attacker" () in
    if storm_per_sec > 0.0 then begin
      let gap = max 1 (int_of_float (1e9 /. storm_per_sec)) in
      let rec storm () =
        ignore
          (Engine.Sim.after sim gap (fun () ->
               if Engine.Sim.now sim < duration_ns then begin
                 incr attempted;
                 (try Hw.Uintr.senduipi attacker 0
                  with Invalid_argument _ -> () (* no UITT entry: rejected *));
                 storm ()
               end))
      in
      storm ()
    end
  | Shinjuku_apic_storm ->
    (* Shinjuku maps the physical APIC into the runtime; a buggy or
       malicious runtime can IPI-flood any core, and each IPI costs a
       full kernel interrupt path on the victim. *)
    let ipi = Hw.Ipi.create sim hw in
    let kernel_interrupt_ns = 1_000 in
    let target =
      Hw.Ipi.register ipi ~handler:(fun () ->
          incr delivered;
          if Hw.Core.busy core then Hw.Core.stall core kernel_interrupt_ns)
    in
    if storm_per_sec > 0.0 then begin
      let gap = max 1 (int_of_float (1e9 /. storm_per_sec)) in
      let rec storm () =
        ignore
          (Engine.Sim.after sim gap (fun () ->
               if Engine.Sim.now sim < duration_ns then begin
                 incr attempted;
                 Hw.Ipi.send ipi target;
                 storm ()
               end))
      in
      storm ()
    end);
  Engine.Sim.run sim;
  {
    scenario = scenario_name scenario;
    storm_per_sec;
    attempted = !attempted;
    delivered = !delivered;
    victim_throughput_rps =
      float_of_int !completed *. 1e9 /. float_of_int duration_ns;
    victim_p99_us =
      (if Stat.Summary.count latencies = 0 then nan
       else (Stat.Summary.report latencies).Stat.Summary.p99 /. 1e3);
    victim_busy_frac =
      float_of_int (Hw.Core.busy_ns core) /. float_of_int duration_ns;
  }

let pp_result fmt r =
  Format.fprintf fmt
    "%-42s storm=%8.0f/s attempted=%8d delivered=%8d tput=%8.0f/s p99=%8.2fus" r.scenario
    r.storm_per_sec r.attempted r.delivered r.victim_throughput_rps r.victim_p99_us
