type scenario = Native_uintr_storm | Libpreemptible_storm | Shinjuku_apic_storm

let scenario_name = function
  | Native_uintr_storm -> "native UINTR (shared uintr_fd)"
  | Libpreemptible_storm -> "LibPreemptible (UITT restricted to timer)"
  | Shinjuku_apic_storm -> "Shinjuku (mapped APIC)"

type result = {
  scenario : string;
  storm_per_sec : float;
  attempted : int;
  delivered : int;
  victim_throughput_rps : float;
  victim_p99_us : float;
  victim_busy_frac : float;
}

(* The victim: one worker core serving exponential(2us) requests from an
   open-loop queue. Interrupt-handler time steals core cycles via
   stalls; everything else is standard queueing. *)
let run ?(seed = 29L) ?(hw = Hw.Params.default) scenario ~storm_per_sec ~victim_rate
    ~duration_ns =
  if storm_per_sec < 0.0 then invalid_arg "Attack.run: negative storm rate";
  if duration_ns <= 0 then invalid_arg "Attack.run: non-positive duration";
  let sim = Engine.Sim.create ~seed () in
  let rng = Engine.Sim.fork_rng sim in
  let core = Hw.Core.create sim ~id:0 in
  let fabric = Hw.Uintr.create sim hw in
  let queue = Queue.create () in
  let latencies = Stat.Summary.create () in
  let completed = ref 0 in
  let attempted = ref 0 in
  let delivered = ref 0 in
  (* Victim work loop. *)
  let rec maybe_start () =
    if (not (Hw.Core.busy core)) && not (Queue.is_empty queue) then begin
      let arrival, service = Queue.pop queue in
      Hw.Core.begin_work core ~duration:service ~on_done:(fun () ->
          incr completed;
          Stat.Summary.record latencies (float_of_int (Engine.Sim.now sim - arrival));
          maybe_start ())
    end
  in
  let rec arrivals () =
    let gap = max 1 (int_of_float (Engine.Rng.exponential rng ~mean:(1e9 /. victim_rate))) in
    ignore
      (Engine.Sim.after sim gap (fun () ->
           if Engine.Sim.now sim < duration_ns then begin
             let service =
               max 1 (int_of_float (Engine.Rng.exponential rng ~mean:2_000.0))
             in
             Queue.push (Engine.Sim.now sim, service) queue;
             maybe_start ();
             arrivals ()
           end))
  in
  arrivals ();
  (* The victim's receiver: every delivered interrupt runs its handler,
     stealing handler-entry + uiret cycles from the current request. *)
  let handler_steal_ns =
    hw.Hw.Params.uintr_handler_entry_ns + hw.Hw.Params.uintr_uiret_ns
  in
  let victim_receiver =
    Hw.Uintr.register_receiver fabric ~name:"victim"
      ~handler:(fun _ ~vector:_ ->
        incr delivered;
        if Hw.Core.busy core then Hw.Core.stall core handler_steal_ns)
      ()
  in
  (* The attacker. *)
  (match scenario with
  | Native_uintr_storm ->
    (* The eventfd trust model: anyone holding the uintr_fd may post the
       vector; the attacker connects and floods. *)
    let attacker = Hw.Uintr.create_sender fabric ~name:"attacker" () in
    let idx = Hw.Uintr.connect attacker victim_receiver ~vector:5 in
    if storm_per_sec > 0.0 then begin
      let gap = max 1 (int_of_float (1e9 /. storm_per_sec)) in
      let rec storm () =
        ignore
          (Engine.Sim.after sim gap (fun () ->
               if Engine.Sim.now sim < duration_ns then begin
                 incr attempted;
                 Hw.Uintr.senduipi attacker idx;
                 storm ()
               end))
      in
      storm ()
    end
  | Libpreemptible_storm ->
    (* LibPreemptible configures UITT entries only between the timer
       core and its workers (Sec VII-B); an attacker in another trust
       domain has no entry targeting the victim, so every SENDUIPI it
       executes faults instead of posting. *)
    let attacker = Hw.Uintr.create_sender fabric ~name:"attacker" () in
    if storm_per_sec > 0.0 then begin
      let gap = max 1 (int_of_float (1e9 /. storm_per_sec)) in
      let rec storm () =
        ignore
          (Engine.Sim.after sim gap (fun () ->
               if Engine.Sim.now sim < duration_ns then begin
                 incr attempted;
                 (try Hw.Uintr.senduipi attacker 0
                  with Invalid_argument _ -> () (* no UITT entry: rejected *));
                 storm ()
               end))
      in
      storm ()
    end
  | Shinjuku_apic_storm ->
    (* Shinjuku maps the physical APIC into the runtime; a buggy or
       malicious runtime can IPI-flood any core, and each IPI costs a
       full kernel interrupt path on the victim. *)
    let ipi = Hw.Ipi.create sim hw in
    let kernel_interrupt_ns = 1_000 in
    let target =
      Hw.Ipi.register ipi ~handler:(fun () ->
          incr delivered;
          if Hw.Core.busy core then Hw.Core.stall core kernel_interrupt_ns)
    in
    if storm_per_sec > 0.0 then begin
      let gap = max 1 (int_of_float (1e9 /. storm_per_sec)) in
      let rec storm () =
        ignore
          (Engine.Sim.after sim gap (fun () ->
               if Engine.Sim.now sim < duration_ns then begin
                 incr attempted;
                 Hw.Ipi.send ipi target;
                 storm ()
               end))
      in
      storm ()
    end);
  Engine.Sim.run sim;
  {
    scenario = scenario_name scenario;
    storm_per_sec;
    attempted = !attempted;
    delivered = !delivered;
    victim_throughput_rps =
      float_of_int !completed *. 1e9 /. float_of_int duration_ns;
    victim_p99_us =
      (if Stat.Summary.count latencies = 0 then nan
       else (Stat.Summary.report latencies).Stat.Summary.p99 /. 1e3);
    victim_busy_frac =
      float_of_int (Hw.Core.busy_ns core) /. float_of_int duration_ns;
  }

let pp_result fmt r =
  Format.fprintf fmt
    "%-42s storm=%8.0f/s attempted=%8d delivered=%8d tput=%8.0f/s p99=%8.2fus" r.scenario
    r.storm_per_sec r.attempted r.delivered r.victim_throughput_rps r.victim_p99_us

(* ------------------------------------------------------------------ *)
(* Request-level tail attack                                           *)
(* ------------------------------------------------------------------ *)

type flood_result = {
  flood_rate : float;
  guarded : bool;
  offered : int;
  completed : int;
  shed : int;
  expired : int;
  lc_completed : int;
  lc_goodput : int;  (** LC completions within [slo_ns], inside the window *)
  lc_goodput_rps : float;
  lc_p99_us : float;
  guard_report : Guard.report option;
}

let request_flood ?(seed = 47L) ?(workers = 2) ?guard ~victim_rate ~flood_rate ~slo_ns
    ~duration_ns () =
  if victim_rate <= 0.0 then invalid_arg "Attack.request_flood: victim rate must be positive";
  if flood_rate < 0.0 then invalid_arg "Attack.request_flood: negative flood rate";
  if slo_ns <= 0 then invalid_arg "Attack.request_flood: non-positive SLO";
  if duration_ns <= 0 then invalid_arg "Attack.request_flood: non-positive duration";
  (* The victim serves short LC requests well within capacity; the
     attacker floods fat best-effort requests through the same front
     door.  Without a guard the BE glut queues ahead of LC work and the
     victim's tail explodes; the guard's BE bucket and brownout keep
     the LC stream inside its SLO. *)
  let lc_src =
    Workload.Source.of_dist
      (Workload.Service_dist.exponential ~mean_ns:2_000)
      ~cls:Workload.Request.Latency_critical
  in
  let attack_src =
    Workload.Source.of_dist
      (Workload.Service_dist.constant 50_000)
      ~cls:Workload.Request.Best_effort
  in
  let source =
    if flood_rate > 0.0 then
      Workload.Source.mix [ (victim_rate, lc_src); (flood_rate, attack_src) ]
    else lc_src
  in
  let arrival = Workload.Arrival.poisson ~rate_per_sec:(victim_rate +. flood_rate) in
  let cfg =
    {
      (Preemptible.Server.default_config ~n_workers:workers
         ~policy:(Preemptible.Policy.fcfs_preempt ~quantum_ns:5_000)
         ~mechanism:(Preemptible.Server.Uintr_utimer Utimer.default_config))
      with
      seed;
      guard;
    }
  in
  let lc_goodput = ref 0 in
  let lc_sum = Stat.Summary.create () in
  let probes =
    {
      Preemptible.Server.no_probes with
      Preemptible.Server.on_complete =
        (fun ~now ~latency_ns ~cls ->
          match cls with
          | Workload.Request.Latency_critical ->
            Stat.Summary.record lc_sum (float_of_int latency_ns);
            if latency_ns <= slo_ns && now <= duration_ns then incr lc_goodput
          | Workload.Request.Best_effort -> ());
    }
  in
  let r = Preemptible.Server.run ~probes cfg ~arrival ~source ~duration_ns in
  let lc_rep =
    if Stat.Summary.count lc_sum = 0 then None else Some (Stat.Summary.report lc_sum)
  in
  {
    flood_rate;
    guarded = guard <> None;
    offered = r.Preemptible.Server.offered;
    completed = r.Preemptible.Server.completed;
    shed = r.Preemptible.Server.shed;
    expired = r.Preemptible.Server.dropped;
    lc_completed = Stat.Summary.count lc_sum;
    lc_goodput = !lc_goodput;
    lc_goodput_rps = float_of_int !lc_goodput *. 1e9 /. float_of_int duration_ns;
    lc_p99_us =
      (match lc_rep with None -> nan | Some rep -> rep.Stat.Summary.p99 /. 1e3);
    guard_report = r.Preemptible.Server.guard;
  }

let pp_flood_result fmt r =
  Format.fprintf fmt
    "flood=%8.0f/s %-7s offered=%7d completed=%7d shed=%6d expired=%6d lc_goodput=%8.0f/s \
     lc_p99=%8.2fus"
    r.flood_rate
    (if r.guarded then "guarded" else "naive")
    r.offered r.completed r.shed r.expired r.lc_goodput_rps r.lc_p99_us
