(** Run-to-completion c-FCFS baseline (no preemption).

    What the latency-critical server looks like without any preemption
    mechanism — short requests suffer head-of-line blocking behind long
    ones, the motivating pathology of Sec II-A. *)

type config = {
  n_workers : int;
  costs : Ksim.Costs.t;
  hw : Hw.Params.t;
  seed : int64;
}

val default_config : n_workers:int -> config

val run :
  ?probes:Preemptible.Server.probes ->
  ?warmup_ns:int ->
  config ->
  arrival:Workload.Arrival.t ->
  source:Workload.Source.t ->
  duration_ns:int ->
  Preemptible.Server.result
