(** Preemption-timer delivery strategies (Fig 11) and timer precision
    (Fig 12).

    Fig 11 compares four ways of delivering periodic preemption
    interrupts to N threads:

    - {e per-thread, creation-time}: every thread arms its own kernel
      timer at thread-creation time, so all expiries align and collide
      on the kernel sighand lock — delivery overhead grows
      superlinearly with N;
    - {e per-thread, staggered ("aligned")}: the same timers with their
      phases explicitly spread across the interval, trading contention
      for phase-alignment delay;
    - {e per-process, chained} (Shiina et al.): one kernel timer; the
      receiving thread forwards the event thread-to-thread with
      signals — linear in N;
    - {e per-thread, user-timer (LibUtimer)}: the dedicated timer core
      scans deadline slots and issues SENDUIPI — near-flat in N.

    Fig 12 measures the period a thread actually observes between
    handler invocations against the requested quantum, for the kernel
    timer (granularity floor + contention) and LibUtimer (with injected
    background contention). *)

type strategy =
  | Creation_time
  | Staggered
  | Chained
  | Userspace_timer

val all : strategy list

val name : strategy -> string

type overhead_result = {
  strategy : string;
  threads : int;
  mean_overhead_us : float;
      (** mean delay from intended expiry to handler execution *)
  p99_overhead_us : float;
  max_overhead_us : float;
}

val delivery_overhead :
  ?seed:int64 ->
  ?costs:Ksim.Costs.t ->
  ?hw:Hw.Params.t ->
  strategy ->
  threads:int ->
  interval_ns:int ->
  rounds:int ->
  overhead_result
(** Arm periodic preemption for [threads] threads at [interval_ns] and
    measure delivery overhead over [rounds] expiries per thread
    (the paper: 1000 interrupts at a 100 µs interval). *)

type precision_result = {
  source : string;
  target_ns : int;
  mean_gap_us : float;
  std_gap_us : float;
  p99_gap_us : float;
  rel_error : float;  (** |mean gap − target| / target *)
  sample_gaps_us : float array;  (** evenly-spaced subsample for plotting *)
}

val precision :
  ?seed:int64 ->
  ?costs:Ksim.Costs.t ->
  ?hw:Hw.Params.t ->
  [ `Kernel_timer | `Utimer ] ->
  threads:int ->
  target_ns:int ->
  samples:int ->
  precision_result
(** Observe [samples] consecutive handler-to-handler gaps on one thread
    while [threads] threads run the same periodic timer (the paper uses
    26 threads, 5000 samples, with stress-ng background noise). *)
