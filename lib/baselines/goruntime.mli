(** Go-style runtime preemption baseline.

    The paper's introduction cites Go's asynchronous preemption — signal
    (SIGURG) based, introduced to prevent starvation at a ~10 ms
    granularity — as the state of practice for language runtimes.  At
    microsecond request scales a 10 ms slice is three orders of
    magnitude too coarse: short requests still wait behind whole long
    requests, so the baseline behaves almost like run-to-completion.
    Modeled as the server runtime with signal-based kernel timers and a
    10 ms quantum. *)

type config = {
  n_workers : int;
  quantum_ns : int;  (** default 10 ms *)
  costs : Ksim.Costs.t;
  hw : Hw.Params.t;
  seed : int64;
}

val default_config : n_workers:int -> config

val run :
  ?probes:Preemptible.Server.probes ->
  ?warmup_ns:int ->
  config ->
  arrival:Workload.Arrival.t ->
  source:Workload.Source.t ->
  duration_ns:int ->
  Preemptible.Server.result
