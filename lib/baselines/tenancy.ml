type result = {
  tenants : int;
  per_tenant_rate : float;
  mean_p99_us : float;
  worst_p99_us : float;
  timer_interrupts : int;
  completed : int;
  offered : int;
  pending : int;
}

(* A minimal single-worker tenant: FIFO queue of (arrival, remaining)
   requests, FCFS with preemption at [quantum] via the shared timer
   core.  Kept deliberately lean — the full runtime features live in
   {!Preemptible.Server}; here the object of study is the shared timer
   core. *)
type tenant = {
  id : int;
  core : Hw.Core.t;
  queue : (int * int) Queue.t; (* arrival, remaining service *)
  summary : Stat.Summary.t;
  mutable slot : Utimer.slot option;
  mutable current : (int * int) option;
  mutable deadline : int;
  mutable done_count : int;
  mutable offered_count : int;
}

let libpreemptible ?(seed = 31L) ?(quantum_ns = 10_000) ?(wheel = false) ~tenants
    ~per_tenant_rate ~duration_ns () =
  if tenants <= 0 then invalid_arg "Tenancy.libpreemptible: need at least one tenant";
  let sim = Engine.Sim.create ~seed () in
  let hw = { Hw.Params.default with Hw.Params.uitt_size = max 256 (2 * tenants) } in
  let fabric = Hw.Uintr.create sim hw in
  let config =
    if wheel then { Utimer.default_config with Utimer.scan = Utimer.Wheel }
    else Utimer.default_config
  in
  let ut = Utimer.create sim ~uintr:fabric ~config () in
  let dist = Workload.Service_dist.workload_a1 in
  let handler_cost = hw.Hw.Params.uintr_handler_entry_ns + hw.Hw.Params.uintr_uiret_ns in
  let swap = Ksim.Costs.default.Ksim.Costs.fcontext_swap_ns in
  let tenant_list =
    List.init tenants (fun id ->
        {
          id;
          core = Hw.Core.create sim ~id;
          queue = Queue.create ();
          summary = Stat.Summary.create ();
          slot = None;
          current = None;
          deadline = max_int;
          done_count = 0;
          offered_count = 0;
        })
  in
  let rec schedule t =
    if (not (Hw.Core.busy t.core)) && t.current = None && not (Queue.is_empty t.queue)
    then begin
      let arrival, remaining = Queue.pop t.queue in
      t.current <- Some (arrival, remaining);
      t.deadline <- Engine.Sim.now sim + quantum_ns;
      (match t.slot with
      | Some slot -> Utimer.arm_after slot ~ns:quantum_ns
      | None -> ());
      Hw.Core.begin_work t.core ~duration:remaining ~on_done:(fun () ->
          (match t.slot with Some slot -> Utimer.disarm slot | None -> ());
          t.current <- None;
          t.deadline <- max_int;
          t.done_count <- t.done_count + 1;
          Stat.Summary.record t.summary (float_of_int (Engine.Sim.now sim - arrival));
          schedule t)
    end
  in
  let preempt t =
    match t.current with
    | Some (arrival, _) when Hw.Core.busy t.core && Engine.Sim.now sim >= t.deadline ->
      let executed = Hw.Core.abort t.core in
      let _, remaining = Option.get t.current in
      t.current <- None;
      t.deadline <- max_int;
      Queue.push (arrival, remaining - executed) t.queue;
      ignore
        (Engine.Sim.after sim (handler_cost + swap) (fun () -> schedule t))
    | Some _ | None -> ()
  in
  List.iter
    (fun t ->
      let receiver =
        Hw.Uintr.register_receiver fabric
          ~name:(Printf.sprintf "tenant-%d" t.id)
          ~handler:(fun _ ~vector:_ -> preempt t)
          ()
      in
      t.slot <- Some (Utimer.register ut ~receiver ~vector:0))
    tenant_list;
  Utimer.start ut;
  (* Per-tenant open-loop arrivals. *)
  List.iter
    (fun t ->
      let rng = Engine.Sim.fork_rng sim in
      let rec arrivals () =
        let gap =
          max 1 (int_of_float (Engine.Rng.exponential rng ~mean:(1e9 /. per_tenant_rate)))
        in
        ignore
          (Engine.Sim.after sim gap (fun () ->
               if Engine.Sim.now sim < duration_ns then begin
                 let service = Workload.Service_dist.sample dist rng ~now:(Engine.Sim.now sim) in
                 t.offered_count <- t.offered_count + 1;
                 Queue.push (Engine.Sim.now sim, service) t.queue;
                 schedule t;
                 arrivals ()
               end))
      in
      arrivals ())
    tenant_list;
  Engine.Sim.run_until sim duration_ns;
  Utimer.stop ut;
  Engine.Sim.run sim;
  let p99s =
    List.filter_map
      (fun t ->
        if Stat.Summary.count t.summary = 0 then None
        else Some (Stat.Summary.report t.summary).Stat.Summary.p99)
      tenant_list
  in
  if p99s = [] then invalid_arg "Tenancy.libpreemptible: no completions";
  {
    tenants;
    per_tenant_rate;
    mean_p99_us = List.fold_left ( +. ) 0.0 p99s /. float_of_int (List.length p99s) /. 1e3;
    worst_p99_us = List.fold_left Float.max 0.0 p99s /. 1e3;
    timer_interrupts = Utimer.fired ut;
    completed = List.fold_left (fun acc t -> acc + t.done_count) 0 tenant_list;
    offered = List.fold_left (fun acc t -> acc + t.offered_count) 0 tenant_list;
    pending =
      List.fold_left
        (fun acc t ->
          acc + Queue.length t.queue + (match t.current with Some _ -> 1 | None -> 0))
        0 tenant_list;
  }

let shinjuku_tenant_limit (hw : Hw.Params.t) = hw.Hw.Params.apic_max_cores
