type config = {
  n_workers : int;
  costs : Ksim.Costs.t;
  hw : Hw.Params.t;
  seed : int64;
}

let default_config ~n_workers =
  { n_workers; costs = Ksim.Costs.default; hw = Hw.Params.default; seed = 42L }

let run ?probes ?warmup_ns c ~arrival ~source ~duration_ns =
  let base =
    Preemptible.Server.default_config ~n_workers:c.n_workers
      ~policy:Preemptible.Policy.no_preempt ~mechanism:Preemptible.Server.No_mechanism
  in
  let cfg = { base with Preemptible.Server.costs = c.costs; hw = c.hw; seed = c.seed } in
  Preemptible.Server.run ?probes ?warmup_ns cfg ~arrival ~source ~duration_ns
