(** Libinger / libturquoise baseline (Boucher et al., ATC'20).

    A general-purpose preemptive user-threading library built on
    {e regular kernel timer interrupts}: every worker arms a POSIX timer
    for its time slice and preemption arrives as a signal.  We model it
    as the LibPreemptible runtime with the {!Preemptible.Server.Kernel_timer}
    mechanism: per-launch timer syscalls, signal delivery through the
    contended sighand lock, and the kernel timer granularity floor. *)

type config = {
  n_workers : int;
  quantum_ns : int;
  costs : Ksim.Costs.t;
  hw : Hw.Params.t;
  seed : int64;
}

val default_config : n_workers:int -> quantum_ns:int -> config

val run :
  ?probes:Preemptible.Server.probes ->
  ?warmup_ns:int ->
  config ->
  arrival:Workload.Arrival.t ->
  source:Workload.Source.t ->
  duration_ns:int ->
  Preemptible.Server.result

val effective_quantum_ns : config -> int
(** What slice the kernel will actually honour (granularity floor). *)
