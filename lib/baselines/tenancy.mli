(** Multi-tenant scalability (Sec V-B's closing claim).

    Shinjuku's preemption needs the physical APIC mapped into the
    runtime, which supports only a bounded number of logical cores and
    cannot be shared across distrusting tenants.  LibUtimer's deadline
    slots are just memory: one timer core serves many tenants' workers,
    bounded only by its scan throughput (and the timing wheel extends
    that).

    This experiment packs N single-worker tenants — each with its own
    request stream and scheduler — into one simulation sharing one
    LibUtimer timer core, and reports how per-tenant tail latency holds
    up as N grows. *)

type result = {
  tenants : int;
  per_tenant_rate : float;
  mean_p99_us : float;  (** average of the tenants' p99s *)
  worst_p99_us : float;  (** worst tenant *)
  timer_interrupts : int;
  completed : int;
  offered : int;  (** arrivals across all tenants *)
  pending : int;
      (** requests still queued or on-core when the run ended; the
          conservation invariant is [offered = completed + pending] *)
}

val libpreemptible :
  ?seed:int64 ->
  ?quantum_ns:int ->
  ?wheel:bool ->
  tenants:int ->
  per_tenant_rate:float ->
  duration_ns:int ->
  unit ->
  result
(** All tenants serve workload A1 at [per_tenant_rate] through a shared
    timer core (default quantum 10 µs; [wheel] switches the timer core
    to the timing-wheel scan). *)

val shinjuku_tenant_limit : Hw.Params.t -> int
(** How many tenant workers Shinjuku's APIC mapping supports at all. *)
