(* Fleet layer: N server instances co-simulated on one engine behind a
   pluggable dispatcher.  See cluster.mli for the model. *)

module Server = Preemptible.Server

type lb = Random | Round_robin | Least_loaded | Power_of_two

let lb_name = function
  | Random -> "random"
  | Round_robin -> "rr"
  | Least_loaded -> "jsq"
  | Power_of_two -> "p2c"

let lb_of_string = function
  | "random" -> Ok Random
  | "rr" | "round-robin" -> Ok Round_robin
  | "jsq" | "least-loaded" -> Ok Least_loaded
  | "p2c" | "power-of-two" -> Ok Power_of_two
  | s ->
    Error
      (Printf.sprintf "unknown load balancer %S (random|rr|jsq|p2c)" s)

let all_lbs = [ Random; Round_robin; Least_loaded; Power_of_two ]

type steal = { interval_ns : int; threshold : int; batch : int }

let default_steal = { interval_ns = 20_000; threshold = 8; batch = 4 }

type config = {
  members : Server.config array;
  lb : lb;
  steal : steal option;
  seed : int64;
  max_events : int;
  tick_ns : int option;
}

let uniform ~n ~lb member =
  if n <= 0 then invalid_arg "Cluster.uniform: need at least one member";
  {
    members = Array.make n member;
    lb;
    steal = None;
    seed = 42L;
    max_events = 400_000_000;
    tick_ns = None;
  }

type tick = {
  ck_at_ns : int;
  ck_inflight : int array;
  ck_dispatched : int array;
  ck_completed : int;
  ck_p50_ns : float;
  ck_p99_ns : float;
}

type probes = {
  on_tick : tick -> unit;
  on_dispatch : server:int -> now:int -> unit;
}

let no_probes = { on_tick = ignore; on_dispatch = (fun ~server:_ ~now:_ -> ()) }

type fleet = {
  servers : int;
  duration_ns : int;
  measured_ns : int;
  offered : int;
  completed : int;
  cancelled : int;
  dropped : int;
  shed : int;
  goodput : int;
  goodput_rps : float;
  throughput_rps : float;
  offered_rps : float;
  mean_us : float;
  p50_us : float;
  p90_us : float;
  p99_us : float;
  max_us : float;
  dispatched : int array;
  imbalance : float;
  stolen : int;
  sim_events : int;
}

type result = {
  fleet : fleet;
  per_server : Server.result array;
  sketch : Obs.Sketch.t;
}

let validate cfg =
  let n = Array.length cfg.members in
  if n = 0 then invalid_arg "Cluster.run: need at least one member";
  (match cfg.steal with
  | Some s ->
    if s.interval_ns <= 0 then invalid_arg "Cluster.run: steal interval must be positive";
    if s.threshold < 1 then invalid_arg "Cluster.run: steal threshold must be >= 1";
    if s.batch < 1 then invalid_arg "Cluster.run: steal batch must be >= 1";
    Array.iter
      (fun (m : Server.config) ->
        match m.Server.guard with
        | Some g when g.Guard.retry <> None ->
          invalid_arg
            "Cluster.run: work stealing cannot be combined with retry guards (a stolen \
             request's patience clock cannot follow it across servers)"
        | Some _ | None -> ())
      cfg.members
  | None -> ())

(* Merge the per-server sketches into [dst] (cleared first).  Exact by
   the bucket-wise merge property, so fleet quantiles are those of the
   concatenated completion stream. *)
let merge_sketches ~dst per_server =
  Obs.Sketch.clear dst;
  Array.iter (fun src -> Obs.Sketch.merge_into ~dst ~src) per_server

let run ?(probes = no_probes) ?(warmup_ns = 0) cfg ~arrival ~source ~duration_ns =
  validate cfg;
  let n = Array.length cfg.members in
  let sim = Engine.Sim.create ~seed:cfg.seed () in
  (* Fixed fork order: arrival, service, balancer — then the members in
     index order fork their own streams inside [Server.create]. *)
  let arrival_rng = Engine.Sim.fork_rng sim in
  let service_rng = Engine.Sim.fork_rng sim in
  let lb_rng = Engine.Sim.fork_rng sim in
  let sketches = Array.init n (fun _ -> Obs.Sketch.create ()) in
  let completed = ref 0 in
  let instances =
    Array.init n (fun i ->
        let sk = sketches.(i) in
        let member_probes =
          {
            Server.no_probes with
            Server.on_complete =
              (fun ~now:_ ~latency_ns ~cls:_ ->
                incr completed;
                Obs.Sketch.add sk (float_of_int latency_ns));
          }
        in
        Server.create ~probes:member_probes ~warmup_ns cfg.members.(i) ~sim ~duration_ns)
  in
  let dispatched = Array.make n 0 in
  let stolen = ref 0 in
  (* -------------------------- dispatch -------------------------- *)
  let rr_next = ref 0 in
  let least_loaded () =
    let best = ref 0 in
    for i = 1 to n - 1 do
      if Server.inflight instances.(i) < Server.inflight instances.(!best) then best := i
    done;
    !best
  in
  let pick () =
    if n = 1 then 0
    else
      match cfg.lb with
      | Random -> Engine.Rng.int lb_rng n
      | Round_robin ->
        let i = !rr_next in
        rr_next := (i + 1) mod n;
        i
      | Least_loaded -> least_loaded ()
      | Power_of_two ->
        let a = Engine.Rng.int lb_rng n in
        let b = Engine.Rng.int lb_rng n in
        if Server.inflight instances.(b) < Server.inflight instances.(a) then b else a
  in
  let rec fire () =
    let t = Engine.Sim.now sim in
    let service_ns, cls = Workload.Source.draw source service_rng ~now:t in
    let i = pick () in
    dispatched.(i) <- dispatched.(i) + 1;
    probes.on_dispatch ~server:i ~now:t;
    Server.inject instances.(i) ~service_ns ~cls;
    schedule ()
  and schedule () =
    let t = Engine.Sim.now sim in
    let gap = Workload.Arrival.next_gap arrival arrival_rng ~now:t in
    let at = t + gap in
    if at >= duration_ns then
      ignore
        (Engine.Sim.at sim duration_ns (fun () -> Array.iter Server.end_arrivals instances))
    else ignore (Engine.Sim.at sim at fire)
  in
  schedule ();
  Array.iter Server.start instances;
  (* ----------------------- work stealing ------------------------ *)
  let fleet_live () =
    Engine.Sim.now sim < duration_ns
    || Array.exists (fun inst -> Server.inflight inst > 0) instances
  in
  (match cfg.steal with
  | None -> ()
  | Some s ->
    let rec tick () =
      if fleet_live () then begin
        let deepest = ref 0 and shallowest = ref 0 in
        for i = 1 to n - 1 do
          let q = Server.queue_depth instances.(i) in
          if q > Server.queue_depth instances.(!deepest) then deepest := i;
          if q < Server.queue_depth instances.(!shallowest) then shallowest := i
        done;
        let gap_q =
          Server.queue_depth instances.(!deepest)
          - Server.queue_depth instances.(!shallowest)
        in
        if !deepest <> !shallowest && gap_q >= s.threshold then
          stolen :=
            !stolen
            + Server.steal_from ~victim:instances.(!deepest)
                ~thief:instances.(!shallowest) ~max:s.batch;
        ignore (Engine.Sim.after sim s.interval_ns tick)
      end
    in
    ignore (Engine.Sim.after sim s.interval_ns tick));
  (* -------------------------- telemetry ------------------------- *)
  let tick_sketch = Obs.Sketch.create () in
  (match cfg.tick_ns with
  | None -> ()
  | Some tick_ns ->
    if tick_ns <= 0 then invalid_arg "Cluster.run: tick_ns must be positive";
    let rec tick () =
      if fleet_live () then begin
        merge_sketches ~dst:tick_sketch sketches;
        let q p =
          match Obs.Sketch.quantile_opt tick_sketch p with Some v -> v | None -> nan
        in
        probes.on_tick
          {
            ck_at_ns = Engine.Sim.now sim;
            ck_inflight = Array.map Server.inflight instances;
            ck_dispatched = Array.copy dispatched;
            ck_completed = !completed;
            ck_p50_ns = q 0.5;
            ck_p99_ns = q 0.99;
          };
        ignore (Engine.Sim.after sim tick_ns tick)
      end
    in
    ignore (Engine.Sim.after sim tick_ns tick));
  (* ---------------------------- run ----------------------------- *)
  Engine.Sim.run ~max_events:cfg.max_events sim;
  if Array.exists (fun inst -> Server.inflight inst > 0) instances then
    failwith
      (Printf.sprintf
         "Cluster.run: event cap (%d) hit with requests outstanding — raise max_events or \
          lower the load"
         cfg.max_events);
  Array.iteri
    (fun i inst ->
      if Server.completed_so_far inst = 0 then
        failwith
          (Printf.sprintf
             "Cluster.run: server %d saw no measured completions (fleet too large for the \
              offered load, or warmup too long)"
             i))
    instances;
  let per_server = Array.map Server.finish instances in
  let sketch = Obs.Sketch.create () in
  merge_sketches ~dst:sketch sketches;
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 per_server in
  let sumf f = Array.fold_left (fun acc r -> acc +. f r) 0.0 per_server in
  let q p = match Obs.Sketch.quantile_opt sketch p with Some v -> v | None -> nan in
  let count = Obs.Sketch.count sketch in
  let mean_ns = if count = 0 then nan else Obs.Sketch.sum sketch /. float_of_int count in
  let total_dispatched = Array.fold_left ( + ) 0 dispatched in
  let imbalance =
    if total_dispatched = 0 then 1.0
    else
      let mean = float_of_int total_dispatched /. float_of_int n in
      float_of_int (Array.fold_left max 0 dispatched) /. mean
  in
  let fleet =
    {
      servers = n;
      duration_ns;
      measured_ns = duration_ns - warmup_ns;
      offered = sum (fun r -> r.Server.offered);
      completed = sum (fun r -> r.Server.completed);
      cancelled = sum (fun r -> r.Server.cancelled);
      dropped = sum (fun r -> r.Server.dropped);
      shed = sum (fun r -> r.Server.shed);
      goodput = sum (fun r -> r.Server.goodput);
      goodput_rps = sumf (fun r -> r.Server.goodput_rps);
      throughput_rps = sumf (fun r -> r.Server.throughput_rps);
      offered_rps = sumf (fun r -> r.Server.offered_rps);
      mean_us = mean_ns /. 1e3;
      p50_us = q 0.5 /. 1e3;
      p90_us = q 0.9 /. 1e3;
      p99_us = q 0.99 /. 1e3;
      max_us = Obs.Sketch.max_value sketch /. 1e3;
      dispatched;
      imbalance;
      stolen = !stolen;
      sim_events = Engine.Sim.events_fired sim;
    }
  in
  { fleet; per_server; sketch }

let pp_fleet fmt f =
  Format.fprintf fmt
    "@[<v>fleet: %d servers, offered=%d (%.0f rps) completed=%d (%.0f rps) goodput=%.0f \
     rps@ shed=%d dropped=%d cancelled=%d stolen=%d imbalance=%.2f@ latency: mean=%.1fus \
     p50=%.1fus p90=%.1fus p99=%.1fus max=%.1fus@]"
    f.servers f.offered f.offered_rps f.completed f.throughput_rps f.goodput_rps f.shed
    f.dropped f.cancelled f.stolen f.imbalance f.mean_us f.p50_us f.p90_us f.p99_us
    f.max_us
