(** Cluster-scale simulation: N {!Preemptible.Server} instances in one
    discrete-event simulation behind a pluggable load balancer.

    The paper evaluates one server; the datacenter question the
    ROADMAP asks — when do per-server adaptive quanta beat
    cluster-level rebalancing? — needs a fleet.  This layer composes
    server {e instances} (see {!Preemptible.Server.create}) on one
    shared {!Engine.Sim.t}: a fleet dispatcher samples the arrival
    process, picks a member per request with the configured policy
    (reading {e live} queue state — the whole point of co-simulation),
    and injects it through the member's normal admission path, guard
    verdicts included.  Optional cross-server work stealing migrates
    queued-but-unstarted requests from the longest backlog to the
    emptiest server on a periodic tick.

    Everything stays deterministic: the fleet forks its RNG streams
    (arrival, service, balancer) from the shared engine in a fixed
    order, then creates members in index order, so a run is a pure
    function of [(config, seed)] — sweeps over fleets parallelize with
    {!Exec.Sweep} exactly like single-server figures.

    Fleet latency quantiles are exact merges: each member feeds a
    per-server {!Obs.Sketch}, and bucket-wise {!Obs.Sketch.merge_into}
    makes the fleet sketch indistinguishable from one that observed
    every completion (the property [test_obs] pins). *)

(** Dispatch policy: where does the next request go? *)
type lb =
  | Random  (** uniform member pick — the no-information baseline *)
  | Round_robin  (** strict rotation — deterministic, oblivious to load *)
  | Least_loaded
      (** join-shortest-queue over live in-flight counts (JSQ); needs a
          full fleet scan per request *)
  | Power_of_two
      (** sample two members, take the less loaded — the classic
          O(1)-information policy that captures most of JSQ's benefit *)

val lb_name : lb -> string

val lb_of_string : string -> (lb, string) result
(** Accepts [random|rr|round-robin|jsq|least-loaded|p2c|power-of-two]. *)

val all_lbs : lb list

(** Cross-server work stealing, evaluated every [interval_ns]: when the
    deepest backlog exceeds the shallowest by at least [threshold],
    migrate up to [batch] queued requests.  Rejected (at {!run}) when a
    member models client retries — a stolen request's patience clock
    cannot follow it across pools. *)
type steal = { interval_ns : int; threshold : int; batch : int }

val default_steal : steal
(** 20 us interval, threshold 8, batch 4. *)

type config = {
  members : Preemptible.Server.config array;
      (** per-member server configs — heterogeneous fleets (different
          core counts, quantum policies, guards) are just different
          entries.  Member [seed]/[max_events] fields are ignored: the
          fleet owns the engine. *)
  lb : lb;
  steal : steal option;  (** [None] (default) — no migration *)
  seed : int64;
  max_events : int;  (** safety cap on the shared engine *)
  tick_ns : int option;
      (** fleet telemetry tick period; [None] skips the loop entirely *)
}

val uniform : n:int -> lb:lb -> Preemptible.Server.config -> config
(** A homogeneous fleet of [n] copies of one member config, no
    stealing, no tick, seed 42, a 400M-event cap. *)

(** One fleet telemetry frame (when [tick_ns] is set). *)
type tick = {
  ck_at_ns : int;
  ck_inflight : int array;  (** live in-flight per member *)
  ck_dispatched : int array;  (** cumulative dispatches per member *)
  ck_completed : int;  (** cumulative measured completions, fleet-wide *)
  ck_p50_ns : float;  (** merged-sketch quantiles so far; [nan] if empty *)
  ck_p99_ns : float;
}

type probes = {
  on_tick : tick -> unit;
  on_dispatch : server:int -> now:int -> unit;
      (** fired after each routing decision (before admission) *)
}

val no_probes : probes

(** Fleet-aggregate counters and quantiles, shaped like
    {!Preemptible.Server.result}: counters are sums over members (so
    [offered = completed + cancelled + dropped + shed] after the
    drain, stealing included), rates are sums of per-member rates, and
    quantiles come from the exact bucket-wise sketch merge. *)
type fleet = {
  servers : int;
  duration_ns : int;
  measured_ns : int;
  offered : int;
  completed : int;
  cancelled : int;
  dropped : int;
  shed : int;
  goodput : int;
  goodput_rps : float;
  throughput_rps : float;
  offered_rps : float;
  mean_us : float;
  p50_us : float;
  p90_us : float;
  p99_us : float;
  max_us : float;
  dispatched : int array;  (** routing decisions per member *)
  imbalance : float;
      (** max over mean of [dispatched] — 1.0 is a perfectly even
          split; the dispersion the balancer left on the table *)
  stolen : int;  (** requests migrated by work stealing *)
  sim_events : int;  (** engine callbacks over the whole fleet run *)
}

type result = {
  fleet : fleet;
  per_server : Preemptible.Server.result array;
  sketch : Obs.Sketch.t;
      (** the merged fleet latency sketch (measured completions, ns) *)
}

val run :
  ?probes:probes ->
  ?warmup_ns:int ->
  config ->
  arrival:Workload.Arrival.t ->
  source:Workload.Source.t ->
  duration_ns:int ->
  result
(** Simulate the fleet under one open-loop arrival stream for
    [duration_ns]; arrivals then stop and every member drains.
    Requests arriving in [warmup_ns, duration_ns) are measured.
    Raises [Invalid_argument] on inconsistent parameters (empty fleet,
    bad steal knobs, stealing combined with retry guards) — before any
    simulation work — and [Failure] if the event cap is hit. *)

val pp_fleet : Format.formatter -> fleet -> unit
