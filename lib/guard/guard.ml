type state = Normal | Brownout | Open

let state_name = function Normal -> "normal" | Brownout -> "brownout" | Open -> "open"
let state_index = function Normal -> 0 | Brownout -> 1 | Open -> 2

type bucket_config = { rate_per_sec : float; burst : float }

type shed_config = { max_queue : int; codel_target_ns : int; codel_interval_ns : int }

type retry_config = {
  max_attempts : int;
  backoff_ns : int;
  max_backoff_ns : int;
  jitter : float;
  budget : bucket_config option;
}

type brownout_config = {
  p99_trip_ns : int;
  qlen_trip : int;
  trip_windows : int;
  recover_windows : int;
  timeout_shrink : float;
  probe_every : int;
}

type config = {
  timeout_ns : int option;
  drop_expired : bool;
  shed : shed_config option;
  global_bucket : bucket_config option;
  lc_bucket : bucket_config option;
  be_bucket : bucket_config option;
  retry : retry_config option;
  brownout : brownout_config option;
}

let disabled =
  {
    timeout_ns = None;
    drop_expired = false;
    shed = None;
    global_bucket = None;
    lc_bucket = None;
    be_bucket = None;
    retry = None;
    brownout = None;
  }

let default_shed =
  { max_queue = 256; codel_target_ns = 1_000_000; codel_interval_ns = 5_000_000 }

let default_retry =
  {
    max_attempts = 4;
    backoff_ns = 50_000;
    max_backoff_ns = 1_000_000;
    jitter = 0.5;
    budget = None;
  }

let default_brownout =
  {
    p99_trip_ns = 1_000_000;
    qlen_trip = 512;
    trip_windows = 3;
    recover_windows = 5;
    timeout_shrink = 0.5;
    probe_every = 8;
  }

let check_bucket ctx (b : bucket_config) =
  if b.rate_per_sec <= 0.0 then invalid_arg (ctx ^ ": bucket rate must be positive");
  if b.burst < 1.0 then invalid_arg (ctx ^ ": bucket burst must be at least 1")

let validate cfg =
  (match cfg.timeout_ns with
  | Some t when t <= 0 -> invalid_arg "Guard: timeout must be positive"
  | _ -> ());
  if cfg.drop_expired && cfg.timeout_ns = None then
    invalid_arg "Guard: drop_expired requires a timeout";
  (match cfg.shed with
  | Some s ->
    if s.max_queue <= 0 then invalid_arg "Guard: shed max_queue must be positive";
    if s.codel_target_ns <= 0 then invalid_arg "Guard: codel target must be positive";
    if s.codel_interval_ns <= 0 then invalid_arg "Guard: codel interval must be positive"
  | None -> ());
  Option.iter (check_bucket "Guard(global)") cfg.global_bucket;
  Option.iter (check_bucket "Guard(lc)") cfg.lc_bucket;
  Option.iter (check_bucket "Guard(be)") cfg.be_bucket;
  (match cfg.retry with
  | Some r ->
    if cfg.timeout_ns = None then invalid_arg "Guard: retry requires a timeout";
    if r.max_attempts < 1 then invalid_arg "Guard: retry max_attempts must be at least 1";
    if r.backoff_ns <= 0 then invalid_arg "Guard: retry backoff must be positive";
    if r.max_backoff_ns < r.backoff_ns then
      invalid_arg "Guard: retry max_backoff must be at least backoff";
    if r.jitter < 0.0 || r.jitter > 1.0 then
      invalid_arg "Guard: retry jitter out of [0,1]";
    Option.iter (check_bucket "Guard(retry budget)") r.budget
  | None -> ());
  match cfg.brownout with
  | Some b ->
    if b.p99_trip_ns <= 0 then invalid_arg "Guard: brownout p99 trip must be positive";
    if b.qlen_trip <= 0 then invalid_arg "Guard: brownout qlen trip must be positive";
    if b.trip_windows < 1 then invalid_arg "Guard: brownout trip_windows must be at least 1";
    if b.recover_windows < 1 then
      invalid_arg "Guard: brownout recover_windows must be at least 1";
    if b.timeout_shrink <= 0.0 || b.timeout_shrink > 1.0 then
      invalid_arg "Guard: brownout timeout_shrink out of (0,1]";
    if b.probe_every < 1 then invalid_arg "Guard: brownout probe_every must be at least 1"
  | None -> ()

(* Token bucket on the simulation clock: float tokens, lazy refill. *)
type bucket = {
  bc : bucket_config;
  mutable tokens : float;
  mutable last_ns : int;
}

let bucket_of (bc : bucket_config) = { bc; tokens = bc.burst; last_ns = 0 }

let bucket_take b ~now =
  if now > b.last_ns then begin
    let dt = float_of_int (now - b.last_ns) in
    b.tokens <- Float.min b.bc.burst (b.tokens +. (dt *. b.bc.rate_per_sec /. 1e9));
    b.last_ns <- now
  end;
  if b.tokens >= 1.0 then begin
    b.tokens <- b.tokens -. 1.0;
    true
  end
  else false

type t = {
  cfg : config;
  global_b : bucket option;
  lc_b : bucket option;
  be_b : bucket option;
  budget_b : bucket option;
  trip_point : Fault.point option;
  faults : Fault.t option;
  trace : Obs.Trace.t option;
  (* CoDel: when the head age first went (and stayed) above target;
     [min_int] while below. *)
  mutable above_since : int;
  mutable st : state;
  mutable bad_streak : int;
  mutable good_streak : int;
  mutable probe_count : int;
  (* ledger *)
  mutable admitted : int;
  mutable shed_queue : int;
  mutable shed_delay : int;
  mutable shed_rate : int;
  mutable shed_brownout : int;
  mutable expired : int;
  mutable client_timeouts : int;
  mutable retries : int;
  mutable retry_exhausted : int;
  mutable budget_denied : int;
  mutable goodput : int;
  mutable late : int;
  mutable trips : int;
  mutable recoveries : int;
  mutable degraded_windows : int;
}

let create ?faults ?trace cfg =
  validate cfg;
  {
    cfg;
    global_b = Option.map bucket_of cfg.global_bucket;
    lc_b = Option.map bucket_of cfg.lc_bucket;
    be_b = Option.map bucket_of cfg.be_bucket;
    budget_b =
      (match cfg.retry with Some r -> Option.map bucket_of r.budget | None -> None);
    trip_point = Option.map (fun f -> Fault.point f "guard.trip") faults;
    faults;
    trace;
    above_since = min_int;
    st = Normal;
    bad_streak = 0;
    good_streak = 0;
    probe_count = 0;
    admitted = 0;
    shed_queue = 0;
    shed_delay = 0;
    shed_rate = 0;
    shed_brownout = 0;
    expired = 0;
    client_timeouts = 0;
    retries = 0;
    retry_exhausted = 0;
    budget_denied = 0;
    goodput = 0;
    late = 0;
    trips = 0;
    recoveries = 0;
    degraded_windows = 0;
  }

let config t = t.cfg

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

type verdict = Admit | Shed_queue | Shed_delay | Shed_rate | Shed_brownout

let verdict_name = function
  | Admit -> "admit"
  | Shed_queue -> "shed.queue"
  | Shed_delay -> "shed.delay"
  | Shed_rate -> "shed.rate"
  | Shed_brownout -> "shed.brownout"

let take_opt b ~now = match b with None -> true | Some b -> bucket_take b ~now

(* Decision order: breaker first (Open rejects before spending bucket
   tokens on doomed arrivals), then rate, then queue state. *)
let decide t ~now ~cls ~qlen ~head_wait_ns =
  let brown_ok =
    match (t.st, t.cfg.brownout) with
    | Normal, _ | _, None -> true
    | Brownout, Some _ -> cls <> Workload.Request.Best_effort
    | Open, Some b ->
      t.probe_count <- t.probe_count + 1;
      t.probe_count mod b.probe_every = 0
  in
  if not brown_ok then Shed_brownout
  else if not (take_opt t.global_b ~now) then Shed_rate
  else if
    not
      (take_opt ~now
         (match cls with
         | Workload.Request.Latency_critical -> t.lc_b
         | Workload.Request.Best_effort -> t.be_b))
  then Shed_rate
  else
    match t.cfg.shed with
    | None -> Admit
    | Some s ->
      if qlen >= s.max_queue then Shed_queue
      else if head_wait_ns > s.codel_target_ns then begin
        if t.above_since = min_int then t.above_since <- now;
        if now - t.above_since >= s.codel_interval_ns then Shed_delay else Admit
      end
      else begin
        t.above_since <- min_int;
        Admit
      end

let admission t ~now ~cls ~qlen ~head_wait_ns =
  let v = decide t ~now ~cls ~qlen ~head_wait_ns in
  (match v with
  | Admit -> t.admitted <- t.admitted + 1
  | Shed_queue -> t.shed_queue <- t.shed_queue + 1
  | Shed_delay -> t.shed_delay <- t.shed_delay + 1
  | Shed_rate -> t.shed_rate <- t.shed_rate + 1
  | Shed_brownout -> t.shed_brownout <- t.shed_brownout + 1);
  v

(* ------------------------------------------------------------------ *)
(* Breaker                                                             *)
(* ------------------------------------------------------------------ *)

let transition t next =
  if next <> t.st then begin
    if state_index next > state_index t.st then t.trips <- t.trips + 1
    else t.recoveries <- t.recoveries + 1;
    t.st <- next;
    match t.trace with
    | Some tr ->
      Obs.Trace.instant tr Obs.Trace.Guard ~name:"guard.state" ~track:0
        ~arg:(state_index next);
      (* Per-state named instants (constant strings — the ring stores
         names by reference) so transitions read off a Perfetto track
         without decoding the integer arg. *)
      let name =
        match next with
        | Normal -> "guard.enter_normal"
        | Brownout -> "guard.enter_brownout"
        | Open -> "guard.enter_open"
      in
      Obs.Trace.instant tr Obs.Trace.Guard ~name ~track:0 ~arg:(state_index next)
    | None -> ()
  end

let on_window t ~now ~p99_ns ~max_qlen =
  (match (t.cfg.brownout, t.trip_point) with
  | Some _, Some p when Fault.fires p ~now ->
    (* Scripted overload episode: slam the breaker open.  Detection is
       immediate by construction (the breaker *is* the detector);
       recovery is marked when it walks back to Normal. *)
    (match t.faults with Some f -> Fault.mark_detected f ~hint:"guard.trip" () | None -> ());
    t.bad_streak <- 0;
    t.good_streak <- 0;
    transition t Open
  | _ -> ());
  (match t.cfg.brownout with
  | None -> ()
  | Some b ->
    let unhealthy = p99_ns > float_of_int b.p99_trip_ns || max_qlen > b.qlen_trip in
    if unhealthy then begin
      t.bad_streak <- t.bad_streak + 1;
      t.good_streak <- 0;
      if t.bad_streak >= b.trip_windows then begin
        t.bad_streak <- 0;
        match t.st with
        | Normal -> transition t Brownout
        | Brownout -> transition t Open
        | Open -> ()
      end
    end
    else begin
      t.good_streak <- t.good_streak + 1;
      t.bad_streak <- 0;
      if t.good_streak >= b.recover_windows then begin
        t.good_streak <- 0;
        match t.st with
        | Open -> transition t Brownout
        | Brownout ->
          transition t Normal;
          (match t.faults with
          | Some f -> Fault.mark_recovered f ~hint:"guard.trip" ()
          | None -> ())
        | Normal -> ()
      end
    end;
    if t.st <> Normal then t.degraded_windows <- t.degraded_windows + 1);
  match t.trace with
  | Some tr ->
    Obs.Trace.counter tr Obs.Trace.Guard ~name:"guard.state" ~value:(state_index t.st);
    Obs.Trace.counter tr Obs.Trace.Guard ~name:"guard.shed"
      ~value:(t.shed_queue + t.shed_delay + t.shed_rate + t.shed_brownout);
    Obs.Trace.counter tr Obs.Trace.Guard ~name:"guard.retries" ~value:t.retries;
    Obs.Trace.counter tr Obs.Trace.Guard ~name:"guard.timeouts" ~value:t.client_timeouts;
    Obs.Trace.counter tr Obs.Trace.Guard ~name:"guard.goodput" ~value:t.goodput
  | None -> ()

let breaker_state t = t.st

let force_fifo t = t.cfg.brownout <> None && t.st <> Normal

let client_timeout_ns t = t.cfg.timeout_ns

let effective_timeout_ns t =
  match t.cfg.timeout_ns with
  | None -> None
  | Some tmo ->
    (match (t.st, t.cfg.brownout) with
    | Normal, _ | _, None -> Some tmo
    | (Brownout | Open), Some b ->
      Some (max 1 (int_of_float (float_of_int tmo *. b.timeout_shrink))))

let expiry_ns t = if t.cfg.drop_expired then effective_timeout_ns t else None

(* ------------------------------------------------------------------ *)
(* Client model                                                        *)
(* ------------------------------------------------------------------ *)

let retry_gap t rng ~now ~attempt =
  match t.cfg.retry with
  | None -> None
  | Some r ->
    if attempt >= r.max_attempts then begin
      t.retry_exhausted <- t.retry_exhausted + 1;
      None
    end
    else if not (take_opt t.budget_b ~now) then begin
      t.budget_denied <- t.budget_denied + 1;
      None
    end
    else begin
      (* attempt is 1-based: the wait before attempt 2 is the base. *)
      let exp = min 30 (attempt - 1) in
      let gap = min r.max_backoff_ns (r.backoff_ns lsl exp) in
      let gap =
        if r.jitter = 0.0 then gap
        else
          let u = Engine.Rng.float rng in
          let f = 1.0 +. (r.jitter *. (u -. 0.5)) in
          int_of_float (float_of_int gap *. f)
      in
      Some (max 1 gap)
    end

let note_retry t = t.retries <- t.retries + 1
let note_client_timeout t = t.client_timeouts <- t.client_timeouts + 1
let note_expired t = t.expired <- t.expired + 1
let note_goodput t = t.goodput <- t.goodput + 1
let note_late t = t.late <- t.late + 1

(* ------------------------------------------------------------------ *)
(* Ledger                                                              *)
(* ------------------------------------------------------------------ *)

type report = {
  admitted : int;
  shed_queue : int;
  shed_delay : int;
  shed_rate : int;
  shed_brownout : int;
  shed_total : int;
  expired : int;
  client_timeouts : int;
  retries : int;
  retry_exhausted : int;
  budget_denied : int;
  goodput : int;
  late : int;
  trips : int;
  recoveries : int;
  degraded_windows : int;
  final_state : state;
}

let report (t : t) =
  {
    admitted = t.admitted;
    shed_queue = t.shed_queue;
    shed_delay = t.shed_delay;
    shed_rate = t.shed_rate;
    shed_brownout = t.shed_brownout;
    shed_total = t.shed_queue + t.shed_delay + t.shed_rate + t.shed_brownout;
    expired = t.expired;
    client_timeouts = t.client_timeouts;
    retries = t.retries;
    retry_exhausted = t.retry_exhausted;
    budget_denied = t.budget_denied;
    goodput = t.goodput;
    late = t.late;
    trips = t.trips;
    recoveries = t.recoveries;
    degraded_windows = t.degraded_windows;
    final_state = t.st;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>admitted=%d shed=%d (queue=%d delay=%d rate=%d brownout=%d)@ timeouts=%d \
     expired=%d retries=%d (exhausted=%d budget_denied=%d)@ goodput=%d late=%d@ \
     breaker: trips=%d recoveries=%d degraded_windows=%d final=%s@]"
    r.admitted r.shed_total r.shed_queue r.shed_delay r.shed_rate r.shed_brownout
    r.client_timeouts r.expired r.retries r.retry_exhausted r.budget_denied r.goodput
    r.late r.trips r.recoveries r.degraded_windows (state_name r.final_state)
