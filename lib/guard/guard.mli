(** Overload control and graceful degradation.

    The paper's experiments stop where the offered load meets capacity;
    past that point the open-loop {!Preemptible.Server} queues without
    bound and p99 diverges instead of degrading.  This module is the
    guard rail a production deployment of the runtime would carry: it
    decides, per arriving request, whether the system should accept the
    work at all, and it models the client side — patience, retries —
    well enough that the classic failure modes (queue collapse, retry
    storms, metastable overload) are reproducible and preventable in
    simulation.

    Three cooperating layers:

    - {b Admission control}: a bounded queue, a CoDel-style shed rule
      on the age of the oldest queued request (sustained standing delay
      means the queue is not draining), and token-bucket rate limiters
      — one global and one per request class, the per-tenant knob of
      the colocation experiments.
    - {b Client timeouts and retries}: each admitted request carries a
      client patience [timeout_ns]; on expiry the client gives up and
      may retry with exponential backoff, jitter, and a token-bucket
      {e retry budget}.  Naive retries (no budget) reproduce the
      meltdown where abandoned-but-still-executing work plus retry
      amplification collapse goodput; the budget caps the amplification.
    - {b Brownout breaker}: a hysteretic [Normal -> Brownout -> Open]
      state machine fed from the stats window.  Brownout sheds
      best-effort traffic, shrinks the server-side expiry multiplier
      and falls back to FIFO; Open admits only probe traffic.  The
      ["guard.trip"] fault point lets the {!Fault} schedule DSL script
      overload episodes together with hardware faults.

    The guard is pure bookkeeping plus one RNG stream for retry jitter:
    it schedules no simulation events itself (the server owns the
    clock), so a server configured {e without} a guard is untouched —
    byte-identical results to a build without this module. *)

type state = Normal | Brownout | Open

val state_name : state -> string

val state_index : state -> int
(** 0 = Normal, 1 = Brownout, 2 = Open — the encoding used by the
    ["guard.state"] gauge / trace counter, so dashboards and exported
    snapshots agree on the mapping. *)

type bucket_config = {
  rate_per_sec : float;  (** sustained refill rate; must be positive *)
  burst : float;  (** bucket capacity in tokens; at least 1 *)
}

type shed_config = {
  max_queue : int;
      (** admission bound on total queued requests (dispatch + worker
          local queues); arrivals beyond it are shed *)
  codel_target_ns : int;
      (** tolerable standing delay: the age of the oldest queued
          request the shedder accepts *)
  codel_interval_ns : int;
      (** how long the head age must stay above target before shedding
          starts (one RTT-ish in CoDel terms) *)
}

type retry_config = {
  max_attempts : int;
      (** total attempts per logical request, first try included *)
  backoff_ns : int;  (** backoff before the second attempt *)
  max_backoff_ns : int;  (** cap on the doubled backoff *)
  jitter : float;
      (** multiplicative jitter width in [0,1]: the gap is drawn
          uniformly from [gap*(1 +/- jitter/2)] *)
  budget : bucket_config option;
      (** global token budget on retry attempts; [None] = naive
          unbudgeted retries (the meltdown configuration) *)
}

type brownout_config = {
  p99_trip_ns : int;  (** window p99 above this is an unhealthy window *)
  qlen_trip : int;  (** window max queue length above this likewise *)
  trip_windows : int;
      (** consecutive unhealthy windows before escalating one state *)
  recover_windows : int;
      (** consecutive healthy windows before de-escalating one state *)
  timeout_shrink : float;
      (** server-side expiry multiplier applied to [timeout_ns] while
          degraded, in (0,1]: shed queued work sooner than the client
          would abandon it *)
  probe_every : int;
      (** in [Open], admit one of every [probe_every] candidates to
          probe for recovery *)
}

type config = {
  timeout_ns : int option;  (** client patience; [None] = infinite *)
  drop_expired : bool;
      (** server drops queued requests already past their (effective)
          timeout instead of burning a worker on work the client
          abandoned; requires [timeout_ns] *)
  shed : shed_config option;
  global_bucket : bucket_config option;
  lc_bucket : bucket_config option;  (** latency-critical class *)
  be_bucket : bucket_config option;  (** best-effort class *)
  retry : retry_config option;  (** requires [timeout_ns] *)
  brownout : brownout_config option;
}

val disabled : config
(** Everything off — admitted unconditionally, no timeouts.  Useful as
    a base for [{ disabled with ... }]. *)

val default_shed : shed_config
(** 256-deep bound, 1 ms target, 5 ms interval. *)

val default_retry : retry_config
(** 4 attempts, 50 µs base backoff doubling to 1 ms, 0.5 jitter, no
    budget (naive). *)

val default_brownout : brownout_config
(** p99 trip 1 ms, qlen trip 512, 3 windows to trip, 5 to recover,
    0.5 timeout shrink, probe every 8. *)

val validate : config -> unit
(** Raises [Invalid_argument] on out-of-range parameters, [retry] or
    [drop_expired] without [timeout_ns], etc. *)

type t

val create : ?faults:Fault.t -> ?trace:Obs.Trace.t -> config -> t
(** Validates the config.  When [faults] is given, registers the
    ["guard.trip"] point: a firing evaluation (checked once per stats
    window) forces the breaker to [Open]; the trip is marked detected
    immediately and recovered when the breaker returns to [Normal].
    When [trace] is given, state transitions and per-window counters
    are emitted under {!Obs.Trace.cat.Guard}. *)

val config : t -> config

(** {2 Admission} *)

type verdict =
  | Admit
  | Shed_queue  (** bounded queue full *)
  | Shed_delay  (** CoDel: standing queue delay above target *)
  | Shed_rate  (** token bucket (global or per-class) empty *)
  | Shed_brownout  (** breaker degraded: BE in Brownout, non-probe in Open *)

val verdict_name : verdict -> string

val admission :
  t -> now:int -> cls:Workload.Request.cls -> qlen:int -> head_wait_ns:int -> verdict
(** Decide one arrival.  [qlen] is the total queued occupancy and
    [head_wait_ns] the age of the oldest queued request (see
    {!Rqueue.head_wait_ns}).  Counts the verdict. *)

(** {2 Breaker} *)

val on_window :
  t -> now:int -> p99_ns:float -> max_qlen:int -> unit
(** Feed one stats-window observation to the breaker (no-op without a
    [brownout] config, except for counter emission to the trace). *)

val breaker_state : t -> state

val force_fifo : t -> bool
(** The degraded discipline override: true while the breaker is out of
    [Normal] (and a [brownout] config exists). *)

val client_timeout_ns : t -> int option
(** The client's patience — independent of breaker state. *)

val effective_timeout_ns : t -> int option
(** The server-side expiry threshold: [timeout_ns], shrunk by
    [timeout_shrink] while the breaker is degraded. *)

val expiry_ns : t -> int option
(** [effective_timeout_ns] when [drop_expired] is set, else [None] —
    the threshold the server's pop path compares queue age against. *)

(** {2 Client model} *)

val retry_gap : t -> Engine.Rng.t -> now:int -> attempt:int -> int option
(** The client's decision after attempt [attempt] (1-based) failed —
    timed out or was shed.  [None] when retries are off, the attempt
    cap is reached, or the retry budget is empty; otherwise the
    backoff-with-jitter delay before the next attempt.  Consumes a
    budget token on success. *)

(** {2 Server-side bookkeeping} *)

val note_retry : t -> unit
(** A retry attempt was actually scheduled (the server may discard a
    granted retry that would land after the run ends). *)

val note_client_timeout : t -> unit
val note_expired : t -> unit
val note_goodput : t -> unit
val note_late : t -> unit
(** A completion past the client timeout: wasted work. *)

(** {2 Ledger} *)

type report = {
  admitted : int;
  shed_queue : int;
  shed_delay : int;
  shed_rate : int;
  shed_brownout : int;
  shed_total : int;
  expired : int;  (** server-side drops of abandoned queued work *)
  client_timeouts : int;
  retries : int;  (** retry attempts scheduled *)
  retry_exhausted : int;  (** give-ups at the attempt cap *)
  budget_denied : int;  (** retries the budget refused *)
  goodput : int;  (** completions within the client timeout *)
  late : int;
  trips : int;  (** breaker escalations (incl. scripted trips) *)
  recoveries : int;  (** breaker de-escalations *)
  degraded_windows : int;  (** windows spent out of [Normal] *)
  final_state : state;
}

val report : t -> report

val pp_report : Format.formatter -> report -> unit
