let ns x = x
let us x = x * 1_000
let ms x = x * 1_000_000
let sec x = x * 1_000_000_000
let us_f x = int_of_float (Float.round (x *. 1e3))
let ms_f x = int_of_float (Float.round (x *. 1e6))
let to_us t = float_of_int t /. 1e3
let to_ms t = float_of_int t /. 1e6
let to_sec t = float_of_int t /. 1e9

let pp_duration fmt t =
  let a = abs t in
  if a < 1_000 then Format.fprintf fmt "%dns" t
  else if a < 1_000_000 then Format.fprintf fmt "%.1fus" (to_us t)
  else if a < 1_000_000_000 then Format.fprintf fmt "%.2fms" (to_ms t)
  else Format.fprintf fmt "%.2fs" (to_sec t)
