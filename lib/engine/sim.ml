(* Deterministic discrete-event loop.

   Hot-path discipline (DESIGN §9): scheduling an event must not
   allocate.  Event records are recycled through a free-list owned by
   the simulator — a record is acquired in [at], owned by the heap
   while queued, and returned to the free list at the single point it
   leaves the heap (fired or lazily discarded).  The heap itself keys
   on unboxed (time, seq) int arrays, so the only allocation left on
   the hot path is whatever closure the *caller* passes in — and the
   runtime components preallocate theirs. *)

let noop () = ()

type event = {
  mutable etime : int;
  mutable live : bool;
  mutable efn : unit -> unit;
  n_live : int ref; (* owner's live-event counter, shared so [cancel] needs no [t] *)
}

(* Shared never-pending handle: lets components keep a plain [event]
   field (no [option], so arming allocates nothing) with [null] as the
   rest state.  Never scheduled; [cancel] sees [live = false]. *)
let null = { etime = 0; live = false; efn = noop; n_live = ref 0 }

type t = {
  mutable clock : int;
  mutable seq : int;
  heap : event Event_heap.t;
  root_rng : Rng.t;
  n_live : int ref;
  mutable n_fired : int;
  sentinel : event; (* fills empty free-list slots; never scheduled *)
  mutable free : event array; (* LIFO free list of recycled records *)
  mutable n_free : int;
}

let create ?(seed = 42L) () =
  let n_live = ref 0 in
  let sentinel = { etime = 0; live = false; efn = noop; n_live } in
  {
    clock = 0;
    seq = 0;
    heap = Event_heap.create ~dummy:sentinel ();
    root_rng = Rng.create seed;
    n_live;
    n_fired = 0;
    sentinel;
    free = Array.make 64 sentinel;
    n_free = 0;
  }

let now t = t.clock
let rng t = t.root_rng
let fork_rng t = Rng.split t.root_rng

(* -- free list ----------------------------------------------------- *)

let acquire t ~time fn =
  if t.n_free > 0 then begin
    t.n_free <- t.n_free - 1;
    let ev = t.free.(t.n_free) in
    t.free.(t.n_free) <- t.sentinel;
    ev.etime <- time;
    ev.live <- true;
    ev.efn <- fn;
    ev
  end
  else { etime = time; live = true; efn = fn; n_live = t.n_live }

(* Recycle a record the heap just popped.  The callback is dropped so
   the free list never retains closures (or anything they capture). *)
let release t ev =
  ev.efn <- noop;
  if t.n_free = Array.length t.free then begin
    let free = Array.make (2 * t.n_free) t.sentinel in
    Array.blit t.free 0 free 0 t.n_free;
    t.free <- free
  end;
  t.free.(t.n_free) <- ev;
  t.n_free <- t.n_free + 1

(* -- scheduling ---------------------------------------------------- *)

let at t time fn =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.at: time %d is in the past (now %d)" time t.clock);
  let ev = acquire t ~time fn in
  incr t.n_live;
  t.seq <- t.seq + 1;
  Event_heap.add t.heap ~time ~seq:t.seq ev;
  ev

let after t d fn =
  if d < 0 then invalid_arg "Sim.after: negative delay";
  at t (t.clock + d) fn

let cancel ev =
  if ev.live then begin
    ev.live <- false;
    decr ev.n_live
  end

let is_pending ev = ev.live
let time_of ev = ev.etime

let pending t = Event_heap.size t.heap
let live_events t = !(t.n_live)
let events_fired t = t.n_fired

(* -- the loop ------------------------------------------------------ *)

(* Top-level recursion (not an inner [let rec]) so stepping does not
   allocate a closure per event. *)
let rec step t =
  if Event_heap.is_empty t.heap then false
  else begin
    let time = Event_heap.min_time t.heap in
    let ev = Event_heap.min_value t.heap in
    Event_heap.drop_min t.heap;
    if ev.live then begin
      t.clock <- time;
      ev.live <- false;
      decr t.n_live;
      t.n_fired <- t.n_fired + 1;
      let fn = ev.efn in
      (* Recycle before running: the callback may schedule and the
         record is free to serve that schedule.  Handles are dead the
         moment their event fires (see the .mli contract). *)
      release t ev;
      fn ();
      true
    end
    else begin
      release t ev;
      step t
    end
  end

let run ?max_events t =
  match max_events with
  | None -> while step t do () done
  | Some n ->
    let fired = ref 0 in
    while !fired < n && step t do
      incr fired
    done

let run_until t limit =
  let continue = ref true in
  while !continue do
    if Event_heap.is_empty t.heap || Event_heap.min_time t.heap > limit then
      continue := false
    else begin
      (* Pop directly so that skipping a cancelled head cannot run a
         live event that lies beyond [limit]. *)
      let time = Event_heap.min_time t.heap in
      let ev = Event_heap.min_value t.heap in
      Event_heap.drop_min t.heap;
      if ev.live then begin
        t.clock <- time;
        ev.live <- false;
        decr t.n_live;
        t.n_fired <- t.n_fired + 1;
        let fn = ev.efn in
        release t ev;
        fn ()
      end
      else release t ev
    end
  done;
  if t.clock < limit then t.clock <- limit
