type event = { etime : int; mutable live : bool; live_count : int ref }

type cell = { ev : event; fn : unit -> unit }

type t = {
  mutable clock : int;
  mutable seq : int;
  heap : cell Event_heap.t;
  root_rng : Rng.t;
  n_live : int ref;
}

let create ?(seed = 42L) () =
  {
    clock = 0;
    seq = 0;
    heap = Event_heap.create ();
    root_rng = Rng.create seed;
    n_live = ref 0;
  }

let now t = t.clock
let rng t = t.root_rng
let fork_rng t = Rng.split t.root_rng

let at t time fn =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.at: time %d is in the past (now %d)" time t.clock);
  let ev = { etime = time; live = true; live_count = t.n_live } in
  incr t.n_live;
  t.seq <- t.seq + 1;
  Event_heap.add t.heap ~time ~seq:t.seq { ev; fn };
  ev

let after t d fn =
  if d < 0 then invalid_arg "Sim.after: negative delay";
  at t (t.clock + d) fn

let cancel ev =
  if ev.live then begin
    ev.live <- false;
    decr ev.live_count
  end

let is_pending ev = ev.live
let time_of ev = ev.etime

let pending t = Event_heap.size t.heap
let live_events t = !(t.n_live)

let step t =
  let rec next () =
    match Event_heap.pop t.heap with
    | None -> false
    | Some (time, _seq, { ev; fn }) ->
      if not ev.live then next ()
      else begin
        t.clock <- time;
        ev.live <- false;
        decr t.n_live;
        fn ();
        true
      end
  in
  next ()

let run ?max_events t =
  match max_events with
  | None -> while step t do () done
  | Some n ->
    let fired = ref 0 in
    while !fired < n && step t do
      incr fired
    done

let run_until t limit =
  let continue = ref true in
  while !continue do
    match Event_heap.peek t.heap with
    | Some (time, _, _) when time <= limit -> begin
        (* Pop directly so that skipping a cancelled head cannot run a
           live event that lies beyond [limit]. *)
        match Event_heap.pop t.heap with
        | Some (time, _, { ev; fn }) when ev.live ->
          t.clock <- time;
          ev.live <- false;
          decr t.n_live;
          fn ()
        | Some _ | None -> ()
      end
    | Some _ | None -> continue := false
  done;
  if t.clock < limit then t.clock <- limit
