type event = { etime : int; mutable live : bool }

type cell = { ev : event; fn : unit -> unit }

type t = {
  mutable clock : int;
  mutable seq : int;
  heap : cell Event_heap.t;
  root_rng : Rng.t;
}

let create ?(seed = 42L) () =
  { clock = 0; seq = 0; heap = Event_heap.create (); root_rng = Rng.create seed }

let now t = t.clock
let rng t = t.root_rng
let fork_rng t = Rng.split t.root_rng

let at t time fn =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.at: time %d is in the past (now %d)" time t.clock);
  let ev = { etime = time; live = true } in
  t.seq <- t.seq + 1;
  Event_heap.add t.heap ~time ~seq:t.seq { ev; fn };
  ev

let after t d fn =
  if d < 0 then invalid_arg "Sim.after: negative delay";
  at t (t.clock + d) fn

let cancel ev = ev.live <- false
let is_pending ev = ev.live
let time_of ev = ev.etime

let pending t = Event_heap.size t.heap

let step t =
  let rec next () =
    match Event_heap.pop t.heap with
    | None -> false
    | Some (time, _seq, { ev; fn }) ->
      if not ev.live then next ()
      else begin
        t.clock <- time;
        ev.live <- false;
        fn ();
        true
      end
  in
  next ()

let run ?max_events t =
  match max_events with
  | None -> while step t do () done
  | Some n ->
    let fired = ref 0 in
    while !fired < n && step t do
      incr fired
    done

let run_until t limit =
  let continue = ref true in
  while !continue do
    match Event_heap.peek t.heap with
    | Some (time, _, _) when time <= limit -> begin
        (* Pop directly so that skipping a cancelled head cannot run a
           live event that lies beyond [limit]. *)
        match Event_heap.pop t.heap with
        | Some (time, _, { ev; fn }) when ev.live ->
          t.clock <- time;
          ev.live <- false;
          fn ()
        | Some _ | None -> ()
      end
    | Some _ | None -> continue := false
  done;
  if t.clock < limit then t.clock <- limit
