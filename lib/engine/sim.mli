(** Discrete-event simulation engine.

    A single-threaded, deterministic event loop over integer-nanosecond
    time.  Every simulated component (UINTR delivery, kernel locks, timer
    cores, schedulers, workload generators) is expressed as callbacks
    scheduled on one [Sim.t].

    Determinism: events at equal timestamps fire in scheduling order, and
    all randomness flows through the engine's seeded {!Rng.t}. *)

type t

type event
(** A handle to a scheduled occurrence, usable for cancellation. *)

val create : ?seed:int64 -> unit -> t
(** Fresh simulator at time 0. Default seed is 42. *)

val now : t -> int
(** Current simulation time in nanoseconds. *)

val rng : t -> Rng.t
(** The simulator's root random stream. *)

val fork_rng : t -> Rng.t
(** An independent random stream derived from the root (give one to each
    component that samples). *)

val at : t -> int -> (unit -> unit) -> event
(** [at t time f] schedules [f] to run when the clock reaches [time].
    [time] must not be in the past. *)

val after : t -> int -> (unit -> unit) -> event
(** [after t d f] schedules [f] to run [d >= 0] nanoseconds from now. *)

val cancel : event -> unit
(** Cancel a scheduled event; cancelling a fired or already-cancelled
    event is a no-op. *)

val is_pending : event -> bool
(** True if the event has neither fired nor been cancelled. *)

val time_of : event -> int
(** The time the event is (or was) scheduled for. *)

val pending : t -> int
(** Number of events still in the queue, {e including} cancelled ones
    awaiting lazy discard — an overestimate of outstanding work.  Use
    {!live_events} for queue-depth accounting. *)

val live_events : t -> int
(** Exact number of scheduled events that have neither fired nor been
    cancelled ([live_events t <= pending t] always). *)

val step : t -> bool
(** Run the next event, advancing the clock. Returns [false] when the
    queue is exhausted. *)

val run : ?max_events:int -> t -> unit
(** Run until no events remain, or until [max_events] have fired. *)

val run_until : t -> int -> unit
(** Run all events with timestamp [<= limit], then set the clock to
    [limit] (if it is ahead of the last event). *)
