(** Discrete-event simulation engine.

    A single-threaded, deterministic event loop over integer-nanosecond
    time.  Every simulated component (UINTR delivery, kernel locks,
    timer cores, schedulers, workload generators) is expressed as
    callbacks scheduled on one [Sim.t].

    {2 Determinism}

    Events at equal timestamps fire in scheduling order, and all
    randomness flows through the engine's seeded {!Rng.t}.

    {2 Allocation discipline and handle lifetime}

    Scheduling is allocation-free: event records are recycled through
    an internal free list (DESIGN §9), so an {!event} handle is only
    meaningful {e while its event is still pending}.  The moment the
    event fires — or, after {!cancel}, the moment the queue discards
    it — the record may be reused for a new event, and the old handle
    aliases the new one.  Concretely:

    - call {!cancel} only on events that have not fired;
    - drop (or overwrite) stored handles as the {e first} action of the
      event's own callback, before scheduling anything new;
    - never consult {!is_pending}/{!time_of} on a handle kept across
      its own firing.

    Every component in this repository follows the discipline; it is
    only observable to code that squirrels handles away. *)

type t

type event
(** A handle to a scheduled occurrence, usable for cancellation while
    the occurrence is pending (see the handle-lifetime contract
    above). *)

val null : event
(** A handle that is never pending.  Components store it as the rest
    state of an [event] field so arming a timer does not allocate a
    [Some] block; {!cancel} and {!is_pending} treat it as an
    already-dead event. *)

val create : ?seed:int64 -> unit -> t
(** Fresh simulator at time 0. Default seed is 42. *)

val now : t -> int
(** Current simulation time in nanoseconds. *)

val rng : t -> Rng.t
(** The simulator's root random stream. *)

val fork_rng : t -> Rng.t
(** An independent random stream derived from the root (give one to
    each component that samples). *)

val at : t -> int -> (unit -> unit) -> event
(** [at t time f] schedules [f] to run when the clock reaches [time].
    [time] must not be in the past.  Allocation-free when the free
    list has a spare record. *)

val after : t -> int -> (unit -> unit) -> event
(** [after t d f] schedules [f] to run [d >= 0] nanoseconds from now. *)

val cancel : event -> unit
(** Cancel a pending event; cancelling an already-cancelled event
    again (before it is discarded) is a no-op.  Must not be called on
    a handle whose event has fired — the record may already back a
    different event. *)

val is_pending : event -> bool
(** True if the event has neither fired nor been cancelled.  Only
    meaningful under the handle-lifetime contract. *)

val time_of : event -> int
(** The time the event is scheduled for.  Only meaningful while the
    event is pending. *)

val pending : t -> int
(** Number of events still in the queue, {e including} cancelled ones
    awaiting lazy discard — an overestimate of outstanding work.  Use
    {!live_events} for queue-depth accounting. *)

val live_events : t -> int
(** Exact number of scheduled events that have neither fired nor been
    cancelled ([live_events t <= pending t] always). *)

val events_fired : t -> int
(** Total number of callbacks the loop has run since {!create} —
    cancelled-and-discarded entries are not counted.  The numerator of
    the engine's events-per-second figure ([bench --perf]). *)

val step : t -> bool
(** Run the next event, advancing the clock. Returns [false] when the
    queue is exhausted. *)

val run : ?max_events:int -> t -> unit
(** Run until no events remain, or until [max_events] have fired. *)

val run_until : t -> int -> unit
(** Run all events with timestamp [<= limit], then set the clock to
    [limit] (if it is ahead of the last event). *)
