type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let copy t = { state = t.state }

(* SplitMix64 step: David Stafford's mix13 finalizer. *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (bits64 t)

let float t =
  (* 53 random bits scaled into [0,1). *)
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x *. 0x1.0p-53

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let mask = Int64.of_int max_int in
  let rec draw () =
    let x = Int64.to_int (Int64.logand (bits64 t) mask) in
    let r = x mod n in
    if x - r > max_int - n + 1 then draw () else r
  in
  draw ()

let bool t = Int64.logand (bits64 t) 1L = 1L

let uniform t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.uniform: lo > hi";
  lo +. ((hi -. lo) *. float t)

let exponential t ~mean =
  let u = 1.0 -. float t in
  -.mean *. log u

let normal t ~mu ~sigma =
  let u1 = 1.0 -. float t and u2 = float t in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let lognormal t ~mu ~sigma = exp (normal t ~mu ~sigma)

let pareto t ~scale ~shape =
  if scale <= 0.0 || shape <= 0.0 then invalid_arg "Rng.pareto: parameters must be positive";
  let u = 1.0 -. float t in
  scale /. (u ** (1.0 /. shape))
