(** Time units for the simulation.

    All simulation time is kept in integer nanoseconds.  These helpers
    convert to and from the human-facing units used throughout the paper
    (microseconds, milliseconds, seconds). *)

val ns : int -> int
(** [ns x] is [x] nanoseconds (identity; for symmetry in call sites). *)

val us : int -> int
(** [us x] is [x] microseconds in nanoseconds. *)

val ms : int -> int
(** [ms x] is [x] milliseconds in nanoseconds. *)

val sec : int -> int
(** [sec x] is [x] seconds in nanoseconds. *)

val us_f : float -> int
(** [us_f x] is [x] (fractional) microseconds, rounded to nanoseconds. *)

val ms_f : float -> int
(** [ms_f x] is [x] (fractional) milliseconds, rounded to nanoseconds. *)

val to_us : int -> float
(** [to_us t] converts [t] nanoseconds to fractional microseconds. *)

val to_ms : int -> float
(** [to_ms t] converts [t] nanoseconds to fractional milliseconds. *)

val to_sec : int -> float
(** [to_sec t] converts [t] nanoseconds to fractional seconds. *)

val pp_duration : Format.formatter -> int -> unit
(** Pretty-print a duration in the most natural unit
    (e.g. ["3.0us"], ["1.5ms"]). *)
