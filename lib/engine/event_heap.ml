(* Flat-array 4-ary min-heap keyed on (time, seq).

   Keys live in two parallel [int array]s and payloads in a third
   ['a array], so neither insertion nor extraction allocates: there is
   no per-entry record, no option box, and no tuple on the zero-alloc
   accessor path.  A 4-ary layout halves the tree depth of the binary
   heap it replaced and keeps each sift-down's child probe within one
   or two cache lines of the parent — measurably faster on the
   million-event queues the simulator drives (DESIGN §9).

   Internals use unsafe array access: every index is bounded by [len],
   which never exceeds the capacity of the three equal-length backing
   arrays.  The public accessors keep their emptiness asserts.

   Entries with equal [time] pop in ascending [seq] order; the engine
   feeds a strictly increasing sequence number, which is what makes
   same-timestamp events fire in scheduling order. *)

type 'a t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable len : int;
  dummy : 'a; (* fills vacated payload slots so they don't retain *)
}

let create ?(capacity = 64) ~dummy () =
  let capacity = max 1 capacity in
  {
    times = Array.make capacity 0;
    seqs = Array.make capacity 0;
    vals = Array.make capacity dummy;
    len = 0;
    dummy;
  }

let size t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.times in
  let cap' = 2 * cap in
  let times = Array.make cap' 0 in
  let seqs = Array.make cap' 0 in
  let vals = Array.make cap' t.dummy in
  Array.blit t.times 0 times 0 t.len;
  Array.blit t.seqs 0 seqs 0 t.len;
  Array.blit t.vals 0 vals 0 t.len;
  t.times <- times;
  t.seqs <- seqs;
  t.vals <- vals

(* Bubble a hole up from the tail while the new key (time, seq) beats
   the parent, then write the new entry into the final hole. *)
let add t ~time ~seq v =
  if t.len = Array.length t.times then grow t;
  let times = t.times and seqs = t.seqs and vals = t.vals in
  let i = ref t.len in
  t.len <- t.len + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 4 in
    let pt = Array.unsafe_get times parent in
    if pt > time || (pt = time && Array.unsafe_get seqs parent > seq) then begin
      Array.unsafe_set times !i pt;
      Array.unsafe_set seqs !i (Array.unsafe_get seqs parent);
      Array.unsafe_set vals !i (Array.unsafe_get vals parent);
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set times !i time;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set vals !i v

(* Sift the entry at index 0 down: at each level pick the smallest of
   up to four children.  The moving entry's key is loaded once into
   [mt]/[ms]; only the winning child is compared against it. *)
let sift_down t =
  let times = t.times and seqs = t.seqs and vals = t.vals in
  let len = t.len in
  let mt = Array.unsafe_get times 0 and ms = Array.unsafe_get seqs 0 in
  let mv = Array.unsafe_get vals 0 in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let first = (4 * !i) + 1 in
    if first >= len then continue := false
    else begin
      let last = if first + 3 < len then first + 3 else len - 1 in
      let best = ref first in
      let bt = ref (Array.unsafe_get times first) in
      let bs = ref (Array.unsafe_get seqs first) in
      for c = first + 1 to last do
        let ct = Array.unsafe_get times c in
        if ct < !bt || (ct = !bt && Array.unsafe_get seqs c < !bs) then begin
          best := c;
          bt := ct;
          bs := Array.unsafe_get seqs c
        end
      done;
      if !bt < mt || (!bt = mt && !bs < ms) then begin
        Array.unsafe_set times !i !bt;
        Array.unsafe_set seqs !i !bs;
        Array.unsafe_set vals !i (Array.unsafe_get vals !best);
        i := !best
      end
      else continue := false
    end
  done;
  Array.unsafe_set times !i mt;
  Array.unsafe_set seqs !i ms;
  Array.unsafe_set vals !i mv

(* Zero-alloc accessors: undefined on an empty heap (asserted). *)

let min_time t =
  assert (t.len > 0);
  t.times.(0)

let min_seq t =
  assert (t.len > 0);
  t.seqs.(0)

let min_value t =
  assert (t.len > 0);
  t.vals.(0)

let drop_min t =
  assert (t.len > 0);
  let len = t.len - 1 in
  t.len <- len;
  if len > 0 then begin
    t.times.(0) <- t.times.(len);
    t.seqs.(0) <- t.seqs.(len);
    t.vals.(0) <- t.vals.(len);
    t.vals.(len) <- t.dummy;
    sift_down t
  end
  else t.vals.(0) <- t.dummy

(* Allocating conveniences, kept for tests and oracles. *)

let peek t = if t.len = 0 then None else Some (t.times.(0), t.seqs.(0), t.vals.(0))

let pop t =
  if t.len = 0 then None
  else begin
    let r = (t.times.(0), t.seqs.(0), t.vals.(0)) in
    drop_min t;
    Some r
  end

let clear t =
  Array.fill t.vals 0 t.len t.dummy;
  t.len <- 0
