type 'a entry = { time : int; seq : int; value : 'a }

type 'a t = { mutable arr : 'a entry option array; mutable len : int }

let create () = { arr = Array.make 16 None; len = 0 }

let size t = t.len
let is_empty t = t.len = 0

let get t i =
  match t.arr.(i) with
  | Some e -> e
  | None -> assert false

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.arr.(i) in
  t.arr.(i) <- t.arr.(j);
  t.arr.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less (get t i) (get t parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && less (get t l) (get t !smallest) then smallest := l;
  if r < t.len && less (get t r) (get t !smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let arr = Array.make (2 * Array.length t.arr) None in
  Array.blit t.arr 0 arr 0 t.len;
  t.arr <- arr

let add t ~time ~seq value =
  if t.len = Array.length t.arr then grow t;
  t.arr.(t.len) <- Some { time; seq; value };
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let peek t =
  if t.len = 0 then None
  else
    let e = get t 0 in
    Some (e.time, e.seq, e.value)

let pop t =
  if t.len = 0 then None
  else begin
    let e = get t 0 in
    t.len <- t.len - 1;
    t.arr.(0) <- t.arr.(t.len);
    t.arr.(t.len) <- None;
    if t.len > 0 then sift_down t 0;
    Some (e.time, e.seq, e.value)
  end

let clear t =
  Array.fill t.arr 0 t.len None;
  t.len <- 0
