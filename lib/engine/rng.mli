(** Deterministic pseudo-random number generation for the simulator.

    A self-contained SplitMix64 generator: fast, high quality for
    simulation purposes, and fully reproducible from a seed.  Every
    simulation object draws randomness from an explicit generator so runs
    are deterministic and experiments are repeatable. *)

type t

val create : int64 -> t
(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each simulated component its own stream. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val bool : t -> bool

val uniform : t -> lo:float -> hi:float -> float
(** Uniform float in [\[lo, hi)]. Requires [lo <= hi]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian sample (Box–Muller). *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Log-normal sample; [mu]/[sigma] are the parameters of the
    underlying normal. *)

val pareto : t -> scale:float -> shape:float -> float
(** Pareto sample with minimum [scale] and tail index [shape].
    Smaller [shape] means heavier tail. Requires both positive. *)
