(** Flat-array 4-ary min-heap keyed by [(time, seq)].

    The backbone of the event queue.  Keys are stored in two parallel
    unboxed [int] arrays and payloads in a third array, so pushing and
    popping entries allocates nothing — there is no per-entry record or
    option box on the hot path (see {e DESIGN §9} for the performance
    model).

    Ordering is lexicographic on [(time, seq)]: entries with equal
    timestamps pop in ascending sequence order.  {!Sim} feeds a
    strictly increasing sequence number, which makes same-timestamp
    events fire in scheduling order — the determinism contract every
    figure in the reproduction relies on. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] is an empty heap.  [dummy] fills vacated payload
    slots so popped values are not retained; it is never returned.
    [capacity] (default 64) is the initial backing-array size; the heap
    grows by doubling. *)

val size : 'a t -> int
(** Number of entries currently stored. O(1). *)

val is_empty : 'a t -> bool

val add : 'a t -> time:int -> seq:int -> 'a -> unit
(** Insert an entry. O(log₄ n) amortized; allocates only when the
    backing arrays grow. *)

(** {1 Zero-allocation access}

    The four accessors below are the engine's hot path.  They are
    undefined on an empty heap (asserted in debug builds): guard with
    {!is_empty}. *)

val min_time : 'a t -> int
(** Timestamp of the smallest entry. *)

val min_seq : 'a t -> int
(** Sequence number of the smallest entry. *)

val min_value : 'a t -> 'a
(** Payload of the smallest entry, without removing it. *)

val drop_min : 'a t -> unit
(** Remove the smallest entry. O(log₄ n), allocation-free. *)

(** {1 Allocating conveniences}

    Option/tuple-returning wrappers, used by tests and model oracles;
    the simulator itself never calls them. *)

val peek : 'a t -> (int * int * 'a) option
(** Smallest [(time, seq, value)] without removing it. *)

val pop : 'a t -> (int * int * 'a) option
(** Remove and return the smallest entry. *)

val clear : 'a t -> unit
(** Drop every entry (payload slots are reset to [dummy]). *)
