(** Binary min-heap keyed by [(time, seq)].

    The backbone of the event queue: entries with equal timestamps pop in
    insertion (sequence) order, which makes the simulator deterministic. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> time:int -> seq:int -> 'a -> unit
(** Insert an entry. O(log n). *)

val peek : 'a t -> (int * int * 'a) option
(** Smallest [(time, seq, value)] without removing it. *)

val pop : 'a t -> (int * int * 'a) option
(** Remove and return the smallest entry. O(log n). *)

val clear : 'a t -> unit
