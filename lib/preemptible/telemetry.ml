type config = {
  tick_ns : int;
  slos : Obs.Slo.spec list;
  sketch_alpha : float;
  audit_capacity : int;
}

let default =
  {
    tick_ns = 1_000_000;
    slos = [ Obs.Slo.default_spec ];
    sketch_alpha = 0.01;
    audit_capacity = 8192;
  }

type core_attr = {
  service_ns : int;
  sched_ns : int;
  preempt_ns : int;
  idle_ns : int;
  wasted_ns : int;
}

type frame = {
  f_at_ns : int;
  f_elapsed_ns : int;
  f_quantum_ns : int;
  f_guard : Guard.state option;
  f_arrivals : int;
  f_completions : int;
  f_qlen : int;
  f_p50_ns : float;
  f_p99_ns : float;
  f_cores : core_attr array;
  f_slos : (string * Obs.Slo.status) list;
}

type audit_entry = {
  a_at_ns : int;
  a_arrival_rate_per_s : float;
  a_p99_ns : float;
  a_qlen : int;
  a_quantum_before_ns : int;
  a_quantum_after_ns : int;
}

type report = {
  t_ticks : int;
  t_cores : core_attr array;
  t_slos : Obs.Slo.report list;
  t_audit : audit_entry list;
  t_audit_dropped : int;
}

type slo_rt = {
  tracker : Obs.Slo.t;
  (* counter-track names, built once so per-tick emission reuses them *)
  c_burn : string;
  c_budget : string;
  mutable next_roll_ns : int;
  mutable last : Obs.Slo.status option;
  mutable was_firing : bool;
}

(* Per-window accumulators the server feeds between ticks. *)
type acc = {
  mutable ac_sched : int;
  mutable ac_preempt : int;
  mutable ac_wasted : int;
}

type t = {
  cfg : config;
  n : int;
  cores : Hw.Core.t array;
  guard : Guard.t option;
  trace : Obs.Trace.t option;
  sketches : Obs.Sketch.t array;
  global : Obs.Sketch.t;
  slos : slo_rt array;
  accs : acc array;
  prev_busy : int array;
  prev_stall : int array;
  mutable prev_now : int;
  mutable prev_arrivals : int;
  mutable ticks : int;
  (* run totals *)
  tot_service : int array;
  tot_sched : int array;
  tot_preempt : int array;
  tot_idle : int array;
  tot_wasted : int array;
  mutable audit_rev : audit_entry list;
  mutable audit_count : int;
  mutable audit_dropped : int;
}

let create cfg ~n_cores ~cores ?guard ?trace () =
  if cfg.tick_ns <= 0 then invalid_arg "Telemetry: tick_ns must be positive";
  if cfg.sketch_alpha <= 0.0 || cfg.sketch_alpha >= 1.0 then
    invalid_arg "Telemetry: sketch_alpha outside (0,1)";
  if cfg.audit_capacity < 0 then invalid_arg "Telemetry: negative audit_capacity";
  if n_cores <= 0 then invalid_arg "Telemetry: need at least one core";
  if Array.length cores < n_cores then invalid_arg "Telemetry: cores array too short";
  List.iter Obs.Slo.validate cfg.slos;
  {
    cfg;
    n = n_cores;
    cores;
    guard;
    trace;
    sketches = Array.init n_cores (fun _ -> Obs.Sketch.create ~alpha:cfg.sketch_alpha ());
    global = Obs.Sketch.create ~alpha:cfg.sketch_alpha ();
    slos =
      Array.of_list
        (List.map
           (fun sp ->
             {
               tracker = Obs.Slo.create sp;
               c_burn = "slo." ^ sp.Obs.Slo.name ^ ".burn_x100";
               c_budget = "slo." ^ sp.Obs.Slo.name ^ ".budget_x100";
               next_roll_ns = sp.Obs.Slo.window_ns;
               last = None;
               was_firing = false;
             })
           cfg.slos);
    accs = Array.init n_cores (fun _ -> { ac_sched = 0; ac_preempt = 0; ac_wasted = 0 });
    prev_busy = Array.make n_cores 0;
    prev_stall = Array.make n_cores 0;
    prev_now = 0;
    prev_arrivals = 0;
    ticks = 0;
    tot_service = Array.make n_cores 0;
    tot_sched = Array.make n_cores 0;
    tot_preempt = Array.make n_cores 0;
    tot_idle = Array.make n_cores 0;
    tot_wasted = Array.make n_cores 0;
    audit_rev = [];
    audit_count = 0;
    audit_dropped = 0;
  }

let note_latency t ~core ~latency_ns =
  Obs.Sketch.add t.sketches.(core) (float_of_int latency_ns);
  Array.iter (fun s -> Obs.Slo.observe s.tracker ~latency_ns) t.slos

let note_sched t ~core ~ns =
  let a = t.accs.(core) in
  a.ac_sched <- a.ac_sched + ns

let note_preempt t ~core ~ns =
  let a = t.accs.(core) in
  a.ac_preempt <- a.ac_preempt + ns

let note_wasted t ~core ~ns =
  let a = t.accs.(core) in
  a.ac_wasted <- a.ac_wasted + ns

let audit t ~now ~snapshot ~quantum_before_ns ~quantum_after_ns =
  if t.audit_count < t.cfg.audit_capacity then begin
    t.audit_rev <-
      {
        a_at_ns = now;
        a_arrival_rate_per_s = snapshot.Stats_window.arrival_rate_per_s;
        a_p99_ns = snapshot.Stats_window.p99_ns;
        a_qlen = snapshot.Stats_window.max_qlen;
        a_quantum_before_ns = quantum_before_ns;
        a_quantum_after_ns = quantum_after_ns;
      }
      :: t.audit_rev;
    t.audit_count <- t.audit_count + 1
  end
  else t.audit_dropped <- t.audit_dropped + 1;
  match t.trace with
  | Some tr ->
    Obs.Trace.instant tr Obs.Trace.Sched ~name:"qc.decision" ~track:0
      ~arg:(if quantum_after_ns = max_int then 0 else quantum_after_ns)
  | None -> ()

let burn_x100 b = int_of_float (Float.min (b *. 100.0) 1e9)

let roll_slos t ~now =
  Array.iteri
    (fun idx s ->
      if now >= s.next_roll_ns then begin
        let window = (Obs.Slo.spec s.tracker).Obs.Slo.window_ns in
        let st = Obs.Slo.roll s.tracker ~now in
        s.last <- Some st;
        (* If the tick outpaces the window we roll once per tick and the
           window stretches; catch the schedule up either way. *)
        while s.next_roll_ns <= now do
          s.next_roll_ns <- s.next_roll_ns + window
        done;
        (match t.trace with
        | Some tr ->
          Obs.Trace.counter tr Obs.Trace.Server ~name:s.c_burn
            ~value:(burn_x100 st.Obs.Slo.fast_burn);
          Obs.Trace.counter tr Obs.Trace.Server ~name:s.c_budget
            ~value:(burn_x100 st.Obs.Slo.budget_consumed);
          if st.Obs.Slo.burn_firing && not s.was_firing then
            Obs.Trace.instant tr Obs.Trace.Server ~name:"slo.burn_fire" ~track:idx
              ~arg:(burn_x100 st.Obs.Slo.fast_burn)
          else if (not st.Obs.Slo.burn_firing) && s.was_firing then
            Obs.Trace.instant tr Obs.Trace.Server ~name:"slo.burn_clear" ~track:idx
              ~arg:(burn_x100 st.Obs.Slo.fast_burn)
        | None -> ());
        s.was_firing <- st.Obs.Slo.burn_firing
      end)
    t.slos

let tick t ~now ~quantum_ns ~arrivals_total ~qlen =
  let elapsed = now - t.prev_now in
  (* Merge the per-core window sketches into the global one (exact:
     bucket-wise addition), then read the windowed quantiles. *)
  Obs.Sketch.clear t.global;
  Array.iter (fun s -> Obs.Sketch.merge_into ~dst:t.global ~src:s) t.sketches;
  let completions = Obs.Sketch.count t.global in
  let p50 = match Obs.Sketch.quantile_opt t.global 0.50 with Some v -> v | None -> nan in
  let p99 = match Obs.Sketch.quantile_opt t.global 0.99 with Some v -> v | None -> nan in
  let cores =
    Array.init t.n (fun i ->
        let busy = Hw.Core.busy_ns t.cores.(i) in
        let stall = Hw.Core.stall_ns t.cores.(i) in
        let service = busy - t.prev_busy.(i) in
        t.prev_busy.(i) <- busy;
        let d_stall = stall - t.prev_stall.(i) in
        t.prev_stall.(i) <- stall;
        let a = t.accs.(i) in
        let preempt = a.ac_preempt + d_stall in
        let sched = a.ac_sched in
        let wasted = a.ac_wasted in
        a.ac_preempt <- 0;
        a.ac_sched <- 0;
        a.ac_wasted <- 0;
        let idle = max 0 (elapsed - service - sched - preempt) in
        t.tot_service.(i) <- t.tot_service.(i) + service;
        t.tot_sched.(i) <- t.tot_sched.(i) + sched;
        t.tot_preempt.(i) <- t.tot_preempt.(i) + preempt;
        t.tot_idle.(i) <- t.tot_idle.(i) + idle;
        t.tot_wasted.(i) <- t.tot_wasted.(i) + wasted;
        { service_ns = service; sched_ns = sched; preempt_ns = preempt;
          idle_ns = idle; wasted_ns = wasted })
  in
  Array.iter Obs.Sketch.clear t.sketches;
  roll_slos t ~now;
  (match t.trace with
  | Some tr ->
    if completions > 0 then begin
      Obs.Trace.counter tr Obs.Trace.Server ~name:"tel.p50_ns" ~value:(int_of_float p50);
      Obs.Trace.counter tr Obs.Trace.Server ~name:"tel.p99_ns" ~value:(int_of_float p99)
    end;
    Obs.Trace.counter tr Obs.Trace.Server ~name:"tel.qlen" ~value:qlen
  | None -> ());
  let arrivals = arrivals_total - t.prev_arrivals in
  t.prev_arrivals <- arrivals_total;
  t.prev_now <- now;
  t.ticks <- t.ticks + 1;
  {
    f_at_ns = now;
    f_elapsed_ns = elapsed;
    f_quantum_ns = quantum_ns;
    f_guard = Option.map Guard.breaker_state t.guard;
    f_arrivals = arrivals;
    f_completions = completions;
    f_qlen = qlen;
    f_p50_ns = p50;
    f_p99_ns = p99;
    f_cores = cores;
    f_slos =
      Array.to_list t.slos
      |> List.filter_map (fun s ->
             match s.last with
             | Some st -> Some ((Obs.Slo.spec s.tracker).Obs.Slo.name, st)
             | None -> None);
  }

let report t =
  {
    t_ticks = t.ticks;
    t_cores =
      Array.init t.n (fun i ->
          {
            service_ns = t.tot_service.(i);
            sched_ns = t.tot_sched.(i);
            preempt_ns = t.tot_preempt.(i);
            idle_ns = t.tot_idle.(i);
            wasted_ns = t.tot_wasted.(i);
          });
    t_slos = Array.to_list t.slos |> List.map (fun s -> Obs.Slo.report s.tracker);
    t_audit = List.rev t.audit_rev;
    t_audit_dropped = t.audit_dropped;
  }

let pp_core_attr ppf c =
  Format.fprintf ppf
    "service=%.3fms (wasted %.3fms) sched=%.3fms preempt=%.3fms idle=%.3fms"
    (float_of_int c.service_ns /. 1e6)
    (float_of_int c.wasted_ns /. 1e6)
    (float_of_int c.sched_ns /. 1e6)
    (float_of_int c.preempt_ns /. 1e6)
    (float_of_int c.idle_ns /. 1e6)
