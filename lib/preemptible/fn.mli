(** Preemptible functions — the scheduler-facing unit of execution
    (Sec III-D / IV-C).

    A function thread [Fn] pairs a request with a {!Context.ctx} and a
    deadline.  [fn_launch] starts it; control returns to the caller when
    it completes or its time slice expires; [fn_resume] continues a
    preempted function; [fn_completed] tests for completion.  In the
    simulation the actual CPU time is driven by {!Hw.Core}; this module
    owns the bookkeeping (remaining work, deadline, status, per-request
    accounting). *)

type status = Created | Running | Preempted | Completed

type t

val create : Workload.Request.t -> ctx:Context.ctx -> t

val request : t -> Workload.Request.t

val context : t -> Context.ctx

val status : t -> status

val remaining_ns : t -> int

val deadline_ns : t -> int
(** Absolute deadline set by the last launch/resume; [max_int] when
    none. *)

val preempt_count : t -> int

val launch : t -> now:int -> quantum_ns:int -> unit
(** [fn_launch]: mark running with deadline [now + quantum]. Raises if
    not in [Created] state. *)

val resume : t -> now:int -> quantum_ns:int -> unit
(** [fn_resume]: continue a preempted function. Raises if not
    [Preempted]. *)

val note_progress : t -> executed_ns:int -> unit
(** Account [executed_ns] of service received (on preemption or
    completion). Raises if it exceeds the remaining work. *)

val preempt : t -> unit
(** Mark preempted (after {!note_progress}). Raises if not running. *)

val complete : t -> unit
(** Mark completed. Raises if work remains or not running. *)

val completed : t -> bool
(** [fn_completed]. *)

val sojourn_ns : t -> now:int -> int
(** Time since arrival. *)
