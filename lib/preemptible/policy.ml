type pick = Run_new | Resume_preempted

type t = {
  name : string;
  pick : new_ready:int -> preempted_ready:int -> pick;
  quantum_ns : now:int -> cls:Workload.Request.cls -> int;
  on_window : Stats_window.snapshot -> unit;
}

let new_first ~new_ready:_ ~preempted_ready:_ = Run_new

let no_preempt =
  {
    name = "no-preempt";
    pick = new_first;
    quantum_ns = (fun ~now:_ ~cls:_ -> max_int);
    on_window = ignore;
  }

let fcfs_preempt ~quantum_ns =
  if quantum_ns <= 0 then invalid_arg "Policy.fcfs_preempt: quantum must be positive";
  {
    name = Printf.sprintf "fcfs-preempt(%dus)" (quantum_ns / 1000);
    pick = new_first;
    quantum_ns = (fun ~now:_ ~cls:_ -> quantum_ns);
    on_window = ignore;
  }

let processor_sharing ~quantum_ns =
  if quantum_ns <= 0 then invalid_arg "Policy.processor_sharing: quantum must be positive";
  let flip = ref false in
  {
    name = Printf.sprintf "ps(%dus)" (quantum_ns / 1000);
    pick =
      (fun ~new_ready:_ ~preempted_ready:_ ->
        flip := not !flip;
        if !flip then Run_new else Resume_preempted);
    quantum_ns = (fun ~now:_ ~cls:_ -> quantum_ns);
    on_window = ignore;
  }

let adaptive controller =
  {
    name = "fcfs-preempt-adaptive";
    pick = new_first;
    quantum_ns = (fun ~now:_ ~cls:_ -> Quantum_controller.quantum_ns controller);
    on_window = (fun s -> ignore (Quantum_controller.observe controller s));
  }

let with_be_quantum base ~be_quantum_ns =
  if be_quantum_ns <= 0 then invalid_arg "Policy.with_be_quantum: quantum must be positive";
  {
    base with
    name = Printf.sprintf "%s+be(%dus)" base.name (be_quantum_ns / 1000);
    quantum_ns =
      (fun ~now ~cls ->
        match cls with
        | Workload.Request.Best_effort -> be_quantum_ns
        | Workload.Request.Latency_critical -> base.quantum_ns ~now ~cls);
  }
