(** Scheduling policies (mechanism/policy separation, Sec III-C).

    A policy tells a worker two things:
    - what to pick when it becomes idle: a fresh request from its local
      queue, or a preempted function from the global long queue;
    - what time quantum to give the function it is about to run.

    Policies are plain values, so applications express their own in a
    few lines (the paper's Sec V-C policies #1 and #2 are
    {!fcfs_preempt} and {!adaptive}). *)

type pick = Run_new | Resume_preempted
(** What a worker should run next, given both options exist. When only
    one queue is non-empty the worker takes what is available; [pick]
    breaks the tie. *)

type t = {
  name : string;
  pick : new_ready:int -> preempted_ready:int -> pick;
      (** tie-break given the two queue occupancies (both > 0) *)
  quantum_ns : now:int -> cls:Workload.Request.cls -> int;
      (** time slice for the function about to run; [max_int] means run
          to completion *)
  on_window : Stats_window.snapshot -> unit;
      (** called at every statistics-window boundary (controller hook;
          no-op for static policies) *)
}

val no_preempt : t
(** Run-to-completion c-FCFS: the non-preemptive baseline. *)

val fcfs_preempt : quantum_ns:int -> t
(** Sec V-C policy #1: centralized FCFS with preemption at a fixed time
    quantum; new requests get preemptive priority over preempted long
    requests. *)

val processor_sharing : quantum_ns:int -> t
(** PS approximation: round-robins between fresh and preempted work at
    the given quantum. *)

val adaptive : Quantum_controller.t -> t
(** Sec V-C policy #2 / Algorithm 1: FCFS with preemption whose quantum
    the controller adjusts at every window boundary. *)

val with_be_quantum : t -> be_quantum_ns:int -> t
(** Derive a policy that gives best-effort requests their own (usually
    larger) quantum while latency-critical requests keep the base
    policy's. *)
