type mechanism =
  | Uintr_utimer of Utimer.config
  | Uintr_hw_offload
  | Signal_utimer of { poll_ns : int }
  | Kernel_timer
  | No_mechanism

type discipline = Fifo | Srpt_oracle | Edf of int

type config = {
  n_workers : int;
  policy : Policy.t;
  mechanism : mechanism;
  discipline : discipline;
  cancel_after_slo : int option;
  dispatch_cost_ns : int;
  launch_cost_ns : int;
  complete_cost_ns : int;
  ctx_pool_capacity : int;
  stack_kb : int;
  stats_window_ns : int;
  work_stealing : bool;
  costs : Ksim.Costs.t;
  hw : Hw.Params.t;
  faults : Fault.t option;
  watchdog : Utimer.watchdog option;
  wedge_ns : int;
  seed : int64;
  max_events : int;
  trace : Obs.Trace.config option;
  guard : Guard.config option;
  telemetry : Telemetry.config option;
}

let default_config ~n_workers ~policy ~mechanism =
  {
    n_workers;
    policy;
    mechanism;
    discipline = Fifo;
    cancel_after_slo = None;
    dispatch_cost_ns = 250;
    launch_cost_ns = 80;
    complete_cost_ns = 40;
    ctx_pool_capacity = 8192;
    stack_kb = 16;
    stats_window_ns = Engine.Units.ms 100;
    work_stealing = true;
    costs = Ksim.Costs.default;
    hw = Hw.Params.default;
    faults = None;
    watchdog = None;
    wedge_ns = 2_000;
    seed = 42L;
    max_events = 400_000_000;
    trace = None;
    guard = None;
    telemetry = None;
  }

type probes = {
  on_complete : now:int -> latency_ns:int -> cls:Workload.Request.cls -> unit;
  on_window : Stats_window.snapshot -> quantum_ns:int -> unit;
  on_tick : Telemetry.frame -> unit;
}

let no_probes =
  {
    on_complete = (fun ~now:_ ~latency_ns:_ ~cls:_ -> ());
    on_window = (fun _ ~quantum_ns:_ -> ());
    on_tick = ignore;
  }

type resilience = {
  fault_report : Fault.report;
  wd : Utimer.wd_stats option;
  timer_health : Utimer.health option;
  wedged : int;
  fallback_engaged : bool;
}

type result = {
  duration_ns : int;
  measured_ns : int;
  offered : int;
  completed : int;
  cancelled : int;
  dropped : int;
  shed : int;
  goodput : int;
  goodput_rps : float;
  all : Stat.Summary.report;
  lc : Stat.Summary.report option;
  be : Stat.Summary.report option;
  throughput_rps : float;
  offered_rps : float;
  preemptions : int;
  timer_interrupts : int;
  spurious_interrupts : int;
  ctx_high_water : int;
  worker_busy_frac : float;
  long_queue_hwm : int;
  dispatch_queue_hwm : int;
  sim_events : int;
  resilience : resilience option;
  guard : Guard.report option;
  trace : Obs.Trace.t option;
  metrics : Obs.Metrics.snapshot;
  telemetry : Telemetry.report option;
}

(* ------------------------------------------------------------------ *)
(* Internal state                                                      *)
(* ------------------------------------------------------------------ *)

type worker = {
  wid : int;
  core : Hw.Core.t;
  local : Workload.Request.t Rqueue.t;
  mutable current : Fn.t option;
  mutable cur_deadline : int;
  mutable transition : bool; (* paying a switch overhead; do not schedule *)
  (* Preallocated dispatch-path callbacks (DESIGN §9): each reads the
     worker's [current] function when it fires, so launching, resuming,
     completing, and transitioning allocate no closures.  Set right
     after [st] is built (they capture it). *)
  mutable k_transition : unit -> unit;
  mutable k_complete : unit -> unit;
  mutable k_launch : unit -> unit;
  mutable k_resume : unit -> unit;
}

type mech_ops = {
  mech_arm : int -> quantum_ns:int -> unit;
  mech_disarm : int -> unit;
  arm_cost_ns : int;
  disarm_cost_ns : int;
  entry_cost_ns : int;
  exit_cost_ns : int;
  mech_shutdown : unit -> unit;
  mech_fired : unit -> int;
}

type st = {
  sim : Engine.Sim.t;
  cfg : config;
  arrival_rng : Engine.Rng.t;
  service_rng : Engine.Rng.t;
  workers : worker array;
  long_q : Fn.t Rqueue.t;
  dispatch_q : Workload.Request.t Rqueue.t;
  dispatcher : Hw.Core.t;
  pool : Context.t;
  req_pool : Workload.Request.Pool.t;
  window : Stats_window.t;
  sum_all : Stat.Summary.t;
  sum_lc : Stat.Summary.t;
  sum_be : Stat.Summary.t;
  probes : probes;
  warmup_ns : int;
  duration_ns : int;
  mutable mech : mech_ops;
  mutable outstanding : int;
  mutable arrivals_done : bool;
  mutable drained : bool;
  mutable measured_offered : int;
  mutable measured_completed : int;
  mutable completed_in_window : int;
  mutable cancelled_measured : int;
  mutable measured_shed : int;
  mutable measured_expired : int;
  mutable goodput_measured : int;
  mutable goodput_in_window : int;
  mutable preemptions : int;
  mutable spurious : int;
  mutable next_id : int;
  mutable window_ev : Engine.Sim.event; (* Sim.null between windows *)
  mutable k_dispatch : unit -> unit; (* preallocated dispatcher on_done *)
  wedge_point : Fault.point option;
  mutable wedged : int;
  mutable ut : Utimer.t option;
  mutable fallback_engaged : bool;
  trace : Obs.Trace.t option;
  metrics : Obs.Metrics.t;
  m_lat : Obs.Metrics.histogram;
  guard : Guard.t option;
  (* Live telemetry; [None] (the default) must be an exact no-op on
     the hot path.  Set after [st] is built (needs the worker cores),
     like [mech]. *)
  mutable tel : Telemetry.t option;
  mutable tel_ev : Engine.Sim.event;
  (* Client-side retry state; live only when the guard has a retry
     config.  [retry_attempts] maps in-flight request id -> attempt
     number; an id still present when its patience expires means the
     client gave up on that attempt. *)
  mutable retry_rng : Engine.Rng.t option;
  retry_attempts : (int, int) Hashtbl.t;
}

let now st = Engine.Sim.now st.sim

let total_qlen st =
  Rqueue.length st.dispatch_q
  + Rqueue.length st.long_q
  + Array.fold_left (fun acc w -> acc + Rqueue.length w.local) 0 st.workers

let measured st (req : Workload.Request.t) = req.Workload.Request.arrival_ns >= st.warmup_ns

(* Trace probes.  Request-lifecycle events use the request id as track
   (cat Request); scheduling spans use the worker id (cat Sched).  All
   emission is passive — no sim events, no RNG — so traced and untraced
   runs of the same seed are bit-identical. *)

let tr_req st (req : Workload.Request.t) ~name ~arg =
  match st.trace with
  | Some trace ->
    Obs.Trace.instant trace Obs.Trace.Request ~name ~track:req.Workload.Request.id ~arg
  | None -> ()

let tr_server st ~name ~track ~arg =
  match st.trace with
  | Some trace -> Obs.Trace.instant trace Obs.Trace.Server ~name ~track ~arg
  | None -> ()

let tr_guard st ~name ~track ~arg =
  match st.trace with
  | Some trace -> Obs.Trace.instant trace Obs.Trace.Guard ~name ~track ~arg
  | None -> ()

let quantum_span_begin st w ~quantum_ns =
  match st.trace with
  | Some trace ->
    Obs.Trace.span_begin trace Obs.Trace.Sched ~name:"quantum" ~track:w.wid
      ~arg:(if quantum_ns = max_int then 0 else quantum_ns)
  | None -> ()

let quantum_span_end st w =
  match st.trace with
  | Some trace -> Obs.Trace.span_end trace Obs.Trace.Sched ~name:"quantum" ~track:w.wid
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Worker scheduling                                                   *)
(* ------------------------------------------------------------------ *)

let rec start_segment st w fn quantum_ns =
  w.cur_deadline <- Fn.deadline_ns fn;
  quantum_span_begin st w ~quantum_ns;
  if quantum_ns <> max_int then st.mech.mech_arm w.wid ~quantum_ns;
  Hw.Core.begin_work w.core ~duration:(Fn.remaining_ns fn) ~on_done:w.k_complete

and complete_current st w fn =
  let t = now st in
  quantum_span_end st w;
  tr_req st (Fn.request fn) ~name:"req.done" ~arg:w.wid;
  st.mech.mech_disarm w.wid;
  Fn.note_progress fn ~executed_ns:(Fn.remaining_ns fn);
  Fn.complete fn;
  Context.release st.pool (Fn.context fn);
  st.outstanding <- st.outstanding - 1;
  let req = Fn.request fn in
  let latency = t - req.Workload.Request.arrival_ns in
  Stats_window.note_completion st.window ~now:t ~latency_ns:latency
    ~service_ns:req.Workload.Request.service_ns;
  (* Goodput: did the completion reach a client still waiting for it?
     With the retry model the table entry is the client's presence
     (removed when its patience expires); without it, plain latency vs
     patience.  No guard = every completion is goodput. *)
  let within_patience =
    match st.guard with
    | None -> true
    | Some g ->
      (match Guard.client_timeout_ns g with
      | None -> true
      | Some tmo ->
        (match st.retry_rng with
        | Some _ -> Hashtbl.mem st.retry_attempts req.Workload.Request.id
        | None -> latency <= tmo))
  in
  (match st.guard with
  | Some g ->
    (match st.retry_rng with
    | Some _ -> Hashtbl.remove st.retry_attempts req.Workload.Request.id
    | None -> ());
    if within_patience then Guard.note_goodput g else Guard.note_late g
  | None -> ());
  (match st.tel with
  | Some tel ->
    (* A completion nobody waits for anymore is pure wasted service. *)
    if not within_patience then
      Telemetry.note_wasted tel ~core:w.wid ~ns:req.Workload.Request.service_ns
  | None -> ());
  if measured st req then begin
    st.measured_completed <- st.measured_completed + 1;
    if t <= st.duration_ns then st.completed_in_window <- st.completed_in_window + 1;
    if within_patience then begin
      st.goodput_measured <- st.goodput_measured + 1;
      if t <= st.duration_ns then st.goodput_in_window <- st.goodput_in_window + 1
    end;
    Stat.Summary.record st.sum_all (float_of_int latency);
    (match req.Workload.Request.cls with
    | Workload.Request.Latency_critical -> Stat.Summary.record st.sum_lc (float_of_int latency)
    | Workload.Request.Best_effort -> Stat.Summary.record st.sum_be (float_of_int latency));
    Obs.Metrics.observe st.m_lat (float_of_int latency);
    (match st.tel with
    | Some tel -> Telemetry.note_latency tel ~core:w.wid ~latency_ns:latency
    | None -> ());
    st.probes.on_complete ~now:t ~latency_ns:latency ~cls:req.Workload.Request.cls
  end;
  (* Retirement point: the record may back a later arrival from here
     on (no-op for caller-owned requests, e.g. injected traces). *)
  Workload.Request.Pool.release st.req_pool req;
  w.current <- None;
  w.cur_deadline <- max_int;
  let cost = st.cfg.complete_cost_ns + st.mech.disarm_cost_ns in
  (match st.tel with
  | Some tel -> Telemetry.note_sched tel ~core:w.wid ~ns:cost
  | None -> ());
  after_transition st w cost;
  (* A freed context may unblock other idle workers that had new
     requests queued but no context to run them on. *)
  wake_idle st;
  check_drain st

and after_transition st w cost =
  w.transition <- true;
  ignore (Engine.Sim.after st.sim cost w.k_transition)

and wake_idle st =
  Array.iter
    (fun w -> if w.current = None && not w.transition then schedule_next st w)
    st.workers

and schedule_next st w =
  if w.current = None && not w.transition then begin
    let new_ready = Rqueue.length w.local in
    let pre_ready = Rqueue.length st.long_q in
    if new_ready > 0 || pre_ready > 0 then begin
      let choice =
        if new_ready = 0 then Policy.Resume_preempted
        else if pre_ready = 0 then Policy.Run_new
        else st.cfg.policy.Policy.pick ~new_ready ~preempted_ready:pre_ready
      in
      match choice with
      | Policy.Run_new ->
        if Context.free_count st.pool > 0 then launch_new st w ~from:w
        else if pre_ready > 0 then resume_preempted st w
      | Policy.Resume_preempted -> resume_preempted st w
    end
    else if st.cfg.work_stealing then begin
      (* Both queues empty: steal a fresh request from the most loaded
         sibling (the centralized lists plus stealing give the load
         balancing the paper attributes to the design). *)
      let victim = ref None in
      Array.iter
        (fun w' ->
          let len = Rqueue.length w'.local in
          if len >= 1 && w'.wid <> w.wid then
            match !victim with
            | Some v when Rqueue.length v.local >= len -> ()
            | Some _ | None -> victim := Some w')
        st.workers;
      match !victim with
      | Some v when Context.free_count st.pool > 0 -> launch_new st w ~from:v
      | Some _ | None -> ()
    end
  end

and pop_disc st (q : Workload.Request.t Rqueue.t) t =
  (* Degraded mode falls back to plain FIFO: the clever disciplines
     scan the queue, and under overload the queue is long. *)
  let fifo = match st.guard with Some g -> Guard.force_fifo g | None -> false in
  if fifo then Rqueue.pop q ~now:t
  else
    match st.cfg.discipline with
    | Fifo -> Rqueue.pop q ~now:t
    | Srpt_oracle -> Rqueue.pop_by q ~now:t ~key:(fun r -> r.Workload.Request.service_ns)
    | Edf slo ->
      Rqueue.pop_by q ~now:t ~key:(fun r -> r.Workload.Request.arrival_ns + slo)

and pop_new st (q : Workload.Request.t Rqueue.t) =
  let t = now st in
  match st.guard with
  | None -> pop_disc st q t
  | Some g ->
    (match Guard.expiry_ns g with
    | None -> pop_disc st q t
    | Some tmo ->
      (* The client already abandoned anything this old; dropping it at
         the pop point frees the worker for work that can still count. *)
      let rec fresh () =
        match pop_disc st q t with
        | Some req when t - req.Workload.Request.arrival_ns > tmo ->
          tr_req st req ~name:"guard.expired" ~arg:(t - req.Workload.Request.arrival_ns);
          Guard.note_expired g;
          st.outstanding <- st.outstanding - 1;
          if measured st req then st.measured_expired <- st.measured_expired + 1;
          Workload.Request.Pool.release st.req_pool req;
          fresh ()
        | r -> r
      in
      (match fresh () with
      | Some _ as r -> r
      | None ->
        (* expiry may have emptied the system *)
        check_drain st;
        None))

and launch_new st w ~from =
  match pop_new st from.local with
  | None -> ()
  | Some req ->
    let ctx = Context.alloc st.pool in
    let fn = Fn.create req ~ctx in
    w.current <- Some fn;
    (* Stealing pays an extra cross-core cacheline transfer. *)
    let steal_cost = if from.wid = w.wid then 0 else st.cfg.hw.Hw.Params.cacheline_ns in
    let cost = st.cfg.launch_cost_ns + st.mech.arm_cost_ns + steal_cost in
    (match st.tel with
    | Some tel -> Telemetry.note_sched tel ~core:w.wid ~ns:cost
    | None -> ());
    ignore (Engine.Sim.after st.sim cost w.k_launch)

and run_current st w ~resuming =
  match w.current with
  | None -> assert false (* [current] is pinned until the segment ends *)
  | Some fn ->
    let t = now st in
    let req = Fn.request fn in
    let quantum_ns =
      st.cfg.policy.Policy.quantum_ns ~now:t ~cls:req.Workload.Request.cls
    in
    if resuming then Fn.resume fn ~now:t ~quantum_ns
    else Fn.launch fn ~now:t ~quantum_ns;
    tr_req st req ~name:"req.run" ~arg:w.wid;
    start_segment st w fn quantum_ns

and resume_preempted st w =
  match Rqueue.pop st.long_q ~now:(now st) with
  | None -> ()
  | Some fn ->
    w.current <- Some fn;
    let cost = st.cfg.costs.Ksim.Costs.fcontext_swap_ns + st.mech.arm_cost_ns in
    (match st.tel with
    | Some tel -> Telemetry.note_sched tel ~core:w.wid ~ns:cost
    | None -> ());
    ignore (Engine.Sim.after st.sim cost w.k_resume)

and check_drain st =
  if st.arrivals_done && st.outstanding = 0 && not st.drained then begin
    st.drained <- true;
    st.mech.mech_shutdown ();
    Engine.Sim.cancel st.window_ev;
    st.window_ev <- Engine.Sim.null;
    Engine.Sim.cancel st.tel_ev;
    st.tel_ev <- Engine.Sim.null
  end

(* Fault "server.wedge": the interrupt caught the worker inside a
   non-preemptible critical section.  The handler cannot switch the
   function out; it defers by re-arming a short retry quantum and
   returns, and the section runs [wedge_ns] longer. *)
let wedge_fires st ~now =
  match st.wedge_point with
  | Some p -> Fault.fires p ~now
  | None -> false

(* Preemption interrupt landing on worker [i]. *)
let on_interrupt st i =
  let w = st.workers.(i) in
  let t = now st in
  match w.current with
  | Some _ when Hw.Core.busy w.core && t >= w.cur_deadline && wedge_fires st ~now:t ->
    st.wedged <- st.wedged + 1;
    tr_server st ~name:"server.wedge" ~track:i ~arg:st.cfg.wedge_ns;
    (match st.cfg.faults with
    | Some f ->
      Fault.mark_detected f ~hint:"server.wedge" ();
      Fault.mark_recovered f ~hint:"server.wedge" ()
    | None -> ());
    Hw.Core.stall w.core st.cfg.wedge_ns;
    st.mech.mech_arm i ~quantum_ns:st.cfg.wedge_ns
  | Some fn when Hw.Core.busy w.core && t >= w.cur_deadline ->
    st.preemptions <- st.preemptions + 1;
    quantum_span_end st w;
    tr_req st (Fn.request fn) ~name:"req.preempt" ~arg:w.wid;
    let executed = Hw.Core.abort w.core in
    Fn.note_progress fn ~executed_ns:executed;
    Fn.preempt fn;
    let doomed =
      match st.cfg.cancel_after_slo with
      | Some slo -> Fn.sojourn_ns fn ~now:t > slo
      | None -> false
    in
    if doomed then begin
      (* Sec III-B: the request already blew its SLO; cancel it and
         release its resources instead of letting it consume more. *)
      tr_req st (Fn.request fn) ~name:"req.cancel" ~arg:w.wid;
      (match st.tel with
      | Some tel ->
        (* Everything the doomed request executed so far is now waste. *)
        let r = Fn.request fn in
        Telemetry.note_wasted tel ~core:w.wid
          ~ns:(r.Workload.Request.service_ns - Fn.remaining_ns fn)
      | None -> ());
      Context.release st.pool (Fn.context fn);
      st.outstanding <- st.outstanding - 1;
      let req = Fn.request fn in
      if measured st req then st.cancelled_measured <- st.cancelled_measured + 1;
      Workload.Request.Pool.release st.req_pool req;
      check_drain st
    end
    else Rqueue.push st.long_q ~now:t fn;
    w.current <- None;
    w.cur_deadline <- max_int;
    let overhead =
      st.mech.entry_cost_ns + st.cfg.costs.Ksim.Costs.fcontext_swap_ns
      + st.mech.exit_cost_ns
    in
    (match st.tel with
    | Some tel -> Telemetry.note_preempt tel ~core:w.wid ~ns:overhead
    | None -> ());
    after_transition st w overhead;
    wake_idle st
  | Some _ when Hw.Core.busy w.core ->
    (* Stale interrupt (the function it was armed for already left the
       core): the handler still runs and steals cycles. *)
    st.spurious <- st.spurious + 1;
    tr_server st ~name:"server.spurious" ~track:i ~arg:1;
    Hw.Core.stall w.core (st.mech.entry_cost_ns + st.mech.exit_cost_ns)
  | Some _ | None ->
    st.spurious <- st.spurious + 1;
    tr_server st ~name:"server.spurious" ~track:i ~arg:0

(* ------------------------------------------------------------------ *)
(* Preemption mechanisms                                               *)
(* ------------------------------------------------------------------ *)

let make_mech st =
  let sim = st.sim and cfg = st.cfg in
  match cfg.mechanism with
  | No_mechanism ->
    {
      mech_arm = (fun _ ~quantum_ns:_ -> ());
      mech_disarm = (fun _ -> ());
      arm_cost_ns = 0;
      disarm_cost_ns = 0;
      entry_cost_ns = 0;
      exit_cost_ns = 0;
      mech_shutdown = (fun () -> ());
      mech_fired = (fun () -> 0);
    }
  | Uintr_utimer ucfg ->
    let fabric = Hw.Uintr.create ?faults:cfg.faults ?trace:st.trace sim cfg.hw in
    let ut =
      Utimer.create ?faults:cfg.faults ?watchdog:cfg.watchdog ?trace:st.trace sim
        ~uintr:fabric ~config:ucfg ()
    in
    st.ut <- Some ut;
    let slots =
      Array.init cfg.n_workers (fun i ->
          let receiver =
            Hw.Uintr.register_receiver fabric
              ~name:(Printf.sprintf "worker-%d" i)
              ~handler:(fun _ ~vector:_ -> on_interrupt st i)
              ()
          in
          Utimer.register ut ~receiver ~vector:0)
    in
    (* Last line of defence: the timer declared itself Degraded (dead
       core, no spares).  Swap the mechanism to per-worker kernel
       timers mid-run — slower preemption beats none — re-arming every
       in-flight quantum from the worker-side intents. *)
    Utimer.set_on_degraded ut (fun () ->
        if not st.fallback_engaged then begin
          st.fallback_engaged <- true;
          tr_server st ~name:"server.fallback" ~track:0 ~arg:0;
          let signal =
            Ksim.Signal.create ?trace:st.trace sim cfg.costs
              ~rng:(Engine.Sim.fork_rng sim)
          in
          let kt =
            Ksim.Ktimer.create sim cfg.costs ~rng:(Engine.Sim.fork_rng sim) ~signal
          in
          let handles = Array.make cfg.n_workers None in
          let cancel i =
            match handles.(i) with
            | Some h ->
              Ksim.Ktimer.cancel h;
              handles.(i) <- None
            | None -> ()
          in
          let karm i ~quantum_ns =
            cancel i;
            handles.(i) <-
              Some
                (Ksim.Ktimer.arm_oneshot kt ~delay_ns:(max 0 quantum_ns)
                   ~handler:(fun () -> on_interrupt st i))
          in
          st.mech <-
            {
              mech_arm = karm;
              mech_disarm = cancel;
              arm_cost_ns = cfg.costs.Ksim.Costs.syscall_ns;
              disarm_cost_ns = cfg.costs.Ksim.Costs.syscall_ns;
              entry_cost_ns = 0;
              exit_cost_ns = cfg.costs.Ksim.Costs.syscall_ns;
              mech_shutdown =
                (fun () ->
                  Utimer.stop ut;
                  Array.iteri (fun i _ -> cancel i) handles);
              mech_fired = (fun () -> Utimer.fired ut + Ksim.Ktimer.expirations kt);
            };
          let t = Engine.Sim.now sim in
          Array.iteri
            (fun i slot ->
              match Utimer.intent_ns slot with
              | Some d -> karm i ~quantum_ns:(d - t)
              | None -> ())
            slots
        end);
    Utimer.start ut;
    {
      mech_arm = (fun i ~quantum_ns -> Utimer.arm_after slots.(i) ~ns:quantum_ns);
      mech_disarm = (fun i -> Utimer.disarm slots.(i));
      (* utimer_arm_deadline is one cache-aligned store *)
      arm_cost_ns = 4;
      disarm_cost_ns = 4;
      entry_cost_ns = cfg.hw.Hw.Params.uintr_handler_entry_ns;
      exit_cost_ns = cfg.hw.Hw.Params.uintr_uiret_ns;
      mech_shutdown = (fun () -> Utimer.stop ut);
      mech_fired = (fun () -> Utimer.fired ut);
    }
  | Uintr_hw_offload ->
    let fabric = Hw.Uintr.create ?trace:st.trace sim cfg.hw in
    let hwt = Hw.Hwtimer.create sim fabric in
    let slots =
      Array.init cfg.n_workers (fun i ->
          let receiver =
            Hw.Uintr.register_receiver fabric
              ~name:(Printf.sprintf "worker-%d" i)
              ~handler:(fun _ ~vector:_ -> on_interrupt st i)
              ()
          in
          Hw.Hwtimer.register hwt ~receiver ~vector:0)
    in
    {
      mech_arm = (fun i ~quantum_ns -> Hw.Hwtimer.arm_after slots.(i) ~ns:quantum_ns);
      mech_disarm = (fun i -> Hw.Hwtimer.disarm slots.(i));
      (* programming the comparator is one register write *)
      arm_cost_ns = 4;
      disarm_cost_ns = 4;
      entry_cost_ns = cfg.hw.Hw.Params.uintr_handler_entry_ns;
      exit_cost_ns = cfg.hw.Hw.Params.uintr_uiret_ns;
      mech_shutdown = (fun () -> Array.iter Hw.Hwtimer.disarm slots);
      mech_fired = (fun () -> Hw.Hwtimer.fired hwt);
    }
  | Signal_utimer { poll_ns } ->
    if poll_ns <= 0 then invalid_arg "Server: Signal_utimer poll must be positive";
    let signal =
      Ksim.Signal.create ?trace:st.trace sim cfg.costs ~rng:(Engine.Sim.fork_rng sim)
    in
    let deadlines = Array.make cfg.n_workers max_int in
    let fired = ref 0 in
    let running = ref true in
    let rec loop () =
      if !running then begin
        let t = Engine.Sim.now sim in
        let cost = ref (30 + (cfg.n_workers * 8)) in
        Array.iteri
          (fun i d ->
            if d <= t then begin
              deadlines.(i) <- max_int;
              incr fired;
              (* pthread_kill from the timer thread: a syscall per fire *)
              cost := !cost + cfg.costs.Ksim.Costs.syscall_ns;
              ignore
                (Engine.Sim.after sim !cost (fun () ->
                     Ksim.Signal.deliver signal ~handler:(fun () -> on_interrupt st i) ()))
            end)
          deadlines;
        ignore (Engine.Sim.after sim (max poll_ns !cost) loop)
      end
    in
    loop ();
    {
      mech_arm =
        (fun i ~quantum_ns -> deadlines.(i) <- Engine.Sim.now sim + quantum_ns);
      mech_disarm = (fun i -> deadlines.(i) <- max_int);
      arm_cost_ns = 4;
      disarm_cost_ns = 4;
      entry_cost_ns = 0 (* dispatch cost is inside the signal path *);
      exit_cost_ns = cfg.costs.Ksim.Costs.syscall_ns (* sigreturn *);
      mech_shutdown = (fun () -> running := false);
      mech_fired = (fun () -> !fired);
    }
  | Kernel_timer ->
    let signal =
      Ksim.Signal.create ?trace:st.trace sim cfg.costs ~rng:(Engine.Sim.fork_rng sim)
    in
    let ktimer =
      Ksim.Ktimer.create sim cfg.costs ~rng:(Engine.Sim.fork_rng sim) ~signal
    in
    let handles = Array.make cfg.n_workers None in
    let cancel i =
      match handles.(i) with
      | Some h ->
        Ksim.Ktimer.cancel h;
        handles.(i) <- None
      | None -> ()
    in
    {
      mech_arm =
        (fun i ~quantum_ns ->
          cancel i;
          handles.(i) <-
            Some
              (Ksim.Ktimer.arm_oneshot ktimer ~delay_ns:quantum_ns
                 ~handler:(fun () -> on_interrupt st i)));
      mech_disarm = cancel;
      (* timer_settime syscalls on both arm and cancel *)
      arm_cost_ns = cfg.costs.Ksim.Costs.syscall_ns;
      disarm_cost_ns = cfg.costs.Ksim.Costs.syscall_ns;
      entry_cost_ns = 0;
      exit_cost_ns = cfg.costs.Ksim.Costs.syscall_ns;
      mech_shutdown = (fun () -> Array.iteri (fun i _ -> cancel i) handles);
      mech_fired = (fun () -> Ksim.Ktimer.expirations ktimer);
    }

(* ------------------------------------------------------------------ *)
(* Dispatcher and arrivals                                             *)
(* ------------------------------------------------------------------ *)

let assign st req =
  (* Join-shortest-queue across worker local queues. *)
  let best = ref st.workers.(0) in
  let score w = Rqueue.length w.local + (match w.current with Some _ -> 1 | None -> 0) in
  Array.iter (fun w -> if score w < score !best then best := w) st.workers;
  tr_req st req ~name:"req.assign" ~arg:!best.wid;
  Rqueue.push !best.local ~now:(now st) req;
  schedule_next st !best

let pump_dispatcher st =
  if (not (Hw.Core.busy st.dispatcher)) && not (Rqueue.is_empty st.dispatch_q) then
    Hw.Core.begin_work st.dispatcher ~duration:st.cfg.dispatch_cost_ns
      ~on_done:st.k_dispatch

(* Body of [st.k_dispatch], preallocated once per run. *)
let dispatch_done st =
  (match Rqueue.pop st.dispatch_q ~now:(now st) with
  | Some req -> assign st req
  | None -> ());
  pump_dispatcher st

(* Admit one request into the dispatch pipeline. *)
let admit st (req : Workload.Request.t) =
  st.outstanding <- st.outstanding + 1;
  tr_req st req ~name:"req.arrive" ~arg:(Rqueue.length st.dispatch_q);
  if measured st req then st.measured_offered <- st.measured_offered + 1;
  Stats_window.note_arrival st.window ~now:(now st);
  Stats_window.note_qlen st.window (total_qlen st);
  Rqueue.push st.dispatch_q ~now:(now st) req;
  pump_dispatcher st

let verdict_arg = function
  | Guard.Admit -> 0
  | Guard.Shed_queue -> 1
  | Guard.Shed_delay -> 2
  | Guard.Shed_rate -> 3
  | Guard.Shed_brownout -> 4

(* Guarded admission of attempt [attempt] (1-based) of a logical
   request.  A shed never enters the system — [outstanding] untouched,
   record released — but still counts as offered work, and the client
   reacts to the rejection exactly as to a timeout: back off and maybe
   retry.  With no guard this is [admit], bit for bit. *)
let rec attempt_admit st ~attempt (req : Workload.Request.t) =
  match st.guard with
  | None -> admit st req
  | Some g ->
    let t = now st in
    let verdict =
      Guard.admission g ~now:t ~cls:req.Workload.Request.cls ~qlen:(total_qlen st)
        ~head_wait_ns:(Rqueue.head_wait_ns st.dispatch_q ~now:t)
    in
    (match verdict with
    | Guard.Admit ->
      (match (st.retry_rng, Guard.client_timeout_ns g) with
      | Some _, Some tmo ->
        (* Arm the client's patience clock.  The closure captures only
           scalars — the pooled record may back another request by the
           time it fires. *)
        let id = req.Workload.Request.id in
        let cls = req.Workload.Request.cls in
        let service_ns = req.Workload.Request.service_ns in
        Hashtbl.replace st.retry_attempts id attempt;
        ignore
          (Engine.Sim.at st.sim (t + tmo) (fun () ->
               client_timeout_fire st ~id ~attempt ~cls ~service_ns))
      | _ -> ());
      admit st req
    | shed ->
      if measured st req then begin
        st.measured_offered <- st.measured_offered + 1;
        st.measured_shed <- st.measured_shed + 1
      end;
      tr_req st req ~name:"guard.shed" ~arg:(verdict_arg shed);
      let cls = req.Workload.Request.cls in
      let service_ns = req.Workload.Request.service_ns in
      Workload.Request.Pool.release st.req_pool req;
      schedule_client_retry st ~attempt ~cls ~service_ns)

and client_timeout_fire st ~id ~attempt ~cls ~service_ns =
  if Hashtbl.mem st.retry_attempts id then begin
    Hashtbl.remove st.retry_attempts id;
    (match st.guard with Some g -> Guard.note_client_timeout g | None -> ());
    tr_guard st ~name:"guard.timeout" ~track:id ~arg:attempt;
    schedule_client_retry st ~attempt ~cls ~service_ns
  end

(* The client's reaction to a failed attempt.  Retries landing at or
   past [duration_ns] are discarded: arrivals stop there and a retry
   admitted during the drain would wedge the shutdown logic. *)
and schedule_client_retry st ~attempt ~cls ~service_ns =
  let t = now st in
  if t < st.duration_ns then
    match (st.guard, st.retry_rng) with
    | Some g, Some rng ->
      (match Guard.retry_gap g rng ~now:t ~attempt with
      | Some gap when t + gap < st.duration_ns ->
        Guard.note_retry g;
        ignore
          (Engine.Sim.at st.sim (t + gap) (fun () ->
               retry_fire st ~attempt:(attempt + 1) ~cls ~service_ns))
      | Some _ | None -> ())
    | _ -> ()

and retry_fire st ~attempt ~cls ~service_ns =
  let t = now st in
  let req =
    Workload.Request.Pool.acquire st.req_pool ~id:st.next_id ~arrival_ns:t ~service_ns
      ~cls
  in
  st.next_id <- st.next_id + 1;
  attempt_admit st ~attempt req

(* One arrival event is outstanding at a time, so a single [fire]
   closure (allocated once here) serves the whole run: it reads the
   arrival instant off the sim clock when it runs. *)
let arrivals st ~arrival ~source =
  let rec fire () =
    let at = now st in
    let service_ns, cls = Workload.Source.draw source st.service_rng ~now:at in
    let req =
      Workload.Request.Pool.acquire st.req_pool ~id:st.next_id ~arrival_ns:at
        ~service_ns ~cls
    in
    st.next_id <- st.next_id + 1;
    attempt_admit st ~attempt:1 req;
    schedule ()
  and schedule () =
    let t = now st in
    let gap = Workload.Arrival.next_gap arrival st.arrival_rng ~now:t in
    let at = t + gap in
    if at >= st.duration_ns then
      ignore
        (Engine.Sim.at st.sim st.duration_ns (fun () ->
             st.arrivals_done <- true;
             check_drain st))
    else ignore (Engine.Sim.at st.sim at fire)
  in
  schedule ()

(* Inject a pre-materialized trace instead of sampling arrivals. *)
let inject_trace st requests =
  (* Retries mint fresh ids from [next_id]; start past the trace's own
     ids so the patience table never sees a collision. *)
  (match st.guard with
  | Some _ ->
    List.iter
      (fun (r : Workload.Request.t) ->
        if r.Workload.Request.id >= st.next_id then st.next_id <- r.Workload.Request.id + 1)
      requests
  | None -> ());
  List.iter
    (fun (req : Workload.Request.t) ->
      if req.Workload.Request.arrival_ns >= st.duration_ns then
        invalid_arg "Server.run_trace: request arrives at/after duration";
      ignore
        (Engine.Sim.at st.sim req.Workload.Request.arrival_ns (fun () ->
             attempt_admit st ~attempt:1 req)))
    requests;
  ignore
    (Engine.Sim.at st.sim st.duration_ns (fun () ->
         st.arrivals_done <- true;
         check_drain st))

(* The window callback is allocated once; it clears [window_ev] first
   (handle-lifetime contract) and re-arms itself each window. *)
let window_loop st =
  let rec body () =
    st.window_ev <- Engine.Sim.null;
    if not st.drained then begin
      let t = now st in
      Stats_window.note_qlen st.window (total_qlen st);
      let snapshot = Stats_window.roll st.window ~now:t in
      (* Audit Algorithm 1: quantum in force before the controller ran
         vs after.  Reading [quantum_ns] is a pure controller-state
         lookup, done only when telemetry is on. *)
      let quantum_before =
        match st.tel with
        | Some _ ->
          st.cfg.policy.Policy.quantum_ns ~now:t ~cls:Workload.Request.Latency_critical
        | None -> 0
      in
      st.cfg.policy.Policy.on_window snapshot;
      (match st.guard with
      | Some g ->
        Guard.on_window g ~now:t ~p99_ns:snapshot.Stats_window.p99_ns
          ~max_qlen:snapshot.Stats_window.max_qlen
      | None -> ());
      let quantum_ns =
        st.cfg.policy.Policy.quantum_ns ~now:t ~cls:Workload.Request.Latency_critical
      in
      (match st.tel with
      | Some tel ->
        Telemetry.audit tel ~now:t ~snapshot ~quantum_before_ns:quantum_before
          ~quantum_after_ns:quantum_ns
      | None -> ());
      (match st.trace with
      | Some trace ->
        Obs.Trace.counter trace Obs.Trace.Server ~name:"qlen.dispatch"
          ~value:(Rqueue.length st.dispatch_q);
        Obs.Trace.counter trace Obs.Trace.Server ~name:"qlen.long"
          ~value:(Rqueue.length st.long_q);
        Obs.Trace.counter trace Obs.Trace.Server ~name:"quantum" ~value:quantum_ns;
        Obs.Trace.counter trace Obs.Trace.Server ~name:"sim.live"
          ~value:(Engine.Sim.live_events st.sim);
        Obs.Trace.counter trace Obs.Trace.Server ~name:"sim.pending"
          ~value:(Engine.Sim.pending st.sim)
      | None -> ());
      st.probes.on_window snapshot ~quantum_ns;
      tick ()
    end
  and tick () = st.window_ev <- Engine.Sim.after st.sim st.cfg.stats_window_ns body in
  tick ()

(* The telemetry tick mirrors [window_loop]: one preallocated body,
   re-armed every [tick_ns], cancelled by [check_drain].  It only reads
   simulation state (queues, cores, controller) — no RNG, no
   scheduling decisions — so enabling it leaves latencies untouched. *)
let telemetry_loop st tel tick_ns =
  let rec body () =
    st.tel_ev <- Engine.Sim.null;
    if not st.drained then begin
      let t = now st in
      let quantum_ns =
        st.cfg.policy.Policy.quantum_ns ~now:t ~cls:Workload.Request.Latency_critical
      in
      let frame =
        Telemetry.tick tel ~now:t ~quantum_ns ~arrivals_total:st.next_id
          ~qlen:(total_qlen st)
      in
      st.probes.on_tick frame;
      tick ()
    end
  and tick () = st.tel_ev <- Engine.Sim.after st.sim tick_ns body in
  tick ()

(* ------------------------------------------------------------------ *)
(* Instances and entry points                                          *)
(* ------------------------------------------------------------------ *)

(* An instance is a fully wired server attached to a caller-owned
   simulation.  [run]/[run_trace] build one on a private sim; the
   cluster layer builds N on a shared sim and feeds them itself. *)
type t = st

let create ?(probes = no_probes) ?(warmup_ns = 0) cfg ~sim ~duration_ns =
  if cfg.n_workers <= 0 then invalid_arg "Server.run: need at least one worker";
  if duration_ns <= 0 then invalid_arg "Server.run: non-positive duration";
  if warmup_ns < 0 || warmup_ns >= duration_ns then
    invalid_arg "Server.run: warmup must lie within the run";
  let trace =
    Option.map
      (fun tc -> Obs.Trace.create ~config:tc ~clock:(fun () -> Engine.Sim.now sim) ())
      cfg.trace
  in
  (match (cfg.faults, trace) with
  | Some f, Some tr -> Fault.set_trace f tr
  | _ -> ());
  let metrics = Obs.Metrics.create () in
  Obs.Metrics.gauge metrics "sim.live_events" (fun () -> Engine.Sim.live_events sim);
  Obs.Metrics.gauge metrics "sim.pending" (fun () -> Engine.Sim.pending sim);
  (match trace with
  | Some tr ->
    Obs.Metrics.gauge metrics "trace.recorded" (fun () -> Obs.Trace.recorded tr);
    Obs.Metrics.gauge metrics "trace.dropped" (fun () -> Obs.Trace.dropped tr)
  | None -> ());
  let guard = Option.map (fun gc -> Guard.create ?faults:cfg.faults ?trace gc) cfg.guard in
  let st =
    {
      sim;
      cfg;
      arrival_rng = Engine.Sim.fork_rng sim;
      service_rng = Engine.Sim.fork_rng sim;
      workers =
        Array.init cfg.n_workers (fun wid ->
            {
              wid;
              core = Hw.Core.create sim ~id:wid;
              local = Rqueue.create ~name:(Printf.sprintf "local-%d" wid);
              current = None;
              cur_deadline = max_int;
              transition = false;
              k_transition = ignore;
              k_complete = ignore;
              k_launch = ignore;
              k_resume = ignore;
            });
      long_q = Rqueue.create ~name:"long";
      dispatch_q = Rqueue.create ~name:"dispatch";
      dispatcher = Hw.Core.create sim ~id:(-1);
      pool = Context.create_pool ~capacity:cfg.ctx_pool_capacity ~stack_kb:cfg.stack_kb;
      req_pool = Workload.Request.Pool.create ();
      window = Stats_window.create ~window_ns:cfg.stats_window_ns;
      sum_all = Stat.Summary.create ();
      sum_lc = Stat.Summary.create ();
      sum_be = Stat.Summary.create ();
      probes;
      warmup_ns;
      duration_ns;
      mech =
        {
          mech_arm = (fun _ ~quantum_ns:_ -> ());
          mech_disarm = (fun _ -> ());
          arm_cost_ns = 0;
          disarm_cost_ns = 0;
          entry_cost_ns = 0;
          exit_cost_ns = 0;
          mech_shutdown = (fun () -> ());
          mech_fired = (fun () -> 0);
        };
      outstanding = 0;
      arrivals_done = false;
      drained = false;
      measured_offered = 0;
      measured_completed = 0;
      completed_in_window = 0;
      cancelled_measured = 0;
      measured_shed = 0;
      measured_expired = 0;
      goodput_measured = 0;
      goodput_in_window = 0;
      preemptions = 0;
      spurious = 0;
      next_id = 0;
      window_ev = Engine.Sim.null;
      k_dispatch = ignore;
      wedge_point = Option.map (fun f -> Fault.point f "server.wedge") cfg.faults;
      wedged = 0;
      ut = None;
      fallback_engaged = false;
      trace;
      metrics;
      m_lat = Obs.Metrics.histogram metrics "latency.all_ns";
      guard;
      tel = None;
      tel_ev = Engine.Sim.null;
      retry_rng = None;
      retry_attempts = Hashtbl.create 64;
    }
  in
  (match guard with
  | Some g ->
    Obs.Metrics.gauge metrics "guard.state" (fun () ->
        Guard.state_index (Guard.breaker_state g))
  | None -> ());
  (* The retry stream is forked only when the guard models retries, so
     a guard-less run forks exactly the streams it always did. *)
  (match guard with
  | Some g when (Guard.config g).Guard.retry <> None ->
    st.retry_rng <- Some (Engine.Sim.fork_rng sim)
  | Some _ | None -> ());
  st.k_dispatch <- (fun () -> dispatch_done st);
  Array.iter
    (fun w ->
      w.k_transition <-
        (fun () ->
          w.transition <- false;
          schedule_next st w);
      w.k_complete <-
        (fun () ->
          match w.current with
          | Some fn -> complete_current st w fn
          | None -> assert false);
      w.k_launch <- (fun () -> run_current st w ~resuming:false);
      w.k_resume <- (fun () -> run_current st w ~resuming:true))
    st.workers;
  st.mech <- make_mech st;
  (match cfg.telemetry with
  | Some tc ->
    st.tel <-
      Some
        (Telemetry.create tc ~n_cores:cfg.n_workers
           ~cores:(Array.map (fun w -> w.core) st.workers)
           ?guard ?trace ())
  | None -> ());
  st

(* Arm the periodic loops (stats window, telemetry tick).  Called after
   the initial arrivals are scheduled so the event-insertion order — and
   with it equal-timestamp tie-breaking — matches the pre-instance
   behaviour bit for bit. *)
let start st =
  window_loop st;
  match st.tel with
  | Some tel -> telemetry_loop st tel (Option.get st.cfg.telemetry).tick_ns
  | None -> ()

let inject st ~service_ns ~cls =
  let at = now st in
  if at >= st.duration_ns then invalid_arg "Server.inject: arrivals ended";
  let req =
    Workload.Request.Pool.acquire st.req_pool ~id:st.next_id ~arrival_ns:at ~service_ns
      ~cls
  in
  st.next_id <- st.next_id + 1;
  attempt_admit st ~attempt:1 req

let end_arrivals st =
  st.arrivals_done <- true;
  check_drain st

let inflight st = st.outstanding

let queue_depth st = total_qlen st

let completed_so_far st = st.measured_completed

(* Cluster work stealing: transplant up to [max] queued-but-unstarted
   requests from [victim] into [thief]'s dispatch pipeline.  The fleet
   counted each request when it was first offered, so the thief admits
   it without re-counting offered/shed and without a second guard
   admission decision; latency keeps the original arrival stamp, so
   fleet-level conservation (offered = completed+cancelled+dropped+shed
   summed over servers) survives any number of migrations. *)
let steal_from ~victim ~thief ~max =
  if victim == thief then invalid_arg "Server.steal_from: victim and thief are the same";
  let t = now victim in
  let moved = ref 0 in
  let exhausted = ref false in
  while (not !exhausted) && !moved < max do
    (* Prefer undispatched work, then the longest worker backlog. *)
    let popped =
      match Rqueue.pop victim.dispatch_q ~now:t with
      | Some _ as r -> r
      | None ->
        let best = ref None in
        Array.iter
          (fun w ->
            let len = Rqueue.length w.local in
            if len > 0 then
              match !best with
              | Some b when Rqueue.length b.local >= len -> ()
              | Some _ | None -> best := Some w)
          victim.workers;
        (match !best with Some w -> Rqueue.pop w.local ~now:t | None -> None)
    in
    match popped with
    | None -> exhausted := true
    | Some req ->
      let arrival_ns = req.Workload.Request.arrival_ns in
      let service_ns = req.Workload.Request.service_ns in
      let cls = req.Workload.Request.cls in
      tr_req victim req ~name:"req.stolen_away" ~arg:0;
      victim.outstanding <- victim.outstanding - 1;
      Workload.Request.Pool.release victim.req_pool req;
      let req' =
        Workload.Request.Pool.acquire thief.req_pool ~id:thief.next_id ~arrival_ns
          ~service_ns ~cls
      in
      thief.next_id <- thief.next_id + 1;
      thief.outstanding <- thief.outstanding + 1;
      tr_req thief req' ~name:"req.stolen_in" ~arg:0;
      Rqueue.push thief.dispatch_q ~now:t req';
      pump_dispatcher thief;
      incr moved
  done;
  if !moved > 0 then check_drain victim;
  !moved

let finish st =
  let cfg = st.cfg and sim = st.sim and duration_ns = st.duration_ns in
  if st.outstanding > 0 then
    failwith
      (Printf.sprintf
         "Server.run: event cap (%d) hit with %d requests outstanding — raise max_events \
          or lower the load"
         cfg.max_events st.outstanding);
  let measured_ns = duration_ns - st.warmup_ns in
  let final = Engine.Sim.now sim in
  let busy = Array.fold_left (fun acc w -> acc + Hw.Core.busy_ns w.core) 0 st.workers in
  (* End-of-run totals, folded into the registry so one snapshot carries
     the whole story. *)
  Obs.Metrics.add (Obs.Metrics.counter st.metrics "requests.offered") st.measured_offered;
  Obs.Metrics.add (Obs.Metrics.counter st.metrics "requests.completed") st.measured_completed;
  Obs.Metrics.add (Obs.Metrics.counter st.metrics "requests.cancelled") st.cancelled_measured;
  Obs.Metrics.add (Obs.Metrics.counter st.metrics "preemptions") st.preemptions;
  Obs.Metrics.add (Obs.Metrics.counter st.metrics "interrupts.timer") (st.mech.mech_fired ());
  Obs.Metrics.add (Obs.Metrics.counter st.metrics "interrupts.spurious") st.spurious;
  Obs.Metrics.add (Obs.Metrics.counter st.metrics "wedged") st.wedged;
  (match st.guard with
  | Some g ->
    let gr = Guard.report g in
    Obs.Metrics.add (Obs.Metrics.counter st.metrics "guard.shed") gr.Guard.shed_total;
    Obs.Metrics.add (Obs.Metrics.counter st.metrics "guard.expired") gr.Guard.expired;
    Obs.Metrics.add
      (Obs.Metrics.counter st.metrics "guard.timeouts")
      gr.Guard.client_timeouts;
    Obs.Metrics.add (Obs.Metrics.counter st.metrics "guard.retries") gr.Guard.retries;
    Obs.Metrics.add (Obs.Metrics.counter st.metrics "guard.goodput") gr.Guard.goodput
  | None -> ());
  {
    duration_ns;
    measured_ns;
    offered = st.measured_offered;
    completed = st.measured_completed;
    cancelled = st.cancelled_measured;
    dropped = st.measured_expired;
    shed = st.measured_shed;
    goodput = st.goodput_measured;
    goodput_rps = float_of_int st.goodput_in_window *. 1e9 /. float_of_int measured_ns;
    all = Stat.Summary.report st.sum_all;
    lc = (if Stat.Summary.count st.sum_lc = 0 then None else Some (Stat.Summary.report st.sum_lc));
    be = (if Stat.Summary.count st.sum_be = 0 then None else Some (Stat.Summary.report st.sum_be));
    throughput_rps = float_of_int st.completed_in_window *. 1e9 /. float_of_int measured_ns;
    offered_rps = float_of_int st.measured_offered *. 1e9 /. float_of_int measured_ns;
    preemptions = st.preemptions;
    timer_interrupts = st.mech.mech_fired ();
    spurious_interrupts = st.spurious;
    ctx_high_water = Context.high_water st.pool;
    worker_busy_frac =
      (if final = 0 then 0.0
       else float_of_int busy /. (float_of_int cfg.n_workers *. float_of_int final));
    long_queue_hwm = Rqueue.max_length st.long_q;
    dispatch_queue_hwm = Rqueue.max_length st.dispatch_q;
    sim_events = Engine.Sim.events_fired sim;
    resilience =
      (match cfg.faults with
      | None -> None
      | Some f ->
        Some
          {
            fault_report = Fault.report f;
            wd = Option.map Utimer.watchdog_stats st.ut;
            timer_health = Option.map Utimer.health st.ut;
            wedged = st.wedged;
            fallback_engaged = st.fallback_engaged;
          });
    guard = Option.map Guard.report st.guard;
    trace = st.trace;
    metrics = Obs.Metrics.snapshot st.metrics;
    telemetry = Option.map Telemetry.report st.tel;
  }

let run_with ~probes ~warmup_ns cfg ~feed ~duration_ns =
  let sim = Engine.Sim.create ~seed:cfg.seed () in
  let st = create ~probes ~warmup_ns cfg ~sim ~duration_ns in
  feed st;
  start st;
  Engine.Sim.run ~max_events:cfg.max_events sim;
  let r = finish st in
  if r.completed = 0 then
    failwith "Server.run: no measured completions (warmup too long or load too low)";
  r

let run ?(probes = no_probes) ?(warmup_ns = 0) cfg ~arrival ~source ~duration_ns =
  run_with ~probes ~warmup_ns cfg ~feed:(fun st -> arrivals st ~arrival ~source) ~duration_ns

let run_trace ?(probes = no_probes) ?(warmup_ns = 0) cfg ~requests ~duration_ns =
  run_with ~probes ~warmup_ns cfg ~feed:(fun st -> inject_trace st requests) ~duration_ns

let pp_resilience fmt r =
  let health =
    match r.timer_health with
    | Some Utimer.Healthy -> "healthy"
    | Some Utimer.Failed_over -> "failed-over"
    | Some Utimer.Degraded -> "degraded"
    | None -> "n/a"
  in
  Format.fprintf fmt "@[<v>%a@ timer=%s wedged=%d fallback=%b" Fault.pp_report
    r.fault_report health r.wedged r.fallback_engaged;
  (match r.wd with
  | Some w ->
    Format.fprintf fmt "@ watchdog: detected=%d recovered=%d retries=%d failovers=%d degraded_slots=%d"
      w.Utimer.wd_detected w.Utimer.wd_recovered w.Utimer.wd_retries w.Utimer.wd_failovers
      w.Utimer.wd_degraded_slots
  | None -> ());
  Format.fprintf fmt "@]"

let pp_result fmt r =
  Format.fprintf fmt
    "@[<v>offered=%d (%.0f rps) completed=%d (%.0f rps)@ all: %a@ preemptions=%d \
     timer_fired=%d spurious=%d ctx_hwm=%d busy=%.1f%%@]"
    r.offered r.offered_rps r.completed r.throughput_rps Stat.Summary.pp_report_us r.all
    r.preemptions r.timer_interrupts r.spurious_interrupts r.ctx_high_water
    (100.0 *. r.worker_busy_frac)
