type config = {
  l_high_fraction : float;
  l_low_fraction : float;
  k1_ns : int;
  k2_ns : int;
  k3_ns : int;
  q_threshold : int;
  t_min_ns : int;
  t_max_ns : int;
}

let default_config =
  {
    l_high_fraction = 0.9;
    l_low_fraction = 0.1;
    k1_ns = 10_000;
    k2_ns = 10_000;
    k3_ns = 10_000;
    q_threshold = 32;
    t_min_ns = 3_000;
    t_max_ns = 100_000;
  }

type t = {
  c : config;
  max_load_per_s : float;
  mutable tq : int;
  mutable n_steps : int;
}

let create ?(config = default_config) ~max_load_per_s ~initial_quantum_ns () =
  if max_load_per_s <= 0.0 then
    invalid_arg "Quantum_controller.create: max load must be positive";
  if initial_quantum_ns < config.t_min_ns || initial_quantum_ns > config.t_max_ns then
    invalid_arg "Quantum_controller.create: initial quantum outside [t_min, t_max]";
  { c = config; max_load_per_s; tq = initial_quantum_ns; n_steps = 0 }

let quantum_ns t = t.tq
let config t = t.c
let steps t = t.n_steps

let tail_index_of (s : Stats_window.snapshot) =
  if s.Stats_window.completions = 0 then None
  else begin
    let median = s.Stats_window.service_median_ns
    and tail = s.Stats_window.service_p99_ns in
    if median <= 0.0 || tail <= median then None
    else Some (Stat.Tail_index.ratio_proxy ~median ~tail)
  end

let observe t (s : Stats_window.snapshot) =
  t.n_steps <- t.n_steps + 1;
  let c = t.c in
  let mu = s.Stats_window.arrival_rate_per_s in
  let l_high = c.l_high_fraction *. t.max_load_per_s in
  let l_low = c.l_low_fraction *. t.max_load_per_s in
  if mu > l_high then t.tq <- max (t.tq - c.k1_ns) c.t_min_ns;
  let heavy =
    match tail_index_of s with Some alpha -> Stat.Tail_index.is_heavy alpha | None -> false
  in
  if s.Stats_window.max_qlen > c.q_threshold || heavy then
    t.tq <- max (t.tq - c.k2_ns) c.t_min_ns;
  if mu < l_low then t.tq <- min (t.tq + c.k3_ns) c.t_max_ns;
  t.tq
