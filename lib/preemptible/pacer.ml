type tick_source = {
  set_handler : (unit -> unit) -> unit;
  arm_at : time_ns:int -> unit;
  cancel : unit -> unit;
}

let utimer_source ut ~uintr =
  let handler = ref (fun () -> ()) in
  let receiver =
    Hw.Uintr.register_receiver uintr ~name:"pacer"
      ~handler:(fun _ ~vector:_ -> !handler ())
      ()
  in
  let slot = Utimer.register ut ~receiver ~vector:0 in
  {
    set_handler = (fun f -> handler := f);
    arm_at = (fun ~time_ns -> Utimer.arm_at slot ~time_ns);
    cancel = (fun () -> Utimer.disarm slot);
  }

let hwtimer_source hwt ~uintr =
  let handler = ref (fun () -> ()) in
  let receiver =
    Hw.Uintr.register_receiver uintr ~name:"pacer"
      ~handler:(fun _ ~vector:_ -> !handler ())
      ()
  in
  let slot = Hw.Hwtimer.register hwt ~receiver ~vector:0 in
  {
    set_handler = (fun f -> handler := f);
    arm_at = (fun ~time_ns -> Hw.Hwtimer.arm_at slot ~time_ns);
    cancel = (fun () -> Hw.Hwtimer.disarm slot);
  }

let ktimer_source sim kt =
  let handler = ref (fun () -> ()) in
  let live = ref None in
  {
    set_handler = (fun f -> handler := f);
    arm_at =
      (fun ~time_ns ->
        (match !live with Some tm -> Ksim.Ktimer.cancel tm | None -> ());
        (* POSIX one-shot relative to now; the subsystem applies its
           granularity floor and jitter. *)
        let delay_ns = max 0 (time_ns - Engine.Sim.now sim) in
        live :=
          Some (Ksim.Ktimer.arm_oneshot kt ~delay_ns ~handler:(fun () -> !handler ())));
    cancel =
      (fun () -> match !live with Some tm -> Ksim.Ktimer.cancel tm | None -> ());
  }

type t = {
  sim : Engine.Sim.t;
  interval_ns : float;
  rate : float;
  source : tick_source;
  send : now:int -> unit;
  gaps : Stat.Welford.t;
  mutable running : bool;
  mutable k : int; (* sends so far; ideal schedule anchor *)
  mutable t0 : int;
  mutable last_send : int;
}

let create sim ~rate_per_sec ~source ~send =
  if rate_per_sec <= 0.0 then invalid_arg "Pacer.create: rate must be positive";
  {
    sim;
    interval_ns = 1e9 /. rate_per_sec;
    rate = rate_per_sec;
    source;
    send;
    gaps = Stat.Welford.create ();
    running = false;
    k = 0;
    t0 = 0;
    last_send = -1;
  }

let ideal t k = t.t0 + int_of_float (float_of_int k *. t.interval_ns)

let arm_next t =
  if t.running then begin
    (* Absolute schedule: drift does not accumulate. The ktimer source
       interprets the argument relative to now, which is exactly the
       imprecision being measured. *)
    let next = ideal t (t.k + 1) in
    t.source.arm_at ~time_ns:next
  end

let on_tick t () =
  if t.running then begin
    let now = Engine.Sim.now t.sim in
    t.k <- t.k + 1;
    t.send ~now;
    if t.last_send >= 0 then Stat.Welford.add t.gaps (float_of_int (now - t.last_send));
    t.last_send <- now;
    arm_next t
  end

let start t =
  if not t.running then begin
    t.running <- true;
    t.t0 <- Engine.Sim.now t.sim;
    t.k <- 0;
    t.last_send <- -1;
    t.source.set_handler (on_tick t);
    arm_next t
  end

let stop t =
  t.running <- false;
  t.source.cancel ()

type stats = {
  sends : int;
  mean_gap_us : float;
  std_gap_us : float;
  achieved_rate_per_s : float;
  rate_error : float;
}

let stats t =
  if Stat.Welford.count t.gaps < 1 then invalid_arg "Pacer.stats: too few sends";
  let mean = Stat.Welford.mean t.gaps in
  let achieved = 1e9 /. mean in
  {
    sends = t.k;
    mean_gap_us = mean /. 1e3;
    std_gap_us = Stat.Welford.stddev t.gaps /. 1e3;
    achieved_rate_per_s = achieved;
    rate_error = abs_float (achieved -. t.rate) /. t.rate;
  }
