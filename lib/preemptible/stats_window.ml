type snapshot = {
  window_start_ns : int;
  window_ns : int;
  arrivals : int;
  completions : int;
  arrival_rate_per_s : float;
  median_ns : float;
  p99_ns : float;
  service_median_ns : float;
  service_p99_ns : float;
  max_qlen : int;
}

type t = {
  win : int;
  mutable start : int;
  mutable arrivals : int;
  mutable completions : int;
  mutable median_est : Stat.Quantile.P2.t;
  mutable p99_est : Stat.Quantile.P2.t;
  mutable svc_median_est : Stat.Quantile.P2.t;
  mutable svc_p99_est : Stat.Quantile.P2.t;
  mutable max_qlen : int;
}

let create ~window_ns =
  if window_ns <= 0 then invalid_arg "Stats_window.create: window must be positive";
  {
    win = window_ns;
    start = 0;
    arrivals = 0;
    completions = 0;
    median_est = Stat.Quantile.P2.create 0.5;
    p99_est = Stat.Quantile.P2.create 0.99;
    svc_median_est = Stat.Quantile.P2.create 0.5;
    svc_p99_est = Stat.Quantile.P2.create 0.99;
    max_qlen = 0;
  }

let window_ns t = t.win

let note_arrival t ~now =
  ignore now;
  t.arrivals <- t.arrivals + 1

let note_completion t ~now ~latency_ns ~service_ns =
  ignore now;
  t.completions <- t.completions + 1;
  let v = float_of_int latency_ns in
  Stat.Quantile.P2.add t.median_est v;
  Stat.Quantile.P2.add t.p99_est v;
  let s = float_of_int service_ns in
  Stat.Quantile.P2.add t.svc_median_est s;
  Stat.Quantile.P2.add t.svc_p99_est s

let note_qlen t n = if n > t.max_qlen then t.max_qlen <- n

let ready t ~now = now - t.start >= t.win

let roll t ~now =
  let elapsed = max (now - t.start) 1 in
  let snapshot =
    {
      window_start_ns = t.start;
      window_ns = elapsed;
      arrivals = t.arrivals;
      completions = t.completions;
      arrival_rate_per_s = float_of_int t.arrivals *. 1e9 /. float_of_int elapsed;
      median_ns =
        (if t.completions = 0 then 0.0 else Stat.Quantile.P2.get t.median_est);
      p99_ns = (if t.completions = 0 then 0.0 else Stat.Quantile.P2.get t.p99_est);
      service_median_ns =
        (if t.completions = 0 then 0.0 else Stat.Quantile.P2.get t.svc_median_est);
      service_p99_ns =
        (if t.completions = 0 then 0.0 else Stat.Quantile.P2.get t.svc_p99_est);
      max_qlen = t.max_qlen;
    }
  in
  t.start <- now;
  t.arrivals <- 0;
  t.completions <- 0;
  t.median_est <- Stat.Quantile.P2.create 0.5;
  t.p99_est <- Stat.Quantile.P2.create 0.99;
  t.svc_median_est <- Stat.Quantile.P2.create 0.5;
  t.svc_p99_est <- Stat.Quantile.P2.create 0.99;
  t.max_qlen <- 0;
  snapshot
