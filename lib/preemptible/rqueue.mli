(** Instrumented request queues (Fig 6).

    The runtime uses three kinds of queues: the dispatch queue feeding
    the dispatcher, per-worker local FIFO queues, and the global "long"
    queue of preempted functions.  All are FIFO; this wrapper adds the
    occupancy statistics the controller and experiments need. *)

type 'a t

val create : name:string -> 'a t

val name : 'a t -> string

val push : 'a t -> now:int -> 'a -> unit

val pop : 'a t -> now:int -> 'a option

val pop_by : 'a t -> now:int -> key:('a -> int) -> 'a option
(** Remove the element minimizing [key] (FIFO among ties). O(n) — the
    discipline queues are short in practice; the simulator favours
    clarity over a heap here. *)

val peek : 'a t -> 'a option

val length : 'a t -> int
(** Current depth/occupancy — O(1), unlike walking the ring. *)

val head_wait_ns : 'a t -> now:int -> int
(** Age of the oldest queued element (0 when empty) — O(1).  The
    standing-delay signal overload control sheds on: a head that keeps
    ageing means the queue is not draining. *)

val is_empty : 'a t -> bool

val max_length : 'a t -> int
(** High-water occupancy. *)

val total_pushed : 'a t -> int

val mean_wait_ns : 'a t -> float
(** Average time popped elements spent queued. *)
