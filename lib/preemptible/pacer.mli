(** Precise traffic pacing (Sec VII-C).

    The paper names traffic shaping as a use case whose performance
    hinges on the accuracy of timed actions.  A pacer emits sends on an
    absolute schedule (one every [1/rate]); what limits its fidelity is
    the timer that wakes it.  This module paces over any {!tick_source}
    so the same policy can be driven by LibUtimer (µs-accurate), the
    future hardware comparators, or a kernel timer (floored at tens of
    µs) — the comparison the `traffic_pacing` example draws. *)

type tick_source = {
  set_handler : (unit -> unit) -> unit;
      (** install the fire callback (once, before any arm) *)
  arm_at : time_ns:int -> unit;  (** schedule the next tick *)
  cancel : unit -> unit;
}

val utimer_source :
  Utimer.t -> uintr:Hw.Uintr.t -> tick_source
(** A LibUtimer deadline slot drives the ticks (registers a receiver +
    slot on first use). *)

val hwtimer_source : Hw.Hwtimer.t -> uintr:Hw.Uintr.t -> tick_source
(** A hardware comparator drives the ticks. *)

val ktimer_source : Engine.Sim.t -> Ksim.Ktimer.t -> tick_source
(** A POSIX timer drives the ticks (granularity floor applies). *)

type t

val create :
  Engine.Sim.t ->
  rate_per_sec:float ->
  source:tick_source ->
  send:(now:int -> unit) ->
  t
(** Pace [send] at [rate_per_sec] on the absolute schedule
    [k / rate]. Raises on a non-positive rate. *)

val start : t -> unit

val stop : t -> unit

type stats = {
  sends : int;
  mean_gap_us : float;
  std_gap_us : float;
  achieved_rate_per_s : float;
  rate_error : float;  (** |achieved − target| / target *)
}

val stats : t -> stats
(** Raises if fewer than two sends happened. *)
