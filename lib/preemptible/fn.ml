type status = Created | Running | Preempted | Completed

type t = {
  req : Workload.Request.t;
  ctx : Context.ctx;
  mutable st : status;
  mutable remaining : int;
  mutable deadline : int;
  mutable preemptions : int;
}

let create req ~ctx =
  { req; ctx; st = Created; remaining = req.Workload.Request.service_ns; deadline = max_int; preemptions = 0 }

let request t = t.req
let context t = t.ctx
let status t = t.st
let remaining_ns t = t.remaining
let deadline_ns t = t.deadline
let preempt_count t = t.preemptions

let set_deadline t ~now ~quantum_ns =
  t.deadline <- (if quantum_ns = max_int then max_int else now + quantum_ns)

let launch t ~now ~quantum_ns =
  if t.st <> Created then invalid_arg "Fn.launch: function already launched";
  t.st <- Running;
  set_deadline t ~now ~quantum_ns

let resume t ~now ~quantum_ns =
  if t.st <> Preempted then invalid_arg "Fn.resume: function not preempted";
  Context.mark_active t.ctx;
  t.st <- Running;
  set_deadline t ~now ~quantum_ns

let note_progress t ~executed_ns =
  if executed_ns < 0 then invalid_arg "Fn.note_progress: negative progress";
  if executed_ns > t.remaining then invalid_arg "Fn.note_progress: progress exceeds remaining work";
  t.remaining <- t.remaining - executed_ns

let preempt t =
  if t.st <> Running then invalid_arg "Fn.preempt: function not running";
  Context.mark_preempted t.ctx;
  t.st <- Preempted;
  t.deadline <- max_int;
  t.preemptions <- t.preemptions + 1

let complete t =
  if t.st <> Running then invalid_arg "Fn.complete: function not running";
  if t.remaining <> 0 then invalid_arg "Fn.complete: work remains";
  t.st <- Completed;
  t.deadline <- max_int

let completed t = t.st = Completed

let sojourn_ns t ~now = now - t.req.Workload.Request.arrival_ns
