(** Live scheduler telemetry: a sim-time tick that aggregates per-core
    latency sketches, evaluates SLO burn rates, attributes core time,
    and keeps the quantum-controller audit trail.

    Everything here is {e passive}: the tick schedules its own timer
    event but reads the simulation without touching RNG streams, queues
    or scheduling decisions, so a run with telemetry enabled produces
    bit-identical latencies to the same run without it (tested).  With
    {!Server.config.telemetry} = [None] the server skips every hook —
    the hot path stays allocation-free and the existing CI ceilings
    hold.

    Data flow per tick (default 1 ms of sim time):

    + each worker owns an {!Obs.Sketch} fed on completion; the tick
      merges them into a global window sketch (the per-core -> global
      aggregation path) and reads windowed p50/p99;
    + each {!Obs.Slo} tracker whose window elapsed is rolled, burn
      rates recomputed, and alert edges emitted as trace instants;
    + per-core time attribution (service / dispatch+sched / preemption
      overhead / idle, with wasted work as a sub-category of service)
      is advanced from the cores' cumulative busy/stall clocks plus the
      explicit transition costs the server reports;
    + a {!frame} is handed to the [on_tick] probe — the feed behind
      [lpctl top].

    The audit trail records one entry per stats window: the window
    statistics Algorithm 1 saw and the quantum it answered with. *)

type config = {
  tick_ns : int;  (** telemetry tick period (sim time), must be positive *)
  slos : Obs.Slo.spec list;
  sketch_alpha : float;  (** relative error of the latency sketches *)
  audit_capacity : int;
      (** keep the first this-many controller decisions (later ones are
          counted but dropped) *)
}

val default : config
(** 1 ms tick, [[Obs.Slo.default_spec]], alpha 0.01, 8192 entries. *)

(** Whole-run per-core time attribution, in sim-ns.  [service_ns]
    counts executed request work (including the [wasted_ns]
    sub-category: work spent on requests later cancelled or completed
    past their client's patience); [sched_ns] counts dispatch/launch/
    resume/complete transition costs; [preempt_ns] counts preemption
    overhead (handler entry/exit, context swap, wedges, spurious
    stalls); [idle_ns] is the remainder of the elapsed time. *)
type core_attr = {
  service_ns : int;
  sched_ns : int;
  preempt_ns : int;
  idle_ns : int;
  wasted_ns : int;
}

type frame = {
  f_at_ns : int;
  f_elapsed_ns : int;  (** sim-ns since the previous tick *)
  f_quantum_ns : int;  (** live LC quantum ([max_int] = uncapped) *)
  f_guard : Guard.state option;
  f_arrivals : int;  (** arrivals since the previous tick *)
  f_completions : int;  (** completions observed since the previous tick *)
  f_qlen : int;  (** queued requests (dispatch + long + local) *)
  f_p50_ns : float;  (** windowed; [nan] when no completions this tick *)
  f_p99_ns : float;
  f_cores : core_attr array;  (** attribution for this tick's window *)
  f_slos : (string * Obs.Slo.status) list;
      (** latest status per SLO tracker (empty until first roll) *)
}

type audit_entry = {
  a_at_ns : int;
  a_arrival_rate_per_s : float;
  a_p99_ns : float;
  a_qlen : int;
  a_quantum_before_ns : int;
  a_quantum_after_ns : int;
}

type report = {
  t_ticks : int;
  t_cores : core_attr array;  (** whole-run totals *)
  t_slos : Obs.Slo.report list;
  t_audit : audit_entry list;  (** in decision order *)
  t_audit_dropped : int;
}

type t

val create :
  config ->
  n_cores:int ->
  cores:Hw.Core.t array ->
  ?guard:Guard.t ->
  ?trace:Obs.Trace.t ->
  unit ->
  t
(** Raises [Invalid_argument] on a non-positive tick, alpha outside
    (0,1), an invalid SLO spec, or [cores] shorter than [n_cores]. *)

val note_latency : t -> core:int -> latency_ns:int -> unit
(** A measured completion on [core]: feeds that core's sketch and every
    SLO tracker.  O(1), called from the server's completion path. *)

val note_sched : t -> core:int -> ns:int -> unit
(** Dispatch/launch/resume/complete transition cost on [core]. *)

val note_preempt : t -> core:int -> ns:int -> unit
(** Preemption overhead (handler entry + swap + exit) on [core]. *)

val note_wasted : t -> core:int -> ns:int -> unit
(** Executed work that ended up discarded (cancelled / past patience). *)

val audit :
  t -> now:int -> snapshot:Stats_window.snapshot -> quantum_before_ns:int ->
  quantum_after_ns:int -> unit
(** Record one quantum-controller decision; emits a ["qc.decision"]
    trace instant when tracing. *)

val tick : t -> now:int -> quantum_ns:int -> arrivals_total:int -> qlen:int -> frame
(** Close the current telemetry window: merge per-core sketches, roll
    due SLO trackers (emitting burn-alert edge instants and counter
    samples when tracing), attribute core time, and return the frame.
    The caller (the server's telemetry loop) invokes this every
    [tick_ns]. *)

val report : t -> report
(** Whole-run totals; safe to call once after the drain. *)

val pp_core_attr : Format.formatter -> core_attr -> unit
