(** Adaptive time-quantum controller — Algorithm 1.

    Periodically adjusts the scheduling time quantum TQ from windowed
    statistics:

    {v
      alpha <- f(past median and tail latencies)      (tail-index fit)
      if mu > L_high              then TQ <- max(TQ - k1, T_min)
      if qlen > Q_threshold
         or alpha is heavy-tailed then TQ <- max(TQ - k2, T_min)
      if mu < L_low               then TQ <- min(TQ + k3, T_max)
    v}

    Two notes versus the paper's pseudo-code: its lines 7/10 write
    [min{TQ - k, T_min}] where a lower bound is clearly intended (that
    would drive TQ to T_min permanently on first trigger), and line 13
    writes [max{TQ + k3, T_max}] where an upper bound is intended.  We
    implement the evident intent ([max] for the floor, [min] for the
    ceiling).

    Defaults follow Sec III-F: L_high = 90% of max load, L_low = 10%,
    and T_min = 3 µs (the LibUtimer minimum time slice). *)

type config = {
  l_high_fraction : float;  (** of max load; paper: 0.9 *)
  l_low_fraction : float;  (** paper: 0.1 *)
  k1_ns : int;  (** decrement under high load *)
  k2_ns : int;  (** decrement under queueing / heavy tail *)
  k3_ns : int;  (** increment under low load *)
  q_threshold : int;
  t_min_ns : int;  (** paper: 3 µs *)
  t_max_ns : int;
}

val default_config : config

type t

val create : ?config:config -> max_load_per_s:float -> initial_quantum_ns:int -> unit -> t
(** Raises [Invalid_argument] for non-positive [max_load_per_s] or an
    initial quantum outside [t_min, t_max]. *)

val quantum_ns : t -> int
(** The current TQ. *)

val config : t -> config

val observe : t -> Stats_window.snapshot -> int
(** Run one controller step on a window snapshot; returns (and adopts)
    the updated TQ. *)

val tail_index_of : Stats_window.snapshot -> float option
(** The alpha the controller fits for a snapshot, from the window's
    {e service-time} median/p99 — queueing delay inflates sojourn tails
    even for light-tailed service, so sojourn statistics would
    misclassify loaded light-tailed workloads as heavy. [None] when the
    window lacks data (tail <= median or no completions). *)

val steps : t -> int
(** Controller invocations so far. *)
