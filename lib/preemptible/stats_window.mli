(** Windowed request statistics (the "Stats" box of Fig 5).

    The scheduler collects metrics over a time window — request load µ,
    median and tail latencies, local queue lengths — and hands a
    snapshot to the policy/controller at each window boundary.  All
    recording is O(1) (P² quantile estimators), keeping the analysis off
    the critical path as the paper requires. *)

type snapshot = {
  window_start_ns : int;
  window_ns : int;
  arrivals : int;
  completions : int;
  arrival_rate_per_s : float;  (** the load µ *)
  median_ns : float;  (** sojourn median; 0 when no completions *)
  p99_ns : float;  (** sojourn p99 *)
  service_median_ns : float;
      (** median of request {e execution} times — what the tail-index
          fit must use, since queueing delay inflates sojourn tails even
          for light-tailed service *)
  service_p99_ns : float;
  max_qlen : int;
}

type t

val create : window_ns:int -> t

val window_ns : t -> int

val note_arrival : t -> now:int -> unit

val note_completion : t -> now:int -> latency_ns:int -> service_ns:int -> unit

val note_qlen : t -> int -> unit
(** Record an instantaneous total queue length observation. *)

val ready : t -> now:int -> bool
(** Has the current window elapsed? *)

val roll : t -> now:int -> snapshot
(** Close the current window, returning its snapshot and starting a
    fresh one. *)
