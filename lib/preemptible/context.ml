type state = Free | Active | Preempted

type ctx = { id : int; mutable cstate : state }

let ctx_id c = c.id
let state c = c.cstate

type t = {
  pool_capacity : int;
  pool_stack_kb : int;
  free_list : ctx Stack.t;
  mutable used : int;
  mutable max_used : int;
}

exception Pool_exhausted

let create_pool ~capacity ~stack_kb =
  if capacity <= 0 then invalid_arg "Context.create_pool: capacity must be positive";
  if stack_kb <= 0 then invalid_arg "Context.create_pool: stack size must be positive";
  let free_list = Stack.create () in
  for i = capacity - 1 downto 0 do
    Stack.push { id = i; cstate = Free } free_list
  done;
  { pool_capacity = capacity; pool_stack_kb = stack_kb; free_list; used = 0; max_used = 0 }

let capacity t = t.pool_capacity
let stack_kb t = t.pool_stack_kb

let alloc t =
  match Stack.pop_opt t.free_list with
  | None -> raise Pool_exhausted
  | Some c ->
    c.cstate <- Active;
    t.used <- t.used + 1;
    if t.used > t.max_used then t.max_used <- t.used;
    c

let release t c =
  if c.cstate = Free then invalid_arg "Context.release: context already free";
  c.cstate <- Free;
  t.used <- t.used - 1;
  Stack.push c t.free_list

let mark_preempted c =
  if c.cstate <> Active then invalid_arg "Context.mark_preempted: context not active";
  c.cstate <- Preempted

let mark_active c =
  if c.cstate <> Preempted then invalid_arg "Context.mark_active: context not preempted";
  c.cstate <- Active

let free_count t = t.pool_capacity - t.used
let in_use t = t.used
let high_water t = t.max_used
