(** The LibPreemptible request-serving runtime (Fig 5 / Fig 6).

    One dispatcher (network) thread feeds per-worker local FIFO queues;
    workers run requests as preemptible functions; preempted functions
    park in the global long queue ("running list") with their contexts;
    completed contexts return to the global free list.  A preemption
    mechanism — LibUtimer over UINTR in the full system — interrupts
    workers whose current function exceeded its time quantum.

    The same runtime, parameterized by {!mechanism}, also serves as the
    "LibPreemptible without UINTR" ablation (timer core firing kernel
    signals) and as the Libinger-style baseline (per-worker kernel
    timers + signals). *)

type mechanism =
  | Uintr_utimer of Utimer.config
      (** LibUtimer on a dedicated timer core delivering user
          interrupts — the full LibPreemptible. *)
  | Uintr_hw_offload
      (** Sec VII-C's future hardware: per-thread deadline comparators
          deliver the user interrupt directly, freeing the timer core
          (see {!Hw.Hwtimer}). *)
  | Signal_utimer of { poll_ns : int }
      (** The same dedicated timer core, but delivering preemption via
          kernel signals (pthread_kill) — the paper's UINTR-disabled
          ablation (Fig 8, orange). *)
  | Kernel_timer
      (** Per-worker POSIX timers delivering signals, re-armed with a
          syscall on every launch — the Libinger-style mechanism,
          subject to the kernel timer granularity floor. *)
  | No_mechanism  (** no preemption possible (run to completion) *)

type discipline =
  | Fifo  (** the paper's default: local queues are FIFO *)
  | Srpt_oracle
      (** shortest-remaining-processing-time with oracle knowledge of
          service times — the comparison point the paper argues is
          unrealizable in practice (Sec I), provided as a bound *)
  | Edf of int
      (** earliest-deadline-first over [arrival + slo]; the per-request
          deadline expression of Sec III-B *)

type config = {
  n_workers : int;
  policy : Policy.t;
  mechanism : mechanism;
  discipline : discipline;
      (** order in which a worker picks fresh requests from its local
          queue *)
  cancel_after_slo : int option;
      (** Sec III-B: cancel (rather than requeue) a function whose
          sojourn already exceeds this bound when it gets preempted —
          releasing resources a doomed request would waste *)
  dispatch_cost_ns : int;
      (** dispatcher service time per request (network poll + enqueue) *)
  launch_cost_ns : int;
      (** context allocation + trampoline into a fresh function *)
  complete_cost_ns : int;  (** context release + bookkeeping *)
  ctx_pool_capacity : int;
  stack_kb : int;
  stats_window_ns : int;
  work_stealing : bool;
      (** idle workers with empty queues steal fresh requests from the
          most loaded sibling (ZygOS-style; on by default) *)
  costs : Ksim.Costs.t;
  hw : Hw.Params.t;
  faults : Fault.t option;
      (** fault plan threaded through the interrupt fabric, the timer
          core and the server itself; [None] (default) injects nothing
          and adds no overhead *)
  watchdog : Utimer.watchdog option;
      (** enable the LibUtimer recovery layer (lost-UIPI retry,
          timer-core failover, kernel-timer fallback); [None] (default)
          keeps the fault-free fire-and-forget behaviour *)
  wedge_ns : int;
      (** how long the ["server.wedge"] fault keeps a worker pinned in
          a non-preemptible section before the deferred retry interrupt
          can preempt it *)
  seed : int64;
  max_events : int;  (** safety cap on simulation events *)
  trace : Obs.Trace.config option;
      (** enable the observability layer: the server builds an
          {!Obs.Trace.t} on its internal simulation clock, threads it
          through the interrupt fabric, the timer core, kernel locks and
          the fault ledger, and returns it in {!result.trace}.  [None]
          (default) emits nothing and perturbs nothing — a traced and an
          untraced run of the same seed are bit-identical. *)
  guard : Guard.config option;
      (** overload control: admission (bounded queue, CoDel-style
          delay shedding, token buckets), client timeouts with
          budgeted retries, and the brownout breaker.  [None]
          (default) is an exact no-op — same events, same RNG forks,
          byte-identical results to a guard-less build. *)
  telemetry : Telemetry.config option;
      (** live telemetry: a sim-time tick aggregating per-core latency
          sketches, SLO burn rates, core-time attribution and the
          quantum-controller audit trail, surfaced through
          {!probes.on_tick} and {!result.telemetry}.  [None] (default)
          skips every hook — identical latencies, allocation-free hot
          path.  (The tick does add bookkeeping events, so
          {!result.sim_events} grows when enabled.) *)
}

val default_config : n_workers:int -> policy:Policy.t -> mechanism:mechanism -> config

type probes = {
  on_complete : now:int -> latency_ns:int -> cls:Workload.Request.cls -> unit;
  on_window : Stats_window.snapshot -> quantum_ns:int -> unit;
      (** fired at every stats-window boundary, after the policy's
          controller ran; [quantum_ns] is the policy's quantum for LC
          requests at that moment *)
  on_tick : Telemetry.frame -> unit;
      (** fired at every telemetry tick (only when
          {!config.telemetry} is set) — the live feed behind
          [lpctl top] *)
}

val no_probes : probes

type resilience = {
  fault_report : Fault.report;
      (** the ledger: injected / detected / recovered per point, with
          [detected <= injected] and [recovered <= detected] by
          construction *)
  wd : Utimer.wd_stats option;  (** present when the run used LibUtimer *)
  timer_health : Utimer.health option;
  wedged : int;  (** interrupts deferred by the ["server.wedge"] fault *)
  fallback_engaged : bool;
      (** the timer degraded and preemption fell back to kernel timers *)
}

type result = {
  duration_ns : int;
  measured_ns : int;
  offered : int;
      (** measured arrivals — every attempt the clients presented,
          including shed ones and retries *)
  completed : int;  (** measured completions *)
  cancelled : int;  (** measured cancellations (SLO-doomed requests) *)
  dropped : int;
      (** measured server-side drops of expired queued work (guard
          [drop_expired]); after the drain
          [offered = completed + cancelled + dropped + shed] *)
  shed : int;  (** measured admission rejections (never executed) *)
  goodput : int;
      (** measured completions that reached a client still waiting —
          equals [completed] without a guard timeout *)
  goodput_rps : float;
      (** goodput completions inside the measurement window over its
          length — the figure of merit under overload *)
  all : Stat.Summary.report;
  lc : Stat.Summary.report option;
  be : Stat.Summary.report option;
  throughput_rps : float;
      (** completions that landed inside the measurement window divided
          by its length (drain-time completions are excluded, so an
          overloaded system reports its sustainable rate) *)
  offered_rps : float;
  preemptions : int;
  timer_interrupts : int;
  spurious_interrupts : int;
  ctx_high_water : int;
  worker_busy_frac : float;
  long_queue_hwm : int;
  dispatch_queue_hwm : int;
  sim_events : int;
      (** engine callbacks fired over the whole run (including warmup
          and drain) — deterministic for a given seed and config, and
          the numerator of [bench --perf]'s events-per-second figure *)
  resilience : resilience option;
      (** [Some] exactly when the run was configured with a fault plan *)
  guard : Guard.report option;
      (** [Some] exactly when {!config.guard} was set: the overload
          ledger (sheds by cause, timeouts, retries, breaker history) *)
  trace : Obs.Trace.t option;
      (** [Some] exactly when {!config.trace} was set; feed it to
          {!Obs.Export.perfetto} / {!Obs.Breakdown.of_trace} *)
  metrics : Obs.Metrics.snapshot;
      (** registry snapshot taken after the drain: request totals,
          interrupt counts, [sim.live_events] / [sim.pending] gauges,
          the end-to-end latency histogram, the [guard.state] gauge
          (when guarded), and (when tracing) [trace.recorded] /
          [trace.dropped] *)
  telemetry : Telemetry.report option;
      (** [Some] exactly when {!config.telemetry} was set: tick count,
          whole-run per-core time attribution, SLO reports (budget
          consumed, burn-alert edges and their first-fire times) and
          the quantum-controller audit trail *)
}

val run :
  ?probes:probes ->
  ?warmup_ns:int ->
  config ->
  arrival:Workload.Arrival.t ->
  source:Workload.Source.t ->
  duration_ns:int ->
  result
(** Simulate the server under an open-loop arrival stream for
    [duration_ns]; arrivals then stop and the system drains.  Requests
    arriving in [warmup_ns, duration_ns) are measured.  Raises
    [Invalid_argument] on inconsistent parameters and [Failure] if the
    event cap is hit before the system drains. *)

val run_trace :
  ?probes:probes ->
  ?warmup_ns:int ->
  config ->
  requests:Workload.Request.t list ->
  duration_ns:int ->
  result
(** Replay a pre-materialized request trace (e.g. from
    {!Workload.Tracegen}) instead of sampling an arrival process —
    fully deterministic inputs for tests and repeatable experiments.
    All requests must arrive before [duration_ns]. *)

val pp_result : Format.formatter -> result -> unit

val pp_resilience : Format.formatter -> resilience -> unit

(** {2 Cluster composition}

    [run] owns its whole simulation; a fleet needs N servers sharing
    one clock so a load balancer can read live queue state.  An
    {e instance} is a fully wired server attached to a caller-owned
    {!Engine.Sim.t}: the caller feeds it arrivals ({!inject}), ends the
    arrival phase ({!end_arrivals}), runs the shared engine, and
    collects the usual {!result} with {!finish}.  [Cluster.run] is the
    intended consumer; [run] itself is [create] + [start] + one
    private sim. *)

type t
(** A live server instance attached to a shared simulation. *)

val create :
  ?probes:probes -> ?warmup_ns:int -> config -> sim:Engine.Sim.t -> duration_ns:int -> t
(** Wire a server onto [sim]: cores, queues, pools, the preemption
    mechanism and (when configured) guard/trace/telemetry.  RNG streams
    are forked from [sim] in a fixed order, so instance creation order
    is part of the experiment's seed.  [config.seed] and
    [config.max_events] are ignored — the caller owns the engine.
    Raises [Invalid_argument] on inconsistent parameters, exactly like
    {!run}. *)

val start : t -> unit
(** Arm the periodic stats-window and telemetry loops.  Call once,
    after the initial arrival events are scheduled (event-insertion
    order breaks equal-timestamp ties). *)

val inject : t -> service_ns:int -> cls:Workload.Request.cls -> unit
(** Offer one request arriving at the current simulation time; it runs
    the same admission path (guard verdicts included) as a sampled
    arrival.  Raises [Invalid_argument] at or past [duration_ns]. *)

val end_arrivals : t -> unit
(** Declare the arrival phase over; the instance drains and then shuts
    its mechanism and loops down. *)

val inflight : t -> int
(** Requests admitted but not yet completed/cancelled/dropped — the
    JSQ/least-loaded dispatch signal. *)

val queue_depth : t -> int
(** Requests queued but not in service (dispatch + long + local
    queues) — the work-stealing imbalance signal. *)

val completed_so_far : t -> int
(** Measured completions so far (fleet telemetry ticks). *)

val steal_from : victim:t -> thief:t -> max:int -> int
(** Migrate up to [max] queued-but-unstarted requests from [victim]
    into [thief]'s dispatch pipeline, returning the number moved.
    Arrival stamps are preserved, and the stolen requests are {e not}
    re-counted as offered at the thief, so fleet-level conservation
    holds.  Raises [Invalid_argument] when [victim == thief]. *)

val finish : t -> result
(** Collect the result after the shared engine drained.  Raises
    [Failure] when requests are still outstanding (event cap hit). *)
