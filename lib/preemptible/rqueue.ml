(* Growable ring buffer with parallel payload/timestamp arrays.

   The runtime pushes every request through two queues (dispatch, then
   a worker local queue), so queue traffic is ~2x request traffic —
   hot enough that the Stdlib [Queue]'s cons cell plus [(x, now)]
   tuple per push showed up in the allocation profile (DESIGN §9).
   The ring stores payloads and enqueue timestamps in two parallel
   arrays and allocates only on growth.

   The payload array is created lazily from the first pushed element
   (there is no dummy in the API); vacated slots keep their stale
   reference until overwritten, which is fine for the short-lived
   simulation objects queued here. *)

type 'a t = {
  qname : string;
  mutable vals : 'a array; (* [||] until the first push *)
  mutable enq : int array; (* enqueue timestamps, parallel to vals *)
  mutable head : int; (* index of the oldest element *)
  mutable len : int;
  mutable hwm : int;
  mutable pushed : int;
  wait : Stat.Welford.t;
}

let create ~name =
  {
    qname = name;
    vals = [||];
    enq = [||];
    head = 0;
    len = 0;
    hwm = 0;
    pushed = 0;
    wait = Stat.Welford.create ();
  }

let name t = t.qname

let length t = t.len
let head_wait_ns t ~now = if t.len = 0 then 0 else now - t.enq.(t.head)
let is_empty t = t.len = 0
let max_length t = t.hwm
let total_pushed t = t.pushed
let mean_wait_ns t = Stat.Welford.mean t.wait

(* Physical index of logical position [i] (0 = oldest). *)
let[@inline] slot t i =
  let cap = Array.length t.vals in
  let j = t.head + i in
  if j >= cap then j - cap else j

let grow t x =
  let cap = Array.length t.vals in
  if cap = 0 then begin
    t.vals <- Array.make 16 x;
    t.enq <- Array.make 16 0
  end
  else begin
    let cap' = 2 * cap in
    let vals = Array.make cap' x in
    let enq = Array.make cap' 0 in
    for i = 0 to t.len - 1 do
      let j = slot t i in
      vals.(i) <- t.vals.(j);
      enq.(i) <- t.enq.(j)
    done;
    t.vals <- vals;
    t.enq <- enq;
    t.head <- 0
  end

let push t ~now x =
  if t.len = Array.length t.vals then grow t x;
  let j = slot t t.len in
  t.vals.(j) <- x;
  t.enq.(j) <- now;
  t.len <- t.len + 1;
  t.pushed <- t.pushed + 1;
  if t.len > t.hwm then t.hwm <- t.len

let pop t ~now =
  if t.len = 0 then None
  else begin
    let j = t.head in
    let x = t.vals.(j) in
    Stat.Welford.add t.wait (float_of_int (now - t.enq.(j)));
    t.head <- (if j + 1 = Array.length t.vals then 0 else j + 1);
    t.len <- t.len - 1;
    Some x
  end

let peek t = if t.len = 0 then None else Some t.vals.(t.head)

(* Remove the element minimizing [key] (FIFO among ties: the earliest
   qualifying element wins).  O(n) — the discipline queues are short in
   practice.  Removal shifts the elements behind the victim forward one
   slot, preserving FIFO order of the remainder. *)
let pop_by t ~now ~key =
  if t.len = 0 then None
  else begin
    let best = ref 0 in
    let best_key = ref (key t.vals.(slot t 0)) in
    for i = 1 to t.len - 1 do
      let k = key t.vals.(slot t i) in
      if k < !best_key then begin
        best := i;
        best_key := k
      end
    done;
    let j = slot t !best in
    let x = t.vals.(j) in
    Stat.Welford.add t.wait (float_of_int (now - t.enq.(j)));
    for i = !best downto 1 do
      let dst = slot t i and src = slot t (i - 1) in
      t.vals.(dst) <- t.vals.(src);
      t.enq.(dst) <- t.enq.(src)
    done;
    t.head <- (if t.head + 1 = Array.length t.vals then 0 else t.head + 1);
    t.len <- t.len - 1;
    Some x
  end
