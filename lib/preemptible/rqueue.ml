type 'a t = {
  qname : string;
  q : ('a * int) Queue.t;
  mutable hwm : int;
  mutable pushed : int;
  wait : Stat.Welford.t;
}

let create ~name = { qname = name; q = Queue.create (); hwm = 0; pushed = 0; wait = Stat.Welford.create () }

let name t = t.qname

let push t ~now x =
  ignore now;
  Queue.push (x, now) t.q;
  t.pushed <- t.pushed + 1;
  let len = Queue.length t.q in
  if len > t.hwm then t.hwm <- len

let pop t ~now =
  match Queue.take_opt t.q with
  | None -> None
  | Some (x, enq_at) ->
    Stat.Welford.add t.wait (float_of_int (now - enq_at));
    Some x

let pop_by t ~now ~key =
  if Queue.is_empty t.q then None
  else begin
    let best = ref None in
    Queue.iter
      (fun (x, _) ->
        match !best with
        | Some b when key b <= key x -> ()
        | Some _ | None -> best := Some x)
      t.q;
    match !best with
    | None -> None
    | Some chosen ->
      (* Rebuild without the chosen element (first occurrence). *)
      let keep = Queue.create () in
      let removed = ref false in
      let wait_ns = ref 0 in
      Queue.iter
        (fun (x, enq_at) ->
          if (not !removed) && x == chosen then begin
            removed := true;
            wait_ns := now - enq_at
          end
          else Queue.push (x, enq_at) keep)
        t.q;
      Queue.clear t.q;
      Queue.transfer keep t.q;
      Stat.Welford.add t.wait (float_of_int !wait_ns);
      Some chosen
  end

let peek t = Option.map fst (Queue.peek_opt t.q)
let length t = Queue.length t.q
let is_empty t = Queue.is_empty t.q
let max_length t = t.hwm
let total_pushed t = t.pushed
let mean_wait_ns t = Stat.Welford.mean t.wait
