(** fcontext-style execution contexts (Sec IV-B).

    The dispatcher allocates context objects and stack space for each
    request from a global memory pool whose size the application
    defines.  A context is attached to a function when it launches,
    parked on the global wait list when the function is preempted, and
    returned to the free list when the function completes. *)

type state = Free | Active | Preempted

type ctx

val ctx_id : ctx -> int

val state : ctx -> state

type t
(** A context pool. *)

exception Pool_exhausted

val create_pool : capacity:int -> stack_kb:int -> t
(** Raises [Invalid_argument] on non-positive capacity or stack size. *)

val capacity : t -> int

val stack_kb : t -> int

val alloc : t -> ctx
(** Take a context from the free list; raises {!Pool_exhausted} when
    none remain (the application chose the pool size). *)

val release : t -> ctx -> unit
(** Return a context to the free list. Raises [Invalid_argument] if the
    context is already free. *)

val mark_preempted : ctx -> unit
(** Move an active context to the preempted state (it now lives on the
    scheduler's wait list). *)

val mark_active : ctx -> unit
(** Reactivate a preempted context (resume). *)

val free_count : t -> int

val in_use : t -> int

val high_water : t -> int
(** Maximum simultaneous contexts in use over the pool's lifetime. *)
