(* Process-environment and seeding helpers shared by the bench harness
   and the command-line tools. *)

(* An empty value means unset: a cleared variable in CI should behave
   like an absent one. *)
let getenv_nonempty name =
  match Sys.getenv_opt name with None | Some "" -> None | Some v -> Some v

(* Derive the seed for task [index] of a sweep from the sweep's base
   seed.  The derivation is a pure function of (seed, index) — never of
   completion order — so a parallel sweep and a sequential sweep hand
   every task the same RNG stream. *)
let task_seed ~seed ~index =
  if index < 0 then invalid_arg "Env.task_seed: negative index";
  let salted =
    Int64.logxor seed (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (index + 1)))
  in
  Engine.Rng.bits64 (Engine.Rng.create salted)

(* Wall-clock nanoseconds since an arbitrary origin; only ever used for
   pool bookkeeping (occupancy spans, busy time), never for simulation
   results. *)
let now_ns () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e9))
