(** Domain-based task pool with a fixed worker count.

    {b Determinism contract.}  Results are delivered through promises
    in submission order ({!run_all} awaits them in the order the tasks
    were submitted), and every task must carry its own Rng/Sim state —
    the simulator guarantees that, since each [Server.run] builds a
    private [Engine.Sim.t] from an explicit seed.  Under that contract
    a run at any worker count is bit-identical to the sequential run:
    the pool only changes {e when} a task executes, never what it
    computes or where its result lands.

    With [jobs = 1] no domain is spawned at all: tasks run inline at
    submission time in the caller's domain, preserving the exact
    sequential behaviour (allocation pattern included) of a plain
    [List.map]. *)

type 'a t
(** A pool executing tasks that each return an ['a]. *)

type 'a promise
(** Handle for one submitted task's eventual result. *)

type stats = {
  jobs : int;
  submitted : int;
  completed : int;
  failed : int;
  max_occupancy : int;  (** peak number of tasks in flight *)
  tasks_per_worker : int array;
  busy_ns_per_worker : int array;  (** wall-clock, bookkeeping only *)
}
(** Snapshot of pool accounting; see {!stats}. *)

val create : ?trace:Obs.Trace.t -> ?label:string -> jobs:int -> unit -> 'a t
(** [create ~jobs ()] starts a pool with [jobs] workers.  [jobs = 1]
    runs tasks inline; [jobs > 1] spawns that many domains.  When
    [trace] is given, two coarse events per task (begin/end spans and
    an occupancy counter) are emitted — nothing on the simulator's hot
    path.  @raise Invalid_argument if [jobs < 1]. *)

val jobs : 'a t -> int
(** Worker count the pool was created with. *)

val submit : 'a t -> (unit -> 'a) -> 'a promise
(** Enqueue one task.  @raise Invalid_argument after {!shutdown}. *)

val await : 'a promise -> 'a
(** Block until the task finishes.  Re-raises the task's exception
    (with its original backtrace) if it failed. *)

val run_all : 'a t -> (unit -> 'a) list -> 'a list
(** Submit the whole batch first, then await in submission order: the
    caller observes results exactly as [List.map] would produce them. *)

val shutdown : 'a t -> unit
(** Close the queue, drain remaining tasks and join all domains. *)

val stats : 'a t -> stats
(** Consistent snapshot of the accounting counters. *)

val pp_stats : Format.formatter -> stats -> unit
(** One-line human-readable rendering of {!type:stats}. *)
