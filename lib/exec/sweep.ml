(* Sweep combinator: map a list of independent sweep points through a
   Pool, preserving submission order.  Every figure of the paper is a
   sweep of independent simulations, so this is the whole bench-layer
   parallelism story.

   [run ~jobs:1 f xs] is exactly [List.map f xs] — no pool, no
   domains — and because tasks carry isolated Rng/Sim state (seeds are
   data in the sweep points, never drawn from shared mutable state),
   [run ~jobs:n f xs = run ~jobs:1 f xs] for every [n]. *)

let default_jobs () = Domain.recommended_domain_count ()

let run ?trace ?label ~jobs f xs =
  let jobs = max 1 jobs in
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs when jobs = 1 -> List.map f xs
  | xs ->
    let pool = Pool.create ?trace ?label ~jobs () in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> Pool.run_all pool (List.map (fun x () -> f x) xs))

(* Per-task seeds for sweeps that want distinct streams per point:
   derived from (seed, index) alone, so any worker count sees the same
   assignment. *)
let seeds ~seed n = List.init n (fun index -> Env.task_seed ~seed ~index)

(* Fan a sweep out and fold the per-point summaries into one.  The
   merge is associative (tested), so the fold order — submission
   order — gives one canonical result. *)
let summaries ?trace ?label ~jobs f xs =
  let parts = run ?trace ?label ~jobs f xs in
  let dst = Stat.Summary.create () in
  List.iter (fun src -> Stat.Summary.merge_into ~dst ~src) parts;
  dst

let timeseries ?trace ?label ~jobs f xs =
  let parts = run ?trace ?label ~jobs f xs in
  match parts with
  | [] -> invalid_arg "Sweep.timeseries: empty sweep"
  | first :: rest ->
    let dst = Stat.Timeseries.create ~window_ns:(Stat.Timeseries.window_ns first) in
    Stat.Timeseries.merge_into ~dst ~src:first;
    List.iter (fun src -> Stat.Timeseries.merge_into ~dst ~src) rest;
    dst
