(** Process-environment and seeding helpers shared by the bench harness
    and the command-line tools ([lpctl], [lpbench_check]).

    This is the single home for environment-variable parsing in the
    repository: tools read knobs such as [LP_TRACE_OUT] (Perfetto trace
    destination) and [LP_POOL_TRACE] (sweep-pool occupancy tracing)
    through {!getenv_nonempty} so that an empty value and an unset
    variable behave identically. *)

val getenv_nonempty : string -> string option
(** [getenv_nonempty name] is [Some v] when the environment variable
    [name] is set to a non-empty string, and [None] when it is unset
    {e or} set to [""].  CI systems often "clear" a variable by setting
    it empty; treating both forms as absent keeps behaviour identical
    across shells and runners. *)

val task_seed : seed:int64 -> index:int -> int64
(** [task_seed ~seed ~index] derives the RNG seed for task [index] of a
    sweep from the sweep's base [seed].  The derivation is a pure
    function of [(seed, index)] — never of completion order — so a
    parallel sweep and a sequential sweep hand every task the same
    stream.  @raise Invalid_argument if [index < 0]. *)

val now_ns : unit -> int
(** Wall-clock nanoseconds since an arbitrary origin.  Used only for
    pool bookkeeping (occupancy spans, busy time), never for simulation
    results — simulated time comes from [Engine.Sim.now]. *)
