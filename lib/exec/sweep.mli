(** Sweep combinator: map a list of independent sweep points through a
    {!Pool}, preserving submission order.  Every figure of the paper is
    a sweep of independent simulations, so this is the whole
    bench-layer parallelism story.

    [run ~jobs:1 f xs] is exactly [List.map f xs] — no pool, no
    domains — and because tasks carry isolated Rng/Sim state (seeds are
    data in the sweep points, never drawn from shared mutable state),
    [run ~jobs:n f xs = run ~jobs:1 f xs] for every [n].  CI pins this
    with a jobs-1-vs-8 byte-diff of the gated figures. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val run :
  ?trace:Obs.Trace.t -> ?label:string -> jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [run ~jobs f xs] maps [f] over [xs] using at most [jobs] workers,
    returning results in the order of [xs].  [jobs] is clamped to at
    least 1; empty and singleton sweeps never build a pool. *)

val seeds : seed:int64 -> int -> int64 list
(** [seeds ~seed n] derives [n] per-point seeds from [(seed, index)]
    alone (via {!Env.task_seed}), so any worker count sees the same
    assignment. *)

val summaries :
  ?trace:Obs.Trace.t ->
  ?label:string ->
  jobs:int ->
  ('a -> Stat.Summary.t) ->
  'a list ->
  Stat.Summary.t
(** Fan a sweep out and fold the per-point summaries into one.  The
    merge is associative (tested), so the fold order — submission
    order — gives one canonical result. *)

val timeseries :
  ?trace:Obs.Trace.t ->
  ?label:string ->
  jobs:int ->
  ('a -> Stat.Timeseries.t) ->
  'a list ->
  Stat.Timeseries.t
(** Like {!summaries} for windowed timeseries; all points must share
    the first point's window width.
    @raise Invalid_argument on an empty sweep. *)
