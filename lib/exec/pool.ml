(* Domain-based task pool with a fixed worker count.

   Determinism contract: results are delivered through promises in
   submission order (Pool.run_all / Sweep.run await them in the order
   the tasks were submitted), and every task must carry its own
   Rng/Sim state — the simulator already guarantees that, since each
   Server.run builds a private Sim from an explicit seed.  Under that
   contract a run at any worker count is bit-identical to the
   sequential run: the pool only changes *when* a task executes, never
   what it computes or where its result lands.

   With [jobs = 1] no domain is spawned at all: tasks run inline at
   submission time in the caller's domain, preserving the exact
   sequential behaviour (allocation pattern included) of the
   pre-pool harness. *)

type 'a outcome =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a promise = {
  pm : Mutex.t;
  pc : Condition.t;
  mutable outcome : 'a outcome;
}

type stats = {
  jobs : int;
  submitted : int;
  completed : int;
  failed : int;
  max_occupancy : int;  (* peak number of tasks in flight *)
  tasks_per_worker : int array;
  busy_ns_per_worker : int array;  (* wall-clock, bookkeeping only *)
}

type 'a t = {
  n_jobs : int;
  label : string;
  qm : Mutex.t;  (* guards q, closed and every mutable counter below *)
  qc : Condition.t;
  q : (int * (unit -> 'a) * 'a promise) Queue.t;
  mutable closed : bool;
  mutable n_submitted : int;
  mutable n_completed : int;
  mutable n_failed : int;
  mutable active : int;
  mutable peak : int;
  wtasks : int array;
  wbusy : int array;
  mutable domains : unit Domain.t array;
  trace : Obs.Trace.t option;
  tm : Mutex.t;  (* trace rings are single-writer; serialize emission *)
}

let jobs t = t.n_jobs

(* -- trace probes (coarse: two events per task, nothing on the sim's
      hot path) ----------------------------------------------------- *)

let tr_task_begin t ~worker ~task =
  match t.trace with
  | None -> ()
  | Some tr ->
    Mutex.lock t.tm;
    Obs.Trace.span_begin tr Obs.Trace.Exec ~name:t.label ~track:worker ~arg:task;
    Obs.Trace.counter tr Obs.Trace.Exec ~name:"pool.occupancy" ~value:t.active;
    Mutex.unlock t.tm

let tr_task_end t ~worker =
  match t.trace with
  | None -> ()
  | Some tr ->
    Mutex.lock t.tm;
    Obs.Trace.span_end tr Obs.Trace.Exec ~name:t.label ~track:worker;
    Obs.Trace.counter tr Obs.Trace.Exec ~name:"pool.occupancy" ~value:t.active;
    Mutex.unlock t.tm

(* -- task execution ------------------------------------------------ *)

let fulfill p outcome =
  Mutex.lock p.pm;
  p.outcome <- outcome;
  Condition.broadcast p.pc;
  Mutex.unlock p.pm

let exec_task t ~worker id fn p =
  tr_task_begin t ~worker ~task:id;
  let t0 = Env.now_ns () in
  let outcome =
    try Done (fn ())
    with e -> Failed (e, Printexc.get_raw_backtrace ())
  in
  let dt = Env.now_ns () - t0 in
  Mutex.lock t.qm;
  t.active <- t.active - 1;
  t.wtasks.(worker) <- t.wtasks.(worker) + 1;
  t.wbusy.(worker) <- t.wbusy.(worker) + dt;
  (match outcome with
  | Failed _ -> t.n_failed <- t.n_failed + 1
  | Done _ | Pending -> t.n_completed <- t.n_completed + 1);
  Mutex.unlock t.qm;
  tr_task_end t ~worker;
  fulfill p outcome

let rec worker_loop t ~worker =
  Mutex.lock t.qm;
  while Queue.is_empty t.q && not t.closed do
    Condition.wait t.qc t.qm
  done;
  if Queue.is_empty t.q then Mutex.unlock t.qm (* closed and drained *)
  else begin
    let id, fn, p = Queue.pop t.q in
    t.active <- t.active + 1;
    if t.active > t.peak then t.peak <- t.active;
    Mutex.unlock t.qm;
    exec_task t ~worker id fn p;
    worker_loop t ~worker
  end

(* -- public api ---------------------------------------------------- *)

let create ?trace ?(label = "task") ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      n_jobs = jobs;
      label;
      qm = Mutex.create ();
      qc = Condition.create ();
      q = Queue.create ();
      closed = false;
      n_submitted = 0;
      n_completed = 0;
      n_failed = 0;
      active = 0;
      peak = 0;
      wtasks = Array.make jobs 0;
      wbusy = Array.make jobs 0;
      domains = [||];
      trace;
      tm = Mutex.create ();
    }
  in
  if jobs > 1 then
    t.domains <- Array.init jobs (fun worker -> Domain.spawn (fun () -> worker_loop t ~worker));
  t

let submit t fn =
  let p = { pm = Mutex.create (); pc = Condition.create (); outcome = Pending } in
  Mutex.lock t.qm;
  if t.closed then begin
    Mutex.unlock t.qm;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  let id = t.n_submitted in
  t.n_submitted <- id + 1;
  if t.n_jobs = 1 then begin
    (* Inline execution: sequential semantics, no domain involved. *)
    t.active <- t.active + 1;
    if t.active > t.peak then t.peak <- t.active;
    Mutex.unlock t.qm;
    exec_task t ~worker:0 id fn p
  end
  else begin
    Queue.push (id, fn, p) t.q;
    Condition.signal t.qc;
    Mutex.unlock t.qm
  end;
  p

let await p =
  Mutex.lock p.pm;
  while (match p.outcome with Pending -> true | Done _ | Failed _ -> false) do
    Condition.wait p.pc p.pm
  done;
  let outcome = p.outcome in
  Mutex.unlock p.pm;
  match outcome with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

(* Submit the whole batch first, then await in submission order: the
   caller observes results exactly as List.map would produce them. *)
let run_all t fns =
  let ps = List.map (fun fn -> submit t fn) fns in
  List.map await ps

let shutdown t =
  Mutex.lock t.qm;
  t.closed <- true;
  Condition.broadcast t.qc;
  Mutex.unlock t.qm;
  Array.iter Domain.join t.domains;
  t.domains <- [||]

let stats t =
  Mutex.lock t.qm;
  let s =
    {
      jobs = t.n_jobs;
      submitted = t.n_submitted;
      completed = t.n_completed;
      failed = t.n_failed;
      max_occupancy = t.peak;
      tasks_per_worker = Array.copy t.wtasks;
      busy_ns_per_worker = Array.copy t.wbusy;
    }
  in
  Mutex.unlock t.qm;
  s

let pp_stats fmt s =
  Format.fprintf fmt "jobs=%d tasks=%d (failed %d) peak-occupancy=%d per-worker=[%s]"
    s.jobs s.submitted s.failed s.max_occupancy
    (String.concat ";" (Array.to_list (Array.map string_of_int s.tasks_per_worker)))
