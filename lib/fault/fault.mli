(** Deterministic, seeded fault-injection substrate.

    Simulated components register {e injection points} by name
    ("uipi.drop", "utimer.crash", ...) and consult them at the moment
    the corresponding hardware or kernel action would happen.  A fault
    {e schedule} — built programmatically with {!set} or parsed from a
    compact spec string with {!parse} — attaches a trigger to each
    point.  All randomness flows through one seeded SplitMix64 stream,
    so a given (seed, schedule, workload) triple replays bit-identically.

    The substrate also owns the resilience ledger.  Injections are
    counted here at the point of injection; recovery layers (the
    LibUtimer watchdog, the server's wedge handler) report back through
    {!mark_detected} / {!mark_recovered}.  Both marks are clamped so the
    per-point invariants

    - [detected <= injected]
    - [recovered <= detected]
    - [undetected = injected - detected >= 0]

    hold by construction, even when one injected fault causes several
    observable anomalies (a corrupted UITT entry swallows every
    subsequent send) or one anomaly is re-detected by several retries. *)

type trigger =
  | Never
  | Always
  | Probability of float  (** each evaluation fires with this probability *)
  | One_shot of int
      (** fires on exactly the [n]-th evaluation of the point (1-based) *)
  | Window of { from_ns : int; until_ns : int; prob : float }
      (** fires with probability [prob] while [from_ns <= now < until_ns] *)

type t
(** A fault plan: registry of points, their triggers, and the ledger. *)

type point

val create : ?seed:int64 -> unit -> t
(** Fresh plan with every future point at {!Never}. Default seed 7. *)

val set_trace : t -> Obs.Trace.t -> unit
(** Mirror the ledger onto a trace: every injection, detection and
    recovery emits an {!Obs.Trace.cat.Fault} instant (["fault.inject"],
    ["fault.detected"], ["fault.recovered"]) whose track is the point's
    registration index and whose arg is the running count.  Applies to
    points registered before and after the call. *)

val point : t -> string -> point
(** [point t name] returns the injection point called [name],
    registering it (trigger {!Never}) on first use.  Components call
    this once at construction and keep the handle. *)

val set : t -> string -> trigger -> unit
(** Attach a trigger to a named point (registering it if needed). *)

val trigger : point -> trigger
val name : point -> string

val fires : point -> now:int -> bool
(** Evaluate the point at simulation time [now].  Counts the evaluation
    and, when the trigger fires, the injection. *)

val count_injection : point -> unit
(** Manually record an injection at a point whose effect was decided
    elsewhere (rarely needed; {!fires} already counts). *)

val evals : point -> int
val injected : point -> int

val mark_detected : t -> ?hint:string -> unit -> unit
(** A recovery layer observed an anomaly.  Attributes the detection to
    the [hint] point when given and under-detected, otherwise to any
    point with [detected < injected]; a no-op when every injection is
    already accounted detected (re-detection of the same fault). *)

val mark_recovered : t -> ?hint:string -> unit -> unit
(** A recovery layer repaired an anomaly; attribution mirrors
    {!mark_detected} with the clamp [recovered <= detected]. *)

type point_report = {
  pname : string;
  pevals : int;
  pinjected : int;
  pdetected : int;
  precovered : int;
}

type report = {
  injected : int;
  detected : int;
  recovered : int;
  undetected : int;  (** [injected - detected] *)
  points : point_report list;  (** registration order *)
}

val report : t -> report

val parse : t -> string -> (unit, string) result
(** Install a schedule from a spec string:
    [point=kind(,point=kind)*] where [kind] is one of
    [p:FLOAT] (probability), [once:N] (n-th evaluation),
    [win:FROM-UNTIL:FLOAT] (window), [always], [never].
    Example: ["uipi.drop=p:0.01,utimer.crash=once:2000"]. *)

val pp_trigger : Format.formatter -> trigger -> unit
val pp_report : Format.formatter -> report -> unit
