type trigger =
  | Never
  | Always
  | Probability of float
  | One_shot of int
  | Window of { from_ns : int; until_ns : int; prob : float }

type point = {
  pt_name : string;
  pt_idx : int; (* registration order; doubles as the trace track *)
  trace : Obs.Trace.t option ref; (* shared with the owning plan *)
  rng : Engine.Rng.t;
  mutable pt_trigger : trigger;
  mutable n_evals : int;
  mutable n_injected : int;
  mutable n_detected : int;
  mutable n_recovered : int;
}

type t = {
  root : Engine.Rng.t;
  trace : Obs.Trace.t option ref;
  mutable pts : point list; (* reverse registration order *)
}

let create ?(seed = 7L) () =
  { root = Engine.Rng.create seed; trace = ref None; pts = [] }

let set_trace t trace = t.trace := Some trace

let tr (p : point) ~name ~arg =
  match !(p.trace) with
  | Some trace -> Obs.Trace.instant trace Obs.Trace.Fault ~name ~track:p.pt_idx ~arg
  | None -> ()

let find t name = List.find_opt (fun p -> p.pt_name = name) t.pts

let point t name =
  match find t name with
  | Some p -> p
  | None ->
    let p =
      {
        pt_name = name;
        pt_idx = List.length t.pts;
        trace = t.trace;
        (* Each point draws from its own split stream so adding a point
           does not perturb the draws of unrelated points. *)
        rng = Engine.Rng.split t.root;
        pt_trigger = Never;
        n_evals = 0;
        n_injected = 0;
        n_detected = 0;
        n_recovered = 0;
      }
    in
    t.pts <- p :: t.pts;
    p

let set t name trigger =
  let p = point t name in
  (match trigger with
  | Probability pr | Window { prob = pr; _ } ->
    if pr < 0.0 || pr > 1.0 then invalid_arg "Fault.set: probability out of [0,1]"
  | One_shot n -> if n <= 0 then invalid_arg "Fault.set: one-shot count must be positive"
  | Never | Always -> ());
  p.pt_trigger <- trigger

let trigger p = p.pt_trigger
let name p = p.pt_name

let fires p ~now =
  p.n_evals <- p.n_evals + 1;
  let hit =
    match p.pt_trigger with
    | Never -> false
    | Always -> true
    | Probability pr -> Engine.Rng.float p.rng < pr
    | One_shot n -> p.n_evals = n
    | Window { from_ns; until_ns; prob } ->
      now >= from_ns && now < until_ns && Engine.Rng.float p.rng < prob
  in
  if hit then begin
    p.n_injected <- p.n_injected + 1;
    tr p ~name:"fault.inject" ~arg:p.n_injected
  end;
  hit

let count_injection p =
  p.n_injected <- p.n_injected + 1;
  tr p ~name:"fault.inject" ~arg:p.n_injected
let evals p = p.n_evals
let injected p = p.n_injected

(* Attribution: prefer the hinted point, fall back to any point with
   spare budget, clamp otherwise.  The clamps keep the ledger invariants
   exact even when detections outnumber injections (one crash causes
   many observed misses) or vice versa. *)

let attribute t ?hint ~eligible ~bump () =
  let try_point p = if eligible p then (bump p; true) else false in
  let hinted =
    match hint with
    | Some h -> (match find t h with Some p -> try_point p | None -> false)
    | None -> false
  in
  if not hinted then ignore (List.exists try_point (List.rev t.pts))

let mark_detected t ?hint () =
  attribute t ?hint
    ~eligible:(fun p -> p.n_detected < p.n_injected)
    ~bump:(fun p ->
      p.n_detected <- p.n_detected + 1;
      tr p ~name:"fault.detected" ~arg:p.n_detected)
    ()

let mark_recovered t ?hint () =
  attribute t ?hint
    ~eligible:(fun p -> p.n_recovered < p.n_detected)
    ~bump:(fun p ->
      p.n_recovered <- p.n_recovered + 1;
      tr p ~name:"fault.recovered" ~arg:p.n_recovered)
    ()

type point_report = {
  pname : string;
  pevals : int;
  pinjected : int;
  pdetected : int;
  precovered : int;
}

type report = {
  injected : int;
  detected : int;
  recovered : int;
  undetected : int;
  points : point_report list;
}

let report t =
  let points =
    List.rev_map
      (fun p ->
        {
          pname = p.pt_name;
          pevals = p.n_evals;
          pinjected = p.n_injected;
          pdetected = p.n_detected;
          precovered = p.n_recovered;
        })
      t.pts
  in
  let sum f = List.fold_left (fun acc p -> acc + f p) 0 points in
  let injected = sum (fun p -> p.pinjected) in
  let detected = sum (fun p -> p.pdetected) in
  {
    injected;
    detected;
    recovered = sum (fun p -> p.precovered);
    undetected = injected - detected;
    points;
  }

(* ------------------------------------------------------------------ *)
(* Spec parsing                                                        *)
(* ------------------------------------------------------------------ *)

let parse_trigger s =
  match String.split_on_char ':' (String.trim s) with
  | [ "always" ] -> Ok Always
  | [ "never" ] -> Ok Never
  | [ "p"; f ] -> (
    match float_of_string_opt f with
    | Some p when p >= 0.0 && p <= 1.0 -> Ok (Probability p)
    | _ -> Error (Printf.sprintf "bad probability %S" f))
  | [ "once"; n ] -> (
    match int_of_string_opt n with
    | Some n when n > 0 -> Ok (One_shot n)
    | _ -> Error (Printf.sprintf "bad one-shot count %S" n))
  | [ "win"; range; f ] -> (
    match (String.split_on_char '-' range, float_of_string_opt f) with
    | [ a; b ], Some p when p >= 0.0 && p <= 1.0 -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some from_ns, Some until_ns when from_ns <= until_ns ->
        Ok (Window { from_ns; until_ns; prob = p })
      | _ -> Error (Printf.sprintf "bad window range %S" range))
    | _ -> Error (Printf.sprintf "bad window spec %S" s))
  | _ -> Error (Printf.sprintf "bad trigger %S (p:F | once:N | win:A-B:F | always | never)" s)

let parse t spec =
  let entries =
    String.split_on_char ',' spec |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go = function
    | [] -> Ok ()
    | entry :: rest -> (
      match String.index_opt entry '=' with
      | None -> Error (Printf.sprintf "missing '=' in %S" entry)
      | Some i -> (
        let pname = String.trim (String.sub entry 0 i) in
        let ts = String.sub entry (i + 1) (String.length entry - i - 1) in
        if pname = "" then Error (Printf.sprintf "empty point name in %S" entry)
        else
          match parse_trigger ts with
          | Ok trig ->
            set t pname trig;
            go rest
          | Error e -> Error e))
  in
  go entries

let pp_trigger fmt = function
  | Never -> Format.fprintf fmt "never"
  | Always -> Format.fprintf fmt "always"
  | Probability p -> Format.fprintf fmt "p:%g" p
  | One_shot n -> Format.fprintf fmt "once:%d" n
  | Window { from_ns; until_ns; prob } ->
    Format.fprintf fmt "win:%d-%d:%g" from_ns until_ns prob

let pp_report fmt r =
  Format.fprintf fmt "@[<v>injected=%d detected=%d recovered=%d undetected=%d" r.injected
    r.detected r.recovered r.undetected;
  List.iter
    (fun p ->
      if p.pinjected > 0 || p.pevals > 0 then
        Format.fprintf fmt "@   %-20s evals=%-8d inj=%-6d det=%-6d rec=%d" p.pname p.pevals
          p.pinjected p.pdetected p.precovered)
    r.points;
  Format.fprintf fmt "@]"
