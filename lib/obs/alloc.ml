type t = { mutable w0 : float }

let words_now () = Gc.minor_words ()

let start () = { w0 = words_now () }
let reset t = t.w0 <- words_now ()
let words t = words_now () -. t.w0
let per t ~denom = if denom = 0.0 then 0.0 else (words_now () -. t.w0) /. denom

let measure f =
  let t = start () in
  let x = f () in
  (x, words t)
