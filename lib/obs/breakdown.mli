(** Per-request latency breakdown — a software Table IV.

    Folds the per-request lifecycle events that {!Trace.cat.Request}
    probes emit (["req.arrive"], ["req.assign"], ["req.run"],
    ["req.preempt"], ["req.done"], ["req.cancel"]; [track] = request
    id) into additive latency components:

    - [dispatch_ns]: arrival → dispatcher assignment (central dispatch
      queue + dispatcher service time);
    - [sched_ns]: assignment → first activation on a core (worker local
      queue wait + launch cost);
    - [service_ns]: on-core time, summed over activation segments
      (includes fault-injected stalls, which physically occupy the
      core);
    - [preempted_ns]: preemption → next activation, summed over
      episodes (long-queue wait + context-switch overheads).

    The components telescope: for every completed request,
    [dispatch + sched + service + preempted = total] {e exactly} (the
    invariant the qcheck suite enforces to 1 ns).  Requests whose
    lifecycle is incomplete — events evicted by ring wraparound, or
    still in flight — are counted in [incomplete] and excluded. *)

type components = {
  id : int;
  arrival_ns : int;
  total_ns : int;  (** completion - arrival *)
  dispatch_ns : int;
  sched_ns : int;
  service_ns : int;
  preempted_ns : int;
  segments : int;  (** activation count = preemptions + 1 *)
}

type agg = {
  n : int;
  a_total : Stat.Summary.report;
  a_dispatch : Stat.Summary.report;
  a_sched : Stat.Summary.report;
  a_service : Stat.Summary.report;
  a_preempted : Stat.Summary.report;
}

type report = {
  requests : components list;  (** ascending request id *)
  complete : int;
  incomplete : int;
  cancelled : int;
  agg : agg option;  (** [None] when no request completed *)
}

val of_trace : Trace.t -> report

val sums_ok : report -> bool
(** Components of every request sum to [total_ns] within 1 ns. *)

val pp : Format.formatter -> report -> unit
(** Component table (mean/p50/p99/max in µs). *)
