(** Named metrics registry: counters, callback gauges, histograms.

    Components register metrics once and update them through O(1)
    handles; {!snapshot} materializes a sorted, self-describing list
    suitable for reports and CSV export.  Histograms reuse
    {!Stat.Summary} so tail quantiles come out with the same fidelity
    as the benchmark summaries.

    Gauges are callbacks, evaluated at snapshot time — the natural fit
    for instantaneous quantities like [Sim.live_events] or queue
    depths that already live in the instrumented component. *)

type t

type counter
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** [counter t name] registers (or retrieves) the counter [name]. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val gauge : t -> string -> (unit -> int) -> unit
(** [gauge t name read] registers [name]; [read] is called at snapshot
    time.  Re-registering replaces the callback. *)

val histogram : t -> string -> histogram
val observe : histogram -> float -> unit

type value =
  | Counter of int
  | Gauge of int
  | Histogram of Stat.Summary.report

type snapshot = (string * value) list

val snapshot : t -> snapshot
(** All metrics, sorted by name.  Histograms with no observations are
    omitted. *)

val find : snapshot -> string -> value option

val pp_snapshot : Format.formatter -> snapshot -> unit
