type cat = Uipi | Klock | Utimer | Sched | Server | Request | Fault | Fiber | Exec | Guard

let all_cats = [ Uipi; Klock; Utimer; Sched; Server; Request; Fault; Fiber; Exec; Guard ]

let cat_index = function
  | Uipi -> 0
  | Klock -> 1
  | Utimer -> 2
  | Sched -> 3
  | Server -> 4
  | Request -> 5
  | Fault -> 6
  | Fiber -> 7
  | Exec -> 8
  | Guard -> 9

let n_cats = 10

let cat_name = function
  | Uipi -> "uipi"
  | Klock -> "klock"
  | Utimer -> "utimer"
  | Sched -> "sched"
  | Server -> "server"
  | Request -> "request"
  | Fault -> "fault"
  | Fiber -> "fiber"
  | Exec -> "exec"
  | Guard -> "guard"

let cat_of_string s =
  match String.lowercase_ascii s with
  | "uipi" -> Ok Uipi
  | "klock" -> Ok Klock
  | "utimer" -> Ok Utimer
  | "sched" -> Ok Sched
  | "server" -> Ok Server
  | "request" -> Ok Request
  | "fault" -> Ok Fault
  | "fiber" -> Ok Fiber
  | "exec" -> Ok Exec
  | "guard" -> Ok Guard
  | other ->
    Error
      (Printf.sprintf "unknown category %S (%s)" other
         (String.concat "|" (List.map cat_name all_cats)))

type kind = Span_begin | Span_end | Instant | Counter

let kind_index = function Span_begin -> 0 | Span_end -> 1 | Instant -> 2 | Counter -> 3
let kind_of_index = function
  | 0 -> Span_begin
  | 1 -> Span_end
  | 2 -> Instant
  | _ -> Counter

let cat_of_index = function
  | 0 -> Uipi
  | 1 -> Klock
  | 2 -> Utimer
  | 3 -> Sched
  | 4 -> Server
  | 5 -> Request
  | 6 -> Fault
  | 7 -> Fiber
  | 8 -> Exec
  | _ -> Guard

type event = { ts : int; kind : kind; cat : cat; name : string; track : int; arg : int }

type config = { capacity : int; categories : cat list }

let default_config = { capacity = 1 lsl 20; categories = all_cats }

(* Struct-of-arrays ring: one event = five scalar stores plus a string
   pointer store, no allocation. *)
type t = {
  clock : unit -> int;
  cap : int;
  e_ts : int array;
  e_kc : int array; (* kind * n_cats + cat *)
  e_name : string array;
  e_track : int array;
  e_arg : int array;
  on : bool array; (* category enable mask *)
  mutable head : int; (* next write slot *)
  mutable len : int;
  mutable n_recorded : int;
  mutable n_dropped : int;
}

let create ?(config = default_config) ~clock () =
  if config.capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  let on = Array.make n_cats false in
  List.iter (fun c -> on.(cat_index c) <- true) config.categories;
  {
    clock;
    cap = config.capacity;
    e_ts = Array.make config.capacity 0;
    e_kc = Array.make config.capacity 0;
    e_name = Array.make config.capacity "";
    e_track = Array.make config.capacity 0;
    e_arg = Array.make config.capacity 0;
    on;
    head = 0;
    len = 0;
    n_recorded = 0;
    n_dropped = 0;
  }

let set_categories t cats =
  Array.fill t.on 0 n_cats false;
  List.iter (fun c -> t.on.(cat_index c) <- true) cats

let enabled t c = t.on.(cat_index c)

let emit t kind cat name track arg =
  let ci = cat_index cat in
  if t.on.(ci) then begin
    let i = t.head in
    t.e_ts.(i) <- t.clock ();
    t.e_kc.(i) <- (kind_index kind * n_cats) + ci;
    t.e_name.(i) <- name;
    t.e_track.(i) <- track;
    t.e_arg.(i) <- arg;
    t.head <- (if i + 1 = t.cap then 0 else i + 1);
    if t.len = t.cap then t.n_dropped <- t.n_dropped + 1 else t.len <- t.len + 1;
    t.n_recorded <- t.n_recorded + 1
  end

let span_begin t cat ~name ~track ~arg = emit t Span_begin cat name track arg
let span_end t cat ~name ~track = emit t Span_end cat name track 0
let instant t cat ~name ~track ~arg = emit t Instant cat name track arg
let counter t cat ~name ~value = emit t Counter cat name 0 value

let recorded t = t.n_recorded
let dropped t = t.n_dropped
let length t = t.len
let capacity t = t.cap

let iter t f =
  let start = (t.head - t.len + t.cap) mod t.cap in
  for k = 0 to t.len - 1 do
    let i = (start + k) mod t.cap in
    let kc = t.e_kc.(i) in
    f
      {
        ts = t.e_ts.(i);
        kind = kind_of_index (kc / n_cats);
        cat = cat_of_index (kc mod n_cats);
        name = t.e_name.(i);
        track = t.e_track.(i);
        arg = t.e_arg.(i);
      }
  done

let to_list t =
  let acc = ref [] in
  iter t (fun e -> acc := e :: !acc);
  List.rev !acc

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.n_recorded <- 0;
  t.n_dropped <- 0
