type t = {
  a : float;
  gamma : float;
  inv_log_gamma : float;
  bins : int array;
  mutable zero : int; (* observations <= 0 *)
  mutable n : int;
  mutable s : float;
  mutable lo : float;
  mutable hi : float;
}

let create ?(alpha = 0.01) ?(max_bins = 2048) () =
  if alpha <= 0.0 || alpha >= 1.0 then invalid_arg "Sketch.create: alpha outside (0,1)";
  if max_bins < 1 then invalid_arg "Sketch.create: max_bins must be at least 1";
  let gamma = (1.0 +. alpha) /. (1.0 -. alpha) in
  {
    a = alpha;
    gamma;
    inv_log_gamma = 1.0 /. log gamma;
    bins = Array.make max_bins 0;
    zero = 0;
    n = 0;
    s = 0.0;
    lo = infinity;
    hi = neg_infinity;
  }

let alpha t = t.a
let count t = t.n
let sum t = t.s
let min_value t = if t.n = 0 then nan else t.lo
let max_value t = if t.n = 0 then nan else t.hi

(* Bucket k covers (gamma^(k-1), gamma^k]; values in (0,1] land in
   bucket 0, values past the grid ceiling clamp to the last bucket. *)
let key_of t v =
  if v <= 1.0 then 0
  else begin
    let k = int_of_float (Float.ceil (log v *. t.inv_log_gamma)) in
    if k < 0 then 0 else if k >= Array.length t.bins then Array.length t.bins - 1 else k
  end

let add t v =
  t.n <- t.n + 1;
  t.s <- t.s +. v;
  if v < t.lo then t.lo <- v;
  if v > t.hi then t.hi <- v;
  if v <= 0.0 then t.zero <- t.zero + 1
  else
    let k = key_of t v in
    t.bins.(k) <- t.bins.(k) + 1

(* Geometric bucket midpoint: within alpha of every value the bucket
   can hold.  Clamped to the exact observed range so q=0 / q=1 stay
   honest even for clamped buckets. *)
let value_of_key t k =
  let est = if k = 0 then 1.0 else 2.0 *. (t.gamma ** float_of_int k) /. (t.gamma +. 1.0) in
  Float.min t.hi (Float.max t.lo est)

let quantile_opt t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Sketch.quantile: q outside [0,1]";
  if t.n = 0 then None
  else begin
    (* Nearest-rank (ceil) — mirror the oracle in the accuracy test. *)
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int (t.n - 1))) in
      if r < 0 then 0 else if r > t.n - 1 then t.n - 1 else r
    in
    if rank < t.zero then Some (Float.min 0.0 t.lo)
    else begin
      let cum = ref t.zero and k = ref 0 and found = ref None in
      while !found = None && !k < Array.length t.bins do
        cum := !cum + t.bins.(!k);
        if !cum > rank then found := Some (value_of_key t !k);
        incr k
      done;
      match !found with Some v -> Some v | None -> Some t.hi
    end
  end

let quantile t q =
  match quantile_opt t q with
  | Some v -> v
  | None -> invalid_arg "Sketch.quantile: empty sketch"

let merge_into ~dst ~src =
  if dst.a <> src.a || Array.length dst.bins <> Array.length src.bins then
    invalid_arg "Sketch.merge_into: geometry mismatch";
  for k = 0 to Array.length dst.bins - 1 do
    dst.bins.(k) <- dst.bins.(k) + src.bins.(k)
  done;
  dst.zero <- dst.zero + src.zero;
  dst.n <- dst.n + src.n;
  dst.s <- dst.s +. src.s;
  if src.lo < dst.lo then dst.lo <- src.lo;
  if src.hi > dst.hi then dst.hi <- src.hi

let clear t =
  Array.fill t.bins 0 (Array.length t.bins) 0;
  t.zero <- 0;
  t.n <- 0;
  t.s <- 0.0;
  t.lo <- infinity;
  t.hi <- neg_infinity
