(* Minimal JSON: enough to write and read back the machine-readable
   bench reports (bench --report / lpbench_check) without an external
   dependency.  Objects preserve member order on both paths so a
   report re-emitted from the same data is byte-identical. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Shortest representation that round-trips and never depends on
   locale; integers print without a trailing ".".  Non-finite values
   have no JSON spelling — map them to null. *)
let num_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let rec write buf ~indent ~level t =
  let pad n = String.make (n * indent) ' ' in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v ->
    if not (Float.is_finite v) then Buffer.add_string buf "null"
    else Buffer.add_string buf (num_to_string v)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (level + 1));
        write buf ~indent ~level:(level + 1) item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad level);
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj members ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (level + 1));
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\": ";
        write buf ~indent ~level:(level + 1) v)
      members;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad level);
    Buffer.add_char buf '}'

let to_string ?(indent = 2) t =
  let buf = Buffer.create 4096 in
  write buf ~indent ~level:0 t;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let to_file ?indent t ~path =
  let oc = open_out path in
  output_string oc (to_string ?indent t);
  close_out oc

(* ------------------------------------------------------------------ *)
(* parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" !pos msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, found %c" c c')
    | None -> fail (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
          in
          (* Reports only ever contain ASCII; anything else degrades to
             '?' rather than growing a UTF-8 encoder here. *)
          Buffer.add_char buf (if code < 0x80 then Char.chr code else '?')
        | c -> fail (Printf.sprintf "bad escape \\%c" c));
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && numchar s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> Num v
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let member () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let members = ref [ member () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          members := member () :: !members;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !members)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  | exception Parse_error msg -> Error msg

let of_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    parse s

(* ------------------------------------------------------------------ *)
(* accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj ms -> List.assoc_opt key ms | _ -> None
let to_num = function Num v -> Some v | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_obj = function Obj ms -> Some ms | _ -> None
