(** Minor-allocation counters.

    Thin wrapper over [Gc.minor_words] used to hold the engine to its
    allocation budget (DESIGN §9).  Minor-word counts depend only on
    the compiled program and its inputs — not on the host's speed — so
    a count normalised by simulated time is as deterministic as the
    simulation itself and can be regression-gated in CI next to the
    determinism job ([bench --perf]).

    The counter reads the allocation clock at {!start} (or {!reset})
    and reports the delta; it allocates nothing itself after
    creation. *)

type t

val start : unit -> t
(** A counter whose epoch is now. *)

val reset : t -> unit
(** Move the epoch to now. *)

val words : t -> float
(** Minor words allocated since the epoch. *)

val per : t -> denom:float -> float
(** [per t ~denom] is [words t /. denom] ([0.] when [denom] is [0.]) —
    e.g. words per simulated second, or per event fired. *)

val measure : (unit -> 'a) -> 'a * float
(** [measure f] runs [f] and returns its result together with the
    minor words it allocated. *)
