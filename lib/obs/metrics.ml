type counter = { mutable n : int }
type histogram = Stat.Summary.t

type entry =
  | E_counter of counter
  | E_gauge of (unit -> int)
  | E_hist of histogram

type t = { tbl : (string, entry) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (E_counter c) -> c
  | Some _ -> invalid_arg (Printf.sprintf "Metrics.counter: %S is not a counter" name)
  | None ->
    let c = { n = 0 } in
    Hashtbl.replace t.tbl name (E_counter c);
    c

let incr c = c.n <- c.n + 1
let add c d = c.n <- c.n + d
let value c = c.n

let gauge t name read = Hashtbl.replace t.tbl name (E_gauge read)

let histogram t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (E_hist h) -> h
  | Some _ -> invalid_arg (Printf.sprintf "Metrics.histogram: %S is not a histogram" name)
  | None ->
    let h = Stat.Summary.create () in
    Hashtbl.replace t.tbl name (E_hist h);
    h

let observe h v = Stat.Summary.record h v

type value =
  | Counter of int
  | Gauge of int
  | Histogram of Stat.Summary.report

type snapshot = (string * value) list

let snapshot t =
  Hashtbl.fold
    (fun name entry acc ->
      match entry with
      | E_counter c -> (name, Counter c.n) :: acc
      | E_gauge read -> (name, Gauge (read ())) :: acc
      | E_hist h -> (
        match Stat.Summary.report_opt h with
        | None -> acc
        | Some r -> (name, Histogram r) :: acc))
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let find snap name = List.assoc_opt name snap

let pp_snapshot fmt snap =
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Format.fprintf fmt "@ ";
      match v with
      | Counter n -> Format.fprintf fmt "%-24s %d" name n
      | Gauge n -> Format.fprintf fmt "%-24s %d (gauge)" name n
      | Histogram r -> Format.fprintf fmt "%-24s %a" name Stat.Summary.pp_report_us r)
    snap;
  Format.fprintf fmt "@]"
