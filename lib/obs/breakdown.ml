type components = {
  id : int;
  arrival_ns : int;
  total_ns : int;
  dispatch_ns : int;
  sched_ns : int;
  service_ns : int;
  preempted_ns : int;
  segments : int;
}

type agg = {
  n : int;
  a_total : Stat.Summary.report;
  a_dispatch : Stat.Summary.report;
  a_sched : Stat.Summary.report;
  a_service : Stat.Summary.report;
  a_preempted : Stat.Summary.report;
}

type report = {
  requests : components list;
  complete : int;
  incomplete : int;
  cancelled : int;
  agg : agg option;
}

(* Per-request fold state; [-1] marks "not seen".  [bad] flags a request
   whose event sequence is inconsistent — which happens exactly when the
   ring evicted part of its lifecycle. *)
type st = {
  mutable arrive : int;
  mutable assign : int;
  mutable first_run : int;
  mutable running_since : int;
  mutable last_preempt : int;
  mutable service : int;
  mutable preempted : int;
  mutable segs : int;
  mutable done_ts : int;
  mutable cancelled : bool;
  mutable bad : bool;
}

let of_trace trace =
  let tbl : (int, st) Hashtbl.t = Hashtbl.create 1024 in
  let get id =
    match Hashtbl.find_opt tbl id with
    | Some s -> s
    | None ->
      let s =
        {
          arrive = -1;
          assign = -1;
          first_run = -1;
          running_since = -1;
          last_preempt = -1;
          service = 0;
          preempted = 0;
          segs = 0;
          done_ts = -1;
          cancelled = false;
          bad = false;
        }
      in
      Hashtbl.add tbl id s;
      s
  in
  Trace.iter trace (fun e ->
      if e.Trace.cat = Trace.Request then begin
        let s = get e.Trace.track in
        let ts = e.Trace.ts in
        match e.Trace.name with
        | "req.arrive" -> if s.arrive >= 0 then s.bad <- true else s.arrive <- ts
        | "req.assign" -> if s.arrive < 0 || s.assign >= 0 then s.bad <- true else s.assign <- ts
        | "req.run" ->
          if s.running_since >= 0 then s.bad <- true
          else begin
            (if s.segs = 0 then
               if s.assign < 0 then s.bad <- true else s.first_run <- ts
             else if s.last_preempt < 0 then s.bad <- true
             else begin
               s.preempted <- s.preempted + (ts - s.last_preempt);
               s.last_preempt <- -1
             end);
            s.running_since <- ts;
            s.segs <- s.segs + 1
          end
        | "req.preempt" ->
          if s.running_since < 0 then s.bad <- true
          else begin
            s.service <- s.service + (ts - s.running_since);
            s.running_since <- -1;
            s.last_preempt <- ts
          end
        | "req.done" ->
          if s.running_since < 0 || s.done_ts >= 0 then s.bad <- true
          else begin
            s.service <- s.service + (ts - s.running_since);
            s.running_since <- -1;
            s.done_ts <- ts
          end
        | "req.cancel" -> s.cancelled <- true
        | _ -> ()
      end);
  let requests = ref [] in
  let incomplete = ref 0 and cancelled = ref 0 in
  Hashtbl.iter
    (fun id s ->
      if s.cancelled then incr cancelled
      else if
        s.bad || s.arrive < 0 || s.assign < 0 || s.first_run < 0 || s.done_ts < 0
      then incr incomplete
      else
        requests :=
          {
            id;
            arrival_ns = s.arrive;
            total_ns = s.done_ts - s.arrive;
            dispatch_ns = s.assign - s.arrive;
            sched_ns = s.first_run - s.assign;
            service_ns = s.service;
            preempted_ns = s.preempted;
            segments = s.segs;
          }
          :: !requests)
    tbl;
  let requests = List.sort (fun a b -> compare a.id b.id) !requests in
  let agg =
    if requests = [] then None
    else begin
      let total = Stat.Summary.create ()
      and dispatch = Stat.Summary.create ()
      and sched = Stat.Summary.create ()
      and service = Stat.Summary.create ()
      and preempted = Stat.Summary.create () in
      List.iter
        (fun c ->
          Stat.Summary.record total (float_of_int c.total_ns);
          Stat.Summary.record dispatch (float_of_int c.dispatch_ns);
          Stat.Summary.record sched (float_of_int c.sched_ns);
          Stat.Summary.record service (float_of_int c.service_ns);
          Stat.Summary.record preempted (float_of_int c.preempted_ns))
        requests;
      Some
        {
          n = List.length requests;
          a_total = Stat.Summary.report total;
          a_dispatch = Stat.Summary.report dispatch;
          a_sched = Stat.Summary.report sched;
          a_service = Stat.Summary.report service;
          a_preempted = Stat.Summary.report preempted;
        }
    end
  in
  {
    requests;
    complete = List.length requests;
    incomplete = !incomplete;
    cancelled = !cancelled;
    agg;
  }

let sums_ok r =
  List.for_all
    (fun c ->
      abs (c.dispatch_ns + c.sched_ns + c.service_ns + c.preempted_ns - c.total_ns) <= 1)
    r.requests

let pp fmt r =
  Format.fprintf fmt "@[<v>per-request breakdown: %d complete, %d incomplete, %d cancelled"
    r.complete r.incomplete r.cancelled;
  (match r.agg with
  | None -> ()
  | Some a ->
    let row name (rep : Stat.Summary.report) =
      Format.fprintf fmt "@ %-14s %9.2f %9.2f %9.2f %9.2f" name (rep.Stat.Summary.mean /. 1e3)
        (rep.Stat.Summary.p50 /. 1e3) (rep.Stat.Summary.p99 /. 1e3)
        (rep.Stat.Summary.max /. 1e3)
    in
    Format.fprintf fmt "@ %-14s %9s %9s %9s %9s" "component (us)" "mean" "p50" "p99" "max";
    row "dispatch" a.a_dispatch;
    row "sched-wait" a.a_sched;
    row "service" a.a_service;
    row "preempt-wait" a.a_preempted;
    row "total" a.a_total);
  Format.fprintf fmt "@]"
