(** Declarative latency SLOs with rolling windows, error-budget
    accounting, and multi-window burn-rate alerts.

    A {!spec} reads as "[objective] of requests finish within
    [threshold_ns], evaluated in [window_ns] windows".  The tracker
    classifies each completion as good or bad against the threshold;
    at every window boundary ({!roll}) it computes:

    - the {e burn rate} over a fast and a slow trailing window — the
      rate at which the error budget [1 - objective] is being consumed,
      where burn 1.0 means "exactly on budget" and burn 10 means "the
      budget for the whole period is gone in a tenth of it";
    - the cumulative {e budget consumed} since tracking started;
    - two alert signals: the {b burn-rate alert} (classic fast+slow
      window pair: both trailing burns above [burn_threshold]) and the
      {b naive static-threshold alert} (the cumulative bad fraction has
      crossed the budget, i.e. the SLO is already lost).  The burn-rate
      alert is the one that fires {e during} a flash crowd; the naive
      alert confirms the damage after the fact — the gap between the
      two is the gated [bench --slo] headline.

    The tracker is pure bookkeeping on the caller's clock: it schedules
    nothing, allocates O(slow_windows) once at create time, and O(1)
    per observation — fit for the telemetry hot path. *)

type spec = {
  name : string;  (** metric/track label, e.g. ["p99_250us"] *)
  threshold_ns : int;  (** a completion is good iff latency <= this *)
  objective : float;  (** target good fraction in (0,1), e.g. 0.99 *)
  window_ns : int;  (** evaluation window (the caller rolls at this period) *)
  fast_windows : int;  (** burn-rate fast window, in windows (>= 1) *)
  slow_windows : int;  (** burn-rate slow window (>= fast_windows) *)
  burn_threshold : float;  (** alert when both burns reach this (> 0) *)
}

val default_spec : spec
(** "99% under 250 µs, 1 ms windows, 3/30 window pair, burn 4". *)

val validate : spec -> unit
(** Raises [Invalid_argument] on out-of-range fields. *)

type t

val create : spec -> t
(** Validates the spec. *)

val spec : t -> spec

val observe : t -> latency_ns:int -> unit
(** Classify one completion into the current window.  O(1). *)

type status = {
  at_ns : int;  (** window-boundary clock *)
  window_good : int;  (** completions in the window just closed *)
  window_bad : int;
  fast_burn : float;  (** burn rate over the fast trailing window *)
  slow_burn : float;
  budget_consumed : float;
      (** cumulative bad fraction over the error budget; >= 1.0 means
          the SLO is lost *)
  burn_firing : bool;
  static_firing : bool;
}

val roll : t -> now:int -> status
(** Close the current window, fold it into the trailing rings, update
    both alert states and return the resulting status.  The caller
    (the telemetry tick) invokes this once per [window_ns]. *)

type report = {
  r_name : string;
  windows : int;
  total : int;  (** observations across all windows *)
  bad : int;
  budget_consumed : float;
  max_fast_burn : float;
  burn_alerts : int;  (** rising edges of the burn-rate alert *)
  first_burn_alert_ns : int option;
  first_static_alert_ns : int option;
}

val report : t -> report
(** Cumulative accounting.  [total] and [bad] telescope: they equal the
    sums of the per-window [window_good + window_bad] / [window_bad]
    over every rolled window plus the still-open one (the qcheck
    property in [test_obs]). *)

val pp_report : Format.formatter -> report -> unit
