(** Simulation-wide trace ring buffer.

    A bounded, allocation-free-on-the-hot-path event log.  Components
    emit typed events (span begin/end, instant, counter sample) stamped
    with the owning clock — `Sim.now` for simulated components, a
    wall/virtual clock for `fiber_rt`.  Storage is a fixed-capacity
    struct-of-arrays ring: recording one event writes five scalar cells
    and never allocates (event names must be static strings).  When the
    ring is full the oldest event is overwritten and counted in
    {!dropped}, so tracing can stay enabled during long benches while
    keeping the most recent window.

    Per-component {e categories} can be enabled or disabled; a disabled
    category's emissions cost one array read.  Recording is passive: it
    never schedules simulation events, so a traced run and an untraced
    run of the same seed produce bit-identical results. *)

type cat =
  | Uipi  (** UINTR fabric: SENDUIPI, posting, delivery, UPID bits *)
  | Klock  (** kernel lock: enqueue, hold spans *)
  | Utimer  (** timer core: scans, fires, watchdog episodes *)
  | Sched  (** worker scheduling: quantum spans, grants *)
  | Server  (** server-level: queue depths, wedges, fallback *)
  | Request  (** per-request lifecycle: arrive/assign/run/preempt/done *)
  | Fault  (** fault injections, detections, recoveries *)
  | Fiber  (** fiber_rt real-execution runtime *)
  | Exec  (** Exec.Pool sweep workers (host-side, wall-clock) *)
  | Guard  (** overload control: breaker state, sheds, retries *)

val all_cats : cat list
val cat_name : cat -> string

val cat_of_string : string -> (cat, string) result
(** Case-insensitive parse of {!cat_name}; [Error] names the valid set. *)

type kind = Span_begin | Span_end | Instant | Counter

type event = {
  ts : int;  (** clock value at emission, nanoseconds *)
  kind : kind;
  cat : cat;
  name : string;
  track : int;  (** worker id / receiver id / request id — Perfetto tid *)
  arg : int;  (** payload: vector, latency, counter value, ... *)
}

type config = {
  capacity : int;  (** ring capacity in events *)
  categories : cat list;  (** enabled categories *)
}

val default_config : config
(** 1 Mi events, every category enabled. *)

type t

val create : ?config:config -> clock:(unit -> int) -> unit -> t
(** [create ~clock ()] builds a trace whose events are stamped with
    [clock ()].  Raises [Invalid_argument] on non-positive capacity. *)

val set_categories : t -> cat list -> unit
val enabled : t -> cat -> bool

val span_begin : t -> cat -> name:string -> track:int -> arg:int -> unit
(** Open a span on [track].  Spans on one track must nest; the layer
    emitting them is responsible for pairing (checked in tests). *)

val span_end : t -> cat -> name:string -> track:int -> unit

val instant : t -> cat -> name:string -> track:int -> arg:int -> unit

val counter : t -> cat -> name:string -> value:int -> unit
(** A counter sample; exported as a Perfetto counter track. *)

val recorded : t -> int
(** Events accepted (enabled category), including later-overwritten. *)

val dropped : t -> int
(** Events lost to ring wraparound (the oldest are evicted first). *)

val length : t -> int
(** Events currently held, [<= capacity]. *)

val capacity : t -> int

val iter : t -> (event -> unit) -> unit
(** Iterate held events oldest-first (emission order). *)

val to_list : t -> event list

val clear : t -> unit
(** Empty the ring and zero {!recorded}/{!dropped}. *)
