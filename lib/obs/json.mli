(** Minimal JSON: enough to write and read back the machine-readable
    bench reports ([bench --report] / [lpbench_check]) without an
    external dependency.  Objects preserve member order on both the
    print and parse paths, so a report re-emitted from the same data is
    byte-identical — the property the CI figure-diff gates rely on. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** members keep their insertion order *)

(** {1 Printing} *)

val to_string : ?indent:int -> t -> string
(** Render with [indent] spaces per level (default 2) and a trailing
    newline.  Numbers print in the shortest locale-independent form
    that round-trips; non-finite floats, which have no JSON spelling,
    render as [null]. *)

val to_file : ?indent:int -> t -> path:string -> unit
(** [to_file t ~path] writes [to_string t] to [path]. *)

(** {1 Parsing} *)

val parse : string -> (t, string) result
(** Parse one JSON value; trailing garbage is an error.  Unicode
    escapes outside ASCII degrade to ['?'] — reports only ever contain
    ASCII. *)

val of_file : string -> (t, string) result
(** Read and {!parse} a whole file. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** [member key j] is the value bound to [key] when [j] is an [Obj]. *)

val to_num : t -> float option

val to_str : t -> string option

val to_list : t -> t list option

val to_obj : t -> (string * t) list option
